(* The benchmark harness: regenerates every table and figure of the
   paper (sections printed in paper order), runs the ablation benches
   DESIGN.md calls out, and finishes with Bechamel microbenchmarks of
   the substrate primitives the simulation's wall-clock speed rests on.

     dune exec bench/main.exe              full reproduction (minutes)
     dune exec bench/main.exe -- quick     small-file smoke run
     dune exec bench/main.exe -- micro     only the Bechamel microbenches
     dune exec bench/main.exe -- writegather   only BENCH_writegather.json
     dune exec bench/main.exe -- multivolume   only BENCH_multivolume.json
     dune exec bench/main.exe -- iosched       only BENCH_iosched.json
     dune exec bench/main.exe -- raid          only BENCH_raid.json
     dune exec bench/main.exe -- laddis-curve  only BENCH_laddis_curve.json
     dune exec bench/main.exe -- bootstorm     only BENCH_bootstorm.json
     dune exec bench/main.exe -- simspeed      wall-clock events/sec of one world

   Every non-micro run also writes BENCH_writegather.json (the paper's
   core Standard/Gathering/NVRAM comparison, machine-readable),
   BENCH_multivolume.json (the 3-export independence/fault-isolation
   bench), BENCH_iosched.json (Fifo vs Elevator vs Deadline+merge on
   one spindle) and BENCH_raid.json (RAID level x gathering over a
   3-drive array, with degraded service and online rebuild; fixed
   workloads, committed and diffed by CI) to the current directory.

   Paper-vs-measured commentary lives in EXPERIMENTS.md. *)

module E = Nfsg_experiments.Experiments
module Report = Nfsg_stats.Report

let progress fmt = Printf.eprintf (fmt ^^ "\n%!")

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* {1 Paper tables and figures} *)

let run_tables quick =
  let tables =
    [
      ("Table 1 (Ethernet)", fun () -> E.table1 ~quick ());
      ("Table 2 (Ethernet, Presto)", fun () -> E.table2 ~quick ());
      ("Table 3 (FDDI)", fun () -> E.table3 ~quick ());
      ("Table 4 (FDDI, Presto)", fun () -> E.table4 ~quick ());
      ("Table 5 (FDDI, 3 striped drives)", fun () -> E.table5 ~quick ());
      ("Table 6 (FDDI, Presto, 3 striped drives)", fun () -> E.table6 ~quick ());
    ]
  in
  List.iter
    (fun (name, f) ->
      progress "bench: running %s ..." name;
      let t0 = Unix.gettimeofday () in
      let report = f () in
      progress "bench: %s done in %.1fs wall" name (Unix.gettimeofday () -. t0);
      print_newline ();
      print_string (Report.to_string report))
    tables

let run_figures quick =
  progress "bench: running Figure 1 (timelines) ...";
  banner "Figure 1";
  print_string (E.figure1 ());
  progress "bench: running Figure 2 (LADDIS sweep) ...";
  banner "Figure 2";
  print_string
    (E.render_laddis ~title:"SPEC SFS 1.0-style baseline (FDDI)" (E.figure2 ~quick ()));
  progress "bench: running Figure 3 (LADDIS sweep, Presto) ...";
  banner "Figure 3";
  print_string
    (E.render_laddis ~title:"SPEC SFS 1.0-style baseline (FDDI, Prestoserve)"
       (E.figure3 ~quick ()))

let run_ablations quick =
  banner "Ablations";
  let each (name, f) =
    progress "bench: ablation %s ..." name;
    print_newline ();
    print_string (Report.to_string (f ()))
  in
  List.iter each
    [
      ("procrastination interval", fun () -> E.ablation_procrastination ~quick ());
      ("reply order", fun () -> E.ablation_reply_order ~quick ());
      ("latency device (SIVA93)", fun () -> E.ablation_latency_device ~quick ());
      ("mbuf hunter", fun () -> E.ablation_mbuf_hunter ~quick ());
      ("dumb PC penalty", fun () -> E.ablation_dumb_pc ~quick ());
      ("disk scheduler", fun () -> E.ablation_disk_scheduler ~quick ());
      ("io scheduler + merge + deadline", fun () -> Nfsg_experiments.Iosched.report ~quick ());
    ]

let run_extensions quick =
  banner "Extensions (the paper's Future Work, built out)";
  let each (name, f) =
    progress "bench: extension %s ..." name;
    print_newline ();
    print_string (Report.to_string (f ()))
  in
  List.iter each
    [
      ("learned clients (Mogul)", fun () -> E.extension_learned_clients ~quick ());
      ("NFSv3 async writes + COMMIT", fun () -> E.extension_v3 ~quick ());
      ("write-layer modes incl. dangerous", fun () -> E.extension_write_modes ~quick ());
    ]

(* {1 The machine-readable bench artifact} *)

let bench_json_file = "BENCH_writegather.json"

let run_writegather quick =
  progress "bench: running writegather JSON bench ...";
  let t0 = Unix.gettimeofday () in
  let json = E.bench_writegather ~quick () in
  let oc = open_out bench_json_file in
  output_string oc (Nfsg_stats.Json.to_string ~pretty:true json);
  close_out oc;
  progress "bench: wrote %s in %.1fs wall" bench_json_file (Unix.gettimeofday () -. t0)

let multivolume_json_file = "BENCH_multivolume.json"

(* Fixed workload regardless of quick/full: the artifact is committed
   and CI diffs a fresh run against it byte for byte. *)
let run_multivolume () =
  progress "bench: running multivolume JSON bench ...";
  let t0 = Unix.gettimeofday () in
  let json = Nfsg_experiments.Multivolume.bench_multivolume () in
  let oc = open_out multivolume_json_file in
  output_string oc (Nfsg_stats.Json.to_string ~pretty:true json);
  close_out oc;
  progress "bench: wrote %s in %.1fs wall" multivolume_json_file (Unix.gettimeofday () -. t0)

let iosched_json_file = "BENCH_iosched.json"

(* Fifo (merge off) vs Elevator vs Deadline+merge under the same mixed
   multi-client LADDIS-style load; fixed workload, committed and
   byte-diffed by CI like the other two artifacts. *)
let run_iosched () =
  progress "bench: running iosched JSON bench ...";
  let t0 = Unix.gettimeofday () in
  let json = Nfsg_experiments.Iosched.bench_iosched () in
  let oc = open_out iosched_json_file in
  output_string oc (Nfsg_stats.Json.to_string ~pretty:true json);
  close_out oc;
  progress "bench: wrote %s in %.1fs wall" iosched_json_file (Unix.gettimeofday () -. t0)

let raid_json_file = "BENCH_raid.json"

(* RAID level x write gathering over a 3-drive array, plus degraded
   service and an online rebuild per redundant level; fixed workload,
   committed and byte-diffed by CI. *)
let run_raid () =
  progress "bench: running raid JSON bench ...";
  let t0 = Unix.gettimeofday () in
  let json = Nfsg_experiments.Raid.bench_raid () in
  let oc = open_out raid_json_file in
  output_string oc (Nfsg_stats.Json.to_string ~pretty:true json);
  close_out oc;
  progress "bench: wrote %s in %.1fs wall" raid_json_file (Unix.gettimeofday () -. t0)

let laddis_curve_json_file = "BENCH_laddis_curve.json"

(* Offered-load ladder per server configuration until each saturates;
   fixed sweep regardless of quick/full, committed and byte-diffed by
   CI like the other artifacts. *)
let run_laddis_curve () =
  progress "bench: running laddis-curve JSON bench ...";
  let t0 = Unix.gettimeofday () in
  let json = Nfsg_experiments.Laddis_curve.bench_laddis_curve () in
  let oc = open_out laddis_curve_json_file in
  output_string oc (Nfsg_stats.Json.to_string ~pretty:true json);
  close_out oc;
  progress "bench: wrote %s in %.1fs wall" laddis_curve_json_file (Unix.gettimeofday () -. t0)

let bootstorm_json_file = "BENCH_bootstorm.json"

(* Diskless-fleet ladder against one shared read-only export, server
   read-ahead off vs on; fixed ladder regardless of quick/full,
   committed and byte-diffed by CI. *)
let run_bootstorm () =
  progress "bench: running bootstorm JSON bench ...";
  let t0 = Unix.gettimeofday () in
  let json = Nfsg_experiments.Bootstorm.bench_bootstorm () in
  let oc = open_out bootstorm_json_file in
  output_string oc (Nfsg_stats.Json.to_string ~pretty:true json);
  close_out oc;
  progress "bench: wrote %s in %.1fs wall" bootstorm_json_file (Unix.gettimeofday () -. t0)

(* {1 Simulator speed}

   Wall-clock events/second over one fixed saturating LADDIS-style
   world — the macro number the engine/heap/XDR fast-path work moves,
   where the microbenches below isolate the primitives. CI keeps a
   recorded floor (bench/SIMSPEED_FLOOR) and fails if a run falls more
   than 2x below it. *)

let run_simspeed () =
  let module Rig = Nfsg_experiments.Rig in
  let module Laddis = Nfsg_workload.Laddis in
  let open Nfsg_sim in
  progress "bench: running simspeed ...";
  let rig = Rig.make { Rig.default_spec with Rig.nfsds = 12 } in
  let lcfg =
    {
      Laddis.default_config with
      Laddis.procs = 12;
      files_per_proc = 2;
      file_size = 1024 * 1024;
      warmup = Time.ms 500;
      measure = Time.sec 10;
      seed = 7;
    }
  in
  let t0 = Unix.gettimeofday () in
  let point =
    Rig.run rig (fun () ->
        Laddis.run rig.Rig.eng
          ~make_client:(fun i -> Rig.new_client rig (Printf.sprintf "client%d" i))
          ~root:(Rig.root rig) ~offered:170.0 lcfg)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let events = Engine.events_processed rig.Rig.eng in
  Printf.printf "simspeed: events=%d wall_s=%.3f events_per_sec=%.0f achieved_ops_s=%.1f\n"
    events wall
    (float_of_int events /. wall)
    point.Laddis.achieved

(* {1 Bechamel microbenchmarks}

   Wall-clock cost of the hot substrate operations: these bound how
   much simulated traffic a real second of benchmarking buys. *)

let micro_tests () =
  let open Bechamel in
  let open Nfsg_sim in
  let heap_churn =
    Test.make ~name:"heap: 1k add+pop"
      (Staged.stage (fun () ->
           let h = Heap.create () in
           for i = 0 to 999 do
             Heap.add h ~key:(i * 37 mod 1000) ~seq:i i
           done;
           let rec drain () = match Heap.pop h with Some _ -> drain () | None -> () in
           drain ()))
  in
  let engine_events =
    Test.make ~name:"engine: 1k chained delays"
      (Staged.stage (fun () ->
           let eng = Engine.create () in
           Engine.spawn eng (fun () ->
               for _ = 1 to 1000 do
                 Engine.delay (Time.us 1)
               done);
           Engine.run eng))
  in
  let xdr_write_roundtrip =
    let data = Bytes.make 8192 'x' in
    Test.make ~name:"xdr: encode+decode 8K WRITE"
      (Staged.stage (fun () ->
           let args =
             Nfsg_nfs.Proto.Write
               { fh = { Nfsg_nfs.Proto.fsid = 1; vgen = 1; inum = 3; gen = 1 }; offset = 0;
                 data = Nfsg_rpc.Xdr.view_of_bytes data }
           in
           let body = Nfsg_nfs.Proto.encode_args args in
           let call =
             Nfsg_rpc.Rpc.encode_call
               { Nfsg_rpc.Rpc.xid = 1; prog = Nfsg_rpc.Rpc.nfs_program; vers = 2; proc = 8;
                 body = Nfsg_rpc.Xdr.view_of_bytes body }
           in
           ignore (Nfsg_rpc.Rpc.decode_call call)))
  in
  let extent_map_stream =
    Test.make ~name:"extent map: 64 sequential 8K inserts"
      (Staged.stage (fun () ->
           let m = Nfsg_disk.Extent_map.create () in
           let block = Bytes.make 8192 'e' in
           for i = 0 to 63 do
             Nfsg_disk.Extent_map.insert m ~off:(i * 8192) block
           done))
  in
  let end_to_end =
    Test.make ~name:"end-to-end: 64K NFS file write"
      (Staged.stage (fun () ->
           let eng = Engine.create () in
           let segment = Nfsg_net.Segment.create eng Nfsg_net.Segment.fddi in
           let disk = Nfsg_disk.Disk.create eng (Nfsg_disk.Disk.rz26 ~capacity:(8 * 1024 * 1024) ()) in
           let server =
             Nfsg_core.Server.make eng ~segment ~addr:"server" ~device:disk
               Nfsg_core.Server.default_config
           in
           let sock = Nfsg_net.Socket.create segment ~addr:"client" () in
           let rpc = Nfsg_rpc.Rpc_client.create eng ~sock ~server:"server" () in
           let client = Nfsg_nfs.Client.create eng ~rpc ~biods:4 () in
           Engine.spawn eng (fun () ->
               let root = Nfsg_core.Server.root_fh server in
               let fh, _ = Nfsg_nfs.Client.create_file client root "b" in
               let f = Nfsg_nfs.Client.open_file client fh in
               Nfsg_nfs.Client.write f ~off:0 (Bytes.make 65536 'b');
               Nfsg_nfs.Client.close f);
           Engine.run eng))
  in
  Test.make_grouped ~name:"substrate"
    [ heap_churn; engine_events; xdr_write_roundtrip; extent_map_stream; end_to_end ]

let run_micro () =
  banner "Bechamel microbenchmarks";
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |]) instance raw)
      instances
  in
  List.iter2
    (fun instance tbl ->
      let label = Bechamel.Measure.label instance in
      Printf.printf "\n%s per run:\n" label;
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-38s %12.1f\n" name est
          | _ -> Printf.printf "  %-38s (no estimate)\n" name)
        tbl)
    instances results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let micro_only = List.mem "micro" args in
  let writegather_only = List.mem "writegather" args in
  let multivolume_only = List.mem "multivolume" args in
  let iosched_only = List.mem "iosched" args in
  let raid_only = List.mem "raid" args in
  let laddis_curve_only = List.mem "laddis-curve" args in
  let bootstorm_only = List.mem "bootstorm" args in
  let simspeed_only = List.mem "simspeed" args in
  if micro_only then run_micro ()
  else if writegather_only then run_writegather quick
  else if multivolume_only then run_multivolume ()
  else if iosched_only then run_iosched ()
  else if raid_only then run_raid ()
  else if laddis_curve_only then run_laddis_curve ()
  else if bootstorm_only then run_bootstorm ()
  else if simspeed_only then run_simspeed ()
  else begin
    Printf.printf "NFS write gathering: full reproduction run (%s)\n"
      (if quick then "quick mode" else "paper-size workloads");
    run_tables quick;
    run_figures quick;
    run_ablations quick;
    run_extensions quick;
    run_writegather quick;
    run_multivolume ();
    run_iosched ();
    run_raid ();
    run_laddis_curve ();
    run_bootstorm ();
    run_simspeed ();
    run_micro ()
  end
