(* Per-operation journey records: the live operability plane's core.

   Every dispatched request gets a journey carrying timestamps for each
   station it passes through on the way to its reply:

     arrival       datagram lands in the server's socket buffer
     pickup        an nfsd takes it off the socket
     admitted      the duplicate cache rules it new work
     queued        (writes) the data is in the cache and the
                   descriptor joins the gather plane
     disk_submit   the metadata writer starts the covering flush
     disk_complete the flush's device submission completed
     reply         the reply leaves via Svc.send_reply

   At [finish] the stamps become six per-phase duration histograms
   (namespace "journey") plus an end-to-end total, per-client station
   attribution (namespace "station.<client>"), and — if the total
   crossed the configured threshold — a rendered long-op record in the
   plane's dedicated ring.

   The long-op ring is deliberately NOT the server's event trace: under
   a saturating write load the gather plane emits several chatty events
   per WRITE and wraps a default ring in seconds, which would silently
   overwrite exactly the slow-op evidence this plane exists to keep.
   A dedicated ring plus the "trace"/"dropped" counter (event ring and
   long-op ring losses combined) makes any loss visible instead of
   silent. *)

open Nfsg_sim

(* Sentinel for a stamp that was never taken: simulated time is never
   negative. At [finish] unset stamps collapse onto their predecessor,
   so phases stay monotone and sum exactly to the total. *)
let unset = -1

(* READ ops don't cross the gather plane: their middle phase is the
   buffer cache, and the interesting split is hit (all blocks resident)
   vs miss (the op waited on the device or an in-flight prefetch). *)
type cache_phase = Cache_none | Cache_hit | Cache_miss

type t = {
  client : string;
  xid : int;
  mutable proc : string;  (** "" until the dispatcher decodes the call *)
  mutable bytes : int;
  mutable cache : cache_phase;
  arrival : Time.t;
  mutable pickup : Time.t;
  mutable admitted : Time.t;
  mutable queued : Time.t;
  mutable disk_submit : Time.t;
  mutable disk_complete : Time.t;
  mutable reply : Time.t;
}

type plane = {
  eng : Engine.t;
  metrics : Metrics.t;
  threshold : Time.t option;
  ring : Trace.t;  (** long-op records only; drop-safe by isolation *)
  event_trace : Trace.t option;  (** the chatty event ring, for loss accounting *)
  h_total : Histogram.t;
  h_sock : Histogram.t;
  h_dup : Histogram.t;
  h_prep : Histogram.t;
  h_gather : Histogram.t;
  h_disk : Histogram.t;
  h_reply : Histogram.t;
  h_cache_hit : Histogram.t;
  h_cache_miss : Histogram.t;
  c_records : Metrics.counter;
  c_long_ops : Metrics.counter;
  c_dropped : Metrics.counter;
}

let create eng ~metrics ?threshold ?(ring_capacity = 512) ?event_trace () =
  let ns = Names.Ns.journey in
  let phase p = Metrics.histogram metrics ~ns (Names.phase_us p) in
  {
    eng;
    metrics;
    threshold;
    ring = Trace.create ~capacity:ring_capacity eng;
    event_trace;
    h_total = Metrics.histogram metrics ~ns Names.total_us;
    h_sock = phase Names.phase_sock_wait;
    h_dup = phase Names.phase_dupcache;
    h_prep = phase Names.phase_prep;
    h_gather = phase Names.phase_gather_wait;
    h_disk = phase Names.phase_disk;
    h_reply = phase Names.phase_reply;
    h_cache_hit = phase Names.phase_cache_hit;
    h_cache_miss = phase Names.phase_cache_miss_wait;
    c_records = Metrics.counter metrics ~ns Names.records;
    c_long_ops = Metrics.counter metrics ~ns Names.long_ops;
    c_dropped = Metrics.counter metrics ~ns:Names.Ns.trace Names.dropped;
  }

let threshold p = p.threshold

let start _p ~client ~xid ~arrival =
  {
    client;
    xid;
    proc = "";
    bytes = 0;
    cache = Cache_none;
    arrival;
    pickup = unset;
    admitted = unset;
    queued = unset;
    disk_submit = unset;
    disk_complete = unset;
    reply = unset;
  }

let set_op j ~proc ~bytes =
  j.proc <- proc;
  j.bytes <- bytes

let proc j = j.proc
let client j = j.client
let set_cache_phase j ~hit = j.cache <- (if hit then Cache_hit else Cache_miss)

let stamp_pickup j ~now = if j.pickup = unset then j.pickup <- now
let stamp_admitted j ~now = if j.admitted = unset then j.admitted <- now
let stamp_queued j ~now = if j.queued = unset then j.queued <- now

(* A flush that fails re-queues its descriptors for another round, so a
   later round may re-stamp: the LAST submission is the one whose
   completion precedes the reply, and that pair is what the disk phase
   must measure. *)
let stamp_disk_submit j ~now = j.disk_submit <- now
let stamp_disk_complete j ~now = j.disk_complete <- now

(* Fill unset stamps with their predecessor so the timeline is monotone
   and the six phases partition [arrival, reply] exactly. *)
let normalize j =
  let prev = ref j.arrival in
  let norm get set =
    let v = get () in
    if v = unset || v < !prev then set !prev else prev := v
  in
  norm (fun () -> j.pickup) (fun v -> j.pickup <- v);
  prev := j.pickup;
  norm (fun () -> j.admitted) (fun v -> j.admitted <- v);
  prev := j.admitted;
  norm (fun () -> j.queued) (fun v -> j.queued <- v);
  prev := j.queued;
  norm (fun () -> j.disk_submit) (fun v -> j.disk_submit <- v);
  prev := j.disk_submit;
  norm (fun () -> j.disk_complete) (fun v -> j.disk_complete <- v);
  prev := j.disk_complete;
  norm (fun () -> j.reply) (fun v -> j.reply <- v)

type phases = {
  sock_wait : Time.t;
  dupcache : Time.t;
  prep : Time.t;
  gather_wait : Time.t;
  disk : Time.t;
  reply_path : Time.t;
  total : Time.t;
}

let phases j =
  {
    sock_wait = j.pickup - j.arrival;
    dupcache = j.admitted - j.pickup;
    prep = j.queued - j.admitted;
    gather_wait = j.disk_submit - j.queued;
    disk = j.disk_complete - j.disk_submit;
    reply_path = j.reply - j.disk_complete;
    total = j.reply - j.arrival;
  }

let render j =
  let ph = phases j in
  let us t = Printf.sprintf "%.0f" (Time.to_us_f t) in
  match j.cache with
  | Cache_none ->
      Printf.sprintf
        "long-op %s client=%s xid=%d bytes=%d total=%sus sock_wait=%sus dupcache=%sus prep=%sus \
         gather_wait=%sus disk=%sus reply=%sus"
        (if j.proc = "" then "?" else j.proc)
        j.client j.xid j.bytes (us ph.total) (us ph.sock_wait) (us ph.dupcache) (us ph.prep)
        (us ph.gather_wait) (us ph.disk) (us ph.reply_path)
  | Cache_hit | Cache_miss ->
      (* READs never crossed the gather plane; the middle of the record
         is the cache attribution instead of gather_wait/disk. *)
      Printf.sprintf
        "long-op %s client=%s xid=%d bytes=%d total=%sus sock_wait=%sus dupcache=%sus prep=%sus \
         cache=%s cache_wait=%sus reply=%sus"
        (if j.proc = "" then "?" else j.proc)
        j.client j.xid j.bytes (us ph.total) (us ph.sock_wait) (us ph.dupcache) (us ph.prep)
        (if j.cache = Cache_hit then "hit" else "miss")
        (us ph.disk) (us ph.reply_path)

let refresh_dropped p =
  let ev = match p.event_trace with Some tr -> Trace.dropped tr | None -> 0 in
  let target = ev + Trace.dropped p.ring in
  (* Mirror the rings' loss counts, monotonically: a restarted server's
     fresh rings must not rewind the accumulated counter. *)
  let current = Metrics.value p.c_dropped in
  if target > current then Metrics.add p.c_dropped (target - current)

let dropped p =
  refresh_dropped p;
  Metrics.value p.c_dropped

let finish p j =
  if j.reply = unset then j.reply <- Engine.now p.eng;
  normalize j;
  let ph = phases j in
  Metrics.incr p.c_records;
  Histogram.add p.h_total (Time.to_us_f ph.total);
  (* Phase decomposition only for ops that went through the write
     plane's disk flush — for a GETATTR the middle phases are all
     zero-width and would only dilute the histograms. READs attribute
     their middle phase to the cache histograms instead: the hit
     histogram records the (near-zero) in-core copy, the miss histogram
     the device / prefetch wait. *)
  (match j.cache with
  | Cache_hit -> Histogram.add p.h_cache_hit (Time.to_us_f ph.disk)
  | Cache_miss -> Histogram.add p.h_cache_miss (Time.to_us_f ph.disk)
  | Cache_none ->
      if j.disk_submit > j.queued || j.disk_complete > j.disk_submit then begin
        Histogram.add p.h_sock (Time.to_us_f ph.sock_wait);
        Histogram.add p.h_dup (Time.to_us_f ph.dupcache);
        Histogram.add p.h_prep (Time.to_us_f ph.prep);
        Histogram.add p.h_gather (Time.to_us_f ph.gather_wait);
        Histogram.add p.h_disk (Time.to_us_f ph.disk);
        Histogram.add p.h_reply (Time.to_us_f ph.reply_path)
      end);
  (* Per-client station attribution. Find-or-create registration means
     a station's counters survive server crash/restart exactly like
     every other metric in the shared registry. *)
  if j.proc <> "" then begin
    let ns = Names.Ns.station j.client in
    Metrics.incr (Metrics.counter p.metrics ~ns Names.station_ops);
    Metrics.add (Metrics.counter p.metrics ~ns Names.station_bytes) j.bytes;
    Histogram.add
      (Metrics.histogram p.metrics ~ns Names.station_lat_us)
      (Time.to_us_f ph.total)
  end;
  (match p.threshold with
  | Some thr when ph.total > thr ->
      Metrics.incr p.c_long_ops;
      Trace.emit p.ring ~actor:j.client (render j)
  | Some _ | None -> ());
  refresh_dropped p

let long_op_count p = Metrics.value p.c_long_ops
let long_ops p = Trace.events p.ring

let render_long_ops p =
  match Trace.events p.ring with
  | [] -> "(no long ops)\n"
  | evs ->
      let buf = Buffer.create 1024 in
      if Trace.dropped p.ring > 0 then
        Buffer.add_string buf
          (Printf.sprintf "(%d older long-op records dropped by the ring)\n"
             (Trace.dropped p.ring));
      List.iter
        (fun (tm, _actor, ev) ->
          Buffer.add_string buf (Printf.sprintf "t=+%.3fms %s\n" (Time.to_ms_f tm) ev))
        evs;
      Buffer.contents buf
