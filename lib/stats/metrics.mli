(** Typed metrics registry: counters, gauges and log-bucketed
    histograms under per-subsystem namespaces, with a deterministic
    JSON reporter.

    Registration is {e find-or-create}: asking for an instrument that
    already exists returns the existing one (a restarted server keeps
    counting where its previous incarnation stopped; several simulated
    worlds can share one registry and accumulate). Asking for a name
    that exists with a different kind raises [Invalid_argument].

    Everything here is driven by the simulation, so a registry's JSON
    is a pure function of the run: same seed, same bytes. *)

type t
type counter
type gauge

val create : unit -> t

(** {1 Registration} *)

val counter : t -> ns:string -> string -> counter
val gauge : t -> ns:string -> string -> gauge

val histogram :
  t -> ns:string -> ?least:float -> ?growth:float -> ?buckets:int -> string -> Histogram.t
(** Bucket parameters are used only on first registration; later calls
    return the existing histogram unchanged. *)

(** {1 Instrument operations} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the high-watermark: [set_max g v] raises [g] to [v] if larger. *)

val gauge_value : gauge -> float

val span : Nfsg_sim.Engine.t -> Histogram.t -> (unit -> 'a) -> 'a
(** [span eng h f] runs [f] and records its elapsed {e simulated} time
    in [h], in microseconds — including time blocked on resources,
    disks or the network. Records on exception too, then re-raises.
    Must run inside a simulation process. *)

(** {1 Reading back} (reporters and tests) *)

val namespaces : t -> string list
(** Every namespace with at least one instrument, sorted. *)

val find_counter : t -> ns:string -> string -> int option
val find_gauge : t -> ns:string -> string -> float option
val find_histogram : t -> ns:string -> string -> Histogram.t option

(** {1 Reporting} *)

val to_json : t -> Json.t
(** [{"schema": "nfsgather-metrics/1", "namespaces": {ns: {"counters":
    {...}, "gauges": {...}, "histograms": {name: {count, total, mean,
    p50, p99, buckets: [[lo, hi, count], ...]}}}}}] with namespaces and
    names sorted — byte-identical for identical runs. *)

val to_string : ?pretty:bool -> t -> string
