open Nfsg_sim

type event = Time.t * string * string

(* Fixed-capacity ring: long chaos/bench runs keep the newest
   [capacity] events in O(capacity) memory instead of growing a list
   O(events). [head] is the slot the next event lands in; once [len]
   reaches capacity the ring wraps and [dropped] counts the overwritten
   oldest events. *)
type t = {
  eng : Engine.t;
  enabled : bool;
  ring : event array;
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 4096

let create ?(enabled = true) ?(capacity = default_capacity) eng =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    eng;
    enabled;
    ring = Array.make capacity (Time.zero, "", "");
    head = 0;
    len = 0;
    dropped = 0;
  }

let enabled t = t.enabled
let capacity t = Array.length t.ring
let dropped t = t.dropped

let emit t ~actor event =
  if t.enabled then begin
    let cap = Array.length t.ring in
    t.ring.(t.head) <- (Engine.now t.eng, actor, event);
    t.head <- (t.head + 1) mod cap;
    if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1
  end

let events t =
  let cap = Array.length t.ring in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i -> t.ring.((start + i) mod cap))

let render t =
  match events t with
  | [] -> "(empty trace)\n"
  | (t0, _, _) :: _ as evs ->
      let buf = Buffer.create 1024 in
      let actor_width =
        List.fold_left (fun w (_, a, _) -> Stdlib.max w (String.length a)) 0 evs
      in
      if t.dropped > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  (%d older events dropped by the ring buffer)\n" t.dropped);
      List.iter
        (fun (tm, actor, event) ->
          Buffer.add_string buf
            (Printf.sprintf "  t=+%8.3fms  %-*s  %s\n"
               (Time.to_ms_f (tm - t0))
               actor_width actor event))
        evs;
      Buffer.contents buf

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0
