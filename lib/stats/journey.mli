(** Per-operation journey records — the live operability plane.

    A journey is created by the RPC service loop when a request is
    admitted, stamped by each layer it passes through (socket pickup,
    duplicate cache, gather plane, disk flush) and finished when its
    reply goes out. Finishing aggregates per-phase latency histograms
    (namespace ["journey"]), attributes the op to its client station
    (namespace ["station.<client>"]) and, when the end-to-end latency
    crosses the plane's threshold, emits a rendered long-op record into
    a dedicated ring buffer.

    The long-op ring is separate from the server's chatty event trace
    on purpose: a saturating write load wraps the event ring in
    seconds, and long-op evidence must not be overwritten by routine
    chatter. Losses in either ring surface as the ["trace"]/["dropped"]
    counter. *)

type t
(** One operation's journey. *)

type plane
(** The aggregation plane: histograms, station counters, long-op ring. *)

val create :
  Nfsg_sim.Engine.t ->
  metrics:Metrics.t ->
  ?threshold:Nfsg_sim.Time.t ->
  ?ring_capacity:int ->
  ?event_trace:Trace.t ->
  unit ->
  plane
(** [threshold] enables long-op records for ops slower end-to-end than
    the given span (disabled when omitted). [ring_capacity] bounds the
    long-op ring (default 512). [event_trace], when given, is the
    server's event ring — included in the dropped-record accounting. *)

val threshold : plane -> Nfsg_sim.Time.t option

val start : plane -> client:string -> xid:int -> arrival:Nfsg_sim.Time.t -> t
(** A fresh journey whose arrival stamp is the datagram's enqueue time
    at the server socket. *)

val set_op : t -> proc:string -> bytes:int -> unit
(** Fill in the decoded procedure name and payload size. *)

val proc : t -> string
val client : t -> string

val set_cache_phase : t -> hit:bool -> unit
(** Attribute this journey's middle phase to the buffer cache (READ
    path) instead of the write plane: [hit] means every block was
    resident, [not hit] that the op waited on the device or an
    in-flight prefetch. Finishing then feeds the cache-phase histograms
    and the long-op record renders [cache=hit|miss cache_wait=..us]
    in place of the write-oriented [gather_wait]/[disk] fields. *)

(** Stamps are idempotent where re-stamping would distort the phase
    (pickup/admitted/queued take the first call), and last-write-wins
    for the disk pair (a failed flush retries; the completed submission
    is the one the reply waited on). *)

val stamp_pickup : t -> now:Nfsg_sim.Time.t -> unit
val stamp_admitted : t -> now:Nfsg_sim.Time.t -> unit
val stamp_queued : t -> now:Nfsg_sim.Time.t -> unit
val stamp_disk_submit : t -> now:Nfsg_sim.Time.t -> unit
val stamp_disk_complete : t -> now:Nfsg_sim.Time.t -> unit

val finish : plane -> t -> unit
(** Stamp the reply instant, normalize the timeline (unset stamps
    collapse onto their predecessor, so phases are non-negative and sum
    exactly to the total), aggregate, attribute, and emit a long-op
    record if over threshold. Call exactly once, from the reply path. *)

type phases = {
  sock_wait : Nfsg_sim.Time.t;  (** arrival → nfsd pickup *)
  dupcache : Nfsg_sim.Time.t;  (** pickup → dupcache admission *)
  prep : Nfsg_sim.Time.t;  (** admission → descriptor on the gather plane *)
  gather_wait : Nfsg_sim.Time.t;  (** gather plane → flush submission *)
  disk : Nfsg_sim.Time.t;  (** flush submission → completion *)
  reply_path : Nfsg_sim.Time.t;  (** completion → reply on the wire *)
  total : Nfsg_sim.Time.t;
}

val phases : t -> phases
(** Valid after {!finish} (timestamps normalized). *)

val render : t -> string
(** The deterministic single-line long-op record format. *)

val dropped : plane -> int
(** Total records lost to ring wrap-around across this plane's rings
    (long-op ring plus the optional event trace), freshly mirrored
    into the ["trace"/"dropped"] counter. Monotone across
    crash/restart. *)

val long_op_count : plane -> int
val long_ops : plane -> (Nfsg_sim.Time.t * string * string) list

val render_long_ops : plane -> string
(** Every retained long-op record, oldest first, one line each, with a
    leading loss notice when the ring overwrote older records. *)
