(* The central registry of metric namespaces and instrument names.

   Every [Metrics.counter]/[gauge]/[histogram] registration and every
   [Metrics.find_*] query in lib/ draws its strings from here (the
   M001 lint rule forbids inline literals at those call sites), so a
   namespace typo — "server.vol3" vs "server_vol3" — is an unbound
   identifier at compile time instead of a silently empty query.

   The values are part of the wire format of the metrics JSON and the
   committed BENCH_*.json artifacts: renaming one is a breaking change
   to every consumer of those files and to CI's byte-diffs. *)

module Ns = struct
  let net = "net"
  let rpc_svc = "rpc.svc"
  let rpc_client = "rpc.client"
  let rpc_dupcache = "rpc.dupcache"
  let nfs_client = "nfs.client"
  let server = "server"
  let write_layer = "write_layer"

  (* Devices are named per instance ("rz26-0", "vol2-rz26-1", ...). *)
  let disk name = "disk." ^ name
  let nvram name = "nvram." ^ name
  let raid name = "raid." ^ name

  (* Multi-volume planes; the 1-volume legacy server keeps the plain
     [server]/[write_layer] namespaces (see Volume.mount). *)
  let server_vol fsid = Printf.sprintf "server.vol%d" fsid
  let write_layer_vol fsid = Printf.sprintf "write_layer.vol%d" fsid

  (* The read-side twin of the write_layer plane: buffer-cache and
     read-ahead accounting, one plane per export. *)
  let read_plane = "read_plane"
  let read_plane_vol fsid = Printf.sprintf "read_plane.vol%d" fsid

  (* The live operability plane. *)
  let journey = "journey"
  let trace = "trace"

  (* Per-client-station attribution ("station.client3", ...). *)
  let station_prefix = "station."
  let station client = station_prefix ^ client

  let station_of ns =
    let p = String.length station_prefix in
    if String.length ns > p && String.sub ns 0 p = station_prefix then
      Some (String.sub ns p (String.length ns - p))
    else None
end

(* {1 net} *)

let datagrams_sent = "datagrams_sent"
let datagrams_lost = "datagrams_lost"
let datagrams_duplicated = "datagrams_duplicated"
let datagrams_blackholed = "datagrams_blackholed"
let bytes_sent = "bytes_sent"

(* {1 rpc.svc} *)

let received = "received"
let garbage = "garbage"
let dispatch_errors = "dispatch_errors"
let duplicate_drops = "duplicate_drops"
let duplicate_replays = "duplicate_replays"

(* {1 rpc.client} *)

let retransmissions = "retransmissions"
let stale_replies = "stale_replies"
let timeouts = "timeouts"
let rtt_us = "rtt_us"

(* {1 rpc.dupcache} *)

let drops = "drops"
let replays = "replays"
let evictions = "evictions"
let expirations = "expirations"
let overflows = "overflows"

(* {1 disk.<name>} *)

let reads = "reads"
let writes = "writes"
let bytes_read = "bytes_read"
let bytes_written = "bytes_written"
let seek_us = "seek_us"
let rotation_us = "rotation_us"
let transfer_us = "transfer_us"
let service_us = "service_us"
let queue_depth = "queue_depth"
let queue_depth_peak = "queue_depth_peak"
let queue_wait_us = "queue_wait_us"
let merged_requests = "merged_requests"
let deadline_promotions = "deadline_promotions"
let barriers = "barriers"

(* {1 nvram.<name>} *)

let writes_accepted = "writes_accepted"
let writes_declined = "writes_declined"
let writes_passthrough = "writes_passthrough"
let read_hits = "read_hits"
let read_misses = "read_misses"
let flushes = "flushes"
let flush_retries = "flush_retries"
let battery_failures = "battery_failures"
let flush_batch_bytes = "flush_batch_bytes"
let dirty_bytes = "dirty_bytes"
let dirty_bytes_peak = "dirty_bytes_peak"
let battery_ok = "battery_ok"

(* {1 raid.<name>} *)

let degraded_reads = "degraded_reads"
let degraded_writes = "degraded_writes"
let full_stripe_writes = "full_stripe_writes"
let rmw_writes = "rmw_writes"
let member_failures = "member_failures"
let rebuilds_started = "rebuilds_started"
let rebuilds_completed = "rebuilds_completed"
let rebuild_chunks = "rebuild_chunks"
let rebuild_bytes = "rebuild_bytes"
let rebuild_active = "rebuild_active"
let journal_replays = "journal_replays"

(* {1 write_layer[.vol<k>]} *)

let batches = "batches"
let gathered_replies = "gathered_replies"
let procrastinations = "procrastinations"
let procrastinate_failures = "procrastinate_failures"
let mbuf_hits = "mbuf_hits"
let rescues = "rescues"
let flush_failures = "flush_failures"
let metadata_flushes_saved = "metadata_flushes_saved"
let batch_size = "batch_size"
let reply_latency_us = "reply_latency_us"

(* {1 read_plane[.vol<k>]} *)

let cache_hits = "cache_hits"
let cache_misses = "cache_misses"
let cache_evictions = "cache_evictions"
let readahead_batches = "readahead_batches"
let readahead_blocks = "readahead_blocks"
let readahead_hits = "readahead_hits"
let readahead_wasted = "readahead_wasted"

(* {1 server[.vol<k>]} *)

(* Mutating procs bounced off a read-only export with NFSERR_ROFS. *)
let rofs_rejections = "rofs_rejections"

(* {1 journey} *)

let records = "records"
let long_ops = "long_ops"
let total_us = "total_us"

(* Per-phase latency histograms, e.g. "phase_us_gather_wait". *)
let phase_us phase = "phase_us_" ^ phase

(* The canonical phase names of a WRITE's journey, in journey order:
   socket wait for an nfsd, dupcache admission, cache insertion, wait
   on the gather plane, the disk flush, and the reply fan-out. *)
let phase_sock_wait = "sock_wait"
let phase_dupcache = "dupcache"
let phase_prep = "prep"
let phase_gather_wait = "gather_wait"
let phase_disk = "disk"
let phase_reply = "reply"

let journey_phases =
  [ phase_sock_wait; phase_dupcache; phase_prep; phase_gather_wait; phase_disk; phase_reply ]

(* A READ's journey replaces the write-oriented gather/disk phases
   with a cache attribution: either the block was resident (hit) or
   the op waited for the device / an in-flight prefetch (miss). *)
let phase_cache_hit = "cache_hit"
let phase_cache_miss_wait = "cache_miss_wait"

(* {1 trace} *)

let dropped = "dropped"

(* {1 station.<client>} *)

let station_ops = "ops"
let station_bytes = "bytes"
let station_lat_us = "lat_us"

(* {1 per-procedure families} *)

(* server[.vol<k>]: one counter per NFS procedure, e.g. "ops_WRITE". *)
let ops proc_name = "ops_" ^ proc_name

(* nfs.client: per-procedure latency histograms, e.g. "lat_us_WRITE". *)
let lat_us proc_name = "lat_us_" ^ proc_name
