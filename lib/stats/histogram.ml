type t = {
  least : float;
  growth : float;
  counts : int array;
  mutable n : int;
  mutable total : float;
}

let create ?(least = 1.0) ?(growth = 1.25) ?(buckets = 128) () =
  if least <= 0.0 then invalid_arg "Histogram.create: least must be positive";
  if growth <= 1.0 then invalid_arg "Histogram.create: growth must exceed 1";
  if buckets < 2 then invalid_arg "Histogram.create: need at least 2 buckets";
  { least; growth; counts = Array.make buckets 0; n = 0; total = 0.0 }

let bucket_of h x =
  if x < h.least then 0
  else
    let i = 1 + int_of_float (log (x /. h.least) /. log h.growth) in
    Stdlib.min i (Array.length h.counts - 1)

let upper_edge h i = if i = 0 then h.least else h.least *. (h.growth ** float_of_int i)
let lower_edge h i = if i = 0 then 0.0 else h.least *. (h.growth ** float_of_int (i - 1))

(* Representative value of a bucket: the geometric midpoint of its
   edges, which splits the bucket's relative error evenly — the upper
   edge overstates by up to [growth - 1]. The underflow bucket [0,
   least) has no geometric midpoint (its lower edge is 0); its
   arithmetic midpoint stands in. *)
let midpoint h i =
  if i = 0 then h.least /. 2.0 else sqrt (lower_edge h i *. upper_edge h i)

let add h x =
  let i = bucket_of h x in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.total <- h.total +. x

let count h = h.n
let total h = h.total
let mean h = if h.n = 0 then 0.0 else h.total /. float_of_int h.n

let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    (* q = 1.0 must land on the last sample, not past it. *)
    let target =
      Stdlib.min (h.n - 1) (int_of_float (Float.round (q *. float_of_int (h.n - 1))))
    in
    let seen = ref 0 and result = ref (midpoint h (Array.length h.counts - 1)) in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen > target then begin
             result := midpoint h i;
             raise Exit
           end)
         h.counts
     with Exit -> ());
    !result
  end

let median h = quantile h 0.5
let p99 h = quantile h 0.99

let buckets h =
  let acc = ref [] in
  for i = Array.length h.counts - 1 downto 0 do
    if h.counts.(i) > 0 then acc := (lower_edge h i, upper_edge h i, h.counts.(i)) :: !acc
  done;
  !acc

let merge_into ~into src =
  if
    into.least <> src.least || into.growth <> src.growth
    || Array.length into.counts <> Array.length src.counts
  then invalid_arg "Histogram.merge_into: shape mismatch";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.total <- into.total +. src.total

let reset h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.n <- 0;
  h.total <- 0.0
