(** Timeline event recorder, used to regenerate the paper's Figure 1
    (packet/disk activity of a standard vs a gathering server).

    Storage is a fixed-capacity ring buffer: once full, each new event
    overwrites the oldest, so arbitrarily long traced runs hold memory
    constant. *)

type t

val default_capacity : int
(** 4096 events. *)

val create : ?enabled:bool -> ?capacity:int -> Nfsg_sim.Engine.t -> t
(** Disabled recorders make {!emit} a no-op so traced code can run in
    benchmarks at full speed. [capacity] bounds retained events
    (default {!default_capacity}); must be positive. *)

val enabled : t -> bool
val capacity : t -> int

val dropped : t -> int
(** Events overwritten since creation (or the last {!clear}). *)

val emit : t -> actor:string -> string -> unit
(** Record an event for [actor] at the current virtual time. *)

val events : t -> (Nfsg_sim.Time.t * string * string) list
(** The retained (newest [capacity]) events, oldest first. *)

val render : t -> string
(** Text timeline: one line per event, ["  t=+12.34ms  actor  event"],
    with time relative to the first retained event; notes dropped
    events when the ring has wrapped. *)

val clear : t -> unit
