(** Minimal JSON values with a deterministic printer.

    Built for the metrics reporter and the benchmark trajectory files:
    no external dependency, one canonical rendering per value (integral
    floats print without a fraction, others with 9 significant digits),
    so identical metric values always serialize to identical bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] adds two-space indentation and a trailing
    newline; both forms are deterministic. Non-finite floats render as
    [null]. *)

(** {1 Accessors} (for tests and report post-processing) *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
