open Nfsg_sim

type counter = int ref
type gauge = float ref

type instrument = Counter of counter | Gauge of gauge | Hist of Histogram.t

type t = { table : (string * string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let register t ~ns name make =
  let key = (ns, name) in
  match Hashtbl.find_opt t.table key with
  | Some existing -> existing
  | None ->
      let i = make () in
      Hashtbl.replace t.table key i;
      i

let mismatch ~ns name ~want got =
  invalid_arg
    (Printf.sprintf "Metrics: %s/%s already registered as a %s, wanted a %s" ns name
       (kind_name got) want)

(* Registration is find-or-create: a server that crashes and restarts
   re-registers its instruments and keeps counting where it left off,
   and several simulated worlds can share one registry (the
   [--metrics-json] sink) with their counts accumulating. *)
let counter t ~ns name =
  match register t ~ns name (fun () -> Counter (ref 0)) with
  | Counter c -> c
  | other -> mismatch ~ns name ~want:"counter" other

let gauge t ~ns name =
  match register t ~ns name (fun () -> Gauge (ref 0.0)) with
  | Gauge g -> g
  | other -> mismatch ~ns name ~want:"gauge" other

let histogram t ~ns ?least ?growth ?buckets name =
  match register t ~ns name (fun () -> Hist (Histogram.create ?least ?growth ?buckets ())) with
  | Hist h -> h
  | other -> mismatch ~ns name ~want:"histogram" other

let incr c = Stdlib.incr c
let add c n = c := !c + n
let value c = !c
let set g v = g := v
let set_max g v = if v > !g then g := v
let gauge_value g = !g

let find t ~ns name = Hashtbl.find_opt t.table (ns, name)
let find_counter t ~ns name = match find t ~ns name with Some (Counter c) -> Some !c | _ -> None
let find_gauge t ~ns name = match find t ~ns name with Some (Gauge g) -> Some !g | _ -> None
let find_histogram t ~ns name = match find t ~ns name with Some (Hist h) -> Some h | _ -> None

(* Span timing on the simulation clock: the elapsed virtual time of [f]
   (including everything it blocked on) lands in [h], in microseconds. *)
let span eng h f =
  let t0 = Engine.now eng in
  let finish () = Histogram.add h (Time.to_us_f (Engine.now eng - t0)) in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let namespaces t =
  Hashtbl.fold (fun (ns, _) _ acc -> if List.mem ns acc then acc else ns :: acc) t.table []
  |> List.sort compare

let histogram_json h =
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("total", Json.Float (Histogram.total h));
      ("mean", Json.Float (Histogram.mean h));
      ("p50", Json.Float (Histogram.median h));
      ("p99", Json.Float (Histogram.p99 h));
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) -> Json.List [ Json.Float lo; Json.Float hi; Json.Int c ])
             (Histogram.buckets h)) );
    ]

(* Deterministic: namespaces and instrument names are emitted sorted,
   never in Hashtbl order. *)
let to_json t =
  let ns_json ns =
    let collect pick =
      Hashtbl.fold
        (fun (n, name) i acc -> if n = ns then match pick i with Some v -> (name, v) :: acc | None -> acc else acc)
        t.table []
      |> List.sort compare
    in
    let counters = collect (function Counter c -> Some (Json.Int !c) | _ -> None) in
    let gauges = collect (function Gauge g -> Some (Json.Float !g) | _ -> None) in
    let hists = collect (function Hist h -> Some (histogram_json h) | _ -> None) in
    let section name fields = if fields = [] then [] else [ (name, Json.Obj fields) ] in
    Json.Obj (section "counters" counters @ section "gauges" gauges @ section "histograms" hists)
  in
  Json.Obj
    [
      ("schema", Json.String "nfsgather-metrics/1");
      ("namespaces", Json.Obj (List.map (fun ns -> (ns, ns_json ns)) (namespaces t)));
    ]

let to_string ?pretty t = Json.to_string ?pretty (to_json t)
