(** Central registry of metric namespaces and instrument names.

    The M001 lint rule forbids inline string literals at
    [Metrics.counter]/[gauge]/[histogram]/[find_*] call sites: all
    names come from here, so a namespace typo is a compile error.
    These strings appear in the metrics JSON and the committed
    BENCH_*.json artifacts — renaming one breaks CI's byte-diffs. *)

module Ns : sig
  val net : string
  val rpc_svc : string
  val rpc_client : string
  val rpc_dupcache : string
  val nfs_client : string
  val server : string
  val write_layer : string

  val disk : string -> string
  (** [disk name] is ["disk." ^ name], e.g. ["disk.rz26-0"]. *)

  val nvram : string -> string
  (** [nvram name] is ["nvram." ^ name]. *)

  val raid : string -> string
  (** [raid name] is ["raid." ^ name] (redundant array instruments). *)

  val server_vol : int -> string
  (** [server_vol k] is ["server.vol<k>"] (multi-volume exports). *)

  val write_layer_vol : int -> string
  (** [write_layer_vol k] is ["write_layer.vol<k>"]. *)

  val read_plane : string
  (** Buffer-cache and read-ahead accounting (legacy 1-volume server). *)

  val read_plane_vol : int -> string
  (** [read_plane_vol k] is ["read_plane.vol<k>"]. *)

  val journey : string
  (** Per-op journey phase decomposition (the live operability plane). *)

  val trace : string
  (** Trace-ring health: the dropped-record counters. *)

  val station_prefix : string

  val station : string -> string
  (** [station c] is ["station." ^ c] — per-client attribution. *)

  val station_of : string -> string option
  (** [station_of ns] is [Some client] iff [ns] is a station namespace. *)
end

(** {1 net} *)

val datagrams_sent : string
val datagrams_lost : string
val datagrams_duplicated : string
val datagrams_blackholed : string
val bytes_sent : string

(** {1 rpc.svc} *)

val received : string
val garbage : string
val dispatch_errors : string
val duplicate_drops : string
val duplicate_replays : string

(** {1 rpc.client} *)

val retransmissions : string
val stale_replies : string
val timeouts : string
val rtt_us : string

(** {1 rpc.dupcache} *)

val drops : string
val replays : string
val evictions : string
val expirations : string
val overflows : string

(** {1 disk.<name>} *)

val reads : string
val writes : string
val bytes_read : string
val bytes_written : string
val seek_us : string
val rotation_us : string
val transfer_us : string
val service_us : string
val queue_depth : string
val queue_depth_peak : string

val queue_wait_us : string
(** Histogram: submission-to-service-start wait per request, µs — the
    starvation measure the Deadline scheduler bounds. *)

val merged_requests : string
(** Counter: requests absorbed into a physically adjacent neighbour's
    transaction (k-way merge counts k-1). *)

val deadline_promotions : string
(** Counter: starved requests the Deadline scheduler served out of
    elevator order. *)

val barriers : string
(** Counter: barrier items retired by the scheduler. *)

(** {1 nvram.<name>} *)

val writes_accepted : string
val writes_declined : string
val writes_passthrough : string
val read_hits : string
val read_misses : string
val flushes : string
val flush_retries : string
val battery_failures : string
val flush_batch_bytes : string
val dirty_bytes : string
val dirty_bytes_peak : string
val battery_ok : string

(** {1 raid.<name>} *)

val degraded_reads : string
val degraded_writes : string
val full_stripe_writes : string
val rmw_writes : string
val member_failures : string
val rebuilds_started : string
val rebuilds_completed : string
val rebuild_chunks : string
val rebuild_bytes : string
val rebuild_active : string
val journal_replays : string

(** {1 write_layer[.vol<k>]} *)

val batches : string
val gathered_replies : string
val procrastinations : string
val procrastinate_failures : string
val mbuf_hits : string
val rescues : string
val flush_failures : string
val metadata_flushes_saved : string
val batch_size : string
val reply_latency_us : string

(** {1 read_plane[.vol<k>]} *)

val cache_hits : string
(** Counter: demand reads served from a resident block. *)

val cache_misses : string
(** Counter: demand reads that waited — on the device or on an
    in-flight prefetch. *)

val cache_evictions : string
(** Counter: clean blocks evicted under the capacity budget. *)

val readahead_batches : string
(** Counter: prefetch batches submitted by the read-ahead engine. *)

val readahead_blocks : string
(** Counter: blocks requested across all prefetch batches. *)

val readahead_hits : string
(** Counter: prefetched blocks later consumed by a demand read. *)

val readahead_wasted : string
(** Counter: prefetched blocks evicted (or dropped) before any demand
    read touched them — the cost of guessing wrong. *)

(** {1 server[.vol<k>]} *)

val rofs_rejections : string
(** Counter: mutating procs bounced off a read-only export with
    NFSERR_ROFS before reaching the write layer. *)

(** {1 journey} *)

val records : string
(** Counter: journeys finished (one per dispatched, replied-to op). *)

val long_ops : string
(** Counter: journeys whose total latency crossed the long-op
    threshold; each emitted a record into the long-op ring. *)

val total_us : string
(** Histogram: end-to-end journey latency (datagram arrival at the
    server socket to reply transmission), µs. *)

val phase_us : string -> string
(** [phase_us p] is ["phase_us_" ^ p] — per-phase journey histograms. *)

val phase_sock_wait : string
val phase_dupcache : string
val phase_prep : string
val phase_gather_wait : string
val phase_disk : string
val phase_reply : string

val journey_phases : string list
(** The six phases, in journey order. *)

val phase_cache_hit : string
(** READ journeys whose blocks were all resident: the cache phase is
    the (near-zero) in-core copy time. *)

val phase_cache_miss_wait : string
(** READ journeys that waited on the device or an in-flight prefetch;
    the histogram records the wait. *)

(** {1 trace} *)

val dropped : string
(** Counter: records overwritten in the trace rings (event ring plus
    long-op ring) — nonzero means the operability plane lost history. *)

(** {1 station.<client>} *)

val station_ops : string
val station_bytes : string
val station_lat_us : string

(** {1 per-procedure families} *)

val ops : string -> string
(** [ops p] is ["ops_" ^ p] — the server[.vol<k>] op counters. *)

val lat_us : string -> string
(** [lat_us p] is ["lat_us_" ^ p] — nfs.client latency histograms. *)
