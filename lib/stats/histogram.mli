(** Log-bucketed histogram for latency-like quantities.

    Buckets grow geometrically from [least] with ratio [growth], so a
    histogram spanning nanoseconds to seconds needs only a few dozen
    buckets while keeping relative error bounded by [growth - 1]. *)

type t

val create : ?least:float -> ?growth:float -> ?buckets:int -> unit -> t
(** Defaults: [least = 1.0], [growth = 1.25], [buckets = 128]. Values
    below [least] land in bucket 0 (the underflow bucket); values
    beyond the last bucket are clamped into it. *)

val add : t -> float -> unit
val count : t -> int
val total : t -> float
(** Sum of all recorded values. *)

val mean : t -> float

val quantile : t -> float -> float
(** [quantile h q] for [q] in [\[0,1\]] (clamped), estimated as the
    {e geometric midpoint} of the bucket containing the [q]-th sample —
    the upper edge would systematically overstate by up to
    [growth - 1]. The underflow bucket reports its arithmetic midpoint
    [least / 2]. [q = 1.0] lands on the last sample. 0 when empty. *)

val median : t -> float
val p99 : t -> float

val buckets : t -> (float * float * int) list
(** Non-empty buckets, ascending, as [(lower_edge, upper_edge, count)].
    The underflow bucket's lower edge is 0. *)

val merge_into : into:t -> t -> unit
(** Add [src]'s counts into [into]. Raises [Invalid_argument] if the
    two histograms have different shapes. *)

val reset : t -> unit
