(* nfsmon: the periodic top-like interval reporter.

   Every [interval] of simulated time the monitor snapshots the
   per-client station counters the journey plane maintains (namespace
   "station.<client>") and renders the interval's deltas — ops, KB
   moved, mean end-to-end latency — one row per active station, busiest
   first. The header line carries the totals plus the operability
   plane's own health (long-op count, dropped trace records).

   Everything is driven by the simulation clock and the deterministic
   registry iteration order, so a run's monitor output is byte-stable:
   the double-run equality test and CI's golden diff both rest on
   that. The monitor never prints (O001); it accumulates into a buffer
   and optionally streams each chunk to an [emit] callback supplied by
   the binary that owns stdout. *)

open Nfsg_sim

type snap = { ops : int; bytes : int; lat_n : int; lat_total : float }

let zero_snap = { ops = 0; bytes = 0; lat_n = 0; lat_total = 0.0 }

type t = {
  eng : Engine.t;
  metrics : Metrics.t;
  interval : Time.t;
  buf : Buffer.t;
  emit : (string -> unit) option;
  prev : (string, snap) Hashtbl.t;
  mutable timer : Engine.timer option;
  mutable stopped : bool;
  mutable ticks : int;
}

let create eng ~metrics ~interval ?emit () =
  if interval <= 0 then invalid_arg "Monitor.create: interval must be positive";
  {
    eng;
    metrics;
    interval;
    buf = Buffer.create 4096;
    emit;
    prev = Hashtbl.create 16;
    timer = None;
    stopped = false;
    ticks = 0;
  }

let stations t =
  List.filter_map
    (fun ns -> Option.map (fun client -> (client, ns)) (Names.Ns.station_of ns))
    (Metrics.namespaces t.metrics)

let snap_of t ns =
  let c name = Option.value ~default:0 (Metrics.find_counter t.metrics ~ns name) in
  let lat_n, lat_total =
    match Metrics.find_histogram t.metrics ~ns Names.station_lat_us with
    | Some h -> (Histogram.count h, Histogram.total h)
    | None -> (0, 0.0)
  in
  { ops = c Names.station_ops; bytes = c Names.station_bytes; lat_n; lat_total }

let plane_counter t ~ns name = Option.value ~default:0 (Metrics.find_counter t.metrics ~ns name)

let render_tick t =
  let now = Engine.now t.eng in
  let rows =
    List.filter_map
      (fun (client, ns) ->
        let cur = snap_of t ns in
        let prev = Option.value ~default:zero_snap (Hashtbl.find_opt t.prev client) in
        Hashtbl.replace t.prev client cur;
        let d_ops = cur.ops - prev.ops in
        if d_ops = 0 then None
        else
          let d_bytes = cur.bytes - prev.bytes in
          let d_n = cur.lat_n - prev.lat_n in
          let d_lat = cur.lat_total -. prev.lat_total in
          let mean_ms = if d_n = 0 then 0.0 else d_lat /. float_of_int d_n /. 1000.0 in
          Some (client, d_ops, d_bytes, mean_ms))
      (stations t)
  in
  (* Busiest station first; ties break on the name so the order never
     depends on registry iteration. *)
  let rows =
    List.sort
      (fun (c1, o1, _, _) (c2, o2, _, _) -> match compare o2 o1 with 0 -> compare c1 c2 | n -> n)
      rows
  in
  let total_ops = List.fold_left (fun a (_, o, _, _) -> a + o) 0 rows in
  let total_kb =
    List.fold_left (fun a (_, _, b, _) -> a +. (float_of_int b /. 1024.0)) 0.0 rows
  in
  let long_ops = plane_counter t ~ns:Names.Ns.journey Names.long_ops in
  let dropped = plane_counter t ~ns:Names.Ns.trace Names.dropped in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "nfsmon t=+%.0fms interval=%.0fms ops=%d kb=%.1f long_ops=%d dropped=%d\n"
       (Time.to_ms_f now) (Time.to_ms_f t.interval) total_ops total_kb long_ops dropped);
  if rows = [] then Buffer.add_string buf "  (idle)\n"
  else begin
    let name_w =
      List.fold_left (fun w (c, _, _, _) -> Stdlib.max w (String.length c)) (String.length "station") rows
    in
    Buffer.add_string buf (Printf.sprintf "  %-*s  %6s  %9s  %9s\n" name_w "station" "ops" "kb" "mean_ms");
    List.iter
      (fun (client, ops, bytes, mean_ms) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s  %6d  %9.1f  %9.2f\n" name_w client ops
             (float_of_int bytes /. 1024.0)
             mean_ms))
      rows
  end;
  Buffer.contents buf

let tick t =
  t.ticks <- t.ticks + 1;
  let s = render_tick t in
  Buffer.add_string t.buf s;
  match t.emit with Some f -> f s | None -> ()

let rec arm t =
  t.timer <-
    Some
      (Engine.timer t.eng ~after:t.interval (fun () ->
           if not t.stopped then begin
             tick t;
             arm t
           end))

let start t =
  if t.timer = None && not t.stopped then arm t

let stop t =
  t.stopped <- true;
  (match t.timer with Some tm -> ignore (Engine.cancel tm : bool) | None -> ());
  t.timer <- None

let ticks t = t.ticks
let output t = Buffer.contents t.buf
