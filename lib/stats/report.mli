(** Plain-text table rendering for experiment output.

    Produces the aligned rows the paper's tables use, e.g.:

    {v
    # of Client Biods          0     3     7    11    15
    client write speed (KB/s) 165   194   201   203   205
    v} *)

type t

val create : title:string -> columns:string list -> t
(** [columns] are the header cells after the row-label column. *)

val add_section : t -> string -> unit
(** A full-width sub-heading row (e.g. "Without Write Gathering"). *)

val add_row : t -> string -> float list -> unit
(** [add_row t label cells] — cells are rendered with up to one decimal
    place, dropping a trailing [.0]. Cell count must match
    [columns]. *)

val add_text_row : t -> string -> string list -> unit

val to_string : t -> string
(** [to_string] renders the table with aligned columns. *)
