type line = Section of string | Row of string * string list

type t = { title : string; columns : string list; mutable lines : line list }

let create ~title ~columns = { title; columns; lines = [] }
let add_section t s = t.lines <- Section s :: t.lines

let cell_of_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

let add_row t label cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Report.add_row %S: %d cells for %d columns" label (List.length cells)
         (List.length t.columns));
  t.lines <- Row (label, List.map cell_of_float cells) :: t.lines

let add_text_row t label cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Report.add_text_row: cell count mismatch";
  t.lines <- Row (label, cells) :: t.lines

let to_string t =
  let lines = List.rev t.lines in
  let label_width =
    List.fold_left
      (fun w line -> match line with Row (l, _) -> Stdlib.max w (String.length l) | Section _ -> w)
      (String.length "") lines
  in
  let ncols = List.length t.columns in
  let col_widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> col_widths.(i) <- Stdlib.max col_widths.(i) (String.length c)) cells
  in
  measure t.columns;
  List.iter (function Row (_, cells) -> measure cells | Section _ -> ()) lines;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad_left s w = String.make (w - String.length s) ' ' ^ s in
  let pad_right s w = s ^ String.make (w - String.length s) ' ' in
  let render_row label cells =
    Buffer.add_string buf (pad_right label label_width);
    List.iteri (fun i c -> Buffer.add_string buf ("  " ^ pad_left c col_widths.(i))) cells;
    Buffer.add_char buf '\n'
  in
  render_row "" t.columns;
  List.iter
    (function
      | Section s ->
          Buffer.add_string buf s;
          Buffer.add_char buf '\n'
      | Row (label, cells) -> render_row label cells)
    lines;
  Buffer.contents buf

