(** nfsmon: periodic top-like reporting of per-client-station activity.

    Reads the ["station.<client>"] counters the journey plane
    maintains and renders each interval's deltas (ops, KB, mean
    latency), busiest station first, plus plane health (long-op count,
    dropped trace records). Driven entirely by the simulation clock:
    output is deterministic and byte-stable across identical runs.

    The monitor accumulates output in a buffer ({!output}) and can
    stream each interval chunk to an [emit] callback — it never writes
    to stdout itself. *)

type t

val create :
  Nfsg_sim.Engine.t ->
  metrics:Metrics.t ->
  interval:Nfsg_sim.Time.t ->
  ?emit:(string -> unit) ->
  unit ->
  t

val start : t -> unit
(** Arm the interval timer: the first report covers [0, interval).
    While armed, the monitor keeps the event queue non-empty — the
    owner must {!stop} it when the driven load completes, or
    [Engine.run] will never return. *)

val stop : t -> unit
(** Cancel the timer. Idempotent. *)

val ticks : t -> int
(** Intervals reported so far. *)

val output : t -> string
(** Everything rendered so far, in order. *)
