(* Minimal deterministic JSON: no external dependency, canonical float
   rendering, object keys emitted in the order given (builders sort
   where determinism across Hashtbl iteration order matters). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One canonical rendering per float value: integral values print with
   no fraction, everything else with 9 significant digits — enough for
   any metric here, and stable across runs by construction. Non-finite
   values have no JSON representation; they become null. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v ->
      if Float.is_nan v || Float.abs v = Float.infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr v)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

(* Pretty printer with two-space indent: the benchmark trajectory files
   are meant to be read (and diffed) by humans as well as machines. *)
let rec write_pretty buf ~indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          write_pretty buf ~indent:(indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write_pretty buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) t =
  let buf = Buffer.create 1024 in
  if pretty then write_pretty buf ~indent:0 t else write buf t;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float v -> Some v
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
