open Nfsg_sim

type params = {
  capacity : int;
  accept_limit : int;
  copy_rate : float;
  copy_overhead : Time.t;
  flush_cluster : int;
  flush_trigger : int;
  flush_idle : Time.t;
}

(* Lazy draining is the point of the board: dirty blocks (notably the
   inode block a sequential writer rewrites on every WRITE) sit in
   battery-backed RAM coalescing until the high watermark forces big,
   efficient spindle transactions. *)
let default_params =
  {
    capacity = 1024 * 1024;
    accept_limit = 8 * 1024;
    copy_rate = 50e6;
    copy_overhead = Time.of_us_f 80.0;
    flush_cluster = 128 * 1024;
    flush_trigger = 640 * 1024;
    flush_idle = Time.of_ms_f 200.0;
  }

(* Board instruments: what the cache absorbed, what it declined, how
   big the drain transactions coalesced, and battery state. *)
type inst = {
  m_accepted : Nfsg_stats.Metrics.counter;
  m_declined : Nfsg_stats.Metrics.counter;
  m_passthrough : Nfsg_stats.Metrics.counter;
  m_read_hits : Nfsg_stats.Metrics.counter;
  m_read_misses : Nfsg_stats.Metrics.counter;
  m_flushes : Nfsg_stats.Metrics.counter;
  m_flush_retries : Nfsg_stats.Metrics.counter;
  m_battery_failures : Nfsg_stats.Metrics.counter;
  m_flush_bytes : Nfsg_stats.Histogram.t;
  m_dirty_gauge : Nfsg_stats.Metrics.gauge;
  m_dirty_peak : Nfsg_stats.Metrics.gauge;
  m_battery_gauge : Nfsg_stats.Metrics.gauge;
}

let make_inst metrics ~name =
  let module M = Nfsg_stats.Metrics in
  let module Names = Nfsg_stats.Names in
  let ns = Names.Ns.nvram name in
  let i =
    {
      m_accepted = M.counter metrics ~ns Names.writes_accepted;
      m_declined = M.counter metrics ~ns Names.writes_declined;
      m_passthrough = M.counter metrics ~ns Names.writes_passthrough;
      m_read_hits = M.counter metrics ~ns Names.read_hits;
      m_read_misses = M.counter metrics ~ns Names.read_misses;
      m_flushes = M.counter metrics ~ns Names.flushes;
      m_flush_retries = M.counter metrics ~ns Names.flush_retries;
      m_battery_failures = M.counter metrics ~ns Names.battery_failures;
      m_flush_bytes = M.histogram metrics ~ns ~least:512.0 Names.flush_batch_bytes;
      m_dirty_gauge = M.gauge metrics ~ns Names.dirty_bytes;
      m_dirty_peak = M.gauge metrics ~ns Names.dirty_bytes_peak;
      m_battery_gauge = M.gauge metrics ~ns Names.battery_ok;
    }
  in
  M.set i.m_battery_gauge 1.0;
  i

type state = {
  eng : Engine.t;
  p : params;
  backing : Device.t;
  dirty : Extent_map.t;
  mutable in_flight : (int * Bytes.t) option;
  mutable rotor : int;  (** elevator position for the drain sweep *)
  mutable crashed : bool;
  mutable draining : bool;
  mutable battery_ok : bool;
  mutable flush_retries : int;  (** backing-store Io_errors survived by the flusher *)
  mutable gen : int;  (** flusher generation; bumped on recovery *)
  more : Condition.t;  (** new dirty data *)
  space : Condition.t;  (** NVRAM space freed *)
  clean : Condition.t;  (** cache fully drained *)
  inst : inst;
}

let used st =
  Extent_map.total_bytes st.dirty
  + match st.in_flight with Some (_, d) -> Bytes.length d | None -> 0

let note_dirty st =
  let module M = Nfsg_stats.Metrics in
  let v = float_of_int (used st) in
  M.set st.inst.m_dirty_gauge v;
  M.set_max st.inst.m_dirty_peak v

let is_clean st = Extent_map.is_empty st.dirty && st.in_flight = None

(* Boards smaller than the configured watermark still have to drain
   under space pressure. *)
let effective_trigger st = Stdlib.min st.p.flush_trigger (st.p.capacity / 2)

(* Next contiguous dirty run in elevator order, up to flush_cluster
   bytes. Sweeping (instead of always draining the lowest extent)
   keeps a constantly-redirtied inode block from monopolising the
   drain while sequential data piles up behind it. *)
let next_cluster st =
  match Extent_map.take_after st.dirty ~off:st.rotor ~max:st.p.flush_cluster with
  | Some (off, data) as r ->
      st.rotor <- off + Bytes.length data;
      r
  | None -> None

let rec flusher st my_gen () =
  if my_gen = st.gen then begin
    if Extent_map.is_empty st.dirty || st.crashed then begin
      if is_clean st then Condition.broadcast st.clean;
      Condition.wait st.more;
      flusher st my_gen ()
    end
    else if (not st.draining) && Extent_map.total_bytes st.dirty < effective_trigger st then begin
      (* Below the watermark: let dirty data age and coalesce. A new
         write only re-checks the watermark; an undisturbed idle
         period forces an age-out flush. *)
      let signalled = Condition.wait_timeout st.eng st.more st.p.flush_idle in
      if my_gen = st.gen && (not st.crashed) && not signalled then flush_one st;
      flusher st my_gen ()
    end
    else begin
      flush_one st;
      flusher st my_gen ()
    end
  end

and flush_one st =
  match next_cluster st with
  | None -> ()
  | Some (off, data) -> (
      st.in_flight <- Some (off, data);
      (* Drain as a background-class submission: the platter's
         scheduler can tell a lazy drain from a latency-critical
         synchronous write and merge/reorder it accordingly. The data
         buffer is ours (it left the dirty map), so no copy. *)
      let drain () =
        let r = Io.write_req ~class_:`Bg_drain ~off data in
        st.backing.Device.submit [ Io.Req r ];
        Io.await r
      in
      match drain () with
      | () ->
          st.in_flight <- None;
          Nfsg_stats.Metrics.incr st.inst.m_flushes;
          Nfsg_stats.Histogram.add st.inst.m_flush_bytes
            (float_of_int (Bytes.length data));
          note_dirty st;
          if is_clean st then st.draining <- false;
          Condition.broadcast st.space;
          if is_clean st then Condition.broadcast st.clean
      | exception Device.Io_error _ ->
          (* Transient backing failure: the data is still battery-backed,
             so put it back in the dirty map (bytes written while the
             attempt was in flight win) and retry after a pause. *)
          Extent_map.apply st.dirty ~off data;
          Extent_map.insert st.dirty ~off data;
          st.in_flight <- None;
          st.flush_retries <- st.flush_retries + 1;
          Nfsg_stats.Metrics.incr st.inst.m_flush_retries;
          Engine.delay (Time.of_ms_f 50.0))

let spawn_flusher st =
  Engine.spawn st.eng ~name:"presto-flusher" (flusher st st.gen)

(* Overlay NVRAM contents (in-flight first, then the dirty map so newer
   bytes win) onto a buffer of platter data. *)
let overlay st ~off buf =
  (match st.in_flight with
  | Some (ioff, idata) ->
      let tmp = Extent_map.create () in
      Extent_map.insert tmp ~off:ioff idata;
      Extent_map.apply tmp ~off buf
  | None -> ());
  Extent_map.apply st.dirty ~off buf

(* Weak registry: lets {!dirty_bytes} find the internal state of a
   device without pinning retired simulation worlds (and their 96 MB
   platters) in memory forever. *)
(* nfslint: allow S001 weak ephemeron registry whose entries die with their devices; emptying it would orphan NVRAM devices that are still live *)
let registry : (Device.t, state) Ephemeron.K1.t list ref = ref []

let state_of dev =
  let rec find = function
    | [] -> invalid_arg "Nvram: not an NVRAM device"
    | e :: rest -> (
        match Ephemeron.K1.query e dev with Some st -> st | None -> find rest)
  in
  find !registry

let dirty_bytes dev = used (state_of dev)
let flush_retries dev = (state_of dev).flush_retries
let battery_ok dev = (state_of dev).battery_ok

(* A detected battery fault, as a real Prestoserve driver handles it:
   the board stops accepting new dirty data (writes degrade to
   synchronous pass-through, {!Device.t.accelerated} turns false) and
   drains what it holds to the platter as fast as it can. Until that
   drain completes the board's contents are volatile — a power crash in
   the window loses them (see {!recover}). *)
let fail_battery dev =
  let st = state_of dev in
  if st.battery_ok then begin
    st.battery_ok <- false;
    st.draining <- true;
    Nfsg_stats.Metrics.incr st.inst.m_battery_failures;
    Nfsg_stats.Metrics.set st.inst.m_battery_gauge 0.0;
    Condition.signal st.more
  end

let repair_battery dev =
  let st = state_of dev in
  st.battery_ok <- true;
  Nfsg_stats.Metrics.set st.inst.m_battery_gauge 1.0

let create eng ?(name = "presto") ?(params = default_params) ?metrics
    ?(cpu_charge = fun _ -> ()) backing =
  let metrics = match metrics with Some m -> m | None -> Nfsg_stats.Metrics.create () in
  let st =
    {
      eng;
      p = params;
      backing;
      dirty = Extent_map.create ();
      in_flight = None;
      rotor = 0;
      crashed = false;
      draining = false;
      battery_ok = true;
      flush_retries = 0;
      gen = 0;
      more = Condition.create ();
      space = Condition.create ();
      clean = Condition.create ();
      inst = make_inst metrics ~name;
    }
  in
  spawn_flusher st;
  let copy_time len =
    st.p.copy_overhead + Time.of_sec_f (float_of_int len /. st.p.copy_rate)
  in
  (* A powered-off board services nothing: park the caller forever,
     like an unplugged drive. *)
  let check_power () =
    if st.crashed then (Engine.suspend (fun _wake -> ()) : unit)
  in
  let write ~off data =
    check_power ();
    let len = Bytes.length data in
    if not st.battery_ok then begin
      (* Battery fault: RAM is no longer stable storage, so the board
         may not acknowledge from it — synchronous pass-through. *)
      Nfsg_stats.Metrics.incr st.inst.m_passthrough;
      st.backing.Device.write ~off data
    end
    else if len > st.p.accept_limit then begin
      (* Declined: degrade to underlying device speed (paper 6.3). *)
      Nfsg_stats.Metrics.incr st.inst.m_declined;
      st.backing.Device.write ~off data
    end
    else begin
      while used st + len > st.p.capacity do
        Condition.wait st.space
      done;
      (* The battery may have failed while we waited for space. *)
      if not st.battery_ok then begin
        Nfsg_stats.Metrics.incr st.inst.m_passthrough;
        st.backing.Device.write ~off data
      end
      else begin
        let d = copy_time len in
        cpu_charge d;
        Engine.delay d;
        Extent_map.insert st.dirty ~off (Bytes.copy data);
        Nfsg_stats.Metrics.incr st.inst.m_accepted;
        note_dirty st;
        Condition.signal st.more
      end
    end
  in
  let read ~off ~len =
    check_power ();
    if Extent_map.covers st.dirty ~off ~len then begin
      (* Whole range cached: served from RAM at copy speed. *)
      Nfsg_stats.Metrics.incr st.inst.m_read_hits;
      Engine.delay (copy_time len);
      let buf = Bytes.create len in
      overlay st ~off buf;
      buf
    end
    else begin
      Nfsg_stats.Metrics.incr st.inst.m_read_misses;
      let buf = st.backing.Device.read ~off ~len in
      overlay st ~off buf;
      buf
    end
  in
  let flush () =
    st.draining <- true;
    Condition.signal st.more;
    while not (is_clean st) do
      Condition.wait st.clean
    done;
    st.backing.Device.flush ()
  in
  let crash () =
    st.crashed <- true;
    st.backing.Device.crash ()
  in
  let recover () =
    st.backing.Device.recover ();
    (* Battery-backed replay: in-flight first, then the dirty map so the
       newest bytes win, exactly like the read overlay. A failed battery
       kept nothing across the outage — whatever had not drained is
       gone (which is why a battery fault forces an immediate drain). *)
    if st.battery_ok then begin
      (match st.in_flight with
      | Some (off, data) -> st.backing.Device.stable_write ~off data
      | None -> ());
      Extent_map.iter (fun off data -> st.backing.Device.stable_write ~off data) st.dirty
    end;
    (match st.in_flight with Some _ -> st.in_flight <- None | None -> ());
    Extent_map.remove_range st.dirty ~off:0 ~len:st.backing.Device.capacity;
    st.crashed <- false;
    st.draining <- false;
    st.gen <- st.gen + 1;
    spawn_flusher st;
    Condition.broadcast st.space;
    Condition.broadcast st.clean
  in
  let stable_read ~off ~len =
    let buf = st.backing.Device.stable_read ~off ~len in
    (* With a failed battery the board's RAM is volatile, not stable. *)
    if st.battery_ok then overlay st ~off buf;
    buf
  in
  (* The board has no queue of its own: requests are serviced in the
     submitter's process, at copy (or pass-through) speed, and are
     stable the moment they complete — so a batch's barriers are
     trivially in order. A failure ahead of a barrier poisons
     everything behind it in the same batch (the post-barrier items
     depend on the failed ones being stable). *)
  let submit items =
    check_power ();
    let failed = ref None in
    let poisoned = ref None in
    List.iter
      (fun item ->
        match (!poisoned, item) with
        | Some e, it -> Io.fail_item it e
        | None, Io.Barrier b ->
            (match !failed with Some e -> poisoned := Some e | None -> ());
            Ivar.fill b.done_ ()
        | None, Io.Req r -> (
            match r.Io.op with
            | Io.Write -> (
                match write ~off:r.Io.off r.Io.buf with
                | () -> Io.complete r
                | exception e ->
                    if !failed = None then failed := Some e;
                    Io.fail r e)
            | Io.Read -> (
                match read ~off:r.Io.off ~len:r.Io.len with
                | b ->
                    Bytes.blit b 0 r.Io.buf 0 r.Io.len;
                    Io.complete r
                | exception e ->
                    if !failed = None then failed := Some e;
                    Io.fail r e)))
      items
  in
  let dev =
    {
      Device.name;
      capacity = backing.Device.capacity;
      accelerated = (fun () -> st.battery_ok);
      submit;
      read;
      write;
      flush;
      crash;
      recover;
      spindle_stats = backing.Device.spindle_stats;
      stable_read;
      stable_write = backing.Device.stable_write;
    }
  in
  registry := Ephemeron.K1.make dev st :: !registry;
  dev
