(** Tagged asynchronous I/O requests — the submission currency of the
    storage stack.

    A {!req} describes one transfer; a batch of {!item}s handed to a
    device's [submit] is the unit of scheduling. Submission never
    waits for service: the device fills each request's [done_] ivar
    when the transfer is stable (or failed), and callers rendezvous
    with {!await}. This is what lets a whole gathered flush — data
    clusters, indirect blocks, the inode — sit in the device queue at
    once, where the elevator can actually sort, merge and overlap it.

    {2 Ordering}

    Within one submission, items are queued in list order. A
    {!item.Barrier} divides {e its own submission}: nothing of the
    same submission queued after the barrier is serviced before
    everything of that submission ahead of it is stable. That is the
    whole crash-ordering story — "metadata never lands before its
    data" is a data batch, a barrier, then the metadata writes, in one
    submission. Requests of {e other} submissions owe the barrier
    nothing: a device may reorder and merge them straight across it,
    so one file's flush ordering never serializes its neighbours'.

    {2 Failure}

    A failed request (fault injection, an erroring backing store)
    completes with its [error] set; {!await} re-raises it. A failure
    ahead of a barrier fails the barrier and everything queued behind
    it at that moment — the post-barrier items were ordered {e because}
    they depend on the earlier ones being stable, so they must not
    proceed (and complete with {!Nfsg_disk.Device.Io_error}-style
    errors their issuers already handle as retryable).

    {2 Contract for [submit] implementations}

    [submit] may charge submission-side time (an NVRAM admission wait,
    a copy delay) but must never block on the {e service} of what it
    enqueued. Completion callbacks registered with [Ivar.upon] run in
    the completer's context and must not block. *)

open Nfsg_sim

type op = Read | Write

type class_ = [ `Sync_write | `Gather_flush | `Bg_drain | `Read ]
(** Who is asking, for scheduler priority and fault addressing:
    latency-critical synchronous writes, gathered cluster flushes,
    background NVRAM drains, reads. *)

type req = {
  op : op;
  off : int;  (** device byte offset *)
  len : int;
  buf : Bytes.t;
      (** [Write]: the data, owned by the request (snapshot at build
          time); [Read]: the destination buffer the device fills. *)
  class_ : class_;
  tag : int;  (** unique id, for tracing and targeted fault injection *)
  done_ : unit Ivar.t;  (** filled when stable or failed *)
  mutable error : exn option;  (** set before [done_] on failure *)
}

type item = Req of req | Barrier of { tag : int; done_ : unit Ivar.t }

val fresh_tag : unit -> int
(** Process-unique, monotonically increasing. *)

val write_req : ?tag:int -> class_:class_ -> off:int -> Bytes.t -> req
(** The bytes become the request's buffer without copying: pass a
    snapshot the caller will not mutate. *)

val read_req : ?tag:int -> ?class_:class_ -> off:int -> len:int -> unit -> req
(** [class_] defaults to [`Read]; rebuild resilver reads pass
    [`Bg_drain] so they yield to foreground traffic in the queue. *)

val barrier : ?tag:int -> unit -> item

val class_name : class_ -> string

val complete : req -> unit
(** Fill [done_] successfully. Device side only. *)

val fail : req -> exn -> unit
(** Record [exn] and fill [done_]. Device side only. *)

val fail_item : item -> exn -> unit
(** {!fail} for requests; barriers complete without an error slot —
    their dependents discover failure from their own requests. *)

val item_done : item -> unit Ivar.t
val item_tag : item -> int

val await : req -> unit
(** Block until complete; re-raise the recorded error if any. *)

val await_all : req list -> unit
(** Wait for {e every} request, then raise the first recorded error
    (in list order) if any — no request is abandoned in flight. *)

val await_barrier : item -> unit

(** {1 Blocking shims}

    [Device.read]/[Device.write] compatibility on top of any [submit]:
    build one request, submit it alone, await it. *)

val blocking_read : submit:(item list -> unit) -> off:int -> len:int -> Bytes.t

val blocking_write :
  submit:(item list -> unit) -> ?class_:class_ -> off:int -> Bytes.t -> unit
(** Copies [data] before submitting, preserving the historical
    [Device.write] contract that the caller keeps the buffer. *)
