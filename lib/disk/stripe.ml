open Nfsg_sim

type t = { chunk : int; members : Device.t array; capacity : int }

(* Map a logical byte offset to (member index, member-local offset). *)
let locate st off =
  let chunk_idx = off / st.chunk in
  let member = chunk_idx mod Array.length st.members in
  let member_chunk = chunk_idx / Array.length st.members in
  (member, (member_chunk * st.chunk) + (off mod st.chunk))

(* Split [off, off+len) at chunk boundaries into per-member pieces:
   (member, member_off, logical_off, piece_len) list. *)
let split st ~off ~len =
  let rec go acc off remaining =
    if remaining = 0 then List.rev acc
    else begin
      let within = off mod st.chunk in
      let piece = Stdlib.min remaining (st.chunk - within) in
      let member, moff = locate st off in
      go ((member, moff, off, piece) :: acc) (off + piece) (remaining - piece)
    end
  in
  go [] off len

(* One epoch = the requests between two barriers. Each request is cut
   into per-member pieces and the pieces go out as one batch per member
   (no process per piece: completions chain through [Ivar.upon]). [k]
   runs when every request of the epoch has completed, carrying the
   first piece error if any — the gate that keeps an epoch behind a
   barrier from starting before the previous one is stable on every
   spindle, not just its own. *)
let launch_epoch st reqs k =
  let outstanding = ref (List.length reqs) in
  let epoch_err = ref None in
  if !outstanding = 0 then k None
  else begin
    let per_member = Array.make (Array.length st.members) [] in
    let finish_req r err =
      (match err with
      | Some e ->
          if !epoch_err = None then epoch_err := Some e;
          Io.fail r e
      | None -> Io.complete r);
      decr outstanding;
      if !outstanding = 0 then k !epoch_err
    in
    List.iter
      (fun (r : Io.req) ->
        match split st ~off:r.Io.off ~len:r.Io.len with
        | [] -> finish_req r None
        | pieces ->
            let remaining = ref (List.length pieces) in
            let perr = ref None in
            List.iter
              (fun (m, moff, loff, plen) ->
                let pr =
                  match r.Io.op with
                  | Io.Write ->
                      Io.write_req ~class_:r.Io.class_ ~off:moff
                        (Bytes.sub r.Io.buf (loff - r.Io.off) plen)
                  | Io.Read -> Io.read_req ~off:moff ~len:plen ()
                in
                Ivar.upon pr.Io.done_ (fun () ->
                    (match pr.Io.error with
                    | Some e -> if !perr = None then perr := Some e
                    | None ->
                        if r.Io.op = Io.Read then
                          Bytes.blit pr.Io.buf 0 r.Io.buf (loff - r.Io.off) plen);
                    decr remaining;
                    if !remaining = 0 then finish_req r !perr);
                per_member.(m) <- Io.Req pr :: per_member.(m))
              pieces)
      reqs;
    Array.iteri
      (fun m batch -> if batch <> [] then st.members.(m).Device.submit (List.rev batch))
      per_member
  end

(* A failed epoch poisons everything behind its barrier in the same
   submission: the later items were ordered because they depend on the
   earlier ones being stable, so they must not reach the spindles. *)
let abort_tail exn items =
  List.iter
    (fun item ->
      match item with Io.Req r -> Io.fail r exn | Io.Barrier b -> Ivar.fill b.done_ ())
    items

let rec submit_epochs st items =
  match items with
  | [] -> ()
  | _ ->
      let rec cut acc = function
        | Io.Req r :: rest -> cut (r :: acc) rest
        | (Io.Barrier _ :: _ | []) as rest -> (List.rev acc, rest)
      in
      let reqs, rest = cut [] items in
      launch_epoch st reqs (fun err ->
          match rest with
          | [] -> ()
          | Io.Barrier b :: tail -> (
              match err with
              | Some e ->
                  Ivar.fill b.done_ ();
                  abort_tail e tail
              | None ->
                  Ivar.fill b.done_ ();
                  submit_epochs st tail)
          | Io.Req _ :: _ -> assert false)

let create _eng ?(name = "stripe") ~chunk members =
  if Array.length members = 0 then invalid_arg "Stripe.create: no members";
  if chunk <= 0 then invalid_arg "Stripe.create: chunk must be positive";
  let min_cap = Array.fold_left (fun acc m -> Stdlib.min acc m.Device.capacity) max_int members in
  let capacity = min_cap / chunk * chunk * Array.length members in
  let st = { chunk; members; capacity } in
  let check ~off ~len =
    if off < 0 || len < 0 || off + len > capacity then
      invalid_arg (Printf.sprintf "%s: request [%d, %d) outside capacity %d" name off (off + len) capacity)
  in
  let submit items =
    List.iter
      (fun item ->
        match item with
        | Io.Req r -> check ~off:r.Io.off ~len:r.Io.len
        | Io.Barrier _ -> ())
      items;
    submit_epochs st items
  in
  let read ~off ~len =
    check ~off ~len;
    Io.blocking_read ~submit ~off ~len
  in
  let write ~off data =
    check ~off ~len:(Bytes.length data);
    Io.blocking_write ~submit ~class_:`Sync_write ~off data
  in
  let on_all f = Array.iter f st.members in
  let all_stats () =
    Array.fold_left
      (fun acc m -> Device.add_stats acc (m.Device.spindle_stats ()))
      Device.zero_stats st.members
  in
  let stable_read ~off ~len =
    check ~off ~len;
    let buf = Bytes.create len in
    List.iter
      (fun (m, moff, loff, plen) ->
        let piece = st.members.(m).Device.stable_read ~off:moff ~len:plen in
        Bytes.blit piece 0 buf (loff - off) plen)
      (split st ~off ~len);
    buf
  in
  let stable_write ~off data =
    let len = Bytes.length data in
    check ~off ~len;
    List.iter
      (fun (m, moff, loff, plen) ->
        st.members.(m).Device.stable_write ~off:moff (Bytes.sub data (loff - off) plen))
      (split st ~off ~len)
  in
  {
    Device.name;
    capacity;
    accelerated = (fun () -> Array.for_all (fun m -> m.Device.accelerated ()) members);
    submit;
    read;
    write;
    flush = (fun () -> on_all (fun m -> m.Device.flush ()));
    crash = (fun () -> on_all (fun m -> m.Device.crash ()));
    recover = (fun () -> on_all (fun m -> m.Device.recover ()));
    spindle_stats = all_stats;
    stable_read;
    stable_write;
  }
