open Nfsg_sim

type t = { eng : Engine.t; chunk : int; members : Device.t array; capacity : int }

(* Map a logical byte offset to (member index, member-local offset). *)
let locate st off =
  let chunk_idx = off / st.chunk in
  let member = chunk_idx mod Array.length st.members in
  let member_chunk = chunk_idx / Array.length st.members in
  (member, (member_chunk * st.chunk) + (off mod st.chunk))

(* Split [off, off+len) at chunk boundaries into per-member pieces:
   (member, member_off, logical_off, piece_len) list. *)
let split st ~off ~len =
  let rec go acc off remaining =
    if remaining = 0 then List.rev acc
    else begin
      let within = off mod st.chunk in
      let piece = Stdlib.min remaining (st.chunk - within) in
      let member, moff = locate st off in
      go ((member, moff, off, piece) :: acc) (off + piece) (remaining - piece)
    end
  in
  go [] off len

(* Run [f] on every piece in parallel and wait for all completions. *)
let parallel_pieces st pieces f =
  let ivars =
    List.map
      (fun piece ->
        let iv = Ivar.create () in
        Engine.spawn st.eng ~name:"stripe-io" (fun () ->
            f piece;
            Ivar.fill iv ());
        iv)
      pieces
  in
  List.iter Ivar.read ivars

let create eng ?(name = "stripe") ~chunk members =
  if Array.length members = 0 then invalid_arg "Stripe.create: no members";
  if chunk <= 0 then invalid_arg "Stripe.create: chunk must be positive";
  let min_cap = Array.fold_left (fun acc m -> Stdlib.min acc m.Device.capacity) max_int members in
  let capacity = min_cap / chunk * chunk * Array.length members in
  let st = { eng; chunk; members; capacity } in
  let check ~off ~len =
    if off < 0 || len < 0 || off + len > capacity then
      invalid_arg (Printf.sprintf "%s: request [%d, %d) outside capacity %d" name off (off + len) capacity)
  in
  let read ~off ~len =
    check ~off ~len;
    let buf = Bytes.create len in
    parallel_pieces st (split st ~off ~len) (fun (m, moff, loff, plen) ->
        let piece = st.members.(m).Device.read ~off:moff ~len:plen in
        Bytes.blit piece 0 buf (loff - off) plen);
    buf
  in
  let write ~off data =
    let len = Bytes.length data in
    check ~off ~len;
    parallel_pieces st (split st ~off ~len) (fun (m, moff, loff, plen) ->
        st.members.(m).Device.write ~off:moff (Bytes.sub data (loff - off) plen))
  in
  let on_all f = Array.iter f st.members in
  let all_stats () =
    Array.fold_left
      (fun acc m -> Device.add_stats acc (m.Device.spindle_stats ()))
      Device.zero_stats st.members
  in
  let stable_read ~off ~len =
    check ~off ~len;
    let buf = Bytes.create len in
    List.iter
      (fun (m, moff, loff, plen) ->
        let piece = st.members.(m).Device.stable_read ~off:moff ~len:plen in
        Bytes.blit piece 0 buf (loff - off) plen)
      (split st ~off ~len);
    buf
  in
  let stable_write ~off data =
    let len = Bytes.length data in
    check ~off ~len;
    List.iter
      (fun (m, moff, loff, plen) ->
        st.members.(m).Device.stable_write ~off:moff (Bytes.sub data (loff - off) plen))
      (split st ~off ~len)
  in
  {
    Device.name;
    capacity;
    accelerated = (fun () -> Array.for_all (fun m -> m.Device.accelerated ()) members);
    read;
    write;
    flush = (fun () -> on_all (fun m -> m.Device.flush ()));
    crash = (fun () -> on_all (fun m -> m.Device.crash ()));
    recover = (fun () -> on_all (fun m -> m.Device.recover ()));
    spindle_stats = all_stats;
    stable_read;
    stable_write;
  }
