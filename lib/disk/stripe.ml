open Nfsg_sim
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names

let sector = 512

type level = Raid0 | Raid1 | Raid5
type member_state = Active | Failed | Rebuilding

let level_name = function Raid0 -> "raid0" | Raid1 -> "raid1" | Raid5 -> "raid5"

let level_of_name = function
  | "raid0" -> Some Raid0
  | "raid1" -> Some Raid1
  | "raid5" -> Some Raid5
  | _ -> None

(* {1 RAID-0 core}

   The original striping driver, kept verbatim as the [Raid0] path: the
   committed BENCH artifacts were produced through it and its behaviour
   is part of their byte contract. *)

type r0 = { chunk : int; members : Device.t array; capacity : int }

(* Map a logical byte offset to (member index, member-local offset). *)
let locate st off =
  let chunk_idx = off / st.chunk in
  let member = chunk_idx mod Array.length st.members in
  let member_chunk = chunk_idx / Array.length st.members in
  (member, (member_chunk * st.chunk) + (off mod st.chunk))

(* Split [off, off+len) at chunk boundaries into per-member pieces:
   (member, member_off, logical_off, piece_len) list. *)
let split st ~off ~len =
  let rec go acc off remaining =
    if remaining = 0 then List.rev acc
    else begin
      let within = off mod st.chunk in
      let piece = Stdlib.min remaining (st.chunk - within) in
      let member, moff = locate st off in
      go ((member, moff, off, piece) :: acc) (off + piece) (remaining - piece)
    end
  in
  go [] off len

(* One epoch = the requests between two barriers. Each request is cut
   into per-member pieces and the pieces go out as one batch per member
   (no process per piece: completions chain through [Ivar.upon]). [k]
   runs when every request of the epoch has completed, carrying the
   first piece error if any — the gate that keeps an epoch behind a
   barrier from starting before the previous one is stable on every
   spindle, not just its own. *)
let launch_epoch st reqs k =
  let outstanding = ref (List.length reqs) in
  let epoch_err = ref None in
  if !outstanding = 0 then k None
  else begin
    let per_member = Array.make (Array.length st.members) [] in
    let finish_req r err =
      (match err with
      | Some e ->
          if !epoch_err = None then epoch_err := Some e;
          Io.fail r e
      | None -> Io.complete r);
      decr outstanding;
      if !outstanding = 0 then k !epoch_err
    in
    List.iter
      (fun (r : Io.req) ->
        match split st ~off:r.Io.off ~len:r.Io.len with
        | [] -> finish_req r None
        | pieces ->
            let remaining = ref (List.length pieces) in
            let perr = ref None in
            List.iter
              (fun (m, moff, loff, plen) ->
                let pr =
                  match r.Io.op with
                  | Io.Write ->
                      Io.write_req ~class_:r.Io.class_ ~off:moff
                        (Bytes.sub r.Io.buf (loff - r.Io.off) plen)
                  | Io.Read -> Io.read_req ~off:moff ~len:plen ()
                in
                Ivar.upon pr.Io.done_ (fun () ->
                    (match pr.Io.error with
                    | Some e -> if !perr = None then perr := Some e
                    | None ->
                        if r.Io.op = Io.Read then
                          Bytes.blit pr.Io.buf 0 r.Io.buf (loff - r.Io.off) plen);
                    decr remaining;
                    if !remaining = 0 then finish_req r !perr);
                per_member.(m) <- Io.Req pr :: per_member.(m))
              pieces)
      reqs;
    Array.iteri
      (fun m batch -> if batch <> [] then st.members.(m).Device.submit (List.rev batch))
      per_member
  end

(* A failed epoch poisons everything behind its barrier in the same
   submission: the later items were ordered because they depend on the
   earlier ones being stable, so they must not reach the spindles. *)
let abort_tail exn items =
  List.iter
    (fun item ->
      match item with Io.Req r -> Io.fail r exn | Io.Barrier b -> Ivar.fill b.done_ ())
    items

let rec cut_epoch acc = function
  | Io.Req r :: rest -> cut_epoch (r :: acc) rest
  | (Io.Barrier _ :: _ | []) as rest -> (List.rev acc, rest)

let rec submit_epochs st items =
  match items with
  | [] -> ()
  | _ ->
      let reqs, rest = cut_epoch [] items in
      launch_epoch st reqs (fun err ->
          match rest with
          | [] -> ()
          | Io.Barrier b :: tail -> (
              match err with
              | Some e ->
                  Ivar.fill b.done_ ();
                  abort_tail e tail
              | None ->
                  Ivar.fill b.done_ ();
                  submit_epochs st tail)
          | Io.Req _ :: _ -> assert false)

(* {1 Instrumentation} *)

type inst = {
  m_degraded_reads : Metrics.counter;
  m_degraded_writes : Metrics.counter;
  m_full_stripe : Metrics.counter;
  m_rmw : Metrics.counter;
  m_member_failures : Metrics.counter;
  m_rebuilds_started : Metrics.counter;
  m_rebuilds_completed : Metrics.counter;
  m_rebuild_chunks : Metrics.counter;
  m_rebuild_bytes : Metrics.counter;
  m_rebuild_active : Metrics.gauge;
  m_journal_replays : Metrics.counter;
}

let make_inst metrics name =
  let ns = Names.Ns.raid name in
  {
    m_degraded_reads = Metrics.counter metrics ~ns Names.degraded_reads;
    m_degraded_writes = Metrics.counter metrics ~ns Names.degraded_writes;
    m_full_stripe = Metrics.counter metrics ~ns Names.full_stripe_writes;
    m_rmw = Metrics.counter metrics ~ns Names.rmw_writes;
    m_member_failures = Metrics.counter metrics ~ns Names.member_failures;
    m_rebuilds_started = Metrics.counter metrics ~ns Names.rebuilds_started;
    m_rebuilds_completed = Metrics.counter metrics ~ns Names.rebuilds_completed;
    m_rebuild_chunks = Metrics.counter metrics ~ns Names.rebuild_chunks;
    m_rebuild_bytes = Metrics.counter metrics ~ns Names.rebuild_bytes;
    m_rebuild_active = Metrics.gauge metrics ~ns Names.rebuild_active;
    m_journal_replays = Metrics.counter metrics ~ns Names.journal_replays;
  }

(* {1 The array} *)

type t = {
  eng : Engine.t;
  name : string;
  lvl : level;
  chunk : int;
  members : Device.t array;
  n : int;
  state : member_state array;
  member_cap : int;  (** usable bytes per member, whole chunks *)
  rows : int;  (** stripe rows = member_cap / chunk *)
  capacity : int;  (** logical bytes exposed *)
  inst : inst;
  mutable rotor : int;  (** RAID-1 read balancing *)
  mutable gen : int;  (** array incarnation, bumped by crash *)
  mutable crashed : bool;
  locked : (int, unit) Hashtbl.t;  (** rows under commit/rebuild *)
  lock_free : Condition.t;
  mutable jseq : int;
  journal : (int, (int * int * Bytes.t) list) Hashtbl.t;
      (** in-flight row commits: seq -> (member, member_off, bytes).
          Models the battery-backed controller journal that closes the
          RAID write hole: it survives a power crash and is replayed on
          recovery, so data and parity (or the two mirror sides) can
          never stay divergent for a commit that was in flight. *)
  mutable rebuild_cursor : (int * int) option;
      (** (member, first row not yet resilvered) *)
  mutable dev : Device.t option;
}

let parity_member t row = t.n - 1 - (row mod t.n)

let data_member t row j =
  let p = parity_member t row in
  if j < p then j else j + 1

(* Split a logical RAID-5 range into (row, data_pos, chunk_off, len,
   logical_off) pieces, cut at chunk boundaries. *)
let split5 t ~off ~len =
  let nd = t.n - 1 in
  let rec go acc off remaining =
    if remaining = 0 then List.rev acc
    else begin
      let within = off mod t.chunk in
      let piece = Stdlib.min remaining (t.chunk - within) in
      let l = off / t.chunk in
      go ((l / nd, l mod nd, within, piece, off) :: acc) (off + piece) (remaining - piece)
    end
  in
  go [] off len

let rows_of t ~off ~len =
  if len = 0 then []
  else begin
    let lo = off / t.chunk and hi = (off + len - 1) / t.chunk in
    List.init (hi - lo + 1) (fun i -> lo + i)
  end

(* Is member [m]'s platter current for [row]? A rebuilding member is
   current only below the resilver cursor. *)
let live t m ~row =
  match t.state.(m) with
  | Active -> true
  | Failed -> false
  | Rebuilding -> (
      match t.rebuild_cursor with Some (rm, cur) -> rm = m && row < cur | None -> false)

let note_failure t m =
  match t.state.(m) with
  | Failed -> ()
  | Active | Rebuilding ->
      t.state.(m) <- Failed;
      (match t.rebuild_cursor with
      | Some (rm, _) when rm = m ->
          t.rebuild_cursor <- None;
          Metrics.set t.inst.m_rebuild_active 0.0
      | _ -> ());
      Metrics.incr t.inst.m_member_failures

let degraded t = Array.exists (fun s -> s <> Active) t.state

(* {2 Row locks}

   Every lock holder takes rows one at a time (row-commit and rebuild
   processes hold exactly one; RAID-1 range writers acquire ascending),
   so acquisition cannot deadlock. A crash resets the table and bumps
   the generation: stale holders from the previous incarnation find
   their generation mismatched and park instead of touching the new
   one. *)

let lock_row t ~gen row =
  let rec go () =
    if t.gen <> gen then false
    else if Hashtbl.mem t.locked row then begin
      Condition.wait t.lock_free;
      go ()
    end
    else begin
      Hashtbl.replace t.locked row ();
      true
    end
  in
  go ()

let unlock_row t ~gen row =
  if t.gen = gen then begin
    Hashtbl.remove t.locked row;
    Condition.broadcast t.lock_free
  end

(* Run [f] with stripe row [row] locked, releasing on every return and
   exception path. [lock_row] refuses when the array crashed under us;
   [crashed] is the caller's answer for that case. *)
let with_row t ~gen row ~crashed f =
  if not (lock_row t ~gen row) then crashed ()
  else Locked.run ~acquire:(fun () -> ()) ~release:(fun () -> unlock_row t ~gen row) f

(* A request caught by a power crash behaves like the powered-off
   device underneath it: it never completes. *)
let crashed_park () : unit = Engine.suspend (fun _wake -> ())

(* {2 Commit journal} *)

let journal_add t writes =
  let seq = t.jseq in
  t.jseq <- seq + 1;
  Hashtbl.replace t.journal seq writes;
  seq

let journal_del t ~gen seq = if t.gen = gen then Hashtbl.remove t.journal seq

let replay_journal t =
  let seqs = Hashtbl.fold (fun s _ acc -> s :: acc) t.journal [] |> List.sort compare in
  List.iter
    (fun s ->
      Metrics.incr t.inst.m_journal_replays;
      List.iter
        (fun (m, moff, data) ->
          if t.state.(m) = Active then t.members.(m).Device.stable_write ~off:moff data)
        (Hashtbl.find t.journal s))
    seqs;
  Hashtbl.reset t.journal

(* {2 Member I/O}

   Blocking single-request helpers for the redundant paths; an error
   marks the member failed (fail-stop model: the first error a member
   returns is its last useful word). *)

let mread t m ~class_ ~off ~len =
  let r = Io.read_req ~class_ ~off ~len () in
  t.members.(m).Device.submit [ Io.Req r ];
  Ivar.read r.Io.done_;
  if r.Io.error <> None then note_failure t m;
  (r.Io.error, r.Io.buf)

let mwrite t m ~class_ ~off data =
  let r = Io.write_req ~class_ ~off data in
  t.members.(m).Device.submit [ Io.Req r ];
  Ivar.read r.Io.done_;
  if r.Io.error <> None then note_failure t m;
  r.Io.error

let xor_into dst src =
  for i = 0 to Bytes.length src - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor Char.code (Bytes.unsafe_get src i)))
  done

(* Submit [rs] as one batch per member (keeps the member schedulers
   merging) and block until every request has completed, successfully
   or not. *)
let batch_await t rs =
  let per_member = Array.make t.n [] in
  List.iter (fun (m, r) -> per_member.(m) <- Io.Req r :: per_member.(m)) rs;
  Array.iteri
    (fun m batch -> if batch <> [] then t.members.(m).Device.submit (List.rev batch))
    per_member;
  List.iter
    (fun (m, (r : Io.req)) ->
      Ivar.read r.Io.done_;
      if r.Io.error <> None then note_failure t m)
    rs

(* {1 RAID-1} *)

(* Serve a read from any mirror current for every covered row, probing
   from the balance rotor; used both for degraded service and for
   failover when the picked mirror errors mid-read. *)
let serve_read1 t (r : Io.req) note_err =
  let rows = rows_of t ~off:r.Io.off ~len:r.Io.len in
  let start = t.rotor in
  t.rotor <- (t.rotor + 1) mod t.n;
  let rec probe k =
    if k = t.n then begin
      let e = Device.Io_error (t.name ^ ": no live mirror") in
      note_err e;
      Io.fail r e
    end
    else begin
      let m = (start + k) mod t.n in
      if List.for_all (fun row -> live t m ~row) rows then begin
        let err, buf = mread t m ~class_:r.Io.class_ ~off:r.Io.off ~len:r.Io.len in
        match err with
        | None ->
            Bytes.blit buf 0 r.Io.buf 0 r.Io.len;
            Io.complete r
        | Some _ -> probe (k + 1)
      end
      else probe (k + 1)
    end
  in
  probe 0

(* Degraded/rebuilding write: under the row locks, mirror the range to
   every Active member and to the resilvered rows of a Rebuilding one.
   The locks keep the resilver cursor decision stable: a row at or
   above the cursor is skipped here and picked up by the rebuild copy
   instead, never half-and-half. *)
let write1_locked t ~gen (r : Io.req) note_err =
  let off = r.Io.off and data = r.Io.buf in
  let len = Bytes.length data in
  let rows = rows_of t ~off ~len in
  (* nfsrace: allow Y003 multi-row batch: every path below releases the whole [got] set via unlock_row iteration, and the crash path parks forever by design *)
  let got = List.filter (fun row -> lock_row t ~gen row) rows in
  if List.length got <> List.length rows then crashed_park ()
  else begin
    let jwrites = ref [] and twins = ref [] in
    Array.iteri
      (fun m _ ->
        match t.state.(m) with
        | Active ->
            jwrites := (m, off, data) :: !jwrites;
            twins := (m, Io.write_req ~class_:r.Io.class_ ~off data) :: !twins
        | Rebuilding ->
            List.iter
              (fun row ->
                if live t m ~row then begin
                  let rlo = Stdlib.max off (row * t.chunk)
                  and rhi = Stdlib.min (off + len) ((row + 1) * t.chunk) in
                  let piece = Bytes.sub data (rlo - off) (rhi - rlo) in
                  jwrites := (m, rlo, piece) :: !jwrites;
                  twins := (m, Io.write_req ~class_:r.Io.class_ ~off:rlo piece) :: !twins
                end)
              rows
        | Failed -> ())
      t.members;
    Metrics.incr t.inst.m_degraded_writes;
    match !twins with
    | [] ->
        List.iter (fun row -> unlock_row t ~gen row) got;
        let e = Device.Io_error (t.name ^ ": no live mirror") in
        note_err e;
        Io.fail r e
    | rs ->
        let seq = journal_add t !jwrites in
        (* nfsrace: allow Y001 the row locks must span the mirror round trip so the resilver cursor decision stays stable for the whole batch *)
        batch_await t rs;
        let ok = List.exists (fun (_, (tw : Io.req)) -> tw.Io.error = None) rs in
        journal_del t ~gen seq;
        List.iter (fun row -> unlock_row t ~gen row) got;
        if ok then Io.complete r
        else begin
          let e = Device.Io_error (t.name ^ ": no live mirror") in
          note_err e;
          Io.fail r e
        end
  end

let epoch1 t ~gen reqs =
  let epoch_err = ref None in
  let note_err e = if !epoch_err = None then epoch_err := Some e in
  if not (degraded t) then begin
    (* Healthy fast path: lock-free; writes twin to every mirror as one
       batch per member, reads deal round-robin across mirrors. *)
    let per_member = Array.make t.n [] in
    let plan =
      List.map
        (fun (r : Io.req) ->
          match r.Io.op with
          | Io.Write ->
              let seq = journal_add t (List.init t.n (fun m -> (m, r.Io.off, r.Io.buf))) in
              let twins =
                List.init t.n (fun m ->
                    let tw = Io.write_req ~class_:r.Io.class_ ~off:r.Io.off r.Io.buf in
                    per_member.(m) <- Io.Req tw :: per_member.(m);
                    (m, tw))
              in
              `W (r, seq, twins)
          | Io.Read ->
              let m = t.rotor in
              t.rotor <- (t.rotor + 1) mod t.n;
              let tw = Io.read_req ~class_:r.Io.class_ ~off:r.Io.off ~len:r.Io.len () in
              per_member.(m) <- Io.Req tw :: per_member.(m);
              `R (r, m, tw))
        reqs
    in
    Array.iteri
      (fun m batch -> if batch <> [] then t.members.(m).Device.submit (List.rev batch))
      per_member;
    List.iter
      (function
        | `W (_, _, twins) -> List.iter (fun (_, (tw : Io.req)) -> Ivar.read tw.Io.done_) twins
        | `R (_, _, tw) -> Ivar.read tw.Io.done_)
      plan;
    List.iter
      (function
        | `W (r, seq, twins) ->
            let ok = ref 0 in
            List.iter
              (fun (m, (tw : Io.req)) ->
                match tw.Io.error with Some _ -> note_failure t m | None -> incr ok)
              twins;
            journal_del t ~gen seq;
            if !ok = 0 then begin
              let e = Device.Io_error (t.name ^ ": no live mirror") in
              note_err e;
              Io.fail r e
            end
            else begin
              if !ok < t.n then Metrics.incr t.inst.m_degraded_writes;
              Io.complete r
            end
        | `R (r, m, tw) -> (
            match tw.Io.error with
            | None ->
                Bytes.blit tw.Io.buf 0 r.Io.buf 0 r.Io.len;
                Io.complete r
            | Some _ ->
                note_failure t m;
                Metrics.incr t.inst.m_degraded_reads;
                serve_read1 t r note_err))
      plan;
    !epoch_err
  end
  else begin
    List.iter
      (fun (r : Io.req) ->
        match r.Io.op with
        | Io.Write -> write1_locked t ~gen r note_err
        | Io.Read ->
            Metrics.incr t.inst.m_degraded_reads;
            serve_read1 t r note_err)
      reqs;
    !epoch_err
  end

(* {1 RAID-5} *)

(* Reconstruct a byte range of a dead data chunk: XOR of the parity
   chunk and every other data chunk over the range, under the row lock
   so a parity update cannot interleave. *)
let reconstruct5 t ~gen ~row ~j ~coff ~plen =
  match
    with_row t ~gen row
      ~crashed:(fun () ->
        crashed_park ();
        None)
      (fun () ->
        let dead = data_member t row j in
        let moff = (row * t.chunk) + coff in
        let acc = Bytes.make plen '\000' in
        let err = ref None in
        for m = 0 to t.n - 1 do
          if m <> dead && !err = None then
            if not (live t m ~row) then
              err := Some (Device.Io_error (t.name ^ ": second member lost"))
            else begin
              (* nfsrace: allow Y001 the row lock spans the member reads so a parity update cannot interleave with the reconstruction *)
              let e, buf = mread t m ~class_:`Read ~off:moff ~len:plen in
              match e with Some ex -> err := Some ex | None -> xor_into acc buf
            end
        done;
        Some (!err, acc))
  with
  | None -> None
  | Some (err, acc) ->
      Metrics.incr t.inst.m_degraded_reads;
      (match err with Some _ -> None | None -> Some acc)

let covered_fully ivals chunk =
  let s = List.sort compare ivals in
  let rec go pos = function
    | [] -> pos >= chunk
    | (coff, plen) :: rest -> if coff > pos then false else go (Stdlib.max pos (coff + plen)) rest
  in
  go 0 s

(* Commit every patch of one stripe row: classify full-stripe vs
   read-modify-write vs degraded, do the read phase, compute the new
   parity, journal the intended member writes, then issue them. Returns
   [None] on success. The caller holds the row lock. *)
let commit_row5_locked t ~gen ~row patches =
  let nd = t.n - 1 in
  let moff = row * t.chunk in
  let rec attempt tries =
    if tries > 2 then Some (Device.Io_error (t.name ^ ": row commit failed"))
    else begin
      let p = parity_member t row in
      let cov = Array.make nd [] in
      List.iter (fun (j, coff, plen, src, soff) -> cov.(j) <- (coff, plen, src, soff) :: cov.(j)) patches;
      Array.iteri (fun j l -> cov.(j) <- List.rev l) cov;
      let covered j = cov.(j) <> [] in
      let deads = ref [] in
      for m = t.n - 1 downto 0 do
        if not (live t m ~row) then deads := m :: !deads
      done;
      if List.length !deads > 1 then Some (Device.Io_error (t.name ^ ": multiple members lost"))
      else begin
        let p_live = live t p ~row in
        let all_full =
          let ok = ref true in
          for j = 0 to nd - 1 do
            if not (covered_fully (List.map (fun (c, l, _, _) -> (c, l)) cov.(j)) t.chunk) then
              ok := false
          done;
          !ok
        in
        let covered_live = ref true in
        for j = 0 to nd - 1 do
          if covered j && not (live t (data_member t row j) ~row) then covered_live := false
        done;
        let apply base j = List.iter (fun (coff, plen, src, soff) -> Bytes.blit src soff base coff plen) cov.(j) in
        let finish writes =
          let seq = journal_add t writes in
          let rs = List.map (fun (m, o, b) -> (m, Io.write_req ~class_:`Sync_write ~off:o b)) writes in
          batch_await t rs;
          let werr = ref None in
          List.iter
            (fun (_, (r : Io.req)) -> if !werr = None && r.Io.error <> None then werr := r.Io.error)
            rs;
          journal_del t ~gen seq;
          match !werr with
          | None -> None
          | Some _ ->
              if t.gen <> gen then begin
                crashed_park ();
                None
              end
              else attempt (tries + 1)
        in
        if all_full then begin
          (* Full-stripe write: parity from the new data alone, no
             reads — the payoff the gathered flushes are after. *)
          let data =
            Array.init nd (fun j ->
                let b = Bytes.make t.chunk '\000' in
                apply b j;
                b)
          in
          let parity = Bytes.make t.chunk '\000' in
          Array.iter (fun b -> xor_into parity b) data;
          let writes = ref [] in
          if p_live then writes := (p, moff, parity) :: !writes;
          for j = nd - 1 downto 0 do
            let m = data_member t row j in
            if live t m ~row then writes := (m, moff, data.(j)) :: !writes
          done;
          Metrics.incr t.inst.m_full_stripe;
          if !deads <> [] then Metrics.incr t.inst.m_degraded_writes;
          finish !writes
        end
        else if (not p_live) && !deads = [ p ] then begin
          (* Parity spindle is the (single) casualty: the row is plain
             striping until the rebuild restores it. *)
          let writes =
            List.map (fun (j, coff, plen, src, soff) ->
                (data_member t row j, moff + coff, Bytes.sub src soff plen))
              patches
          in
          Metrics.incr t.inst.m_degraded_writes;
          finish writes
        end
        else if !covered_live && p_live && !deads = [] then begin
          (* Healthy partial stripe: read-modify-write at chunk
             granularity. parity' = parity ⊕ old ⊕ new. *)
          let targets = ref [ (p, Io.read_req ~off:moff ~len:t.chunk ()) ] in
          for j = nd - 1 downto 0 do
            if covered j then
              targets := (data_member t row j, Io.read_req ~off:moff ~len:t.chunk ()) :: !targets
          done;
          batch_await t !targets;
          let rerr = ref None in
          List.iter
            (fun (_, (r : Io.req)) -> if !rerr = None && r.Io.error <> None then rerr := r.Io.error)
            !targets;
          if !rerr <> None then
            if t.gen <> gen then begin
              crashed_park ();
              None
            end
            else attempt (tries + 1)
          else begin
            let chunk_of m =
              let _, r = List.find (fun (m', _) -> m' = m) !targets in
              r.Io.buf
            in
            let parity = Bytes.copy (chunk_of p) in
            let writes = ref [ (p, moff, parity) ] in
            for j = nd - 1 downto 0 do
              if covered j then begin
                let m = data_member t row j in
                let old = chunk_of m in
                xor_into parity old;
                let nw = Bytes.copy old in
                apply nw j;
                xor_into parity nw;
                writes := (m, moff, nw) :: !writes
              end
            done;
            Metrics.incr t.inst.m_rmw;
            finish !writes
          end
        end
        else begin
          (* A written data chunk lives on the dead member (or died
             mid-commit): reconstruct the whole old row from the
             survivors, patch it, recompute parity, and write the live
             pieces. The dead chunk's new contents survive encoded in
             parity — the log-and-continue of degraded writes. *)
          let dead_j = ref (-1) in
          (match !deads with
          | [ d ] when d <> p ->
              for j = 0 to nd - 1 do
                if data_member t row j = d then dead_j := j
              done
          | _ -> ());
          if (not p_live) && !deads <> [] then
            (* parity and a data member both unreadable for this row *)
            Some (Device.Io_error (t.name ^ ": multiple members lost"))
          else begin
            let targets = ref [ (p, Io.read_req ~off:moff ~len:t.chunk ()) ] in
            for j = nd - 1 downto 0 do
              if j <> !dead_j then
                targets := (data_member t row j, Io.read_req ~off:moff ~len:t.chunk ()) :: !targets
            done;
            batch_await t !targets;
            let rerr = ref None in
            List.iter
              (fun (_, (r : Io.req)) ->
                if !rerr = None && r.Io.error <> None then rerr := r.Io.error)
              !targets;
            if !rerr <> None then
              if t.gen <> gen then begin
                crashed_park ();
                None
              end
              else attempt (tries + 1)
            else begin
              let chunk_of m =
                let _, r = List.find (fun (m', _) -> m' = m) !targets in
                r.Io.buf
              in
              let old =
                Array.init nd (fun j ->
                    if j = !dead_j then begin
                      let b = Bytes.copy (chunk_of p) in
                      for j' = 0 to nd - 1 do
                        if j' <> !dead_j then xor_into b (chunk_of (data_member t row j'))
                      done;
                      b
                    end
                    else Bytes.copy (chunk_of (data_member t row j)))
              in
              let parity = Bytes.make t.chunk '\000' in
              let writes = ref [] in
              for j = nd - 1 downto 0 do
                let nw = old.(j) in
                apply nw j;
                xor_into parity nw;
                if covered j && j <> !dead_j then writes := (data_member t row j, moff, nw) :: !writes
              done;
              writes := (p, moff, parity) :: !writes;
              Metrics.incr t.inst.m_degraded_writes;
              finish !writes
            end
          end
        end
      end
    end
  in
  attempt 0

let commit_row5 t ~gen ~row patches note_err =
  match
    with_row t ~gen row
      ~crashed:(fun () ->
        crashed_park ();
        None)
      (fun () ->
        (* nfsrace: allow Y001 the row lock must span the whole read-modify-write round trip so the parity stays consistent with the data it covers *)
        Some (commit_row5_locked t ~gen ~row (List.map (fun (j, c, l, s, o, _) -> (j, c, l, s, o)) patches)))
  with
  | None -> ()
  | Some res ->
      let fins =
        List.fold_left
          (fun acc (_, _, _, _, _, fin) -> if List.memq fin acc then acc else fin :: acc)
          [] patches
        |> List.rev
      in
      List.iter
        (fun (r, rem, rerr) ->
          (match res with
          | Some e -> if !rerr = None then rerr := Some e
          | None -> ());
          decr rem;
          if !rem = 0 then
            match !rerr with
            | None -> Io.complete r
            | Some e ->
                note_err e;
                Io.fail r e)
        fins

let epoch5 t ~gen reqs =
  let epoch_err = ref None in
  let note_err e = if !epoch_err = None then epoch_err := Some e in
  let writes = List.filter (fun (r : Io.req) -> r.Io.op = Io.Write) reqs in
  let reads = List.filter (fun (r : Io.req) -> r.Io.op = Io.Read) reqs in
  (* Group write pieces by stripe row; each row commits under its own
     lock in its own process, so the rows of a gathered flush overlap
     in the member queues. *)
  let by_row : (int, (int * int * int * Bytes.t * int * (Io.req * int ref * exn option ref)) list ref) Hashtbl.t =
    Hashtbl.create 17
  in
  List.iter
    (fun (r : Io.req) ->
      match split5 t ~off:r.Io.off ~len:r.Io.len with
      | [] -> Io.complete r
      | pieces ->
          let rows = List.sort_uniq compare (List.map (fun (row, _, _, _, _) -> row) pieces) in
          let fin = (r, ref (List.length rows), ref None) in
          List.iter
            (fun (row, j, coff, plen, loff) ->
              let cell =
                match Hashtbl.find_opt by_row row with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.replace by_row row l;
                    l
              in
              cell := (j, coff, plen, r.Io.buf, loff - r.Io.off, fin) :: !cell)
            pieces)
    writes;
  let rows =
    Hashtbl.fold (fun row cell acc -> (row, List.rev !cell) :: acc) by_row []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let join = Condition.create () in
  let outstanding = ref (List.length rows) in
  List.iter
    (fun (row, patches) ->
      Engine.spawn t.eng ~name:(t.name ^ "-row") (fun () ->
          commit_row5 t ~gen ~row patches note_err;
          decr outstanding;
          if !outstanding = 0 then Condition.broadcast join))
    rows;
  (* Reads: pieces on live members go out batched; pieces on a dead
     member reconstruct from parity afterwards, under the row lock. *)
  let per_member = Array.make t.n [] in
  let rplan =
    List.filter_map
      (fun (r : Io.req) ->
        match split5 t ~off:r.Io.off ~len:r.Io.len with
        | [] ->
            Io.complete r;
            None
        | pieces ->
            let prepared =
              List.map
                (fun (row, j, coff, plen, loff) ->
                  let m = data_member t row j in
                  if live t m ~row then begin
                    let tw =
                      Io.read_req ~class_:r.Io.class_ ~off:((row * t.chunk) + coff) ~len:plen ()
                    in
                    per_member.(m) <- Io.Req tw :: per_member.(m);
                    `Direct (row, j, coff, plen, loff, m, tw)
                  end
                  else `Recon (row, j, coff, plen, loff))
                pieces
            in
            Some (r, prepared))
      reads
  in
  Array.iteri
    (fun m batch -> if batch <> [] then t.members.(m).Device.submit (List.rev batch))
    per_member;
  List.iter
    (fun (r, prepared) ->
      let rerr = ref None in
      let fill loff plen (bytes : Bytes.t) = Bytes.blit bytes 0 r.Io.buf (loff - r.Io.off) plen in
      List.iter
        (fun piece ->
          let recon row j coff plen loff =
            match reconstruct5 t ~gen ~row ~j ~coff ~plen with
            | Some bytes -> fill loff plen bytes
            | None ->
                if !rerr = None then rerr := Some (Device.Io_error (t.name ^ ": unreadable range"))
          in
          match piece with
          | `Direct (row, j, coff, plen, loff, m, (tw : Io.req)) -> (
              Ivar.read tw.Io.done_;
              match tw.Io.error with
              | None -> fill loff plen tw.Io.buf
              | Some _ ->
                  note_failure t m;
                  recon row j coff plen loff)
          | `Recon (row, j, coff, plen, loff) -> recon row j coff plen loff)
        prepared;
      match !rerr with
      | None -> Io.complete r
      | Some e ->
          note_err e;
          Io.fail r e)
    rplan;
  while !outstanding > 0 do
    Condition.wait join
  done;
  !epoch_err

(* {1 Epoch driver for the redundant levels} *)

let run_items t epoch_fn items =
  let gen = t.gen in
  let rec go items =
    if t.crashed || t.gen <> gen then crashed_park ()
    else begin
      match items with
      | [] -> ()
      | _ ->
          let reqs, rest = cut_epoch [] items in
          let err = epoch_fn t ~gen reqs in
          (match rest with
          | [] -> ()
          | Io.Barrier b :: tail -> (
              Ivar.fill b.done_ ();
              match err with Some e -> abort_tail e tail | None -> go tail)
          | Io.Req _ :: _ -> assert false)
    end
  in
  go items

(* {1 Stable paths}

   The filesystem's mkfs/superblock/inode paths run on these; they must
   keep working degraded (reconstructing through parity) and must keep
   the redundancy invariants intact (updating parity, mirroring). *)

let stable_read1 t ~off ~len =
  let rec pick m =
    if m = t.n then raise (Device.Io_error (t.name ^ ": no live mirror"))
    else if t.state.(m) = Active then m
    else pick (m + 1)
  in
  t.members.(pick 0).Device.stable_read ~off ~len

let stable_write1 t ~off data =
  let len = Bytes.length data in
  Array.iteri
    (fun m _ ->
      match t.state.(m) with
      | Active -> t.members.(m).Device.stable_write ~off data
      | Rebuilding ->
          (* keep resilvered rows in sync; the stale tail belongs to
             the rebuild copy *)
          List.iter
            (fun row ->
              if live t m ~row then begin
                let rlo = Stdlib.max off (row * t.chunk)
                and rhi = Stdlib.min (off + len) ((row + 1) * t.chunk) in
                t.members.(m).Device.stable_write ~off:rlo (Bytes.sub data (rlo - off) (rhi - rlo))
              end)
            (rows_of t ~off ~len)
      | Failed -> ())
    t.members

let stable_read5 t ~off ~len =
  let buf = Bytes.create len in
  List.iter
    (fun (row, j, coff, plen, loff) ->
      let m = data_member t row j in
      let moff = (row * t.chunk) + coff in
      let piece =
        if live t m ~row then t.members.(m).Device.stable_read ~off:moff ~len:plen
        else begin
          let p = parity_member t row in
          if not (live t p ~row) then raise (Device.Io_error (t.name ^ ": multiple members lost"));
          let acc = t.members.(p).Device.stable_read ~off:moff ~len:plen in
          for j' = 0 to t.n - 2 do
            if j' <> j then begin
              let m' = data_member t row j' in
              if not (live t m' ~row) then
                raise (Device.Io_error (t.name ^ ": multiple members lost"));
              xor_into acc (t.members.(m').Device.stable_read ~off:moff ~len:plen)
            end
          done;
          acc
        end
      in
      Bytes.blit piece 0 buf (loff - off) plen)
    (split5 t ~off ~len);
  buf

let stable_write5 t ~off data =
  List.iter
    (fun (row, j, coff, plen, loff) ->
      let m = data_member t row j and p = parity_member t row in
      let moff = (row * t.chunk) + coff in
      let piece = Bytes.sub data (loff - off) plen in
      let m_live = live t m ~row and p_live = live t p ~row in
      if p_live then begin
        let old =
          if m_live then t.members.(m).Device.stable_read ~off:moff ~len:plen
          else begin
            let acc = t.members.(p).Device.stable_read ~off:moff ~len:plen in
            for j' = 0 to t.n - 2 do
              if j' <> j then begin
                let m' = data_member t row j' in
                if not (live t m' ~row) then
                  raise (Device.Io_error (t.name ^ ": multiple members lost"));
                xor_into acc (t.members.(m').Device.stable_read ~off:moff ~len:plen)
              end
            done;
            acc
          end
        in
        let parity = t.members.(p).Device.stable_read ~off:moff ~len:plen in
        xor_into parity old;
        xor_into parity piece;
        t.members.(p).Device.stable_write ~off:moff parity
      end;
      if m_live then t.members.(m).Device.stable_write ~off:moff piece)
    (split5 t ~off ~len:(Bytes.length data))

(* {1 Crash / recover} *)

let do_crash t =
  t.crashed <- true;
  t.gen <- t.gen + 1;
  Hashtbl.reset t.locked;
  Condition.broadcast t.lock_free;
  (match t.rebuild_cursor with
  | Some (m, _) ->
      (* an interrupted resilver leaves the member stale: back to
         square one after the restart *)
      t.state.(m) <- Failed;
      t.rebuild_cursor <- None;
      Metrics.set t.inst.m_rebuild_active 0.0
  | None -> ());
  Array.iter (fun m -> m.Device.crash ()) t.members

let do_recover t =
  Array.iter (fun m -> m.Device.recover ()) t.members;
  t.crashed <- false;
  replay_journal t

(* {1 Construction} *)

let validate ~level ~chunk members =
  if Array.length members = 0 then invalid_arg "Stripe.create: no members";
  if chunk <= 0 then invalid_arg "Stripe.create: chunk must be positive";
  if chunk mod sector <> 0 then
    invalid_arg
      (Printf.sprintf "Stripe.create: chunk %d is not a multiple of the %d-byte sector" chunk
         sector);
  let c0 = members.(0).Device.capacity in
  Array.iter
    (fun m ->
      if m.Device.capacity <> c0 then
        invalid_arg
          (Printf.sprintf "Stripe.create: member capacities differ (%s: %d vs %s: %d)"
             members.(0).Device.name c0 m.Device.name m.Device.capacity))
    members;
  match level with
  | Raid0 -> ()
  | Raid1 ->
      if Array.length members < 2 then invalid_arg "Stripe.create: raid1 needs at least 2 members"
  | Raid5 ->
      if Array.length members < 3 then invalid_arg "Stripe.create: raid5 needs at least 3 members"

let all_stats members () =
  Array.fold_left
    (fun acc m -> Device.add_stats acc (m.Device.spindle_stats ()))
    Device.zero_stats members

let build_raid0 t =
  let st = { chunk = t.chunk; members = t.members; capacity = t.capacity } in
  let check ~off ~len =
    if off < 0 || len < 0 || off + len > t.capacity then
      invalid_arg
        (Printf.sprintf "%s: request [%d, %d) outside capacity %d" t.name off (off + len)
           t.capacity)
  in
  let submit items =
    List.iter
      (fun item ->
        match item with
        | Io.Req r -> check ~off:r.Io.off ~len:r.Io.len
        | Io.Barrier _ -> ())
      items;
    submit_epochs st items
  in
  let read ~off ~len =
    check ~off ~len;
    Io.blocking_read ~submit ~off ~len
  in
  let write ~off data =
    check ~off ~len:(Bytes.length data);
    Io.blocking_write ~submit ~class_:`Sync_write ~off data
  in
  let on_all f = Array.iter f st.members in
  let stable_read ~off ~len =
    check ~off ~len;
    let buf = Bytes.create len in
    List.iter
      (fun (m, moff, loff, plen) ->
        let piece = st.members.(m).Device.stable_read ~off:moff ~len:plen in
        Bytes.blit piece 0 buf (loff - off) plen)
      (split st ~off ~len);
    buf
  in
  let stable_write ~off data =
    let len = Bytes.length data in
    check ~off ~len;
    List.iter
      (fun (m, moff, loff, plen) ->
        st.members.(m).Device.stable_write ~off:moff (Bytes.sub data (loff - off) plen))
      (split st ~off ~len)
  in
  {
    Device.name = t.name;
    capacity = t.capacity;
    accelerated = (fun () -> Array.for_all (fun m -> m.Device.accelerated ()) t.members);
    submit;
    read;
    write;
    flush = (fun () -> on_all (fun m -> m.Device.flush ()));
    crash = (fun () -> on_all (fun m -> m.Device.crash ()));
    recover = (fun () -> on_all (fun m -> m.Device.recover ()));
    spindle_stats = all_stats t.members;
    stable_read;
    stable_write;
  }

let build_redundant t =
  let epoch_fn = match t.lvl with Raid1 -> epoch1 | Raid5 -> epoch5 | Raid0 -> assert false in
  let check ~off ~len =
    if off < 0 || len < 0 || off + len > t.capacity then
      invalid_arg
        (Printf.sprintf "%s: request [%d, %d) outside capacity %d" t.name off (off + len)
           t.capacity)
  in
  let submit items =
    List.iter
      (fun item ->
        match item with
        | Io.Req r -> check ~off:r.Io.off ~len:r.Io.len
        | Io.Barrier _ -> ())
      items;
    Engine.spawn t.eng ~name:(t.name ^ "-submit") (fun () -> run_items t epoch_fn items)
  in
  let read ~off ~len =
    check ~off ~len;
    Io.blocking_read ~submit ~off ~len
  in
  let write ~off data =
    check ~off ~len:(Bytes.length data);
    Io.blocking_write ~submit ~class_:`Sync_write ~off data
  in
  let stable_read ~off ~len =
    check ~off ~len;
    match t.lvl with Raid1 -> stable_read1 t ~off ~len | _ -> stable_read5 t ~off ~len
  in
  let stable_write ~off data =
    check ~off ~len:(Bytes.length data);
    match t.lvl with Raid1 -> stable_write1 t ~off data | _ -> stable_write5 t ~off data
  in
  {
    Device.name = t.name;
    capacity = t.capacity;
    accelerated = (fun () -> Array.for_all (fun m -> m.Device.accelerated ()) t.members);
    submit;
    read;
    write;
    flush = (fun () -> Array.iter (fun m -> m.Device.flush ()) t.members);
    crash = (fun () -> do_crash t);
    recover = (fun () -> do_recover t);
    spindle_stats = all_stats t.members;
    stable_read;
    stable_write;
  }

let create_array eng ?(name = "stripe") ?metrics ?(level = Raid0) ~chunk members =
  validate ~level ~chunk members;
  (* Raid0 keeps its historical zero-instrument footprint: its counters
     go to a throwaway registry so existing metric dumps are unchanged. *)
  let reg =
    match (metrics, level) with
    | Some m, (Raid1 | Raid5) -> m
    | _ -> Metrics.create ()
  in
  let n = Array.length members in
  let member_cap = members.(0).Device.capacity / chunk * chunk in
  let capacity =
    match level with
    | Raid0 -> member_cap * n
    | Raid1 -> member_cap
    | Raid5 -> member_cap * (n - 1)
  in
  let t =
    {
      eng;
      name;
      lvl = level;
      chunk;
      members;
      n;
      state = Array.make n Active;
      member_cap;
      rows = member_cap / chunk;
      capacity;
      inst = make_inst reg name;
      rotor = 0;
      gen = 0;
      crashed = false;
      locked = Hashtbl.create 61;
      lock_free = Condition.create ();
      jseq = 0;
      journal = Hashtbl.create 61;
      rebuild_cursor = None;
      dev = None;
    }
  in
  let dev = match level with Raid0 -> build_raid0 t | Raid1 | Raid5 -> build_redundant t in
  t.dev <- Some dev;
  t

let create eng ?name ?metrics ?level ~chunk members =
  let t = create_array eng ?name ?metrics ?level ~chunk members in
  match t.dev with Some d -> d | None -> assert false

(* {1 Management} *)

let device t = match t.dev with Some d -> d | None -> assert false
let level t = t.lvl
let member_state t m =
  if m < 0 || m >= t.n then invalid_arg "Stripe.member_state: no such member";
  t.state.(m)

let fail_member t m =
  if m < 0 || m >= t.n then invalid_arg "Stripe.fail_member: no such member";
  if t.lvl = Raid0 then invalid_arg "Stripe.fail_member: raid0 has no redundancy";
  note_failure t m

let rebuild_active t = t.rebuild_cursor <> None

let rebuild_progress t =
  match t.rebuild_cursor with Some (_, cur) -> Some (cur, t.rows) | None -> None

let rebuild ?(pace = Time.of_ms_f 1.0) t ~member =
  if member < 0 || member >= t.n then invalid_arg "Stripe.rebuild: no such member";
  if t.lvl = Raid0 then invalid_arg "Stripe.rebuild: raid0 has no redundancy";
  if t.crashed then invalid_arg "Stripe.rebuild: array is crashed";
  if t.state.(member) <> Failed then invalid_arg "Stripe.rebuild: member is not failed";
  (match t.lvl with
  | Raid0 -> ()
  | Raid1 ->
      if not (Array.exists (fun s -> s = Active) t.state) then
        invalid_arg "Stripe.rebuild: no live mirror to copy from"
  | Raid5 ->
      Array.iteri
        (fun i s ->
          if i <> member && s <> Active then
            invalid_arg "Stripe.rebuild: raid5 rebuild needs every other member active")
        t.state);
  t.state.(member) <- Rebuilding;
  t.rebuild_cursor <- Some (member, 0);
  Metrics.incr t.inst.m_rebuilds_started;
  Metrics.set t.inst.m_rebuild_active 1.0;
  let gen = t.gen in
  Engine.spawn t.eng ~name:(t.name ^ "-rebuild") (fun () ->
      let rec go row =
        if t.gen <> gen || t.state.(member) <> Rebuilding then ()
        else if row = t.rows then begin
          t.state.(member) <- Active;
          t.rebuild_cursor <- None;
          Metrics.incr t.inst.m_rebuilds_completed;
          Metrics.set t.inst.m_rebuild_active 0.0
        end
        else begin
          match
            with_row t ~gen row
              ~crashed:(fun () -> `Stop)
              (fun () ->
                let moff = row * t.chunk in
                let content =
                  match t.lvl with
                  | Raid1 ->
                      let src = ref None in
                      Array.iteri
                        (fun i s -> if !src = None && i <> member && s = Active then src := Some i)
                        t.state;
                      (match !src with
                      | None -> None
                      | Some i ->
                          (* nfsrace: allow Y001 the row lock keeps the resilver copy atomic against foreground writes to the same row *)
                          let err, buf = mread t i ~class_:`Bg_drain ~off:moff ~len:t.chunk in
                          (match err with Some _ -> None | None -> Some buf))
                  | Raid5 | Raid0 ->
                      (* XOR of every other member's chunk reconstructs this
                         one whether it held data or parity. *)
                      let acc = Bytes.make t.chunk '\000' in
                      let err = ref false in
                      for i = 0 to t.n - 1 do
                        if i <> member && not !err then begin
                          (* nfsrace: allow Y001 the row lock keeps the resilver copy atomic against foreground writes to the same row *)
                          let e, buf = mread t i ~class_:`Bg_drain ~off:moff ~len:t.chunk in
                          match e with Some _ -> err := true | None -> xor_into acc buf
                        end
                      done;
                      if !err then None else Some acc
                in
                match content with
                | None -> `Abandon
                | Some bytes -> (
                    (* nfsrace: allow Y001 the row lock keeps the resilver copy atomic against foreground writes to the same row *)
                    match mwrite t member ~class_:`Bg_drain ~off:moff bytes with
                    | Some _ ->
                        (* the replacement itself errored; [mwrite] flipped
                           it back to Failed *)
                        `Stop
                    | None ->
                        if t.gen = gen && t.state.(member) = Rebuilding then begin
                          t.rebuild_cursor <- Some (member, row + 1);
                          Metrics.incr t.inst.m_rebuild_chunks;
                          Metrics.add t.inst.m_rebuild_bytes t.chunk
                        end;
                        `Advance))
          with
          | `Stop -> ()
          | `Abandon ->
              (* a survivor died mid-copy (or the world crashed):
                 abandon; the member stays stale *)
              if t.gen = gen && t.state.(member) = Rebuilding then begin
                t.state.(member) <- Failed;
                t.rebuild_cursor <- None;
                Metrics.set t.inst.m_rebuild_active 0.0
              end
          | `Advance ->
              Engine.delay pace;
              go (row + 1)
        end
      in
      go 0)
