type stats = { transactions : int; bytes_moved : int; busy_time : Nfsg_sim.Time.t }

exception Io_error of string

type t = {
  name : string;
  capacity : int;
  accelerated : unit -> bool;
  submit : Io.item list -> unit;
  read : off:int -> len:int -> Bytes.t;
  write : off:int -> Bytes.t -> unit;
  flush : unit -> unit;
  crash : unit -> unit;
  recover : unit -> unit;
  spindle_stats : unit -> stats;
  stable_read : off:int -> len:int -> Bytes.t;
  stable_write : off:int -> Bytes.t -> unit;
}

let zero_stats = { transactions = 0; bytes_moved = 0; busy_time = Nfsg_sim.Time.zero }

let add_stats a b =
  {
    transactions = a.transactions + b.transactions;
    bytes_moved = a.bytes_moved + b.bytes_moved;
    busy_time = a.busy_time + b.busy_time;
  }
