(** Prestoserve-style NVRAM write accelerator (paper section 6.3).

    Sits in front of a slower device. Writes no larger than
    [accept_limit] are copied into battery-backed RAM — stable by
    definition — and acknowledged after a fast copy; a background
    flusher drains dirty bytes to the underlying device, doing {e its
    own} clustering of contiguous ranges ("Presto does its own
    clustering"). Writes above the limit are declined and passed
    through synchronously, so "performance degrades to underlying disk
    speed" exactly as the paper warns.

    When the cache is full, accepted writes block until the flusher
    frees space — the accelerated device degrades toward the drain
    rate of the spindle underneath, which is what bounds Table 4. *)

type params = {
  capacity : int;  (** NVRAM bytes (Prestoserve boards: ~1 MB) *)
  accept_limit : int;  (** largest request accepted (typically 8 KB) *)
  copy_rate : float;  (** bytes/sec for the CPU copy into NVRAM *)
  copy_overhead : Nfsg_sim.Time.t;  (** fixed cost per accepted write *)
  flush_cluster : int;  (** max bytes per flush transaction *)
  flush_trigger : int;  (** dirty high-watermark starting the flusher *)
  flush_idle : Nfsg_sim.Time.t;  (** age before a below-watermark flush *)
}

val default_params : params

val create :
  Nfsg_sim.Engine.t ->
  ?name:string ->
  ?params:params ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?cpu_charge:(Nfsg_sim.Time.t -> unit) ->
  Device.t ->
  Device.t
(** [create eng backing] — the returned device reports
    [accelerated = true]. [cpu_charge] is called with the duration of
    every NVRAM copy so the server CPU account sees the cost the paper
    attributes to Presto ("copy data to NVRAM"). [metrics] registers
    the board's instruments under namespace ["nvram.<name>"]:
    accepted/declined/pass-through write counters, read hit/miss
    counters, flush counters, the [flush_batch_bytes] coalescing
    histogram, and [dirty_bytes] / [battery_ok] gauges (private
    registry when omitted). *)

val dirty_bytes : Device.t -> int
(** Dirty bytes currently in NVRAM of a device made by {!create}.
    Raises [Invalid_argument] for other devices. *)

(** {1 Fault hooks}

    All take a device made by {!create} and raise [Invalid_argument]
    for any other device. *)

val fail_battery : Device.t -> unit
(** Detected battery fault: the board stops accepting new dirty data
    (writes become synchronous pass-through and [accelerated] reports
    false) and starts draining its contents to the backing device. Until
    the drain completes the board's RAM is volatile: a {!Device.t.crash}
    in that window loses it ({!Device.t.recover} replays nothing). *)

val repair_battery : Device.t -> unit
(** Battery replaced: the board accepts and acknowledges writes from
    RAM again. *)

val battery_ok : Device.t -> bool

val flush_retries : Device.t -> int
(** Backing-store {!Device.Io_error}s the background flusher absorbed
    (each is retried after a pause; battery-backed data is never lost
    to a transient spindle error). *)
