open Nfsg_sim

type geometry = {
  capacity : int;
  track_bytes : int;
  rpm : float;
  media_rate : float;
  seek_single : Time.t;
  seek_full : Time.t;
  command_overhead : Time.t;
}

let rz26 ?(capacity = 96 * 1024 * 1024) () =
  {
    capacity;
    track_bytes = 400 * 1024;
    rpm = 5400.0;
    media_rate = 2.6e6;
    seek_single = Time.of_ms_f 1.2;
    seek_full = Time.of_ms_f 19.0;
    command_overhead = Time.of_us_f 500.0;
  }

let seek_time g ~cylinders ~distance =
  if distance <= 0 then Time.zero
  else begin
    let span = Stdlib.max 1 (cylinders - 1) in
    let frac = sqrt (float_of_int distance /. float_of_int span) in
    let single = float_of_int g.seek_single and full = float_of_int g.seek_full in
    int_of_float (single +. ((full -. single) *. frac))
  end

type scheduler = Fifo | Elevator

type job =
  | Read of { off : int; len : int; reply : Bytes.t Ivar.t }
  | Write of { off : int; data : Bytes.t; reply : unit Ivar.t }

let job_off = function Read { off; _ } -> off | Write { off; _ } -> off

(* Per-spindle instruments: the service-time split the paper's disk
   arguments rest on (seek vs rotation vs transfer), plus queue depth. *)
type inst = {
  m_reads : Nfsg_stats.Metrics.counter;
  m_writes : Nfsg_stats.Metrics.counter;
  m_bytes_read : Nfsg_stats.Metrics.counter;
  m_bytes_written : Nfsg_stats.Metrics.counter;
  m_seek_us : Nfsg_stats.Histogram.t;
  m_rot_us : Nfsg_stats.Histogram.t;
  m_xfer_us : Nfsg_stats.Histogram.t;
  m_service_us : Nfsg_stats.Histogram.t;
  m_queue_depth : Nfsg_stats.Histogram.t;
  m_queue_gauge : Nfsg_stats.Metrics.gauge;
}

let make_inst metrics ~name =
  let module M = Nfsg_stats.Metrics in
  let module Names = Nfsg_stats.Names in
  let ns = Names.Ns.disk name in
  {
    m_reads = M.counter metrics ~ns Names.reads;
    m_writes = M.counter metrics ~ns Names.writes;
    m_bytes_read = M.counter metrics ~ns Names.bytes_read;
    m_bytes_written = M.counter metrics ~ns Names.bytes_written;
    m_seek_us = M.histogram metrics ~ns Names.seek_us;
    m_rot_us = M.histogram metrics ~ns Names.rotation_us;
    m_xfer_us = M.histogram metrics ~ns Names.transfer_us;
    m_service_us = M.histogram metrics ~ns Names.service_us;
    m_queue_depth = M.histogram metrics ~ns Names.queue_depth;
    m_queue_gauge = M.gauge metrics ~ns Names.queue_depth_peak;
  }

type state = {
  eng : Engine.t;
  g : geometry;
  scheduler : scheduler;
  platter : Bytes.t;
  mutable pending : job list;  (** arrival order (newest last) *)
  arrived : Condition.t;
  mutable head_cyl : int;
  mutable crashed : bool;
  mutable transactions : int;
  mutable bytes_moved : int;
  mutable busy : Time.t;
  on_transaction : bytes:int -> unit;
  inst : inst;
}

(* Pick the next job per policy and remove it from the pending set. *)
let take_next st =
  match st.pending with
  | [] -> None
  | jobs -> (
      match st.scheduler with
      | Fifo ->
          let j = List.hd jobs in
          st.pending <- List.tl jobs;
          Some j
      | Elevator ->
          (* C-LOOK: nearest cylinder at or beyond the head; if none,
             wrap to the lowest pending cylinder. *)
          let cyl j = job_off j / st.g.track_bytes in
          let ahead = List.filter (fun j -> cyl j >= st.head_cyl) jobs in
          let best_of pool =
            List.fold_left
              (fun acc j -> match acc with None -> Some j | Some b -> if cyl j < cyl b then Some j else acc)
              None pool
          in
          let chosen =
            match best_of ahead with Some j -> Some j | None -> best_of jobs
          in
          (match chosen with
          | Some j -> st.pending <- List.filter (fun x -> x != j) st.pending
          | None -> ());
          chosen)

let cylinders st = Stdlib.max 1 (st.g.capacity / st.g.track_bytes)

let rotation_period st = Time.of_sec_f (60.0 /. st.g.rpm)

(* Rotational delay from [at] until the platter angle matches the sector
   at byte offset [off]. *)
let rotational_delay st ~at ~off =
  let period = rotation_period st in
  let target = off mod st.g.track_bytes in
  (* Fraction of a rotation the target sector sits at. *)
  let target_phase = float_of_int target /. float_of_int st.g.track_bytes in
  let target_ns = int_of_float (target_phase *. float_of_int period) in
  let current = at mod period in
  let d = (target_ns - current + period) mod period in
  d

let service_time st ~off ~len =
  let cyl = off / st.g.track_bytes in
  let dist = abs (cyl - st.head_cyl) in
  let seek = seek_time st.g ~cylinders:(cylinders st) ~distance:dist in
  let settled = Engine.now st.eng + st.g.command_overhead + seek in
  let rot = rotational_delay st ~at:settled ~off in
  let xfer = Time.of_sec_f (float_of_int len /. st.g.media_rate) in
  st.head_cyl <- (off + len) / st.g.track_bytes;
  Nfsg_stats.Histogram.add st.inst.m_seek_us (Time.to_us_f seek);
  Nfsg_stats.Histogram.add st.inst.m_rot_us (Time.to_us_f rot);
  Nfsg_stats.Histogram.add st.inst.m_xfer_us (Time.to_us_f xfer);
  let total = st.g.command_overhead + seek + rot + xfer in
  Nfsg_stats.Histogram.add st.inst.m_service_us (Time.to_us_f total);
  total

let check_bounds st ~off ~len =
  if off < 0 || len < 0 || off + len > st.g.capacity then
    invalid_arg
      (Printf.sprintf "disk: request [%d, %d) outside capacity %d" off (off + len) st.g.capacity)

let account st ~len ~busy =
  st.transactions <- st.transactions + 1;
  st.bytes_moved <- st.bytes_moved + len;
  st.busy <- st.busy + busy;
  st.on_transaction ~bytes:len

let daemon st () =
  let rec loop () =
    let job =
      let rec next () =
        match take_next st with
        | Some j -> j
        | None ->
            Condition.wait st.arrived;
            next ()
      in
      next ()
    in
    (* Jobs arriving or in flight during a crash are silently dropped:
       their issuers never get a completion, like a powered-off drive. *)
    if not st.crashed then begin
      match job with
      | Read { off; len; reply } ->
          check_bounds st ~off ~len;
          let d = service_time st ~off ~len in
          Engine.delay d;
          if not st.crashed then begin
            account st ~len ~busy:d;
            Nfsg_stats.Metrics.incr st.inst.m_reads;
            Nfsg_stats.Metrics.add st.inst.m_bytes_read len;
            Ivar.fill reply (Bytes.sub st.platter off len)
          end
      | Write { off; data; reply } ->
          let len = Bytes.length data in
          check_bounds st ~off ~len;
          let d = service_time st ~off ~len in
          Engine.delay d;
          (* Data reaches the platter only if power held through the
             whole transfer: a crash mid-write loses the request. *)
          if not st.crashed then begin
            Bytes.blit data 0 st.platter off len;
            account st ~len ~busy:d;
            Nfsg_stats.Metrics.incr st.inst.m_writes;
            Nfsg_stats.Metrics.add st.inst.m_bytes_written len;
            Ivar.fill reply ()
          end
    end;
    loop ()
  in
  loop ()

let create eng ?(name = "disk") ?metrics ?(on_transaction = fun ~bytes:_ -> ()) ?(scheduler = Fifo)
    g =
  let metrics = match metrics with Some m -> m | None -> Nfsg_stats.Metrics.create () in
  let st =
    {
      eng;
      g;
      scheduler;
      platter = Bytes.make g.capacity '\000';
      pending = [];
      arrived = Condition.create ();
      head_cyl = 0;
      crashed = false;
      transactions = 0;
      bytes_moved = 0;
      busy = Time.zero;
      on_transaction;
      inst = make_inst metrics ~name;
    }
  in
  Engine.spawn eng ~name:(name ^ "-daemon") (daemon st);
  let submit job =
    st.pending <- st.pending @ [ job ];
    let depth = List.length st.pending in
    Nfsg_stats.Histogram.add st.inst.m_queue_depth (float_of_int depth);
    Nfsg_stats.Metrics.set_max st.inst.m_queue_gauge (float_of_int depth);
    Condition.signal st.arrived
  in
  let read ~off ~len =
    check_bounds st ~off ~len;
    let reply = Ivar.create () in
    submit (Read { off; len; reply });
    Ivar.read reply
  in
  let write ~off data =
    check_bounds st ~off ~len:(Bytes.length data);
    let reply = Ivar.create () in
    submit (Write { off; data = Bytes.copy data; reply });
    Ivar.read reply
  in
  {
    Device.name;
    capacity = g.capacity;
    accelerated = (fun () -> false);
    read;
    write;
    flush = (fun () -> ());
    crash = (fun () -> st.crashed <- true);
    recover = (fun () -> st.crashed <- false);
    spindle_stats =
      (fun () ->
        { Device.transactions = st.transactions; bytes_moved = st.bytes_moved; busy_time = st.busy });
    stable_read =
      (fun ~off ~len ->
        check_bounds st ~off ~len;
        Bytes.sub st.platter off len);
    stable_write =
      (fun ~off data ->
        check_bounds st ~off ~len:(Bytes.length data);
        Bytes.blit data 0 st.platter off (Bytes.length data));
  }
