open Nfsg_sim

type geometry = {
  capacity : int;
  track_bytes : int;
  rpm : float;
  media_rate : float;
  seek_single : Time.t;
  seek_full : Time.t;
  command_overhead : Time.t;
}

let rz26 ?(capacity = 96 * 1024 * 1024) () =
  {
    capacity;
    track_bytes = 400 * 1024;
    rpm = 5400.0;
    media_rate = 2.6e6;
    seek_single = Time.of_ms_f 1.2;
    seek_full = Time.of_ms_f 19.0;
    command_overhead = Time.of_us_f 500.0;
  }

let seek_time g ~cylinders ~distance =
  if distance <= 0 then Time.zero
  else begin
    let span = Stdlib.max 1 (cylinders - 1) in
    let frac = sqrt (float_of_int distance /. float_of_int span) in
    let single = float_of_int g.seek_single and full = float_of_int g.seek_full in
    int_of_float (single +. ((full -. single) *. frac))
  end

type scheduler = Fifo | Elevator | Deadline

(* Per-spindle instruments: the service-time split the paper's disk
   arguments rest on (seek vs rotation vs transfer), plus queue depth,
   per-request queue wait, and the scheduler's merge/promotion work. *)
type inst = {
  m_reads : Nfsg_stats.Metrics.counter;
  m_writes : Nfsg_stats.Metrics.counter;
  m_bytes_read : Nfsg_stats.Metrics.counter;
  m_bytes_written : Nfsg_stats.Metrics.counter;
  m_merged : Nfsg_stats.Metrics.counter;
  m_promotions : Nfsg_stats.Metrics.counter;
  m_barriers : Nfsg_stats.Metrics.counter;
  m_seek_us : Nfsg_stats.Histogram.t;
  m_rot_us : Nfsg_stats.Histogram.t;
  m_xfer_us : Nfsg_stats.Histogram.t;
  m_service_us : Nfsg_stats.Histogram.t;
  m_queue_depth : Nfsg_stats.Histogram.t;
  m_queue_wait_us : Nfsg_stats.Histogram.t;
  m_queue_gauge : Nfsg_stats.Metrics.gauge;
}

let make_inst metrics ~name =
  let module M = Nfsg_stats.Metrics in
  let module Names = Nfsg_stats.Names in
  let ns = Names.Ns.disk name in
  {
    m_reads = M.counter metrics ~ns Names.reads;
    m_writes = M.counter metrics ~ns Names.writes;
    m_bytes_read = M.counter metrics ~ns Names.bytes_read;
    m_bytes_written = M.counter metrics ~ns Names.bytes_written;
    m_merged = M.counter metrics ~ns Names.merged_requests;
    m_promotions = M.counter metrics ~ns Names.deadline_promotions;
    m_barriers = M.counter metrics ~ns Names.barriers;
    m_seek_us = M.histogram metrics ~ns Names.seek_us;
    m_rot_us = M.histogram metrics ~ns Names.rotation_us;
    m_xfer_us = M.histogram metrics ~ns Names.transfer_us;
    m_service_us = M.histogram metrics ~ns Names.service_us;
    m_queue_depth = M.histogram metrics ~ns Names.queue_depth;
    m_queue_wait_us = M.histogram metrics ~ns Names.queue_wait_us;
    m_queue_gauge = M.gauge metrics ~ns Names.queue_depth_peak;
  }

(* A queued request with its submission instant (for queue-wait
   accounting and deadline promotion) and its submission batch: every
   item of one [submit] call shares a batch id, and a barrier orders
   only the items of its own batch. *)
type pitem = { it : Io.item; enq : Time.t; batch : int }

type state = {
  eng : Engine.t;
  g : geometry;
  scheduler : scheduler;
  deadline : Time.t;  (** max tolerated queue wait before promotion *)
  merge : bool;
  merge_limit : int;  (** upper bound on a coalesced transaction, bytes *)
  platter : Bytes.t;
  mutable pending : pitem list;  (** arrival order (newest last) *)
  mutable next_batch : int;
  arrived : Condition.t;
  mutable head_cyl : int;
  mutable crashed : bool;
  mutable transactions : int;
  mutable bytes_moved : int;
  mutable busy : Time.t;
  on_transaction : bytes:int -> unit;
  inst : inst;
}

(* The serviceable window: every request not ordered behind a barrier
   of its own submission batch. A barrier promises only that its
   batch's later items stay behind its batch's earlier items — one
   gathered flush's inode behind that flush's data — so requests of
   OTHER batches pass it freely and the scheduler may reorder and
   merge across it. A device-global fence here would lace a busy queue
   with serialization points (one per concurrent file flush) and
   flatten every scheduling policy back to FIFO at the tail. *)
let window st =
  let fenced = Hashtbl.create 4 in
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest -> (
        match p.it with
        | Io.Barrier _ ->
            Hashtbl.replace fenced p.batch ();
            go acc rest
        | Io.Req r ->
            if Hashtbl.mem fenced p.batch then go acc rest
            else go ((r, p.enq) :: acc) rest)
  in
  go [] st.pending

let req_cyl st (r : Io.req) = r.Io.off / st.g.track_bytes

(* C-LOOK over the window: nearest cylinder at or beyond the head; if
   none, wrap to the lowest pending cylinder. *)
let elevator_pick st win =
  let ahead = List.filter (fun (r, _) -> req_cyl st r >= st.head_cyl) win in
  let best_of pool =
    List.fold_left
      (fun acc ((r, _) as c) ->
        match acc with
        | None -> Some c
        | Some (b, _) -> if req_cyl st r < req_cyl st b then Some c else acc)
      None pool
  in
  match best_of ahead with Some c -> Some c | None -> best_of win

(* Pick the next request per policy. The window is in arrival order, so
   its head is the oldest request — under [Deadline] a head that has
   waited past the threshold is served out of elevator order, which
   bounds the starvation a far-cylinder request can suffer while the
   elevator feasts on a stream of near-head arrivals. *)
let pick st =
  match window st with
  | [] -> None
  | (((_, first_enq) as first) :: _) as win -> (
      match st.scheduler with
      | Fifo -> Some first
      | Elevator -> elevator_pick st win
      | Deadline ->
          if Engine.now st.eng - first_enq > st.deadline then begin
            Nfsg_stats.Metrics.incr st.inst.m_promotions;
            Some first
          end
          else elevator_pick st win)

let remove st (r : Io.req) =
  st.pending <-
    List.filter (fun p -> match p.it with Io.Req x -> x != r | Io.Barrier _ -> true) st.pending

(* Retire every barrier with no earlier same-batch request still
   pending: its ordering promise is discharged. Runs only between
   service rounds in the daemon (the sole consumer), so a batch's
   requests are either still ahead of their barrier in [pending] or
   already durable — never invisibly in flight. *)
let retire_barriers st =
  let live = Hashtbl.create 4 in
  st.pending <-
    List.filter
      (fun p ->
        match p.it with
        | Io.Req _ ->
            Hashtbl.replace live p.batch ();
            true
        | Io.Barrier b ->
            Hashtbl.mem live p.batch
            ||
            (Nfsg_stats.Metrics.incr st.inst.m_barriers;
             Ivar.fill b.done_ ();
             false))
      st.pending

(* Chain physically adjacent same-direction requests from the window
   onto [r], bounded by [merge_limit]: one seek, one rotational wait,
   one transfer for the lot. The chain is returned in ascending offset
   order, [r] first. *)
let merge_chain st ((r, _) as leader) =
  if not st.merge then [ leader ]
  else begin
    let rec grow chain tail_end total =
      let next =
        List.find_opt
          (fun (x, _) ->
            x.Io.op = r.Io.op && x.Io.off = tail_end && total + x.Io.len <= st.merge_limit)
          (window st)
      in
      match next with
      | Some ((x, _) as c) ->
          remove st x;
          grow (c :: chain) (x.Io.off + x.Io.len) (total + x.Io.len)
      | None -> List.rev chain
    in
    grow [ leader ] (r.Io.off + r.Io.len) r.Io.len
  end

let cylinders st = Stdlib.max 1 (st.g.capacity / st.g.track_bytes)

let rotation_period st = Time.of_sec_f (60.0 /. st.g.rpm)

(* Rotational delay from [at] until the platter angle matches the sector
   at byte offset [off]. *)
let rotational_delay st ~at ~off =
  let period = rotation_period st in
  let target = off mod st.g.track_bytes in
  (* Fraction of a rotation the target sector sits at. *)
  let target_phase = float_of_int target /. float_of_int st.g.track_bytes in
  let target_ns = int_of_float (target_phase *. float_of_int period) in
  let current = at mod period in
  let d = (target_ns - current + period) mod period in
  d

let service_time st ~off ~len =
  let cyl = off / st.g.track_bytes in
  let dist = abs (cyl - st.head_cyl) in
  let seek = seek_time st.g ~cylinders:(cylinders st) ~distance:dist in
  let settled = Engine.now st.eng + st.g.command_overhead + seek in
  let rot = rotational_delay st ~at:settled ~off in
  let xfer = Time.of_sec_f (float_of_int len /. st.g.media_rate) in
  st.head_cyl <- (off + len) / st.g.track_bytes;
  Nfsg_stats.Histogram.add st.inst.m_seek_us (Time.to_us_f seek);
  Nfsg_stats.Histogram.add st.inst.m_rot_us (Time.to_us_f rot);
  Nfsg_stats.Histogram.add st.inst.m_xfer_us (Time.to_us_f xfer);
  let total = st.g.command_overhead + seek + rot + xfer in
  Nfsg_stats.Histogram.add st.inst.m_service_us (Time.to_us_f total);
  total

let check_bounds st ~off ~len =
  if off < 0 || len < 0 || off + len > st.g.capacity then
    invalid_arg
      (Printf.sprintf "disk: request [%d, %d) outside capacity %d" off (off + len) st.g.capacity)

let account st ~len ~busy =
  st.transactions <- st.transactions + 1;
  st.bytes_moved <- st.bytes_moved + len;
  st.busy <- st.busy + busy;
  st.on_transaction ~bytes:len

(* Service one coalesced transaction: the chain is contiguous, so its
   span costs one seek + one rotational wait + one transfer. *)
let service st chain =
  let first = match chain with (r, _) :: _ -> r | [] -> assert false in
  let total = List.fold_left (fun acc (r, _) -> acc + r.Io.len) 0 chain in
  let start = Engine.now st.eng in
  List.iter
    (fun (_, enq) ->
      Nfsg_stats.Histogram.add st.inst.m_queue_wait_us (Time.to_us_f (start - enq)))
    chain;
  let d = service_time st ~off:first.Io.off ~len:total in
  Engine.delay d;
  (* Data reaches the platter only if power held through the whole
     transfer: a crash mid-transaction loses every request in it, and
     the issuers never see a completion — like a powered-off drive. *)
  if not st.crashed then begin
    List.iter
      (fun (r, _) ->
        match r.Io.op with
        | Io.Write -> Bytes.blit r.Io.buf 0 st.platter r.Io.off r.Io.len
        | Io.Read -> Bytes.blit st.platter r.Io.off r.Io.buf 0 r.Io.len)
      chain;
    account st ~len:total ~busy:d;
    (match first.Io.op with
    | Io.Read ->
        Nfsg_stats.Metrics.incr st.inst.m_reads;
        Nfsg_stats.Metrics.add st.inst.m_bytes_read total
    | Io.Write ->
        Nfsg_stats.Metrics.incr st.inst.m_writes;
        Nfsg_stats.Metrics.add st.inst.m_bytes_written total);
    Nfsg_stats.Metrics.add st.inst.m_merged (List.length chain - 1);
    List.iter (fun (r, _) -> Io.complete r) chain
  end

let daemon st () =
  let rec loop () =
    if st.crashed then begin
      (* Power is off: everything queued is lost — barriers included —
         and completions never come. Keep draining arrivals until
         recovery. *)
      st.pending <- [];
      Condition.wait st.arrived;
      loop ()
    end
    else begin
      retire_barriers st;
      match pick st with
      | Some leader ->
          remove st (fst leader);
          let chain = merge_chain st leader in
          service st chain;
          loop ()
      | None ->
          (* After retirement, any non-empty queue leads with a
             serviceable request — pick finding nothing means the
             queue is empty. *)
          assert (st.pending = []);
          Condition.wait st.arrived;
          loop ()
    end
  in
  loop ()

let create eng ?(name = "disk") ?metrics ?(on_transaction = fun ~bytes:_ -> ())
    ?(scheduler = Fifo) ?(deadline = Time.of_ms_f 30.0) ?(merge = true)
    ?(merge_limit = 128 * 1024) g =
  let metrics = match metrics with Some m -> m | None -> Nfsg_stats.Metrics.create () in
  let st =
    {
      eng;
      g;
      scheduler;
      deadline;
      merge;
      merge_limit;
      platter = Bytes.make g.capacity '\000';
      pending = [];
      next_batch = 0;
      arrived = Condition.create ();
      head_cyl = 0;
      crashed = false;
      transactions = 0;
      bytes_moved = 0;
      busy = Time.zero;
      on_transaction;
      inst = make_inst metrics ~name;
    }
  in
  Engine.spawn eng ~name:(name ^ "-daemon") (daemon st);
  let submit items =
    match items with
    | [] -> ()
    | _ ->
        let enq = Engine.now st.eng in
        st.next_batch <- st.next_batch + 1;
        let batch = st.next_batch in
        List.iter
          (fun it ->
            (match it with
            | Io.Req r -> check_bounds st ~off:r.Io.off ~len:r.Io.len
            | Io.Barrier _ -> ());
            st.pending <- st.pending @ [ { it; enq; batch } ])
          items;
        let depth = List.length st.pending in
        Nfsg_stats.Histogram.add st.inst.m_queue_depth (float_of_int depth);
        Nfsg_stats.Metrics.set_max st.inst.m_queue_gauge (float_of_int depth);
        Condition.signal st.arrived
  in
  let read ~off ~len =
    check_bounds st ~off ~len;
    Io.blocking_read ~submit ~off ~len
  in
  let write ~off data =
    check_bounds st ~off ~len:(Bytes.length data);
    Io.blocking_write ~submit ~class_:`Sync_write ~off data
  in
  {
    Device.name;
    capacity = g.capacity;
    accelerated = (fun () -> false);
    submit;
    read;
    write;
    flush = (fun () -> ());
    crash = (fun () -> st.crashed <- true);
    recover = (fun () -> st.crashed <- false);
    spindle_stats =
      (fun () ->
        { Device.transactions = st.transactions; bytes_moved = st.bytes_moved; busy_time = st.busy });
    stable_read =
      (fun ~off ~len ->
        check_bounds st ~off ~len;
        Bytes.sub st.platter off len);
    stable_write =
      (fun ~off data ->
        check_bounds st ~off ~len:(Bytes.length data);
        Bytes.blit data 0 st.platter off (Bytes.length data));
  }
