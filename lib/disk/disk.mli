(** Moving-head disk model (the paper's RZ26-class SCSI spindle).

    Service time for a request is

    [command overhead + seek(cylinder distance) + rotational alignment
     + length / media rate]

    Seek time follows the classical [a + b*sqrt(d)] curve, normalised
    by the cylinder span so small test disks seek like big ones.
    Rotational alignment is positional: the platter angle advances with
    the simulation clock, so a stream of back-to-back sequential 8K
    writes that each arrive "just too late" pays nearly a full rotation
    — the "missed rotations" the paper says clustering avoids.

    The drive consumes a tagged submission queue ({!Io}): batches of
    requests separated by barriers, serviced by a daemon whose
    scheduler works over the whole pending window. [`Fifo] serves in
    arrival order (the reference port's driver behaviour); [`Elevator]
    is a C-LOOK sweep serving the nearest cylinder at or beyond the
    head, wrapping to the lowest; [`Deadline] is the elevator plus
    starvation control — a request whose queue wait exceeds the
    deadline is served next regardless of position, bounding the tail
    of the [queue_wait_us] histogram. Physically adjacent
    same-direction requests are coalesced into single transactions
    (one seek, one rotational wait, one transfer), counted by the
    [merged_requests] metric. A barrier fences only its own
    submission batch: the batch's later items wait for its earlier
    ones, while other batches' requests are scheduled straight across
    it — one gathered flush's data/metadata ordering never collapses
    the whole queue into submission order. *)

type geometry = {
  capacity : int;  (** bytes *)
  track_bytes : int;  (** bytes per cylinder *)
  rpm : float;
  media_rate : float;  (** sustained transfer, bytes/sec *)
  seek_single : Nfsg_sim.Time.t;  (** track-to-track seek *)
  seek_full : Nfsg_sim.Time.t;  (** full-span seek *)
  command_overhead : Nfsg_sim.Time.t;  (** fixed per-request cost *)
}

val rz26 : ?capacity:int -> unit -> geometry
(** RZ26-inspired default geometry (5400 RPM, ~2.6 MB/s media rate).
    Default [capacity] is 96 MiB — big enough for every experiment,
    small enough to hold in RAM. *)

type scheduler = Fifo | Elevator | Deadline

val create :
  Nfsg_sim.Engine.t ->
  ?name:string ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?on_transaction:(bytes:int -> unit) ->
  ?scheduler:scheduler ->
  ?deadline:Nfsg_sim.Time.t ->
  ?merge:bool ->
  ?merge_limit:int ->
  geometry ->
  Device.t
(** A fresh zero-filled disk served by a spawned daemon process.
    [on_transaction] fires at each physical transaction completion
    (once per merged chain), letting the caller account
    driver/interrupt CPU cost. [deadline] (default 30 ms) is the
    [`Deadline] scheduler's promotion threshold; [merge] (default on)
    enables adjacent-request coalescing bounded by [merge_limit]
    (default 128 KiB). [metrics] registers the spindle's instruments
    under namespace ["disk.<name>"]: read/write counters, the
    seek/rotation/transfer service-time split (histograms, µs),
    queue-depth and queue-wait distributions, and
    merge/promotion/barrier counters (private registry when
    omitted). *)

val seek_time : geometry -> cylinders:int -> distance:int -> Nfsg_sim.Time.t
(** Exposed for tests: seek duration for a head movement of [distance]
    cylinders on a disk with [cylinders] total. *)
