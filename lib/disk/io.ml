(* Tagged asynchronous I/O requests: the submission currency of the
   storage stack. See io.mli for the contract. *)

open Nfsg_sim

type op = Read | Write

type class_ = [ `Sync_write | `Gather_flush | `Bg_drain | `Read ]

type req = {
  op : op;
  off : int;
  len : int;
  buf : Bytes.t;
  class_ : class_;
  tag : int;
  done_ : unit Ivar.t;
  mutable error : exn option;
}

type item = Req of req | Barrier of { tag : int; done_ : unit Ivar.t }

let next_tag = ref 0

let () = Reset.register ~name:"io.next_tag" (fun () -> next_tag := 0)

let fresh_tag () =
  incr next_tag;
  !next_tag

let class_name = function
  | `Sync_write -> "sync_write"
  | `Gather_flush -> "gather_flush"
  | `Bg_drain -> "bg_drain"
  | `Read -> "read"

let write_req ?tag ~class_ ~off data =
  let tag = match tag with Some t -> t | None -> fresh_tag () in
  {
    op = Write;
    off;
    len = Bytes.length data;
    buf = data;
    class_;
    tag;
    done_ = Ivar.create ();
    error = None;
  }

let read_req ?tag ?(class_ = `Read) ~off ~len () =
  let tag = match tag with Some t -> t | None -> fresh_tag () in
  {
    op = Read;
    off;
    len;
    buf = Bytes.create len;
    class_;
    tag;
    done_ = Ivar.create ();
    error = None;
  }

let barrier ?tag () =
  let tag = match tag with Some t -> t | None -> fresh_tag () in
  Barrier { tag; done_ = Ivar.create () }

let complete r = Ivar.fill r.done_ ()

let fail r exn =
  r.error <- Some exn;
  Ivar.fill r.done_ ()

let item_done = function Req r -> r.done_ | Barrier b -> b.done_
let item_tag = function Req r -> r.tag | Barrier b -> b.tag

let fail_item item exn =
  match item with Req r -> fail r exn | Barrier b -> Ivar.fill b.done_ ()

let await r =
  Ivar.read r.done_;
  match r.error with Some exn -> raise exn | None -> ()

let await_all reqs =
  (* Wait for every completion before surfacing the first error, so no
     request is abandoned mid-flight with its issuer gone. *)
  List.iter (fun r -> Ivar.read r.done_) reqs;
  List.iter (fun r -> match r.error with Some exn -> raise exn | None -> ()) reqs

let await_barrier = function
  | Barrier b -> Ivar.read b.done_
  | Req _ -> invalid_arg "Io.await_barrier: not a barrier"

(* {1 Blocking shims} *)

let blocking_read ~submit ~off ~len =
  let r = read_req ~off ~len () in
  submit [ Req r ];
  await r;
  r.buf

let blocking_write ~submit ?(class_ = `Sync_write) ~off data =
  let r = write_req ~class_ ~off (Bytes.copy data) in
  submit [ Req r ];
  await r
