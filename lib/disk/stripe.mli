(** Level-parameterized array driver over [n] member devices: RAID-0
    striping (the paper's "3 drive stripe set"), RAID-1 mirroring and
    RAID-5 rotating parity, on the tagged-request/barrier core.

    {b RAID-0} cuts the logical byte space into fixed-size chunks dealt
    round-robin across members; a request spanning several chunks is
    cut into per-member pieces, issued as one batch per member, and
    completes when every piece has. A barrier is strict across
    spindles: requests behind it are not released to {e any} member
    until everything ahead of it is stable on {e every} member.

    {b RAID-1} mirrors every write to all members and deals reads
    round-robin. With a member failed, reads fall over to the
    survivors and writes continue on whatever is left.

    {b RAID-5} uses a left-asymmetric rotating-parity layout: stripe
    row [s] keeps its parity chunk on member [n-1 - (s mod n)]. A
    partial-stripe write is a chunk-granularity read-modify-write
    (parity' = parity ⊕ old ⊕ new); a write covering a whole row skips
    the read phase and computes parity from the new data alone — the
    full-stripe commits that gathered flushes earn, counted separately
    ([raid.full_stripe_writes] vs [raid.rmw_writes]). Degraded reads
    reconstruct the dead chunk from parity and the surviving data;
    degraded writes fold the unwritable chunk's new contents into
    parity and continue.

    In-flight row commits are journalled in battery-backed controller
    memory: a power crash mid-commit replays them from stable ops on
    recovery, so data and parity (or two mirror sides) can never stay
    divergent — the classic RAID write hole, closed the way array
    controllers close it.

    A failed member can be {!rebuild}t online: a background process
    resilvers it row by row with low-priority [`Bg_drain] requests
    while foreground service continues, the resilver cursor deciding
    which rows of the replacement already participate.

    Member [submit]s must be non-blocking (raw disks and fault wrappers
    are; an NVRAM front-end belongs above the array, not inside it). *)

type level = Raid0 | Raid1 | Raid5
type member_state = Active | Failed | Rebuilding

val level_name : level -> string
val level_of_name : string -> level option

type t
(** Management handle for an array. *)

val create_array :
  Nfsg_sim.Engine.t ->
  ?name:string ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?level:level ->
  chunk:int ->
  Device.t array ->
  t
(** [create_array eng ~chunk members] — [level] defaults to [Raid0].
    Logical capacity is the member capacity rounded down to whole
    chunks, times the member count (RAID-0), times one (RAID-1) or
    times [n-1] (RAID-5). Counters register under the
    ["raid.<name>"] namespace for the redundant levels.

    Raises [Invalid_argument] on an empty member array, a chunk that
    is not a positive multiple of the 512-byte sector, members with
    differing capacities, or too few members for the level (RAID-1
    needs 2, RAID-5 needs 3). *)

val create :
  Nfsg_sim.Engine.t ->
  ?name:string ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?level:level ->
  chunk:int ->
  Device.t array ->
  Device.t
(** [create_array] for callers that only want the device. *)

val device : t -> Device.t
val level : t -> level

val member_state : t -> int -> member_state

val degraded : t -> bool
(** True while any member is not [Active]. *)

val fail_member : t -> int -> unit
(** Administratively fail-stop a member (as a fault injector's
    [fail_stop] does implicitly on its first error). Raises on RAID-0:
    there is nothing to continue with. *)

val rebuild : ?pace:Nfsg_sim.Time.t -> t -> member:int -> unit
(** Start resilvering a [Failed] member from the survivors (mirror
    copy for RAID-1, XOR of the other members for RAID-5), one chunk
    row at a time, [pace] apart (default 1ms), as [`Bg_drain]-class
    traffic. Returns immediately; progress via {!rebuild_progress}.
    The member becomes [Active] when the copy completes; a crash or a
    survivor failure aborts the copy and leaves it [Failed]. Raises
    [Invalid_argument] if the member is not [Failed], the array is
    crashed, or the survivors cannot source the copy. *)

val rebuild_active : t -> bool

val rebuild_progress : t -> (int * int) option
(** [(rows done, rows total)] while a rebuild is running. *)
