(** RAID-0 striping driver over [n] member devices (the paper's
    "3 drive stripe set", provided by a disk striping driver).

    The logical byte space is cut into fixed-size chunks dealt
    round-robin across members. A submitted request spanning several
    chunks is cut into per-member pieces, issued as one batch per
    member, and completes when every piece has — without spawning a
    process per piece (completions chain through [Ivar.upon]). A
    barrier is strict across spindles: requests behind it are not
    released to {e any} member until everything ahead of it is stable
    on {e every} member. Member [submit]s must be non-blocking (raw
    disks and fault wrappers are; an NVRAM front-end belongs above the
    stripe, not inside it). *)

val create :
  Nfsg_sim.Engine.t -> ?name:string -> chunk:int -> Device.t array -> Device.t
(** [create eng ~chunk members] — capacity is the members' minimum
    capacity times the member count, rounded down to whole chunks.
    Raises [Invalid_argument] on an empty member array or non-positive
    chunk. *)
