(** Block-device abstraction shared by the raw disk, the stripe driver
    and the NVRAM accelerator.

    A device stores real bytes: reads return what was written, and the
    stable/volatile split is explicit so crash-recovery invariants can
    be tested rather than asserted.

    Calls to {!read} and {!write} block the calling simulation process
    for the device's modelled service time. *)

type stats = {
  transactions : int;  (** physical spindle transactions completed *)
  bytes_moved : int;  (** bytes across all spindle transactions *)
  busy_time : Nfsg_sim.Time.t;  (** cumulative spindle busy time *)
}

exception Io_error of string
(** A transient I/O failure: the transaction was not performed (or not
    completed) and the data involved is {e not} on stable storage. Only
    raised by fault-injecting device wrappers ({!Nfsg_fault.Fault_disk})
    and by devices whose backing store reports one; callers must treat
    it as retryable and must not assume any state change. *)

type t = {
  name : string;
  capacity : int;  (** device size in bytes *)
  accelerated : unit -> bool;
      (** true when fronted by (healthy) NVRAM — the server write layer
          queries this per-operation to pick its policy (paper section
          6.3). Dynamic so an NVRAM battery failure can degrade the
          device to synchronous pass-through mid-run. *)
  submit : Io.item list -> unit;
      (** Queue a batch of tagged requests ({!Io.item}) for service,
          in list order, without waiting for completion — the device
          fills each request's [done_] when it is stable (or failed).
          May charge submission-side time (NVRAM admission) but never
          blocks on service. Barrier items order the queue; see
          {!Io}. *)
  read : off:int -> len:int -> Bytes.t;
  write : off:int -> Bytes.t -> unit;
      (** On return the data is on {e stable} storage (platter or
          NVRAM). May raise {!Io_error}. Thin blocking shims over
          {!submit} ({!Io.blocking_read}/{!Io.blocking_write}); new
          code outside lib/disk and lib/ufs goes through [submit]
          (lint rule I001). *)
  flush : unit -> unit;
      (** Drain any buffered (NVRAM) state down to the platter. *)
  crash : unit -> unit;
      (** Power loss: volatile state and queued-but-unserviced requests
          are dropped. Platter and NVRAM survive. *)
  recover : unit -> unit;
      (** Post-crash recovery, e.g. NVRAM replay onto the platter.
          Instantaneous (happens "during downtime"). *)
  spindle_stats : unit -> stats;
      (** Aggregated over all underlying physical spindles — this is
          what the paper's "server disk trans/sec" rows count. *)
  stable_read : off:int -> len:int -> Bytes.t;
      (** Instantaneous view of stable storage (platter plus NVRAM);
          for recovery and test assertions. *)
  stable_write : off:int -> Bytes.t -> unit;
      (** Instantaneous write to the platter; for recovery replay and
          test seeding only — consumes no simulated time. *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
