module Fs = Nfsg_ufs.Fs
module Proto = Nfsg_nfs.Proto

type spec = {
  export : string;
  device : Nfsg_disk.Device.t;
  cache_blocks : int option;
  read_only : bool;
  readahead : Nfsg_ufs.Buffer_cache.readahead option;
}

let spec ?cache_blocks ?(read_only = false) ?readahead export device =
  { export; device; cache_blocks; read_only; readahead }

type t = {
  spec : spec;
  fsid : int;
  vgen : int;
  fs : Fs.t;
  wl : Write_layer.t;
  server_ns : string;
  mutable read_only : bool;
}

(* Volume generations: a fresh one per format, preserved across
   crash/recover of the same filesystem. A handle minted before a
   volume was reformatted (or replaced) therefore carries a dead vgen
   and earns NFSERR_STALE, while handles held across a mere reboot
   keep working. Process-global so no two formats ever share one. *)
(* nfslint: allow S001 vgen uniqueness is process-wide by design: resetting it would let a reformatted volume reuse a live generation and defeat NFSERR_STALE detection *)
let generation_counter = ref 0

let server_ns_of ~legacy_ns fsid =
  if legacy_ns then Nfsg_stats.Names.Ns.server else Nfsg_stats.Names.Ns.server_vol fsid

let write_layer_ns_of ~legacy_ns fsid =
  if legacy_ns then Nfsg_stats.Names.Ns.write_layer else Nfsg_stats.Names.Ns.write_layer_vol fsid

let read_plane_ns_of ~legacy_ns fsid =
  if legacy_ns then Nfsg_stats.Names.Ns.read_plane else Nfsg_stats.Names.Ns.read_plane_vol fsid

let mount eng ~fsid ?vgen ?(legacy_ns = false) ~sock ~cpu ~costs ~send_reply
    ?trace ?metrics ?(mkfs = true) ~wl_config spec =
  let vgen =
    match vgen with
    | Some g -> g
    | None ->
        incr generation_counter;
        !generation_counter
  in
  if mkfs then Fs.mkfs spec.device ();
  let fs =
    Fs.mount eng ?cache_blocks:spec.cache_blocks ?metrics
      ~ns:(read_plane_ns_of ~legacy_ns fsid)
      ?readahead:spec.readahead spec.device
  in
  let wl =
    Write_layer.create eng ~fs ~sock ~cpu ~costs ~send_reply ?trace ?metrics
      ~ns:(write_layer_ns_of ~legacy_ns fsid)
      ~fsid wl_config
  in
  {
    spec;
    fsid;
    vgen;
    fs;
    wl;
    server_ns = server_ns_of ~legacy_ns fsid;
    read_only = spec.read_only;
  }

let export t = t.spec.export
let fsid t = t.fsid
let vgen t = t.vgen
let device t = t.spec.device
let fs t = t.fs
let write_layer t = t.wl
let server_ns t = t.server_ns
let read_only t = t.read_only
let set_read_only t ro = t.read_only <- ro

(* Spec as remounted at recovery: the runtime toggle is part of the
   identity a reboot must preserve. *)
let spec_of t = { t.spec with read_only = t.read_only }

let root_fh t =
  let root = Fs.root t.fs in
  { Proto.fsid = t.fsid; vgen = t.vgen; inum = Fs.inum root; gen = Fs.generation root }

let owns t (fh : Proto.fh) = fh.Proto.fsid = t.fsid && fh.Proto.vgen = t.vgen

let crash t = Fs.crash t.fs
