(** The server write layer: the paper's contribution.

    Two modes:

    - {b Standard}: the reference-port path. Each WRITE does
      VOP_WRITE(IO_SYNC) — data then metadata synchronously (with the
      mtime-only asynchronous special case) — and replies. Up to three
      disk transactions per 8 KB write.

    - {b Gathering} (section 6.8): VOP_WRITE delivers the data
      (IO_SYNC|IO_DATAONLY when the device is NVRAM-accelerated,
      IO_DELAYDATA otherwise), then the nfsd tries to leave the
      metadata update to a {e following} nfsd: if another nfsd is in
      the write path for the same file, or the socket buffer holds
      another WRITE for it (the mbuf hunter, section 6.5), it queues
      its reply descriptor and goes back for more work
      ([Reply_pending] through a fresh transport handle). Otherwise it
      procrastinates once (section 6.6) and re-checks. The last nfsd
      standing becomes the {e metadata writer}: it flushes the
      gathered data (VOP_SYNCDATA with range hints; clustered 64 KB
      transactions), does one VOP_FSYNC(FWRITE_METADATA), and sends
      every pending reply in FIFO order — all carrying the same file
      modify time. Crash semantics are preserved: no reply leaves
      before the covering metadata update is stable.

    The [`First_write] latency device reproduces the [SIVA93] variant
    the paper rejects (send the first write to disk as the delay
    instead of sleeping), for the ablation benchmark. *)

type mode =
  | Standard
  | Gathering
  | Unsafe_async
      (** "dangerous mode" (paper section 4.3): reply as soon as the
          data is in volatile memory. Some vendors shipped this as the
          default, with or without a UPS; it is fast and it breaks the
          NFS crash-recovery design — the crash-injection tests prove
          the breakage. *)

type config = {
  mode : mode;
  procrastinate : Nfsg_sim.Time.t;
      (** 8 ms for Ethernet, 5 ms for FDDI in the paper *)
  max_procrastinations : int;  (** the paper procrastinates at most once *)
  use_mbuf_hunter : bool;
  reply_order : [ `Fifo | `Lifo ];  (** paper kept FIFO; LIFO is the rejected variant *)
  latency_device : [ `Procrastinate | `First_write ];
  learn_clients : bool;
      (** Jeff Mogul's suggestion from the paper's Future Work: build a
          small database of learned per-client behaviour and use it to
          direct gathering. When on, a client whose writes repeatedly
          fail to gather (a single-threaded "dumb PC") stops paying the
          procrastination penalty; a client that gathers keeps the full
          treatment. Off by default — the paper's server doesn't have
          it. *)
}

val default_gathering : config
val standard : config
val unsafe_async : config

type t

val create :
  Nfsg_sim.Engine.t ->
  fs:Nfsg_ufs.Fs.t ->
  sock:Nfsg_net.Socket.t ->
  cpu:Nfsg_sim.Resource.t ->
  costs:Cpu_model.t ->
  send_reply:(Nfsg_rpc.Svc.transport -> Nfsg_nfs.Proto.res -> unit) ->
  ?trace:Nfsg_stats.Trace.t ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?ns:string ->
  ?fsid:int ->
  config ->
  t
(** [metrics] registers the layer's instruments under namespace [ns]
    (default ["write_layer"]; a multi-volume server passes
    ["write_layer.vol<fsid>"] per volume): the counters exposed by the
    accessors below plus [metadata_flushes_saved], the gather
    [batch_size] histogram and the deferred-reply latency histogram
    [reply_latency_us] (private registry when omitted). [fsid] (default
    1) is stamped into reply attributes and constrains the mbuf hunter
    to WRITEs for this volume. *)

val handle_write :
  t ->
  Nfsg_rpc.Svc.transport ->
  ?respond:(Nfsg_nfs.Proto.fattr -> Nfsg_nfs.Proto.res) ->
  ?fail:(Nfsg_nfs.Proto.status -> Nfsg_nfs.Proto.res) ->
  Nfsg_ufs.Vfs.vnode ->
  off:int ->
  data:Nfsg_rpc.Xdr.view ->
  Nfsg_rpc.Svc.disposition
(** Always arranges the reply itself (through [send_reply]) and
    returns [Reply_pending]; the caller must not reply again.
    [respond] formats the success reply from the post-flush attributes
    (default: the v2 [RAttr] shape; the server passes a v3 [RWrite3]
    formatter for stable v3 writes, which therefore share gather
    batches with v2 writes). [fail] formats error replies the same way
    (default: the v2 error shape). A disk error during a gathered
    flush fails every descriptor in the batch with [NFSERR_IO] in FIFO
    order — no reply may claim success after the covering metadata
    update failed — and the simulation keeps running. *)

val rescue : t -> inum:int -> unit
(** Orphan protection (section 6.9): called when a duplicate WRITE was
    dropped from the socket buffer — if that drop stranded queued
    descriptors with no nfsd left to elect a metadata writer, the
    calling process flushes and replies itself. Must run in a
    simulation process. *)

(** {1 Statistics} *)

val writes_handled : t -> int
val batches : t -> int
(** Metadata updates performed (gathering mode: one per gather). *)

val gathered_replies : t -> int
val procrastinations : t -> int
val procrastinate_failures : t -> int
(** Times the server procrastinated and still ended up flushing a
    single write — the dumb-PC worst case. *)

val mbuf_hits : t -> int
val rescues : t -> int

val flush_failures : t -> int
(** Gathered batches whose data/metadata flush hit a disk error; every
    descriptor in such a batch was answered [NFSERR_IO]. *)

val mean_batch_size : t -> float

val learned_solo_clients : t -> int
(** Clients the learned-client database currently classifies as
    single-threaded (0 unless [learn_clients] is on). *)
