(** The NFS server: socket, nfsd pool, duplicate cache, CPU model, and
    an {e export table} of volumes — each volume a device (optionally
    NVRAM-accelerated and/or striped) with its own filesystem, buffer
    cache, and write-gathering plane.

    Single-volume use: create a device, run {!make} over it, and point
    NFS clients at [addr] on the same segment. Multi-volume use: pass
    {!make_exports} a list of {!Volume.spec}s; dispatch routes each
    filehandle to its volume by fsid, unknown or pre-reformat handles
    earn [NFSERR_STALE], and cross-volume renames earn
    [NFSERR_XDEV]. *)

type config = {
  nfsds : int;
  write_layer : Write_layer.config;
  costs : Cpu_model.t;
  dupcache : bool;
  rcvbuf : int;  (** server socket buffer (DEC OSF/1: 256 KiB max) *)
  cache_blocks : int option;  (** buffer-cache bound; None = plenty of RAM *)
  readahead : Nfsg_ufs.Buffer_cache.readahead option;
      (** sequential prefetch policy for the single-volume {!make}
          constructor; [None] = read-ahead off. Multi-volume exports
          carry the policy in their {!Volume.spec} instead *)
  long_op_threshold : Nfsg_sim.Time.t option;
      (** ops slower end-to-end than this emit a long-op record into the
          journey plane's ring; [None] disables long-op tracing (journey
          histograms and station attribution stay on regardless) *)
}

val default_config : config
(** 8 nfsds, gathering write layer, default costs, dupcache on. *)

type t

val make :
  Nfsg_sim.Engine.t ->
  segment:Nfsg_net.Segment.t ->
  addr:string ->
  device:Nfsg_disk.Device.t ->
  ?trace:Nfsg_stats.Trace.t ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?mkfs:bool ->
  config ->
  t
(** Formats the device (unless [mkfs:false]), mounts, attaches the
    socket, spawns the nfsds. [metrics] is the registry every layer of
    this server registers its instruments in (namespaces ["server"],
    ["write_layer"], ["rpc.svc"], ["rpc.dupcache"]); {!recover} passes
    the same registry to the next incarnation so counts accumulate
    across restarts (private registry when omitted).

    Equivalent to a 1-volume {!make_exports}, except the metrics keep
    the historical single-volume namespaces. *)

val make_exports :
  Nfsg_sim.Engine.t ->
  segment:Nfsg_net.Segment.t ->
  addr:string ->
  ?trace:Nfsg_stats.Trace.t ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?mkfs:bool ->
  config ->
  Volume.spec list ->
  t
(** Multi-volume server over an export table (nonempty, else
    [Invalid_argument]). Volume [i] gets fsid [i+1] and registers its
    instruments under namespaces [server.vol<fsid>] and
    [write_layer.vol<fsid>], so per-volume gather batches and op mixes
    never share a counter. All volumes share the socket, nfsd pool,
    duplicate cache, CPU, and write verifier. *)

val volumes : t -> Volume.t list
(** The export table, fsid order. *)

val volume : t -> int -> Volume.t
(** Volume by fsid; raises [Invalid_argument] for an unknown fsid. *)

val exports : t -> (string * Nfsg_nfs.Proto.fh) list
(** [(export name, root filehandle)] per volume — what the MOUNT
    service hands out. *)

val root_fh : t -> Nfsg_nfs.Proto.fh
(** Root handle of the first volume. *)

val fs : t -> Nfsg_ufs.Fs.t
(** First volume's filesystem (the only one, for {!make} servers). *)

val cpu : t -> Nfsg_sim.Resource.t

val device : t -> Nfsg_disk.Device.t
(** First volume's device. *)

val write_layer : t -> Write_layer.t
(** First volume's write layer. *)

val socket : t -> Nfsg_net.Socket.t
val addr : t -> string

val write_verifier : t -> int
(** The NFSv3 write verifier of this server incarnation; {!recover}
    yields a different one, which is how v3 clients learn that
    uncommitted data may have been lost. *)

val op_count : t -> int -> int
(** Completed requests for an NFS procedure number. *)

val total_ops : t -> int

val metrics : t -> Nfsg_stats.Metrics.t
(** The registry this server's layers report into (per-procedure
    counters live under namespace ["server"] as [ops_<PROC>]). *)

val journeys : t -> Nfsg_stats.Journey.plane
(** The live operability plane: per-phase journey histograms
    (namespace ["journey"]), per-client station attribution
    (namespaces ["station.<client>"]) and the long-op record ring. *)

val crash : t -> unit
(** Power-fail the server: volatile state gone, in-flight requests
    lost. The device survives (platter + NVRAM). *)

val recover : t -> t
(** Reboot after {!crash}: per-volume device recovery (NVRAM replay)
    and fsck-style remount, fresh daemons, same network address (the
    crashed incarnation left the wire), one shared write-verifier bump.
    Volume generations are preserved, so handles minted before the
    crash stay valid; clients that keep retransmitting ride through
    the outage: their RPCs go unanswered while the server is down and
    are answered by the new incarnation. *)

val restart : t -> t
(** Alias for {!recover} — the crash/restart pair used by the fault
    rig. *)
