(** One export of a multi-volume server: a device (plain, NVRAM, or
    stripe) with its mounted filesystem, buffer cache, and its own
    write-gathering plane.

    The paper's testbed serves several disks — single spindles and a
    3-disk stripe set — from one machine. A [Volume.t] is that unit of
    service: gathering, procrastination, and metadata election happen
    per volume, so a flush on one export never blocks batch formation
    on another. The server routes each filehandle to its volume by
    [fsid] and rejects dead identities by [vgen] (see {!owns}). *)

type spec = {
  export : string;  (** name a client mounts, e.g. ["/export0"] *)
  device : Nfsg_disk.Device.t;
  cache_blocks : int option;  (** buffer-cache bound; [None] = plenty *)
  read_only : bool;  (** exported ro: mutating procs earn NFSERR_ROFS *)
  readahead : Nfsg_ufs.Buffer_cache.readahead option;
      (** sequential prefetch policy; [None] = read-ahead off *)
}

val spec :
  ?cache_blocks:int ->
  ?read_only:bool ->
  ?readahead:Nfsg_ufs.Buffer_cache.readahead ->
  string ->
  Nfsg_disk.Device.t ->
  spec

type t

val mount :
  Nfsg_sim.Engine.t ->
  fsid:int ->
  ?vgen:int ->
  ?legacy_ns:bool ->
  sock:Nfsg_net.Socket.t ->
  cpu:Nfsg_sim.Resource.t ->
  costs:Cpu_model.t ->
  send_reply:(Nfsg_rpc.Svc.transport -> Nfsg_nfs.Proto.res -> unit) ->
  ?trace:Nfsg_stats.Trace.t ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?mkfs:bool ->
  wl_config:Write_layer.config ->
  spec ->
  t
(** Formats (unless [mkfs:false]) and mounts the device, and builds
    the volume's write layer on the shared server socket/CPU.

    [vgen] is the volume generation: omitted, a fresh one is drawn
    from a process-global counter (a freshly formatted or replaced
    volume invalidates all old handles); the recovery path passes the
    previous incarnation's value so client handles survive a reboot.

    Metrics namespaces are [server.vol<fsid>] / [write_layer.vol<fsid>]
    / [read_plane.vol<fsid>] unless [legacy_ns] is set, in which case
    the single-volume server's historical ["server"] /
    ["write_layer"] / ["read_plane"] names are kept. *)

val export : t -> string
val fsid : t -> int

val vgen : t -> int
(** Volume generation carried in every filehandle this volume mints. *)

val device : t -> Nfsg_disk.Device.t
val fs : t -> Nfsg_ufs.Fs.t
val write_layer : t -> Write_layer.t

val server_ns : t -> string
(** Metrics namespace for this volume's per-procedure op counters. *)

val read_only : t -> bool
(** Is the export currently write-protected? *)

val set_read_only : t -> bool -> unit
(** Flip the export's write protection at runtime ("exportfs -o ro"):
    an experiment populates a volume read-write, then protects it
    before unleashing the fleet. *)

(** [spec_of] is the spec as it must be remounted at recovery —
    includes the current runtime read-only state. *)
val spec_of : t -> spec
val root_fh : t -> Nfsg_nfs.Proto.fh

val owns : t -> Nfsg_nfs.Proto.fh -> bool
(** Does this filehandle name this volume incarnation? False when the
    fsid differs {e or} the vgen is from before a reformat. *)

val crash : t -> unit
(** Drop volatile filesystem state and crash the device (power fail);
    the platter and any NVRAM contents survive for {!mount} with
    [mkfs:false] to recover. *)
