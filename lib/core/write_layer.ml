open Nfsg_sim
module Vfs = Nfsg_ufs.Vfs
module Fs = Nfsg_ufs.Fs
module Proto = Nfsg_nfs.Proto
module Svc = Nfsg_rpc.Svc
module Xdr = Nfsg_rpc.Xdr
module Trace = Nfsg_stats.Trace
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names
module Histogram = Nfsg_stats.Histogram
module Journey = Nfsg_stats.Journey

type mode = Standard | Gathering | Unsafe_async

type config = {
  mode : mode;
  procrastinate : Time.t;
  max_procrastinations : int;
  use_mbuf_hunter : bool;
  reply_order : [ `Fifo | `Lifo ];
  latency_device : [ `Procrastinate | `First_write ];
  learn_clients : bool;
}

let default_gathering =
  {
    mode = Gathering;
    procrastinate = Time.of_ms_f 8.0;
    max_procrastinations = 1;
    use_mbuf_hunter = true;
    reply_order = `Fifo;
    latency_device = `Procrastinate;
    learn_clients = false;
  }

let standard = { default_gathering with mode = Standard }
let unsafe_async = { default_gathering with mode = Unsafe_async }

type descriptor = {
  tr : Svc.transport;
  seq : int;
  client : string;
  arrived : Time.t;  (** queue time, for the deferred-reply latency split *)
  respond : Proto.fattr -> Proto.res;  (** v2 and v3 writes share batches *)
  fail : Proto.status -> Proto.res;
      (** error-reply formatter, so a failed flush answers v2 and v3
          descriptors each in their own shape *)
}

(* Per-file gather state: the paper's "global array of nfsd state"
   plus the active write queue, folded into one record per vnode. *)
type gstate = {
  vnode : Vfs.vnode;
  mutable active : int;  (** nfsds currently inside handle_write for this file *)
  mutable queue : descriptor list;  (** newest first; all unreplied descriptors *)
  mutable lo : int;  (** dirty byte range for VOP_SYNCDATA hints *)
  mutable hi : int;
}

(* Mogul's learned-client database: an exponentially-weighted success
   score per client address. Writes that end up in a batch with company
   score 1; writes flushed alone score 0. Clients that settle near 0
   are single-threaded and skip the procrastination penalty. *)
type learned = { mutable score : float; mutable samples : int }

type t = {
  eng : Engine.t;
  fs : Fs.t;
  sock : Nfsg_net.Socket.t;
  cpu : Resource.t;
  costs : Cpu_model.t;
  send_reply : Svc.transport -> Proto.res -> unit;
  trace : Trace.t option;
  cfg : config;
  fsid : int;  (** volume id stamped into reply attributes *)
  states : (int, gstate) Hashtbl.t;
  clients : (string, learned) Hashtbl.t;
  mutable seq : int;
  (* Registry-backed counters (namespace "write_layer", or
     "write_layer.vol<fsid>" for a multi-volume plane): the same
     [int ref]s serve the accessor API below and the metrics report. *)
  writes : Metrics.counter;
  batches : Metrics.counter;
  gathered : Metrics.counter;
  procrastinations : Metrics.counter;
  procrastinate_failures : Metrics.counter;
  mbuf_hits : Metrics.counter;
  rescues : Metrics.counter;
  flush_failures : Metrics.counter;
  meta_flushes_saved : Metrics.counter;
  batch_size_h : Histogram.t;
  reply_latency_us : Histogram.t;
}

let create eng ~fs ~sock ~cpu ~costs ~send_reply ?trace ?metrics
    ?(ns = Names.Ns.write_layer) ?(fsid = 1) cfg =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    eng;
    fs;
    sock;
    cpu;
    costs;
    send_reply;
    trace;
    cfg;
    fsid;
    states = Hashtbl.create 64;
    clients = Hashtbl.create 16;
    seq = 0;
    writes = Metrics.counter m ~ns Names.writes;
    batches = Metrics.counter m ~ns Names.batches;
    gathered = Metrics.counter m ~ns Names.gathered_replies;
    procrastinations = Metrics.counter m ~ns Names.procrastinations;
    procrastinate_failures = Metrics.counter m ~ns Names.procrastinate_failures;
    mbuf_hits = Metrics.counter m ~ns Names.mbuf_hits;
    rescues = Metrics.counter m ~ns Names.rescues;
    flush_failures = Metrics.counter m ~ns Names.flush_failures;
    meta_flushes_saved = Metrics.counter m ~ns Names.metadata_flushes_saved;
    batch_size_h = Metrics.histogram m ~ns ~least:1.0 ~growth:1.5 Names.batch_size;
    reply_latency_us = Metrics.histogram m ~ns Names.reply_latency_us;
  }

let writes_handled t = Metrics.value t.writes
let batches t = Metrics.value t.batches
let gathered_replies t = Metrics.value t.gathered
let procrastinations t = Metrics.value t.procrastinations
let procrastinate_failures t = Metrics.value t.procrastinate_failures
let mbuf_hits t = Metrics.value t.mbuf_hits
let rescues t = Metrics.value t.rescues
let flush_failures t = Metrics.value t.flush_failures

let mean_batch_size t =
  if Metrics.value t.batches = 0 then 0.0
  else float_of_int (Metrics.value t.gathered) /. float_of_int (Metrics.value t.batches)

(* {1 Learned clients (Future Work: Mogul's scheme)} *)

let learned_of t client =
  match Hashtbl.find_opt t.clients client with
  | Some l -> l
  | None ->
      let l = { score = 1.0; samples = 0 } in
      Hashtbl.replace t.clients client l;
      l

let learn t client ~gathered =
  let l = learned_of t client in
  l.score <- (0.85 *. l.score) +. (0.15 *. if gathered then 1.0 else 0.0);
  l.samples <- l.samples + 1

(* A client is "known solo" once we have evidence and its score says
   its writes essentially never find company. *)
let known_solo t client =
  t.cfg.learn_clients
  &&
  let l = learned_of t client in
  l.samples >= 8 && l.score < 0.25

let learned_solo_clients t =
  (* nfslint: allow D002 pure count; integer addition is commutative so the fold order cannot show *)
  Hashtbl.fold (fun _ l n -> if l.samples >= 8 && l.score < 0.25 then n + 1 else n) t.clients 0

let emit t event = match t.trace with Some tr -> Trace.emit tr ~actor:(Engine.self_name ()) event | None -> ()

let fattr_of_vnode t v =
  let a = Vfs.vop_getattr v in
  let bsize = 8192 in
  {
    Proto.ftype =
      (match a.Fs.ftype with
      | Nfsg_ufs.Layout.Regular -> Proto.NFREG
      | Nfsg_ufs.Layout.Directory -> Proto.NFDIR
      | Nfsg_ufs.Layout.Symlink -> Proto.NFLNK
      | Nfsg_ufs.Layout.Free -> Proto.NFNON);
    mode = 0o644;
    nlink = a.Fs.nlink;
    uid = 0;
    gid = 0;
    size = a.Fs.size;
    blocksize = bsize;
    rdev = 0;
    blocks = (a.Fs.size + bsize - 1) / bsize;
    fsid = t.fsid;
    fileid = a.Fs.inum;
    atime = Proto.timeval_of_ns a.Fs.atime;
    mtime = Proto.timeval_of_ns a.Fs.mtime;
    ctime = Proto.timeval_of_ns a.Fs.ctime;
  }

let gstate_of t vnode =
  let id = Vfs.vnode_id vnode in
  match Hashtbl.find_opt t.states id with
  | Some g -> g
  | None ->
      let g = { vnode; active = 0; queue = []; lo = max_int; hi = 0 } in
      Hashtbl.replace t.states id g;
      g

let charge_trip t = Resource.use t.cpu t.costs.Cpu_model.ufs_trip

(* Journey stamps for the operability plane; no-ops when the service
   runs without one. *)
let jstamp t tr stamp =
  match Svc.journey_of tr with Some j -> stamp j ~now:(Engine.now t.eng) | None -> ()

(* The mbuf hunter (section 6.5): grep the socket buffer for another
   WRITE to the same file. "A gross violation of kernel layering, but
   with a fast server this technique is often a win." The fsid must
   match too: with several exports on one socket, inode numbers repeat
   across volumes and a foreign WRITE is no company at all. *)
let socket_has_write_for t inum =
  let hit =
    Nfsg_net.Socket.scan t.sock (fun ~src:_ payload ->
        match Proto.peek_write payload with
        | Some (fh, _, _) -> fh.Proto.fsid = t.fsid && fh.Proto.inum = inum
        | None -> false)
  in
  if hit then Metrics.incr t.mbuf_hits;
  hit

let reply_ok t d attr =
  Histogram.add t.reply_latency_us (Time.to_us_f (Engine.now t.eng - d.arrived));
  Resource.use t.cpu t.costs.Cpu_model.rpc_encode;
  t.send_reply d.tr (d.respond attr)

let reply_err t d status =
  Resource.use t.cpu t.costs.Cpu_model.rpc_encode;
  t.send_reply d.tr (d.fail status)

(* Flush the gathered batch: data (if delayed), one metadata update,
   then every pending reply — FIFO, all with the same mtime. A disk
   error during the flush fails {e every} descriptor in the batch with
   NFSERR_IO (still FIFO): no reply was allowed out before the covering
   metadata update, so no reply may claim success after it failed. The
   nfsd survives; clients see the errors and retry. *)
let flush_as_metadata_writer t g =
  let rec rounds () =
    let batch = List.sort (fun (a : descriptor) b -> compare a.seq b.seq) g.queue in
    g.queue <- [];
    let lo = g.lo and hi = g.hi in
    g.lo <- max_int;
    g.hi <- 0;
    Vfs.lock g.vnode;
    let accel, ordered, n =
      try
        let accel = Vfs.accelerated g.vnode in
        let ordered = match t.cfg.reply_order with `Fifo -> batch | `Lifo -> List.rev batch in
        let n = List.length ordered in
        (* Every descriptor in the batch rides this covering flush: its
           gather wait ends here, its disk phase starts here. A failed
           round re-stamps on the retry (last-write-wins) — the pair the
           reply actually waited on. *)
        List.iter (fun (d : descriptor) -> jstamp t d.tr Journey.stamp_disk_submit) ordered;
        (accel, ordered, n)
      with exn ->
        Vfs.unlock g.vnode;
        raise exn
    in
    (match
       let await =
         try
           if (not accel) && lo < hi then begin
             (* Data clusters and the covering metadata go down as ONE
                device submission (Fs.commit_range): the scheduler
                overlaps and merges the clusters, and barriers keep the
                inode from becoming stable ahead of its data. One trip
                into UFS instead of the syncdata-then-fsync convoy. *)
             charge_trip t;
             emit t (Printf.sprintf "%dK data to disk (clustered)" ((hi - lo) / 1024));
             emit t "Metadata to disk";
             (* nfsrace: allow Y001 the inode encode reads its blocks through the cache and must run under the vnode lock; only the post-submit wait is moved outside *)
             Vfs.vop_commit_begin g.vnode ~off:lo ~len:(hi - lo)
           end
           else begin
             charge_trip t;
             emit t "Metadata to disk";
             (* nfsrace: allow Y001 the inode encode reads its blocks through the cache and must run under the vnode lock; only the post-submit wait is moved outside *)
             Vfs.vop_commit_begin g.vnode ~off:0 ~len:0
           end
         with exn ->
           Vfs.unlock g.vnode;
           raise exn
       in
       (* The submission is down and the snapshots are private copies:
          drop the vnode lock before parking on the device. A WRITE
          arriving mid-flush now enters the cache and the gather queue
          in microseconds on its own nfsd instead of convoying the
          whole nfsd pool behind this device round-trip — only the
          metadata writer blocks, as section 6.8 intends. *)
       Vfs.unlock g.vnode;
       await ()
     with
    | () ->
        List.iter (fun (d : descriptor) -> jstamp t d.tr Journey.stamp_disk_complete) ordered;
        let attr = fattr_of_vnode t g.vnode in
        if n > 0 then emit t (Printf.sprintf "%d Write Repl%s" n (if n = 1 then "y" else "ies"));
        List.iter (fun d -> reply_ok t d attr) ordered;
        if t.cfg.learn_clients then
          List.iter (fun (d : descriptor) -> learn t d.client ~gathered:(n > 1)) ordered;
        Metrics.incr t.batches;
        Metrics.add t.gathered n;
        if n > 0 then Histogram.add t.batch_size_h (float_of_int n);
        (* n writes acknowledged under one covering metadata update:
           n-1 inode flushes a standard server would have issued. *)
        if n > 1 then Metrics.add t.meta_flushes_saved (n - 1)
    | exception Nfsg_disk.Device.Io_error _ ->
        (* The blocks stayed dirty in the cache (UFS restores the dirty
           flags on a failed sync); widen the range back so the next
           round's syncdata covers them again. *)
        g.lo <- Stdlib.min g.lo lo;
        g.hi <- Stdlib.max g.hi hi;
        Metrics.incr t.flush_failures;
        emit t
          (Printf.sprintf "Flush failed: %d NFSERR_IO Repl%s" n (if n = 1 then "y" else "ies"));
        List.iter (fun d -> reply_err t d Proto.NFSERR_IO) ordered);
    (* Writes that arrived while we were flushing: if no OTHER nfsd is
       active to pick them up (we ourselves still count in g.active
       when called from handle_gathering), we stay metadata writer for
       another round — otherwise their descriptors would be orphaned,
       the failure mode of section 6.9. The new batch gets the same
       gathering opportunity a fresh nfsd would give it. *)
    if g.queue <> [] && g.active <= 1 then begin
      if t.cfg.latency_device = `Procrastinate && t.cfg.procrastinate > 0 then begin
        Metrics.incr t.procrastinations;
        Engine.delay t.cfg.procrastinate
      end;
      if g.queue <> [] && g.active <= 1 then rounds ()
    end
  in
  rounds ()

let maybe_gc t g =
  if g.active = 0 && g.queue = [] then Hashtbl.remove t.states (Vfs.vnode_id g.vnode)

let v2_respond a = Proto.RAttr (Ok a)
let v2_fail st = Proto.RAttr (Error st)

let reply_fail t tr fail status =
  Resource.use t.cpu t.costs.Cpu_model.rpc_encode;
  t.send_reply tr (fail status)

(* Standard (reference port) path: everything synchronous under the
   vnode lock, reply sent by the same nfsd that did the work. *)
let handle_standard t tr ~respond ~fail vnode ~off ~data =
  (match
     Vfs.with_lock vnode (fun () ->
         (* Synchronous path: the write goes straight to disk, so queued
            and disk-submit are the same instant. *)
         jstamp t tr Journey.stamp_queued;
         jstamp t tr Journey.stamp_disk_submit;
         charge_trip t;
         emit t (Printf.sprintf "%dK data to disk" (Xdr.view_length data / 1024));
         (* nfsrace: allow Y001 the paper's synchronous path: the reference port holds the vnode lock across its disk write by design *)
         Vfs.vop_write vnode ~off data ~flags:[ Vfs.IO_SYNC ];
         if Fs.meta_dirty (Vfs.inode_of vnode) = `Clean then emit t "Metadata to disk")
   with
  | () ->
      jstamp t tr Journey.stamp_disk_complete;
      Metrics.incr t.batches;
      Metrics.incr t.gathered;
      Histogram.add t.batch_size_h 1.0;
      let attr = fattr_of_vnode t vnode in
      Resource.use t.cpu t.costs.Cpu_model.rpc_encode;
      emit t "Write Reply";
      t.send_reply tr (respond attr)
  | exception Fs.No_space -> reply_fail t tr fail Proto.NFSERR_NOSPC
  | exception Nfsg_disk.Device.Io_error _ ->
      emit t "Write failed: NFSERR_IO";
      reply_fail t tr fail Proto.NFSERR_IO);
  Svc.Reply_pending

(* Gathering path, one nfsd D (paper section 6.8). *)
let handle_gathering t tr ~respond ~fail vnode ~off ~data =
  emit t (Printf.sprintf "%dK Write recv (off=%dK)" (Xdr.view_length data / 1024) (off / 1024));
  let g = gstate_of t vnode in
  g.active <- g.active + 1;
  let accel = Vfs.accelerated vnode in
  (* Hand off data to UFS via VOP_WRITE. *)
  (match
     Vfs.with_lock vnode (fun () ->
         charge_trip t;
         if accel then begin
           emit t (Printf.sprintf "%dK data to Presto" (Xdr.view_length data / 1024));
           (* nfsrace: allow Y001 the Presto front absorbs the write at memory speed; the vnode lock only orders the cache fill *)
           Vfs.vop_write vnode ~off data ~flags:[ Vfs.IO_SYNC; Vfs.IO_DATAONLY ]
         end
         else
           (* nfsrace: allow Y001 delayed write: a cache-miss fill may park, and the fill must happen under the vnode lock *)
           Vfs.vop_write vnode ~off data ~flags:[ Vfs.IO_DELAYDATA ])
   with
  | () ->
      (* Only now — with the data handed to UFS — may our reply be
         queued where a metadata writer can pick it up. Queueing any
         earlier would let a concurrent flusher acknowledge data that
         is not in the cache yet. *)
      t.seq <- t.seq + 1;
      let d =
        { tr; seq = t.seq; client = Svc.client_of tr; arrived = Engine.now t.eng; respond; fail }
      in
      g.queue <- d :: g.queue;
      jstamp t tr Journey.stamp_queued;
      g.lo <- Stdlib.min g.lo off;
      g.hi <- Stdlib.max g.hi (off + Xdr.view_length data);
      (* SIVA93 variant: use the first write's disk time as the latency
         device instead of sleeping. *)
      if t.cfg.latency_device = `First_write && not accel then
        Vfs.with_lock vnode (fun () ->
            charge_trip t;
            (* An error here costs only the latency trick: the data stays
               dirty and the metadata writer's flush retries it. *)
            (* nfsrace: allow Y001 SIVA93 latency device: the first write's disk round trip IS the modelled latency, held under the vnode lock like the real first write *)
            try Vfs.vop_syncdata vnode ~off ~len:(Xdr.view_length data)
            with Nfsg_disk.Device.Io_error _ -> ());
      let inum = Vfs.vnode_id vnode in
      (* In the paper, every write of an arriving train procrastinates
         in turn, so the chain of nfsds extends the gathering window
         for as long as the train keeps coming. Our nfsds handle
         delayed writes instantly and vanish before the sleeper wakes,
         so we model the chain directly: a procrastination during
         which the queue grew earns another procrastination, up to a
         chain cap. A quiet interval ends the chain. *)
      let max_chain = 16 in
      (* A client learned to be single-threaded gets no procrastination:
         the free checks (active nfsds, socket scan) still apply, so a
         reformed client earns its way back via the score. *)
      let initial_budget =
        if known_solo t (Svc.client_of tr) then 0 else t.cfg.max_procrastinations
      in
      let rec decide ~budget ~chain ~slept =
        if g.active > 1 then
          (* Another nfsd is in the write path for this file: leave the
             metadata update (and our reply) to it. *)
          ()
        else if t.cfg.use_mbuf_hunter && socket_has_write_for t inum then
          (* A WRITE for this file is sitting in the socket buffer; the
             nfsd that picks it up will take over. *)
          ()
        else if
          budget > 0 && chain < max_chain
          && t.cfg.latency_device = `Procrastinate
          && t.cfg.procrastinate > 0
        then begin
          Metrics.incr t.procrastinations;
          emit t "Gather Writes (procrastinate)";
          let qlen = List.length g.queue in
          Engine.delay t.cfg.procrastinate;
          let grew = List.length g.queue > qlen in
          decide
            ~budget:(if grew then t.cfg.max_procrastinations else budget - 1)
            ~chain:(chain + 1) ~slept:true
        end
        else begin
          (* Become the metadata writer and assume responsibility. *)
          if slept && List.length g.queue <= 1 then
            Metrics.incr t.procrastinate_failures;
          flush_as_metadata_writer t g
        end
      in
      decide ~budget:initial_budget ~chain:0 ~slept:false;
      g.active <- g.active - 1;
      maybe_gc t g
  | exception Fs.No_space ->
      (* This request fails alone; its descriptor was never queued. *)
      g.active <- g.active - 1;
      reply_fail t tr fail Proto.NFSERR_NOSPC;
      (* If gatherers were counting on us, flush what they queued. *)
      if g.active = 0 && g.queue <> [] then flush_as_metadata_writer t g;
      maybe_gc t g
  | exception Nfsg_disk.Device.Io_error _ ->
      (* Same shape as No_space: this write never made it into the
         cache, so only this request fails; queued company is safe. *)
      g.active <- g.active - 1;
      emit t "Write failed: NFSERR_IO";
      reply_fail t tr fail Proto.NFSERR_IO;
      if g.active = 0 && g.queue <> [] then flush_as_metadata_writer t g;
      maybe_gc t g);
  Svc.Reply_pending

(* "Dangerous mode": acknowledge from volatile memory. The asynchronous
   promise is one the server cannot recall after a crash (section 4.3);
   kept here so the benchmark can show what the shortcut buys and the
   crash tests can show what it costs. *)
let handle_unsafe_async t tr ~respond ~fail vnode ~off ~data =
  (match
     Vfs.with_lock vnode (fun () ->
         charge_trip t;
         (* nfsrace: allow Y001 delayed write: a cache-miss fill may park, and the fill must happen under the vnode lock *)
         Vfs.vop_write vnode ~off data ~flags:[ Vfs.IO_DELAYDATA ])
   with
  | () ->
      (* Volatile acknowledgement: queued into the cache is as far as
         this op's journey ever gets. *)
      jstamp t tr Journey.stamp_queued;
      Metrics.incr t.batches;
      Metrics.incr t.gathered;
      Histogram.add t.batch_size_h 1.0;
      let attr = fattr_of_vnode t vnode in
      Resource.use t.cpu t.costs.Cpu_model.rpc_encode;
      emit t "Write Reply (volatile!)";
      t.send_reply tr (respond attr)
  | exception Fs.No_space -> reply_fail t tr fail Proto.NFSERR_NOSPC
  | exception Nfsg_disk.Device.Io_error _ -> reply_fail t tr fail Proto.NFSERR_IO);
  Svc.Reply_pending

let handle_write t tr ?(respond = v2_respond) ?(fail = v2_fail) vnode ~off ~data =
  Metrics.incr t.writes;
  match t.cfg.mode with
  | Standard -> handle_standard t tr ~respond ~fail vnode ~off ~data
  | Gathering -> handle_gathering t tr ~respond ~fail vnode ~off ~data
  | Unsafe_async -> handle_unsafe_async t tr ~respond ~fail vnode ~off ~data

(* Section 6.9: a duplicate WRITE was dropped from the socket buffer.
   If a gatherer had counted on that datagram (mbuf hunter) and nobody
   is active, the queue would be orphaned — flush it now. *)
let rescue t ~inum =
  match Hashtbl.find_opt t.states inum with
  | Some g when g.active = 0 && g.queue <> [] ->
      Metrics.incr t.rescues;
      flush_as_metadata_writer t g;
      maybe_gc t g
  | Some _ | None -> ()
