open Nfsg_sim
module Fs = Nfsg_ufs.Fs
module Vfs = Nfsg_ufs.Vfs
module Layout = Nfsg_ufs.Layout
module Proto = Nfsg_nfs.Proto
module Rpc = Nfsg_rpc.Rpc
module Svc = Nfsg_rpc.Svc
module Dupcache = Nfsg_rpc.Dupcache

type config = {
  nfsds : int;
  write_layer : Write_layer.config;
  costs : Cpu_model.t;
  dupcache : bool;
  rcvbuf : int;
  cache_blocks : int option;
}

let default_config =
  {
    nfsds = 8;
    write_layer = Write_layer.default_gathering;
    costs = Cpu_model.default;
    dupcache = true;
    rcvbuf = 256 * 1024;
    cache_blocks = None;
  }

(* Write verifier (NFSv3): changes across server incarnations so a
   client holding unstable data can detect that a reboot may have lost
   it and must rewrite. A plain boot counter keeps runs deterministic. *)
let boot_counter = ref 0

type t = {
  eng : Engine.t;
  segment : Nfsg_net.Segment.t;
  config : config;
  addr : string;
  device : Nfsg_disk.Device.t;
  fs : Fs.t;
  sock : Nfsg_net.Socket.t;
  cpu : Resource.t;
  wl : Write_layer.t;
  verf : int;
  op_counts : (int, int) Hashtbl.t;
  trace : Nfsg_stats.Trace.t option;
  metrics : Nfsg_stats.Metrics.t;
}

let root_fh t =
  let root = Fs.root t.fs in
  { Proto.inum = Fs.inum root; gen = Fs.generation root }

let fs t = t.fs
let cpu t = t.cpu
let device t = t.device
let write_layer t = t.wl
let socket t = t.sock
let addr t = t.addr
let write_verifier t = t.verf
let op_count t proc = Option.value ~default:0 (Hashtbl.find_opt t.op_counts proc)
let total_ops t = Hashtbl.fold (fun _ n acc -> acc + n) t.op_counts 0
let metrics t = t.metrics

let count_op t proc =
  Hashtbl.replace t.op_counts proc (1 + op_count t proc);
  Nfsg_stats.Metrics.incr
    (Nfsg_stats.Metrics.counter t.metrics ~ns:"server" ("ops_" ^ Proto.proc_name proc))

(* {1 Dispatch} *)

let vnode_of_fh t (fh : Proto.fh) = Vfs.vnode_of_inode t.fs (Fs.iget t.fs ~inum:fh.Proto.inum ~gen:fh.Proto.gen)

let fh_of_vnode v = { Proto.inum = Vfs.vnode_id v; gen = Fs.generation (Vfs.inode_of v) }

let fattr_of_vnode t v =
  let a = Vfs.vop_getattr v in
  let bsize = Fs.bsize t.fs in
  {
    Proto.ftype =
      (match a.Fs.ftype with
      | Layout.Regular -> Proto.NFREG
      | Layout.Directory -> Proto.NFDIR
      | Layout.Symlink -> Proto.NFLNK
      | Layout.Free -> Proto.NFNON);
    mode = 0o644;
    nlink = a.Fs.nlink;
    uid = 0;
    gid = 0;
    size = a.Fs.size;
    blocksize = bsize;
    rdev = 0;
    blocks = (a.Fs.size + bsize - 1) / bsize;
    fsid = 1;
    fileid = a.Fs.inum;
    atime = Proto.timeval_of_ns a.Fs.atime;
    mtime = Proto.timeval_of_ns a.Fs.mtime;
    ctime = Proto.timeval_of_ns a.Fs.ctime;
  }

(* Map filesystem exceptions onto NFS statuses. *)
let status_of_exn = function
  | Fs.Stale _ -> Some Proto.NFSERR_STALE
  | Not_found -> Some Proto.NFSERR_NOENT
  | Fs.Exists _ -> Some Proto.NFSERR_EXIST
  | Fs.Not_dir _ -> Some Proto.NFSERR_NOTDIR
  | Fs.Is_dir _ -> Some Proto.NFSERR_ISDIR
  | Fs.Not_empty _ -> Some Proto.NFSERR_NOTEMPTY
  | Fs.Not_symlink _ -> Some Proto.NFSERR_IO
  | Nfsg_disk.Device.Io_error _ -> Some Proto.NFSERR_IO
  | Fs.No_space -> Some Proto.NFSERR_NOSPC
  | _ -> None

let execute t (args : Proto.args) : Proto.res =
  let attr_res v = Proto.RAttr (Ok (fattr_of_vnode t v)) in
  let dirop_res v = Proto.RDirop (Ok (fh_of_vnode v, fattr_of_vnode t v)) in
  match args with
  | Proto.Null -> Proto.RNull
  | Proto.Getattr fh -> attr_res (vnode_of_fh t fh)
  | Proto.Setattr (fh, sattr) ->
      let v = vnode_of_fh t fh in
      Vfs.with_lock v (fun () ->
          if sattr.Proto.s_size >= 0 then begin
            Vfs.vop_truncate v sattr.Proto.s_size;
            (* Truncation changes visible state: commit before reply. *)
            Nfsg_ufs.Fs.fsync_metadata t.fs (Vfs.inode_of v)
          end;
          match sattr.Proto.s_mtime with
          | Some tv -> Vfs.vop_touch v ~mtime:(Proto.ns_of_timeval tv)
          | None -> ());
      attr_res v
  | Proto.Lookup (fh, name) ->
      let dir = vnode_of_fh t fh in
      dirop_res (Vfs.vop_lookup dir name)
  | Proto.Read { fh; offset; count } ->
      let v = vnode_of_fh t fh in
      let data = Vfs.vop_read v ~off:offset ~len:count in
      Proto.RRead (Ok (fattr_of_vnode t v, data))
  | Proto.Write _ | Proto.Write3 _ | Proto.Commit _ ->
      assert false (* handled by the write layer / dispatch *)
  | Proto.Create { dir; name; sattr = _ } ->
      let d = vnode_of_fh t dir in
      dirop_res (Vfs.with_lock d (fun () -> Vfs.vop_create d name Layout.Regular))
  | Proto.Remove { dir; name } ->
      let d = vnode_of_fh t dir in
      Vfs.with_lock d (fun () -> Vfs.vop_remove d name);
      Proto.RStatus Proto.NFS_OK
  | Proto.Rename { from_dir; from_name; to_dir; to_name } ->
      let src = vnode_of_fh t from_dir in
      let dst = vnode_of_fh t to_dir in
      Vfs.with_lock src (fun () -> Vfs.vop_rename src ~src:from_name ~dst_dir:dst ~dst:to_name);
      Proto.RStatus Proto.NFS_OK
  | Proto.Mkdir { dir; name; sattr = _ } ->
      let d = vnode_of_fh t dir in
      dirop_res (Vfs.with_lock d (fun () -> Vfs.vop_mkdir d name))
  | Proto.Rmdir { dir; name } ->
      let d = vnode_of_fh t dir in
      Vfs.with_lock d (fun () -> Vfs.vop_rmdir d name);
      Proto.RStatus Proto.NFS_OK
  | Proto.Readlink fh ->
      let v = vnode_of_fh t fh in
      Proto.RReadlink (Ok (Vfs.vop_readlink v))
  | Proto.Symlink { dir; name; target; sattr = _ } ->
      let d = vnode_of_fh t dir in
      dirop_res (Vfs.with_lock d (fun () -> Vfs.vop_symlink d name ~target))
  | Proto.Readdir { fh; cookie = _; count = _ } ->
      let d = vnode_of_fh t fh in
      Proto.RReaddir (Ok (Vfs.vop_readdir d, true))
  | Proto.Statfs _ ->
      let s = Fs.statfs t.fs in
      Proto.RStatfs
        (Ok
           {
             Proto.tsize = 8192;
             bsize = s.Fs.bsize;
             blocks = s.Fs.total_blocks;
             bfree = s.Fs.free_blocks;
             bavail = s.Fs.free_blocks;
           })

(* Error result with the shape the procedure's decoder expects. *)
let error_res ~proc st : Proto.res =
  if proc = Proto.proc_getattr || proc = Proto.proc_setattr || proc = Proto.proc_write then
    Proto.RAttr (Error st)
  else if proc = Proto.proc_lookup || proc = Proto.proc_create || proc = Proto.proc_mkdir
          || proc = Proto.proc_symlink then Proto.RDirop (Error st)
  else if proc = Proto.proc_read then Proto.RRead (Error st)
  else if proc = Proto.proc_readlink then Proto.RReadlink (Error st)
  else if proc = Proto.proc_write3 then Proto.RWrite3 (Error st)
  else if proc = Proto.proc_commit then Proto.RCommit (Error st)
  else if proc = Proto.proc_readdir then Proto.RReaddir (Error st)
  else if proc = Proto.proc_statfs then Proto.RStatfs (Error st)
  else Proto.RStatus st

let make_dispatch t =
  fun tr (call : Rpc.call) ->
    ignore tr;
    if call.Rpc.prog <> Rpc.nfs_program then Svc.Reply (Rpc.Prog_unavail, Bytes.create 0)
    else begin
      Resource.use t.cpu (t.config.costs.Cpu_model.rpc_decode + t.config.costs.Cpu_model.op_base);
      match Proto.decode_args ~proc:call.Rpc.proc call.Rpc.body with
      | exception Nfsg_rpc.Xdr.Dec.Error _ -> Svc.Reply (Rpc.Garbage_args, Bytes.create 0)
      | Proto.Write { fh; offset; data } -> (
          count_op t Proto.proc_write;
          match vnode_of_fh t fh with
          | v -> Write_layer.handle_write t.wl tr v ~off:offset ~data
          | exception Fs.Stale _ ->
              Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
              Svc.Reply (Rpc.Success, Proto.encode_res (Proto.RAttr (Error Proto.NFSERR_STALE))))
      | Proto.Write3 { fh; offset; stable; data } -> (
          count_op t Proto.proc_write3;
          match vnode_of_fh t fh with
          | exception Fs.Stale _ ->
              Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
              Svc.Reply (Rpc.Success, Proto.encode_res (Proto.RWrite3 (Error Proto.NFSERR_STALE)))
          | v -> (
              match stable with
              | Proto.Unstable -> (
                  (* The v3 asynchronous promise: data to the cache,
                     reply immediately; durability comes at COMMIT. *)
                  Vfs.lock v;
                  match
                    ( Resource.use t.cpu t.config.costs.Cpu_model.ufs_trip;
                      Vfs.vop_write v ~off:offset data ~flags:[ Vfs.IO_DELAYDATA ] )
                  with
                  | () ->
                      Vfs.unlock v;
                      Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                      Svc.Reply
                        ( Rpc.Success,
                          Proto.encode_res
                            (Proto.RWrite3 (Ok (fattr_of_vnode t v, Proto.Unstable, t.verf))) )
                  | exception Fs.No_space ->
                      Vfs.unlock v;
                      Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                      Svc.Reply
                        (Rpc.Success, Proto.encode_res (Proto.RWrite3 (Error Proto.NFSERR_NOSPC)))
                  | exception Nfsg_disk.Device.Io_error _ ->
                      Vfs.unlock v;
                      Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                      Svc.Reply
                        (Rpc.Success, Proto.encode_res (Proto.RWrite3 (Error Proto.NFSERR_IO))))
              | Proto.Data_sync | Proto.File_sync ->
                  (* v2 semantics through the write layer: these writes
                     gather in the same batches as v2 WRITEs. *)
                  let respond a = Proto.RWrite3 (Ok (a, Proto.File_sync, t.verf)) in
                  let fail st = Proto.RWrite3 (Error st) in
                  Write_layer.handle_write t.wl tr ~respond ~fail v ~off:offset ~data))
      | Proto.Commit { fh; offset; count } -> (
          count_op t Proto.proc_commit;
          match vnode_of_fh t fh with
          | exception Fs.Stale _ ->
              Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
              Svc.Reply (Rpc.Success, Proto.encode_res (Proto.RCommit (Error Proto.NFSERR_STALE)))
          | v -> (
              match
                Vfs.with_lock v (fun () ->
                    Resource.use t.cpu t.config.costs.Cpu_model.ufs_trip;
                    let len =
                      if count = 0 then (Vfs.vop_getattr v).Fs.size - offset else count
                    in
                    if len > 0 then Vfs.vop_syncdata v ~off:offset ~len;
                    Resource.use t.cpu t.config.costs.Cpu_model.ufs_trip;
                    Vfs.vop_fsync v ~flags:[ Vfs.FWRITE; Vfs.FWRITE_METADATA ])
              with
              | () ->
                  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                  Svc.Reply
                    ( Rpc.Success,
                      Proto.encode_res (Proto.RCommit (Ok (fattr_of_vnode t v, t.verf))) )
              | exception Nfsg_disk.Device.Io_error _ ->
                  (* The unstable data stays dirty in the cache; the
                     client keeps it and re-COMMITs. *)
                  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                  Svc.Reply
                    (Rpc.Success, Proto.encode_res (Proto.RCommit (Error Proto.NFSERR_IO)))))
      | args -> (
          count_op t call.Rpc.proc;
          match execute t args with
          | res ->
              Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
              Svc.Reply (Rpc.Success, Proto.encode_res res)
          | exception e -> (
              match status_of_exn e with
              | Some st ->
                  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                  Svc.Reply (Rpc.Success, Proto.encode_res (error_res ~proc:call.Rpc.proc st))
              | None -> raise e))
    end

let make eng ~segment ~addr ~device ?trace ?metrics ?(mkfs = true) config =
  let metrics = match metrics with Some m -> m | None -> Nfsg_stats.Metrics.create () in
  if mkfs then Fs.mkfs device ();
  let fs = Fs.mount eng ?cache_blocks:config.cache_blocks device in
  let cpu = Resource.create eng "server-cpu" in
  let costs = config.costs in
  let sock =
    Nfsg_net.Socket.create segment ~addr ~rcvbuf:config.rcvbuf
      ~on_rx_fragment:(fun ~bytes:_ -> Resource.charge cpu costs.Cpu_model.rx_fragment)
      ()
  in
  let svc_ref = ref None in
  let send_reply tr res =
    match !svc_ref with
    | Some svc -> Svc.send_reply svc tr Rpc.Success (Proto.encode_res res)
    | None -> assert false
  in
  let wl =
    Write_layer.create eng ~fs ~sock ~cpu ~costs ~send_reply ?trace ~metrics
      config.write_layer
  in
  incr boot_counter;
  let t =
    {
      eng;
      segment;
      config;
      addr;
      device;
      fs;
      sock;
      cpu;
      wl;
      verf = !boot_counter;
      op_counts = Hashtbl.create 16;
      trace;
      metrics;
    }
  in
  let dupcache = if config.dupcache then Some (Dupcache.create eng ~metrics ()) else None in
  let svc =
    Svc.create eng ~sock ?dupcache ~metrics
      ~on_duplicate_drop:(fun ~client:_ call ->
        if call.Rpc.prog = Rpc.nfs_program && call.Rpc.proc = Proto.proc_write then
          match Proto.decode_args ~proc:call.Rpc.proc call.Rpc.body with
          | Proto.Write { fh; _ } -> Write_layer.rescue wl ~inum:fh.Proto.inum
          | _ | (exception Nfsg_rpc.Xdr.Dec.Error _) -> ())
      ~nfsds:config.nfsds
      ~dispatch:(fun tr call -> make_dispatch t tr call)
      ()
  in
  svc_ref := Some svc;
  t

let crash t =
  (* Power off: volatile state gone and the host leaves the wire. *)
  Nfsg_net.Socket.detach t.sock;
  Fs.crash t.fs

let recover t =
  t.device.Nfsg_disk.Device.recover ();
  (* Same registry across incarnations: find-or-create registration
     means the restarted server keeps counting where this one stopped. *)
  make t.eng ~segment:t.segment ~addr:t.addr ~device:t.device ?trace:t.trace
    ~metrics:t.metrics ~mkfs:false t.config

let restart = recover
