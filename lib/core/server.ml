open Nfsg_sim
module Fs = Nfsg_ufs.Fs
module Vfs = Nfsg_ufs.Vfs
module Layout = Nfsg_ufs.Layout
module Proto = Nfsg_nfs.Proto
module Rpc = Nfsg_rpc.Rpc
module Svc = Nfsg_rpc.Svc
module Dupcache = Nfsg_rpc.Dupcache

type config = {
  nfsds : int;
  write_layer : Write_layer.config;
  costs : Cpu_model.t;
  dupcache : bool;
  rcvbuf : int;
  cache_blocks : int option;
  readahead : Nfsg_ufs.Buffer_cache.readahead option;
  long_op_threshold : Time.t option;
}

let default_config =
  {
    nfsds = 8;
    write_layer = Write_layer.default_gathering;
    costs = Cpu_model.default;
    dupcache = true;
    rcvbuf = 256 * 1024;
    cache_blocks = None;
    readahead = None;
    long_op_threshold = None;
  }

(* Write verifier (NFSv3): changes across server incarnations so a
   client holding unstable data can detect that a reboot may have lost
   it and must rewrite. One bump covers every volume of the
   incarnation — it identifies the server boot, not a disk. A plain
   boot counter keeps runs deterministic. *)
let boot_counter = ref 0
let () = Reset.register ~name:"server.boot_counter" (fun () -> boot_counter := 0)

type t = {
  eng : Engine.t;
  segment : Nfsg_net.Segment.t;
  config : config;
  addr : string;
  volumes : Volume.t list;  (** export table, fsid order *)
  legacy_ns : bool;
  sock : Nfsg_net.Socket.t;
  cpu : Resource.t;
  verf : int;
  op_counts : (int, int) Hashtbl.t;
  (* Read-ahead streams are per (client, file): the same boot file read
     concurrently by the whole fleet must not look like one thrashing
     stream. Client addresses map to small dense ids in arrival
     order — deterministic under the engine. *)
  stream_ids : (string, int) Hashtbl.t;
  trace : Nfsg_stats.Trace.t option;
  metrics : Nfsg_stats.Metrics.t;
  journeys : Nfsg_stats.Journey.plane;
}

let volumes t = t.volumes

let volume t fsid =
  match List.find_opt (fun v -> Volume.fsid v = fsid) t.volumes with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Server.volume: no volume with fsid %d" fsid)

let first_volume t = List.hd t.volumes
let exports t = List.map (fun v -> (Volume.export v, Volume.root_fh v)) t.volumes
let root_fh t = Volume.root_fh (first_volume t)
let fs t = Volume.fs (first_volume t)
let cpu t = t.cpu
let device t = Volume.device (first_volume t)
let write_layer t = Volume.write_layer (first_volume t)
let socket t = t.sock
let addr t = t.addr
let write_verifier t = t.verf
let op_count t proc = Option.value ~default:0 (Hashtbl.find_opt t.op_counts proc)
(* nfslint: allow D002 integer addition is commutative; the fold's result is order-independent *)
let total_ops t = Hashtbl.fold (fun _ n acc -> acc + n) t.op_counts 0
let metrics t = t.metrics
let journeys t = t.journeys

(* Stamp this transport's journey (if the svc attached one) at the
   engine's current instant. *)
let jstamp t tr stamp =
  match Svc.journey_of tr with Some j -> stamp j ~now:(Engine.now t.eng) | None -> ()

let count_op t proc =
  Hashtbl.replace t.op_counts proc (1 + op_count t proc);
  Nfsg_stats.Metrics.incr
    (Nfsg_stats.Metrics.counter t.metrics ~ns:Nfsg_stats.Names.Ns.server
       (Nfsg_stats.Names.ops (Proto.proc_name proc)))

(* Per-volume op accounting, once dispatch has routed the request. The
   legacy single-volume server's namespace IS "server", so only the
   vol<k> namespaces add a second counter. *)
let count_vol_op t vol proc =
  let ns = Volume.server_ns vol in
  if ns <> Nfsg_stats.Names.Ns.server then
    Nfsg_stats.Metrics.incr
      (Nfsg_stats.Metrics.counter t.metrics ~ns (Nfsg_stats.Names.ops (Proto.proc_name proc)))

let count_rofs_rejection t vol =
  let ns = Volume.server_ns vol in
  Nfsg_stats.Metrics.incr (Nfsg_stats.Metrics.counter t.metrics ~ns Nfsg_stats.Names.rofs_rejections)

(* Stream id for the read-ahead engine: client identity in the high
   bits, inode number in the low bits. *)
let stream_of t ~client ~inum =
  let cid =
    match Hashtbl.find_opt t.stream_ids client with
    | Some id -> id
    | None ->
        let id = Hashtbl.length t.stream_ids in
        Hashtbl.replace t.stream_ids client id;
        id
  in
  (cid lsl 24) lor (inum land 0xFFFFFF)

(* {1 Dispatch} *)

(* Routing: fsid picks the volume; a dead volume generation (volume
   reformatted or replaced since the handle was minted) or an unknown
   fsid is the same staleness a freed inode slot has — the handle
   names nothing this server still exports. *)
let volume_of_fh t (fh : Proto.fh) =
  match List.find_opt (fun v -> Volume.fsid v = fh.Proto.fsid) t.volumes with
  | Some v when Volume.vgen v = fh.Proto.vgen -> v
  | Some _ | None -> raise (Fs.Stale fh.Proto.inum)

let vnode_in vol (fh : Proto.fh) =
  let fs = Volume.fs vol in
  Vfs.vnode_of_inode fs (Fs.iget fs ~inum:fh.Proto.inum ~gen:fh.Proto.gen)


let fh_of_vnode vol v =
  {
    Proto.fsid = Volume.fsid vol;
    vgen = Volume.vgen vol;
    inum = Vfs.vnode_id v;
    gen = Fs.generation (Vfs.inode_of v);
  }

let fattr_of_vnode vol v =
  let a = Vfs.vop_getattr v in
  let bsize = Fs.bsize (Volume.fs vol) in
  {
    Proto.ftype =
      (match a.Fs.ftype with
      | Layout.Regular -> Proto.NFREG
      | Layout.Directory -> Proto.NFDIR
      | Layout.Symlink -> Proto.NFLNK
      | Layout.Free -> Proto.NFNON);
    mode = 0o644;
    nlink = a.Fs.nlink;
    uid = 0;
    gid = 0;
    size = a.Fs.size;
    blocksize = bsize;
    rdev = 0;
    blocks = (a.Fs.size + bsize - 1) / bsize;
    fsid = Volume.fsid vol;
    fileid = a.Fs.inum;
    atime = Proto.timeval_of_ns a.Fs.atime;
    mtime = Proto.timeval_of_ns a.Fs.mtime;
    ctime = Proto.timeval_of_ns a.Fs.ctime;
  }

(* Map filesystem exceptions onto NFS statuses. *)
let status_of_exn = function
  | Fs.Stale _ -> Some Proto.NFSERR_STALE
  | Not_found -> Some Proto.NFSERR_NOENT
  | Fs.Exists _ -> Some Proto.NFSERR_EXIST
  | Fs.Not_dir _ -> Some Proto.NFSERR_NOTDIR
  | Fs.Is_dir _ -> Some Proto.NFSERR_ISDIR
  | Fs.Not_empty _ -> Some Proto.NFSERR_NOTEMPTY
  | Fs.Not_symlink _ -> Some Proto.NFSERR_IO
  | Nfsg_disk.Device.Io_error _ -> Some Proto.NFSERR_IO
  | Fs.No_space -> Some Proto.NFSERR_NOSPC
  | _ -> None

(* The filehandle dispatch routes on; [None] only for NULL. *)
let primary_fh : Proto.args -> Proto.fh option = function
  | Proto.Null -> None
  | Proto.Getattr fh | Proto.Statfs fh | Proto.Readlink fh -> Some fh
  | Proto.Setattr (fh, _) | Proto.Lookup (fh, _) -> Some fh
  | Proto.Read { fh; _ }
  | Proto.Write { fh; _ }
  | Proto.Write3 { fh; _ }
  | Proto.Commit { fh; _ }
  | Proto.Readdir { fh; _ } -> Some fh
  | Proto.Create { dir; _ }
  | Proto.Remove { dir; _ }
  | Proto.Mkdir { dir; _ }
  | Proto.Rmdir { dir; _ }
  | Proto.Symlink { dir; _ } -> Some dir
  | Proto.Rename { from_dir; _ } -> Some from_dir

(* Procedures a read-only export bounces with NFSERR_ROFS before any
   of them can touch the write layer — both dialects, including the v3
   WRITE/COMMIT pair. *)
let mutates proc =
  proc = Proto.proc_setattr || proc = Proto.proc_write || proc = Proto.proc_write3
  || proc = Proto.proc_commit || proc = Proto.proc_create || proc = Proto.proc_remove
  || proc = Proto.proc_rename || proc = Proto.proc_mkdir || proc = Proto.proc_rmdir
  || proc = Proto.proc_symlink

let execute t vol (args : Proto.args) : Proto.res =
  ignore t;
  let vn fh = vnode_in vol fh in
  let attr_res v = Proto.RAttr (Ok (fattr_of_vnode vol v)) in
  let dirop_res v = Proto.RDirop (Ok (fh_of_vnode vol v, fattr_of_vnode vol v)) in
  match args with
  | Proto.Null -> Proto.RNull
  | Proto.Getattr fh -> attr_res (vn fh)
  | Proto.Setattr (fh, sattr) ->
      let v = vn fh in
      Vfs.with_lock v (fun () ->
          if sattr.Proto.s_size >= 0 then begin
            (* nfsrace: allow Y001 baseline synchronous semantics: truncate commits under the vnode lock before the reply *)
            Vfs.vop_truncate v sattr.Proto.s_size;
            (* Truncation changes visible state: commit before reply. *)
            (* nfsrace: allow Y001 baseline synchronous semantics: truncate commits under the vnode lock before the reply *)
            Nfsg_ufs.Fs.fsync_metadata (Volume.fs vol) (Vfs.inode_of v)
          end;
          match sattr.Proto.s_mtime with
          | Some tv -> Vfs.vop_touch v ~mtime:(Proto.ns_of_timeval tv)
          | None -> ());
      attr_res v
  | Proto.Lookup (fh, name) ->
      let dir = vn fh in
      dirop_res (Vfs.vop_lookup dir name)
  | Proto.Read _ | Proto.Write _ | Proto.Write3 _ | Proto.Commit _ ->
      assert false (* handled by the write layer / read plane in dispatch *)
  | Proto.Create { dir; name; sattr = _ } ->
      let d = vn dir in
      (* nfsrace: allow Y001 baseline synchronous metadata semantics: directory ops commit under the vnode lock before replying *)
      dirop_res (Vfs.with_lock d (fun () -> Vfs.vop_create d name Layout.Regular))
  | Proto.Remove { dir; name } ->
      let d = vn dir in
      (* nfsrace: allow Y001 baseline synchronous metadata semantics: directory ops commit under the vnode lock before replying *)
      Vfs.with_lock d (fun () -> Vfs.vop_remove d name);
      Proto.RStatus Proto.NFS_OK
  | Proto.Rename { from_dir; from_name; to_dir; to_name } ->
      (* Rename never crosses volumes: distinct fsids are distinct
         filesystems, exactly the classic EXDEV. *)
      if to_dir.Proto.fsid <> from_dir.Proto.fsid || to_dir.Proto.vgen <> from_dir.Proto.vgen
      then Proto.RStatus Proto.NFSERR_XDEV
      else begin
        let src = vn from_dir in
        let dst = vn to_dir in
        (* nfsrace: allow Y001 baseline synchronous metadata semantics: directory ops commit under the vnode lock before replying *)
        Vfs.with_lock src (fun () -> Vfs.vop_rename src ~src:from_name ~dst_dir:dst ~dst:to_name);
        Proto.RStatus Proto.NFS_OK
      end
  | Proto.Mkdir { dir; name; sattr = _ } ->
      let d = vn dir in
      (* nfsrace: allow Y001 baseline synchronous metadata semantics: directory ops commit under the vnode lock before replying *)
      dirop_res (Vfs.with_lock d (fun () -> Vfs.vop_mkdir d name))
  | Proto.Rmdir { dir; name } ->
      let d = vn dir in
      (* nfsrace: allow Y001 baseline synchronous metadata semantics: directory ops commit under the vnode lock before replying *)
      Vfs.with_lock d (fun () -> Vfs.vop_rmdir d name);
      Proto.RStatus Proto.NFS_OK
  | Proto.Readlink fh ->
      let v = vn fh in
      Proto.RReadlink (Ok (Vfs.vop_readlink v))
  | Proto.Symlink { dir; name; target; sattr = _ } ->
      let d = vn dir in
      (* nfsrace: allow Y001 baseline synchronous metadata semantics: directory ops commit under the vnode lock before replying *)
      dirop_res (Vfs.with_lock d (fun () -> Vfs.vop_symlink d name ~target))
  | Proto.Readdir { fh; cookie = _; count = _ } ->
      let d = vn fh in
      Proto.RReaddir (Ok (Vfs.vop_readdir d, true))
  | Proto.Statfs _ ->
      let s = Fs.statfs (Volume.fs vol) in
      Proto.RStatfs
        (Ok
           {
             Proto.tsize = 8192;
             bsize = s.Fs.bsize;
             blocks = s.Fs.total_blocks;
             bfree = s.Fs.free_blocks;
             bavail = s.Fs.free_blocks;
           })

(* Error result with the shape the procedure's decoder expects. *)
let error_res ~proc st : Proto.res =
  if proc = Proto.proc_getattr || proc = Proto.proc_setattr || proc = Proto.proc_write then
    Proto.RAttr (Error st)
  else if proc = Proto.proc_lookup || proc = Proto.proc_create || proc = Proto.proc_mkdir
          || proc = Proto.proc_symlink then Proto.RDirop (Error st)
  else if proc = Proto.proc_read then Proto.RRead (Error st)
  else if proc = Proto.proc_readlink then Proto.RReadlink (Error st)
  else if proc = Proto.proc_write3 then Proto.RWrite3 (Error st)
  else if proc = Proto.proc_commit then Proto.RCommit (Error st)
  else if proc = Proto.proc_readdir then Proto.RReaddir (Error st)
  else if proc = Proto.proc_statfs then Proto.RStatfs (Error st)
  else Proto.RStatus st

(* NFSERR_ROFS in the shape the proc's decoder expects, charged like
   any other error reply. *)
let rofs_reply t vol ~proc =
  count_rofs_rejection t vol;
  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
  Svc.Reply (Rpc.Success, Proto.encode_res (error_res ~proc Proto.NFSERR_ROFS))

(* The mini MOUNT service: export name in, root filehandle out. *)
let dispatch_mount t (call : Rpc.call) =
  if call.Rpc.proc <> Proto.proc_mnt then Svc.Reply (Rpc.Proc_unavail, Bytes.create 0)
  else
    match Proto.decode_mnt_args call.Rpc.body with
    | exception (Nfsg_rpc.Xdr.Dec.Error _ | Nfsg_rpc.Xdr.Decode_error _) -> Svc.Reply (Rpc.Garbage_args, Bytes.create 0)
    | name ->
        let res =
          match List.find_opt (fun v -> Volume.export v = name) t.volumes with
          | Some vol -> Ok (Volume.root_fh vol, Volume.read_only vol)
          | None -> Error Proto.NFSERR_NOENT
        in
        Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
        Svc.Reply (Rpc.Success, Proto.encode_mnt_res res)

let make_dispatch t =
  fun tr (call : Rpc.call) ->
    if call.Rpc.prog = Rpc.mount_program then dispatch_mount t call
    else if call.Rpc.prog <> Rpc.nfs_program then Svc.Reply (Rpc.Prog_unavail, Bytes.create 0)
    else begin
      Resource.use t.cpu (t.config.costs.Cpu_model.rpc_decode + t.config.costs.Cpu_model.op_base);
      match Proto.decode_args ~proc:call.Rpc.proc call.Rpc.body with
      | exception (Nfsg_rpc.Xdr.Dec.Error _ | Nfsg_rpc.Xdr.Decode_error _) -> Svc.Reply (Rpc.Garbage_args, Bytes.create 0)
      | decoded ->
      (match Svc.journey_of tr with
      | Some j ->
          let payload =
            match decoded with
            | Proto.Write { data; _ } | Proto.Write3 { data; _ } -> Nfsg_rpc.Xdr.view_length data
            | Proto.Read { count; _ } -> count
            | _ -> 0
          in
          Nfsg_stats.Journey.set_op j ~proc:(Proto.proc_name call.Rpc.proc) ~bytes:payload
      | None -> ());
      match decoded with
      | Proto.Write { fh; offset; data } -> (
          count_op t Proto.proc_write;
          match
            let vol = volume_of_fh t fh in
            (vol, vnode_in vol fh)
          with
          | vol, v ->
              count_vol_op t vol Proto.proc_write;
              if Volume.read_only vol then rofs_reply t vol ~proc:Proto.proc_write
              else Write_layer.handle_write (Volume.write_layer vol) tr v ~off:offset ~data
          | exception Fs.Stale _ ->
              Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
              Svc.Reply (Rpc.Success, Proto.encode_res (Proto.RAttr (Error Proto.NFSERR_STALE))))
      | Proto.Write3 { fh; offset; stable; data } -> (
          count_op t Proto.proc_write3;
          match
            let vol = volume_of_fh t fh in
            (vol, vnode_in vol fh)
          with
          | exception Fs.Stale _ ->
              Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
              Svc.Reply (Rpc.Success, Proto.encode_res (Proto.RWrite3 (Error Proto.NFSERR_STALE)))
          | vol, v -> (
              count_vol_op t vol Proto.proc_write3;
              if Volume.read_only vol then rofs_reply t vol ~proc:Proto.proc_write3
              else
              match stable with
              | Proto.Unstable -> (
                  (* The v3 asynchronous promise: data to the cache,
                     reply immediately; durability comes at COMMIT. *)
                  match
                    Vfs.with_lock v (fun () ->
                        Resource.use t.cpu t.config.costs.Cpu_model.ufs_trip;
                        (* nfsrace: allow Y001 delayed write: a cache-miss fill may park, and the fill must happen under the vnode lock *)
                        Vfs.vop_write v ~off:offset data ~flags:[ Vfs.IO_DELAYDATA ])
                  with
                  | () ->
                      (* The unstable write's journey ends at the cache:
                         no gather wait, no disk — COMMIT pays those. *)
                      jstamp t tr Nfsg_stats.Journey.stamp_queued;
                      Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                      Svc.Reply
                        ( Rpc.Success,
                          Proto.encode_res
                            (Proto.RWrite3 (Ok (fattr_of_vnode vol v, Proto.Unstable, t.verf))) )
                  | exception Fs.No_space ->
                      Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                      Svc.Reply
                        (Rpc.Success, Proto.encode_res (Proto.RWrite3 (Error Proto.NFSERR_NOSPC)))
                  | exception Nfsg_disk.Device.Io_error _ ->
                      Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                      Svc.Reply
                        (Rpc.Success, Proto.encode_res (Proto.RWrite3 (Error Proto.NFSERR_IO))))
              | Proto.Data_sync | Proto.File_sync ->
                  (* v2 semantics through the write layer: these writes
                     gather in the same batches as v2 WRITEs. *)
                  let respond a = Proto.RWrite3 (Ok (a, Proto.File_sync, t.verf)) in
                  let fail st = Proto.RWrite3 (Error st) in
                  Write_layer.handle_write (Volume.write_layer vol) tr ~respond ~fail v
                    ~off:offset ~data))
      | Proto.Commit { fh; offset; count } -> (
          count_op t Proto.proc_commit;
          match
            let vol = volume_of_fh t fh in
            (vol, vnode_in vol fh)
          with
          | exception Fs.Stale _ ->
              Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
              Svc.Reply (Rpc.Success, Proto.encode_res (Proto.RCommit (Error Proto.NFSERR_STALE)))
          | vol, v -> (
              count_vol_op t vol Proto.proc_commit;
              if Volume.read_only vol then rofs_reply t vol ~proc:Proto.proc_commit
              else begin
              jstamp t tr Nfsg_stats.Journey.stamp_queued;
              match
                Vfs.with_lock v (fun () ->
                    Resource.use t.cpu t.config.costs.Cpu_model.ufs_trip;
                    let len =
                      if count = 0 then (Vfs.vop_getattr v).Fs.size - offset else count
                    in
                    jstamp t tr Nfsg_stats.Journey.stamp_disk_submit;
                    (* nfsrace: allow Y001 COMMIT is the durability point: the client pays the disk wait, and the vnode lock orders it against writers *)
                    if len > 0 then Vfs.vop_syncdata v ~off:offset ~len;
                    Resource.use t.cpu t.config.costs.Cpu_model.ufs_trip;
                    (* nfsrace: allow Y001 COMMIT is the durability point: the client pays the disk wait, and the vnode lock orders it against writers *)
                    Vfs.vop_fsync v ~flags:[ Vfs.FWRITE; Vfs.FWRITE_METADATA ])
              with
              | () ->
                  jstamp t tr Nfsg_stats.Journey.stamp_disk_complete;
                  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                  Svc.Reply
                    ( Rpc.Success,
                      Proto.encode_res (Proto.RCommit (Ok (fattr_of_vnode vol v, t.verf))) )
              | exception Nfsg_disk.Device.Io_error _ ->
                  (* The unstable data stays dirty in the cache; the
                     client keeps it and re-COMMITs. *)
                  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                  Svc.Reply
                    (Rpc.Success, Proto.encode_res (Proto.RCommit (Error Proto.NFSERR_IO)))
              end))
      | Proto.Read { fh; offset; count } -> (
          count_op t Proto.proc_read;
          match
            let vol = volume_of_fh t fh in
            (vol, vnode_in vol fh)
          with
          | exception e -> (
              match status_of_exn e with
              | Some st ->
                  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                  Svc.Reply (Rpc.Success, Proto.encode_res (Proto.RRead (Error st)))
              | None -> raise e)
          | vol, v -> (
              count_vol_op t vol Proto.proc_read;
              let cache = Fs.cache (Volume.fs vol) in
              let misses0 = Nfsg_ufs.Buffer_cache.misses cache in
              jstamp t tr Nfsg_stats.Journey.stamp_queued;
              jstamp t tr Nfsg_stats.Journey.stamp_disk_submit;
              let stream =
                if Nfsg_ufs.Buffer_cache.readahead_active cache then
                  stream_of t ~client:(Svc.client_of tr) ~inum:fh.Proto.inum
                else 0
              in
              match Vfs.vop_read_ahead v ~stream ~off:offset ~len:count with
              | data ->
                  jstamp t tr Nfsg_stats.Journey.stamp_disk_complete;
                  (* Hit iff no demand read waited: the cache's miss
                     counter did not move while we were in the vop. *)
                  (match Svc.journey_of tr with
                  | Some j ->
                      Nfsg_stats.Journey.set_cache_phase j
                        ~hit:(Nfsg_ufs.Buffer_cache.misses cache = misses0)
                  | None -> ());
                  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                  Svc.Reply
                    ( Rpc.Success,
                      Proto.encode_res (Proto.RRead (Ok (fattr_of_vnode vol v, data))) )
              | exception e -> (
                  match status_of_exn e with
                  | Some st ->
                      Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                      Svc.Reply (Rpc.Success, Proto.encode_res (Proto.RRead (Error st)))
                  | None -> raise e)))
      | args -> (
          count_op t call.Rpc.proc;
          match
            match primary_fh args with
            | None -> execute t (first_volume t) args
            | Some fh ->
                let vol = volume_of_fh t fh in
                count_vol_op t vol call.Rpc.proc;
                if mutates call.Rpc.proc && Volume.read_only vol then begin
                  count_rofs_rejection t vol;
                  error_res ~proc:call.Rpc.proc Proto.NFSERR_ROFS
                end
                else execute t vol args
          with
          | res ->
              Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
              Svc.Reply (Rpc.Success, Proto.encode_res res)
          | exception e -> (
              match status_of_exn e with
              | Some st ->
                  Resource.use t.cpu t.config.costs.Cpu_model.rpc_encode;
                  Svc.Reply (Rpc.Success, Proto.encode_res (error_res ~proc:call.Rpc.proc st))
              | None -> raise e))
    end

(* The assembly shared by the fresh-format and recovery paths.
   [vols] carries, per export, its spec, the vgen to preserve (or
   [None] for a fresh one) and whether to format. *)
let make_internal eng ~segment ~addr ?trace ?metrics ~legacy_ns config vols =
  let metrics = match metrics with Some m -> m | None -> Nfsg_stats.Metrics.create () in
  let cpu = Resource.create eng "server-cpu" in
  let costs = config.costs in
  let sock =
    Nfsg_net.Socket.create segment ~addr ~rcvbuf:config.rcvbuf
      ~on_rx_fragment:(fun ~bytes:_ -> Resource.charge cpu costs.Cpu_model.rx_fragment)
      ()
  in
  let svc_ref = ref None in
  let send_reply tr res =
    match !svc_ref with
    | Some svc -> Svc.send_reply svc tr Rpc.Success (Proto.encode_res res)
    | None -> assert false
  in
  let volumes =
    List.mapi
      (fun i (spec, vgen, mkfs) ->
        Volume.mount eng ~fsid:(i + 1) ?vgen ~legacy_ns ~sock ~cpu ~costs ~send_reply
          ?trace ~metrics ~mkfs ~wl_config:config.write_layer spec)
      vols
  in
  incr boot_counter;
  let journeys =
    Nfsg_stats.Journey.create eng ~metrics ?threshold:config.long_op_threshold
      ?event_trace:trace ()
  in
  let t =
    {
      eng;
      segment;
      config;
      addr;
      volumes;
      legacy_ns;
      sock;
      cpu;
      verf = !boot_counter;
      op_counts = Hashtbl.create 16;
      stream_ids = Hashtbl.create 16;
      trace;
      metrics;
      journeys;
    }
  in
  let dupcache = if config.dupcache then Some (Dupcache.create eng ~metrics ()) else None in
  let svc =
    Svc.create eng ~sock ?dupcache ~journeys ~metrics
      ~on_duplicate_drop:(fun ~client:_ call ->
        if call.Rpc.prog = Rpc.nfs_program && call.Rpc.proc = Proto.proc_write then
          match Proto.decode_args ~proc:call.Rpc.proc call.Rpc.body with
          | Proto.Write { fh; _ } -> (
              (* Route the orphan rescue to the right volume's plane. *)
              match List.find_opt (fun v -> Volume.owns v fh) t.volumes with
              | Some vol -> Write_layer.rescue (Volume.write_layer vol) ~inum:fh.Proto.inum
              | None -> ())
          | _ | (exception (Nfsg_rpc.Xdr.Dec.Error _ | Nfsg_rpc.Xdr.Decode_error _)) -> ())
      ~nfsds:config.nfsds
      ~dispatch:(fun tr call -> make_dispatch t tr call)
      ()
  in
  svc_ref := Some svc;
  t

let make_exports eng ~segment ~addr ?trace ?metrics ?(mkfs = true) config specs =
  if specs = [] then invalid_arg "Server.make_exports: need at least one volume";
  make_internal eng ~segment ~addr ?trace ?metrics ~legacy_ns:false config
    (List.map (fun spec -> (spec, None, mkfs)) specs)

(* The historical single-volume constructor, kept as the 1-volume
   special case with its historical metrics namespaces. *)
let make eng ~segment ~addr ~device ?trace ?metrics ?(mkfs = true) config =
  make_internal eng ~segment ~addr ?trace ?metrics ~legacy_ns:true config
    [
      ( {
          Volume.export = "/export";
          device;
          cache_blocks = config.cache_blocks;
          read_only = false;
          readahead = config.readahead;
        },
        None,
        mkfs );
    ]

let crash t =
  (* Power off: volatile state gone and the host leaves the wire. *)
  Nfsg_net.Socket.detach t.sock;
  List.iter Volume.crash t.volumes

let recover t =
  (* Every device recovers (NVRAM replay where fitted), every volume
     remounts fsck-style from stable storage; the volume generations
     are preserved — a reboot does not invalidate client handles — and
     the shared write verifier bumps exactly once for the incarnation. *)
  List.iter (fun v -> (Volume.device v).Nfsg_disk.Device.recover ()) t.volumes;
  (* Same registry across incarnations: find-or-create registration
     means the restarted server keeps counting where this one stopped. *)
  make_internal t.eng ~segment:t.segment ~addr:t.addr ?trace:t.trace ~metrics:t.metrics
    ~legacy_ns:t.legacy_ns t.config
    (List.map (fun v -> (Volume.spec_of v, Some (Volume.vgen v), false)) t.volumes)

let restart = recover
