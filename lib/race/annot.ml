(* Yields annotations: a comment holding the marker (the tool name, a
   colon-space, then "yields") followed by a reason, covering the
   function defined on the same line or the line below.

   The may-yield inference follows direct calls only; an effect that
   flows through a dispatch point it cannot see (a stored thunk, a
   record of functions, an argument closure applied by name the
   heuristics miss) is declared on the function that hides it. The
   reason is mandatory — an annotation is a claim about runtime
   behaviour the analysis cannot check, so it must say why it is
   true. An annotation covers a function whose definition starts on
   the same line or the line directly below, mirroring the
   suppression-comment convention. *)

type t = {
  line : int;  (** line the comment starts on, 1-based *)
  reason : string;
  mutable used : bool;
}

(* Built by concatenation so this file's own scan does not match it. *)
let marker = "nfsrace: " ^ "yields"

let parse_tail ~line tail =
  let tail = String.trim tail in
  let tail =
    match String.index_opt tail '*' with
    | Some j when j + 1 < String.length tail && tail.[j + 1] = ')' -> String.sub tail 0 j
    | _ -> tail
  in
  { line; reason = String.trim tail; used = false }

let scan src =
  let lines = String.split_on_char '\n' src in
  let found = ref [] in
  List.iteri
    (fun i line ->
      let mlen = String.length marker in
      let rec find from =
        if from + mlen > String.length line then None
        else if String.sub line from mlen = marker then Some (from + mlen)
        else find (from + 1)
      in
      match find 0 with
      | None -> ()
      | Some after ->
          let tail = String.sub line after (String.length line - after) in
          found := parse_tail ~line:(i + 1) tail :: !found)
    lines;
  List.rev !found
