(* Intra-repo call graph with a transitive may-yield effect.

   Pure Parsetree analysis, like nfslint: no typing, no ppx. Every
   top-level function, local function binding and deferred lambda
   (spawned process body, record-of-functions field) becomes a node;
   applications become edges. The effect lattice is Pure < Delay <
   Park: a Delay call completes after a bounded span of virtual time
   (Engine.delay, Engine.yield, a bounded-by-contract override such
   as Resource.use), a Park call waits open-endedly for another party
   (Engine.suspend and everything that reaches it — ivar reads,
   condition waits, the blocking Device.read/write shims). Y001 fires
   on Park only: holding a sleep lock across bounded virtual time is
   the paper's design, holding it across an open-ended wait is the
   PR 7 convoy.

   Each node's effect carries a witness — the call that gave it the
   effect — so a diagnostic can print the full chain from the flagged
   call down to the engine primitive. *)

open Parsetree

type eff = Pure | Delay | Park

let eff_rank = function Pure -> 0 | Delay -> 1 | Park -> 2
let max_eff a b = if eff_rank a >= eff_rank b then a else b

type config = {
  park_seeds : (string * string) list;  (** open-ended waits, e.g. Engine.suspend *)
  delay_seeds : (string * string) list;  (** bounded waits, e.g. Engine.delay *)
  overrides : ((string * string) * eff) list;
      (** bounded-by-contract caps, e.g. Resource.use: reaches suspend but the
          FIFO capacity queue bounds the wait, so Y001 must not fire on it *)
  park_fields : (string * string) list;  (** record-field calls, e.g. x.Device.read *)
  delay_fields : (string * string) list;  (** e.g. x.Device.submit: copy delay, never blocks *)
  scoped_locks : ((string * string) * string) list;  (** fn -> lock family, e.g. Vfs.with_lock *)
  acquire_locks : ((string * string) * string) list;
  release_locks : ((string * string) * string) list;
  cond_acquire_locks : ((string * string) * string) list;
      (** acquire returning bool, e.g. Stripe.lock_row: [if lock_row ...] threads
          the lock into the success branch only *)
  defer_sinks : (string * string) list;
      (** functions whose closure arguments run later as their own process,
          e.g. Engine.spawn: the closure's effects do not taint the caller *)
  noreturn : (string * string) list;
      (** calls that never return, e.g. Stripe.crashed_park: their branch
          needs no lock release and no Y001 *)
  exempt_files : string list;
      (** parsed for the call graph but not rule-walked (the engine's effect
          handlers live beneath the cooperative abstraction) *)
}

(* {1 Longident helpers} *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* Library-wrapper prefixes (Stdlib, Nfsg_sim, ...) name the same
   modules the short paths do. *)
let is_wrapper c = c = "Stdlib" || (String.length c > 5 && String.sub c 0 5 = "Nfsg_")
let strip_wrappers path = List.filter (fun c -> not (is_wrapper c)) path

let module_of_rel rel =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename rel))

let loc_line (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

(* Thunks bound to names like [await] or [await_flush] are, by repo
   convention, the second half of a begin/await split: calling one
   parks on the completion of work submitted earlier. The call graph
   cannot see through the closure, so the name is the contract. *)
let await_named f = f = "await" || (String.length f > 6 && String.sub f 0 6 = "await_")

(* {1 Nodes} *)

type callee =
  | Cnode of string  (** resolved to a node key *)
  | Cseed of string * eff  (** display name, effect class *)
  | Cunknown

type rawcallee =
  | Rlocal of string  (** bare ident resolved to a local-function node key *)
  | Rpath of string list  (** written path, wrappers stripped *)
  | Rfield of string option * string  (** record-field application: module, field *)

type why =
  | Wnone
  | Wseed of string  (** display name of the primitive / field / thunk *)
  | Wcall of string  (** key of the callee the effect came through *)
  | Wannot of string  (** reason text of the yields annotation *)

type node = {
  key : string;
  rel : string;
  top_line : int;
  body : expression;
  env : (string * string) list;  (** visible local-function names -> node keys *)
  implicit : bool;  (** deferred lambda: runs later, effects not charged to parent *)
  mutable raw : (Location.t * rawcallee) list;
  mutable edges : (Location.t * callee * string) list;  (** loc, callee, display *)
  mutable eff : eff;
  mutable why : why;
}

type file = {
  f_rel : string;
  f_mod : string;
  f_aliases : (string * string) list;
  mutable f_mutables : string list;  (** top-level mutable bindings, for Y002 *)
  f_annots : Annot.t list;
  mutable f_nodes : node list;
}

type t = {
  config : config;
  files : file list;
  by_key : (string, node) Hashtbl.t;
  index2 : (string * string, string) Hashtbl.t;  (** (Module, fn) -> node key *)
}

(* "Fs.commit_range" -> Some ("Fs", "commit_range"); deeper keys (local
   functions, anonymous lambdas) have no canonical pair and never match
   the seed or idiom tables. *)
let key_pair key =
  match String.split_on_char '.' key with [ m; f ] -> Some (m, f) | _ -> None

let mem2 table pair = List.mem pair table
let assoc2 table pair = List.assoc_opt pair table

(* {1 Syntactic helpers} *)

let rec is_fn e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, b) -> is_fn b
  | _ -> false

(* Strip the leading parameter chain of a function binding; the result
   is the body that runs per call (possibly a [function] case set). *)
let rec unwrap_fun e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> unwrap_fun body
  | Pexp_newtype (_, body) -> unwrap_fun body
  | _ -> e

let binding_name vb =
  let rec go pat =
    match pat.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go vb.pvb_pat

let is_mutable_maker e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match strip_wrappers (flatten txt) with
      | [ "ref" ]
      | [ ("Hashtbl" | "Queue" | "Stack" | "Buffer"); "create" ]
      | [ "Atomic"; "make" ] ->
          true
      | _ -> false)
  | _ -> false

let rawcallee_of env fnexpr =
  match fnexpr.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match strip_wrappers (flatten txt) with
      | [] -> None
      | [ f ] -> (
          match List.assoc_opt f env with
          | Some key -> Some (Rlocal key)
          | None -> Some (Rpath [ f ]))
      | path -> Some (Rpath path))
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (flatten txt) with
      | [ fld ] -> Some (Rfield (None, fld))
      | fld :: m :: _ -> Some (Rfield (Some m, fld))
      | [] -> None)
  | _ -> None

let raw_display modname raw =
  match raw with
  | Rlocal key -> key
  | Rpath [ f ] -> modname ^ "." ^ f
  | Rpath path -> String.concat "." path
  | Rfield (Some m, fld) -> "." ^ m ^ "." ^ fld
  | Rfield (None, fld) -> "." ^ fld

(* Canonical (Module, fn) pair used for the seed / idiom tables. Bare
   idents belong to the defining module; qualified paths to their last
   two components (after de-aliasing). *)
let raw_pair file raw =
  match raw with
  | Rlocal key -> key_pair key
  | Rpath [ f ] -> Some (file.f_mod, f)
  | Rpath path -> (
      let path =
        match path with
        | first :: rest -> (
            match List.assoc_opt first file.f_aliases with
            | Some canon -> canon :: rest
            | None -> path)
        | [] -> path
      in
      match List.rev path with f :: m :: _ -> Some (m, f) | _ -> None)
  | Rfield (m, fld) -> Option.map (fun m -> (m, fld)) m

(* {1 Stage A: node discovery + raw edge collection} *)

type bctx = { cfg : config; file : file }

let anon_key parent (loc : Location.t) =
  Printf.sprintf "%s.<fn@%d:%d>" parent.key (loc_line loc)
    (loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

let new_node ctx ~key ~line ~env ~implicit body =
  let n =
    {
      key;
      rel = ctx.file.f_rel;
      top_line = line;
      body;
      env;
      implicit;
      raw = [];
      edges = [];
      eff = Pure;
      why = Wnone;
    }
  in
  ctx.file.f_nodes <- ctx.file.f_nodes @ [ n ];
  n

(* Collect the calls of one node body. Lambdas found along the way are
   either inlined (arguments to ordinary calls: List.iter etc. run them
   now, so their calls belong to this node) or split off as implicit
   nodes (deferred positions: spawn/schedule/timer arguments, record
   fields, lambdas that are stored or returned rather than applied). *)
let rec collect ctx node env e =
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable | Pexp_extension _ -> ()
  | Pexp_fun _ | Pexp_newtype _ | Pexp_function _ -> defer_lambda ctx node env e
  | Pexp_let (rf, vbs, body) ->
      let env' = collect_let ctx node env rf vbs in
      collect ctx node env' body
  | Pexp_apply (fn, args) -> collect_apply ctx node env e.pexp_loc fn args
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      collect ctx node env scrut;
      List.iter (collect_case ctx node env) cases
  | Pexp_record (fields, base) ->
      Option.iter (collect ctx node env) base;
      List.iter
        (fun (_, v) -> if is_fn v then defer_lambda ctx node env v else collect ctx node env v)
        fields
  | Pexp_ifthenelse (c, t, f) ->
      collect ctx node env c;
      collect ctx node env t;
      Option.iter (collect ctx node env) f
  | Pexp_sequence (a, b) | Pexp_while (a, b) ->
      collect ctx node env a;
      collect ctx node env b
  | Pexp_for (_, a, b, _, body) ->
      collect ctx node env a;
      collect ctx node env b;
      collect ctx node env body
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> Option.iter (collect ctx node env) arg
  | Pexp_tuple es | Pexp_array es -> List.iter (collect ctx node env) es
  | Pexp_field (obj, _) -> collect ctx node env obj
  | Pexp_setfield (a, _, b) ->
      collect ctx node env a;
      collect ctx node env b
  | Pexp_constraint (e, _)
  | Pexp_coerce (e, _, _)
  | Pexp_assert e
  | Pexp_lazy e
  | Pexp_open (_, e)
  | Pexp_letexception (_, e)
  | Pexp_letmodule (_, _, e)
  | Pexp_poly (e, _) -> collect ctx node env e
  | _ ->
      (* Remaining constructors (objects, first-class modules, letops)
         do not occur in this tree; walk their direct children so a
         future use degrades to under-approximation, not a crash. *)
      List.iter (collect ctx node env) (direct_children e)

and direct_children e =
  let acc = ref [] in
  let collector =
    { Ast_iterator.default_iterator with expr = (fun _ c -> acc := c :: !acc) }
  in
  Ast_iterator.default_iterator.expr collector e;
  List.rev !acc

and collect_case ctx node env case =
  Option.iter (collect ctx node env) case.pc_guard;
  collect ctx node env case.pc_rhs

and collect_let ctx node env rf vbs =
  List.fold_left
    (fun env' vb ->
      match (binding_name vb, is_fn vb.pvb_expr) with
      | Some name, true ->
          let key = node.key ^ "." ^ name in
          let inner_env = if rf = Recursive then (name, key) :: env' else env' in
          let child =
            new_node ctx ~key ~line:(loc_line vb.pvb_loc) ~env:inner_env ~implicit:false
              (unwrap_fun vb.pvb_expr)
          in
          collect_body ctx child;
          (name, key) :: env'
      | _ ->
          collect ctx node env' vb.pvb_expr;
          env')
    env vbs

and defer_lambda ctx node env e =
  let child =
    new_node ctx ~key:(anon_key node e.pexp_loc) ~line:(loc_line e.pexp_loc) ~env
      ~implicit:true (unwrap_fun e)
  in
  collect_body ctx child

(* Inline a lambda argument: its body's calls belong to the caller. *)
and inline_lambda ctx node env e =
  match (unwrap_fun e).pexp_desc with
  | Pexp_function cases -> List.iter (collect_case ctx node env) cases
  | _ -> collect ctx node env (unwrap_fun e)

and collect_apply ctx node env loc fn args =
  match (fn.pexp_desc, args) with
  | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ (_, a); (_, f) ] ->
      pipeline_apply ctx node env loc f a
  | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, f); (_, a) ] ->
      pipeline_apply ctx node env loc f a
  | _ ->
      let raw = rawcallee_of env fn in
      (match raw with
      | Some r -> node.raw <- (loc, r) :: node.raw
      | None -> collect ctx node env fn);
      (match fn.pexp_desc with Pexp_field (obj, _) -> collect ctx node env obj | _ -> ());
      let deferred =
        match raw with
        | Some r -> (
            match raw_pair ctx.file r with
            | Some pair -> mem2 ctx.cfg.defer_sinks pair
            | None -> false)
        | None -> false
      in
      List.iter
        (fun (_, a) ->
          if is_fn a then
            if deferred then defer_lambda ctx node env a else inline_lambda ctx node env a
          else begin
            (* A function passed by name to an unknown higher-order
               callee may be called by it: record the potential edge. *)
            (match a.pexp_desc with
            | Pexp_ident _ when not deferred -> (
                match rawcallee_of env a with
                | Some r -> node.raw <- (a.pexp_loc, r) :: node.raw
                | None -> ())
            | _ -> ());
            collect ctx node env a
          end)
        args

and pipeline_apply ctx node env loc f a =
  match rawcallee_of env f with
  | Some _ -> collect_apply ctx node env loc f [ (Asttypes.Nolabel, a) ]
  | None ->
      collect ctx node env f;
      collect ctx node env a

and collect_body ctx node =
  match node.body.pexp_desc with
  | Pexp_function cases -> List.iter (collect_case ctx node node.env) cases
  | _ -> collect ctx node node.env node.body

(* {1 Per-file discovery} *)

let expr_mentions_fn e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self c ->
          (match c.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self c);
    }
  in
  it.Ast_iterator.expr it e;
  !found

(* Non-function top-level bindings can still carry lambdas (a record
   of functions built at module init); give them an implicit wrapper
   node so those lambdas are discovered and walked. *)
let scan_toplevel_expr ctx modprefix name vb =
  if expr_mentions_fn vb.pvb_expr then begin
    let key = Printf.sprintf "%s.<def %s@%d>" modprefix name (loc_line vb.pvb_loc) in
    let node =
      new_node ctx ~key ~line:(loc_line vb.pvb_loc) ~env:[] ~implicit:true vb.pvb_expr
    in
    collect_body ctx node
  end

let scan_structure ctx structure =
  let rec items modprefix structure =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (rf, vbs) ->
            List.iter
              (fun vb ->
                match binding_name vb with
                | Some name when is_fn vb.pvb_expr ->
                    let key = modprefix ^ "." ^ name in
                    let env = if rf = Recursive then [ (name, key) ] else [] in
                    let node =
                      new_node ctx ~key ~line:(loc_line vb.pvb_loc) ~env ~implicit:false
                        (unwrap_fun vb.pvb_expr)
                    in
                    collect_body ctx node
                | Some name ->
                    if is_mutable_maker vb.pvb_expr then
                      ctx.file.f_mutables <- name :: ctx.file.f_mutables;
                    scan_toplevel_expr ctx modprefix name vb
                | None -> scan_toplevel_expr ctx modprefix "<top>" vb)
              vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure inner; _ };
              _;
            } ->
            (* Nested module: its functions are addressed as Sub.f at
               call sites, so key them under the inner module name. *)
            items sub inner
        | _ -> ())
      structure
  in
  items ctx.file.f_mod structure

let aliases_of structure =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_module
          {
            pmb_name = { txt = Some name; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
            _;
          } -> (
          match List.rev (strip_wrappers (flatten txt)) with
          | canon :: _ -> Some (name, canon)
          | [] -> None)
      | _ -> None)
    structure

(* {1 Stage B: resolution} *)

let file_mutables f = List.sort_uniq compare f.f_mutables

let resolve t file raw =
  match raw with
  | Rlocal key -> Cnode key
  | Rfield (Some m, fld) ->
      if mem2 t.config.park_fields (m, fld) then Cseed ("." ^ m ^ "." ^ fld, Park)
      else if mem2 t.config.delay_fields (m, fld) then Cseed ("." ^ m ^ "." ^ fld, Delay)
      else if await_named fld then Cseed ("." ^ fld ^ " (await naming convention)", Park)
      else Cunknown
  | Rfield (None, fld) ->
      if await_named fld then Cseed ("." ^ fld ^ " (await naming convention)", Park)
      else Cunknown
  | Rpath _ -> (
      match raw_pair file raw with
      | None -> Cunknown
      | Some ((m, f) as pair) ->
          if mem2 t.config.park_seeds pair then Cseed (m ^ "." ^ f, Park)
          else if mem2 t.config.delay_seeds pair then Cseed (m ^ "." ^ f, Delay)
          else begin
            match assoc2 t.config.overrides pair with
            | Some e -> Cseed (m ^ "." ^ f ^ " (bounded by contract)", e)
            | None -> (
                match Hashtbl.find_opt t.index2 pair with
                | Some key -> Cnode key
                | None ->
                    if await_named f then Cseed (m ^ "." ^ f ^ " (await naming convention)", Park)
                    else Cunknown)
          end)

(* Effect of a resolved callee. Seed and override pairs win over the
   node's inferred effect so e.g. Engine.suspend reports as the
   primitive, and Resource.use stays capped at Delay even though its
   body reaches suspend. *)
let callee_eff t callee =
  match callee with
  | Cseed (_, e) -> e
  | Cunknown -> Pure
  | Cnode key -> (
      let pair = key_pair key in
      let seeded =
        match pair with
        | None -> None
        | Some p ->
            if mem2 t.config.park_seeds p then Some Park
            else if mem2 t.config.delay_seeds p then Some Delay
            else if mem2 t.config.noreturn p then
              (* A no-return call (crash park) never resumes its
                 caller, so the caller does not yield-and-continue
                 through it. *)
              Some Pure
            else assoc2 t.config.overrides p
      in
      match seeded with
      | Some e -> e
      | None -> (
          match Hashtbl.find_opt t.by_key key with Some n -> n.eff | None -> Pure))

(* {1 Effect fixpoint} *)

let all_nodes t = List.concat_map (fun f -> f.f_nodes) t.files

let apply_annotations t =
  List.iter
    (fun f ->
      List.iter
        (fun (a : Annot.t) ->
          List.iter
            (fun n ->
              if (n.top_line = a.line || n.top_line = a.line + 1) && not n.implicit then begin
                a.used <- true;
                if a.reason <> "" && n.eff <> Park then begin
                  n.eff <- Park;
                  n.why <- Wannot a.reason
                end
              end)
            f.f_nodes)
        f.f_annots)
    t.files

let fixpoint t =
  let nodes = all_nodes t in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        List.iter
          (fun (_, callee, display) ->
            let e = callee_eff t callee in
            if eff_rank e > eff_rank n.eff then begin
              n.eff <- e;
              n.why <-
                (match callee with Cnode key -> Wcall key | _ -> Wseed display);
              changed := true
            end)
          n.edges)
      nodes
  done

(* {1 Witness chains} *)

let chain_of_key t key =
  let rec go key acc seen =
    if List.mem key seen || List.length acc > 12 then List.rev (key :: acc)
    else
      match Hashtbl.find_opt t.by_key key with
      | None -> List.rev (key :: acc)
      | Some n -> (
          match n.why with
          | Wnone -> List.rev (key :: acc)
          | Wseed d -> List.rev (d :: key :: acc)
          | Wannot r -> List.rev ((key ^ " (annotated: " ^ r ^ ")") :: acc)
          | Wcall next -> go next (key :: acc) (key :: seen))
  in
  String.concat " -> " (go key [] [])

let chain_of_callee t callee =
  match callee with
  | Cseed (d, _) -> d
  | Cnode key -> chain_of_key t key
  | Cunknown -> "?"

(* {1 Build} *)

let build config parsed =
  (* parsed: (rel, structure, annots) triples *)
  let files =
    List.map
      (fun (rel, structure, annots) ->
        {
          f_rel = rel;
          f_mod = module_of_rel rel;
          f_aliases = aliases_of structure;
          f_mutables = [];
          f_annots = annots;
          f_nodes = [];
        })
      parsed
  in
  List.iter2
    (fun file (_, structure, _) -> scan_structure { cfg = config; file } structure)
    files parsed;
  let t =
    { config; files; by_key = Hashtbl.create 256; index2 = Hashtbl.create 256 }
  in
  List.iter
    (fun f ->
      List.iter
        (fun n ->
          if not (Hashtbl.mem t.by_key n.key) then Hashtbl.replace t.by_key n.key n;
          match key_pair n.key with
          | Some pair when not (Hashtbl.mem t.index2 pair) ->
              Hashtbl.replace t.index2 pair n.key
          | _ -> ())
        f.f_nodes)
    files;
  List.iter
    (fun f ->
      List.iter
        (fun n ->
          n.edges <-
            List.rev_map
              (fun (loc, raw) -> (loc, resolve t f raw, raw_display f.f_mod raw))
              n.raw)
        f.f_nodes)
    files;
  apply_annotations t;
  fixpoint t;
  t
