(* The nfsrace driver: parse every .ml under analysis with the
   compiler's own parser, build the whole-library call graph, run the
   lock-discipline walker per file, then fold in `nfsrace: allow`
   suppressions through the shared nfslint machinery. Unlike nfslint,
   the unit of analysis is the file *set*, not one file: the may-yield
   effect is transitive across modules. *)

module Diagnostic = Nfsg_lint.Diagnostic
module Suppress = Nfsg_lint.Suppress

let marker = "nfsrace: allow"

(* The effect seeds come from the engine itself — Engine.yield_primitives
   is the canonical list — so a new blocking primitive added to the
   engine is picked up here without touching the analysis. Everything
   else is repo convention: the Device record fields that park vs the
   submit field that only charges a copy delay, the lock idiom tables,
   and the defer sinks whose closure arguments run as their own
   process. *)
let default_config =
  let park_seeds, delay_seeds =
    List.fold_left
      (fun (p, d) (m, f, eff) ->
        match eff with `Park -> ((m, f) :: p, d) | `Delay -> (p, (m, f) :: d))
      ([], []) Nfsg_sim.Engine.yield_primitives
  in
  {
    Callgraph.park_seeds = List.rev park_seeds;
    delay_seeds = List.rev delay_seeds;
    overrides = [ (("Resource", "use"), Callgraph.Delay); (("Resource", "acquire"), Callgraph.Delay) ];
    park_fields =
      [
        ("Device", "read");
        ("Device", "write");
        ("Device", "flush");
        ("Device", "stable_read");
        ("Device", "stable_write");
      ];
    delay_fields = [ ("Device", "submit") ];
    scoped_locks =
      [
        (("Mutex", "with_lock"), "mutex");
        (("Vfs", "with_lock"), "vnode");
        (("Locked", "run"), "scoped");
        (("Stripe", "with_row"), "row");
      ];
    acquire_locks = [ (("Mutex", "lock"), "mutex"); (("Vfs", "lock"), "vnode") ];
    release_locks =
      [
        (("Mutex", "unlock"), "mutex");
        (("Vfs", "unlock"), "vnode");
        (("Stripe", "unlock_row"), "row");
      ];
    cond_acquire_locks = [ (("Stripe", "lock_row"), "row") ];
    defer_sinks = [ ("Engine", "spawn"); ("Engine", "schedule"); ("Engine", "timer") ];
    noreturn = [ ("Stripe", "crashed_park") ];
    exempt_files = [ "lib/sim/engine.ml" ];
  }

let parse_diag ~rel exn =
  let message =
    match exn with
    | Syntaxerr.Error _ -> "syntax error (file does not parse)"
    | exn -> Printexc.to_string exn
  in
  [ Diagnostic.make ~rule:"PARSE" ~severity:Diagnostic.Error ~file:rel ~line:1 ~col:0 message ]

(* A yields annotation is a claim the analysis cannot check, so a
   reasonless one is an error, and one that covers no function
   definition is a warning (it silently stopped doing anything). *)
let annot_diags (file : Callgraph.file) =
  List.concat_map
    (fun (a : Annot.t) ->
      if a.reason = "" then
        [
          Diagnostic.make ~rule:"RACE" ~severity:Diagnostic.Error ~file:file.Callgraph.f_rel
            ~line:a.line ~col:0
            (Printf.sprintf "yields annotation carries no reason; write '(* %s <reason> *)'"
               Annot.marker);
        ]
      else if not a.used then
        [
          Diagnostic.make ~rule:"RACE" ~severity:Diagnostic.Warning ~file:file.Callgraph.f_rel
            ~line:a.line ~col:0
            "unattached yields annotation: no function definition starts on this or the next line";
        ]
      else [])
    file.Callgraph.f_annots

let analyze_sources ?(config = default_config) sources =
  let parsed, parse_errors =
    List.fold_left
      (fun (ok, errs) (rel, src) ->
        let lexbuf = Lexing.from_string src in
        Lexing.set_filename lexbuf rel;
        match Parse.implementation lexbuf with
        | exception exn -> (ok, parse_diag ~rel exn :: errs)
        | structure -> ((rel, src, structure) :: ok, errs))
      ([], []) sources
  in
  let parsed = List.rev parsed in
  let t =
    Callgraph.build config
      (List.map (fun (rel, src, structure) -> (rel, structure, Annot.scan src)) parsed)
  in
  let per_file =
    List.map2
      (fun (rel, src, _) file ->
        let raw =
          if List.mem rel config.Callgraph.exempt_files then []
          else Locks.check t file @ annot_diags file
        in
        let suppressions = Suppress.scan_source ~marker src in
        Suppress.apply ~marker ~meta_rule:"RACE" ~file:rel suppressions raw
        |> List.sort Diagnostic.compare_loc)
      parsed t.Callgraph.files
  in
  List.concat (List.rev parse_errors @ per_file)

let read_file path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  src

(* [files] are (path-on-disk, repo-relative-name) pairs. *)
let analyze_files ?config files =
  analyze_sources ?config (List.map (fun (path, rel) -> (rel, read_file path)) files)
