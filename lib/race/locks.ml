(* The Y001/Y002/Y003 walker.

   An abstract interpretation of each function body threading two
   pieces of state: the list of locks held (with the textual
   fingerprint of the lock expression, so [Vfs.lock v] pairs with
   [Vfs.unlock v]) and, for Y002, the set of top-level mutables read
   since the last yield. Control flow is joined at if/match/try; a
   branch that ends in raise or a no-return call (crash park) is
   excluded from the join, so deliberate leak-on-crash paths do not
   fire Y003.

   Lock tokens come in two kinds. Scoped tokens ([Vfs.with_lock],
   [Mutex.with_lock], [Locked.run], [Stripe.with_row]) are pushed
   around the closure argument and popped structurally — the helper
   releases on every path by construction, so they can never leak.
   Manual tokens ([Vfs.lock]/[Vfs.unlock] pairs and the conditional
   [Stripe.lock_row]) must balance on every live path: an imbalanced
   join, a raise while held, or a fall-through function end is Y003.

   Exception edges are modelled by recording the walker state at every
   site that can raise (ordinary calls and explicit raises — lock
   idiom calls are taken not to raise, their failure modes being
   assertion bugs). A try handler or a [match ... with exception]
   case is entered with the union of the raise states its scrutinee
   actually produced, not the worst-case pre-state, so the repo's
   release-then-reraise shape ([try work with exn -> unlock; raise
   exn]) does not flag the outer handler. A catch-all handler stops
   the recorded states from propagating outward. *)

open Parsetree
module Cg = Callgraph
module Diagnostic = Nfsg_lint.Diagnostic

type token = { family : string; fp : string; line : int; scoped : bool }

type st = {
  held : token list;  (** innermost first *)
  pend : (string * int * (string * int) option) list;
      (** mutable name, read line, crossing yield (display, line) if any *)
}

type wctx = {
  t : Cg.t;
  file : Cg.file;
  mutables : string list;
  node_key : string;
  diags : Diagnostic.t list ref;
  mutable raises : (st * Location.t) list;
      (** states at raise-capable sites that escape the innermost handler scope *)
}

let line (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let diag ctx ~rule (loc : Location.t) message =
  let l = line loc in
  let col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol in
  ctx.diags :=
    Diagnostic.make ~rule ~severity:Diagnostic.Error ~file:ctx.file.f_rel ~line:l ~col message
    :: !(ctx.diags)

let show_fp fp = if fp = "" then "_" else fp

let normalize s =
  String.map (function '\n' | '\t' -> ' ' | c -> c) s
  |> String.split_on_char ' '
  |> List.filter (fun w -> w <> "")
  |> String.concat " "

(* Identity of the lock an idiom call operates on: the printed form of
   its unlabelled non-function arguments. [Vfs.lock v] and
   [Vfs.unlock v] both yield "v"; [lock_row t ~gen row] and
   [unlock_row t row] both yield "t row". *)
let fingerprint args =
  args
  |> List.filter_map (fun (lbl, a) ->
         match lbl with
         | Asttypes.Nolabel when not (Cg.is_fn a) ->
             Some (normalize (Pprintast.string_of_expression a))
         | _ -> None)
  |> String.concat " "

let remove_first pred held =
  let rec go acc = function
    | [] -> None
    | tok :: rest when pred tok -> Some (List.rev_append acc rest)
    | tok :: rest -> go (tok :: acc) rest
  in
  go [] held

(* A release call pops the matching manual token: exact fingerprint
   first, then any manual token of the family. Scoped tokens are only
   popped structurally. *)
let release_tok st family fp =
  match remove_first (fun tk -> (not tk.scoped) && tk.family = family && tk.fp = fp) st.held with
  | Some held -> { st with held }
  | None -> (
      match remove_first (fun tk -> (not tk.scoped) && tk.family = family) st.held with
      | Some held -> { st with held }
      | None -> st)

let note_read st name l =
  if List.exists (fun (n, _, _) -> n = name) st.pend then st
  else { st with pend = (name, l, None) :: st.pend }

let clear_read st name = { st with pend = List.filter (fun (n, _, _) -> n <> name) st.pend }

(* A yield with no lock held: every pending read is now stale. *)
let cross_pend st ~display ~yline =
  if st.held <> [] then st
  else
    {
      st with
      pend =
        List.map
          (fun (n, rl, y) -> match y with Some _ -> (n, rl, y) | None -> (n, rl, Some (display, yline)))
          st.pend;
    }

let merge_pend pends =
  List.fold_left
    (fun acc (name, rl, y) ->
      match List.partition (fun (n, _, _) -> n = name) acc with
      | [], _ -> (name, rl, y) :: acc
      | (_, _, Some _) :: _, _ -> acc
      | (_, _, None) :: _, rest -> if y = None then acc else (name, rl, y) :: rest)
    [] (List.concat pends)

let record_raise ctx st loc = ctx.raises <- (st, loc) :: ctx.raises

(* Primitives that cannot raise. Holding a manual lock across these is
   no leak hazard; treating them as raise-capable would turn every
   open-coded [lock; x := e; unlock] pair into a false Y003. Division
   and [mod] are deliberately absent (Division_by_zero). *)
let nonraising_prims =
  [
    ":="; "!"; "incr"; "decr"; "not"; "ignore"; "ref"; "fst"; "snd"; "+"; "-"; "*"; "+.";
    "-."; "*."; "/."; "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "&&"; "||"; "@"; "^";
    "min"; "max"; "abs"; "succ"; "pred"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
  ]

let is_nonraising raw =
  match raw with Cg.Rpath [ f ] -> List.mem f nonraising_prims | _ -> false

(* Union of the raise states escaping a scrutinee: a token held at any
   raising site must be assumed held in the handler. Falls back to the
   pre-state when nothing in the scrutinee can raise. *)
let union_states pre = function
  | [] -> pre
  | states ->
      {
        held = List.sort_uniq compare (List.concat_map (fun (s, _) -> s.held) states);
        pend = merge_pend (List.map (fun (s, _) -> s.pend) states);
      }

let rec pat_catches_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_exception p | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_catches_all p
  | Ppat_or (a, b) -> pat_catches_all a || pat_catches_all b
  | _ -> false

let case_catches_all c = c.pc_guard = None && pat_catches_all c.pc_lhs

(* Join the live (non-terminal) branch states. A manual token missing
   from some live branch is a leak: Y003 at its acquire site. *)
let join ctx entry outs =
  let live = List.filter (fun (_, term) -> not term) outs in
  match live with
  | [] -> (entry, true)
  | (s0, _) :: rest ->
      let held =
        List.filter (fun tok -> List.for_all (fun (s, _) -> List.mem tok s.held) rest) s0.held
      in
      let leaked =
        List.concat_map
          (fun (s, _) -> List.filter (fun tok -> (not tok.scoped) && not (List.mem tok held)) s.held)
          live
        |> List.sort_uniq compare
      in
      List.iter
        (fun tok ->
          let loc =
            {
              Location.none with
              loc_start = { Lexing.dummy_pos with pos_lnum = tok.line; pos_cnum = 0; pos_bol = 0 };
            }
          in
          diag ctx ~rule:"Y003" loc
            (Printf.sprintf "the %s lock (%s) acquired here is not released on every path"
               tok.family (show_fp tok.fp)))
        leaked;
      let pend = merge_pend (List.map (fun (s, _) -> s.pend) live) in
      ({ held; pend }, false)

let is_raise_path = function
  | Cg.Rpath [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] -> true
  | _ -> false

let rec walk ctx env st e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Cg.strip_wrappers (Cg.flatten txt) with
      | [ x ] when List.mem x ctx.mutables -> (note_read st x (line e.pexp_loc), false)
      | _ -> (st, false))
  | Pexp_constant _ | Pexp_unreachable | Pexp_extension _ -> (st, false)
  (* Lambdas met outside application-argument position are deferred
     nodes, walked separately with an empty lock state. *)
  | Pexp_fun _ | Pexp_newtype _ | Pexp_function _ -> (st, false)
  | Pexp_let (_, vbs, body) ->
      let env, st =
        List.fold_left
          (fun (env, st) vb ->
            match (Cg.binding_name vb, Cg.is_fn vb.pvb_expr) with
            | Some name, true -> ((name, ctx.node_key ^ "." ^ name) :: env, st)
            | _ ->
                let st, _ = walk ctx env st vb.pvb_expr in
                (env, st))
          (env, st) vbs
      in
      walk ctx env st body
  | Pexp_apply (fn, args) -> walk_apply ctx env st e.pexp_loc fn args
  | Pexp_match (scrut, cases) ->
      let exn_cases, val_cases =
        List.partition
          (fun c -> match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
          cases
      in
      let saved = ctx.raises in
      if exn_cases <> [] then ctx.raises <- [];
      let st_scrut, scrut_term = walk ctx env st scrut in
      let collected = if exn_cases <> [] then ctx.raises else [] in
      if exn_cases <> [] then begin
        ctx.raises <- saved;
        (* exceptions the cases do not match keep escaping *)
        if not (List.exists case_catches_all exn_cases) then
          ctx.raises <- collected @ ctx.raises
      end;
      let exn_entry = union_states st collected in
      let walk_case entry c =
        let entry = match c.pc_guard with Some g -> fst (walk ctx env entry g) | None -> entry in
        walk ctx env entry c.pc_rhs
      in
      let exn_outs = List.map (walk_case exn_entry) exn_cases in
      if scrut_term then
        if exn_outs = [] then (st_scrut, true) else join ctx st exn_outs
      else join ctx st (List.map (walk_case st_scrut) val_cases @ exn_outs)
  | Pexp_try (body, cases) ->
      let saved = ctx.raises in
      ctx.raises <- [];
      let out_body = walk ctx env st body in
      let collected = ctx.raises in
      ctx.raises <- saved;
      if not (List.exists case_catches_all cases) then ctx.raises <- collected @ ctx.raises;
      let entry0 = union_states st collected in
      let outs =
        out_body
        :: List.map
             (fun c ->
               let entry =
                 match c.pc_guard with Some g -> fst (walk ctx env entry0 g) | None -> entry0
               in
               walk ctx env entry c.pc_rhs)
             cases
      in
      join ctx st outs
  | Pexp_ifthenelse (cond, then_, else_) ->
      let shape = cond_acquire_shape ctx env st cond in
      let st_c, tok =
        match shape with
        | Some (negated, st_c, tok) -> (st_c, Some (negated, tok))
        | None -> (fst (walk ctx env st cond), None)
      in
      let entry_then, entry_else =
        match tok with
        | Some (false, tok) -> ({ st_c with held = tok :: st_c.held }, st_c)
        | Some (true, tok) -> (st_c, { st_c with held = tok :: st_c.held })
        | None -> (st_c, st_c)
      in
      let out_t = walk ctx env entry_then then_ in
      let out_e =
        match else_ with Some e -> walk ctx env entry_else e | None -> (entry_else, false)
      in
      join ctx st_c [ out_t; out_e ]
  | Pexp_sequence (a, b) ->
      let st, ta = walk ctx env st a in
      if ta then (st, true) else walk ctx env st b
  | Pexp_while (c, body) ->
      let st_c, _ = walk ctx env st c in
      let out_body = walk ctx env st_c body in
      join ctx st_c [ (st_c, false); out_body ]
  | Pexp_for (_, a, b, _, body) ->
      let st, _ = walk ctx env st a in
      let st, _ = walk ctx env st b in
      let out_body = walk ctx env st body in
      join ctx st [ (st, false); out_body ]
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> (fst (walk ctx env st a), false) | None -> (st, false))
  | Pexp_tuple es | Pexp_array es ->
      (List.fold_left (fun st e -> fst (walk ctx env st e)) st es, false)
  | Pexp_field (obj, _) -> (fst (walk ctx env st obj), false)
  | Pexp_setfield (a, _, b) ->
      let st, _ = walk ctx env st a in
      (fst (walk ctx env st b), false)
  | Pexp_record (fields, base) ->
      let st =
        match base with Some b -> fst (walk ctx env st b) | None -> st
      in
      ( List.fold_left
          (fun st (_, v) -> if Cg.is_fn v then st else fst (walk ctx env st v))
          st fields,
        false )
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
    ->
      record_raise ctx st e.pexp_loc;
      (st, true)
  | Pexp_assert a ->
      let st = fst (walk ctx env st a) in
      record_raise ctx st e.pexp_loc;
      (st, false)
  | Pexp_constraint (a, _)
  | Pexp_coerce (a, _, _)
  | Pexp_lazy a
  | Pexp_open (_, a)
  | Pexp_letexception (_, a)
  | Pexp_letmodule (_, _, a)
  | Pexp_poly (a, _) ->
      walk ctx env st a
  | _ ->
      (List.fold_left (fun st c -> fst (walk ctx env st c)) st (Cg.direct_children e), false)

(* [if lock_row t ~gen row then ... ] / [if not (lock_row ...) then ...]:
   the lock is held only in the success branch. *)
and cond_acquire_shape ctx env st cond =
  let of_apply negated fn args loc =
    match Cg.rawcallee_of env fn with
    | Some raw -> (
        match Cg.raw_pair ctx.file raw with
        | Some pair -> (
            match Cg.assoc2 ctx.t.Cg.config.Cg.cond_acquire_locks pair with
            | Some family ->
                let s = walk_args ctx env st args ~deferred:false in
                let s = cross_pend s ~display:(family ^ " lock acquire") ~yline:(line loc) in
                Some
                  (negated, s, { family; fp = fingerprint args; line = line loc; scoped = false })
            | None -> None)
        | None -> None)
    | None -> None
  in
  match cond.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "not"; _ }; _ }, [ (_, inner) ])
    -> (
      match inner.pexp_desc with
      | Pexp_apply (fn, args) -> of_apply true fn args inner.pexp_loc
      | _ -> None)
  | Pexp_apply (fn, args) -> of_apply false fn args cond.pexp_loc
  | _ -> None

and walk_args ctx env st args ~deferred =
  List.fold_left
    (fun st (_, a) ->
      if Cg.is_fn a then
        if deferred then st
        else
          (* Inlined closure argument: List.iter & co run it now, so
             its lock operations and yields belong to the caller. *)
          walk_lambda_body ctx env st a
      else fst (walk ctx env st a))
    st args

and walk_lambda_body ctx env st lam =
  match (Cg.unwrap_fun lam).pexp_desc with
  | Pexp_function cases ->
      let outs = List.map (fun c -> walk ctx env st c.pc_rhs) cases in
      fst (join ctx st outs)
  | _ -> fst (walk ctx env st (Cg.unwrap_fun lam))

and walk_apply ctx env st loc fn args =
  match (fn.pexp_desc, args) with
  | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ (_, a); (_, f) ]
    when Cg.rawcallee_of env f <> None ->
      walk_apply ctx env st loc f [ (Asttypes.Nolabel, a) ]
  | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, f); (_, a) ]
    when Cg.rawcallee_of env f <> None ->
      walk_apply ctx env st loc f [ (Asttypes.Nolabel, a) ]
  | _ -> (
      let st =
        match fn.pexp_desc with
        | Pexp_field (obj, _) -> fst (walk ctx env st obj)
        | _ -> st
      in
      match Cg.rawcallee_of env fn with
      | None ->
          let st, _ = walk ctx env st fn in
          let st = walk_args ctx env st args ~deferred:false in
          record_raise ctx st loc;
          (st, false)
      | Some raw when is_raise_path raw ->
          let st = walk_args ctx env st args ~deferred:false in
          record_raise ctx st loc;
          (st, true)
      | Some raw -> (
          let cfg = ctx.t.Cg.config in
          let pair = Cg.raw_pair ctx.file raw in
          let lookup table = match pair with None -> None | Some p -> Cg.assoc2 table p in
          let memtab table = match pair with None -> false | Some p -> Cg.mem2 table p in
          match lookup cfg.Cg.scoped_locks with
          | Some family -> walk_scoped ctx env st loc args family
          | None -> (
              match
                match lookup cfg.Cg.acquire_locks with
                | Some f -> Some f
                | None -> lookup cfg.Cg.cond_acquire_locks
              with
              | Some family ->
                  let st = walk_args ctx env st args ~deferred:false in
                  let st = cross_pend st ~display:(family ^ " lock acquire") ~yline:(line loc) in
                  ( {
                      st with
                      held =
                        { family; fp = fingerprint args; line = line loc; scoped = false }
                        :: st.held;
                    },
                    false )
              | None -> (
                  match lookup cfg.Cg.release_locks with
                  | Some family ->
                      let st = walk_args ctx env st args ~deferred:false in
                      (release_tok st family (fingerprint args), false)
                  | None ->
                      if memtab cfg.Cg.noreturn then begin
                        let st = walk_args ctx env st args ~deferred:false in
                        (st, true)
                      end
                      else begin
                        let deferred = memtab cfg.Cg.defer_sinks in
                        let st = walk_args ctx env st args ~deferred in
                        (* function arguments passed by name to a
                           higher-order callee may run inside it *)
                        if (not deferred) && st.held <> [] then
                          List.iter
                            (fun (_, a) ->
                              match a.pexp_desc with
                              | Pexp_ident _ -> (
                                  match Cg.rawcallee_of env a with
                                  | Some r ->
                                      let c = Cg.resolve ctx.t ctx.file r in
                                      if Cg.callee_eff ctx.t c = Cg.Park then
                                        emit_y001 ctx a.pexp_loc st c
                                  | None -> ())
                              | _ -> ())
                            args;
                        let callee = Cg.resolve ctx.t ctx.file raw in
                        let eff = Cg.callee_eff ctx.t callee in
                        let st =
                          if eff <> Cg.Pure then
                            cross_pend st
                              ~display:(Cg.raw_display ctx.file.Cg.f_mod raw)
                              ~yline:(line loc)
                          else st
                        in
                        if eff = Cg.Park && st.held <> [] then emit_y001 ctx loc st callee;
                        if not (is_nonraising raw) then record_raise ctx st loc;
                        let st = handle_write ctx st loc raw args in
                        (st, false)
                      end))))

and emit_y001 ctx loc st callee =
  match st.held with
  | [] -> ()
  | tok :: _ ->
      diag ctx ~rule:"Y001" loc
        (Printf.sprintf
           "may-yield call while the %s lock (%s, acquired at line %d) is held; yield chain: %s"
           tok.family (show_fp tok.fp) tok.line
           (Cg.chain_of_callee ctx.t callee))

and walk_scoped ctx env st loc args family =
  let st = walk_args_nonfn ctx env st args in
  let fp = fingerprint args in
  let st = cross_pend st ~display:(family ^ " lock acquire") ~yline:(line loc) in
  let tok = { family; fp; line = line loc; scoped = true } in
  let entry = { st with held = tok :: st.held } in
  let raises_before = ctx.raises in
  let fn_args = List.filter (fun (_, a) -> Cg.is_fn a) args in
  let st' =
    match fn_args with
    | [] ->
        (* closure passed by name: charge its effect under the lock *)
        List.iter
          (fun (_, a) ->
            match a.pexp_desc with
            | Pexp_ident _ -> (
                match Cg.rawcallee_of env a with
                | Some r ->
                    let c = Cg.resolve ctx.t ctx.file r in
                    if Cg.callee_eff ctx.t c = Cg.Park then emit_y001 ctx a.pexp_loc entry c
                | None -> ())
            | _ -> ())
          args;
        entry
    | lams -> List.fold_left (fun st (_, lam) -> walk_lambda_body ctx env st lam) entry lams
  in
  (* The helper releases on the exception path too: scrub the token
     from raise states recorded inside the closure. *)
  let rec scrub rs =
    if rs == raises_before then rs
    else
      match rs with
      | [] -> []
      | (s, l) :: rest ->
          ({ s with held = List.filter (fun tk -> tk <> tok) s.held }, l) :: scrub rest
  in
  ctx.raises <- scrub ctx.raises;
  ( { st' with
      held =
        (match remove_first (fun tk -> tk == tok) st'.held with
        | Some held -> held
        | None -> st'.held);
    },
    false )

and walk_args_nonfn ctx env st args =
  List.fold_left (fun st (_, a) -> if Cg.is_fn a then st else fst (walk ctx env st a)) st args

(* Y002: a write to a top-level mutable whose pending read crossed a
   yield, with no lock held, is a torn read-modify-write. *)
and handle_write ctx st loc raw args =
  let check_and_clear st name =
    (match List.find_opt (fun (n, _, _) -> n = name) st.pend with
    | Some (_, rl, Some (ydisp, yline)) when st.held = [] ->
        diag ctx ~rule:"Y002" loc
          (Printf.sprintf
             "torn read-modify-write of top-level mutable '%s': read at line %d crosses a \
              may-yield call (%s, line %d) before this write, with no lock held"
             name rl ydisp yline)
    | _ -> ());
    clear_read st name
  in
  let ident_arg a =
    match a.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } when List.mem x ctx.mutables -> Some x
    | _ -> None
  in
  match (raw, args) with
  | Cg.Rpath [ ":=" ], (_, lhs) :: _ -> (
      match ident_arg lhs with Some x -> check_and_clear st x | None -> st)
  | Cg.Rpath [ ("incr" | "decr") ], [ (_, a) ] -> (
      match ident_arg a with Some x -> check_and_clear st x | None -> st)
  | Cg.Rpath [ "Hashtbl"; ("replace" | "add" | "remove" | "reset" | "clear") ], (_, h) :: _
    -> (
      match ident_arg h with Some x -> check_and_clear st x | None -> st)
  | _ -> st

(* {1 Per-node entry} *)

let idiom_node t node =
  match Cg.key_pair node.Cg.key with
  | None -> false
  | Some pair ->
      let cfg = t.Cg.config in
      let in_tab tab = List.mem_assoc pair tab in
      in_tab cfg.Cg.scoped_locks || in_tab cfg.Cg.acquire_locks
      || in_tab cfg.Cg.release_locks
      || in_tab cfg.Cg.cond_acquire_locks
      || List.mem pair cfg.Cg.noreturn

let walk_node t file diags node =
  let ctx =
    {
      t;
      file;
      mutables = Cg.file_mutables file;
      node_key = node.Cg.key;
      diags;
      raises = [];
    }
  in
  let entry = { held = []; pend = [] } in
  let out, terminal =
    match node.Cg.body.pexp_desc with
    | Pexp_function cases ->
        let outs = List.map (fun c -> walk ctx node.Cg.env entry c.pc_rhs) cases in
        join ctx entry outs
    | _ -> walk ctx node.Cg.env entry node.Cg.body
  in
  if not terminal then
    List.iter
      (fun tok ->
        if not tok.scoped then
          let loc =
            {
              Location.none with
              loc_start = { Lexing.dummy_pos with pos_lnum = tok.line; pos_cnum = 0; pos_bol = 0 };
            }
          in
          diag ctx ~rule:"Y003" loc
            (Printf.sprintf "the %s lock (%s) acquired here is not released on every path"
               tok.family (show_fp tok.fp)))
      out.held;
  (* Raise states that escaped every handler in the function: a manual
     token held at such a site leaks if that site raises. One report
     per token, at the earliest raising site. *)
  let reported = ref [] in
  List.iter
    (fun (s, loc) ->
      List.iter
        (fun tok ->
          if (not tok.scoped) && not (List.mem tok !reported) then begin
            reported := tok :: !reported;
            diag ctx ~rule:"Y003" loc
              (Printf.sprintf
                 "the %s lock (%s, acquired at line %d) is not released if this raises"
                 tok.family (show_fp tok.fp) tok.line)
          end)
        s.held)
    (List.rev ctx.raises)

let check t file =
  let diags = ref [] in
  List.iter
    (fun node -> if not (idiom_node t node) then walk_node t file diags node)
    file.Cg.f_nodes;
  List.sort_uniq compare !diags
