type 'a state = Empty of ('a -> unit) list | Filled of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let fill iv v =
  match iv.state with
  | Filled _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
      iv.state <- Filled v;
      (* Wake in arrival order. *)
      List.iter (fun wake -> wake v) (List.rev waiters)

let read iv =
  match iv.state with
  | Filled v -> v
  | Empty _ ->
      Engine.suspend (fun wake ->
          match iv.state with
          | Filled v -> wake v
          | Empty waiters -> iv.state <- Empty (wake :: waiters))

let upon iv f =
  match iv.state with
  | Filled v -> f v
  | Empty waiters -> iv.state <- Empty (f :: waiters)

let peek iv = match iv.state with Filled v -> Some v | Empty _ -> None
let is_filled iv = match iv.state with Filled _ -> true | Empty _ -> false
