(** Scoped critical sections.

    [run ~acquire ~release f] runs [acquire ()], then [f ()], and
    guarantees [release ()] runs exactly once whether [f] returns or
    raises. All [with_lock]-style wrappers in the tree are built on
    this single helper so the release-on-every-path discipline that
    nfsrace's Y003 rule checks has one implementation. *)

val run : acquire:(unit -> unit) -> release:(unit -> unit) -> (unit -> 'a) -> 'a
