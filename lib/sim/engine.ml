open Effect
open Effect.Deep

(* Events are either plain callbacks (spawn bodies, [schedule]d
   functions, timers) or typed process resumptions. Carrying the
   continuation in an inline record instead of wrapping it in a
   closure keeps the Delay/Suspend/Yield fast path down to one small
   allocation per event; the run loop below is the single place that
   restores [current_name] and the suspended count, rather than every
   handler building a closure to do it. *)
type ev =
  | Thunk of (unit -> unit)
  | Resume : {
      name : string;
      k : ('a, unit) continuation;
      v : 'a;
      parked : bool;  (** counted in [suspended] (Delay/Suspend, not Yield) *)
    }
      -> ev

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  events : ev Heap.t;
  mutable suspended : int;
  mutable processed : int;
}

exception Not_in_process

type _ Effect.t +=
  | Delay : Time.t -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Yield : unit Effect.t

let current_name = ref "?"
let self_name () = !current_name
let () = Reset.register ~name:"engine.current_name" (fun () -> current_name := "?")

let create () =
  { clock = Time.zero; seq = 0; events = Heap.create (); suspended = 0; processed = 0 }

let now t = t.clock
let suspended_count t = t.suspended
let events_processed t = t.processed

let push_at t time ev =
  t.seq <- t.seq + 1;
  Heap.add t.events ~key:time ~seq:t.seq ev

let push t ev = push_at t t.clock ev

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  push_at t (t.clock + after) (Thunk f)

type timer = { mutable cancelled : bool; mutable fired : bool }

let timer t ~after f =
  let tm = { cancelled = false; fired = false } in
  schedule t ~after (fun () ->
      if not tm.cancelled then begin
        tm.fired <- true;
        f ()
      end);
  tm

let cancel tm =
  if tm.fired || tm.cancelled then false
  else begin
    tm.cancelled <- true;
    true
  end

let spawn t ?(name = "proc") f =
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if d < 0 then invalid_arg "Engine.delay: negative delay";
                  t.suspended <- t.suspended + 1;
                  push_at t (t.clock + d) (Resume { name; k; v = (); parked = true }))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.suspended <- t.suspended + 1;
                  let woken = ref false in
                  let wake v =
                    if !woken then invalid_arg "Engine.suspend: woken twice";
                    woken := true;
                    push t (Resume { name; k; v; parked = true })
                  in
                  register wake)
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  push t (Resume { name; k; v = (); parked = false }))
          | _ -> None);
    }
  in
  push t
    (Thunk
       (fun () ->
         current_name := name;
         match_with f () handler))

let run ?until t =
  let continue_run () =
    (not (Heap.is_empty t.events))
    &&
    match until with Some u -> Heap.min_key t.events <= u | None -> true
  in
  while continue_run () do
    let key = Heap.min_key t.events in
    let ev = Heap.pop_min t.events in
    t.clock <- key;
    t.processed <- t.processed + 1;
    match ev with
    | Thunk f -> f ()
    | Resume { name; k; v; parked } ->
        if parked then t.suspended <- t.suspended - 1;
        current_name := name;
        continue k v
  done;
  match until with Some u when t.clock < u -> t.clock <- u | Some _ | None -> ()

let not_in_process_guard (f : unit -> 'a) : 'a =
  try f () with Effect.Unhandled _ -> raise Not_in_process

let delay d = not_in_process_guard (fun () -> perform (Delay d))
let suspend register = not_in_process_guard (fun () -> perform (Suspend register))
let yield () = not_in_process_guard (fun () -> perform Yield)

let yield_primitives =
  [ ("Engine", "suspend", `Park); ("Engine", "delay", `Delay); ("Engine", "yield", `Delay) ]
