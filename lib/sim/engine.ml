open Effect
open Effect.Deep

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  events : (unit -> unit) Heap.t;
  mutable suspended : int;
}

exception Not_in_process

type _ Effect.t +=
  | Delay : Time.t -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Yield : unit Effect.t

let current_name = ref "?"
let self_name () = !current_name
let () = Reset.register ~name:"engine.current_name" (fun () -> current_name := "?")

let create () = { clock = Time.zero; seq = 0; events = Heap.create (); suspended = 0 }
let now t = t.clock
let suspended_count t = t.suspended

let push_at t time f =
  t.seq <- t.seq + 1;
  Heap.add t.events ~key:time ~seq:t.seq f

let push t f = push_at t t.clock f

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  push_at t (t.clock + after) f

type timer = { mutable cancelled : bool; mutable fired : bool }

let timer t ~after f =
  let tm = { cancelled = false; fired = false } in
  schedule t ~after (fun () ->
      if not tm.cancelled then begin
        tm.fired <- true;
        f ()
      end);
  tm

let cancel tm =
  if tm.fired || tm.cancelled then false
  else begin
    tm.cancelled <- true;
    true
  end

let spawn t ?(name = "proc") f =
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if d < 0 then invalid_arg "Engine.delay: negative delay";
                  t.suspended <- t.suspended + 1;
                  push_at t (t.clock + d) (fun () ->
                      t.suspended <- t.suspended - 1;
                      current_name := name;
                      continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.suspended <- t.suspended + 1;
                  let woken = ref false in
                  let wake v =
                    if !woken then invalid_arg "Engine.suspend: woken twice";
                    woken := true;
                    push t (fun () ->
                        t.suspended <- t.suspended - 1;
                        current_name := name;
                        continue k v)
                  in
                  register wake)
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  push t (fun () ->
                      current_name := name;
                      continue k ()))
          | _ -> None);
    }
  in
  push t (fun () ->
      current_name := name;
      match_with f () handler)

let run ?until t =
  let continue_run () =
    match Heap.peek t.events with
    | None -> false
    | Some (key, _, _) -> ( match until with Some u -> key <= u | None -> true)
  in
  while continue_run () do
    match Heap.pop t.events with
    | None -> assert false
    | Some (key, _, f) ->
        t.clock <- key;
        f ()
  done;
  match until with Some u when t.clock < u -> t.clock <- u | Some _ | None -> ()

let not_in_process_guard (f : unit -> 'a) : 'a =
  try f () with Effect.Unhandled _ -> raise Not_in_process

let delay d = not_in_process_guard (fun () -> perform (Delay d))
let suspend register = not_in_process_guard (fun () -> perform (Suspend register))
let yield () = not_in_process_guard (fun () -> perform Yield)
