(** Write-once synchronisation variable ("promise").

    Processes block in {!read} until some party calls {!fill}. Used for
    request/response rendezvous (e.g. an RPC reply) and as a join point
    for spawned processes. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** [fill iv v] resolves the ivar and wakes all readers. Raises
    [Invalid_argument] if already filled. *)

val read : 'a t -> 'a
(** Blocks the calling process until filled; returns immediately if
    already filled. *)

val upon : 'a t -> ('a -> unit) -> unit
(** [upon iv f] runs [f v] when the ivar is filled with [v] —
    immediately if it already is. Unlike {!read} this does not block
    and may be called outside a process; [f] runs in whatever context
    calls {!fill} and must not block. Completion chaining for device
    request pipelines ({!Nfsg_disk.Io}) without spawning a process per
    link. *)

val peek : 'a t -> 'a option
(** Non-blocking view of the value. *)

val is_filled : 'a t -> bool
