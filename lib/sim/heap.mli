(** Array-based binary min-heap used as the simulator event queue.

    Entries are ordered by an integer key with an integer sequence
    number as tie-breaker, so two entries with equal keys pop in
    insertion order. This FIFO tie-break is what makes simultaneous
    simulation events deterministic. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val size : 'a t -> int
(** Number of entries currently in the heap. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> seq:int -> 'a -> unit
(** [add h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val peek : 'a t -> (int * int * 'a) option
(** [peek h] is the minimum entry as [(key, seq, value)] without
    removing it, or [None] if the heap is empty. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop h] removes and returns the minimum entry. *)

val min_key : 'a t -> int
(** [min_key h] is the key of the minimum entry without removing it.
    Allocation-free. Raises [Invalid_argument] on an empty heap. *)

val pop_min : 'a t -> 'a
(** [pop_min h] removes the minimum entry and returns its value alone.
    Allocation-free. Raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit
(** Remove every entry. Costs O(current size), not O(capacity). *)
