(** Registry of reset hooks for process-global mutable state.

    Globals that survive [Server.crash]/[restart] by design register a
    hook so test drivers can restore a pristine process between
    independent simulated worlds; the S001 lint rule requires every
    top-level mutable in lib/ to either register here or carry a
    justified suppression. *)

val register : name:string -> (unit -> unit) -> unit
(** [register ~name f] adds hook [f]. Names must be unique
    ("module.binding" by convention); a duplicate raises
    [Invalid_argument]. *)

val names : unit -> string list
(** Registered hook names, sorted. *)

val run_all : unit -> unit
(** Run every hook, in name order. Only call between independent
    simulated worlds: hooks reset identity counters (boot verifiers,
    volume generations) whose uniqueness live worlds rely on. *)
