(* Flat-array binary min-heap: keys and seqs live in unboxed int
   arrays and payloads in a parallel ['a array], so add/pop allocate
   nothing once capacity is reached and sifting never matches on an
   option. [vals] stays physically empty until the first [add] hands
   us a value to use as array filler; thereafter freed slots are
   overwritten with [vals.(0)], so the heap retains at most one
   already-popped payload (the one parked in slot 0 of an emptied
   heap). *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let initial_capacity = 16

let create () =
  {
    keys = Array.make initial_capacity 0;
    seqs = Array.make initial_capacity 0;
    vals = [||];
    len = 0;
  }

let size h = h.len
let is_empty h = h.len = 0

let less h i j =
  h.keys.(i) < h.keys.(j) || (h.keys.(i) = h.keys.(j) && h.seqs.(i) < h.seqs.(j))

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let grow h =
  let cap = 2 * Array.length h.keys in
  let keys = Array.make cap 0 in
  Array.blit h.keys 0 keys 0 h.len;
  h.keys <- keys;
  let seqs = Array.make cap 0 in
  Array.blit h.seqs 0 seqs 0 h.len;
  h.seqs <- seqs;
  let vals = Array.make cap h.vals.(0) in
  Array.blit h.vals 0 vals 0 h.len;
  h.vals <- vals

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h l !smallest then smallest := l;
  if r < h.len && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h ~key ~seq v =
  if Array.length h.vals = 0 then h.vals <- Array.make (Array.length h.keys) v;
  if h.len = Array.length h.keys then grow h;
  h.keys.(h.len) <- key;
  h.seqs.(h.len) <- seq;
  h.vals.(h.len) <- v;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some (h.keys.(0), h.seqs.(0), h.vals.(0))

let min_key h =
  if h.len = 0 then invalid_arg "Heap.min_key: empty heap";
  h.keys.(0)

let pop_min h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let v = h.vals.(0) in
  h.len <- h.len - 1;
  let last = h.len in
  h.keys.(0) <- h.keys.(last);
  h.seqs.(0) <- h.seqs.(last);
  h.vals.(0) <- h.vals.(last);
  (* Drop the stale duplicate in the vacated slot so popped payloads
     are not kept alive; slot 0 keeps the moved (still live) value. *)
  h.vals.(last) <- h.vals.(0);
  if h.len > 0 then sift_down h 0;
  v

let pop h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) and seq = h.seqs.(0) in
    let v = pop_min h in
    Some (key, seq, v)
  end

let clear h =
  (* Only the live prefix needs scrubbing, not the whole capacity. *)
  if h.len > 0 then Array.fill h.vals 0 h.len h.vals.(0);
  h.len <- 0
