(** Discrete-event simulation engine with lightweight processes.

    The engine maintains a virtual clock and an event queue. Processes
    are ordinary OCaml functions run on top of effect handlers: inside
    a process, {!delay} suspends it for a span of virtual time and
    {!suspend} parks it until some other party wakes it. Events
    scheduled for the same instant run in schedule order, so a whole
    simulation is deterministic.

    {!delay}, {!suspend} and {!yield} may only be called from inside a
    process started with {!spawn} (directly or transitively); calling
    them elsewhere raises {!Not_in_process}. *)

type t
(** A simulation world: clock plus pending events. *)

exception Not_in_process
(** Raised when a blocking primitive is used outside of {!spawn}. *)

val create : unit -> t
(** A fresh world with the clock at {!Time.zero} and no events. *)

val now : t -> Time.t
(** Current virtual time. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] creates a process that starts running at the current
    instant (after already-queued events for this instant). An
    exception escaping [f] aborts the whole simulation: it propagates
    out of {!run}. *)

val schedule : t -> after:Time.t -> (unit -> unit) -> unit
(** [schedule t ~after f] runs callback [f] (not a process; it must not
    block) [after] nanoseconds from now. *)

type timer

val timer : t -> after:Time.t -> (unit -> unit) -> timer
(** Like {!schedule} but cancellable. *)

val cancel : timer -> bool
(** [cancel tm] prevents the timer from firing. Returns [false] if it
    already fired (or was already cancelled). *)

val run : ?until:Time.t -> t -> unit
(** [run t] executes events until the queue is empty, or until the
    clock would pass [until] (events at exactly [until] are executed,
    and the clock is left at [until]). Can be called repeatedly to
    resume a paused simulation. *)

val suspended_count : t -> int
(** Number of processes currently parked in {!suspend} or {!delay};
    useful to detect deadlocks in tests. *)

val events_processed : t -> int
(** Total events executed by {!run} over this world's lifetime.
    Divided by wall-clock elapsed time it yields the events/sec
    figure the bench suite tracks; it never affects simulation
    behaviour. *)

(** {1 Inside a process} *)

val delay : Time.t -> unit
(** Suspend the calling process for the given virtual duration. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process and calls
    [register wake]. Whoever calls [wake v] (exactly once) resumes the
    process at the instant of the call, with [suspend] returning [v].
    Waking the same suspension twice raises [Invalid_argument]. *)

val yield : unit -> unit
(** Re-queue the calling process behind other events at this instant. *)

val self_name : unit -> string
(** Name of the calling process ("?" outside of one). *)

val yield_primitives : (string * string * [ `Park | `Delay ]) list
(** The canonical list of blocking primitives, as (module, function,
    class) triples. [`Park] is an open-ended wait for another party
    ({!suspend}); [`Delay] completes after a bounded span of virtual
    time ({!delay}, {!yield}). The nfsrace static analysis seeds its
    transitive may-yield inference from this list, so a new primitive
    added here is picked up by the checker without touching it. *)
