type t = {
  name : string;
  mutable holder : string option;
  waiting : (unit -> unit) Queue.t;
}

let create ?(name = "mutex") () = { name; holder = None; waiting = Queue.create () }
let locked m = m.holder <> None
let holder m = m.holder
let contenders m = Queue.length m.waiting

let lock m =
  match m.holder with
  | None -> m.holder <- Some (Engine.self_name ())
  | Some _ ->
      Engine.suspend (fun wake -> Queue.add (fun () -> wake ()) m.waiting);
      (* The unlocker transferred ownership before waking us. *)
      m.holder <- Some (Engine.self_name ())

let try_lock m =
  match m.holder with
  | None ->
      m.holder <- Some (Engine.self_name ());
      true
  | Some _ -> false

let unlock m =
  (match m.holder with
  | None -> invalid_arg (m.name ^ ": unlock of a free mutex")
  | Some h ->
      if h <> Engine.self_name () then
        invalid_arg
          (Printf.sprintf "%s: unlock by %s but held by %s" m.name (Engine.self_name ()) h));
  match Queue.take_opt m.waiting with
  | None -> m.holder <- None
  | Some wake ->
      (* Keep the mutex formally held across the hand-off so a third
         process cannot barge in between unlock and wake-up. *)
      m.holder <- Some "<in transfer>";
      wake ()

let with_lock m f =
  Locked.run ~acquire:(fun () -> lock m) ~release:(fun () -> unlock m) f
