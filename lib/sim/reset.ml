(* Process-global mutable state is invisible to [Server.crash] and
   [restart]: it survives every simulated world built in the process.
   Each such global either registers a hook here (so tests and
   multi-world drivers can return the process to a pristine state
   between independent worlds) or carries an nfslint suppression
   explaining why it must persist. The S001 lint rule enforces the
   choice.

   [run_all] must only be called BETWEEN independent simulated worlds:
   hooks reset identity counters whose uniqueness live worlds rely
   on. *)

type hook = { name : string; run : unit -> unit }

(* nfslint: allow S001 this is the reset registry itself; a hook emptying it would unregister every other hook *)
let hooks : hook list ref = ref []

let register ~name run =
  if List.exists (fun h -> h.name = name) !hooks then
    invalid_arg ("Reset.register: duplicate hook " ^ name);
  hooks := { name; run } :: !hooks

let names () = List.sort compare (List.map (fun h -> h.name) !hooks)

(* Sorted by name, so the reset order never depends on module
   initialisation order. *)
let run_all () =
  List.iter (fun h -> h.run ()) (List.sort (fun a b -> compare a.name b.name) !hooks)
