(* The one place the lock-discipline lives: every scoped critical
   section in the tree funnels through [run], so releasing on the
   value path and on every exception path is implemented (and
   reviewed) exactly once. The nfsrace checker treats the wrappers
   built on top of this ([Mutex.with_lock], [Vfs.with_lock],
   [Stripe.with_row]) as its scoped-lock idiom. *)

let run ~acquire ~release f =
  acquire ();
  match f () with
  | v ->
      release ();
      v
  | exception e ->
      release ();
      raise e
