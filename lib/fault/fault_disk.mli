(** Deterministic disk fault injector.

    {!wrap} interposes on any {!Nfsg_disk.Device.t} — a raw disk, a
    stripe member, or the platter {e underneath} an NVRAM front (so the
    background flusher feels the faults too). Only the timed I/O path
    ([submit], and therefore the [read]/[write] shims over it) is
    guarded, per request: a faulted request is answered by the injector
    and never reaches the device, and a failure ahead of a barrier in a
    batch fails the barrier's dependents too (see {!Nfsg_disk.Io}).
    [flush], [crash]/[recover] and the instantaneous
    [stable_read]/[stable_write] test hooks pass through untouched, so
    recovery and assertions always see the truth.

    The one exception is {!fail_stop}: it models the spindle being
    {e gone} — every request errors immediately and even the stable
    paths raise — where the transient arms model a disk that is still
    a disk. Fail-stop is what a redundant array ({!Nfsg_disk.Stripe})
    is built to survive; {!revive} models plugging in a replacement
    (whose stale contents the array must then {!Nfsg_disk.Stripe.rebuild}).

    Three fault shapes, all driven by the simulation clock and a seeded
    RNG so a fault schedule replays bit-for-bit from the same seed:

    - {b transient errors}: {!fail_next} deterministically fails the
      next n transactions; {!error_window} fails each transaction in a
      time window with fixed probability. A failed transaction raises
      {!Nfsg_disk.Device.Io_error} in the calling process and performs
      no I/O.
    - {b degraded spindle}: {!slowdown_window} stretches each
      transaction's service time by a factor (the extra time is added
      after the real transaction completes).
    - {b hung requests}: {!hang_window} holds any transaction issued
      inside the window until the window closes — a controller reset,
      from the caller's point of view. *)

type t

val wrap : Nfsg_sim.Engine.t -> ?seed:int -> Nfsg_disk.Device.t -> t * Nfsg_disk.Device.t
(** [wrap eng dev] is [(injector, faulty_dev)]. [faulty_dev] behaves
    exactly like [dev] until faults are armed on [injector]. *)

(** {1 Arming faults} *)

val fail_next : ?n:int -> t -> unit
(** Fail the next [n] (default 1) read/write transactions with
    [Io_error]. Cumulative with pending arms. *)

val fail_tag : t -> int -> unit
(** Fail the request carrying this {!Nfsg_disk.Io} tag when it is
    submitted — surgical injection into one transfer of a batch. *)

val fail_class : ?n:int -> t -> Nfsg_disk.Io.class_ -> unit
(** Fail the next [n] (default 1) requests of the given class — e.g.
    hit only the NVRAM drain ([`Bg_drain]) or only gathered cluster
    flushes ([`Gather_flush]) while synchronous writes sail through. *)

val error_window : t -> from_:Nfsg_sim.Time.t -> until:Nfsg_sim.Time.t -> prob:float -> unit
(** During [\[from_, until)], each transaction fails independently with
    probability [prob]. Windows may overlap; the first (most recently
    armed) matching window decides. *)

val slowdown_window :
  t -> from_:Nfsg_sim.Time.t -> until:Nfsg_sim.Time.t -> factor:float -> unit
(** Transactions {e starting} inside the window take [factor] times
    their normal service time ([factor >= 1]). *)

val hang_window : t -> from_:Nfsg_sim.Time.t -> until:Nfsg_sim.Time.t -> unit
(** Transactions issued inside the window block until [until], then
    proceed normally. *)

val fail_stop : t -> unit
(** Whole-spindle loss, effective immediately and until {!revive}:
    every submitted request fails with [Io_error] and the stable paths
    raise. Distinct from the transient windows, which never guard
    stable ops. Idempotent while already stopped. *)

val revive : t -> unit
(** The replacement disk is in the cage: requests flow again. Platter
    contents are whatever the device held — stale until rebuilt. *)

val is_failed : t -> bool

val clear : t -> unit
(** Disarm everything: pending [fail_next] counts and all windows.
    Does not revive a fail-stopped spindle. *)

(** {1 Statistics} *)

val errors_injected : t -> int
val slowdowns : t -> int
val hangs : t -> int

val fail_stops : t -> int
(** Number of {!fail_stop} transitions (re-stopping while already
    stopped does not count). *)
