open Nfsg_sim
module Device = Nfsg_disk.Device
module Io = Nfsg_disk.Io

type window = { from_ : Time.t; until : Time.t }

let in_window w now = w.from_ <= now && now < w.until
let live w now = now < w.until

type t = {
  eng : Engine.t;
  rng : Rng.t;
  name : string;
  mutable fail_next : int;
  mutable fail_tags : int list;
  mutable fail_classes : (Io.class_ * int) list;
  mutable error_windows : (window * float) list;
  mutable slowdown_windows : (window * float) list;
  mutable hang_windows : window list;
  mutable errors_injected : int;
  mutable slowdowns : int;
  mutable hangs : int;
  mutable failed_stop : bool;
  mutable fail_stops : int;
}

let errors_injected t = t.errors_injected
let slowdowns t = t.slowdowns
let hangs t = t.hangs
let fail_stops t = t.fail_stops
let is_failed t = t.failed_stop

(* Fail-stop: the whole spindle is gone — every request errors
   immediately and even the stable paths refuse, unlike the transient
   arms, which model a disk that is still a disk. This is the fault an
   array driver is built to survive. *)
let fail_stop t =
  if not t.failed_stop then begin
    t.failed_stop <- true;
    t.fail_stops <- t.fail_stops + 1
  end

let revive t = t.failed_stop <- false

let fail_next ?(n = 1) t =
  if n < 0 then invalid_arg "Fault_disk.fail_next: need n >= 0";
  t.fail_next <- t.fail_next + n

let fail_tag t tag = t.fail_tags <- tag :: t.fail_tags

let fail_class ?(n = 1) t cls =
  if n < 0 then invalid_arg "Fault_disk.fail_class: need n >= 0";
  t.fail_classes <- (cls, n) :: t.fail_classes

let check_window ~from_ ~until =
  if until <= from_ then invalid_arg "Fault_disk: empty fault window"

let error_window t ~from_ ~until ~prob =
  check_window ~from_ ~until;
  if prob < 0.0 || prob > 1.0 then invalid_arg "Fault_disk.error_window: need 0 <= prob <= 1";
  t.error_windows <- ({ from_; until }, prob) :: t.error_windows

let slowdown_window t ~from_ ~until ~factor =
  check_window ~from_ ~until;
  if factor < 1.0 then invalid_arg "Fault_disk.slowdown_window: need factor >= 1";
  t.slowdown_windows <- ({ from_; until }, factor) :: t.slowdown_windows

let hang_window t ~from_ ~until =
  check_window ~from_ ~until;
  t.hang_windows <- { from_; until } :: t.hang_windows

let clear t =
  t.fail_next <- 0;
  t.fail_tags <- [];
  t.fail_classes <- [];
  t.error_windows <- [];
  t.slowdown_windows <- [];
  t.hang_windows <- []

(* Lazy pruning keeps the window lists from growing with history while
   never consulting the clock outside an operation. *)
let prune t now =
  t.error_windows <- List.filter (fun (w, _) -> live w now) t.error_windows;
  t.slowdown_windows <- List.filter (fun (w, _) -> live w now) t.slowdown_windows;
  t.hang_windows <- List.filter (fun w -> live w now) t.hang_windows

(* Should this particular request fail? Targeted arms (tag, class)
   take precedence, then the deterministic fail_next count, then the
   probabilistic error windows. *)
let should_fail t now (r : Io.req) =
  if List.mem r.Io.tag t.fail_tags then begin
    t.fail_tags <- List.filter (fun g -> g <> r.Io.tag) t.fail_tags;
    true
  end
  else
    match List.assoc_opt r.Io.class_ t.fail_classes with
    | Some n when n > 0 ->
        t.fail_classes <-
          List.map (fun (c, k) -> if c = r.Io.class_ then (c, k - 1) else (c, k)) t.fail_classes;
        true
    | _ ->
        if t.fail_next > 0 then begin
          t.fail_next <- t.fail_next - 1;
          true
        end
        else
          match List.find_opt (fun (w, _) -> in_window w now) t.error_windows with
          | Some (_, prob) -> Rng.bool t.rng prob
          | None -> false

let op_name (r : Io.req) = match r.Io.op with Io.Read -> "read" | Io.Write -> "write"

(* Interpose on a request so the degraded-spindle tax lands between the
   real completion and the issuer's: forward a twin, and when the twin
   completes, stretch the observed service time by (factor - 1). *)
let slow_twin t ~start ~factor (r : Io.req) =
  let inner = { r with Io.done_ = Ivar.create (); error = None } in
  Ivar.upon inner.Io.done_ (fun () ->
      let finish () =
        match inner.Io.error with Some e -> Io.fail r e | None -> Io.complete r
      in
      let elapsed = Engine.now t.eng - start in
      if elapsed > 0 then begin
        t.slowdowns <- t.slowdowns + 1;
        Engine.schedule t.eng
          ~after:(int_of_float (float_of_int elapsed *. (factor -. 1.0)))
          finish
      end
      else finish ());
  inner

(* Deliver a batch to the inner device, applying per-request faults.
   Hang holds the whole batch (order within it must survive) until the
   window closes. A failed request is answered here and never reaches
   the device; once a barrier passes with a failure ahead of it in
   this batch, everything behind the barrier fails too — the barrier
   ordered them because they depend on the failed data being stable. *)
let rec deliver t (dev : Device.t) items =
  if t.failed_stop then begin
    let e = Device.Io_error (t.name ^ ": fail-stopped") in
    List.iter
      (fun item -> match item with Io.Req _ -> Io.fail_item item e | Io.Barrier b -> Ivar.fill b.done_ ())
      items
  end
  else deliver_live t dev items

and deliver_live t (dev : Device.t) items =
  let now = Engine.now t.eng in
  prune t now;
  match List.find_opt (fun w -> in_window w now) t.hang_windows with
  | Some w ->
      t.hangs <- t.hangs + 1;
      Engine.schedule t.eng ~after:(w.until - now) (fun () ->
          (* A fresh process, not the timer callback: the inner submit
             may charge time (an NVRAM admission wait). *)
          Engine.spawn t.eng ~name:(t.name ^ "-delayed") (fun () -> deliver t dev items))
  | None ->
      let failed = ref None in
      let poisoned = ref None in
      let forward = ref [] in
      let slow = List.find_opt (fun (w, _) -> in_window w now) t.slowdown_windows in
      List.iter
        (fun item ->
          match (!poisoned, item) with
          | Some e, it -> Io.fail_item it e
          | None, Io.Barrier b ->
              (match !failed with
              | Some e ->
                  poisoned := Some e;
                  Ivar.fill b.done_ ()
              | None -> forward := item :: !forward)
          | None, Io.Req r ->
              if should_fail t now r then begin
                t.errors_injected <- t.errors_injected + 1;
                let e =
                  Device.Io_error (Printf.sprintf "%s: injected %s error" t.name (op_name r))
                in
                if !failed = None then failed := Some e;
                Io.fail r e
              end
              else
                let fwd =
                  match slow with
                  | Some (_, factor) -> Io.Req (slow_twin t ~start:now ~factor r)
                  | None -> item
                in
                forward := fwd :: !forward)
        items;
      match List.rev !forward with [] -> () | batch -> dev.Device.submit batch

let wrap eng ?(seed = 0xd15c) (dev : Device.t) =
  let t =
    {
      eng;
      rng = Rng.create seed;
      name = dev.Device.name ^ "+fault";
      fail_next = 0;
      fail_tags = [];
      fail_classes = [];
      error_windows = [];
      slowdown_windows = [];
      hang_windows = [];
      errors_injected = 0;
      slowdowns = 0;
      hangs = 0;
      failed_stop = false;
      fail_stops = 0;
    }
  in
  let submit items = deliver t dev items in
  let check_stop () =
    if t.failed_stop then raise (Device.Io_error (t.name ^ ": fail-stopped"))
  in
  let wrapped =
    {
      dev with
      Device.name = t.name;
      submit;
      read = (fun ~off ~len -> Io.blocking_read ~submit ~off ~len);
      write = (fun ~off data -> Io.blocking_write ~submit ~class_:`Sync_write ~off data);
      (* The transient arms never guard the stable paths — they model a
         disk that still works. Fail-stop is the spindle being gone, so
         here even stable ops refuse. *)
      stable_read =
        (fun ~off ~len ->
          check_stop ();
          dev.Device.stable_read ~off ~len);
      stable_write =
        (fun ~off data ->
          check_stop ();
          dev.Device.stable_write ~off data);
    }
  in
  (t, wrapped)
