open Nfsg_sim
module Device = Nfsg_disk.Device

type window = { from_ : Time.t; until : Time.t }

let in_window w now = w.from_ <= now && now < w.until
let live w now = now < w.until

type t = {
  eng : Engine.t;
  rng : Rng.t;
  name : string;
  mutable fail_next : int;
  mutable error_windows : (window * float) list;
  mutable slowdown_windows : (window * float) list;
  mutable hang_windows : window list;
  mutable errors_injected : int;
  mutable slowdowns : int;
  mutable hangs : int;
}

let errors_injected t = t.errors_injected
let slowdowns t = t.slowdowns
let hangs t = t.hangs

let fail_next ?(n = 1) t =
  if n < 0 then invalid_arg "Fault_disk.fail_next: need n >= 0";
  t.fail_next <- t.fail_next + n

let check_window ~from_ ~until =
  if until <= from_ then invalid_arg "Fault_disk: empty fault window"

let error_window t ~from_ ~until ~prob =
  check_window ~from_ ~until;
  if prob < 0.0 || prob > 1.0 then invalid_arg "Fault_disk.error_window: need 0 <= prob <= 1";
  t.error_windows <- ({ from_; until }, prob) :: t.error_windows

let slowdown_window t ~from_ ~until ~factor =
  check_window ~from_ ~until;
  if factor < 1.0 then invalid_arg "Fault_disk.slowdown_window: need factor >= 1";
  t.slowdown_windows <- ({ from_; until }, factor) :: t.slowdown_windows

let hang_window t ~from_ ~until =
  check_window ~from_ ~until;
  t.hang_windows <- { from_; until } :: t.hang_windows

let clear t =
  t.fail_next <- 0;
  t.error_windows <- [];
  t.slowdown_windows <- [];
  t.hang_windows <- []

(* Lazy pruning keeps the window lists from growing with history while
   never consulting the clock outside an operation. *)
let prune t now =
  t.error_windows <- List.filter (fun (w, _) -> live w now) t.error_windows;
  t.slowdown_windows <- List.filter (fun (w, _) -> live w now) t.slowdown_windows;
  t.hang_windows <- List.filter (fun w -> live w now) t.hang_windows

let should_fail t now =
  if t.fail_next > 0 then begin
    t.fail_next <- t.fail_next - 1;
    true
  end
  else
    match List.find_opt (fun (w, _) -> in_window w now) t.error_windows with
    | Some (_, prob) -> Rng.bool t.rng prob
    | None -> false

(* Every faultable path funnels through here: hang, then maybe error,
   then the real transaction, then the degraded-spindle tax. Must run
   in a simulation process (it may delay), which read/write already
   require. *)
let guard t what op =
  let now = Engine.now t.eng in
  prune t now;
  (match List.find_opt (fun w -> in_window w now) t.hang_windows with
  | Some w ->
      t.hangs <- t.hangs + 1;
      Engine.delay (w.until - now)
  | None -> ());
  let now = Engine.now t.eng in
  if should_fail t now then begin
    t.errors_injected <- t.errors_injected + 1;
    raise (Device.Io_error (Printf.sprintf "%s: injected %s error" t.name what))
  end;
  let slow = List.find_opt (fun (w, _) -> in_window w now) t.slowdown_windows in
  let result = op () in
  (match slow with
  | Some (_, factor) ->
      let elapsed = Engine.now t.eng - now in
      if elapsed > 0 then begin
        t.slowdowns <- t.slowdowns + 1;
        Engine.delay (int_of_float (float_of_int elapsed *. (factor -. 1.0)))
      end
  | None -> ());
  result

let wrap eng ?(seed = 0xd15c) (dev : Device.t) =
  let t =
    {
      eng;
      rng = Rng.create seed;
      name = dev.Device.name ^ "+fault";
      fail_next = 0;
      error_windows = [];
      slowdown_windows = [];
      hang_windows = [];
      errors_injected = 0;
      slowdowns = 0;
      hangs = 0;
    }
  in
  let wrapped =
    {
      dev with
      Device.name = t.name;
      read = (fun ~off ~len -> guard t "read" (fun () -> dev.Device.read ~off ~len));
      write = (fun ~off data -> guard t "write" (fun () -> dev.Device.write ~off data));
    }
  in
  (t, wrapped)
