open Nfsg_sim
module Client = Nfsg_nfs.Client
module Proto = Nfsg_nfs.Proto

type config = {
  procs : int;
  files_per_proc : int;
  file_size : int;
  biods_per_proc : int;
  warmup : Time.t;
  measure : Time.t;
  seed : int;
}

let default_config =
  {
    procs = 8;
    files_per_proc = 8;
    file_size = 64 * 1024;
    biods_per_proc = 4;
    warmup = Time.sec 2;
    measure = Time.sec 10;
    seed = 1994;
  }

type point = { offered : float; achieved : float; avg_latency_ms : float; ops_completed : int }

(* The SFS 1.0 operation mix. *)
type op = Lookup | Read | Write | Getattr | Readlink | Readdir | Create | Remove | Setattr | Statfs

let mix =
  [
    (34.0, Lookup);
    (22.0, Read);
    (15.0, Write);
    (13.0, Getattr);
    (8.0, Readlink);
    (3.0, Readdir);
    (2.0, Create);
    (1.0, Remove);
    (1.0, Setattr);
    (1.0, Statfs);
  ]

type proc_state = {
  client : Client.t;
  dir : Proto.fh;
  files : (string * Proto.fh) array;
  links : Proto.fh array;
  file_blocks : int;
  rng : Rng.t;
  mutable cursor : int;  (** rotating block offset for write bursts *)
  mutable extra : int;  (** counter for create/remove names *)
  mutable created : string list;
}

type sample = { start : Time.t; finish : Time.t; count : int }

let do_op eng st op samples =
  let t0 = Engine.now eng in
  let record ?(count = 1) () =
    samples := { start = t0; finish = Engine.now eng; count } :: !samples
  in
  let any_file () = st.files.(Rng.int st.rng (Array.length st.files)) in
  match op with
  | Lookup ->
      let name, _ = any_file () in
      (try ignore (Client.lookup st.client st.dir name) with Client.Error _ -> ());
      record ()
  | Getattr ->
      let _, fh = any_file () in
      (try ignore (Client.getattr st.client fh) with Client.Error _ -> ());
      record ()
  | Readlink ->
      let fh = st.links.(Rng.int st.rng (Array.length st.links)) in
      (try ignore (Client.readlink st.client fh) with Client.Error _ -> ());
      record ()
  | Read ->
      let _, fh = any_file () in
      let blk = Rng.int st.rng st.file_blocks in
      (try ignore (Client.read st.client fh ~off:(blk * 8192) ~len:8192)
       with Client.Error _ -> ());
      record ()
  | Write ->
      (* A burst of 1-7 consecutive 8K overwrites through the
         write-behind cache; each WRITE RPC counts as one SFS op. The
         burst is asynchronous — biods absorb it and the process only
         blocks when they are all busy — matching how LADDIS client
         engines emit write load (no sync-on-close per burst). *)
      let _, fh = any_file () in
      let nblocks = 1 + Rng.int st.rng 7 in
      let f = Client.open_file st.client fh in
      (try
         for i = 0 to nblocks - 1 do
           let blk = (st.cursor + i) mod st.file_blocks in
           Client.write f ~off:(blk * 8192) (Bytes.make 8192 'w')
         done;
         Client.flush f
       with Client.Error _ -> ());
      st.cursor <- (st.cursor + nblocks) mod st.file_blocks;
      record ~count:nblocks ()
  | Readdir ->
      (try ignore (Client.readdir st.client st.dir) with Client.Error _ -> ());
      record ()
  | Create ->
      st.extra <- st.extra + 1;
      let name = Printf.sprintf "tmp%d" st.extra in
      (try
         ignore (Client.create_file st.client st.dir name);
         st.created <- name :: st.created
       with Client.Error _ -> ());
      record ()
  | Remove ->
      (match st.created with
      | name :: rest -> (
          st.created <- rest;
          try Client.remove st.client st.dir name with Client.Error _ -> ())
      | [] -> (
          (* Nothing removable yet: create one so the op still does
             real directory work. *)
          st.extra <- st.extra + 1;
          let name = Printf.sprintf "tmp%d" st.extra in
          try ignore (Client.create_file st.client st.dir name) with Client.Error _ -> ()));
      record ()
  | Setattr ->
      let _, fh = any_file () in
      (try
         ignore
           (Client.setattr st.client fh
              { Proto.sattr_none with Proto.s_mtime = Some (Proto.timeval_of_ns (Engine.now eng)) })
       with Client.Error _ -> ());
      record ()
  | Statfs ->
      (try ignore (Client.statfs st.client st.dir) with Client.Error _ -> ());
      record ()

(* Write bursts average (1+7)/2 = 4 blocks and count as that many ops,
   so the expected ops recorded per iteration exceeds one; scale think
   times accordingly to keep the offered rate honest. *)
let expected_ops_per_iteration =
  let total = List.fold_left (fun a (w, _) -> a +. w) 0.0 mix in
  List.fold_left
    (fun acc (w, op) -> acc +. (w /. total *. match op with Write -> 4.0 | _ -> 1.0))
    0.0 mix

let setup_proc eng ~make_client ~root cfg i =
  let client = make_client i in
  let dirname = Printf.sprintf "proc%d" i in
  let dir, _ = Client.mkdir client root dirname in
  let blocks = Stdlib.max 1 (cfg.file_size / 8192) in
  let files =
    Array.init cfg.files_per_proc (fun j ->
        let name = Printf.sprintf "f%d" j in
        let fh, _ = Client.create_file client dir name in
        let f = Client.open_file client fh in
        for b = 0 to blocks - 1 do
          Client.write f ~off:(b * 8192) (Bytes.make 8192 'i')
        done;
        Client.close f;
        (name, fh))
  in
  ignore eng;
  let links =
    Array.init 4 (fun j ->
        fst (Client.symlink client dir (Printf.sprintf "l%d" j) ~target:(Printf.sprintf "f%d" j)))
  in
  {
    client;
    dir;
    files;
    links;
    file_blocks = blocks;
    rng = Rng.create (cfg.seed + (1009 * i));
    cursor = 0;
    extra = 0;
    created = [];
  }

(* Round-robin spread of load processes over exports: proc [i] works
   under export [i mod exports]. With one export this is the classic
   single-volume behaviour. *)
let export_assignment ~procs ~exports =
  if procs < 0 then invalid_arg "Laddis.export_assignment: negative procs";
  if exports <= 0 then invalid_arg "Laddis.export_assignment: need at least one export";
  List.init procs (fun i -> i mod exports)

let run eng ~make_client ~root ?exports ~offered cfg =
  if offered <= 0.0 then invalid_arg "Laddis.run: offered load must be positive";
  let exports = match exports with None | Some [] -> [ root ] | Some l -> l in
  let roots = Array.of_list exports in
  let assignment =
    Array.of_list (export_assignment ~procs:cfg.procs ~exports:(Array.length roots))
  in
  let states =
    List.init cfg.procs (fun i ->
        setup_proc eng ~make_client ~root:roots.(assignment.(i)) cfg i)
  in
  let samples = ref [] in
  let stop = ref false in
  let per_proc_rate = offered /. float_of_int cfg.procs in
  let mean_think = expected_ops_per_iteration /. per_proc_rate (* seconds *) in
  let finished = ref 0 in
  let done_cond = Condition.create () in
  List.iteri
    (fun i st ->
      Engine.spawn eng ~name:(Printf.sprintf "laddis-%d" i) (fun () ->
          (* LADDIS-style pacing: the exponential interarrival includes
             the operation's own response time, so the offered rate is
             honest until the server genuinely saturates (think time
             hits zero and the process runs closed-loop). *)
          let rec loop debt =
            if not !stop then begin
              let interarrival = Time.of_sec_f (Rng.exponential st.rng mean_think) in
              let think = interarrival - debt in
              if think > 0 then Engine.delay think;
              let leftover = Stdlib.max 0 (-think) in
              if not !stop then begin
                let t0 = Engine.now eng in
                do_op eng st (Rng.weighted st.rng mix) samples;
                loop (leftover + (Engine.now eng - t0))
              end
            end
          in
          loop 0;
          incr finished;
          if !finished = cfg.procs then Condition.broadcast done_cond))
    states;
  let t_start = Engine.now eng in
  let t_warm = t_start + cfg.warmup in
  let t_end = t_warm + cfg.measure in
  Engine.delay (cfg.warmup + cfg.measure);
  stop := true;
  while !finished < cfg.procs do
    Condition.wait done_cond
  done;
  let in_window =
    List.filter (fun s -> s.start >= t_warm && s.finish <= t_end) !samples
  in
  let ops = List.fold_left (fun a s -> a + s.count) 0 in_window in
  (* A burst sample spreads its elapsed time over its [count] ops, so
     the average below is per-op. *)
  let latency_sum = List.fold_left (fun a s -> a +. Time.to_ms_f (s.finish - s.start)) 0.0 in_window in
  {
    offered;
    achieved = float_of_int ops /. Time.to_sec_f cfg.measure;
    avg_latency_ms = (if ops = 0 then 0.0 else latency_sum /. float_of_int ops);
    ops_completed = ops;
  }
