(** Diskless-client boot sequence: MOUNT a (read-only) root export,
    then LOOKUP / GETATTR / sequentially READ a fixed ~672 KB file set
    — cold pass (the boot proper) followed by a warm pass (the login
    burst). Whole files are read front to back in 8 KB wire chunks,
    the access pattern server-side read-ahead exists to recognise.

    The boot-storm bench launches one of these per simulated
    workstation against a shared export; {!populate} builds the file
    set beforehand through a read-write client, after which the
    experiment flips the export read-only. *)

type file_spec = { dir : string; name : string; size : int }

val boot_set : file_spec list
(** The fixed file tree every client walks, boot order: init, mount
    helper, rc scripts, shared libraries, the shell. *)

val total_bytes : int
(** Bytes in {!boot_set} (what one cold pass reads). *)

val populate : Nfsg_nfs.Client.t -> Nfsg_nfs.Proto.fh -> unit
(** Create the boot file set under [root] via a read-write client
    (directories, files, contents). Must run inside a simulation
    process, before the export is flipped read-only. *)

type stats = {
  ops : int;  (** RPCs issued: lookups, getattrs, 8 KB READs *)
  bytes_read : int;
  latency_sum_ms : float;  (** summed per-RPC response time *)
  elapsed : Nfsg_sim.Time.t;  (** MOUNT through end of warm pass *)
}

val boot : Nfsg_sim.Engine.t -> Nfsg_nfs.Client.t -> export:string -> stats
(** Run one full boot (mount, cold walk, warm walk) and return its
    op count, byte count, and summed latency. Must run inside a
    simulation process. *)
