open Nfsg_sim
module Client = Nfsg_nfs.Client
module Proto = Nfsg_nfs.Proto

(* A diskless workstation booting over NFS: MOUNT the (read-only)
   root export, then walk a fixed file set the way /sbin/init and rc
   would — name lookups, attribute checks, and whole-file sequential
   reads. Every file is read front to back in 8 KB wire chunks, which
   is exactly the access pattern a server-side read-ahead engine is
   built to recognise. *)

let bsize = 8192

type file_spec = { dir : string; name : string; size : int }

(* ~672 KB over 84 data blocks: big enough that a constrained server
   cache cannot hold every client's concurrently-hot blocks, small
   enough that a bench rung stays cheap. Sizes are loosely scaled from
   a mid-90s BSD root filesystem. *)
let boot_set =
  [
    { dir = "sbin"; name = "init"; size = 96 * 1024 };
    { dir = "sbin"; name = "mount_nfs"; size = 64 * 1024 };
    { dir = "etc"; name = "rc"; size = 16 * 1024 };
    { dir = "etc"; name = "fstab"; size = 8 * 1024 };
    { dir = "etc"; name = "passwd"; size = 8 * 1024 };
    { dir = "lib"; name = "libc.so"; size = 256 * 1024 };
    { dir = "lib"; name = "libutil.so"; size = 96 * 1024 };
    { dir = "bin"; name = "sh"; size = 128 * 1024 };
  ]

let total_bytes = List.fold_left (fun a f -> a + f.size) 0 boot_set
let dirs = List.sort_uniq compare (List.map (fun f -> f.dir) boot_set)

let populate client root =
  let dir_fh = Hashtbl.create 8 in
  List.iter (fun d -> Hashtbl.replace dir_fh d (fst (Client.mkdir client root d))) dirs;
  List.iter
    (fun f ->
      let parent = Hashtbl.find dir_fh f.dir in
      let fh, _ = Client.create_file client parent f.name in
      let file = Client.open_file client fh in
      for b = 0 to (f.size / bsize) - 1 do
        Client.write file ~off:(b * bsize) (Bytes.make bsize 'b')
      done;
      Client.close file)
    boot_set

type stats = { ops : int; bytes_read : int; latency_sum_ms : float; elapsed : Time.t }

(* One pass over the boot set: LOOKUP the directory and the file,
   GETATTR (the kernel stats what it is about to exec), then read the
   whole file sequentially. Each RPC — lookup, getattr, and every 8 KB
   READ — counts as one op toward the rung's achieved rate. *)
let walk eng client root ~ops ~bytes ~lat =
  let timed f =
    let t0 = Engine.now eng in
    let r = f () in
    incr ops;
    lat := !lat +. Time.to_ms_f (Engine.now eng - t0);
    r
  in
  List.iter
    (fun f ->
      let dir, _ = timed (fun () -> Client.lookup client root f.dir) in
      let fh, _ = timed (fun () -> Client.lookup client dir f.name) in
      ignore (timed (fun () -> Client.getattr client fh));
      for b = 0 to (f.size / bsize) - 1 do
        let chunk = timed (fun () -> Client.read client fh ~off:(b * bsize) ~len:bsize) in
        bytes := !bytes + Bytes.length chunk
      done)
    boot_set

let boot eng client ~export =
  let t0 = Engine.now eng in
  let root, _read_only = Client.mount_flags client export in
  let ops = ref 0 and bytes = ref 0 and lat = ref 0.0 in
  (* Cold pass (the boot proper), then a warm pass — the login burst
     that re-reads rc scripts and shared libraries the server may still
     have cached. *)
  walk eng client root ~ops ~bytes ~lat;
  walk eng client root ~ops ~bytes ~lat;
  { ops = !ops; bytes_read = !bytes; latency_sum_ms = !lat; elapsed = Engine.now eng - t0 }
