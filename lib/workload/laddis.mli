(** LADDIS / SPEC SFS 1.0-style load generator (Figures 2 and 3).

    A pool of load-generating processes each issues NFS operations
    with Poisson think times tuned to an {e offered} aggregate load,
    drawing from the SFS 1.0 operation mix (writes 15%, and "expensive
    to process"). As the server saturates, achieved throughput falls
    below the offered load and latency climbs — sweeping the offered
    load produces the paper's throughput/response-time curve.

    Deviation from SPEC SFS 1.0, documented in DESIGN.md: WRITE load
    arrives in multi-block bursts through the client write-behind
    cache, which is how LADDIS client engines emit it and what makes
    gathering applicable; each 8 KB WRITE RPC counts as one op. *)

type config = {
  procs : int;  (** load-generating processes (paper: 5 hosts x 4) *)
  files_per_proc : int;
  file_size : int;  (** bytes per pre-created file *)
  biods_per_proc : int;
  warmup : Nfsg_sim.Time.t;
  measure : Nfsg_sim.Time.t;
  seed : int;
}

val default_config : config

type point = {
  offered : float;  (** ops/sec requested *)
  achieved : float;  (** ops/sec completed in the window *)
  avg_latency_ms : float;
  ops_completed : int;
}

val export_assignment : procs:int -> exports:int -> int list
(** Which export (index) each load process works under: round-robin,
    [proc i -> i mod exports]. Raises [Invalid_argument] when
    [exports <= 0]. *)

val run :
  Nfsg_sim.Engine.t ->
  make_client:(int -> Nfsg_nfs.Client.t) ->
  root:Nfsg_nfs.Proto.fh ->
  ?exports:Nfsg_nfs.Proto.fh list ->
  offered:float ->
  config ->
  point
(** Set up the file tree, run warmup + measurement, return the point.
    Must run inside a simulation process. [make_client i] supplies the
    client stack for load process [i] (its own socket on the shared
    segment). [exports] spreads the working set round-robin over
    several volume roots per {!export_assignment} ([None] or [[]]:
    everything under [root], the single-export behaviour). *)
