(* A single nfslint finding. Diagnostics are plain data so the CLI,
   the dune @lint gate and the fixture tests all render them the same
   way. *)

type severity = Error | Warning

type t = {
  rule : string;  (** e.g. "D001"; "LINT" for meta-diagnostics *)
  severity : severity;
  file : string;  (** repo-relative path, as given to the driver *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity ~file ~line ~col message =
  { rule; severity; file; line; col; message }

(* The compiler's file:line:col prefix, so editors and CI annotations
   pick findings up without custom parsers. *)
let to_string d =
  Printf.sprintf "%s:%d:%d: %s [%s] %s" d.file d.line d.col (severity_name d.severity) d.rule
    d.message

let compare_loc a b =
  match compare (a.file, a.line, a.col) (b.file, b.line, b.col) with
  | 0 -> compare a.rule b.rule
  | c -> c

let is_error d = d.severity = Error
