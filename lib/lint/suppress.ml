(* Suppression comments.

   A diagnostic is silenced by a comment containing the marker (the
   tool name, a colon-space, then "allow"), a rule id and a
   justification, on the same line as the finding or on the line
   directly above it. The justification is mandatory: an allow
   without one is itself a lint error, so every suppression in the
   tree documents why the rule does not apply. See README "Static
   analysis" for the exact syntax.

   The default marker is nfslint's; nfsrace reuses the same scanner
   and bookkeeping with its own [marker] and [meta_rule], so the two
   tools share one suppression discipline. *)

type t = {
  rule : string;
  line : int;  (** line the comment starts on, 1-based *)
  reason : string;
  mutable used : bool;
}

let default_marker = "nfslint: allow"

let is_rule_char c = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

(* Parse everything after the marker: a rule id, then the reason up to
   the end of the comment (or of the line, for multi-line comments). *)
let parse_tail ~line tail =
  let tail = String.trim tail in
  let n = String.length tail in
  let i = ref 0 in
  while !i < n && is_rule_char tail.[!i] do
    incr i
  done;
  let rule = String.sub tail 0 !i in
  let rest = String.sub tail !i (n - !i) in
  let rest =
    match String.index_opt rest '*' with
    | Some j when j + 1 < String.length rest && rest.[j + 1] = ')' -> String.sub rest 0 j
    | _ -> rest
  in
  if rule = "" then None else Some { rule; line; reason = String.trim rest; used = false }

let scan_source ?(marker = default_marker) src =
  let lines = String.split_on_char '\n' src in
  let found = ref [] in
  List.iteri
    (fun i line ->
      match
        (* Plain substring search: the marker never appears outside a
           comment in practice, and a false hit only creates an unused
           suppression warning, never a silent pass. *)
        let mlen = String.length marker in
        let rec find from =
          if from + mlen > String.length line then None
          else if String.sub line from mlen = marker then Some (from + mlen)
          else find (from + 1)
        in
        find 0
      with
      | None -> ()
      | Some after -> (
          let tail = String.sub line after (String.length line - after) in
          match parse_tail ~line:(i + 1) tail with
          | Some s -> found := s :: !found
          | None -> ()))
    lines;
  List.rev !found

(* A suppression covers its own line and the one below, so it can sit
   at the end of the offending line or on its own line above it. *)
let covers s (d : Diagnostic.t) =
  s.rule = d.rule && (d.line = s.line || d.line = s.line + 1)

let apply ?(marker = default_marker) ?(meta_rule = "LINT") ~file suppressions diagnostics =
  let kept =
    List.filter
      (fun d ->
        match List.find_opt (fun s -> covers s d) suppressions with
        | Some s ->
            s.used <- true;
            false
        | None -> true)
      diagnostics
  in
  let meta =
    List.concat_map
      (fun s ->
        if s.reason = "" then
          [
            Diagnostic.make ~rule:meta_rule ~severity:Diagnostic.Error ~file ~line:s.line ~col:0
              (Printf.sprintf
                 "suppression of %s carries no justification; write '(* %s %s <reason> *)'"
                 s.rule marker s.rule);
          ]
        else if not s.used then
          [
            Diagnostic.make ~rule:meta_rule ~severity:Diagnostic.Warning ~file ~line:s.line
              ~col:0
              (Printf.sprintf "unused suppression: no %s diagnostic on this or the next line"
                 s.rule);
          ]
        else [])
      suppressions
  in
  kept @ meta
