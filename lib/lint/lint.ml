(* The nfslint driver: parse one .ml with the compiler's own parser,
   run every rule, then fold in the suppression comments. Used by the
   nfslint executable (the dune @lint gate) and by the fixture tests. *)

let parse_diag ~rel exn =
  let message =
    match exn with
    | Syntaxerr.Error _ -> "syntax error (file does not parse)"
    | exn -> Printexc.to_string exn
  in
  [ Diagnostic.make ~rule:"PARSE" ~severity:Diagnostic.Error ~file:rel ~line:1 ~col:0 message ]

let lint_source ~rel src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf rel;
  match Parse.implementation lexbuf with
  | exception exn -> parse_diag ~rel exn
  | structure ->
      let ctx = { Rules.rel } in
      let raw = List.concat_map (fun (r : Rules.rule) -> r.run ctx structure) Rules.all in
      let suppressions = Suppress.scan_source src in
      Suppress.apply ~file:rel suppressions raw |> List.sort Diagnostic.compare_loc

let lint_file ?rel path =
  let rel = match rel with Some r -> r | None -> path in
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  lint_source ~rel src
