(* The seven nfslint rules. Read-only Parsetree analysis over a single
   compilation unit: no typing, no ppx, so the whole of lib/ lints in
   milliseconds and the tool cannot alter what it checks.

   Every rule reports with the repo-relative path it was handed, which
   is also what scoping decisions (lib/ vs lib/sim/) are made from. *)

open Parsetree

type ctx = { rel : string;  (** repo-relative path used for scoping *) }

let in_dir dir rel =
  let p = dir ^ "/" in
  String.length rel >= String.length p && String.sub rel 0 (String.length p) = p

let in_lib ctx = in_dir "lib" ctx.rel
let in_sim ctx = in_dir "lib/sim" ctx.rel

let loc_line_col (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

let diag ctx ~rule ?(severity = Diagnostic.Error) (loc : Location.t) message =
  let line, col = loc_line_col loc in
  Diagnostic.make ~rule ~severity ~file:ctx.rel ~line ~col message

(* Longident.flatten raises on functor applications; those are never
   the identifiers the rules look for. *)
let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* Module paths written through Stdlib are the same module. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

let ident_path expr =
  match expr.pexp_desc with Pexp_ident { txt; _ } -> strip_stdlib (flatten txt) | _ -> []

(* Collect every value identifier path in a subtree. *)
let iter_idents f =
  let open Ast_iterator in
  {
    default_iterator with
    expr =
      (fun self e ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> f e.pexp_loc (strip_stdlib (flatten txt))
        | _ -> ());
        default_iterator.expr self e);
  }

(* {1 D001 — nondeterminism sources} *)

(* The simulation must be a pure function of its seed: wall-clock
   reads and the global PRNG would make metrics JSON and the chaos
   ledger differ run to run. lib/sim owns the one seeded Rng, so
   Random there would still be wrong but is left to review. *)
let d001 ctx structure =
  if not (in_lib ctx) then []
  else
    let diags = ref [] in
    let check loc path =
      let bad =
        match path with
        | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime") ] -> true
        | [ "Sys"; "time" ] -> true
        | "Random" :: _ -> not (in_sim ctx)
        | _ -> false
      in
      if bad then
        diags :=
          diag ctx ~rule:"D001" loc
            (Printf.sprintf
               "forbidden nondeterminism source %s: use the simulation clock (Engine.now) or a \
                seeded lib/sim Rng"
               (String.concat "." path))
          :: !diags
    in
    let it = iter_idents check in
    it.Ast_iterator.structure it structure;
    List.rev !diags

(* {1 D002 — hash-order leaks} *)

let is_hashtbl_scan = function [ "Hashtbl"; ("iter" | "fold") ] -> true | _ -> false

let is_sorted_sink = function
  | [ "List"; ("sort" | "sort_uniq" | "stable_sort" | "fast_sort" | "merge") ] -> true
  | _ -> false

(* Hashtbl iteration order is unspecified, so anything it produces —
   a list, a string, a sequence of disk writes — is only deterministic
   if the same top-level function also funnels it through a sorted
   sink. Commutative scans (sums, counts, unique minima) are the
   legitimate exceptions and must say so in a suppression. *)
let d002 ctx structure =
  if not (in_lib ctx) then []
  else
    let diags = ref [] in
    let check_binding vb =
      let scans = ref [] and sorts = ref false in
      let it =
        iter_idents (fun loc path ->
            if is_hashtbl_scan path then scans := (loc, path) :: !scans
            else if is_sorted_sink path then sorts := true)
      in
      it.Ast_iterator.value_binding it vb;
      if not !sorts then
        List.iter
          (fun (loc, path) ->
            diags :=
              diag ctx ~rule:"D002" loc
                (Printf.sprintf
                   "%s result escapes without a sorted sink in the same top-level binding; \
                    hash order leaks into user-visible output"
                   (String.concat "." path))
              :: !diags)
          (List.rev !scans)
    in
    let rec structure_items items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter check_binding vbs
          | Pstr_module { pmb_expr; _ } -> module_expr pmb_expr
          | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
          | _ -> ())
        items
    and module_expr me =
      match me.pmod_desc with
      | Pmod_structure items -> structure_items items
      | Pmod_functor (_, body) -> module_expr body
      | Pmod_constraint (me, _) -> module_expr me
      | _ -> ()
    in
    structure_items structure;
    List.rev !diags

(* {1 E001 — catch-all exception handlers} *)

let expr_uses_var name expr =
  let used = ref false in
  let it =
    iter_idents (fun _ path -> match path with [ n ] when n = name -> used := true | _ -> ())
  in
  it.Ast_iterator.expr it expr;
  !used

(* A handler that catches everything and drops the exception can
   swallow an NFSERR conversion, a Device.Io_error mid-transaction, or
   a simulation invariant failure — the bug class Juszczak's crash
   rule exists to prevent. Catch specific exceptions, or bind and
   re-raise/convert the rest. *)
let e001 ctx structure =
  ignore ctx;
  let diags = ref [] in
  let rec catch_all rhs pat =
    match pat.ppat_desc with
    | Ppat_any -> true
    | Ppat_alias ({ ppat_desc = Ppat_any; _ }, { txt = name; _ }) -> not (expr_uses_var name rhs)
    | Ppat_or (a, b) -> catch_all rhs a || catch_all rhs b
    | Ppat_exception p -> catch_all rhs p
    | _ -> false
  in
  let check_cases ~only_exception cases =
    List.iter
      (fun case ->
        let relevant =
          if only_exception then
            match case.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false
          else true
        in
        if relevant && catch_all case.pc_rhs case.pc_lhs then
          diags :=
            diag ctx ~rule:"E001" case.pc_lhs.ppat_loc
              "catch-all exception handler drops the exception; it can swallow NFSERR_* \
               conversions and simulation invariant failures — match specific exceptions or \
               bind and re-raise"
            :: !diags)
      cases
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_try (_, cases) -> check_cases ~only_exception:false cases
          | Pexp_match (_, cases) -> check_cases ~only_exception:true cases
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.Ast_iterator.structure it structure;
  List.rev !diags

(* {1 O001 — stdout/stderr pollution} *)

let o001_forbidden = function
  | [
      ( "print_string" | "print_endline" | "print_newline" | "print_char" | "print_int"
      | "print_float" | "print_bytes" | "prerr_string" | "prerr_endline" | "prerr_newline"
      | "prerr_char" | "prerr_int" | "prerr_float" | "prerr_bytes" );
    ] ->
      true
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ] -> true
  | [ "Format"; ("print_string" | "print_newline") ] -> true
  | _ -> false

(* The bench artifacts are byte-diffed in CI; a stray print in lib/
   lands in the middle of them. Library code returns values or goes
   through the Trace/Metrics/Report sinks; only bin/, bench/ and
   examples/ own the process's stdout. *)
let o001 ctx structure =
  if not (in_lib ctx) then []
  else
    let diags = ref [] in
    let it =
      iter_idents (fun loc path ->
          if o001_forbidden path then
            diags :=
              diag ctx ~rule:"O001" loc
                (Printf.sprintf
                   "direct %s in lib/ pollutes the byte-deterministic bench output; return a \
                    value or use Nfsg_stats (Trace/Metrics/Report.to_string)"
                   (String.concat "." path))
              :: !diags)
    in
    it.Ast_iterator.structure it structure;
    List.rev !diags

(* {1 M001 — metric names outside the registry} *)

let metric_fns = [ "counter"; "gauge"; "histogram"; "find"; "find_counter"; "find_gauge"; "find_histogram" ]

(* Modules bound to ...Metrics inside this file count as Metrics. *)
let metrics_aliases structure =
  let aliases = ref [ "Metrics" ] in
  let rec scan_items items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
            match pmb_expr.pmod_desc with
            | Pmod_ident { txt; _ } -> (
                match List.rev (flatten txt) with
                | "Metrics" :: _ -> aliases := name :: !aliases
                | _ -> ())
            | Pmod_structure items -> scan_items items
            | _ -> ())
        | _ -> ())
      items
  in
  scan_items structure;
  !aliases

let is_names_application expr =
  match expr.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match fn.pexp_desc with
      | Pexp_ident { txt; _ } -> List.mem "Names" (flatten txt)
      | _ -> false)
  | _ -> false

(* String literals inside [expr], except those that are arguments to a
   Names.* smart constructor (e.g. [Names.ops "WRITE"] is the registry
   speaking, not a stray literal). *)
let string_literals_outside_names expr =
  let found = ref [] in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          if is_names_application e then ()
          else begin
            (match e.pexp_desc with
            | Pexp_constant (Pconst_string (s, _, _)) -> found := (e.pexp_loc, s) :: !found
            | _ -> ());
            default_iterator.expr self e
          end);
    }
  in
  it.Ast_iterator.expr it expr;
  List.rev !found

(* One central lib/stats/names.ml owns every namespace and instrument
   name, so "server.vol3" vs "server_vol3" is a compile error at the
   registry instead of a silently empty metrics query. The rule fires
   on (a) literals in arguments of Metrics.counter/gauge/histogram/
   find*, and (b) literal-built [ns]/[*_ns] bindings. *)
let m001 ctx structure =
  if not (in_lib ctx) then []
  else
    let aliases = metrics_aliases structure in
    let diags = ref [] in
    let flag (loc, s) =
      diags :=
        diag ctx ~rule:"M001" loc
          (Printf.sprintf
             "metric name literal %S: namespaces and instrument names must come from \
              Nfsg_stats.Names, not inline strings"
             s)
        :: !diags
    in
    let open Ast_iterator in
    let it =
      {
        default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_apply (fn, args) -> (
                match ident_path fn with
                | path when path <> [] -> (
                    match List.rev path with
                    | f :: m :: _ when List.mem f metric_fns && List.mem m aliases ->
                        List.iter
                          (fun (_, arg) -> List.iter flag (string_literals_outside_names arg))
                          args
                    | _ -> ())
                | _ -> ())
            | _ -> ());
            default_iterator.expr self e);
        value_binding =
          (fun self vb ->
            let rec binding_name pat =
              match pat.ppat_desc with
              | Ppat_var { txt; _ } -> Some txt
              | Ppat_constraint (p, _) -> binding_name p
              | _ -> None
            in
            (match binding_name vb.pvb_pat with
            | Some name
              when name = "ns"
                   || String.length name > 3
                      && String.sub name (String.length name - 3) 3 = "_ns" ->
                List.iter flag (string_literals_outside_names vb.pvb_expr)
            | _ -> ());
            default_iterator.value_binding self vb);
      }
    in
    it.Ast_iterator.structure it structure;
    List.rev !diags

(* {1 S001 — unreset global mutable state} *)

let mutable_makers = function
  | [ "ref" ] -> true
  | [ ("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Atomic" | "Weak"); ("create" | "make") ] -> true
  | [ "Array"; ("make" | "create_float" | "init") ] -> true
  | [ "Bytes"; ("create" | "make") ] -> true
  | _ -> false

(* Process-global mutables outlive Server.crash/restart and every
   simulated world in the process. That is sometimes the point (vgen
   identity, boot verifiers) — then the binding carries a suppression
   saying so — and otherwise it is restart-corrupting state that must
   register a Nfsg_sim.Reset hook naming it. *)
let s001 ctx structure =
  if not (in_lib ctx) then []
  else
    (* Names mentioned anywhere inside a Reset.register call: the hook
       closure resets the binding, so the mention proves coverage. *)
    let reset_covered = ref [] in
    let collect =
      let open Ast_iterator in
      {
        default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_apply (fn, args) -> (
                match List.rev (ident_path fn) with
                | "register" :: "Reset" :: _ ->
                    List.iter
                      (fun (_, arg) ->
                        let it =
                          iter_idents (fun _ path ->
                              match path with
                              | [ n ] -> reset_covered := n :: !reset_covered
                              | _ -> ())
                        in
                        it.Ast_iterator.expr it arg)
                      args
                | _ -> ())
            | _ -> ());
            default_iterator.expr self e);
      }
    in
    collect.Ast_iterator.structure collect structure;
    let diags = ref [] in
    let rec binding_name pat =
      match pat.ppat_desc with
      | Ppat_var { txt; _ } -> Some txt
      | Ppat_constraint (p, _) -> binding_name p
      | _ -> None
    in
    let rec strip_expr e =
      match e.pexp_desc with Pexp_constraint (e, _) -> strip_expr e | _ -> e
    in
    let check_binding vb =
      match binding_name vb.pvb_pat with
      | None -> ()
      | Some name -> (
          let rhs = strip_expr vb.pvb_expr in
          match rhs.pexp_desc with
          | Pexp_apply (fn, _) when mutable_makers (ident_path fn) ->
              if not (List.mem name !reset_covered) then
                diags :=
                  diag ctx ~rule:"S001" vb.pvb_pat.ppat_loc
                    (Printf.sprintf
                       "top-level mutable '%s' survives Server.crash/restart: register a reset \
                        hook (Nfsg_sim.Reset.register mentioning '%s') or suppress with the \
                        reason it must persist"
                       name name)
                  :: !diags
          | _ -> ())
    in
    let rec structure_items items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter check_binding vbs
          | Pstr_module { pmb_expr; _ } -> module_expr pmb_expr
          | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
          | _ -> ())
        items
    and module_expr me =
      match me.pmod_desc with
      | Pmod_structure items -> structure_items items
      | Pmod_functor (_, body) -> module_expr body
      | Pmod_constraint (me, _) -> module_expr me
      | _ -> ()
    in
    structure_items structure;
    List.rev !diags

(* {1 I001 — blocking device calls outside the storage layers} *)

(* Device.read/write are thin blocking shims kept for the storage
   layers themselves; everything above lib/disk and lib/ufs goes
   through the tagged submission queue (Device.submit), where requests
   carry a class and can be scheduled, merged and ordered by barriers.
   A direct field call above those layers re-introduces the
   one-request-at-a-time convoy the async I/O core removed. *)
let i001 ctx structure =
  if (not (in_lib ctx)) || in_dir "lib/disk" ctx.rel || in_dir "lib/ufs" ctx.rel then []
  else
    let diags = ref [] in
    let open Ast_iterator in
    let it =
      {
        default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_field (_, { txt; _ }) -> (
                match List.rev (flatten txt) with
                | (("read" | "write") as f) :: "Device" :: _ ->
                    diags :=
                      diag ctx ~rule:"I001" e.pexp_loc
                        (Printf.sprintf
                           "direct Device.%s outside lib/disk and lib/ufs: the blocking shims \
                            belong to the storage layers; submit tagged requests \
                            (Device.submit with Io.write_req/read_req) instead"
                           f)
                      :: !diags
                | _ -> ())
            | _ -> ());
            default_iterator.expr self e);
      }
    in
    it.Ast_iterator.structure it structure;
    List.rev !diags

type rule = { id : string; synopsis : string; run : ctx -> Parsetree.structure -> Diagnostic.t list }

let all : rule list =
  [
    { id = "D001"; synopsis = "forbidden nondeterminism sources (wall clock, unseeded Random)"; run = d001 };
    { id = "D002"; synopsis = "Hashtbl.iter/fold result escapes without a sorted sink"; run = d002 };
    { id = "E001"; synopsis = "catch-all exception handler drops the exception"; run = e001 };
    { id = "O001"; synopsis = "direct stdout/stderr output from lib/"; run = o001 };
    { id = "M001"; synopsis = "metric/namespace string literal outside Nfsg_stats.Names"; run = m001 };
    { id = "S001"; synopsis = "top-level mutable state without a Reset hook"; run = s001 };
    { id = "I001"; synopsis = "blocking Device.read/write call outside lib/disk and lib/ufs"; run = i001 };
  ]
