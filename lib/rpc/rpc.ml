type call = { xid : int; prog : int; vers : int; proc : int; body : Xdr.view }

type accept_stat = Success | Prog_unavail | Proc_unavail | Garbage_args | System_err

type reply = { rxid : int; stat : accept_stat; rbody : Xdr.view }

let nfs_program = 100003
let nfs_version = 2
let mount_program = 100005
let msg_call = 0
let msg_reply = 1
let rpc_version = 2

let accept_stat_to_int = function
  | Success -> 0
  | Prog_unavail -> 1
  | Proc_unavail -> 3
  | Garbage_args -> 4
  | System_err -> 5

let accept_stat_of_int = function
  | 0 -> Success
  | 1 -> Prog_unavail
  | 3 -> Proc_unavail
  | 4 -> Garbage_args
  | 5 -> System_err
  | n -> raise (Xdr.Dec.Error (Printf.sprintf "bad accept_stat %d" n))

let put_auth_null enc =
  (* flavor AUTH_NULL, zero-length body *)
  Xdr.Enc.uint32 enc 0;
  Xdr.Enc.uint32 enc 0

let get_auth dec =
  let _flavor = Xdr.Dec.uint32 dec in
  let body = Xdr.Dec.opaque dec in
  ignore body

let encode_call c =
  let enc = Xdr.Enc.create ~size_hint:(64 + Xdr.view_length c.body) () in
  Xdr.Enc.uint32 enc c.xid;
  Xdr.Enc.enum enc msg_call;
  Xdr.Enc.uint32 enc rpc_version;
  Xdr.Enc.uint32 enc c.prog;
  Xdr.Enc.uint32 enc c.vers;
  Xdr.Enc.uint32 enc c.proc;
  put_auth_null enc;
  (* credentials *)
  put_auth_null enc;
  (* verifier *)
  Xdr.Enc.raw_view enc c.body;
  Xdr.Enc.to_bytes enc

let decode_call bytes =
  let dec = Xdr.Dec.of_bytes bytes in
  let xid = Xdr.Dec.uint32 dec in
  let mtype = Xdr.Dec.enum dec in
  if mtype <> msg_call then raise (Xdr.Dec.Error "not a call");
  let rv = Xdr.Dec.uint32 dec in
  if rv <> rpc_version then raise (Xdr.Dec.Error "bad RPC version");
  let prog = Xdr.Dec.uint32 dec in
  let vers = Xdr.Dec.uint32 dec in
  let proc = Xdr.Dec.uint32 dec in
  get_auth dec;
  get_auth dec;
  { xid; prog; vers; proc; body = Xdr.Dec.rest_view dec }

let encode_reply r =
  let enc = Xdr.Enc.create ~size_hint:(32 + Xdr.view_length r.rbody) () in
  Xdr.Enc.uint32 enc r.rxid;
  Xdr.Enc.enum enc msg_reply;
  (* reply_stat MSG_ACCEPTED *)
  Xdr.Enc.enum enc 0;
  put_auth_null enc;
  (* verifier *)
  Xdr.Enc.enum enc (accept_stat_to_int r.stat);
  Xdr.Enc.raw_view enc r.rbody;
  Xdr.Enc.to_bytes enc

let decode_reply bytes =
  let dec = Xdr.Dec.of_bytes bytes in
  let rxid = Xdr.Dec.uint32 dec in
  let mtype = Xdr.Dec.enum dec in
  if mtype <> msg_reply then raise (Xdr.Dec.Error "not a reply");
  let reply_stat = Xdr.Dec.enum dec in
  if reply_stat <> 0 then raise (Xdr.Dec.Error "MSG_DENIED");
  get_auth dec;
  let stat = accept_stat_of_int (Xdr.Dec.enum dec) in
  { rxid; stat; rbody = Xdr.Dec.rest_view dec }

let is_call bytes =
  Bytes.length bytes >= 8
  && Int32.to_int (Bytes.get_int32_be bytes 4) = msg_call

let peek_call bytes =
  try Some (decode_call bytes) with Xdr.Dec.Error _ | Xdr.Decode_error _ -> None
