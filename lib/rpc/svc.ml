open Nfsg_sim
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names
module Journey = Nfsg_stats.Journey

type transport = {
  id : int;
  mutable client : string;
  mutable xid : int;
  mutable live : bool;  (** checked out and not yet replied *)
  mutable journey : Journey.t option;
      (** the op's journey record; finished (and detached) when the
          reply goes out through {!send_reply} *)
}

type disposition = Reply of Rpc.accept_stat * Bytes.t | Reply_pending

type t = {
  eng : Engine.t;
  sock : Nfsg_net.Socket.t;
  dupcache : Dupcache.t option;
  on_duplicate_drop : client:string -> Rpc.call -> unit;
  journeys : Journey.plane option;
  free_handles : transport Queue.t;
  mutable next_id : int;
  mutable outstanding : int;
  received : Metrics.counter;
  garbage : Metrics.counter;
  dispatch_errors : Metrics.counter;
  dup_drops : Metrics.counter;
  dup_replays : Metrics.counter;
}

let client_of tr = tr.client
let xid_of tr = tr.xid
let journey_of tr = tr.journey
let handles_outstanding t = t.outstanding
let handle_cache_size t = Queue.length t.free_handles
let requests_received t = Metrics.value t.received
let garbage_dropped t = Metrics.value t.garbage
let dispatch_errors t = Metrics.value t.dispatch_errors

let take_handle t ~client ~xid =
  let tr =
    match Queue.take_opt t.free_handles with
    | Some tr -> tr
    | None ->
        t.next_id <- t.next_id + 1;
        { id = t.next_id; client = ""; xid = 0; live = false; journey = None }
  in
  tr.client <- client;
  tr.xid <- xid;
  tr.live <- true;
  tr.journey <- None;
  t.outstanding <- t.outstanding + 1;
  tr

let send_reply t tr stat body =
  if not tr.live then invalid_arg "Svc.send_reply: handle already completed";
  tr.live <- false;
  t.outstanding <- t.outstanding - 1;
  (* The journey ends where the reply leaves, whichever nfsd (or
     deferred flush) brings it here. *)
  (match (t.journeys, tr.journey) with
  | Some plane, Some j ->
      tr.journey <- None;
      Journey.finish plane j
  | _ -> tr.journey <- None);
  let encoded = Rpc.encode_reply { Rpc.rxid = tr.xid; stat; rbody = Xdr.view_of_bytes body } in
  (match t.dupcache with
  | Some dc -> Dupcache.complete dc ~client:tr.client ~xid:tr.xid encoded
  | None -> ());
  Nfsg_net.Socket.send t.sock ~dst:tr.client encoded;
  Queue.add tr t.free_handles

let svc_run t dispatch () =
  let rec loop () =
    let client, datagram, arrival = Nfsg_net.Socket.recv_stamped t.sock in
    Metrics.incr t.received;
    (match Rpc.decode_call datagram with
    | exception (Xdr.Dec.Error _ | Xdr.Decode_error _) -> Metrics.incr t.garbage
    | call -> (
        let verdict =
          match t.dupcache with
          | None -> Dupcache.New
          | Some dc -> Dupcache.admit dc ~client ~xid:call.Rpc.xid
        in
        match verdict with
        | Dupcache.In_progress ->
            Metrics.incr t.dup_drops;
            t.on_duplicate_drop ~client call
        | Dupcache.Replay reply ->
            Metrics.incr t.dup_replays;
            Nfsg_net.Socket.send t.sock ~dst:client reply
        | Dupcache.New -> (
            let tr = take_handle t ~client ~xid:call.Rpc.xid in
            (match t.journeys with
            | Some plane ->
                let j = Journey.start plane ~client ~xid:call.Rpc.xid ~arrival in
                let now = Engine.now t.eng in
                Journey.stamp_pickup j ~now;
                Journey.stamp_admitted j ~now;
                tr.journey <- Some j
            | None -> ());
            match dispatch tr call with
            | Reply (stat, body) -> send_reply t tr stat body
            | Reply_pending ->
                (* The handle stays checked out; another nfsd (or this
                   one, later) finishes it via send_reply. We go
                   straight back to the socket for more work. *)
                ()
            | exception e ->
                (* Simulator invariant failures must not be laundered
                   into RPC errors. *)
                (match e with
                | Assert_failure _ | Out_of_memory | Stack_overflow -> raise e
                | _ -> ());
                (* An exception escaping the dispatch must never leave
                   the xid parked as in-progress: that would silently
                   blackhole every retransmission of the request. If no
                   reply went out, forget the entry (so a retransmission
                   re-executes) and answer; the error reply is
                   deliberately NOT cached. If the dispatch had already
                   replied before raising, the completed cache entry is
                   correct — keep it. A typed truncation from the
                   argument decoder is the client's malformed packet,
                   not a server fault: GARBAGE_ARGS, not SYSTEM_ERR. *)
                let stat =
                  match e with
                  | Xdr.Decode_error _ ->
                      Metrics.incr t.garbage;
                      Rpc.Garbage_args
                  | _ ->
                      Metrics.incr t.dispatch_errors;
                      Rpc.System_err
                in
                if tr.live then begin
                  (match t.dupcache with
                  | Some dc -> Dupcache.forget dc ~client ~xid:call.Rpc.xid
                  | None -> ());
                  send_reply t tr stat (Bytes.create 0)
                end)));
    loop ()
  in
  loop ()

let create eng ~sock ?dupcache ?(on_duplicate_drop = fun ~client:_ _ -> ()) ?journeys ?metrics
    ~nfsds ~dispatch () =
  if nfsds <= 0 then invalid_arg "Svc.create: need at least one nfsd";
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let ns = Names.Ns.rpc_svc in
  let t =
    {
      eng;
      sock;
      dupcache;
      on_duplicate_drop;
      journeys;
      free_handles = Queue.create ();
      next_id = 0;
      outstanding = 0;
      received = Metrics.counter m ~ns Names.received;
      garbage = Metrics.counter m ~ns Names.garbage;
      dispatch_errors = Metrics.counter m ~ns Names.dispatch_errors;
      dup_drops = Metrics.counter m ~ns Names.duplicate_drops;
      dup_replays = Metrics.counter m ~ns Names.duplicate_replays;
    }
  in
  for i = 0 to nfsds - 1 do
    Engine.spawn eng ~name:(Printf.sprintf "nfsd%d" i) (svc_run t dispatch)
  done;
  t
