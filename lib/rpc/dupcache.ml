open Nfsg_sim
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names

type state = In_flight | Done of Bytes.t * Time.t

type entry = { mutable state : state; mutable last_touch : Time.t }

type verdict = New | In_progress | Replay of Bytes.t

type t = {
  eng : Engine.t;
  capacity : int;
  ttl : Time.t;
  table : (string * int, entry) Hashtbl.t;
  m_drops : Metrics.counter;
  m_replays : Metrics.counter;
  m_evictions : Metrics.counter;
  m_expirations : Metrics.counter;
  m_overflows : Metrics.counter;
}

let ns = Names.Ns.rpc_dupcache

let create eng ?(capacity = 512) ?(ttl = Time.sec 6) ?metrics () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    eng;
    capacity;
    ttl;
    table = Hashtbl.create 256;
    m_drops = Metrics.counter m ~ns Names.drops;
    m_replays = Metrics.counter m ~ns Names.replays;
    m_evictions = Metrics.counter m ~ns Names.evictions;
    m_expirations = Metrics.counter m ~ns Names.expirations;
    m_overflows = Metrics.counter m ~ns Names.overflows;
  }

let entries t = Hashtbl.length t.table
let drops t = Metrics.value t.m_drops
let replays t = Metrics.value t.m_replays
let evictions t = Metrics.value t.m_evictions
let overflows t = Metrics.value t.m_overflows

(* Make room for one insertion. First drop every completed entry whose
   TTL has lapsed (it can never be replayed again, only re-executed, so
   keeping it buys nothing); if the table is still at capacity, evict
   the least recently touched completed entries until one slot is free.
   In-flight entries are pinned — with every slot pinned there is no
   room, and the caller must not insert. *)
let make_room t =
  let now = Engine.now t.eng in
  let expired =
    Hashtbl.fold
      (fun k e acc ->
        match e.state with
        | Done (_, at) when now - at > t.ttl -> k :: acc
        | Done _ | In_flight -> acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) expired;
  Metrics.add t.m_expirations (List.length expired);
  if Hashtbl.length t.table < t.capacity then true
  else begin
    (* Oldest first; ties broken by key so eviction order never depends
       on hash-table iteration order. *)
    let victims =
      Hashtbl.fold
        (fun k e acc -> match e.state with Done _ -> (e.last_touch, k) :: acc | In_flight -> acc)
        t.table []
      |> List.sort compare
    in
    let excess = Hashtbl.length t.table - t.capacity + 1 in
    let evicted = ref 0 in
    List.iteri
      (fun i (_, k) ->
        if i < excess then begin
          Hashtbl.remove t.table k;
          incr evicted
        end)
      victims;
    Metrics.add t.m_evictions !evicted;
    Hashtbl.length t.table < t.capacity
  end

let admit t ~client ~xid =
  let key = (client, xid) in
  let now = Engine.now t.eng in
  match Hashtbl.find_opt t.table key with
  | Some e -> (
      e.last_touch <- now;
      match e.state with
      | In_flight ->
          Metrics.incr t.m_drops;
          In_progress
      | Done (reply, at) ->
          if now - at <= t.ttl then begin
            Metrics.incr t.m_replays;
            Replay reply
          end
          else begin
            e.state <- In_flight;
            New
          end)
  | None ->
      if make_room t then
        Hashtbl.replace t.table key { state = In_flight; last_touch = now }
      else
        (* Every slot holds an in-flight request: execute uncached. A
           retransmission of this request during execution will not be
           recognised — the price of a bounded table under overload. *)
        Metrics.incr t.m_overflows;
      New

let complete t ~client ~xid reply =
  match Hashtbl.find_opt t.table (client, xid) with
  | Some e ->
      e.state <- Done (reply, Engine.now t.eng);
      e.last_touch <- Engine.now t.eng
  | None -> ()

let forget t ~client ~xid = Hashtbl.remove t.table (client, xid)
