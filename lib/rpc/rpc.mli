(** SunRPC (RFC 1057) message framing over UDP datagrams.

    Only the slice of the protocol NFS v2 needs: AUTH_NULL credentials,
    accepted/success replies plus the error accept-states the server
    actually generates. *)

type call = {
  xid : int;
  prog : int;
  vers : int;
  proc : int;
  body : Xdr.view;  (** procedure-specific arguments, already XDR — a window into the datagram *)
}

type accept_stat = Success | Prog_unavail | Proc_unavail | Garbage_args | System_err

type reply = { rxid : int; stat : accept_stat; rbody : Xdr.view }

val encode_call : call -> Bytes.t
val decode_call : Bytes.t -> call
(** Raises {!Xdr.Dec.Error} on garbage. *)

val encode_reply : reply -> Bytes.t
val decode_reply : Bytes.t -> reply

val is_call : Bytes.t -> bool
(** Cheap test: does this datagram look like an RPC call? (For the
    mbuf hunter, which must classify raw socket-buffer contents.) *)

val peek_call : Bytes.t -> call option
(** Non-raising decode, for scanning. *)

val nfs_program : int
val nfs_version : int

val mount_program : int
(** The MOUNT service (100005), multiplexed over the same socket as
    NFS; used to resolve an export name to a root filehandle. *)
