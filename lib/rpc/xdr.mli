(** XDR (RFC 1014) serialisation: the wire encoding under SunRPC and
    NFS. Everything is big-endian and padded to 4-byte alignment. *)

exception Decode_error of { what : string; need : int; pos : int; have : int }
(** Truncated input: decoding a [what] needed [need] more bytes at
    cursor [pos] of a [have]-byte window. A request body that raises
    this is well-framed RPC but garbage arguments — {!Nfsg_rpc.Svc}
    maps it to a [Garbage_args] reply rather than [System_err]. *)

type view = { view_buf : Bytes.t; view_pos : int; view_len : int }
(** A zero-copy [pos]/[len] window into someone else's buffer. Decoded
    opaques and RPC bodies are views into the datagram they arrived
    in: valid exactly as long as that buffer is, which in the simulator
    means until the owner reuses it. Call {!view_copy} at the single
    point where the bytes must outlive the datagram (e.g. entering the
    buffer cache); everywhere else, pass the view. *)

val view_of_bytes : ?pos:int -> ?len:int -> Bytes.t -> view
(** [view_of_bytes b] views all of [b]; [pos]/[len] narrow the window.
    Raises [Invalid_argument] if the window overruns [b]. *)

val empty_view : view

val view_length : view -> int

val view_copy : view -> Bytes.t
(** Materialise the window as fresh bytes the caller owns. *)

val view_to_string : view -> string

val view_get : view -> int -> char
(** Byte at window-relative index; raises [Invalid_argument] outside
    the window. *)

val blit_view : view -> src_off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit
(** Copy [len] bytes starting at window-relative [src_off] into [dst].
    The escape hatch for cache fills; bounds-checked against the
    window. *)

val view_equal : view -> view -> bool
(** Content equality. Structural ([=]) equality on views compares the
    whole backing buffers and window offsets, which is almost never
    what a test means. *)

module Enc : sig
  type t

  val create : ?size_hint:int -> unit -> t
  val uint32 : t -> int -> unit
  (** Raises [Invalid_argument] outside [0, 2^32). *)

  val int32 : t -> int -> unit
  val uint64 : t -> int -> unit
  val bool : t -> bool -> unit
  val enum : t -> int -> unit

  val opaque_fixed : t -> Bytes.t -> unit
  (** Raw bytes padded to a 4-byte boundary, no length prefix. *)

  val opaque : t -> Bytes.t -> unit
  (** Variable-length opaque: length prefix + padded bytes. *)

  val opaque_view : t -> view -> unit
  (** {!opaque}, straight out of a view without an intermediate copy. *)

  val string : t -> string -> unit

  val raw : t -> Bytes.t -> unit
  (** Append bytes verbatim, no padding — for embedding an
      already-encoded XDR body whose length is known to the framing. *)

  val raw_view : t -> view -> unit
  (** {!raw} from a view, copying only into the output buffer. *)

  val to_bytes : t -> Bytes.t
  val length : t -> int
end

module Dec : sig
  type t

  exception Error of string
  (** Raised on malformed (but not truncated) input — bad enum values,
      framing that is not a call, and the like. Truncation raises the
      typed {!Decode_error} instead. *)

  val of_bytes : ?pos:int -> Bytes.t -> t

  val of_view : view -> t
  (** Decode within the window only: reads past [view_len] raise
      {!Decode_error} even if the backing buffer continues, so a
      truncated view cannot silently leak bytes from its neighbours. *)

  val uint32 : t -> int
  val int32 : t -> int
  val uint64 : t -> int
  val bool : t -> bool
  val enum : t -> int
  val opaque_fixed : t -> int -> Bytes.t
  val opaque : t -> Bytes.t

  val opaque_fixed_view : t -> int -> view
  (** Zero-copy {!opaque_fixed}: a window into the decoder's buffer. *)

  val opaque_view : t -> view
  (** Zero-copy {!opaque}: length-prefixed window, no allocation
      proportional to the payload. *)

  val string : t -> string

  val rest : t -> Bytes.t
  (** [rest t] is everything from the cursor to the end, verbatim (no
      padding rules) — the body of an RPC message. *)

  val rest_view : t -> view
  (** Zero-copy {!rest}. *)

  val pos : t -> int
  val remaining : t -> int
end
