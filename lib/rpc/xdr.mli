(** XDR (RFC 1014) serialisation: the wire encoding under SunRPC and
    NFS. Everything is big-endian and padded to 4-byte alignment. *)

exception Decode_error of { what : string; need : int; pos : int; have : int }
(** Truncated input: decoding a [what] needed [need] more bytes at
    cursor [pos] of a [have]-byte buffer. A request body that raises
    this is well-framed RPC but garbage arguments — {!Nfsg_rpc.Svc}
    maps it to a [Garbage_args] reply rather than [System_err]. *)

module Enc : sig
  type t

  val create : ?size_hint:int -> unit -> t
  val uint32 : t -> int -> unit
  (** Raises [Invalid_argument] outside [0, 2^32). *)

  val int32 : t -> int -> unit
  val uint64 : t -> int -> unit
  val bool : t -> bool -> unit
  val enum : t -> int -> unit

  val opaque_fixed : t -> Bytes.t -> unit
  (** Raw bytes padded to a 4-byte boundary, no length prefix. *)

  val opaque : t -> Bytes.t -> unit
  (** Variable-length opaque: length prefix + padded bytes. *)

  val string : t -> string -> unit

  val raw : t -> Bytes.t -> unit
  (** Append bytes verbatim, no padding — for embedding an
      already-encoded XDR body whose length is known to the framing. *)

  val to_bytes : t -> Bytes.t
  val length : t -> int
end

module Dec : sig
  type t

  exception Error of string
  (** Raised on malformed (but not truncated) input — bad enum values,
      framing that is not a call, and the like. Truncation raises the
      typed {!Decode_error} instead. *)

  val of_bytes : ?pos:int -> Bytes.t -> t
  val uint32 : t -> int
  val int32 : t -> int
  val uint64 : t -> int
  val bool : t -> bool
  val enum : t -> int
  val opaque_fixed : t -> int -> Bytes.t
  val opaque : t -> Bytes.t
  val string : t -> string

  val rest : t -> Bytes.t
  (** [rest t] is everything from the cursor to the end, verbatim (no
      padding rules) — the body of an RPC message. *)

  val pos : t -> int
  val remaining : t -> int
end
