open Nfsg_sim
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names

type op_class = Light | Middle | Heavy

type params = { initial_rto : Time.t; min_rto : Time.t; max_rto : Time.t; max_attempts : int }

let default_params =
  {
    initial_rto = Time.of_ms_f 1100.0;
    min_rto = Time.ms 500;
    max_rto = Time.sec 20;
    max_attempts = 10;
  }

exception Timeout of int

type rtt_state = { mutable srtt : Time.t; mutable rttvar : Time.t; mutable samples : int }

type t = {
  eng : Engine.t;
  sock : Nfsg_net.Socket.t;
  server : string;
  params : params;
  pending : (int, (Rpc.accept_stat * Xdr.view) option -> unit) Hashtbl.t;
  rtt : (op_class, rtt_state) Hashtbl.t;
  mutable next_xid : int;
  sent : Metrics.counter;
  retrans : Metrics.counter;
  stale : Metrics.counter;
  timeouts : Metrics.counter;
  rtt_us : Nfsg_stats.Histogram.t;
}

let calls_sent t = Metrics.value t.sent
let retransmissions t = Metrics.value t.retrans
let stale_replies t = Metrics.value t.stale

let demux t () =
  let rec loop () =
    let _src, datagram = Nfsg_net.Socket.recv t.sock in
    (match Rpc.decode_reply datagram with
    | exception (Xdr.Dec.Error _ | Xdr.Decode_error _) -> ()
    | reply -> (
        match Hashtbl.find_opt t.pending reply.Rpc.rxid with
        | Some deliver ->
            Hashtbl.remove t.pending reply.Rpc.rxid;
            deliver (Some (reply.Rpc.stat, reply.Rpc.rbody))
        | None -> Metrics.incr t.stale));
    loop ()
  in
  loop ()

let create eng ~sock ~server ?(params = default_params) ?metrics () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let ns = Names.Ns.rpc_client in
  let t =
    {
      eng;
      sock;
      server;
      params;
      pending = Hashtbl.create 64;
      rtt = Hashtbl.create 4;
      next_xid = 1;
      sent = Metrics.counter m ~ns Names.datagrams_sent;
      retrans = Metrics.counter m ~ns Names.retransmissions;
      stale = Metrics.counter m ~ns Names.stale_replies;
      timeouts = Metrics.counter m ~ns Names.timeouts;
      rtt_us = Metrics.histogram m ~ns Names.rtt_us;
    }
  in
  Engine.spawn eng ~name:(Nfsg_net.Socket.addr sock ^ "-rpc-demux") (demux t);
  t

let rtt_state t klass =
  match Hashtbl.find_opt t.rtt klass with
  | Some s -> s
  | None ->
      let s = { srtt = Time.zero; rttvar = Time.zero; samples = 0 } in
      Hashtbl.replace t.rtt klass s;
      s

let rtt_estimate t klass =
  match Hashtbl.find_opt t.rtt klass with
  | Some s when s.samples > 0 -> Some s.srtt
  | Some _ | None -> None

let note_rtt t klass sample =
  let s = rtt_state t klass in
  if s.samples = 0 then begin
    s.srtt <- sample;
    s.rttvar <- sample / 2
  end
  else begin
    (* Van Jacobson smoothing, integer arithmetic. *)
    let err = sample - s.srtt in
    s.srtt <- s.srtt + (err / 8);
    s.rttvar <- s.rttvar + ((abs err - s.rttvar) / 4)
  end;
  s.samples <- s.samples + 1

(* Starting timeout for a class: adapted once we have samples, the
   paper's 1.1 s default until then. *)
let rto_for t klass =
  let s = rtt_state t klass in
  if s.samples = 0 then t.params.initial_rto
  else begin
    let candidate = s.srtt + (4 * s.rttvar) in
    Stdlib.min t.params.max_rto (Stdlib.max candidate t.params.min_rto)
  end

let call t ?(klass = Middle) ?(prog = Rpc.nfs_program) ~proc body =
  t.next_xid <- t.next_xid + 1;
  let xid = t.next_xid in
  let payload =
    Rpc.encode_call { Rpc.xid; prog; vers = Rpc.nfs_version; proc; body = Xdr.view_of_bytes body }
  in
  let rec attempt n rto =
    if n > t.params.max_attempts then begin
      Metrics.incr t.timeouts;
      raise (Timeout proc)
    end;
    let sent_at = Engine.now t.eng in
    Nfsg_net.Socket.send t.sock ~dst:t.server payload;
    Metrics.incr t.sent;
    if n > 1 then Metrics.incr t.retrans;
    let outcome =
      Engine.suspend (fun wake ->
          let tm =
            Engine.timer t.eng ~after:rto (fun () ->
                if Hashtbl.mem t.pending xid then begin
                  Hashtbl.remove t.pending xid;
                  wake None
                end)
          in
          Hashtbl.replace t.pending xid (fun reply ->
              ignore (Engine.cancel tm : bool);
              wake reply))
    in
    match outcome with
    | Some reply ->
        let rtt = Engine.now t.eng - sent_at in
        note_rtt t klass rtt;
        Nfsg_stats.Histogram.add t.rtt_us (Time.to_us_f rtt);
        reply
    | None -> attempt (n + 1) (Stdlib.min t.params.max_rto (2 * rto))
  in
  attempt 1 (rto_for t klass)
