let pad4 n = (4 - (n mod 4)) mod 4

exception Decode_error of { what : string; need : int; pos : int; have : int }

let () =
  Printexc.register_printer (function
    | Decode_error { what; need; pos; have } ->
        Some
          (Printf.sprintf "Xdr.Decode_error: truncated %s: need %d at %d of %d" what need pos have)
    | _ -> None)

module Enc = struct
  type t = Buffer.t

  let create ?(size_hint = 256) () = Buffer.create size_hint

  let uint32 t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg (Printf.sprintf "Xdr.uint32: %d" v);
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int v);
    Buffer.add_bytes t b

  let int32 t v =
    if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
      invalid_arg (Printf.sprintf "Xdr.int32: %d" v);
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int v);
    Buffer.add_bytes t b

  let uint64 t v =
    if v < 0 then invalid_arg (Printf.sprintf "Xdr.uint64: %d" v);
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (Int64.of_int v);
    Buffer.add_bytes t b

  let bool t v = uint32 t (if v then 1 else 0)
  let enum t v = int32 t v

  let opaque_fixed t data =
    Buffer.add_bytes t data;
    Buffer.add_string t (String.make (pad4 (Bytes.length data)) '\000')

  let opaque t data =
    uint32 t (Bytes.length data);
    opaque_fixed t data

  let string t s = opaque t (Bytes.of_string s)
  let raw t data = Buffer.add_bytes t data
  let to_bytes t = Buffer.to_bytes t
  let length t = Buffer.length t
end

module Dec = struct
  type t = { buf : Bytes.t; mutable pos : int }

  exception Error of string

  let of_bytes ?(pos = 0) buf = { buf; pos }

  let need t ~what n =
    if t.pos + n > Bytes.length t.buf then
      raise (Decode_error { what; need = n; pos = t.pos; have = Bytes.length t.buf })

  let uint32 t =
    need t ~what:"uint32" 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let int32 t =
    need t ~what:"int32" 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) in
    t.pos <- t.pos + 4;
    v

  let uint64 t =
    need t ~what:"uint64" 8;
    let v = Int64.to_int (Bytes.get_int64_be t.buf t.pos) in
    t.pos <- t.pos + 8;
    if v < 0 then raise (Error "uint64 overflow");
    v

  let bool t =
    match uint32 t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Error (Printf.sprintf "bad bool %d" n))

  let enum t = int32 t

  let opaque_fixed t n =
    if n < 0 then raise (Error "negative opaque length");
    need t ~what:"opaque" (n + pad4 n);
    let v = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n + pad4 n;
    v

  let opaque t =
    let n = uint32 t in
    opaque_fixed t n

  let string t = Bytes.to_string (opaque t)

  let rest t =
    let v = Bytes.sub t.buf t.pos (Bytes.length t.buf - t.pos) in
    t.pos <- Bytes.length t.buf;
    v

  let pos t = t.pos
  let remaining t = Bytes.length t.buf - t.pos
end
