let pad4 n = (4 - (n mod 4)) mod 4

exception Decode_error of { what : string; need : int; pos : int; have : int }

let () =
  Printexc.register_printer (function
    | Decode_error { what; need; pos; have } ->
        Some
          (Printf.sprintf "Xdr.Decode_error: truncated %s: need %d at %d of %d" what need pos have)
    | _ -> None)

(* An offset/length window into a buffer someone else owns. Views are
   how decoded opaques and RPC bodies travel through the stack without
   being copied at every hop; the copy happens exactly once, where the
   bytes escape into storage that outlives the datagram. *)
type view = { view_buf : Bytes.t; view_pos : int; view_len : int }

let view_of_bytes ?(pos = 0) ?len buf =
  let len = match len with Some n -> n | None -> Bytes.length buf - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg
      (Printf.sprintf "Xdr.view_of_bytes: window [%d,+%d) outside %d-byte buffer" pos len
         (Bytes.length buf));
  { view_buf = buf; view_pos = pos; view_len = len }

let empty_view = { view_buf = Bytes.create 0; view_pos = 0; view_len = 0 }
let view_length v = v.view_len
let view_copy v = Bytes.sub v.view_buf v.view_pos v.view_len
let view_to_string v = Bytes.sub_string v.view_buf v.view_pos v.view_len
let view_get v i =
  if i < 0 || i >= v.view_len then invalid_arg "Xdr.view_get: out of window";
  Bytes.get v.view_buf (v.view_pos + i)

let blit_view v ~src_off ~dst ~dst_off ~len =
  if src_off < 0 || len < 0 || src_off + len > v.view_len then
    invalid_arg "Xdr.blit_view: range outside view";
  Bytes.blit v.view_buf (v.view_pos + src_off) dst dst_off len

let view_equal a b =
  a.view_len = b.view_len
  &&
  let rec eq i =
    i >= a.view_len
    || Bytes.get a.view_buf (a.view_pos + i) = Bytes.get b.view_buf (b.view_pos + i) && eq (i + 1)
  in
  eq 0

module Enc = struct
  type t = Buffer.t

  let create ?(size_hint = 256) () = Buffer.create size_hint

  let uint32 t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg (Printf.sprintf "Xdr.uint32: %d" v);
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int v);
    Buffer.add_bytes t b

  let int32 t v =
    if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
      invalid_arg (Printf.sprintf "Xdr.int32: %d" v);
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int v);
    Buffer.add_bytes t b

  let uint64 t v =
    if v < 0 then invalid_arg (Printf.sprintf "Xdr.uint64: %d" v);
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (Int64.of_int v);
    Buffer.add_bytes t b

  let bool t v = uint32 t (if v then 1 else 0)
  let enum t v = int32 t v

  let opaque_fixed t data =
    Buffer.add_bytes t data;
    Buffer.add_string t (String.make (pad4 (Bytes.length data)) '\000')

  let opaque t data =
    uint32 t (Bytes.length data);
    opaque_fixed t data

  let string t s = opaque t (Bytes.of_string s)
  let raw t data = Buffer.add_bytes t data

  let raw_view t v = Buffer.add_subbytes t v.view_buf v.view_pos v.view_len

  let opaque_view t v =
    uint32 t v.view_len;
    raw_view t v;
    Buffer.add_string t (String.make (pad4 v.view_len) '\000')

  let to_bytes t = Buffer.to_bytes t
  let length t = Buffer.length t
end

module Dec = struct
  (* [limit] bounds the decodable window so a decoder over a view
     cannot read past the view's end even though the underlying buffer
     continues; truncation errors report positions relative to the
     window start ([base]). *)
  type t = { buf : Bytes.t; base : int; limit : int; mutable pos : int }

  exception Error of string

  let of_bytes ?(pos = 0) buf = { buf; base = 0; limit = Bytes.length buf; pos }

  let of_view v =
    { buf = v.view_buf; base = v.view_pos; limit = v.view_pos + v.view_len; pos = v.view_pos }

  let need t ~what n =
    if t.pos + n > t.limit then
      raise (Decode_error { what; need = n; pos = t.pos - t.base; have = t.limit - t.base })

  let uint32 t =
    need t ~what:"uint32" 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let int32 t =
    need t ~what:"int32" 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) in
    t.pos <- t.pos + 4;
    v

  let uint64 t =
    need t ~what:"uint64" 8;
    let v = Int64.to_int (Bytes.get_int64_be t.buf t.pos) in
    t.pos <- t.pos + 8;
    if v < 0 then raise (Error "uint64 overflow");
    v

  let bool t =
    match uint32 t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Error (Printf.sprintf "bad bool %d" n))

  let enum t = int32 t

  let opaque_fixed_view t n =
    if n < 0 then raise (Error "negative opaque length");
    need t ~what:"opaque" (n + pad4 n);
    let v = { view_buf = t.buf; view_pos = t.pos; view_len = n } in
    t.pos <- t.pos + n + pad4 n;
    v

  let opaque_fixed t n = view_copy (opaque_fixed_view t n)

  let opaque_view t =
    let n = uint32 t in
    opaque_fixed_view t n

  let opaque t = view_copy (opaque_view t)
  let string t = view_to_string (opaque_view t)

  let rest_view t =
    let v = { view_buf = t.buf; view_pos = t.pos; view_len = t.limit - t.pos } in
    t.pos <- t.limit;
    v

  let rest t = view_copy (rest_view t)
  let pos t = t.pos - t.base
  let remaining t = t.limit - t.pos
end
