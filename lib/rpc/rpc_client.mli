(** Client-side RPC over UDP with retransmission and adaptive backoff.

    One [t] per client host. A demultiplexing daemon matches incoming
    replies to outstanding calls by xid. Calls that time out are
    retransmitted with exponential backoff; the retransmission timer is
    seeded per {e operation class} — the paper's point that servers are
    judged by write (heavyweight), read (middleweight) and lookup
    (lightweight) performance, with write latency steering the client's
    view of the server. *)

type t

type op_class = Light | Middle | Heavy

type params = {
  initial_rto : Nfsg_sim.Time.t;  (** default 1.1 s, as in the paper *)
  min_rto : Nfsg_sim.Time.t;
      (** floor for the adapted timer (default 500 ms — 1990s clients
          never retransmitted faster than a large fraction of a
          second) *)
  max_rto : Nfsg_sim.Time.t;
  max_attempts : int;  (** give up (raise {!Timeout}) after this many sends *)
}

val default_params : params

exception Timeout of int
(** Procedure number that exhausted its attempts. *)

val create :
  Nfsg_sim.Engine.t ->
  sock:Nfsg_net.Socket.t ->
  server:string ->
  ?params:params ->
  ?metrics:Nfsg_stats.Metrics.t ->
  unit ->
  t
(** [metrics] registers sent/retransmission/stale/timeout counters and
    the [rtt_us] round-trip histogram under namespace ["rpc.client"]
    (private registry when omitted). *)

val call :
  t -> ?klass:op_class -> ?prog:int -> proc:int -> Bytes.t -> Rpc.accept_stat * Xdr.view
(** Blocking remote call; returns the decoded reply body as a view
    into the reply datagram (copy it if it must outlive the call). [prog]
    defaults to {!Rpc.nfs_program}; pass {!Rpc.mount_program} to reach
    the mount service. *)

val rtt_estimate : t -> op_class -> Nfsg_sim.Time.t option
(** Smoothed RTT for the class, once at least one sample exists. *)

val calls_sent : t -> int
val retransmissions : t -> int
val stale_replies : t -> int
(** Replies that arrived after their call had already been satisfied
    (or abandoned) — usually the fruit of a retransmission. *)
