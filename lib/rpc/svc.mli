(** Server-side RPC: the svc_run loop, the transport-handle cache, and
    the {e delayed reply} architecture of paper section 6.1.

    Each nfsd is a simulation process running the svc loop: take a
    datagram off the NFS socket, decode, consult the duplicate cache,
    and dispatch. The dispatch routine (the NFS server layer) returns
    either [Reply] — the nfsd sends it and recycles its transport
    handle — or [Reply_pending] — the handle is left checked out and
    {e some other} nfsd will complete it later via {!send_reply}; the
    original nfsd immediately takes a fresh handle from the cache and
    looks for more work. This is exactly the architectural change that
    lets one nfsd answer for another. *)

type t

type transport
(** Checked-out transport handle: remembers the client address and xid
    a delayed reply must go to. *)

type disposition = Reply of Rpc.accept_stat * Bytes.t | Reply_pending

val create :
  Nfsg_sim.Engine.t ->
  sock:Nfsg_net.Socket.t ->
  ?dupcache:Dupcache.t ->
  ?on_duplicate_drop:(client:string -> Rpc.call -> unit) ->
  ?journeys:Nfsg_stats.Journey.plane ->
  ?metrics:Nfsg_stats.Metrics.t ->
  nfsds:int ->
  dispatch:(transport -> Rpc.call -> disposition) ->
  unit ->
  t
(** Spawns [nfsds] server daemons named nfsd0..n. [on_duplicate_drop]
    fires when an in-progress duplicate is discarded — the hook the
    write-gathering layer uses to avoid orphaned gathered writes
    (section 6.9). [journeys], when given, attaches a journey record to
    every admitted request (stamped at socket arrival, nfsd pickup and
    dupcache admission) and finishes it when the reply departs.
    [metrics] registers received/garbage/dispatch-error
    and duplicate drop/replay counters under namespace ["rpc.svc"]
    (private registry when omitted). *)

val send_reply : t -> transport -> Rpc.accept_stat -> Bytes.t -> unit
(** Complete a delayed (or immediate) reply: encode, transmit, record
    in the duplicate cache, recycle the handle. Usable from any
    process. Raises [Invalid_argument] if the handle was already
    replied to. *)

val client_of : transport -> string
val xid_of : transport -> int

val journey_of : transport -> Nfsg_stats.Journey.t option
(** The journey record attached when the request was admitted ([None]
    when the service was created without a journey plane). Layers below
    the dispatcher use this to stamp gather-plane and disk progress. *)

val handles_outstanding : t -> int
(** Handles checked out and not yet replied (pending writes). *)

val handle_cache_size : t -> int
val requests_received : t -> int
val garbage_dropped : t -> int

val dispatch_errors : t -> int
(** Dispatches that raised. Each was answered with [System_err] and had
    its in-progress duplicate-cache entry forgotten (so a client
    retransmission re-executes rather than being blackholed); the error
    reply itself is never cached. *)
