(** Duplicate request cache ([JUSZ89]: "Improving the Performance and
    Correctness of an NFS Server").

    Keyed by (client address, xid). A request seen while the same
    request is {e in progress} is dropped; a request whose reply was
    sent recently gets the cached reply retransmitted instead of being
    re-executed — essential for non-idempotent operations under client
    retransmission. *)

type t

type verdict =
  | New  (** execute it (now marked in-progress) *)
  | In_progress  (** drop: an nfsd is already on it *)
  | Replay of Bytes.t  (** retransmit this cached reply *)

val create :
  Nfsg_sim.Engine.t ->
  ?capacity:int ->
  ?ttl:Nfsg_sim.Time.t ->
  ?metrics:Nfsg_stats.Metrics.t ->
  unit ->
  t
(** [capacity] is a hard bound on entries; [ttl] is how long a completed
    reply stays replayable (default 6 s). Admitting a new request first
    drops TTL-expired completed entries, then evicts least-recently
    touched completed entries (oldest first, deterministic tie-break)
    until the table is under capacity. In-flight entries are never
    evicted; if every slot is in flight the new request executes
    {e uncached} (an overflow) rather than growing the table. [metrics]
    registers drop/replay/eviction/expiration/overflow counters under
    namespace ["rpc.dupcache"] (private registry when omitted). *)

val admit : t -> client:string -> xid:int -> verdict

val complete : t -> client:string -> xid:int -> Bytes.t -> unit
(** Record the encoded reply for future replays. *)

val forget : t -> client:string -> xid:int -> unit
(** Drop an in-progress entry without a reply (e.g. dispatch failed
    before a reply existed). *)

val entries : t -> int
val drops : t -> int
(** Requests dropped as in-progress duplicates. *)

val replays : t -> int

val evictions : t -> int
(** Completed entries evicted to make room (TTL expirations not
    included). *)

val overflows : t -> int
(** Requests executed uncached because every slot held an in-flight
    request. *)
