(** Datagram socket with a bounded, scannable receive buffer.

    The receive buffer is bounded in {e bytes} (DEC OSF/1 used at most
    0.25 MB of socket buffering, per the paper's conclusions); datagrams
    that do not fit are dropped and counted. {!scan} exposes the queued
    datagrams without consuming them — the hook the paper's "mbuf
    hunter" (section 6.5) needs, layering violation included. *)

type t

val create :
  Segment.t ->
  addr:string ->
  ?rcvbuf:int ->
  ?on_rx_fragment:(bytes:int -> unit) ->
  unit ->
  t
(** Attach a station to the segment. [rcvbuf] defaults to 256 KiB.
    [on_rx_fragment] fires once per received transport unit, letting
    the owner charge packet-reassembly CPU. *)

val addr : t -> string

val send : t -> dst:string -> Bytes.t -> unit
(** Queue a datagram for transmission. Never blocks (interface queue is
    not modelled; the shared medium is). *)

val recv : t -> string * Bytes.t
(** Blocking receive: [(source address, payload)]. *)

val recv_stamped : t -> string * Bytes.t * Nfsg_sim.Time.t
(** Like {!recv}, additionally returning the instant the datagram was
    enqueued into the receive buffer — the arrival stamp journey
    records measure socket wait from. *)

val scan : t -> (src:string -> Bytes.t -> bool) -> bool
(** [scan s pred] is [true] iff some queued (unconsumed) datagram
    satisfies [pred]. Does not consume anything. *)

val detach : t -> unit
(** Remove the station from the segment: subsequent datagrams for this
    address vanish (the host is off the wire). The address becomes
    reusable — how a rebooted server reclaims its identity. *)

val pending : t -> int
(** Datagrams queued awaiting {!recv}. *)

val pending_bytes : t -> int
val received : t -> int
val dropped : t -> int
(** Datagrams dropped because the buffer was full. *)
