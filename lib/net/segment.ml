open Nfsg_sim
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names

type params = {
  bandwidth : float;
  mtu : int;
  frag_overhead_bytes : int;
  frag_gap : Time.t;
  latency : Time.t;
  loss_prob : float;
}

let ethernet =
  {
    bandwidth = 10e6;
    mtu = 1500;
    frag_overhead_bytes = 26;
    frag_gap = Time.of_us_f 15.0;
    latency = Time.of_us_f 400.0;
    loss_prob = 0.0;
  }

let fddi =
  {
    bandwidth = 100e6;
    mtu = 4352;
    frag_overhead_bytes = 28;
    frag_gap = Time.of_us_f 4.0;
    latency = Time.of_us_f 120.0;
    loss_prob = 0.0;
  }

type station = {
  addr : string;
  deliver : src:string -> Bytes.t -> unit;
  rx_fragment : bytes:int -> unit;
  buffer_drops : unit -> int;
}

type job = { src : string; dst : string; payload : Bytes.t }

type t = {
  eng : Engine.t;
  p : params;
  rng : Rng.t;
  stations : (string, station) Hashtbl.t;
  queue : job Squeue.t;
  mutable loss : float;  (** runtime drop probability (starts at [p.loss_prob]) *)
  mutable dup : float;  (** runtime duplication probability *)
  mutable partitions : (string * string * Time.t) list;
      (** blacked-out unordered address pairs, with expiry instants *)
  sent : Metrics.counter;
  lost : Metrics.counter;
  duplicated : Metrics.counter;
  blackholed : Metrics.counter;
  bytes : Metrics.counter;
  mutable busy : Time.t;
}

let params t = t.p
let engine t = t.eng
let datagrams_sent t = Metrics.value t.sent
let datagrams_lost t = Metrics.value t.lost
let datagrams_duplicated t = Metrics.value t.duplicated
let datagrams_blackholed t = Metrics.value t.blackholed
let bytes_sent t = Metrics.value t.bytes
let busy_time t = t.busy

let loss_prob t = t.loss
let set_loss_prob t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Segment.set_loss_prob: need 0 <= p < 1";
  t.loss <- p

let dup_prob t = t.dup
let set_dup_prob t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Segment.set_dup_prob: need 0 <= p < 1";
  t.dup <- p

let pair_matches a b (x, y, _) = (x = a && y = b) || (x = b && y = a)

let partition t ~a ~b ~until =
  (* Healing an old window before opening a new one keeps the list a
     set: at most one entry per pair. *)
  t.partitions <- (a, b, until) :: List.filter (fun e -> not (pair_matches a b e)) t.partitions

let heal t ~a ~b = t.partitions <- List.filter (fun e -> not (pair_matches a b e)) t.partitions

let partitioned t ~a ~b =
  let now = Engine.now t.eng in
  (* Lazily drop expired windows so the list never grows with history. *)
  t.partitions <- List.filter (fun (_, _, until) -> until > now) t.partitions;
  List.exists (pair_matches a b) t.partitions

let station_drops t =
  Hashtbl.fold (fun addr s acc -> (addr, s.buffer_drops ()) :: acc) t.stations []
  |> List.sort compare

let fragments_of p size = Stdlib.max 1 ((size + p.mtu - 1) / p.mtu)

let wire_time p size =
  let nfrags = fragments_of p size in
  let wire_bytes = size + (nfrags * p.frag_overhead_bytes) in
  Time.of_sec_f (float_of_int (wire_bytes * 8) /. p.bandwidth) + (nfrags * p.frag_gap)

let deliver_to t ~src ~dst ~nfrags ~size payload =
  Engine.schedule t.eng ~after:t.p.latency (fun () ->
      match Hashtbl.find_opt t.stations dst with
      | None -> () (* no such station: datagram vanishes *)
      | Some station ->
          (* Receiver-side per-fragment cost (reassembly). *)
          for _ = 1 to nfrags do
            station.rx_fragment ~bytes:(Stdlib.min size t.p.mtu)
          done;
          station.deliver ~src payload)

let daemon t () =
  let rec loop () =
    let { src; dst; payload } = Squeue.get t.queue in
    let size = Bytes.length payload in
    let occupancy = wire_time t.p size in
    Engine.delay occupancy;
    Metrics.incr t.sent;
    Metrics.add t.bytes size;
    t.busy <- t.busy + occupancy;
    if partitioned t ~a:src ~b:dst then Metrics.incr t.blackholed
    else if Rng.bool t.rng t.loss then Metrics.incr t.lost
    else begin
      let nfrags = fragments_of t.p size in
      deliver_to t ~src ~dst ~nfrags ~size payload;
      (* Datagram duplication (a misbehaving bridge): the copy arrives
         one extra latency later, exercising the duplicate cache. *)
      if t.dup > 0.0 && Rng.bool t.rng t.dup then begin
        Metrics.incr t.duplicated;
        Engine.schedule t.eng ~after:t.p.latency (fun () ->
            deliver_to t ~src ~dst ~nfrags ~size payload)
      end
    end;
    loop ()
  in
  loop ()

let create eng ?(seed = 0x5e9) ?metrics p =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let ns = Names.Ns.net in
  let t =
    {
      eng;
      p;
      rng = Rng.create seed;
      stations = Hashtbl.create 8;
      queue = Squeue.create ();
      loss = p.loss_prob;
      dup = 0.0;
      partitions = [];
      sent = Metrics.counter m ~ns Names.datagrams_sent;
      lost = Metrics.counter m ~ns Names.datagrams_lost;
      duplicated = Metrics.counter m ~ns Names.datagrams_duplicated;
      blackholed = Metrics.counter m ~ns Names.datagrams_blackholed;
      bytes = Metrics.counter m ~ns Names.bytes_sent;
      busy = Time.zero;
    }
  in
  Engine.spawn eng ~name:"segment" (daemon t);
  t

let attach t station =
  if Hashtbl.mem t.stations station.addr then
    invalid_arg ("Segment.attach: duplicate address " ^ station.addr);
  Hashtbl.replace t.stations station.addr station

let detach t addr = Hashtbl.remove t.stations addr
let transmit t ~src ~dst payload = Squeue.put t.queue { src; dst; payload }
