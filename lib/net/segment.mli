(** Shared network segment (an Ethernet or an FDDI ring).

    All stations on a segment share one medium: transmissions are
    serialised in FIFO order, so a busy network delays everyone — the
    paper's "network interface capacity" limit. A datagram is
    fragmented into MTU-sized transport units; its wire time covers
    payload, per-fragment header bytes and a per-fragment fixed gap
    (preamble / token rotation), and it is delivered whole to the
    destination socket one propagation latency after the last fragment
    leaves the wire.

    Delivery is into a bounded socket buffer; datagrams arriving at a
    full buffer are dropped, exactly like the fixed-size NFS socket
    buffer of a reference-port server ("if the queue fills then some
    incoming requests may be lost"). Random loss can be injected on
    top.

    {b Fault injection.} Loss probability is runtime-adjustable
    ({!set_loss_prob}); datagrams can be probabilistically duplicated
    ({!set_dup_prob}); and time-windowed {!partition}s black out all
    traffic between an address pair until they expire or are
    {!heal}ed. All draws come from the segment's seeded RNG, so a
    fault schedule is bit-for-bit reproducible. *)

type params = {
  bandwidth : float;  (** bits per second *)
  mtu : int;  (** payload bytes per fragment *)
  frag_overhead_bytes : int;  (** wire header bytes per fragment *)
  frag_gap : Nfsg_sim.Time.t;  (** fixed medium time per fragment *)
  latency : Nfsg_sim.Time.t;  (** propagation + interface latency *)
  loss_prob : float;  (** independent drop probability per datagram *)
}

val ethernet : params
(** 10 Mb/s, MTU 1500 — the paper's private Ethernet. *)

val fddi : params
(** 100 Mb/s, MTU 4352 — the paper's FDDI ring. *)

type t

val create : Nfsg_sim.Engine.t -> ?seed:int -> ?metrics:Nfsg_stats.Metrics.t -> params -> t
(** [metrics] registers sent/lost/duplicated/blackholed datagram and
    byte counters under namespace ["net"] (private registry when
    omitted). *)

val params : t -> params
val engine : t -> Nfsg_sim.Engine.t

val fragments_of : params -> int -> int
(** Number of transport units a datagram of the given payload size
    needs. *)

val wire_time : params -> int -> Nfsg_sim.Time.t
(** Medium occupancy for one datagram of the given payload size. *)

(** {1 Fault controls} *)

val loss_prob : t -> float
val set_loss_prob : t -> float -> unit
(** Change the independent per-datagram drop probability mid-run.
    Needs [0 <= p < 1]. *)

val dup_prob : t -> float
val set_dup_prob : t -> float -> unit
(** Probability a delivered datagram is delivered a second time (one
    extra propagation latency later). Needs [0 <= p < 1]. *)

val partition : t -> a:string -> b:string -> until:Nfsg_sim.Time.t -> unit
(** Black out all traffic between addresses [a] and [b] (both
    directions) until the absolute instant [until]. Re-partitioning a
    pair replaces its window. *)

val heal : t -> a:string -> b:string -> unit
(** End a partition early. No-op if the pair is not partitioned. *)

val partitioned : t -> a:string -> b:string -> bool

(** {1 Statistics} *)

val datagrams_sent : t -> int
val datagrams_lost : t -> int
(** Lost to injected random loss (socket-buffer drops are counted at
    the socket). *)

val datagrams_duplicated : t -> int
val datagrams_blackholed : t -> int
(** Swallowed by an active partition window. *)

val bytes_sent : t -> int
val busy_time : t -> Nfsg_sim.Time.t

val station_drops : t -> (string * int) list
(** Per-station receive-buffer overflow drops, sorted by address — the
    receiver-side loss {!datagrams_lost} does not see, so reports can
    tell wire loss from rcvbuf overflow. *)

(**/**)

(* Internal plumbing shared with Socket. *)

type station = {
  addr : string;
  deliver : src:string -> Bytes.t -> unit;
  rx_fragment : bytes:int -> unit;
  buffer_drops : unit -> int;
}

val attach : t -> station -> unit
val detach : t -> string -> unit
val transmit : t -> src:string -> dst:string -> Bytes.t -> unit
