type t = {
  segment : Segment.t;
  addr : string;
  rcvbuf : int;
  queue : (string * Bytes.t * Nfsg_sim.Time.t) Nfsg_sim.Squeue.t;
  mutable buffered_bytes : int;
  mutable received : int;
  mutable dropped : int;
}

let addr s = s.addr
let pending s = Nfsg_sim.Squeue.length s.queue
let pending_bytes s = s.buffered_bytes
let received s = s.received
let dropped s = s.dropped

let create segment ~addr ?(rcvbuf = 256 * 1024) ?(on_rx_fragment = fun ~bytes:_ -> ()) () =
  let s =
    {
      segment;
      addr;
      rcvbuf;
      queue = Nfsg_sim.Squeue.create ();
      buffered_bytes = 0;
      received = 0;
      dropped = 0;
    }
  in
  let deliver ~src payload =
    if s.buffered_bytes + Bytes.length payload > s.rcvbuf then s.dropped <- s.dropped + 1
    else begin
      s.buffered_bytes <- s.buffered_bytes + Bytes.length payload;
      s.received <- s.received + 1;
      (* Arrival stamp: the instant the datagram entered the buffer,
         so a consumer can measure how long it waited for service. *)
      Nfsg_sim.Squeue.put s.queue (src, payload, Nfsg_sim.Engine.now (Segment.engine segment))
    end
  in
  Segment.attach segment
    { Segment.addr; deliver; rx_fragment = on_rx_fragment; buffer_drops = (fun () -> s.dropped) };
  s

let send s ~dst payload = Segment.transmit s.segment ~src:s.addr ~dst payload
let detach s = Segment.detach s.segment s.addr

let recv_stamped s =
  let ((_, payload, _) as msg) = Nfsg_sim.Squeue.get s.queue in
  s.buffered_bytes <- s.buffered_bytes - Bytes.length payload;
  msg

let recv s =
  let src, payload, _ = recv_stamped s in
  (src, payload)

let scan s pred =
  let found = ref false in
  Nfsg_sim.Squeue.iter
    (fun (src, payload, _) -> if (not !found) && pred ~src payload then found := true)
    s.queue;
  !found
