open Nfsg_sim
module Device = Nfsg_disk.Device
module Io = Nfsg_disk.Io

type inode = {
  inum : int;
  mutable ftype : Layout.ftype;
  mutable nlink : int;
  mutable size : int;
  mutable mtime : Time.t;
  mutable atime : Time.t;
  mutable ctime : Time.t;
  mutable direct : int array;
  mutable single_ind : int;
  mutable double_ind : int;
  mutable gen : int;
  mutable meta_dirty : [ `Clean | `Time_only | `Dirty ];
  mutable dirty_indirects : int list;
  lock : Mutex.t;
}

type t = {
  eng : Engine.t;
  dev : Device.t;
  sb : Layout.superblock;
  bcache : Buffer_cache.t;
  balloc : Alloc.t;
  incore : (int, inode) Hashtbl.t;
  gens : int array;  (** current generation per inode slot *)
  used : bool array;  (** slot in use *)
  mutable free_blocks : int;
  mutable cluster_max : int;
}

type attr = {
  ftype : Layout.ftype;
  nlink : int;
  size : int;
  mtime : Time.t;
  atime : Time.t;
  ctime : Time.t;
  inum : int;
  gen : int;
}

type fsstat = { total_blocks : int; free_blocks : int; bsize : int }

exception Stale of int
exception Not_dir of int
exception Is_dir of int
exception Not_symlink of int
exception Exists of string
exception Not_empty of int
exception No_space

let engine t = t.eng
let device t = t.dev
let cache t = t.bcache
let superblock t = t.sb
let bsize t = t.sb.Layout.bsize
let cluster_max t = t.cluster_max

let set_cluster_max t n =
  if n < bsize t then invalid_arg "Fs.set_cluster_max: below block size";
  t.cluster_max <- n

let inum (i : inode) = i.inum
let generation (i : inode) = i.gen
let lock_of (i : inode) = i.lock
let meta_dirty (i : inode) = i.meta_dirty

(* {1 mkfs} *)

let mkfs dev ?(bsize = 8192) ?(ninodes = 4096) () =
  let sb = Layout.make_superblock ~bsize ~capacity:dev.Device.capacity ~ninodes in
  dev.Device.stable_write ~off:0 (Layout.encode_superblock sb);
  (* Bitmap: metadata blocks allocated, data area free. *)
  let zero = Bytes.make bsize '\000' in
  for b = sb.Layout.bitmap_start to sb.Layout.bitmap_start + sb.Layout.bitmap_blocks - 1 do
    dev.Device.stable_write ~off:(b * bsize) zero
  done;
  let bitmap = Bytes.make (sb.Layout.bitmap_blocks * bsize) '\000' in
  for b = 0 to sb.Layout.data_start - 1 do
    let byte = Char.code (Bytes.get bitmap (b / 8)) in
    Bytes.set bitmap (b / 8) (Char.chr (byte lor (1 lsl (b mod 8))))
  done;
  dev.Device.stable_write ~off:(sb.Layout.bitmap_start * bsize) bitmap;
  (* Inode table: all free, root directory at inode 1. *)
  for b = sb.Layout.itable_start to sb.Layout.itable_start + sb.Layout.itable_blocks - 1 do
    dev.Device.stable_write ~off:(b * bsize) zero
  done;
  let root =
    { Layout.zero_dinode with Layout.ftype = Layout.Directory; nlink = 1; gen = 1 }
  in
  let rblk, roff = Layout.inode_block sb sb.Layout.root_inum in
  dev.Device.stable_write ~off:((rblk * bsize) + roff) (Layout.encode_dinode root)

(* {1 Block mapping} *)

let ppb t = Layout.pointers_per_block t.sb

let alloc_block t ?near () =
  match Alloc.alloc t.balloc ?near () with
  | b ->
      t.free_blocks <- t.free_blocks - 1;
      b
  | exception Alloc.No_space -> raise No_space

let free_block t b =
  Alloc.free t.balloc b;
  Buffer_cache.drop t.bcache b;
  t.free_blocks <- t.free_blocks + 1

let mark_indirect_dirty t (ino : inode) b =
  Buffer_cache.mark_dirty t.bcache b Buffer_cache.Metadata;
  if not (List.mem b ino.dirty_indirects) then ino.dirty_indirects <- b :: ino.dirty_indirects

(* Map file block [fbn] to a disk block. With [alloc_missing], holes
   (and missing indirect blocks) are allocated; [near] seeds locality.
   Returns 0 for an unmapped hole when not allocating. *)
let bmap t (ino : inode) fbn ~alloc_missing ~near =
  if fbn < 0 || fbn >= Layout.max_file_blocks t.sb then
    invalid_arg (Printf.sprintf "bmap: file block %d out of range" fbn);
  let get_slot ib idx =
    let buf = Buffer_cache.get t.bcache ib in
    Layout.get_pointer buf idx
  in
  let set_slot ib idx v =
    let buf = Buffer_cache.get t.bcache ib in
    Layout.set_pointer buf idx v;
    mark_indirect_dirty t ino ib
  in
  let alloc_data ib_opt idx_opt =
    let b = alloc_block t ?near () in
    (match (ib_opt, idx_opt) with
    | Some ib, Some idx -> set_slot ib idx b
    | None, None -> ()
    | _ -> assert false);
    ino.meta_dirty <- `Dirty;
    b
  in
  let nd = Layout.nd_direct in
  if fbn < nd then begin
    let b = ino.direct.(fbn) in
    if b <> 0 then b
    else if not alloc_missing then 0
    else begin
      let b = alloc_data None None in
      ino.direct.(fbn) <- b;
      b
    end
  end
  else begin
    let p = ppb t in
    let ensure_indirect current set_field =
      if current <> 0 then current
      else begin
        let b = alloc_block t ?near () in
        ignore (Buffer_cache.get_fresh t.bcache b : Bytes.t);
        mark_indirect_dirty t ino b;
        set_field b;
        ino.meta_dirty <- `Dirty;
        b
      end
    in
    if fbn < nd + p then begin
      let idx = fbn - nd in
      if ino.single_ind = 0 && not alloc_missing then 0
      else begin
        let ib = ensure_indirect ino.single_ind (fun b -> ino.single_ind <- b) in
        let b = get_slot ib idx in
        if b <> 0 then b
        else if not alloc_missing then 0
        else alloc_data (Some ib) (Some idx)
      end
    end
    else begin
      let idx = fbn - nd - p in
      let d1 = idx / p and d2 = idx mod p in
      if ino.double_ind = 0 && not alloc_missing then 0
      else begin
        let ib1 = ensure_indirect ino.double_ind (fun b -> ino.double_ind <- b) in
        let l2 = get_slot ib1 d1 in
        if l2 = 0 && not alloc_missing then 0
        else begin
          let ib2 =
            if l2 <> 0 then l2
            else begin
              let b = alloc_block t ?near () in
              ignore (Buffer_cache.get_fresh t.bcache b : Bytes.t);
              mark_indirect_dirty t ino b;
              set_slot ib1 d1 b;
              ino.meta_dirty <- `Dirty;
              b
            end
          in
          let b = get_slot ib2 d2 in
          if b <> 0 then b
          else if not alloc_missing then 0
          else alloc_data (Some ib2) (Some d2)
        end
      end
    end
  end

let getattr (i : inode) =
  {
    ftype = i.ftype;
    nlink = i.nlink;
    size = i.size;
    mtime = i.mtime;
    atime = i.atime;
    ctime = i.ctime;
    inum = i.inum;
    gen = i.gen;
  }

(* {1 Inode I/O} *)

let load_dinode_stable t inum =
  let blk, off = Layout.inode_block t.sb inum in
  Layout.decode_dinode (t.dev.Device.stable_read ~off:((blk * bsize t) + off) ~len:Layout.inode_size)

let incore_of_dinode inum (d : Layout.dinode) =
  {
    inum;
    ftype = d.Layout.ftype;
    nlink = d.Layout.nlink;
    size = d.Layout.size;
    mtime = d.Layout.mtime;
    atime = d.Layout.atime;
    ctime = d.Layout.ctime;
    direct = Array.copy d.Layout.direct;
    single_ind = d.Layout.single_ind;
    double_ind = d.Layout.double_ind;
    gen = d.Layout.gen;
    meta_dirty = `Clean;
    dirty_indirects = [];
    lock = Mutex.create ~name:(Printf.sprintf "vnode-%d" inum) ();
  }

let dinode_of_incore (i : inode) =
  {
    Layout.ftype = i.ftype;
    nlink = i.nlink;
    size = i.size;
    mtime = i.mtime;
    atime = i.atime;
    ctime = i.ctime;
    direct = Array.copy i.direct;
    single_ind = i.single_ind;
    double_ind = i.double_ind;
    gen = i.gen;
  }

(* Serialise the in-core inode into its table block (delayed write);
   the caller decides when the block reaches the device. *)
let encode_inode t (ino : inode) =
  let blk, off = Layout.inode_block t.sb ino.inum in
  let buf = Buffer_cache.get t.bcache blk in
  Bytes.blit (Layout.encode_dinode (dinode_of_incore ino)) 0 buf off Layout.inode_size;
  Buffer_cache.mark_dirty t.bcache blk Buffer_cache.Metadata;
  blk

let write_inode_sync t (ino : inode) =
  Buffer_cache.write_sync t.bcache (encode_inode t ino)

(* Build the inode's metadata commit as one submission batch: its dirty
   indirect blocks, then — behind a barrier, because the inode must
   never point to an indirect block whose pointers are not yet on disk —
   its table block. [restore] puts the indirect list back (merged with
   any blocks dirtied meanwhile) after a failed await, so the next
   fsync retries everything that is not yet durable. *)
let meta_commit t (ino : inode) =
  let indirects = List.sort compare ino.dirty_indirects in
  ino.dirty_indirects <- [];
  let iblk = encode_inode t ino in
  let p_ind =
    Buffer_cache.prepare t.bcache ~class_:`Sync_write ~max_cluster:t.cluster_max indirects
  in
  let p_ino = Buffer_cache.prepare t.bcache ~class_:`Sync_write ~max_cluster:(bsize t) [ iblk ] in
  let ind_items = Buffer_cache.prepared_items p_ind in
  let items =
    ind_items
    @ (if ind_items = [] then [] else [ Io.barrier () ])
    @ Buffer_cache.prepared_items p_ino
  in
  let restore exn =
    ino.dirty_indirects <- List.sort_uniq compare (indirects @ ino.dirty_indirects);
    raise exn
  in
  (items, [ p_ind; p_ino ], restore)

let fsync_metadata t (ino : inode) =
  if ino.meta_dirty <> `Clean || ino.dirty_indirects <> [] then begin
    let items, preps, restore = meta_commit t ino in
    t.dev.Device.submit items;
    (try Buffer_cache.await_prepared preps with exn -> restore exn);
    ino.meta_dirty <- `Clean
  end

let iget t ~inum ~gen =
  if inum < 1 || inum >= t.sb.Layout.ninodes then raise (Stale inum);
  if (not t.used.(inum)) || t.gens.(inum) <> gen then raise (Stale inum);
  match Hashtbl.find_opt t.incore inum with
  | Some i -> i
  | None ->
      (* Decode from the (prewarmed) inode-table block. *)
      let blk, off = Layout.inode_block t.sb inum in
      let buf = Buffer_cache.get t.bcache blk in
      let i = incore_of_dinode inum (Layout.decode_dinode (Bytes.sub buf off Layout.inode_size)) in
      Hashtbl.replace t.incore inum i;
      i

let root t = iget t ~inum:t.sb.Layout.root_inum ~gen:t.gens.(t.sb.Layout.root_inum)

(* {1 Mount} *)

let mount eng ?cache_blocks ?metrics ?ns ?readahead dev =
  let sb = Layout.decode_superblock (dev.Device.stable_read ~off:0 ~len:512) in
  (* The cache must at least hold the metadata area (bitmap + inode
     table) or mount-time fsck would evict what it is reading. *)
  let cache_blocks =
    Option.map (fun n -> Stdlib.max n (sb.Layout.data_start + 16)) cache_blocks
  in
  let bcache =
    Buffer_cache.create dev ~bsize:sb.Layout.bsize ?max_blocks:cache_blocks ?metrics ?ns ()
  in
  (match readahead with
  | Some config -> Buffer_cache.enable_readahead bcache eng ~config ()
  | None -> ());
  let bs = sb.Layout.bsize in
  (* Prewarm bitmap and inode table from stable storage ("boot"). *)
  for b = sb.Layout.bitmap_start to sb.Layout.data_start - 1 do
    Buffer_cache.install bcache b (dev.Device.stable_read ~off:(b * bs) ~len:bs)
  done;
  let balloc = Alloc.create bcache sb in
  let gens = Array.make sb.Layout.ninodes 0 in
  let used = Array.make sb.Layout.ninodes false in
  let t =
    {
      eng;
      dev;
      sb;
      bcache;
      balloc;
      incore = Hashtbl.create 256;
      gens;
      used;
      free_blocks = 0;
      cluster_max = 64 * 1024;
    }
  in
  (* fsck-style pass: learn inode usage and rebuild the block bitmap
     from reachable blocks. Instantaneous (stable reads). *)
  Alloc.clear_all_data_area balloc;
  let reach = Hashtbl.create 1024 in
  let claim b =
    if b <> 0 then begin
      Hashtbl.replace reach b ();
      Alloc.set_allocated balloc b
    end
  in
  for inum = 1 to sb.Layout.ninodes - 1 do
    let d = load_dinode_stable t inum in
    gens.(inum) <- d.Layout.gen;
    if d.Layout.ftype <> Layout.Free then begin
      used.(inum) <- true;
      Array.iter claim d.Layout.direct;
      if d.Layout.single_ind <> 0 then begin
        claim d.Layout.single_ind;
        let ib = dev.Device.stable_read ~off:(d.Layout.single_ind * bs) ~len:bs in
        for idx = 0 to Layout.pointers_per_block sb - 1 do
          claim (Layout.get_pointer ib idx)
        done
      end;
      if d.Layout.double_ind <> 0 then begin
        claim d.Layout.double_ind;
        let ib1 = dev.Device.stable_read ~off:(d.Layout.double_ind * bs) ~len:bs in
        for d1 = 0 to Layout.pointers_per_block sb - 1 do
          let l2 = Layout.get_pointer ib1 d1 in
          if l2 <> 0 then begin
            claim l2;
            let ib2 = dev.Device.stable_read ~off:(l2 * bs) ~len:bs in
            for d2 = 0 to Layout.pointers_per_block sb - 1 do
              claim (Layout.get_pointer ib2 d2)
            done
          end
        done
      end
    end
  done;
  t.free_blocks <- sb.Layout.nblocks - sb.Layout.data_start - Hashtbl.length reach;
  t

(* {1 Reading and writing file data} *)

let read t (ino : inode) ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Fs.read: negative offset or length";
  let len = Stdlib.max 0 (Stdlib.min len (ino.size - off)) in
  let out = Bytes.make len '\000' in
  let bs = bsize t in
  let pos = ref off in
  while !pos < off + len do
    let fbn = !pos / bs in
    let within = !pos mod bs in
    let chunk = Stdlib.min (bs - within) (off + len - !pos) in
    let b = bmap t ino fbn ~alloc_missing:false ~near:None in
    if b <> 0 then begin
      let buf = Buffer_cache.get t.bcache b in
      Bytes.blit buf within out (!pos - off) chunk
    end;
    (* holes stay zero *)
    pos := !pos + chunk
  done;
  ino.atime <- Engine.now t.eng;
  out

(* Like [bmap ~alloc_missing:false] but consults only resident indirect
   blocks ([Buffer_cache.peek]) — never performs I/O, never parks.
   Returns 0 for a hole or a mapping whose indirect block is not in
   core: read-ahead simply has nothing to prefetch there this round. *)
let bmap_cached t (ino : inode) fbn =
  if fbn < 0 || fbn >= Layout.max_file_blocks t.sb then 0
  else begin
    let peek_slot ib idx =
      match Buffer_cache.peek t.bcache ib with
      | Some buf -> Layout.get_pointer buf idx
      | None -> 0
    in
    let nd = Layout.nd_direct in
    if fbn < nd then ino.direct.(fbn)
    else begin
      let p = ppb t in
      if fbn < nd + p then
        if ino.single_ind = 0 then 0 else peek_slot ino.single_ind (fbn - nd)
      else begin
        let idx = fbn - nd - p in
        let d1 = idx / p and d2 = idx mod p in
        if ino.double_ind = 0 then 0
        else
          match peek_slot ino.double_ind d1 with
          | 0 -> 0
          | l2 -> peek_slot l2 d2
      end
    end
  end

(* The read-path read-ahead hook. The stream bookkeeping and the
   prefetch submission run under the inode lock (a [Locked.run]-scoped
   section via [Mutex.with_lock]): [note_read] never parks — the block
   mapping goes through [bmap_cached] and the device submission is
   asynchronous — so the lock is never held across a device wait. The
   demand read itself, with its open-ended cache-miss waits, runs after
   release. With read-ahead disabled this is exactly [read]. *)
let read_ahead t (ino : inode) ~stream ~off ~len =
  if Buffer_cache.readahead_active t.bcache then
    Mutex.with_lock ino.lock (fun () ->
        if off >= 0 && len > 0 && off < ino.size then begin
          let bs = bsize t in
          let len' = Stdlib.min len (ino.size - off) in
          Buffer_cache.note_read t.bcache ~stream ~fbn:(off / bs)
            ~nblocks:(((off + len' - 1) / bs) - (off / bs) + 1)
            ~map:(fun fbn -> bmap_cached t ino fbn)
            ~limit:((ino.size + bs - 1) / bs)
        end);
  read t ino ~off ~len

type write_mode = Sync | Sync_data_only | Delay_data

(* Disk block of the previous file block, as an allocation locality
   hint. *)
let near_hint t (ino : inode) fbn =
  if fbn = 0 then None
  else
    match bmap t ino (fbn - 1) ~alloc_missing:false ~near:None with
    | 0 -> None
    | b -> Some b

let write_view t (ino : inode) ~off (data : Nfsg_rpc.Xdr.view) ~mode =
  let len = Nfsg_rpc.Xdr.view_length data in
  if off < 0 then invalid_arg "Fs.write: negative offset";
  if len > 0 then begin
    let bs = bsize t in
    let touched = ref [] in
    let pos = ref off in
    while !pos < off + len do
      let fbn = !pos / bs in
      let within = !pos mod bs in
      let chunk = Stdlib.min (bs - within) (off + len - !pos) in
      let existing = bmap t ino fbn ~alloc_missing:false ~near:None in
      let b =
        if existing <> 0 then existing
        else bmap t ino fbn ~alloc_missing:true ~near:(near_hint t ino fbn)
      in
      let full_block = within = 0 && chunk = bs in
      let buf =
        if existing = 0 || full_block then Buffer_cache.get_fresh t.bcache b
        else Buffer_cache.get t.bcache b
      in
      (* The single escape copy of the write path: datagram bytes
         land in the buffer cache, which outlives the datagram. *)
      Nfsg_rpc.Xdr.blit_view data ~src_off:(!pos - off) ~dst:buf ~dst_off:within ~len:chunk;
      Buffer_cache.mark_dirty t.bcache b Buffer_cache.Data;
      touched := b :: !touched;
      pos := !pos + chunk
    done;
    if off + len > ino.size then begin
      ino.size <- off + len;
      ino.meta_dirty <- `Dirty
    end;
    ino.mtime <- Engine.now t.eng;
    if ino.meta_dirty = `Clean then ino.meta_dirty <- `Time_only;
    match mode with
    | Delay_data -> ()
    | Sync_data_only ->
        (* IO_SYNC|IO_DATAONLY: push the data through, leave metadata
           dirty in core for a later gathered VOP_FSYNC. *)
        Buffer_cache.sync_clustered t.bcache (List.rev !touched) ~max_cluster:t.cluster_max
    | Sync ->
        Buffer_cache.sync_clustered t.bcache (List.rev !touched) ~max_cluster:t.cluster_max;
        (* Reference-port special case: a write that only moved the
           modify time keeps its inode update asynchronous. *)
        (match ino.meta_dirty with
        | `Dirty -> fsync_metadata t ino
        | `Time_only | `Clean -> ())
  end

let write t (ino : inode) ~off data ~mode =
  write_view t ino ~off (Nfsg_rpc.Xdr.view_of_bytes data) ~mode

let syncdata t (ino : inode) ~off ~len =
  if len > 0 then begin
    let bs = bsize t in
    let first = off / bs and last = (off + len - 1) / bs in
    let rec collect fbn acc =
      if fbn > last then List.rev acc
      else begin
        let b = bmap t ino fbn ~alloc_missing:false ~near:None in
        collect (fbn + 1) (if b = 0 then acc else b :: acc)
      end
    in
    Buffer_cache.sync_clustered t.bcache (collect first []) ~max_cluster:t.cluster_max
  end

(* One gathered commit for a byte range: the range's delayed data
   clusters, then — behind barriers — the inode's indirect blocks and
   the inode itself, all in a single submission. The device overlaps
   and merges the data clusters freely while the barriers keep metadata
   from becoming stable ahead of the data it describes. Semantically
   [syncdata] followed by [fsync_metadata], without the synchronous
   convoy of one-at-a-time transactions.

   Split into a begin/await pair so the caller can drop the vnode lock
   while the device works: everything that reads or mutates in-core
   state — bmap, the dirty-block snapshot, the metadata commit — runs
   in [begin] under the caller's lock, and the submission is already
   down before [begin] returns. The returned thunk only parks on the
   device. The prepared snapshots are private copies and the inode is
   marked clean at snapshot time (exactly like [Buffer_cache.prepare]
   does for blocks), so a write landing mid-flight re-dirties and is
   simply not considered durable by this commit. On failure the await
   re-dirties whatever never reached the platter, never downgrading
   dirtiness a concurrent writer added meanwhile. *)
let commit_range_begin t (ino : inode) ~off ~len =
  let data_blocks =
    if len <= 0 then []
    else begin
      let bs = bsize t in
      let first = off / bs and last = (off + len - 1) / bs in
      let rec collect fbn acc =
        if fbn > last then List.rev acc
        else
          let b = bmap t ino fbn ~alloc_missing:false ~near:None in
          collect (fbn + 1) (if b = 0 then acc else b :: acc)
      in
      collect first []
    end
  in
  let p_data =
    Buffer_cache.prepare t.bcache ~class_:`Gather_flush ~max_cluster:t.cluster_max data_blocks
  in
  let data_items = Buffer_cache.prepared_items p_data in
  if ino.meta_dirty = `Clean && ino.dirty_indirects = [] then begin
    match data_items with
    | [] -> fun () -> ()
    | items ->
        t.dev.Device.submit items;
        fun () -> Buffer_cache.await_prepared [ p_data ]
  end
  else begin
    let was_dirty = ino.meta_dirty in
    let meta_items, preps, restore = meta_commit t ino in
    let items =
      data_items @ (if data_items = [] then [] else [ Io.barrier () ]) @ meta_items
    in
    ino.meta_dirty <- `Clean;
    t.dev.Device.submit items;
    fun () ->
      try Buffer_cache.await_prepared (p_data :: preps)
      with exn ->
        (* The snapshotted inode never became durable: put the
           dirtiness back unless a concurrent write already raised
           it. *)
        (match (ino.meta_dirty, was_dirty) with
        | `Dirty, _ | _, `Clean -> ()
        | _, `Dirty -> ino.meta_dirty <- `Dirty
        | `Clean, `Time_only -> ino.meta_dirty <- `Time_only
        | `Time_only, `Time_only -> ());
        restore exn
  end

let commit_range t (ino : inode) ~off ~len = (commit_range_begin t ino ~off ~len) ()

let fsync t (ino : inode) =
  syncdata t ino ~off:0 ~len:ino.size;
  fsync_metadata t ino

let touch t (ino : inode) ~mtime =
  ignore t;
  ino.mtime <- mtime;
  if ino.meta_dirty = `Clean then ino.meta_dirty <- `Time_only

(* {1 Truncate} *)

let truncate t (ino : inode) newsize =
  if newsize < 0 then invalid_arg "Fs.truncate: negative size";
  let bs = bsize t in
  let old_nblocks = (ino.size + bs - 1) / bs in
  let new_nblocks = (newsize + bs - 1) / bs in
  if new_nblocks < old_nblocks then begin
    (* Free data blocks beyond the new end. *)
    for fbn = new_nblocks to old_nblocks - 1 do
      let b = bmap t ino fbn ~alloc_missing:false ~near:None in
      if b <> 0 then begin
        free_block t b;
        let nd = Layout.nd_direct and p = ppb t in
        if fbn < nd then ino.direct.(fbn) <- 0
        else if fbn < nd + p then begin
          let buf = Buffer_cache.get t.bcache ino.single_ind in
          Layout.set_pointer buf (fbn - nd) 0;
          mark_indirect_dirty t ino ino.single_ind
        end
        else begin
          let idx = fbn - nd - p in
          let ib1 = Buffer_cache.get t.bcache ino.double_ind in
          let l2 = Layout.get_pointer ib1 (idx / p) in
          if l2 <> 0 then begin
            let ib2 = Buffer_cache.get t.bcache l2 in
            Layout.set_pointer ib2 (idx mod p) 0;
            mark_indirect_dirty t ino l2
          end
        end
      end
    done;
    (* Free indirect blocks that no longer map anything. *)
    let nd = Layout.nd_direct and p = ppb t in
    if ino.single_ind <> 0 && new_nblocks <= nd then begin
      ino.dirty_indirects <- List.filter (fun b -> b <> ino.single_ind) ino.dirty_indirects;
      free_block t ino.single_ind;
      ino.single_ind <- 0
    end;
    if ino.double_ind <> 0 then begin
      let ib1 = Buffer_cache.get t.bcache ino.double_ind in
      for d1 = 0 to p - 1 do
        let l2 = Layout.get_pointer ib1 d1 in
        let first_fbn = nd + p + (d1 * p) in
        if l2 <> 0 && new_nblocks <= first_fbn then begin
          ino.dirty_indirects <- List.filter (fun b -> b <> l2) ino.dirty_indirects;
          free_block t l2;
          Layout.set_pointer ib1 d1 0;
          mark_indirect_dirty t ino ino.double_ind
        end
      done;
      if new_nblocks <= nd + p then begin
        ino.dirty_indirects <- List.filter (fun b -> b <> ino.double_ind) ino.dirty_indirects;
        free_block t ino.double_ind;
        ino.double_ind <- 0
      end
    end
  end;
  if newsize <> ino.size then begin
    ino.size <- newsize;
    ino.meta_dirty <- `Dirty;
    ino.mtime <- Engine.now t.eng;
    ino.ctime <- Engine.now t.eng
  end

(* {1 Inode allocation} *)

let ialloc t ftype =
  let rec find i =
    if i >= t.sb.Layout.ninodes then raise No_space
    else if not t.used.(i) then i
    else find (i + 1)
  in
  let inum = find 2 in
  t.used.(inum) <- true;
  t.gens.(inum) <- t.gens.(inum) + 1;
  let now = Engine.now t.eng in
  let ino =
    {
      inum;
      ftype;
      nlink = 1;
      size = 0;
      mtime = now;
      atime = now;
      ctime = now;
      direct = Array.make Layout.nd_direct 0;
      single_ind = 0;
      double_ind = 0;
      gen = t.gens.(inum);
      meta_dirty = `Dirty;
      dirty_indirects = [];
      lock = Mutex.create ~name:(Printf.sprintf "vnode-%d" inum) ();
    }
  in
  Hashtbl.replace t.incore inum ino;
  ino

let ifree t (ino : inode) =
  truncate t ino 0;
  ino.ftype <- Layout.Free;
  ino.nlink <- 0;
  t.used.(ino.inum) <- false;
  Hashtbl.remove t.incore ino.inum;
  (* Commit the freed inode so the handle is durably stale. *)
  write_inode_sync t ino;
  ino.meta_dirty <- `Clean

(* {1 Directories} *)

let assert_dir (ino : inode) = if ino.ftype <> Layout.Directory then raise (Not_dir ino.inum)

let read_entries t (dir : inode) =
  assert_dir dir;
  Layout.decode_dirents (read t dir ~off:0 ~len:dir.size)

let write_entries t (dir : inode) entries =
  let data = Layout.encode_dirents entries in
  let newlen = Bytes.length data in
  if newlen < dir.size then truncate t dir newlen;
  if newlen > 0 then write t dir ~off:0 data ~mode:Sync;
  fsync_metadata t dir

let lookup t (dir : inode) name =
  let entries = read_entries t dir in
  match List.assoc_opt name entries with
  | None -> raise Not_found
  | Some inum -> iget t ~inum ~gen:t.gens.(inum)

let readdir t (dir : inode) = read_entries t dir

let create t (dir : inode) name ftype =
  assert_dir dir;
  let entries = read_entries t dir in
  if List.mem_assoc name entries then raise (Exists name);
  let ino = ialloc t ftype in
  (* Order: new inode durable before the directory points at it. *)
  fsync_metadata t ino;
  write_entries t dir (entries @ [ (name, ino.inum) ]);
  ino

let remove t (dir : inode) name =
  assert_dir dir;
  let entries = read_entries t dir in
  match List.assoc_opt name entries with
  | None -> raise Not_found
  | Some inum ->
      let victim = iget t ~inum ~gen:t.gens.(inum) in
      if victim.ftype = Layout.Directory then raise (Is_dir inum);
      write_entries t dir (List.remove_assoc name entries);
      victim.nlink <- victim.nlink - 1;
      if victim.nlink <= 0 then ifree t victim else fsync_metadata t victim

let rmdir t (dir : inode) name =
  assert_dir dir;
  let entries = read_entries t dir in
  match List.assoc_opt name entries with
  | None -> raise Not_found
  | Some inum ->
      let victim = iget t ~inum ~gen:t.gens.(inum) in
      if victim.ftype <> Layout.Directory then raise (Not_dir inum);
      if read_entries t victim <> [] then raise (Not_empty inum);
      write_entries t dir (List.remove_assoc name entries);
      ifree t victim

let symlink t (dir : inode) name ~target =
  assert_dir dir;
  let entries = read_entries t dir in
  if List.mem_assoc name entries then raise (Exists name);
  let ino = ialloc t Layout.Symlink in
  write t ino ~off:0 (Bytes.of_string target) ~mode:Sync;
  fsync_metadata t ino;
  write_entries t dir (entries @ [ (name, ino.inum) ]);
  ino

let readlink t (ino : inode) =
  if ino.ftype <> Layout.Symlink then raise (Not_symlink ino.inum);
  Bytes.to_string (read t ino ~off:0 ~len:ino.size)

let rename t ~src_dir ~src ~dst_dir ~dst =
  assert_dir src_dir;
  assert_dir dst_dir;
  let src_entries = read_entries t src_dir in
  match List.assoc_opt src src_entries with
  | None -> raise Not_found
  | Some inum ->
      if src_dir.inum = dst_dir.inum then begin
        let entries = List.remove_assoc dst (List.remove_assoc src src_entries) in
        write_entries t src_dir (entries @ [ (dst, inum) ])
      end
      else begin
        (* Two directories: make the name appear at the destination
           before it disappears from the source, so a crash between the
           two leaves a hard link rather than a lost file. *)
        let dst_entries = List.remove_assoc dst (read_entries t dst_dir) in
        write_entries t dst_dir (dst_entries @ [ (dst, inum) ]);
        write_entries t src_dir (List.remove_assoc src src_entries)
      end

(* {1 Whole filesystem} *)

let statfs t =
  { total_blocks = t.sb.Layout.nblocks - t.sb.Layout.data_start;
    free_blocks = t.free_blocks;
    bsize = bsize t }

let sync_all t =
  (* Flush in inode-number order: each sync issues disk writes, so the
     schedule (and simulated timing) must not depend on hash layout. *)
  let inos =
    Hashtbl.fold (fun inum ino acc -> (inum, ino) :: acc) t.incore []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (_, ino) ->
      syncdata t ino ~off:0 ~len:ino.size;
      fsync_metadata t ino)
    inos;
  (* Bitmap and any other dirty metadata blocks. *)
  let dirty = Buffer_cache.dirty_blocks t.bcache Buffer_cache.Metadata in
  List.iter (fun b -> Buffer_cache.write_sync t.bcache b) dirty;
  let dirty_data = Buffer_cache.dirty_blocks t.bcache Buffer_cache.Data in
  Buffer_cache.sync_clustered t.bcache dirty_data ~max_cluster:t.cluster_max;
  t.dev.Device.flush ()

let crash t =
  Buffer_cache.crash t.bcache;
  Hashtbl.reset t.incore;
  t.dev.Device.crash ()

(* {1 Consistency check} *)

let check t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let bs = bsize t in
  let seen = Hashtbl.create 1024 in
  let claim owner b =
    if b <> 0 then begin
      if b < t.sb.Layout.data_start || b >= t.sb.Layout.nblocks then
        err "inode %d references out-of-range block %d" owner b
      else begin
        if Hashtbl.mem seen b then err "block %d multiply claimed (again by inode %d)" b owner;
        Hashtbl.replace seen b ();
        if not (Alloc.is_allocated t.balloc b) then
          err "block %d used by inode %d but free in bitmap" b owner
      end
    end
  in
  (* Walk every live inode's block tree (through the cache: current
     in-core truth). *)
  let link_counts = Hashtbl.create 64 in
  for inum = 1 to t.sb.Layout.ninodes - 1 do
    if t.used.(inum) then begin
      let ino = iget t ~inum ~gen:t.gens.(inum) in
      Array.iter (claim inum) ino.direct;
      if ino.single_ind <> 0 then begin
        claim inum ino.single_ind;
        let ib = Buffer_cache.get t.bcache ino.single_ind in
        for i = 0 to ppb t - 1 do
          claim inum (Layout.get_pointer ib i)
        done
      end;
      if ino.double_ind <> 0 then begin
        claim inum ino.double_ind;
        let ib1 = Buffer_cache.get t.bcache ino.double_ind in
        for d1 = 0 to ppb t - 1 do
          let l2 = Layout.get_pointer ib1 d1 in
          if l2 <> 0 then begin
            claim inum l2;
            let ib2 = Buffer_cache.get t.bcache l2 in
            for d2 = 0 to ppb t - 1 do
              claim inum (Layout.get_pointer ib2 d2)
            done
          end
        done
      end;
      let max_bytes = (Array.length ino.direct + ppb t + (ppb t * ppb t)) * bs in
      if ino.size > max_bytes then err "inode %d size %d exceeds mappable bytes" inum ino.size;
      if ino.ftype = Layout.Directory then
        List.iter
          (fun (name, child) ->
            if child < 1 || child >= t.sb.Layout.ninodes || not t.used.(child) then
              err "directory %d entry %S points at dead inode %d" inum name child
            else
              Hashtbl.replace link_counts child
                (1 + Option.value ~default:0 (Hashtbl.find_opt link_counts child)))
          (read_entries t ino)
    end
  done;
  (* Bitmap bits with no owner. *)
  for b = t.sb.Layout.data_start to t.sb.Layout.nblocks - 1 do
    if Alloc.is_allocated t.balloc b && not (Hashtbl.mem seen b) then
      err "block %d allocated in bitmap but unreachable" b
  done;
  (* Link counts for non-root inodes. *)
  for inum = 2 to t.sb.Layout.ninodes - 1 do
    if t.used.(inum) then begin
      let ino = iget t ~inum ~gen:t.gens.(inum) in
      let expected = Option.value ~default:0 (Hashtbl.find_opt link_counts inum) in
      if ino.nlink <> expected then
        err "inode %d nlink %d but %d directory references" inum ino.nlink expected
    end
  done;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
