(** VFS layer: the vnode interface the NFS server layer programs
    against, including the paper's {e new} flags (section 6.4).

    [vop_write] flag combinations and what they mean:
    - [IO_SYNC] alone — traditional stable write: data then metadata
      synchronously (with the mtime-only asynchronous special case);
    - [IO_SYNC + IO_DATAONLY] — deliver data to the (accelerated)
      device now but delay all metadata copies;
    - [IO_DELAYDATA] — let UFS keep the data dirty in the buffer cache
      and choose its own clustering policy later.

    [vop_fsync ~flags:[FWRITE; FWRITE_METADATA]] flushes only the inode
    and indirect blocks; [vop_syncdata] flushes delayed data with
    begin/end offsets as hints. *)

type vnode
(** A file or directory as seen by the server layer. *)

type io_flag = IO_SYNC | IO_DATAONLY | IO_DELAYDATA
type fsync_flag = FWRITE | FWRITE_METADATA

val vnode_of_inode : Fs.t -> Fs.inode -> vnode
val fs_of : vnode -> Fs.t
val inode_of : vnode -> Fs.inode
val vnode_id : vnode -> int
(** The inode number: stable identity for "same file" comparisons. *)

val lock : vnode -> unit
(** Acquire the vnode sleep lock (FIFO). *)

val unlock : vnode -> unit
val with_lock : vnode -> (unit -> 'a) -> 'a
val locked : vnode -> bool
val contenders : vnode -> int
(** Number of processes waiting on the sleep lock right now — the
    "another nfsd blocked on the same vnode" test of the gathering
    algorithm. *)

val accelerated : vnode -> bool
(** Whether the underlying device is NVRAM-accelerated (the server
    write layer "queries Presto as to acceleration state"). *)

val vop_getattr : vnode -> Fs.attr
val vop_read : vnode -> off:int -> len:int -> Bytes.t

(** [vop_read_ahead] is {!vop_read} via {!Fs.read_ahead}: feeds the
    sequential prefetch engine (no-op when read-ahead is off).
    [stream] identifies the reader for run detection. *)
val vop_read_ahead : vnode -> stream:int -> off:int -> len:int -> Bytes.t
val vop_write : vnode -> off:int -> Nfsg_rpc.Xdr.view -> flags:io_flag list -> unit
val vop_fsync : vnode -> flags:fsync_flag list -> unit
val vop_syncdata : vnode -> off:int -> len:int -> unit

val vop_commit : vnode -> off:int -> len:int -> unit
(** Gathered flush of data plus metadata as one device submission
    ({!Fs.commit_range}): data clusters overlap and merge, barriers
    keep the inode and indirect blocks ordered behind the data. *)

val vop_commit_begin : vnode -> off:int -> len:int -> unit -> unit
(** {!vop_commit} split for lock hygiene ({!Fs.commit_range_begin}):
    call under {!lock}; the submission is down when it returns, and
    the returned await thunk may park on the device with the vnode
    lock released. With [len = 0] it commits metadata only, the
    unlocked twin of [vop_fsync ~flags:[FWRITE; FWRITE_METADATA]]. *)

val vop_lookup : vnode -> string -> vnode
val vop_create : vnode -> string -> Layout.ftype -> vnode
val vop_remove : vnode -> string -> unit
val vop_mkdir : vnode -> string -> vnode
val vop_rmdir : vnode -> string -> unit
val vop_rename : vnode -> src:string -> dst_dir:vnode -> dst:string -> unit
val vop_readdir : vnode -> (string * int) list
val vop_symlink : vnode -> string -> target:string -> vnode
val vop_readlink : vnode -> string
val vop_truncate : vnode -> int -> unit
val vop_touch : vnode -> mtime:Nfsg_sim.Time.t -> unit
