(** The filesystem proper: in-core inodes, block mapping with indirect
    blocks, directory operations, and the write/flush machinery the
    server write layer drives.

    All operations that may touch the device must run inside a
    simulation process; they block for the modelled I/O time.

    Consistency model (matching the paper's UFS): data blocks and
    metadata (inode, indirect, directory) are written synchronously
    where the caller asks ([`Sync]); delayed data lives in the buffer
    cache until {!syncdata}; the block bitmap is never written on the
    write path and is rebuilt fsck-style at {!mount} from reachable
    blocks. The file-modify-time-only inode update may be left dirty
    in core ([`Time_only]) — the one promise the reference port also
    breaks for performance (section 4.4). *)

type t

type inode
(** In-core inode (the vnode's private data). Holds the sleep lock the
    server layer serialises on. *)

type attr = {
  ftype : Layout.ftype;
  nlink : int;
  size : int;
  mtime : Nfsg_sim.Time.t;
  atime : Nfsg_sim.Time.t;
  ctime : Nfsg_sim.Time.t;
  inum : int;
  gen : int;
}

exception Stale of int
(** Inode number whose generation no longer matches. *)

exception Not_dir of int
exception Is_dir of int
exception Not_symlink of int
exception Exists of string

exception Not_empty of int
(** Inode number of a directory that {!rmdir} was asked to remove while
    it still has entries (maps to [NFSERR_NOTEMPTY] on the wire). *)

exception No_space
(** Re-export of {!Alloc.No_space} at this level. *)

(** {1 Formatting and mounting} *)

val mkfs : Nfsg_disk.Device.t -> ?bsize:int -> ?ninodes:int -> unit -> unit
(** Write a fresh filesystem (instantaneously — formatting happens
    before the experiment starts). Defaults: 8 KiB blocks, 4096
    inodes. The root directory is inode 1. *)

val mount :
  Nfsg_sim.Engine.t ->
  ?cache_blocks:int ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?ns:string ->
  ?readahead:Buffer_cache.readahead ->
  Nfsg_disk.Device.t ->
  t
(** Read the superblock and inode table from stable storage
    (instantaneous, "boot time"), rebuilding the block bitmap from
    reachable blocks — the fsck pass that makes the
    bitmap-is-never-synced policy safe. [cache_blocks] bounds the
    buffer cache (default unbounded: plenty of RAM); it is clamped up
    so the metadata area always fits. [metrics]/[ns] give the buffer
    cache a read-plane namespace to mirror its counters into;
    [readahead] arms the sequential prefetch engine (off by
    default). *)

val engine : t -> Nfsg_sim.Engine.t
val device : t -> Nfsg_disk.Device.t
val cache : t -> Buffer_cache.t
val superblock : t -> Layout.superblock
val bsize : t -> int
val cluster_max : t -> int
(** Largest clustered write the filesystem will issue (64 KiB, as in
    [MCVO91]). *)

val set_cluster_max : t -> int -> unit

(** {1 Inodes and handles} *)

val root : t -> inode
val iget : t -> inum:int -> gen:int -> inode
(** Raises {!Stale} when the slot was freed or reused. *)

val inum : inode -> int
val generation : inode -> int
val lock_of : inode -> Nfsg_sim.Mutex.t
val getattr : inode -> attr

val meta_dirty : inode -> [ `Clean | `Time_only | `Dirty ]
(** Whether the on-disk inode lags the in-core one. *)

(** {1 Files} *)

val read : t -> inode -> off:int -> len:int -> Bytes.t
(** Short reads at EOF; holes read as zeros. *)

val read_ahead : t -> inode -> stream:int -> off:int -> len:int -> Bytes.t
(** {!read}, feeding the access to the buffer cache's read-ahead
    engine first. [stream] identifies the reader (client × file) for
    sequential-run detection. The stream bookkeeping and async
    prefetch submission run under the inode lock but never park — the
    block mapping consults only resident indirect blocks — so the lock
    is not held across any device wait; the demand read runs after
    release. With read-ahead disabled this is exactly {!read}. *)

val bmap_cached : t -> inode -> int -> int
(** Device block of file block [fbn], consulting only resident
    indirect blocks; 0 for holes, out-of-range blocks or non-resident
    mappings. Never performs I/O. *)

type write_mode =
  | Sync  (** data and metadata to stable storage before returning *)
  | Sync_data_only  (** IO_SYNC|IO_DATAONLY: data written through,
                        metadata left dirty in core *)
  | Delay_data  (** IO_DELAYDATA: data dirty in cache, metadata dirty
                    in core *)

val write : t -> inode -> off:int -> Bytes.t -> mode:write_mode -> unit
(** {!write_view} over the whole of the given buffer. *)

val write_view : t -> inode -> off:int -> Nfsg_rpc.Xdr.view -> mode:write_mode -> unit
(** Extends the file as needed, allocating data and indirect blocks.
    The data arrives as a zero-copy window into the request datagram
    and is blitted into buffer-cache blocks here — the one place on
    the write path where payload bytes are copied.
    In [Sync] mode, a write that changed nothing but the modify time
    leaves the inode [`Time_only] dirty instead of forcing a
    synchronous inode write (the reference port's special case). *)

val syncdata : t -> inode -> off:int -> len:int -> unit
(** VOP_SYNCDATA: flush delayed data blocks overlapping the byte
    range, clustering device-contiguous runs up to {!cluster_max}. *)

val fsync_metadata : t -> inode -> unit
(** VOP_FSYNC(FWRITE_METADATA): commit the inode and any dirty
    indirect blocks in one device submission, the inode table block
    ordered behind the indirects by a barrier. No-op when clean. *)

val commit_range : t -> inode -> off:int -> len:int -> unit
(** Gathered commit of a byte range: delayed data clusters, then —
    behind barriers — dirty indirect blocks, then the inode, as a
    single device submission. Semantically {!syncdata} followed by
    {!fsync_metadata}, but the device may overlap and merge the data
    clusters while the barriers keep metadata from becoming stable
    ahead of the data it describes. *)

val commit_range_begin : t -> inode -> off:int -> len:int -> unit -> unit
(** {!commit_range} split for lock hygiene: [commit_range_begin t ino
    ~off ~len] runs every in-core step — block mapping, the dirty
    snapshot, the metadata commit — and puts the submission on the
    device before returning; the returned thunk merely blocks until it
    is durable (re-dirtying what failed, then re-raising). Call
    [begin] under the inode's lock; the await may run with the lock
    released, so writers arriving mid-flush are not convoyed behind
    the device. *)

val fsync : t -> inode -> unit
(** Full fsync: {!syncdata} over the whole file then
    {!fsync_metadata}. *)

val truncate : t -> inode -> int -> unit
(** Grow (sparse) or shrink; shrinking frees blocks. Metadata is left
    dirty; call {!fsync_metadata} to commit. *)

val touch : t -> inode -> mtime:Nfsg_sim.Time.t -> unit

(** {1 Directories} *)

val lookup : t -> inode -> string -> inode
(** Raises [Not_found], or {!Not_dir} if the vnode is not a
    directory. *)

val create : t -> inode -> string -> Layout.ftype -> inode
(** Create a file or directory; directory update and both inodes are
    committed synchronously before returning (NFS requires CREATE to
    be stable). Raises {!Exists}. *)

val remove : t -> inode -> string -> unit
(** Unlink; frees the inode and its blocks when nlink reaches zero.
    Raises [Not_found]; {!Is_dir} when used on a directory. *)

val rmdir : t -> inode -> string -> unit
(** Raises {!Not_empty} on a non-empty directory; [Not_found] when the
    name is absent; {!Not_dir} when it names a non-directory. *)

val rename : t -> src_dir:inode -> src:string -> dst_dir:inode -> dst:string -> unit
val readdir : t -> inode -> (string * int) list

val symlink : t -> inode -> string -> target:string -> inode
(** Create a symbolic link whose target string is stored as the link's
    file data, committed synchronously like {!create}. *)

val readlink : t -> inode -> string
(** Raises {!Not_symlink} when the inode is not a symlink. *)

(** {1 Whole-filesystem} *)

type fsstat = { total_blocks : int; free_blocks : int; bsize : int }

val statfs : t -> fsstat
val sync_all : t -> unit
(** Flush every dirty buffer and inode (clean unmount). *)

val crash : t -> unit
(** Drop all volatile state (buffer cache, in-core inodes) and crash
    the device. Mount a fresh [t] over the recovered device to model
    reboot. *)

val check : t -> (unit, string list) result
(** Offline consistency check: every reachable block allocated exactly
    once, bitmap matches reachability, directory entries point at live
    inodes, link counts correct. *)
