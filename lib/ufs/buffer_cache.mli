(** Block buffer cache over a {!Nfsg_disk.Device}.

    Caches whole filesystem blocks. Reads miss through to the device
    (costing simulated time); writes are either synchronous
    (write-through, timed) or {e delayed} — the dirty-in-core state the
    paper's IO_DELAYDATA flag creates, which {!sync_clustered} later
    pushes out in few large transactions ([MCVO91]-style clustering).

    Buffers returned by {!get} are the cache's own: mutate them in
    place, then call {!mark_dirty} or {!write_sync}. The whole cache is
    volatile: {!crash} drops everything. *)

type kind = Data | Metadata

type t

type readahead = {
  window : int;  (** blocks to keep prefetched ahead of a stream *)
  min_run : int;  (** sequential blocks before prefetch arms *)
  max_streams : int;  (** tracked streams; LRU slot recycling beyond *)
}
(** Sequential read-ahead policy, sized after the LNFS batch constants
    scaled to this simulator's block size. *)

val default_readahead : readahead
(** 16-block (128KB) window, armed after 2 sequential blocks, 64
    stream slots. *)

val create :
  Nfsg_disk.Device.t ->
  bsize:int ->
  ?max_blocks:int ->
  ?metrics:Nfsg_stats.Metrics.t ->
  ?ns:string ->
  unit ->
  t
(** [max_blocks] bounds the cache (default: unbounded); on overflow the
    least-recently-used clean block is evicted. Dirty blocks are
    pinned, exactly like real buffer-cache buffers awaiting write.
    When [metrics] and [ns] are both given, the cache registers and
    mirrors its counters into that namespace (the per-export read
    plane, e.g. ["read_plane.vol2"]). *)

val enable_readahead : t -> Nfsg_sim.Engine.t -> ?config:readahead -> unit -> unit
(** Arm the sequential-detecting read-ahead engine. Prefetch batches
    are submitted asynchronously through the device's scheduler as
    [`Read]-class requests; a spawned fiber installs the filled
    buffers. Off by default: a cache without read-ahead behaves (and
    costs) exactly as before. *)

val readahead_active : t -> bool

val note_read : t -> stream:int -> fbn:int -> nblocks:int -> map:(int -> int) -> limit:int -> unit
(** Feed the read-ahead engine one demand access: [stream] identifies
    the reader (e.g. client × file), [fbn]/[nblocks] the file blocks
    being read, [map] translates a file block to its device block (0
    for a hole or a mapping that is not resident — never performs
    I/O), and [limit] is the exclusive file-block bound (EOF). When the
    access extends a sequential run past the arming threshold, the
    engine submits an async prefetch batch for the next [window] file
    blocks that are mapped, not resident and not already in flight.
    No-op unless {!enable_readahead} was called. Never blocks. *)

val bsize : t -> int
val device : t -> Nfsg_disk.Device.t

val get : t -> int -> Bytes.t
(** [get c b] is block [b]'s buffer, reading it from the device
    (blocking, timed) on a miss. A miss on a block with a prefetch in
    flight parks on the prefetch's completion instead of duplicating
    the device read. *)

val get_fresh : t -> int -> Bytes.t
(** Like {!get} but on a miss installs a zero buffer without device
    I/O — for blocks known to be newly allocated. *)

val peek : t -> int -> Bytes.t option
(** Cached buffer if present; no I/O. *)

val mark_dirty : t -> int -> kind -> unit
(** Delayed write: remember that block [b] must reach the device
    eventually. A block already dirty as [Metadata] stays [Metadata]
    even if re-marked [Data]. *)

val is_dirty : t -> int -> bool

val write_sync : t -> int -> unit
(** Write the cached buffer of block [b] to the device now (blocking,
    timed — one transaction) and mark it clean. No-op if the block is
    not cached. *)

val sync_clustered : t -> int list -> max_cluster:int -> unit
(** Write the given dirty blocks, coalescing device-contiguous runs
    into single transactions of at most [max_cluster] bytes. Blocks
    that are not cached or not dirty are skipped. Clears dirtiness.
    Equivalent to {!prepare} + submit + {!await_prepared} in one
    call. *)

type prepared
(** A set of snapshotted cluster writes whose dirty flags have been
    cleared, paired with the restore records needed to re-dirty them
    if a request fails. *)

val prepare : t -> class_:Nfsg_disk.Io.class_ -> max_cluster:int -> int list -> prepared
(** [prepare c ~class_ ~max_cluster blocks] snapshots the dirty subset
    of [blocks] into device-contiguous {!Nfsg_disk.Io.write_req}s (at
    most [max_cluster] bytes each) and marks the blocks clean. Nothing
    is submitted: the caller interleaves the items from
    {!prepared_items} with barriers and other work in a single
    [Device.submit], then calls {!await_prepared}. *)

val prepared_items : prepared -> Nfsg_disk.Io.item list

val await_prepared : prepared list -> unit
(** Block until every request of every prepared set completes. Blocks
    of failed requests are re-dirtied (they never reached stable
    storage, so a later sync must retry them); then the first failure
    is re-raised. *)

val dirty_blocks : t -> kind -> int list
(** Sorted block numbers currently dirty with the given kind. *)

val install : t -> int -> Bytes.t -> unit
(** Seed the cache with a clean buffer for block [b] without device
    I/O (mount-time prewarm from stable storage). The bytes are copied.
    No-op if the block is already cached. *)

val drop : t -> int -> unit
(** Forget one block (e.g. after freeing it). *)

val crash : t -> unit
(** Volatile: lose every buffer and all dirty state. *)

val hits : t -> int
val misses : t -> int
val resident : t -> int
val evictions : t -> int

(** {1 Read-ahead accounting} *)

val readahead_batches : t -> int
(** Prefetch batches submitted. *)

val readahead_blocks : t -> int
(** Blocks requested across all prefetch batches. *)

val readahead_hits : t -> int
(** Prefetched blocks later consumed by a demand read (resident or
    awaited in flight). *)

val readahead_wasted : t -> int
(** Prefetched blocks evicted/dropped unconsumed, or whose demand read
    raced ahead of the prefetch completion. *)

val is_prefetched : t -> int -> bool
(** Resident, installed by read-ahead, and not yet consumed. *)
