type vnode = { fs : Fs.t; ino : Fs.inode }

type io_flag = IO_SYNC | IO_DATAONLY | IO_DELAYDATA
type fsync_flag = FWRITE | FWRITE_METADATA

let vnode_of_inode fs ino = { fs; ino }
let fs_of v = v.fs
let inode_of v = v.ino
let vnode_id v = Fs.inum v.ino
let lock v = Nfsg_sim.Mutex.lock (Fs.lock_of v.ino)
let unlock v = Nfsg_sim.Mutex.unlock (Fs.lock_of v.ino)
let with_lock v f = Nfsg_sim.Mutex.with_lock (Fs.lock_of v.ino) f
let locked v = Nfsg_sim.Mutex.locked (Fs.lock_of v.ino)
let contenders v = Nfsg_sim.Mutex.contenders (Fs.lock_of v.ino)
let accelerated v = (Fs.device v.fs).Nfsg_disk.Device.accelerated ()
let vop_getattr v = Fs.getattr v.ino
let vop_read v ~off ~len = Fs.read v.fs v.ino ~off ~len
let vop_read_ahead v ~stream ~off ~len = Fs.read_ahead v.fs v.ino ~stream ~off ~len

let mode_of_flags flags =
  let has f = List.mem f flags in
  match (has IO_SYNC, has IO_DATAONLY, has IO_DELAYDATA) with
  | true, true, false -> Fs.Sync_data_only
  | true, false, false -> Fs.Sync
  | false, false, true -> Fs.Delay_data
  | _ -> invalid_arg "Vfs.vop_write: unsupported flag combination"

let vop_write v ~off data ~flags = Fs.write_view v.fs v.ino ~off data ~mode:(mode_of_flags flags)

let vop_fsync v ~flags =
  if List.mem FWRITE_METADATA flags then Fs.fsync_metadata v.fs v.ino
  else Fs.fsync v.fs v.ino

let vop_syncdata v ~off ~len = Fs.syncdata v.fs v.ino ~off ~len
let vop_commit v ~off ~len = Fs.commit_range v.fs v.ino ~off ~len
let vop_commit_begin v ~off ~len = Fs.commit_range_begin v.fs v.ino ~off ~len
let vop_lookup v name = { fs = v.fs; ino = Fs.lookup v.fs v.ino name }
let vop_create v name ftype = { fs = v.fs; ino = Fs.create v.fs v.ino name ftype }
let vop_remove v name = Fs.remove v.fs v.ino name
let vop_mkdir v name = { fs = v.fs; ino = Fs.create v.fs v.ino name Layout.Directory }
let vop_rmdir v name = Fs.rmdir v.fs v.ino name

let vop_rename v ~src ~dst_dir ~dst =
  Fs.rename v.fs ~src_dir:v.ino ~src ~dst_dir:dst_dir.ino ~dst

let vop_readdir v = Fs.readdir v.fs v.ino
let vop_symlink v name ~target = { fs = v.fs; ino = Fs.symlink v.fs v.ino name ~target }
let vop_readlink v = Fs.readlink v.fs v.ino
let vop_truncate v size = Fs.truncate v.fs v.ino size
let vop_touch v ~mtime = Fs.touch v.fs v.ino ~mtime
