open Nfsg_disk
open Nfsg_stats

type kind = Data | Metadata

type entry = {
  buf : Bytes.t;
  mutable dirty : kind option;
  mutable last_use : int;
  mutable prefetched : bool;  (* installed by read-ahead, not yet consumed *)
}

(* Sequential read-ahead policy. The reference point is the LNFS batch
   constants (SNIPPETS.md): a multi-megabyte read-ahead span over 4K
   blocks; scaled to this simulator's 8K blocks and small worlds a
   16-block (128KB) window keeps a sequential stream ahead of the
   reader without monopolizing the capacity budget. *)
type readahead = {
  window : int;  (* blocks to keep prefetched ahead of a stream *)
  min_run : int;  (* sequential blocks before prefetch arms *)
  max_streams : int;  (* tracked streams; LRU slot recycling beyond *)
}

let default_readahead = { window = 16; min_run = 2; max_streams = 64 }

(* One detected sequential stream (per open file per client, keyed by
   the caller's stream id). *)
type stream = {
  mutable next_fbn : int;  (* expected next file block *)
  mutable run : int;  (* current sequential run length *)
  mutable high : int;  (* first file block not yet prefetched *)
  mutable s_use : int;  (* LRU tick for slot recycling *)
}

type ra = {
  eng : Nfsg_sim.Engine.t;
  cfg : readahead;
  streams : (int, stream) Hashtbl.t;
  (* Device blocks with a prefetch read in flight: demand misses
     rendezvous with the prefetch instead of duplicating the I/O. *)
  inflight : (int, unit Nfsg_sim.Ivar.t) Hashtbl.t;
}

(* Registered mirrors of the plain counters below, present when the
   cache was created with a metrics registry (the per-export read
   plane). *)
type meters = {
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
  m_ra_batches : Metrics.counter;
  m_ra_blocks : Metrics.counter;
  m_ra_hits : Metrics.counter;
  m_ra_wasted : Metrics.counter;
}

type t = {
  dev : Device.t;
  bsize : int;
  table : (int, entry) Hashtbl.t;
  max_blocks : int;
  meters : meters option;
  mutable ra : ra option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable ra_batches : int;
  mutable ra_blocks : int;
  mutable ra_hits : int;
  mutable ra_wasted : int;
}

let create dev ~bsize ?(max_blocks = max_int) ?metrics ?ns () =
  if max_blocks < 8 then invalid_arg "buffer_cache: max_blocks too small";
  let meters =
    match (metrics, ns) with
    | Some metrics, Some ns ->
        Some
          {
            m_hits = Metrics.counter metrics ~ns Names.cache_hits;
            m_misses = Metrics.counter metrics ~ns Names.cache_misses;
            m_evictions = Metrics.counter metrics ~ns Names.cache_evictions;
            m_ra_batches = Metrics.counter metrics ~ns Names.readahead_batches;
            m_ra_blocks = Metrics.counter metrics ~ns Names.readahead_blocks;
            m_ra_hits = Metrics.counter metrics ~ns Names.readahead_hits;
            m_ra_wasted = Metrics.counter metrics ~ns Names.readahead_wasted;
          }
    | _ -> None
  in
  {
    dev;
    bsize;
    table = Hashtbl.create 1024;
    max_blocks;
    meters;
    ra = None;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    ra_batches = 0;
    ra_blocks = 0;
    ra_hits = 0;
    ra_wasted = 0;
  }

let enable_readahead c eng ?(config = default_readahead) () =
  if config.window < 1 || config.min_run < 1 || config.max_streams < 1 then
    invalid_arg "buffer_cache: degenerate readahead config";
  c.ra <- Some { eng; cfg = config; streams = Hashtbl.create 64; inflight = Hashtbl.create 64 }

let readahead_active c = c.ra <> None

let bsize c = c.bsize
let device c = c.dev
let hits c = c.hits
let misses c = c.misses
let resident c = Hashtbl.length c.table
let evictions c = c.evictions
let readahead_batches c = c.ra_batches
let readahead_blocks c = c.ra_blocks
let readahead_hits c = c.ra_hits
let readahead_wasted c = c.ra_wasted

let is_prefetched c b =
  match Hashtbl.find_opt c.table b with Some e -> e.prefetched | None -> false

let meter c f = match c.meters with Some m -> Metrics.incr (f m) | None -> ()

let touch c e =
  c.tick <- c.tick + 1;
  e.last_use <- c.tick

(* A prefetched block a demand read finally touched: the guess paid. *)
let consume_prefetch c e =
  if e.prefetched then begin
    e.prefetched <- false;
    c.ra_hits <- c.ra_hits + 1;
    meter c (fun m -> m.m_ra_hits)
  end

let note_hit c e =
  c.hits <- c.hits + 1;
  meter c (fun m -> m.m_hits);
  consume_prefetch c e

let note_miss c =
  c.misses <- c.misses + 1;
  meter c (fun m -> m.m_misses)

(* A prefetched block leaving the cache unconsumed: the guess cost a
   device read for nothing. *)
let note_gone c e =
  if e.prefetched then begin
    c.ra_wasted <- c.ra_wasted + 1;
    meter c (fun m -> m.m_ra_wasted)
  end

(* Evict the least-recently-used clean block if over capacity. Dirty
   blocks are pinned until flushed. *)
let make_room c =
  if Hashtbl.length c.table >= c.max_blocks then begin
    let victim = ref None in
    (* nfslint: allow D002 min-selection over unique last_use ticks; exactly one block wins regardless of iteration order *)
    Hashtbl.iter
      (fun b e ->
        if e.dirty = None then
          match !victim with
          | Some (_, ve) when ve.last_use <= e.last_use -> ()
          | _ -> victim := Some (b, e))
      c.table;
    match !victim with
    | Some (b, e) ->
        note_gone c e;
        Hashtbl.remove c.table b;
        c.evictions <- c.evictions + 1;
        meter c (fun m -> m.m_evictions)
    | None -> ()
  end

(* The pre-readahead demand miss: one blocking device read. *)
let demand_read c b =
  let buf = c.dev.Device.read ~off:(b * c.bsize) ~len:c.bsize in
  (* A concurrent reader may have populated the block while we were
     waiting on the device; keep the first copy to stay coherent. *)
  match Hashtbl.find_opt c.table b with
  | Some e ->
      consume_prefetch c e;
      touch c e;
      e.buf
  | None ->
      make_room c;
      let e = { buf; dirty = None; last_use = 0; prefetched = false } in
      touch c e;
      Hashtbl.replace c.table b e;
      buf

let get c b =
  match Hashtbl.find_opt c.table b with
  | Some e ->
      note_hit c e;
      touch c e;
      e.buf
  | None -> (
      note_miss c;
      let waiting =
        match c.ra with None -> None | Some ra -> Hashtbl.find_opt ra.inflight b
      in
      match waiting with
      | Some iv -> (
          (* A prefetch already has this block on the device queue:
             park on its completion instead of duplicating the read. *)
          Nfsg_sim.Ivar.read iv;
          match Hashtbl.find_opt c.table b with
          | Some e ->
              consume_prefetch c e;
              touch c e;
              e.buf
          | None ->
              (* The prefetch failed or was evicted before we woke. *)
              demand_read c b)
      | None -> demand_read c b)

let get_fresh c b =
  match Hashtbl.find_opt c.table b with
  | Some e ->
      note_hit c e;
      touch c e;
      e.buf
  | None ->
      make_room c;
      let buf = Bytes.make c.bsize '\000' in
      let e = { buf; dirty = None; last_use = 0; prefetched = false } in
      touch c e;
      Hashtbl.replace c.table b e;
      buf

(* {1 Read-ahead engine} *)

(* Submit one async prefetch batch for the given device blocks and
   spawn the completion fiber that installs the filled buffers. The
   fiber parks only on request ivars and takes no locks, so the engine
   is yield-point clean by construction. *)
let prefetch c ra dbs =
  let reqs =
    List.map (fun db -> (db, Io.read_req ~class_:`Read ~off:(db * c.bsize) ~len:c.bsize ())) dbs
  in
  List.iter (fun (db, r) -> Hashtbl.replace ra.inflight db r.Io.done_) reqs;
  c.ra_batches <- c.ra_batches + 1;
  meter c (fun m -> m.m_ra_batches);
  let n = List.length reqs in
  c.ra_blocks <- c.ra_blocks + n;
  (match c.meters with Some m -> Metrics.add m.m_ra_blocks n | None -> ());
  c.dev.Device.submit (List.map (fun (_, r) -> Io.Req r) reqs);
  Nfsg_sim.Engine.spawn ra.eng ~name:"readahead" (fun () ->
      List.iter
        (fun (db, r) ->
          Nfsg_sim.Ivar.read r.Io.done_;
          Hashtbl.remove ra.inflight db;
          match r.Io.error with
          | Some _ -> ()  (* failed prefetch: the demand read will retry *)
          | None ->
              if Hashtbl.mem c.table db then begin
                (* A demand read landed first; this copy goes unused.
                   Keeping the first copy preserves coherence with any
                   in-core mutation since. *)
                c.ra_wasted <- c.ra_wasted + 1;
                meter c (fun m -> m.m_ra_wasted)
              end
              else begin
                make_room c;
                let e = { buf = r.Io.buf; dirty = None; last_use = 0; prefetched = true } in
                touch c e;
                Hashtbl.replace c.table db e
              end)
        reqs)

(* Find or create the stream slot, recycling the least-recently-used
   slot when the table is full. *)
let stream_slot c ra id =
  match Hashtbl.find_opt ra.streams id with
  | Some s ->
      c.tick <- c.tick + 1;
      s.s_use <- c.tick;
      s
  | None ->
      if Hashtbl.length ra.streams >= ra.cfg.max_streams then begin
        let victim = ref None in
        (* nfslint: allow D002 min-selection over unique s_use ticks; exactly one stream wins regardless of iteration order *)
        Hashtbl.iter
          (fun k s ->
            match !victim with
            | Some (_, vs) when vs.s_use <= s.s_use -> ()
            | _ -> victim := Some (k, s))
          ra.streams;
        match !victim with Some (k, _) -> Hashtbl.remove ra.streams k | None -> ()
      end;
      c.tick <- c.tick + 1;
      let s = { next_fbn = 0; run = 0; high = 0; s_use = c.tick } in
      Hashtbl.replace ra.streams id s;
      s

let note_read c ~stream ~fbn ~nblocks ~map ~limit =
  match c.ra with
  | None -> ()
  | Some ra ->
      if nblocks > 0 then begin
        let s = stream_slot c ra stream in
        let last = fbn + nblocks - 1 in
        if s.run > 0 && fbn = s.next_fbn then s.run <- s.run + nblocks
        else if s.run > 0 && fbn < s.next_fbn && last + 1 >= s.next_fbn then
          (* Overlapping re-read (dupcache miss, retransmission):
             neither extends nor breaks the run. *)
          ()
        else begin
          (* New stream position: start a fresh run. *)
          s.run <- nblocks;
          s.high <- last + 1
        end;
        s.next_fbn <- Stdlib.max s.next_fbn (last + 1);
        if s.run >= ra.cfg.min_run then begin
          let lo = Stdlib.max (last + 1) s.high in
          let hi = Stdlib.min limit (last + 1 + ra.cfg.window) in
          if hi > lo then begin
            let dbs = ref [] in
            for f = hi - 1 downto lo do
              match map f with
              | 0 -> ()  (* hole, or mapping not resident: skip *)
              | db ->
                  if (not (Hashtbl.mem c.table db)) && not (Hashtbl.mem ra.inflight db) then
                    dbs := db :: !dbs
            done;
            s.high <- hi;
            match !dbs with [] -> () | dbs -> prefetch c ra dbs
          end
        end
      end

let peek c b = Option.map (fun e -> e.buf) (Hashtbl.find_opt c.table b)

let mark_dirty c b kind =
  match Hashtbl.find_opt c.table b with
  | None -> invalid_arg (Printf.sprintf "buffer_cache: mark_dirty of uncached block %d" b)
  | Some e -> (
      match (e.dirty, kind) with
      | Some Metadata, Data -> ()
      | _ -> e.dirty <- Some kind)

let is_dirty c b =
  match Hashtbl.find_opt c.table b with Some { dirty = Some _; _ } -> true | _ -> false

let write_sync c b =
  match Hashtbl.find_opt c.table b with
  | None -> ()
  | Some e -> (
      (* Snapshot so later in-core mutations don't leak into a write
         already in flight. *)
      let snapshot = Bytes.copy e.buf in
      let was = e.dirty in
      e.dirty <- None;
      try c.dev.Device.write ~off:(b * c.bsize) snapshot
      with exn ->
        (* The block never reached stable storage: it must stay dirty or
           a later fsync would skip it. A kind recorded by a concurrent
           writer during the failed transaction takes precedence. *)
        (match (e.dirty, was) with
        | None, Some k -> e.dirty <- Some k
        | Some Data, Some Metadata -> e.dirty <- Some Metadata
        | _ -> ());
        raise exn)

let dirty_blocks c kind =
  Hashtbl.fold (fun b e acc -> if e.dirty = Some kind then b :: acc else acc) c.table []
  |> List.sort compare

(* One snapshotted cluster write plus the restore record needed to
   re-dirty its blocks if the request fails. *)
type prepared = (Io.req * (entry * kind option) list) list

let prepare c ~class_ ~max_cluster blocks =
  let eligible =
    List.sort_uniq compare (List.filter (fun b -> is_dirty c b) blocks)
  in
  let max_blocks = Stdlib.max 1 (max_cluster / c.bsize) in
  (* Group device-contiguous runs, bounded by the cluster size. *)
  let rec runs acc current = function
    | [] -> List.rev (match current with [] -> acc | r -> List.rev r :: acc)
    | b :: rest -> (
        match current with
        | prev :: _ when b = prev + 1 && List.length current < max_blocks ->
            runs acc (b :: current) rest
        | [] -> runs acc [ b ] rest
        | r -> runs (List.rev r :: acc) [ b ] rest)
  in
  let snap_run run =
    match run with
    | [] -> None
    | first :: _ ->
        (* Snapshot into the request buffer so later in-core mutations
           don't leak into a write already in flight, and mark the
           blocks clean now: a writer dirtying one mid-flight must not
           have its new bytes considered durable. *)
        let n = List.length run in
        let big = Bytes.create (n * c.bsize) in
        let was =
          List.mapi
            (fun i b ->
              match Hashtbl.find_opt c.table b with
              | Some e ->
                  Bytes.blit e.buf 0 big (i * c.bsize) c.bsize;
                  let k = e.dirty in
                  e.dirty <- None;
                  (e, k)
              | None -> assert false)
            run
        in
        Some (Io.write_req ~class_ ~off:(first * c.bsize) big, was)
  in
  List.filter_map snap_run (runs [] [] eligible)

let prepared_items p = List.map (fun (r, _) -> Io.Req r) p

let await_prepared ps =
  let all = List.concat ps in
  (* Park on every request before looking at any outcome: a failure
     must not leave later clusters un-awaited. *)
  List.iter (fun (r, _) -> Nfsg_sim.Ivar.read r.Io.done_) all;
  let first_err = ref None in
  List.iter
    (fun (r, was) ->
      match r.Io.error with
      | None -> ()
      | Some exn ->
          if !first_err = None then first_err := Some exn;
          (* Failed transaction: nothing reached the platter, so every
             block of the run must stay dirty for the next sync. A kind
             recorded by a concurrent writer while the request was in
             flight takes precedence. *)
          List.iter
            (fun (e, k) ->
              match (e.dirty, k) with
              | None, Some _ -> e.dirty <- k
              | Some Data, Some Metadata -> e.dirty <- Some Metadata
              | _ -> ())
            was)
    all;
  match !first_err with Some exn -> raise exn | None -> ()

let sync_clustered c blocks ~max_cluster =
  match prepare c ~class_:`Gather_flush ~max_cluster blocks with
  | [] -> ()
  | p ->
      c.dev.Device.submit (prepared_items p);
      await_prepared [ p ]

let install c b bytes =
  if not (Hashtbl.mem c.table b) then begin
    if Bytes.length bytes <> c.bsize then invalid_arg "buffer_cache: install of odd-sized buffer";
    make_room c;
    let e = { buf = Bytes.copy bytes; dirty = None; last_use = 0; prefetched = false } in
    touch c e;
    Hashtbl.replace c.table b e
  end

let drop c b =
  (match Hashtbl.find_opt c.table b with Some e -> note_gone c e | None -> ());
  Hashtbl.remove c.table b

let crash c =
  Hashtbl.reset c.table;
  (match c.ra with
  | Some ra ->
      Hashtbl.reset ra.streams;
      Hashtbl.reset ra.inflight
  | None -> ());
  c.hits <- 0;
  c.misses <- 0
