open Nfsg_disk

type kind = Data | Metadata

type entry = { buf : Bytes.t; mutable dirty : kind option; mutable last_use : int }

type t = {
  dev : Device.t;
  bsize : int;
  table : (int, entry) Hashtbl.t;
  max_blocks : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create dev ~bsize ?(max_blocks = max_int) () =
  if max_blocks < 8 then invalid_arg "buffer_cache: max_blocks too small";
  {
    dev;
    bsize;
    table = Hashtbl.create 1024;
    max_blocks;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let bsize c = c.bsize
let device c = c.dev
let hits c = c.hits
let misses c = c.misses
let resident c = Hashtbl.length c.table
let evictions c = c.evictions

let touch c e =
  c.tick <- c.tick + 1;
  e.last_use <- c.tick

(* Evict the least-recently-used clean block if over capacity. Dirty
   blocks are pinned until flushed. *)
let make_room c =
  if Hashtbl.length c.table >= c.max_blocks then begin
    let victim = ref None in
    (* nfslint: allow D002 min-selection over unique last_use ticks; exactly one block wins regardless of iteration order *)
    Hashtbl.iter
      (fun b e ->
        if e.dirty = None then
          match !victim with
          | Some (_, ve) when ve.last_use <= e.last_use -> ()
          | _ -> victim := Some (b, e))
      c.table;
    match !victim with
    | Some (b, _) ->
        Hashtbl.remove c.table b;
        c.evictions <- c.evictions + 1
    | None -> ()
  end

let get c b =
  match Hashtbl.find_opt c.table b with
  | Some e ->
      c.hits <- c.hits + 1;
      touch c e;
      e.buf
  | None ->
      c.misses <- c.misses + 1;
      let buf = c.dev.Device.read ~off:(b * c.bsize) ~len:c.bsize in
      (* A concurrent reader may have populated the block while we were
         waiting on the device; keep the first copy to stay coherent. *)
      (match Hashtbl.find_opt c.table b with
      | Some e ->
          touch c e;
          e.buf
      | None ->
          make_room c;
          let e = { buf; dirty = None; last_use = 0 } in
          touch c e;
          Hashtbl.replace c.table b e;
          buf)

let get_fresh c b =
  match Hashtbl.find_opt c.table b with
  | Some e ->
      c.hits <- c.hits + 1;
      touch c e;
      e.buf
  | None ->
      make_room c;
      let buf = Bytes.make c.bsize '\000' in
      let e = { buf; dirty = None; last_use = 0 } in
      touch c e;
      Hashtbl.replace c.table b e;
      buf

let peek c b = Option.map (fun e -> e.buf) (Hashtbl.find_opt c.table b)

let mark_dirty c b kind =
  match Hashtbl.find_opt c.table b with
  | None -> invalid_arg (Printf.sprintf "buffer_cache: mark_dirty of uncached block %d" b)
  | Some e -> (
      match (e.dirty, kind) with
      | Some Metadata, Data -> ()
      | _ -> e.dirty <- Some kind)

let is_dirty c b =
  match Hashtbl.find_opt c.table b with Some { dirty = Some _; _ } -> true | _ -> false

let write_sync c b =
  match Hashtbl.find_opt c.table b with
  | None -> ()
  | Some e -> (
      (* Snapshot so later in-core mutations don't leak into a write
         already in flight. *)
      let snapshot = Bytes.copy e.buf in
      let was = e.dirty in
      e.dirty <- None;
      try c.dev.Device.write ~off:(b * c.bsize) snapshot
      with exn ->
        (* The block never reached stable storage: it must stay dirty or
           a later fsync would skip it. A kind recorded by a concurrent
           writer during the failed transaction takes precedence. *)
        (match (e.dirty, was) with
        | None, Some k -> e.dirty <- Some k
        | Some Data, Some Metadata -> e.dirty <- Some Metadata
        | _ -> ());
        raise exn)

let dirty_blocks c kind =
  Hashtbl.fold (fun b e acc -> if e.dirty = Some kind then b :: acc else acc) c.table []
  |> List.sort compare

(* One snapshotted cluster write plus the restore record needed to
   re-dirty its blocks if the request fails. *)
type prepared = (Io.req * (entry * kind option) list) list

let prepare c ~class_ ~max_cluster blocks =
  let eligible =
    List.sort_uniq compare (List.filter (fun b -> is_dirty c b) blocks)
  in
  let max_blocks = Stdlib.max 1 (max_cluster / c.bsize) in
  (* Group device-contiguous runs, bounded by the cluster size. *)
  let rec runs acc current = function
    | [] -> List.rev (match current with [] -> acc | r -> List.rev r :: acc)
    | b :: rest -> (
        match current with
        | prev :: _ when b = prev + 1 && List.length current < max_blocks ->
            runs acc (b :: current) rest
        | [] -> runs acc [ b ] rest
        | r -> runs (List.rev r :: acc) [ b ] rest)
  in
  let snap_run run =
    match run with
    | [] -> None
    | first :: _ ->
        (* Snapshot into the request buffer so later in-core mutations
           don't leak into a write already in flight, and mark the
           blocks clean now: a writer dirtying one mid-flight must not
           have its new bytes considered durable. *)
        let n = List.length run in
        let big = Bytes.create (n * c.bsize) in
        let was =
          List.mapi
            (fun i b ->
              match Hashtbl.find_opt c.table b with
              | Some e ->
                  Bytes.blit e.buf 0 big (i * c.bsize) c.bsize;
                  let k = e.dirty in
                  e.dirty <- None;
                  (e, k)
              | None -> assert false)
            run
        in
        Some (Io.write_req ~class_ ~off:(first * c.bsize) big, was)
  in
  List.filter_map snap_run (runs [] [] eligible)

let prepared_items p = List.map (fun (r, _) -> Io.Req r) p

let await_prepared ps =
  let all = List.concat ps in
  (* Park on every request before looking at any outcome: a failure
     must not leave later clusters un-awaited. *)
  List.iter (fun (r, _) -> Nfsg_sim.Ivar.read r.Io.done_) all;
  let first_err = ref None in
  List.iter
    (fun (r, was) ->
      match r.Io.error with
      | None -> ()
      | Some exn ->
          if !first_err = None then first_err := Some exn;
          (* Failed transaction: nothing reached the platter, so every
             block of the run must stay dirty for the next sync. A kind
             recorded by a concurrent writer while the request was in
             flight takes precedence. *)
          List.iter
            (fun (e, k) ->
              match (e.dirty, k) with
              | None, Some _ -> e.dirty <- k
              | Some Data, Some Metadata -> e.dirty <- Some Metadata
              | _ -> ())
            was)
    all;
  match !first_err with Some exn -> raise exn | None -> ()

let sync_clustered c blocks ~max_cluster =
  match prepare c ~class_:`Gather_flush ~max_cluster blocks with
  | [] -> ()
  | p ->
      c.dev.Device.submit (prepared_items p);
      await_prepared [ p ]

let install c b bytes =
  if not (Hashtbl.mem c.table b) then begin
    if Bytes.length bytes <> c.bsize then invalid_arg "buffer_cache: install of odd-sized buffer";
    make_room c;
    let e = { buf = Bytes.copy bytes; dirty = None; last_use = 0 } in
    touch c e;
    Hashtbl.replace c.table b e
  end

let drop c b = Hashtbl.remove c.table b

let crash c =
  Hashtbl.reset c.table;
  c.hits <- 0;
  c.misses <- 0
