open Nfsg_sim
module Report = Nfsg_stats.Report
module Trace = Nfsg_stats.Trace
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module File_writer = Nfsg_workload.File_writer
module Laddis = Nfsg_workload.Laddis
module Client = Nfsg_nfs.Client

let size quick = if quick then 2 * 1024 * 1024 + 512 * 1024 else Calib.file_size
let paper_biods = [ 0; 3; 7; 11; 15 ]
let stripe_biods = [ 0; 3; 7; 11; 15; 19; 23 ]

let table1 ?(quick = false) () =
  Filecopy.table ~title:"Table 1. NFS 10MB file copy: Ethernet" ~net:Calib.Ethernet ~accel:false
    ~spindles:1 ~biods:paper_biods ~total:(size quick) ()

let table2 ?(quick = false) () =
  Filecopy.table ~title:"Table 2. NFS 10MB file copy: Ethernet, Presto" ~net:Calib.Ethernet
    ~accel:true ~spindles:1 ~biods:paper_biods ~total:(size quick) ()

let table3 ?(quick = false) () =
  Filecopy.table ~title:"Table 3. NFS 10MB file copy: FDDI" ~net:Calib.Fddi ~accel:false
    ~spindles:1 ~biods:paper_biods ~total:(size quick) ()

let table4 ?(quick = false) () =
  Filecopy.table ~title:"Table 4. NFS 10MB file copy: FDDI, Presto" ~net:Calib.Fddi ~accel:true
    ~spindles:1 ~biods:paper_biods ~total:(size quick) ()

let table5 ?(quick = false) () =
  Filecopy.table ~title:"Table 5. NFS 10MB file copy: FDDI, 3 striped drives" ~net:Calib.Fddi
    ~accel:false ~spindles:3 ~biods:stripe_biods ~total:(size quick) ()

let table6 ?(quick = false) () =
  Filecopy.table ~title:"Table 6. NFS 10MB file copy: FDDI, Presto, 3 striped drives"
    ~net:Calib.Fddi ~accel:true ~spindles:3 ~biods:stripe_biods ~total:(size quick) ()

(* {1 Figure 1: event timelines} *)

let figure1_trace ~gathering =
  let spec = { Rig.default_spec with Rig.net = Calib.Fddi; gathering; trace = true } in
  let rig = Rig.make spec in
  Rig.run rig (fun () ->
      let client = Rig.new_client rig ~biods:4 "client" in
      (* Write 200K; the interesting steady-state is >100K into the
         file, as in the paper's caption. *)
      ignore
        (File_writer.run rig.Rig.eng client ~dir:(Rig.root rig) ~name:"f" ~total:(200 * 1024) ()));
  match rig.Rig.trace with
  | None -> assert false
  | Some tr ->
      let events = Trace.events tr in
      (* Keep a window of events from the middle of the transfer. *)
      let n = List.length events in
      let mid = List.filteri (fun i _ -> i >= n / 2 && i < (n / 2) + 24) events in
      let t0 = match mid with (t, _, _) :: _ -> t | [] -> 0 in
      String.concat ""
        (List.map
           (fun (t, actor, ev) ->
             Printf.sprintf "  t=+%7.3fms  %-8s %s\n" (Time.to_ms_f (t - t0)) actor ev)
           mid)

let figure1 () =
  let std = figure1_trace ~gathering:false in
  let gat = figure1_trace ~gathering:true in
  "Figure 1. Write Gathering NFS Server Comparison\n"
  ^ "(sequential file writer, 4 biods, FDDI, rz26 disk; window >100K into the file)\n\n"
  ^ "--- Standard server ---\n" ^ std ^ "\n--- Gathering server ---\n" ^ gat

(* {1 Figures 2 and 3: LADDIS curves} *)

type laddis_point = { offered : float; achieved : float; avg_latency_ms : float }

type laddis_curve = {
  label : string;
  points : laddis_point list;
  peak_ops : float;
  latency_at_peak : float;
}

(* The paper's Figure 2/3 server: DEC 3800, FDDI, 20 disks on 5 SCSI
   buses, 32 nfsds. *)
let laddis_point ~accel ~gathering ~offered ~cfg =
  let spec =
    {
      Rig.default_spec with
      Rig.net = Calib.Fddi;
      accel;
      gathering;
      (* Scaled-down analogue of the paper's 20-disk DEC 3800: the disk
         array is the saturating resource, so relieving it with fewer
         write transactions buys capacity. Absolute ops/s are smaller
         than the paper's; the shapes are the point. *)
      spindles = 2;
      nfsds = 32;
      (* Small enough that the LADDIS working set misses: reads then
         contend with write transactions at the spindles, which is the
         queueing the paper's Figure 2 latency curve shows. *)
      cache_blocks = Some 1024;
    }
  in
  let rig = Rig.make spec in
  Rig.run rig (fun () ->
      let make_client i = Rig.new_client rig ~biods:cfg.Laddis.biods_per_proc (Printf.sprintf "lc%d" i) in
      let p = Laddis.run rig.Rig.eng ~make_client ~root:(Rig.root rig) ~offered cfg in
      { offered = p.Laddis.offered; achieved = p.Laddis.achieved; avg_latency_ms = p.Laddis.avg_latency_ms })

let laddis_curve ~accel ~gathering ~label ~loads ~cfg =
  let points =
    List.map
      (fun offered ->
        let p = laddis_point ~accel ~gathering ~offered ~cfg in
        (* Each point retires a whole simulated world (~200 MB of
           platters); reclaim it before building the next. *)
        Gc.full_major ();
        p)
      loads
  in
  let peak = List.fold_left (fun acc p -> if p.achieved > acc.achieved then p else acc)
      { offered = 0.; achieved = 0.; avg_latency_ms = 0. } points
  in
  { label; points; peak_ops = peak.achieved; latency_at_peak = peak.avg_latency_ms }

let laddis_loads quick =
  if quick then [ 100.0; 250.0; 400.0 ]
  else [ 50.0; 100.0; 150.0; 200.0; 250.0; 300.0; 350.0; 400.0; 500.0 ]

let laddis_cfg quick =
  let base =
    {
      Laddis.default_config with
      Laddis.procs = 20;
      files_per_proc = 16;
      file_size = 256 * 1024;
      biods_per_proc = 16;
    }
  in
  if quick then { base with Laddis.warmup = Time.sec 1; measure = Time.sec 4 } else base

let figure2 ?(quick = false) () =
  let cfg = laddis_cfg quick and loads = laddis_loads quick in
  ( laddis_curve ~accel:false ~gathering:false ~label:"WITHOUT WRITE GATHERING" ~loads ~cfg,
    laddis_curve ~accel:false ~gathering:true ~label:"WITH WRITE GATHERING" ~loads ~cfg )

let figure3 ?(quick = false) () =
  let cfg = laddis_cfg quick and loads = laddis_loads quick in
  ( laddis_curve ~accel:true ~gathering:false ~label:"WITHOUT WRITE GATHERING" ~loads ~cfg,
    laddis_curve ~accel:true ~gathering:true ~label:"WITH WRITE GATHERING" ~loads ~cfg )

let render_laddis ~title (without, with_) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  let render c =
    Buffer.add_string buf (Printf.sprintf "  %s\n" c.label);
    Buffer.add_string buf "    offered(ops/s)  achieved(ops/s)  avg latency(ms)\n";
    List.iter
      (fun p ->
        Buffer.add_string buf
          (Printf.sprintf "    %14.0f  %15.1f  %15.2f\n" p.offered p.achieved p.avg_latency_ms))
      c.points;
    Buffer.add_string buf
      (Printf.sprintf "    peak throughput: %.1f ops/s at %.2f ms avg latency\n" c.peak_ops
         c.latency_at_peak)
  in
  render without;
  render with_;
  let gain = 100.0 *. (with_.peak_ops -. without.peak_ops) /. without.peak_ops in
  Buffer.add_string buf (Printf.sprintf "  capacity change with gathering: %+.1f%%\n" gain);
  Buffer.contents buf

(* {1 Ablations} *)

let copy_with_config ?(net = Calib.Fddi) ?(accel = false) ~biods ~total overrides =
  let spec =
    { Rig.default_spec with Rig.net; accel; gathering = true; write_layer_overrides = overrides }
  in
  Filecopy.run_cell ~spec ~biods ~total ()

let ablation_procrastination ?(quick = false) () =
  let total = size quick in
  let intervals_ms = [ 0.0; 1.0; 2.0; 4.0; 5.0; 8.0; 12.0; 16.0 ] in
  let report =
    Report.create ~title:"Ablation: procrastination interval (FDDI, 7 biods)"
      ~columns:(List.map (fun ms -> Printf.sprintf "%.0fms" ms) intervals_ms)
  in
  let cells =
    List.map
      (fun ms ->
        copy_with_config ~biods:7 ~total (fun c ->
            { c with Write_layer.procrastinate = Time.of_ms_f ms }))
      intervals_ms
  in
  Report.add_row report "client write speed (KB/sec)" (List.map (fun c -> c.Filecopy.client_kb_s) cells);
  Report.add_row report "writes per metadata update" (List.map (fun c -> c.Filecopy.mean_batch) cells);
  Report.add_row report "server cpu util. (%)" (List.map (fun c -> c.Filecopy.cpu_pct) cells);
  report

let ablation_reply_order ?(quick = false) () =
  let total = size quick in
  let biods_list = [ 1; 2; 4 ] in
  let report =
    Report.create ~title:"Ablation: reply order, FIFO vs LIFO (FDDI)"
      ~columns:(List.map (fun b -> Printf.sprintf "%d biods" b) biods_list)
  in
  let row order label =
    let cells =
      List.map
        (fun biods ->
          copy_with_config ~biods ~total (fun c -> { c with Write_layer.reply_order = order }))
        biods_list
    in
    Report.add_row report label (List.map (fun c -> c.Filecopy.client_kb_s) cells)
  in
  row `Fifo "FIFO client write speed (KB/sec)";
  row `Lifo "LIFO client write speed (KB/sec)";
  report

let ablation_latency_device ?(quick = false) () =
  let total = size quick in
  let report =
    Report.create ~title:"Ablation: procrastination vs SIVA93 first-write latency device (7 biods)"
      ~columns:[ "disk"; "disk+Presto" ]
  in
  let row device label =
    let cells =
      List.map
        (fun accel ->
          copy_with_config ~accel ~biods:7 ~total (fun c ->
              { c with Write_layer.latency_device = device }))
        [ false; true ]
    in
    Report.add_row report (label ^ " client KB/sec") (List.map (fun c -> c.Filecopy.client_kb_s) cells);
    Report.add_row report (label ^ " disk trans/sec") (List.map (fun c -> c.Filecopy.disk_trans_s) cells)
  in
  row `Procrastinate "procrastinate";
  row `First_write "first-write (SIVA93)";
  report

let ablation_mbuf_hunter ?(quick = false) () =
  let total = size quick in
  let report =
    Report.create ~title:"Ablation: mbuf hunter under Prestoserve (8 biods)"
      ~columns:[ "1 nfsd"; "8 nfsds" ]
  in
  let row hunter label =
    let cells =
      List.map
        (fun nfsds ->
          let spec =
            {
              Rig.default_spec with
              Rig.accel = true;
              nfsds;
              write_layer_overrides = (fun c -> { c with Write_layer.use_mbuf_hunter = hunter });
            }
          in
          Filecopy.run_cell ~spec ~biods:8 ~total ())
        [ 1; 8 ]
    in
    Report.add_row report (label ^ " writes/metadata update")
      (List.map (fun c -> c.Filecopy.mean_batch) cells);
    Report.add_row report (label ^ " client KB/sec") (List.map (fun c -> c.Filecopy.client_kb_s) cells)
  in
  row true "hunter on";
  row false "hunter off";
  report

let ablation_disk_scheduler ?(quick = false) () =
  (* A deep random READ queue is where the elevator earns its keep:
     eight client hosts issue uncached 8K reads concurrently. *)
  let reads_per_client = if quick then 40 else 160 in
  let nclients = 8 in
  let report =
    Report.create
      ~title:"Ablation: disk scheduler, 8 concurrent random readers (uncached)"
      ~columns:[ "FIFO"; "C-LOOK elevator" ]
  in
  let cells =
    List.map
      (fun disk_scheduler ->
        let spec =
          { Rig.default_spec with Rig.gathering = false; disk_scheduler; cache_blocks = Some 64 }
        in
        let rig = Rig.make spec in
        let elapsed =
          Rig.run rig (fun () ->
              (* One client seeds a large file... *)
              let seeder = Rig.new_client rig ~biods:8 "seeder" in
              let fh, _ = Client.create_file seeder (Rig.root rig) "big" in
              let f = Client.open_file seeder fh in
              for i = 0 to 511 do
                Client.write f ~off:(i * 8192) (Bytes.make 8192 'r')
              done;
              Client.close f;
              (* ...then the readers hammer it with random blocks. *)
              let t0 = Engine.now rig.Rig.eng in
              let left = ref nclients in
              let done_cond = Nfsg_sim.Condition.create () in
              for c = 0 to nclients - 1 do
                let client = Rig.new_client rig ~biods:4 (Printf.sprintf "rd%d" c) in
                let rng = Nfsg_sim.Rng.create (101 + c) in
                Engine.spawn rig.Rig.eng ~name:(Printf.sprintf "reader%d" c) (fun () ->
                    for _ = 1 to reads_per_client do
                      let blk = Nfsg_sim.Rng.int rng 512 in
                      ignore (Client.read client fh ~off:(blk * 8192) ~len:8192)
                    done;
                    decr left;
                    if !left = 0 then Nfsg_sim.Condition.broadcast done_cond)
              done;
              while !left > 0 do
                Nfsg_sim.Condition.wait done_cond
              done;
              Engine.now rig.Rig.eng - t0)
        in
        let bytes = nclients * reads_per_client * 8192 in
        float_of_int bytes /. 1024.0 /. Time.to_sec_f elapsed)
      [ Nfsg_disk.Disk.Fifo; Nfsg_disk.Disk.Elevator ]
  in
  Report.add_row report "aggregate read throughput (KB/sec)" cells;
  report

(* {1 Extensions: the paper's Future Work, built out} *)

let copy_elapsed rig ~client ~total =
  Rig.run rig (fun () ->
      File_writer.run rig.Rig.eng client ~dir:(Rig.root rig) ~name:"x.dat" ~total ())

let extension_learned_clients ?(quick = false) () =
  let total = size quick in
  let report =
    Report.create ~title:"Extension: Mogul's learned-client database (Ethernet)"
      ~columns:[ "0 biods"; "7 biods" ]
  in
  let row ~overrides label =
    let cells =
      List.map
        (fun biods ->
          let spec =
            { Rig.default_spec with Rig.net = Calib.Ethernet; write_layer_overrides = overrides }
          in
          let rig = Rig.make spec in
          let client = Rig.new_client rig ~biods "client" in
          (* Warm the learned database with a first copy, then measure
             a second one: the dumb PC's writes stop procrastinating. *)
          let _ = copy_elapsed rig ~client ~total:(total / 4) in
          let r =
            Rig.run rig (fun () ->
                File_writer.run rig.Rig.eng client ~dir:(Rig.root rig) ~name:"warm.dat" ~total ())
          in
          r.File_writer.kb_per_sec)
        [ 0; 7 ]
    in
    Report.add_row report label cells
  in
  let std_cells =
    List.map
      (fun biods ->
        let spec = { Rig.default_spec with Rig.net = Calib.Ethernet; gathering = false } in
        (Filecopy.run_cell ~spec ~biods ~total ()).Filecopy.client_kb_s)
      [ 0; 7 ]
  in
  Report.add_row report "standard server (KB/sec)" std_cells;
  row ~overrides:(fun c -> c) "gathering (KB/sec)";
  row
    ~overrides:(fun c -> { c with Write_layer.learn_clients = true })
    "gathering + learned clients (KB/sec)";
  report

let extension_v3 ?(quick = false) () =
  let total = size quick in
  let report =
    Report.create ~title:"Extension: NFS v2 vs v3 async writes + COMMIT (FDDI, 8 biods)"
      ~columns:[ "standard server"; "gathering server" ]
  in
  let row protocol label =
    let cells =
      List.map
        (fun gathering ->
          let spec = { Rig.default_spec with Rig.gathering } in
          let rig = Rig.make spec in
          let client = Rig.new_client rig ~biods:8 ~protocol "client" in
          let r = copy_elapsed rig ~client ~total in
          let d = Rig.spindle_stats rig in
          ( r.File_writer.kb_per_sec,
            float_of_int d.Nfsg_disk.Device.transactions /. Time.to_sec_f r.File_writer.elapsed ))
        [ false; true ]
    in
    Report.add_row report (label ^ " client KB/sec") (List.map fst cells);
    Report.add_row report (label ^ " disk trans/sec") (List.map snd cells)
  in
  row Client.V2 "v2";
  row Client.V3 "v3 (unstable+COMMIT)";
  report

let extension_write_modes ?(quick = false) () =
  let total = size quick in
  let report =
    Report.create ~title:"Extension: write-layer modes (FDDI, 7 biods)"
      ~columns:[ "standard"; "gathering"; "dangerous (async)" ]
  in
  let cells =
    List.map
      (fun wl ->
        let spec =
          { Rig.default_spec with Rig.gathering = true; write_layer_overrides = (fun _ -> wl) }
        in
        Filecopy.run_cell ~spec ~biods:7 ~total ())
      [ Write_layer.standard; Write_layer.default_gathering; Write_layer.unsafe_async ]
  in
  Report.add_row report "client write speed (KB/sec)" (List.map (fun c -> c.Filecopy.client_kb_s) cells);
  Report.add_row report "server disk (trans/sec)" (List.map (fun c -> c.Filecopy.disk_trans_s) cells);
  Report.add_text_row report "acknowledged data survives a crash" [ "yes"; "yes"; "NO" ];
  report

let ablation_dumb_pc ?(quick = false) () =
  let total = size quick in
  let report =
    Report.create ~title:"Ablation: single-threaded (0-biod) client penalty"
      ~columns:[ "Ethernet"; "FDDI" ]
  in
  let cells gathering =
    List.map
      (fun net ->
        let spec = { Rig.default_spec with Rig.net; gathering } in
        Filecopy.run_cell ~spec ~biods:0 ~total ())
      [ Calib.Ethernet; Calib.Fddi ]
  in
  let std = cells false and gat = cells true in
  Report.add_row report "standard client KB/sec" (List.map (fun c -> c.Filecopy.client_kb_s) std);
  Report.add_row report "gathering client KB/sec" (List.map (fun c -> c.Filecopy.client_kb_s) gat);
  Report.add_row report "penalty (%)"
    (List.map2
       (fun s g -> 100.0 *. (s.Filecopy.client_kb_s -. g.Filecopy.client_kb_s) /. s.Filecopy.client_kb_s)
       std gat);
  report

(* {1 The paper-table bench: BENCH_writegather.json}

   One machine-readable artifact holding the paper's core comparison —
   Standard vs Gathering vs Gathering+Prestoserve on the same FDDI
   7-biod sequential-write workload — with the latency split and the
   gather batch-size distribution the text tables cannot carry. Every
   number comes from the per-rig metrics registry, so the JSON is a
   pure function of the workload: same seed, same bytes. *)

module Json = Nfsg_stats.Json
module Metrics = Nfsg_stats.Metrics
module Histogram = Nfsg_stats.Histogram
module Names = Nfsg_stats.Names

let bench_biods = 7

let bench_writegather ?(quick = false) ?total () =
  let total = match total with Some t -> t | None -> size quick in
  let writes = (total + 8191) / 8192 in
  (* Each mode row must read its own registry — a shared --metrics-json
     sink would accumulate one row's latency and batch histograms into
     the next. Park the sink for the duration. *)
  let saved_sink = Rig.metrics_sink () in
  Rig.set_metrics_sink None;
  Fun.protect ~finally:(fun () -> Rig.set_metrics_sink saved_sink) @@ fun () ->
  let row ~mode ~gathering ~accel =
    Gc.full_major ();
    let spec = { Rig.default_spec with Rig.net = Calib.Fddi; gathering; accel } in
    let rig = Rig.make spec in
    let m = Rig.metrics rig in
    Rig.run rig (fun () ->
        let client = Rig.new_client rig ~biods:bench_biods "client" in
        let d0 = Rig.spindle_stats rig in
        let result, window =
          Rig.measure rig (fun () ->
              File_writer.run rig.Rig.eng client ~dir:(Rig.root rig) ~name:"bench.dat" ~total ())
        in
        let d1 = Rig.spindle_stats rig in
        let fh, _ = Nfsg_nfs.Client.lookup client (Rig.root rig) "bench.dat" in
        if not (File_writer.verify client ~fh ~total ~seed:7) then
          failwith "bench_writegather: read-back mismatch";
        let trans = d1.Nfsg_disk.Device.transactions - d0.Nfsg_disk.Device.transactions in
        let lat =
          match Metrics.find_histogram m ~ns:Names.Ns.nfs_client (Names.lat_us "WRITE") with
          | Some h ->
              Json.Obj
                [
                  ("mean_us", Json.Float (Histogram.mean h));
                  ("p50_us", Json.Float (Histogram.median h));
                  ("p99_us", Json.Float (Histogram.p99 h));
                ]
          | None -> Json.Null
        in
        let batch =
          match Metrics.find_histogram m ~ns:Names.Ns.write_layer Names.batch_size with
          | Some h ->
              Json.Obj
                [
                  ( "mean",
                    Json.Float
                      (Write_layer.mean_batch_size (Server.write_layer rig.Rig.server)) );
                  ( "histogram",
                    Json.List
                      (List.map
                         (fun (lo, hi, n) ->
                           Json.List [ Json.Float lo; Json.Float hi; Json.Int n ])
                         (Histogram.buckets h)) );
                ]
          | None -> Json.Null
        in
        let saved =
          Option.value ~default:0
            (Metrics.find_counter m ~ns:Names.Ns.write_layer Names.metadata_flushes_saved)
        in
        Json.Obj
          [
            ("mode", Json.String mode);
            ("throughput_kb_s", Json.Float result.File_writer.kb_per_sec);
            ("cpu_pct", Json.Float window.Rig.cpu_pct);
            ("latency", lat);
            ( "disk",
              Json.Obj
                [
                  ("transactions", Json.Int trans);
                  ("kb_s", Json.Float window.Rig.disk_kb_s);
                  ( "ops_per_8k_write",
                    Json.Float (float_of_int trans /. float_of_int writes) );
                ] );
            ("metadata_flushes_saved", Json.Int saved);
            ("batch_size", batch);
          ])
  in
  Json.Obj
    [
      ("schema", Json.String "nfsgather-bench/1");
      ("bench", Json.String "writegather");
      ( "workload",
        Json.Obj
          [
            ("net", Json.String "fddi");
            ("biods", Json.Int bench_biods);
            ("total_bytes", Json.Int total);
            ("block_bytes", Json.Int 8192);
            ("writes", Json.Int writes);
          ] );
      ( "rows",
        Json.List
          [
            row ~mode:"standard" ~gathering:false ~accel:false;
            row ~mode:"gathering" ~gathering:true ~accel:false;
            row ~mode:"nvram" ~gathering:true ~accel:true;
          ] );
    ]
