open Nfsg_sim
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Disk = Nfsg_disk.Disk
module Nvram = Nfsg_disk.Nvram
module Stripe = Nfsg_disk.Stripe
module Device = Nfsg_disk.Device
module Server = Nfsg_core.Server
module Volume = Nfsg_core.Volume
module Write_layer = Nfsg_core.Write_layer
module Client = Nfsg_nfs.Client
module Rpc_client = Nfsg_rpc.Rpc_client
module Metrics = Nfsg_stats.Metrics

type spec = {
  net : Calib.net;
  accel : bool;
  spindles : int;
  volumes : int;
  nfsds : int;
  gathering : bool;
  trace : bool;
  cache_blocks : int option;
  readahead : Nfsg_ufs.Buffer_cache.readahead option;
  disk_scheduler : Disk.scheduler;
  write_layer_overrides : Write_layer.config -> Write_layer.config;
}

let default_spec =
  {
    net = Calib.Fddi;
    accel = false;
    spindles = 1;
    volumes = 1;
    nfsds = 8;
    gathering = true;
    trace = false;
    cache_blocks = None;
    readahead = None;
    disk_scheduler = Disk.Fifo;
    write_layer_overrides = (fun c -> c);
  }

type t = {
  eng : Engine.t;
  segment : Segment.t;
  disks : Device.t array;
  device : Device.t;
  server : Server.t;
  trace : Nfsg_stats.Trace.t option;
  metrics : Metrics.t;
}

(* Optional shared sink: lets a CLI flag collect the instruments of
   every world an experiment builds into one registry without threading
   a parameter through every table/figure function. *)
let sink : Metrics.t option ref = ref None
let () = Reset.register ~name:"rig.metrics_sink" (fun () -> sink := None)
let set_metrics_sink m = sink := m
let metrics_sink () = !sink
let metrics t = t.metrics

(* Optional global override, same shape as the metrics sink: the
   nfsgather --scheduler flag forces every rig-built spindle onto one
   I/O scheduling policy without threading a parameter through every
   table/figure function. *)
let scheduler_override : Disk.scheduler option ref = ref None
let () = Reset.register ~name:"rig.scheduler_override" (fun () -> scheduler_override := None)
let set_scheduler_override s = scheduler_override := s
let scheduler_of spec = Option.value !scheduler_override ~default:spec.disk_scheduler

(* Same shape again for the array level: the nfsgather --raid-level
   flag turns every rig-built multi-spindle stripe set into a RAID-1
   or RAID-5 array. Cleared by Reset so one CLI run cannot leak its
   level into the next experiment. *)
let raid_level_override : Stripe.level option ref = ref None
let () = Reset.register ~name:"rig.raid_level_override" (fun () -> raid_level_override := None)
let set_raid_level_override l = raid_level_override := l

(* Live operability hooks, same global-override shape. The monitor
   interval makes every [run] drive an nfsmon reporter over the rig's
   registry; the emit callback is how the owning binary gets the output
   on screen without the rig (library code) printing anything itself.
   The long-op threshold arms journey tracing in every rig-built
   server. All cleared by Reset so a CLI run cannot leak into the
   next experiment or test. *)
let monitor_interval_override : Time.t option ref = ref None
let () = Reset.register ~name:"rig.monitor_interval" (fun () -> monitor_interval_override := None)
let set_monitor_interval i = monitor_interval_override := i

let monitor_emit : (string -> unit) option ref = ref None
let () = Reset.register ~name:"rig.monitor_emit" (fun () -> monitor_emit := None)
let set_monitor_emit f = monitor_emit := f

let long_op_threshold_override : Time.t option ref = ref None
let () =
  Reset.register ~name:"rig.long_op_threshold" (fun () -> long_op_threshold_override := None)

let set_long_op_threshold thr = long_op_threshold_override := thr

let make spec =
  if spec.volumes <= 0 then invalid_arg "Rig.make: need at least one volume";
  let eng = Engine.create () in
  let metrics = match !sink with Some m -> m | None -> Metrics.create () in
  let segment = Segment.create eng ~metrics (Calib.segment_params spec.net) in
  (* Forward reference: devices exist before the server CPU does. *)
  let cpu_hook = ref (fun (_ : Time.t) -> ()) in
  let costs = Calib.cpu_costs spec.net in
  let driver_cost = costs.Nfsg_core.Cpu_model.driver_transaction in
  (* One device stack (spindles, optional stripe, optional Presto) per
     volume. Single-volume disk names keep their historical form so
     metric keys stay byte-identical for existing rigs. *)
  let mk_stack v =
    let disks =
      Array.init spec.spindles (fun i ->
          let name =
            if spec.volumes = 1 then Printf.sprintf "rz26-%d" i
            else Printf.sprintf "vol%d-rz26-%d" (v + 1) i
          in
          Disk.create eng ~name ~metrics
            ~on_transaction:(fun ~bytes:_ -> !cpu_hook driver_cost)
            ~scheduler:(scheduler_of spec) Calib.disk_geometry)
    in
    let base =
      if spec.spindles = 1 then disks.(0)
      else
        match !raid_level_override with
        | None -> Stripe.create eng ~chunk:32768 disks
        | Some level -> Stripe.create eng ~metrics ~level ~chunk:32768 disks
    in
    let device =
      if spec.accel then
        Nvram.create eng ~params:Calib.nvram_params ~metrics ~cpu_charge:(fun d -> !cpu_hook d)
          base
      else base
    in
    (disks, device)
  in
  let stacks = Array.init spec.volumes mk_stack in
  let disks = Array.concat (Array.to_list (Array.map fst stacks)) in
  let trace = if spec.trace then Some (Nfsg_stats.Trace.create eng) else None in
  let write_layer =
    let base_cfg =
      if spec.gathering then
        { Write_layer.default_gathering with Write_layer.procrastinate = Calib.procrastinate spec.net }
      else Write_layer.standard
    in
    spec.write_layer_overrides base_cfg
  in
  let config =
    {
      Server.default_config with
      Server.nfsds = spec.nfsds;
      write_layer;
      costs;
      cache_blocks = spec.cache_blocks;
      readahead = spec.readahead;
      long_op_threshold = !long_op_threshold_override;
    }
  in
  let server =
    if spec.volumes = 1 then
      Server.make eng ~segment ~addr:"server" ~device:(snd stacks.(0)) ?trace ~metrics config
    else
      Server.make_exports eng ~segment ~addr:"server" ?trace ~metrics config
        (List.init spec.volumes (fun v ->
             {
               Volume.export = Printf.sprintf "/export%d" v;
               device = snd stacks.(v);
               cache_blocks = spec.cache_blocks;
               read_only = false;
               readahead = spec.readahead;
             }))
  in
  (cpu_hook := fun d -> Resource.charge (Server.cpu server) d);
  { eng; segment; disks; device = snd stacks.(0); server; trace; metrics }

let new_client t ?(biods = 4) ?(protocol = Client.V2) addr =
  let sock = Socket.create t.segment ~addr () in
  let rpc = Rpc_client.create t.eng ~sock ~server:"server" ~metrics:t.metrics () in
  Client.create t.eng ~rpc ~biods ~protocol ~metrics:t.metrics ()

let root t = Server.root_fh t.server
let roots t = List.map snd (Server.exports t.server)

let run t f =
  let monitor =
    match !monitor_interval_override with
    | Some interval ->
        let m =
          Nfsg_stats.Monitor.create t.eng ~metrics:t.metrics ~interval ?emit:!monitor_emit ()
        in
        Nfsg_stats.Monitor.start m;
        Some m
    | None -> None
  in
  let result = ref None in
  Engine.spawn t.eng ~name:"driver" (fun () ->
      let v = f () in
      (* The monitor's rearming timer keeps the event queue non-empty;
         stop it with the load or Engine.run never returns. *)
      Option.iter Nfsg_stats.Monitor.stop monitor;
      (* With long-op tracing armed, dump whatever the ring retained
         once the driven load is over — through the same emit callback,
         so the rig itself still never prints. *)
      (match (!long_op_threshold_override, !monitor_emit) with
      | Some _, Some emit ->
          let plane = Server.journeys t.server in
          if Nfsg_stats.Journey.long_op_count plane > 0 then begin
            emit "long-op records:\n";
            emit (Nfsg_stats.Journey.render_long_ops plane)
          end
      | _ -> ());
      result := Some v);
  Engine.run t.eng;
  match !result with
  | Some v -> v
  | None -> failwith "Rig.run: driver process blocked forever"

type window = { elapsed : Time.t; cpu_pct : float; disk_kb_s : float; disk_trans_s : float }

let spindle_stats t =
  Array.fold_left (fun acc d -> Device.add_stats acc (d.Device.spindle_stats ())) Device.zero_stats t.disks

let measure t f =
  let cpu = Server.cpu t.server in
  let t0 = Engine.now t.eng in
  let busy0 = Resource.busy_time cpu in
  let d0 = spindle_stats t in
  let v = f () in
  let t1 = Engine.now t.eng in
  let d1 = spindle_stats t in
  let trans = d1.Device.transactions - d0.Device.transactions in
  let busy1 = Resource.busy_time cpu in
  let elapsed = Stdlib.max 1 (t1 - t0) in
  let sec = Time.to_sec_f elapsed in
  ( v,
    {
      elapsed;
      cpu_pct = 100.0 *. float_of_int (busy1 - busy0) /. float_of_int elapsed;
      disk_kb_s = float_of_int (d1.Device.bytes_moved - d0.Device.bytes_moved) /. 1024.0 /. sec;
      disk_trans_s = float_of_int trans /. sec;
    } )
