open Nfsg_sim
module Boot = Nfsg_workload.Boot
module Buffer_cache = Nfsg_ufs.Buffer_cache
module Fs = Nfsg_ufs.Fs
module Server = Nfsg_core.Server
module Volume = Nfsg_core.Volume
module Json = Nfsg_stats.Json
module Report = Nfsg_stats.Report

(* The boot-storm capacity bench: a fleet of diskless workstations all
   power on against one shared read-only export (a lab after a power
   cut). Each rung of the ladder boots a bigger fleet in a fresh
   world; the rung's achieved rate against a perfect-scaling offered
   rate (fleet size x the one-client rate) gives the same knee shape
   as the LADDIS sweep, and the knee is the export's capacity in
   clients. Run once with server read-ahead off and once with it on —
   the contrast is the bench's point. *)

type sweep = {
  seed : int;
  nfsds : int;
  cache_blocks : int;
      (** server buffer-cache bound — deliberately smaller than the
          fleet's hot set so the cold storm actually misses *)
  clients_max : int;  (** ladder cap *)
  stagger : Time.t;  (** power-on spacing between fleet members *)
  knee_frac : float;  (** saturated when achieved < frac * offered *)
}

let default_sweep =
  {
    seed = 1994;
    nfsds = 16;
    cache_blocks = 112;
    clients_max = 16;
    stagger = Time.ms 5;
    (* A cold storm against one spindle never scales like a paced
       LADDIS sweep — every fleet member is fighting for the same disk
       arm from the first second — so the keep-up bar sits lower than
       the laddis-curve default: a rung counts as kept-up while the
       fleet still collects a majority of its perfectly-scaled rate. *)
    knee_frac = 0.55;
  }

(* Fleet sizes double to the cap: 1, 2, 4, ... clients_max. *)
let ladder max_clients =
  if max_clients <= 1 then [ 1 ]
  else begin
    let rec go k acc = if k >= max_clients then List.rev (max_clients :: acc) else go (k * 2) (k :: acc) in
    go 1 []
  end

(* {1 The configuration pair} *)

type variant = { label : string; readahead : Buffer_cache.readahead option }

let variants =
  [
    { label = "no-readahead"; readahead = None };
    { label = "readahead"; readahead = Some Buffer_cache.default_readahead };
  ]

(* {1 Global overrides}

   Same Reset-registered shape as the laddis-curve overrides: the
   nfsgather flags install them before the target runs and clear them
   after. *)

let clients_max_override : int option ref = ref None
let () = Reset.register ~name:"bootstorm.clients_max" (fun () -> clients_max_override := None)
let set_clients_max_override n = clients_max_override := n

let readahead_override : bool option ref = ref None
let () = Reset.register ~name:"bootstorm.readahead" (fun () -> readahead_override := None)
let set_readahead_override b = readahead_override := b

let effective_sweep sweep =
  match !clients_max_override with Some n -> { sweep with clients_max = n } | None -> sweep

let effective_variants () =
  match !readahead_override with
  | None -> variants
  | Some on -> List.filter (fun v -> (v.readahead <> None) = on) variants

(* {1 One rung: a fleet of [clients] in a fresh world} *)

type point = {
  clients : int;
  offered : float;  (** clients x the one-client rate, ops/s *)
  achieved : float;  (** ops/s over the storm window *)
  avg_latency_ms : float;  (** per-RPC *)
  ops_completed : int;
  mean_boot_ms : float;  (** per-client MOUNT-to-prompt time *)
  cache_hit_rate : float;  (** server cache, storm window only *)
  readahead_blocks : int;
  readahead_hits : int;
  readahead_wasted : int;
}

let run_rung sweep ~readahead ~clients =
  let spec =
    {
      Rig.default_spec with
      Rig.nfsds = sweep.nfsds;
      cache_blocks = Some sweep.cache_blocks;
      readahead;
    }
  in
  let rig = Rig.make spec in
  let eng = rig.Rig.eng in
  Rig.run rig (fun () ->
      (* Build the boot file set read-write, then protect the export
         before the fleet arrives — exportfs -o rw, populate, -o ro. *)
      let admin = Rig.new_client rig "admin" in
      Boot.populate admin (Rig.root rig);
      List.iter (fun v -> Volume.set_read_only v true) (Server.volumes rig.Rig.server);
      (* The storm premise is a lab-wide power cut: the server reboots
         too, so the fleet arrives at a genuinely cold cache. Recovery
         preserves the read-only flip and the read-ahead policy
         (Volume.spec_of). *)
      Server.crash rig.Rig.server;
      Engine.delay (Time.ms 50);
      let server = Server.restart rig.Rig.server in
      let cache = Fs.cache (Server.fs server) in
      let h0 = Buffer_cache.hits cache and m0 = Buffer_cache.misses cache in
      let rb0 = Buffer_cache.readahead_blocks cache in
      let rh0 = Buffer_cache.readahead_hits cache in
      let rw0 = Buffer_cache.readahead_wasted cache in
      let results = Array.make clients None in
      let finished = ref 0 in
      let done_cond = Condition.create () in
      let t0 = Engine.now eng in
      for i = 0 to clients - 1 do
        Engine.spawn eng
          ~name:(Printf.sprintf "boot-%d" i)
          (fun () ->
            if i > 0 then Engine.delay (i * sweep.stagger);
            let client = Rig.new_client rig (Printf.sprintf "ws%d" i) in
            results.(i) <- Some (Boot.boot eng client ~export:"/export");
            incr finished;
            if !finished = clients then Condition.broadcast done_cond)
      done;
      while !finished < clients do
        Condition.wait done_cond
      done;
      let elapsed = Engine.now eng - t0 in
      let stats = Array.to_list results |> List.filter_map Fun.id in
      let ops = List.fold_left (fun a (s : Boot.stats) -> a + s.Boot.ops) 0 stats in
      let lat = List.fold_left (fun a s -> a +. s.Boot.latency_sum_ms) 0.0 stats in
      let boot_ms = List.fold_left (fun a s -> a +. Time.to_ms_f s.Boot.elapsed) 0.0 stats in
      let hits = Buffer_cache.hits cache - h0 in
      let misses = Buffer_cache.misses cache - m0 in
      let accesses = hits + misses in
      {
        clients;
        offered = 0.0 (* filled against the rung-1 rate by the caller *);
        achieved = (if elapsed = 0 then 0.0 else float_of_int ops /. Time.to_sec_f elapsed);
        avg_latency_ms = (if ops = 0 then 0.0 else lat /. float_of_int ops);
        ops_completed = ops;
        mean_boot_ms = (if clients = 0 then 0.0 else boot_ms /. float_of_int clients);
        cache_hit_rate =
          (if accesses = 0 then 0.0 else float_of_int hits /. float_of_int accesses);
        readahead_blocks = Buffer_cache.readahead_blocks cache - rb0;
        readahead_hits = Buffer_cache.readahead_hits cache - rh0;
        readahead_wasted = Buffer_cache.readahead_wasted cache - rw0;
      })

(* {1 The ladder per configuration} *)

type curve = {
  label : string;
  readahead_on : bool;
  points : point list;  (** ladder order *)
  knee : int option;  (** index of the first sagging rung *)
  capacity_ops : float;  (** ops/s, per {!Laddis_curve.capacity_rating} *)
  capacity_clients : int;  (** biggest fleet the export kept up with *)
}

let run_variant sweep (v : variant) =
  (* The one-client rung calibrates the offered scale: a fleet of k
     that scaled perfectly would achieve k x that rate. Walk the whole
     ladder (fleets are finite tasks, not paced loops, so every rung
     terminates) and let knee detection read the curve afterwards. *)
  let points =
    List.map (fun k -> run_rung sweep ~readahead:v.readahead ~clients:k) (ladder sweep.clients_max)
  in
  let per_client = match points with p :: _ -> p.achieved | [] -> 0.0 in
  let points =
    List.map (fun p -> { p with offered = float_of_int p.clients *. per_client }) points
  in
  let oa = List.map (fun p -> (p.offered, p.achieved)) points in
  let knee = Laddis_curve.detect_knee ~frac:sweep.knee_frac oa in
  let kept_up =
    List.filter (fun p -> p.achieved >= sweep.knee_frac *. p.offered) points
  in
  {
    label = v.label;
    readahead_on = v.readahead <> None;
    points;
    knee;
    capacity_ops = Laddis_curve.capacity_rating ~frac:sweep.knee_frac oa;
    capacity_clients = List.fold_left (fun a p -> Stdlib.max a p.clients) 0 kept_up;
  }

let run ?(sweep = default_sweep) () =
  let sweep = effective_sweep sweep in
  List.map (run_variant sweep) (effective_variants ())

(* {1 Rendering} *)

let report ?(sweep = default_sweep) () =
  let curves = run ~sweep () in
  let report =
    Report.create ~title:"Boot storm: diskless fleet vs shared read-only export"
      ~columns:(List.map (fun c -> c.label) curves)
  in
  let row name f = Report.add_row report name (List.map f curves) in
  let top c = match List.rev c.points with p :: _ -> Some p | [] -> None in
  row "capacity (clients)" (fun c -> float_of_int c.capacity_clients);
  row "capacity (ops/s)" (fun c -> c.capacity_ops);
  row "knee fleet size" (fun c ->
      match c.knee with Some i -> float_of_int (List.nth c.points i).clients | None -> nan);
  row "top-rung cache hit rate" (fun c ->
      match top c with Some p -> p.cache_hit_rate | None -> nan);
  row "top-rung mean boot (ms)" (fun c ->
      match top c with Some p -> p.mean_boot_ms | None -> nan);
  row "top-rung latency (ms)" (fun c ->
      match top c with Some p -> p.avg_latency_ms | None -> nan);
  report

(* {1 BENCH_bootstorm.json}

   The committed artifact CI regenerates and byte-diffs, same contract
   as the other five: one fixed modest sweep regardless of quick/full
   mode, overrides honoured (the determinism test runs a tiny ladder
   through them). *)

let json_of_curves sweep curves =
  let json_point p =
    Json.Obj
      [
        ("clients", Json.Int p.clients);
        ("offered_ops_s", Json.Float p.offered);
        ("achieved_ops_s", Json.Float p.achieved);
        ("avg_latency_ms", Json.Float p.avg_latency_ms);
        ("ops_completed", Json.Int p.ops_completed);
        ("mean_boot_ms", Json.Float p.mean_boot_ms);
        ("cache_hit_rate", Json.Float p.cache_hit_rate);
        ("readahead_blocks", Json.Int p.readahead_blocks);
        ("readahead_hits", Json.Int p.readahead_hits);
        ("readahead_wasted", Json.Int p.readahead_wasted);
      ]
  in
  let json_curve c =
    Json.Obj
      [
        ("config", Json.String c.label);
        ("readahead", Json.Bool c.readahead_on);
        ("points", Json.List (List.map json_point c.points));
        ( "knee",
          match c.knee with
          | None -> Json.Null
          | Some i ->
              let p = List.nth c.points i in
              Json.Obj
                [
                  ("index", Json.Int i);
                  ("clients", Json.Int p.clients);
                  ("offered_ops_s", Json.Float p.offered);
                  ("achieved_ops_s", Json.Float p.achieved);
                ] );
        ("capacity_ops_s", Json.Float c.capacity_ops);
        ("capacity_clients", Json.Int c.capacity_clients);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "nfsgather-bench/1");
      ("bench", Json.String "bootstorm");
      ( "workload",
        Json.Obj
          [
            ("net", Json.String "fddi");
            ("boot_files", Json.Int (List.length Boot.boot_set));
            ("boot_bytes", Json.Int Boot.total_bytes);
            ("nfsds", Json.Int sweep.nfsds);
            ("cache_blocks", Json.Int sweep.cache_blocks);
            ("clients_max", Json.Int sweep.clients_max);
            ("stagger_ms", Json.Float (Time.to_ms_f sweep.stagger));
            ("knee_frac", Json.Float sweep.knee_frac);
            ("seed", Json.Int sweep.seed);
          ] );
      ("configs", Json.List (List.map json_curve curves));
    ]

let bench_bootstorm ?(sweep = default_sweep) () =
  let sweep = effective_sweep sweep in
  json_of_curves sweep (List.map (run_variant sweep) (effective_variants ()))
