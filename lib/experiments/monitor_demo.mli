(** Canned deterministic demonstration of the live operability plane:
    three client stations write to one gathering server while a
    mid-run disk slowdown window pushes a burst of ops over the
    long-op threshold. {!run} returns the full rendered transcript —
    nfsmon interval reports, journey phase summary, long-op records —
    byte-identical across runs (CI diffs it against a golden copy). *)

type config = {
  interval : Nfsg_sim.Time.t;
  threshold : Nfsg_sim.Time.t;
  slow_from : Nfsg_sim.Time.t;
  slow_until : Nfsg_sim.Time.t;
  slow_factor : float;
  seed : int;
}

val default : config
(** 200 ms interval, 60 ms threshold, an 8x disk slowdown over
    [400 ms, 700 ms). *)

val run : ?cfg:config -> unit -> string
