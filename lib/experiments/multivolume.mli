(** Multi-volume exports experiment: three volumes — two single
    spindles and a 3-drive stripe set, the paper-testbed disk
    complement — served by one machine under simultaneous LADDIS-style
    load spread round-robin over the exports.

    Two claims are measured. {e Independence}: gather batches form per
    volume (each [write_layer.vol<k>] batch-size histogram fills on its
    own, metadata-flush savings accrue per volume). {e Isolation}: an
    error window opened on volume 1's spindle mid-measurement leaves
    the WRITE latency of the other two volumes at its fault-free
    level — a flush failing on one export never blocks another's
    plane. *)

type config = {
  seed : int;
  procs : int;  (** load processes, round-robin over the 3 exports *)
  files_per_proc : int;
  file_size : int;  (** bytes per pre-created file *)
  offered : float;  (** aggregate offered load, ops/sec *)
  warmup : Nfsg_sim.Time.t;
  measure : Nfsg_sim.Time.t;
  nfsds : int;
  fault_prob : float;  (** per-transaction failure probability in the window *)
}

val default : config
val quick_cfg : config

type vol_stats = {
  export : string;
  fsid : int;
  writes : int;  (** WRITE RPCs executed on this volume *)
  batches : int;  (** gather batches flushed *)
  mean_batch : float;
  flushes_saved : int;
  write_mean_us : float;  (** client-side WRITE latency *)
  write_p50_us : float;
  write_p99_us : float;
}

type phase = { point : Nfsg_workload.Laddis.point; vols : vol_stats list }

type result = {
  clean : phase;
  faulted : phase;  (** same seed, error window on volume 1's spindle *)
  errors_injected : int;
}

val run : ?cfg:config -> unit -> result
(** Two same-seed worlds: fault-free, then with the error window armed
    inside the measurement interval. Deterministic in [cfg]. *)

val report : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** Human-readable table over {!run} (the [multivolume] experiment of
    the CLI and bench). *)

val bench_multivolume : unit -> Nfsg_stats.Json.t
(** The committed [BENCH_multivolume.json] artifact: per-volume gather
    and latency rows plus the fault-isolation summary, from one fixed
    modest workload (no quick/full split, so CI reproduces the bytes
    anywhere). Volume generations never appear in the document. *)
