open Nfsg_sim
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Disk = Nfsg_disk.Disk
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Client = Nfsg_nfs.Client
module Rpc_client = Nfsg_rpc.Rpc_client
module Laddis = Nfsg_workload.Laddis
module Metrics = Nfsg_stats.Metrics
module Histogram = Nfsg_stats.Histogram
module Names = Nfsg_stats.Names
module Json = Nfsg_stats.Json
module Report = Nfsg_stats.Report

(* The scheduler comparison: the same mixed multi-client LADDIS-style
   load over one spindle, once per I/O scheduling policy. [`Fifo] with
   merging off is the reference port's driver; [`Elevator] adds the
   C-LOOK sweep plus adjacent-request coalescing; [`Deadline] keeps
   both and bounds queue wait by promoting starved requests. *)

type config = {
  seed : int;
  procs : int;
  files_per_proc : int;
  file_size : int;
  offered : float;
  warmup : Time.t;
  measure : Time.t;
  nfsds : int;
}

let default =
  {
    seed = 1994;
    procs = 6;
    files_per_proc = 4;
    file_size = 64 * 1024;
    offered = 160.0;
    warmup = Time.sec 1;
    measure = Time.sec 5;
    nfsds = 12;
  }

type variant = {
  label : string;
  scheduler : Disk.scheduler;
  merge : bool;
  deadline : Time.t;  (* promotion threshold; only [`Deadline] reads it *)
}

(* The promotion threshold sits above the typical queue wait of the
   saturating bench load: the point of Deadline is to promote only the
   starved tail, not to degrade the sweep into arrival order. *)
let variants =
  [
    { label = "fifo"; scheduler = Disk.Fifo; merge = false; deadline = Time.ms 300 };
    { label = "elevator"; scheduler = Disk.Elevator; merge = true; deadline = Time.ms 300 };
    { label = "deadline+merge"; scheduler = Disk.Deadline; merge = true; deadline = Time.ms 300 };
  ]

type row = {
  variant : variant;
  point : Laddis.point;
  write_mean_us : float;
  write_p50_us : float;
  write_p99_us : float;
  transactions : int;
  merged : int;
  promotions : int;
  barriers : int;
  queue_wait_p99_us : float;
}

let disk_name = "rz26"

(* One world per variant: segment, one scheduled spindle, a gathering
   server, [procs] independent client stacks under LADDIS load. Same
   seed across variants — the offered traffic is identical; only the
   order the spindle services it in differs. *)
type world = {
  eng : Engine.t;
  metrics : Metrics.t;  (** server-side registry *)
  cm : Metrics.t;  (** client-side registry *)
  disk : Nfsg_disk.Device.t;
  server : Server.t;
}

let build_world ?long_op_threshold cfg v =
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let segment =
    Segment.create eng ~seed:(cfg.seed lxor 0x3a7) ~metrics (Calib.segment_params Calib.Fddi)
  in
  let cpu_hook = ref (fun (_ : Time.t) -> ()) in
  let costs = Calib.cpu_costs Calib.Fddi in
  let driver_cost = costs.Nfsg_core.Cpu_model.driver_transaction in
  let disk =
    Disk.create eng ~name:disk_name ~metrics ~scheduler:v.scheduler ~merge:v.merge
      ~deadline:v.deadline
      ~on_transaction:(fun ~bytes:_ -> !cpu_hook driver_cost)
      Calib.disk_geometry
  in
  let wl_config =
    { Write_layer.default_gathering with Write_layer.procrastinate = Calib.procrastinate Calib.Fddi }
  in
  let config =
    {
      Server.default_config with
      Server.nfsds = cfg.nfsds;
      write_layer = wl_config;
      costs;
      long_op_threshold;
    }
  in
  let server = Server.make eng ~segment ~addr:"server" ~device:disk ~metrics config in
  (cpu_hook := fun d -> Resource.charge (Server.cpu server) d);
  let cm = Metrics.create () in
  let make_client i =
    let sock = Socket.create segment ~addr:(Printf.sprintf "client%d" i) () in
    let rpc = Rpc_client.create eng ~sock ~server:"server" ~metrics:cm () in
    Client.create eng ~rpc ~biods:4 ~metrics:cm ()
  in
  (segment, make_client, { eng; metrics; cm; disk; server })

let drive (segment, make_client, w) cfg =
  ignore (segment : Segment.t);
  let lcfg =
    {
      Laddis.default_config with
      Laddis.procs = cfg.procs;
      files_per_proc = cfg.files_per_proc;
      file_size = cfg.file_size;
      warmup = cfg.warmup;
      measure = cfg.measure;
      seed = cfg.seed;
    }
  in
  let out = ref None in
  Engine.spawn w.eng ~name:"driver" (fun () ->
      out :=
        Some
          (Laddis.run w.eng ~make_client ~root:(Server.root_fh w.server) ~offered:cfg.offered
             lcfg));
  Engine.run w.eng;
  match !out with Some p -> p | None -> failwith "Iosched.drive: load never finished"

let run_variant cfg v =
  let ((_, _, w) as world) = build_world cfg v in
  let point = drive world cfg in
  let ns = Names.Ns.disk disk_name in
  let counter name = Option.value ~default:0 (Metrics.find_counter w.metrics ~ns name) in
  let lat f =
    match Metrics.find_histogram w.cm ~ns:Names.Ns.nfs_client (Names.lat_us "WRITE") with
    | Some h -> f h
    | None -> 0.0
  in
  let stats = w.disk.Nfsg_disk.Device.spindle_stats () in
  {
    variant = v;
    point;
    write_mean_us = lat Histogram.mean;
    write_p50_us = lat Histogram.median;
    write_p99_us = lat Histogram.p99;
    transactions = stats.Nfsg_disk.Device.transactions;
    merged = counter Names.merged_requests;
    promotions = counter Names.deadline_promotions;
    barriers = counter Names.barriers;
    queue_wait_p99_us =
      (match Metrics.find_histogram w.metrics ~ns Names.queue_wait_us with
      | Some h -> Histogram.p99 h
      | None -> 0.0);
  }

let run ?(cfg = default) () = List.map (run_variant cfg) variants

let report ?quick:_ () =
  let rows = run () in
  let report =
    Report.create ~title:"I/O scheduling: one spindle under mixed LADDIS-style load"
      ~columns:(List.map (fun r -> r.variant.label) rows)
  in
  let row name f = Report.add_row report name (List.map f rows) in
  row "achieved ops/sec" (fun r -> r.point.Laddis.achieved);
  row "WRITE latency mean (us)" (fun r -> r.write_mean_us);
  row "WRITE latency p99 (us)" (fun r -> r.write_p99_us);
  row "disk transactions" (fun r -> float_of_int r.transactions);
  row "merged requests" (fun r -> float_of_int r.merged);
  row "deadline promotions" (fun r -> float_of_int r.promotions);
  row "queue wait p99 (us)" (fun r -> r.queue_wait_p99_us);
  report

(* {1 BENCH_iosched.json}

   The committed artifact CI regenerates and diffs. One fixed modest
   workload regardless of quick/full mode, so every environment
   produces the same bytes. *)

(* Saturating: the offered load is well past the spindle's service
   rate, so a queue builds and the policies actually diverge — with
   depth ~1 every scheduler is FIFO. *)
let bench_cfg =
  {
    seed = 7;
    procs = 12;
    files_per_proc = 2;
    file_size = 1024 * 1024;
    offered = 170.0;
    warmup = Time.ms 500;
    measure = Time.sec 3;
    nfsds = 12;
  }

let bench_iosched () =
  let rows = run ~cfg:bench_cfg () in
  let json_row r =
    Json.Obj
      [
        ("scheduler", Json.String r.variant.label);
        ("merge", Json.Bool r.variant.merge);
        ("achieved_ops_s", Json.Float r.point.Laddis.achieved);
        ("ops_completed", Json.Int r.point.Laddis.ops_completed);
        ( "write_latency",
          Json.Obj
            [
              ("mean_us", Json.Float r.write_mean_us);
              ("p50_us", Json.Float r.write_p50_us);
              ("p99_us", Json.Float r.write_p99_us);
            ] );
        ( "disk",
          Json.Obj
            [
              ("transactions", Json.Int r.transactions);
              ("merged_requests", Json.Int r.merged);
              ("deadline_promotions", Json.Int r.promotions);
              ("barriers", Json.Int r.barriers);
              ("queue_wait_p99_us", Json.Float r.queue_wait_p99_us);
            ] );
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "nfsgather-bench/1");
      ("bench", Json.String "iosched");
      ( "workload",
        Json.Obj
          [
            ("net", Json.String "fddi");
            ("procs", Json.Int bench_cfg.procs);
            ("files_per_proc", Json.Int bench_cfg.files_per_proc);
            ("file_bytes", Json.Int bench_cfg.file_size);
            ("offered_ops_s", Json.Float bench_cfg.offered);
            ("measure_ms", Json.Float (Time.to_ms_f bench_cfg.measure));
            ("nfsds", Json.Int bench_cfg.nfsds);
            ("seed", Json.Int bench_cfg.seed);
          ] );
      ("rows", Json.List (List.map json_row rows));
    ]

(* {1 The long-op probe}

   Run one variant of the same saturating bench world with journey
   tracing armed and report the evidence side by side: what the client
   measured, what the server's journey plane measured, and what the
   RPC layer was doing in between. This is the nfsmon/long-op
   walkthrough of EXPERIMENTS.md, as a reproducible command
   (nfsgather iosched-probe). *)

let investigate ?(cfg = bench_cfg) ?(threshold = Time.ms 300) label =
  let v =
    match List.find_opt (fun v -> v.label = label) variants with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Iosched.investigate: unknown variant %S" label)
  in
  let ((_, _, w) as world) = build_world ~long_op_threshold:threshold cfg v in
  let point = drive world cfg in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "iosched probe: variant=%s threshold=%.0fms achieved=%.1f ops/s" v.label
    (Time.to_ms_f threshold) point.Laddis.achieved;
  let client_h f =
    match Metrics.find_histogram w.cm ~ns:Names.Ns.nfs_client (Names.lat_us "WRITE") with
    | Some h -> f h
    | None -> 0.0
  in
  line "client WRITE latency (us): mean=%.0f p50=%.0f p99=%.0f" (client_h Histogram.mean)
    (client_h Histogram.median) (client_h Histogram.p99);
  let jh name f =
    match Metrics.find_histogram w.metrics ~ns:Names.Ns.journey name with
    | Some h -> f h
    | None -> 0.0
  in
  line "server journey total (us): mean=%.0f p50=%.0f p99=%.0f" (jh Names.total_us Histogram.mean)
    (jh Names.total_us Histogram.median)
    (jh Names.total_us Histogram.p99);
  line "server phase p99 (us): sock_wait=%.0f dupcache=%.0f prep=%.0f gather_wait=%.0f disk=%.0f reply=%.0f"
    (jh (Names.phase_us Names.phase_sock_wait) Histogram.p99)
    (jh (Names.phase_us Names.phase_dupcache) Histogram.p99)
    (jh (Names.phase_us Names.phase_prep) Histogram.p99)
    (jh (Names.phase_us Names.phase_gather_wait) Histogram.p99)
    (jh (Names.phase_us Names.phase_disk) Histogram.p99)
    (jh (Names.phase_us Names.phase_reply) Histogram.p99);
  let cc name = Option.value ~default:0 (Metrics.find_counter w.cm ~ns:Names.Ns.rpc_client name) in
  line "client rpc: timeouts=%d retransmissions=%d stale_replies=%d" (cc Names.timeouts)
    (cc Names.retransmissions) (cc Names.stale_replies);
  let sc name =
    Option.value ~default:0 (Metrics.find_counter w.metrics ~ns:Names.Ns.rpc_svc name)
  in
  line "server dupcache: duplicate_drops=%d duplicate_replays=%d" (sc Names.duplicate_drops)
    (sc Names.duplicate_replays);
  let plane = Server.journeys w.server in
  line "long-ops over threshold: %d" (Nfsg_stats.Journey.long_op_count plane);
  Buffer.add_string buf (Nfsg_stats.Journey.render_long_ops plane);
  Buffer.contents buf
