(** Capacity-curve sweep: walk an offered-load ladder per server
    configuration until the achieved rate falls below the offered rate
    (the saturation knee), LADDIS style. Each configuration's curve
    yields a capacity rating — the paper's Figure 2/3 comparison run
    as one deterministic benchmark over the gathering / NVRAM /
    scheduler / stripe-width grid. *)

type sweep = {
  seed : int;
  files_per_proc : int;
  file_size : int;  (** bytes per pre-created file *)
  warmup : Nfsg_sim.Time.t;
  measure : Nfsg_sim.Time.t;
  nfsds : int;
  offered_start : float;  (** first rung, ops/s *)
  offered_step : float;  (** rung spacing, ops/s *)
  max_points : int;  (** ladder cap if the knee never appears *)
  procs_max : int;  (** load-generator pool ceiling *)
  knee_frac : float;  (** saturated when achieved < frac * offered *)
}

val default_sweep : sweep

val procs_for : procs_max:int -> float -> int
(** Load stations driving a given offered rate: one per ~10 ops/s,
    clamped to [4, procs_max]. *)

type variant = { label : string; spec : Rig.spec }

val grid : variant list
(** The curated configuration grid: baseline, gather, gather+deadline,
    nvram, gather+stripe3. *)

val detect_knee : ?frac:float -> (float * float) list -> int option
(** [detect_knee points] is the index of the first (offered, achieved)
    rung where achieved < frac * offered, in ladder order; [None] when
    the ladder never saturates. Pure — unit-testable on synthetic
    curves. [frac] defaults to [default_sweep.knee_frac]. *)

val capacity_rating : ?frac:float -> (float * float) list -> float
(** Best achieved rate among rungs the server kept up with
    (achieved >= frac * offered); falls back to the best achieved
    anywhere when every rung sagged, and 0 for an empty ladder. *)

(** {1 Global overrides} (Reset-registered, installed by nfsgather) *)

val set_sweep_points_override : int option -> unit
(** Cap (or restore) the ladder length of every subsequent sweep — the
    nfsgather [--sweep-points] flag. *)

val set_procs_max_override : int option -> unit
(** Cap (or restore) the load-generator pool of every subsequent sweep
    — the nfsgather [--procs-max] flag. *)

val set_grid_override : string list option -> unit
(** Restrict every subsequent sweep to the named grid configurations —
    the nfsgather [--curve-configs] flag. Raises [Invalid_argument] on
    an unknown label. *)

(** {1 Running} *)

type curve = {
  label : string;
  spec : Rig.spec;
  points : Nfsg_workload.Laddis.point list;  (** ladder order *)
  knee : int option;  (** index of the first sagging rung *)
  capacity : float;  (** ops/s rating per {!capacity_rating} *)
}

val run : ?sweep:sweep -> unit -> curve list
val report : ?sweep:sweep -> unit -> Nfsg_stats.Report.t

val bench_laddis_curve : ?sweep:sweep -> unit -> Nfsg_stats.Json.t
(** The committed BENCH_laddis_curve.json artifact: one fixed modest
    sweep (same bytes regardless of quick/full), honouring the
    overrides above. *)
