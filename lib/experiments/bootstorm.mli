(** Boot-storm capacity bench: ladder a fleet of diskless clients all
    booting from one shared read-only export, with server read-ahead
    off vs on. Offered load for a fleet of [k] is [k] times the
    one-client rate (perfect scaling), so the achieved curve knees
    exactly like the LADDIS sweep — and the knee is the export's
    capacity in {e clients}. *)

type sweep = {
  seed : int;
  nfsds : int;
  cache_blocks : int;
      (** server buffer-cache bound — deliberately smaller than the
          fleet's hot set so the cold storm actually misses *)
  clients_max : int;  (** ladder cap *)
  stagger : Nfsg_sim.Time.t;  (** power-on spacing between fleet members *)
  knee_frac : float;  (** saturated when achieved < frac * offered *)
}

val default_sweep : sweep

val ladder : int -> int list
(** Fleet sizes walked for a cap: 1, 2, 4, ... cap (pure, testable). *)

type variant = { label : string; readahead : Nfsg_ufs.Buffer_cache.readahead option }

val variants : variant list
(** The configuration pair: ["no-readahead"] and ["readahead"]. *)

(** {1 Global overrides} (Reset-registered, installed by nfsgather) *)

val set_clients_max_override : int option -> unit
(** Cap (or restore) the fleet ladder of every subsequent sweep — the
    nfsgather [--clients-max] flag. *)

val set_readahead_override : bool option -> unit
(** Restrict every subsequent sweep to one side of the pair
    ([Some true] = read-ahead on only, [Some false] = off only) — the
    nfsgather [--readahead] flag. [None] restores both. *)

(** {1 Running} *)

type point = {
  clients : int;
  offered : float;  (** clients x the one-client rate, ops/s *)
  achieved : float;  (** ops/s over the storm window *)
  avg_latency_ms : float;  (** per-RPC *)
  ops_completed : int;
  mean_boot_ms : float;  (** per-client MOUNT-to-prompt time *)
  cache_hit_rate : float;  (** server cache, storm window only *)
  readahead_blocks : int;
  readahead_hits : int;
  readahead_wasted : int;
}

type curve = {
  label : string;
  readahead_on : bool;
  points : point list;  (** ladder order *)
  knee : int option;  (** index of the first sagging rung *)
  capacity_ops : float;  (** ops/s, per {!Laddis_curve.capacity_rating} *)
  capacity_clients : int;  (** biggest fleet the export kept up with *)
}

val run : ?sweep:sweep -> unit -> curve list
val report : ?sweep:sweep -> unit -> Nfsg_stats.Report.t

val bench_bootstorm : ?sweep:sweep -> unit -> Nfsg_stats.Json.t
(** The committed BENCH_bootstorm.json artifact: one fixed modest
    ladder (same bytes regardless of quick/full), honouring the
    overrides above. *)
