open Nfsg_sim
module Disk = Nfsg_disk.Disk
module Laddis = Nfsg_workload.Laddis
module Json = Nfsg_stats.Json
module Report = Nfsg_stats.Report

(* The capacity-curve sweep: walk an offered-load ladder per server
   configuration until the server visibly saturates, LADDIS style.
   Each rung is a fresh world (Rig.make) driven at one offered rate;
   the per-config curve of (offered, achieved, latency) points is the
   paper's Figure 2/3 shape, and the knee of each curve is that
   configuration's capacity rating. *)

type sweep = {
  seed : int;
  files_per_proc : int;
  file_size : int;  (** bytes per pre-created file *)
  warmup : Time.t;
  measure : Time.t;
  nfsds : int;
  offered_start : float;  (** first rung, ops/s *)
  offered_step : float;  (** rung spacing, ops/s *)
  max_points : int;  (** ladder cap if the knee never appears *)
  procs_max : int;  (** load-generator pool ceiling *)
  knee_frac : float;  (** saturated when achieved < frac * offered *)
}

let default_sweep =
  {
    seed = 1994;
    files_per_proc = 2;
    file_size = 128 * 1024;
    warmup = Time.ms 300;
    measure = Time.ms 1500;
    nfsds = 16;
    offered_start = 60.0;
    offered_step = 60.0;
    max_points = 12;
    procs_max = 64;
    knee_frac = 0.9;
  }

(* More load stations as the offered rate climbs, the way a LADDIS
   testbed adds client hosts: one process per ~10 ops/s, clamped so a
   station never has to offer an unrealistic individual rate and the
   pool never exceeds the configured ceiling. *)
let procs_for ~procs_max offered =
  let wanted = int_of_float (offered /. 10.0) in
  max 4 (min procs_max wanted)

(* {1 The configuration grid}

   A curated cut through gathering x NVRAM x scheduler x stripe width:
   the paper's baseline and Prestoserve configurations, plus the
   gathered server alone and with the later storage-stack work
   (deadline scheduling, 3-drive stripe set). *)

type variant = { label : string; spec : Rig.spec }

let grid =
  let base =
    {
      Rig.default_spec with
      Rig.gathering = false;
      accel = false;
      spindles = 1;
      disk_scheduler = Disk.Fifo;
    }
  in
  [
    { label = "baseline"; spec = base };
    (* Scheduler alone, no gathering: with every WRITE sync the disk
       queue is where the load piles up, so this is where ordering
       policy actually moves the knee. Under a gathering server the
       queue rarely gets deep enough for the policy to matter. *)
    { label = "deadline"; spec = { base with Rig.disk_scheduler = Disk.Deadline } };
    { label = "gather"; spec = { base with Rig.gathering = true } };
    { label = "nvram"; spec = { base with Rig.accel = true } };
    {
      label = "gather+stripe3";
      spec =
        { base with Rig.gathering = true; disk_scheduler = Disk.Deadline; spindles = 3 };
    };
  ]

(* {1 Knee detection and capacity rating}

   Pure functions over the (offered, achieved) ladder so the unit
   tests can exercise them on synthetic curves. *)

let detect_knee ?(frac = default_sweep.knee_frac) points =
  let rec find i = function
    | [] -> None
    | (offered, achieved) :: rest ->
        if achieved < frac *. offered then Some i else find (i + 1) rest
  in
  find 0 points

(* SPEC-style rating: the best achieved throughput among rungs the
   server still kept up with. A curve that sags from its very first
   rung is rated at whatever it actually delivered. *)
let capacity_rating ?(frac = default_sweep.knee_frac) points =
  let achieved_of = List.map snd points in
  let best l = List.fold_left max 0.0 l in
  match List.filter (fun (o, a) -> a >= frac *. o) points with
  | [] -> best achieved_of
  | ok -> best (List.map snd ok)

(* {1 Global overrides}

   Same process-wide shape as Rig's scheduler/raid overrides: the
   nfsgather flags install them before running the target and clear
   them after; Reset puts them back for in-process double runs. *)

let sweep_points_override : int option ref = ref None

let () =
  Reset.register ~name:"laddis_curve.sweep_points" (fun () -> sweep_points_override := None)

let set_sweep_points_override n = sweep_points_override := n

let procs_max_override : int option ref = ref None
let () = Reset.register ~name:"laddis_curve.procs_max" (fun () -> procs_max_override := None)
let set_procs_max_override n = procs_max_override := n

let grid_override : string list option ref = ref None
let () = Reset.register ~name:"laddis_curve.grid" (fun () -> grid_override := None)

let set_grid_override labels =
  (match labels with
  | Some ls ->
      List.iter
        (fun l ->
          if not (List.exists (fun v -> v.label = l) grid) then
            invalid_arg (Printf.sprintf "Laddis_curve: unknown configuration %S" l))
        ls
  | None -> ());
  grid_override := labels

let effective_sweep sweep =
  let sweep =
    match !sweep_points_override with Some n -> { sweep with max_points = n } | None -> sweep
  in
  match !procs_max_override with Some n -> { sweep with procs_max = n } | None -> sweep

let effective_grid () =
  match !grid_override with
  | None -> grid
  | Some labels -> List.filter (fun v -> List.mem v.label labels) grid

(* {1 The sweep} *)

type curve = {
  label : string;
  spec : Rig.spec;
  points : Laddis.point list;  (** ladder order *)
  knee : int option;  (** index of the first sagging rung *)
  capacity : float;  (** ops/s rating per {!capacity_rating} *)
}

let run_point sweep (v : variant) ~offered =
  let rig = Rig.make { v.spec with Rig.nfsds = sweep.nfsds } in
  let lcfg =
    {
      Laddis.default_config with
      Laddis.procs = procs_for ~procs_max:sweep.procs_max offered;
      files_per_proc = sweep.files_per_proc;
      file_size = sweep.file_size;
      warmup = sweep.warmup;
      measure = sweep.measure;
      seed = sweep.seed;
    }
  in
  Rig.run rig (fun () ->
      Laddis.run rig.Rig.eng
        ~make_client:(fun i -> Rig.new_client rig (Printf.sprintf "client%d" i))
        ~root:(Rig.root rig) ~offered lcfg)

(* Walk the ladder until the knee shows (keeping the sagging rung as
   evidence) or the cap runs out. Every rung is a fresh world at a
   higher offered rate — the same traffic-shape-per-seed as the other
   rig experiments, just more stations. *)
let run_variant sweep (v : variant) =
  let rec walk acc i =
    if i >= sweep.max_points then List.rev acc
    else begin
      let offered = sweep.offered_start +. (sweep.offered_step *. float_of_int i) in
      let p = run_point sweep v ~offered in
      let acc = p :: acc in
      if p.Laddis.achieved < sweep.knee_frac *. offered then List.rev acc
      else walk acc (i + 1)
    end
  in
  let points = walk [] 0 in
  let oa = List.map (fun p -> (p.Laddis.offered, p.Laddis.achieved)) points in
  {
    label = v.label;
    spec = v.spec;
    points;
    knee = detect_knee ~frac:sweep.knee_frac oa;
    capacity = capacity_rating ~frac:sweep.knee_frac oa;
  }

let run ?(sweep = default_sweep) () =
  let sweep = effective_sweep sweep in
  List.map (run_variant sweep) (effective_grid ())

(* {1 Rendering} *)

let report ?(sweep = default_sweep) () =
  let curves = run ~sweep () in
  let report =
    Report.create ~title:"Capacity curves: offered-load sweep per configuration"
      ~columns:(List.map (fun c -> c.label) curves)
  in
  let row name f = Report.add_row report name (List.map f curves) in
  row "capacity (ops/s)" (fun c -> c.capacity);
  row "knee offered (ops/s)" (fun c ->
      match c.knee with
      | Some i -> (List.nth c.points i).Laddis.offered
      | None -> nan);
  row "rungs measured" (fun c -> float_of_int (List.length c.points));
  row "top-rung achieved (ops/s)" (fun c ->
      match List.rev c.points with p :: _ -> p.Laddis.achieved | [] -> nan);
  row "top-rung latency (ms)" (fun c ->
      match List.rev c.points with p :: _ -> p.Laddis.avg_latency_ms | [] -> nan);
  report

(* {1 BENCH_laddis_curve.json}

   The committed artifact CI regenerates and byte-diffs. One fixed
   modest sweep regardless of quick/full mode, so every environment
   produces the same bytes; the overrides above deliberately apply
   here too (the determinism test runs a tiny sweep through them). *)

let scheduler_name = function
  | Disk.Fifo -> "fifo"
  | Disk.Elevator -> "elevator"
  | Disk.Deadline -> "deadline"

let json_of_curves sweep curves =
  let json_point p =
    Json.Obj
      [
        ("offered_ops_s", Json.Float p.Laddis.offered);
        ("achieved_ops_s", Json.Float p.Laddis.achieved);
        ("avg_latency_ms", Json.Float p.Laddis.avg_latency_ms);
        ("ops_completed", Json.Int p.Laddis.ops_completed);
      ]
  in
  let json_curve c =
    Json.Obj
      [
        ("config", Json.String c.label);
        ("gathering", Json.Bool c.spec.Rig.gathering);
        ("nvram", Json.Bool c.spec.Rig.accel);
        ("scheduler", Json.String (scheduler_name c.spec.Rig.disk_scheduler));
        ("spindles", Json.Int c.spec.Rig.spindles);
        ("points", Json.List (List.map json_point c.points));
        ( "knee",
          match c.knee with
          | None -> Json.Null
          | Some i ->
              let p = List.nth c.points i in
              Json.Obj
                [
                  ("index", Json.Int i);
                  ("offered_ops_s", Json.Float p.Laddis.offered);
                  ("achieved_ops_s", Json.Float p.Laddis.achieved);
                ] );
        ("capacity_ops_s", Json.Float c.capacity);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "nfsgather-bench/1");
      ("bench", Json.String "laddis_curve");
      ( "workload",
        Json.Obj
          [
            ("net", Json.String "fddi");
            ("files_per_proc", Json.Int sweep.files_per_proc);
            ("file_bytes", Json.Int sweep.file_size);
            ("measure_ms", Json.Float (Time.to_ms_f sweep.measure));
            ("nfsds", Json.Int sweep.nfsds);
            ("seed", Json.Int sweep.seed);
            ("offered_start", Json.Float sweep.offered_start);
            ("offered_step", Json.Float sweep.offered_step);
            ("max_points", Json.Int sweep.max_points);
            ("procs_max", Json.Int sweep.procs_max);
            ("knee_frac", Json.Float sweep.knee_frac);
          ] );
      ("configs", Json.List (List.map json_curve curves));
    ]

let bench_laddis_curve ?(sweep = default_sweep) () =
  let sweep = effective_sweep sweep in
  json_of_curves sweep (List.map (run_variant sweep) (effective_grid ()))
