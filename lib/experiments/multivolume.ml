open Nfsg_sim
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Disk = Nfsg_disk.Disk
module Stripe = Nfsg_disk.Stripe
module Device = Nfsg_disk.Device
module Fault_disk = Nfsg_fault.Fault_disk
module Server = Nfsg_core.Server
module Volume = Nfsg_core.Volume
module Write_layer = Nfsg_core.Write_layer
module Client = Nfsg_nfs.Client
module Rpc_client = Nfsg_rpc.Rpc_client
module Laddis = Nfsg_workload.Laddis
module Metrics = Nfsg_stats.Metrics
module Histogram = Nfsg_stats.Histogram
module Names = Nfsg_stats.Names
module Json = Nfsg_stats.Json
module Report = Nfsg_stats.Report

(* Three exports served by one machine, the paper-testbed shape:
   two single spindles and a 3-drive stripe set. Volume 0's spindle is
   fault-wrapped so an error window can be opened on it alone. *)
let nvols = 3

type config = {
  seed : int;
  procs : int;
  files_per_proc : int;
  file_size : int;
  offered : float;
  warmup : Time.t;
  measure : Time.t;
  nfsds : int;
  fault_prob : float;
}

let default =
  {
    seed = 1994;
    procs = 6;
    files_per_proc = 4;
    file_size = 64 * 1024;
    offered = 160.0;
    warmup = Time.sec 1;
    measure = Time.sec 5;
    nfsds = 12;
    fault_prob = 0.4;
  }

type vol_stats = {
  export : string;
  fsid : int;
  writes : int;
  batches : int;
  mean_batch : float;
  flushes_saved : int;
  write_mean_us : float;
  write_p50_us : float;
  write_p99_us : float;
}

type phase = { point : Laddis.point; vols : vol_stats list }
type result = { clean : phase; faulted : phase; errors_injected : int }

(* One world: segment, three device stacks, a 3-export server, and a
   LADDIS-style load spread round-robin over the exports. [fault]
   (absolute sim-time window) arms an error window on volume 0's
   spindle before the load starts. Returns the phase stats plus the
   simulation end time (how the caller learns where the measurement
   window sits, so the faulted twin can be armed inside it). *)
let run_world ?fault cfg =
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let segment =
    Segment.create eng ~seed:(cfg.seed lxor 0x3a7) ~metrics (Calib.segment_params Calib.Fddi)
  in
  let cpu_hook = ref (fun (_ : Time.t) -> ()) in
  let costs = Calib.cpu_costs Calib.Fddi in
  let driver_cost = costs.Nfsg_core.Cpu_model.driver_transaction in
  let mk_disk name =
    Disk.create eng ~name ~metrics
      ~on_transaction:(fun ~bytes:_ -> !cpu_hook driver_cost)
      Calib.disk_geometry
  in
  let injector, dev0 = Fault_disk.wrap eng ~seed:(cfg.seed lxor 0xfa01) (mk_disk "vol1-rz26") in
  let dev1 = mk_disk "vol2-rz26" in
  let dev2 = Stripe.create eng ~chunk:32768 (Array.init 3 (fun i -> mk_disk (Printf.sprintf "vol3-rz26-%d" i))) in
  let wl_config =
    { Write_layer.default_gathering with Write_layer.procrastinate = Calib.procrastinate Calib.Fddi }
  in
  let config =
    { Server.default_config with Server.nfsds = cfg.nfsds; write_layer = wl_config; costs }
  in
  let server =
    Server.make_exports eng ~segment ~addr:"server" ~metrics config
      [ Volume.spec "/export0" dev0; Volume.spec "/export1" dev1; Volume.spec "/export2" dev2 ]
  in
  (cpu_hook := fun d -> Resource.charge (Server.cpu server) d);
  (* Per-volume client registries: load process [i] works under export
     [i mod 3] (Laddis round-robin), and its client instruments land in
     that volume's registry — the only way WRITE latency can be read
     per volume while the server is shared. *)
  let assignment = Array.of_list (Laddis.export_assignment ~procs:cfg.procs ~exports:nvols) in
  let cms = Array.init nvols (fun _ -> Metrics.create ()) in
  let make_client i =
    let m = cms.(assignment.(i)) in
    let sock = Socket.create segment ~addr:(Printf.sprintf "client%d" i) () in
    let rpc = Rpc_client.create eng ~sock ~server:"server" ~metrics:m () in
    Client.create eng ~rpc ~biods:4 ~metrics:m ()
  in
  let roots = List.map snd (Server.exports server) in
  let lcfg =
    {
      Laddis.default_config with
      Laddis.procs = cfg.procs;
      files_per_proc = cfg.files_per_proc;
      file_size = cfg.file_size;
      warmup = cfg.warmup;
      measure = cfg.measure;
      seed = cfg.seed;
    }
  in
  let out = ref None in
  Engine.spawn eng ~name:"driver" (fun () ->
      (match fault with
      | Some (from_, until) -> Fault_disk.error_window injector ~from_ ~until ~prob:cfg.fault_prob
      | None -> ());
      let point =
        Laddis.run eng ~make_client ~root:(List.hd roots) ~exports:roots ~offered:cfg.offered lcfg
      in
      out := Some (point, Engine.now eng));
  Engine.run eng;
  let point, end_time =
    match !out with Some v -> v | None -> failwith "Multivolume.run_world: load never finished"
  in
  let vol_stats k =
    let fsid = k + 1 in
    let wl_ns = Names.Ns.write_layer_vol fsid in
    let sv_ns = Names.Ns.server_vol fsid in
    let batches, mean_batch =
      match Metrics.find_histogram metrics ~ns:wl_ns Names.batch_size with
      | Some h -> (Histogram.count h, Histogram.mean h)
      | None -> (0, 0.0)
    in
    let lat f =
      match Metrics.find_histogram cms.(k) ~ns:Names.Ns.nfs_client (Names.lat_us "WRITE") with
      | Some h -> f h
      | None -> 0.0
    in
    {
      export = Printf.sprintf "/export%d" k;
      fsid;
      writes = Option.value ~default:0 (Metrics.find_counter metrics ~ns:sv_ns (Names.ops "WRITE"));
      batches;
      mean_batch;
      flushes_saved =
        Option.value ~default:0 (Metrics.find_counter metrics ~ns:wl_ns Names.metadata_flushes_saved);
      write_mean_us = lat Histogram.mean;
      write_p50_us = lat Histogram.median;
      write_p99_us = lat Histogram.p99;
    }
  in
  ({ point; vols = List.init nvols vol_stats }, end_time, Fault_disk.errors_injected injector)

(* Clean run first; its end time bounds setup + warmup + measure, which
   places the faulted twin's error window strictly inside the twin's
   measurement interval (same seed => identical timeline up to the
   first injected fault). *)
let run ?(cfg = default) () =
  let clean, end_time, _ = run_world cfg in
  let m_start = end_time - cfg.measure in
  let from_ = m_start + (cfg.measure / 4) and until = m_start + (3 * cfg.measure / 4) in
  let faulted, _, errors_injected = run_world ~fault:(from_, until) cfg in
  { clean; faulted; errors_injected }

let quick_cfg =
  {
    default with
    procs = 3;
    files_per_proc = 2;
    file_size = 32 * 1024;
    offered = 100.0;
    warmup = Time.ms 500;
    measure = Time.sec 2;
  }

let devices = [ "1 spindle (faultable)"; "1 spindle"; "3-drive stripe" ]

let report ?(quick = false) () =
  let r = run ~cfg:(if quick then quick_cfg else default) () in
  let report =
    Report.create ~title:"Multi-volume exports: 3 volumes under simultaneous LADDIS-style load"
      ~columns:(List.map2 (fun v d -> Printf.sprintf "%s (%s)" v.export d) r.clean.vols devices)
  in
  let row name f = Report.add_row report name (List.map f r.clean.vols) in
  row "WRITE RPCs" (fun v -> float_of_int v.writes);
  row "gather batches" (fun v -> float_of_int v.batches);
  row "mean batch size" (fun v -> v.mean_batch);
  row "metadata flushes saved" (fun v -> float_of_int v.flushes_saved);
  row "WRITE latency mean (us)" (fun v -> v.write_mean_us);
  row "WRITE latency p99 (us)" (fun v -> v.write_p99_us);
  Report.add_row report
    (Printf.sprintf "... with vol1 error window (%d faults)" r.errors_injected)
    (List.map (fun v -> v.write_mean_us) r.faulted.vols);
  report

(* {1 BENCH_multivolume.json}

   The committed artifact CI regenerates and diffs. One fixed modest
   workload regardless of quick/full mode, so every environment
   produces the same bytes. Volume generations (process-global counter)
   never appear here. *)

let bench_cfg =
  {
    seed = 7;
    procs = 6;
    files_per_proc = 2;
    file_size = 32 * 1024;
    offered = 120.0;
    warmup = Time.ms 500;
    measure = Time.sec 3;
    nfsds = 12;
    fault_prob = 0.4;
  }

let bench_multivolume () =
  let r = run ~cfg:bench_cfg () in
  let vol_row device v =
    Json.Obj
      [
        ("export", Json.String v.export);
        ("fsid", Json.Int v.fsid);
        ("device", Json.String device);
        ("writes", Json.Int v.writes);
        ( "gather",
          Json.Obj
            [
              ("batches", Json.Int v.batches);
              ("mean_batch", Json.Float v.mean_batch);
              ("metadata_flushes_saved", Json.Int v.flushes_saved);
            ] );
        ( "write_latency",
          Json.Obj
            [
              ("mean_us", Json.Float v.write_mean_us);
              ("p50_us", Json.Float v.write_p50_us);
              ("p99_us", Json.Float v.write_p99_us);
            ] );
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "nfsgather-bench/1");
      ("bench", Json.String "multivolume");
      ( "workload",
        Json.Obj
          [
            ("net", Json.String "fddi");
            ("volumes", Json.Int nvols);
            ("procs", Json.Int bench_cfg.procs);
            ("files_per_proc", Json.Int bench_cfg.files_per_proc);
            ("file_bytes", Json.Int bench_cfg.file_size);
            ("offered_ops_s", Json.Float bench_cfg.offered);
            ("measure_ms", Json.Float (Time.to_ms_f bench_cfg.measure));
            ("nfsds", Json.Int bench_cfg.nfsds);
            ("seed", Json.Int bench_cfg.seed);
          ] );
      ( "aggregate",
        Json.Obj
          [
            ("achieved_ops_s", Json.Float r.clean.point.Laddis.achieved);
            ("ops_completed", Json.Int r.clean.point.Laddis.ops_completed);
          ] );
      ("rows", Json.List (List.map2 vol_row [ "rz26"; "rz26"; "stripe3" ] r.clean.vols));
      ( "fault",
        Json.Obj
          [
            ("volume", Json.String "/export0");
            ("errors_injected", Json.Int r.errors_injected);
            ( "write_mean_us",
              Json.List (List.map (fun v -> Json.Float v.write_mean_us) r.faulted.vols) );
          ] );
    ]
