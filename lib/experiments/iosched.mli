(** The I/O-scheduler comparison bench: the same mixed multi-client
    LADDIS-style load over one spindle, once per scheduling policy —
    [`Fifo] with merging off (the reference port's driver), [`Elevator]
    with coalescing, and [`Deadline] with coalescing and starvation
    control. Everything derives from the config seed, so equal configs
    give equal bytes. *)

type config = {
  seed : int;
  procs : int;  (** load-generating client processes *)
  files_per_proc : int;
  file_size : int;  (** bytes per pre-created file *)
  offered : float;  (** aggregate offered ops/sec *)
  warmup : Nfsg_sim.Time.t;
  measure : Nfsg_sim.Time.t;
  nfsds : int;
}

val default : config

type variant = {
  label : string;
  scheduler : Nfsg_disk.Disk.scheduler;
  merge : bool;
  deadline : Nfsg_sim.Time.t;
      (** promotion threshold; only the [`Deadline] row reads it *)
}

val variants : variant list
(** The three compared policies, bench-row order: fifo (merge off),
    elevator, deadline+merge. *)

type row = {
  variant : variant;
  point : Nfsg_workload.Laddis.point;
  write_mean_us : float;
  write_p50_us : float;
  write_p99_us : float;
  transactions : int;  (** physical disk transactions (post-merge) *)
  merged : int;  (** requests coalesced away *)
  promotions : int;  (** deadline promotions of starved requests *)
  barriers : int;
  queue_wait_p99_us : float;
}

val run : ?cfg:config -> unit -> row list
(** One world per variant, same seed: only the spindle's service order
    differs between rows. *)

val report : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** Text table over {!run} with the default config ([quick] accepted
    for harness uniformity; the workload is fixed either way). *)

val bench_iosched : unit -> Nfsg_stats.Json.t
(** The committed BENCH_iosched.json artifact: fixed modest workload,
    byte-deterministic. CI regenerates it and byte-diffs. *)

val bench_cfg : config
(** The saturating workload behind {!bench_iosched} (and the default
    for {!investigate}). *)

val investigate : ?cfg:config -> ?threshold:Nfsg_sim.Time.t -> string -> string
(** [investigate label] reruns the bench world of the named variant
    with journey tracing armed at [threshold] (default 300 ms) and
    renders the evidence side by side: client-visible WRITE latency,
    the server's journey total and per-phase p99s, RPC retransmission
    counters, duplicate-cache activity, and every retained long-op
    record. The reproducible form of the EXPERIMENTS.md tail
    investigation ([nfsgather iosched-probe]). Raises
    [Invalid_argument] for an unknown variant label. *)
