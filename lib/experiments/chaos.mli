(** The chaos rig: deterministic fault plans composed over a live
    write workload, with the paper's crash-consistency promises checked
    as machine invariants.

    One {!run} builds a complete simulated installation (server over a
    fault-wrapped disk, optionally NVRAM-accelerated; several writer
    clients; one metadata mutator), then walks [cycles] fault cycles.
    Each cycle: a quiet phase carrying a burst of non-idempotent
    CREATE/REMOVE traffic, then a storm — a disk error window, a
    degraded-spindle or hung-controller window, a network partition
    isolating one writer, elevated datagram loss — ending in a full
    server crash and an in-simulation restart (volatile state dropped,
    NVRAM replay, remount, same address). Clients ride through on RPC
    retransmission. On the accelerated variant, one mid-run NVRAM
    battery failure degrades the device to synchronous pass-through
    (with an orderly drain) and a later repair restores it.

    Invariants checked:

    - {b no acked write lost}: every block whose WRITE reply the client
      saw is re-read and compared after each restart and once more at
      the end ([lost] must stay empty);
    - {b no non-idempotent re-execution}: with the duplicate cache on,
      no unique-name CREATE may come back [NFSERR_EXIST] and no
      once-removed name [NFSERR_NOENT] ([spurious_nonidem] = 0); the
      same run with [dupcache = false] is the control that shows the
      failure the cache exists to prevent;
    - {b reproducibility}: everything — fault instants, RNG draws,
      think times — derives from [seed], so equal configs give equal
      [timeline]s and equal [digest]s;
    - the final filesystem passes {!Nfsg_ufs.Fs.check}. *)

type config = {
  seed : int;
  cycles : int;  (** crash/restart cycles (the acceptance run uses 5) *)
  accel : bool;  (** NVRAM front plus a battery-failure episode *)
  dupcache : bool;
  writers : int;
  blocks_per_writer : int;
  burst_ops : int;  (** CREATE/REMOVE pairs per quiet phase *)
  loss_prob : float;  (** baseline datagram loss *)
  storm_loss_prob : float;  (** loss during fault windows *)
  dup_prob : float;  (** datagram duplication, the whole run *)
  nfsds : int;
  scheduler : Nfsg_disk.Disk.scheduler;
      (** spindle I/O scheduling policy; the crash promises must hold
          under all of Fifo, Elevator and Deadline *)
  array_level : Nfsg_disk.Stripe.level option;
      (** [None] (the default) is the classic single-spindle rig.
          [Some Raid1]/[Some Raid5] serve from a redundant array (2 or
          3 members, each behind its own fault injector) and extend
          every cycle's fault plan: one member fail-stops during the
          storm, the crash and restart happen degraded, and after
          verification the member is replaced and resilvered online —
          with the server crashed {e mid-rebuild} on odd cycles. The
          no-acked-write-lost ledger, the duplicate-cache invariant and
          the digest reproducibility are asserted across all of it. *)
}

val default : config

type result = {
  acked : int;  (** ledger size: writes acknowledged to a client *)
  lost : int list;  (** acked blocks that failed read-back — must be [] *)
  issued_creates : int;
  completed_creates : int;
  executed_creates : int;  (** server-side dispatches, all incarnations *)
  issued_removes : int;
  completed_removes : int;
  executed_removes : int;
  spurious_nonidem : int;  (** client-visible re-executions — 0 with dupcache *)
  crashes : int;
  restarts : int;
  flush_failures : int;  (** gathered batches failed with NFSERR_IO *)
  errors_injected : int;
  io_error_replies : int;  (** NFSERR_IO write replies clients retried through *)
  member_failures : int;
      (** array members fail-stopped over the run (0 without an array) *)
  rebuilds_completed : int;  (** online resilvers that ran to completion *)
  degraded_reads : int;  (** reads served by reconstruction or failover *)
  degraded_writes : int;  (** writes committed with a member missing *)
  trace_dropped : int;
      (** journey/trace ring records lost to wrap-around — the
          drop-safety audit term of the digest ([td=]) *)
  fsck_errors : string list;
  timeline : string list;  (** timestamped fault/verification log *)
  digest : string;  (** hex digest of timeline + ledger + counters *)
}

val run : ?metrics:Nfsg_stats.Metrics.t -> config -> result
(** Deterministic in [config] alone. [metrics] collects the instruments
    of every layer the scenario builds (and both server incarnations
    share it across restarts); a run's metrics JSON is as reproducible
    as its digest. *)

val pp_result : Format.formatter -> result -> unit
