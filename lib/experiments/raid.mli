(** The redundancy bench: one streaming multi-writer load over a
    3-drive array, swept across RAID level (0/1/5) and server write
    gathering (on/off).

    The cell the sweep exists for is RAID-5 x gathering: synchronous
    8 KB WRITEs commit as chunk read-modify-writes, while gathered
    flushes hand the array contiguous runs long enough to cover whole
    parity rows — full-stripe commits that need no read phase. The
    committed [BENCH_raid.json] shows the full-stripe fraction rising
    when gathering is switched on.

    For the redundant levels each variant then fails member 1, reads a
    spread of blocks degraded (reconstructed from parity on RAID-5,
    failed over on RAID-1), streams writes into untouched space, and
    rebuilds the member online, re-verifying every sampled block
    byte-for-byte afterwards. *)

type config = {
  seed : int;
  members : int;
  member_capacity : int;
  chunk : int;
  writers : int;
  blocks_per_writer : int;
  nfsds : int;
  sample_blocks : int;
  degraded_write_blocks : int;
  rebuild_pace : Nfsg_sim.Time.t;
}

val default : config

type variant = { level : Nfsg_disk.Stripe.level; gather : bool }

val variants : variant list
(** The six cells: each level with gathering off and on. *)

type redundancy = {
  degraded_read_blocks : int;
  degraded_read_mean_us : float;
  degraded_reads : int;
  degraded_writes : int;
  rebuild_ms : float;
  rebuild_chunks : int;
  rebuild_bytes : int;
  reverified : bool;
}

type row = {
  variant : variant;
  elapsed_ms : float;
  written_kb_s : float;
  member_transactions : int;
  full_stripe_writes : int;
  rmw_writes : int;
  full_stripe_fraction : float;
  redundancy : redundancy option;
}

val run : ?cfg:config -> unit -> row list
(** Deterministic in [cfg] alone; one fresh simulated world per
    variant. *)

val report : ?quick:bool -> unit -> Nfsg_stats.Report.t

val bench_raid : unit -> Nfsg_stats.Json.t
(** The fixed-workload artifact written to [BENCH_raid.json] and
    byte-diffed by CI. *)
