(* The canned nfsmon demonstration world: three client stations with
   different appetites write concurrently to one gathering server over
   a single spindle, and a disk slowdown window mid-run pushes a burst
   of ops over the long-op threshold. The run shows every piece of the
   live operability plane at once — interval reports with per-station
   attribution, the journey phase histograms, and the long-op records
   that pin the slow interval on the disk phase.

   Everything is driven by the simulation clock from fixed seeds, so
   the rendered output is byte-identical across runs — CI diffs it
   against a committed golden copy. *)

open Nfsg_sim
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Disk = Nfsg_disk.Disk
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Client = Nfsg_nfs.Client
module Rpc_client = Nfsg_rpc.Rpc_client
module Fault_disk = Nfsg_fault.Fault_disk
module File_writer = Nfsg_workload.File_writer
module Metrics = Nfsg_stats.Metrics
module Histogram = Nfsg_stats.Histogram
module Names = Nfsg_stats.Names
module Journey = Nfsg_stats.Journey
module Monitor = Nfsg_stats.Monitor

type config = {
  interval : Time.t;  (** monitor reporting period *)
  threshold : Time.t;  (** long-op trace threshold *)
  slow_from : Time.t;  (** disk slowdown window *)
  slow_until : Time.t;
  slow_factor : float;
  seed : int;
}

let default =
  {
    interval = Time.ms 200;
    threshold = Time.ms 60;
    slow_from = Time.ms 400;
    slow_until = Time.ms 700;
    slow_factor = 8.0;
    seed = 11;
  }

(* The three stations: (address, biods, start offset, bytes to write).
   Different appetites and staggered starts so successive intervals
   show a changing top-table, not three constant rows. *)
let stations =
  [
    ("alice", 4, Time.ms 0, 256 * 1024);
    ("bob", 2, Time.ms 100, 128 * 1024);
    ("carol", 1, Time.ms 350, 48 * 1024);
  ]

let run ?(cfg = default) () =
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let segment =
    Segment.create eng ~seed:(cfg.seed lxor 0x5c1) ~metrics (Calib.segment_params Calib.Fddi)
  in
  let cpu_hook = ref (fun (_ : Time.t) -> ()) in
  let costs = Calib.cpu_costs Calib.Fddi in
  let driver_cost = costs.Nfsg_core.Cpu_model.driver_transaction in
  let disk =
    Disk.create eng ~name:"rz26" ~metrics
      ~on_transaction:(fun ~bytes:_ -> !cpu_hook driver_cost)
      Calib.disk_geometry
  in
  let injector, device = Fault_disk.wrap eng ~seed:cfg.seed disk in
  Fault_disk.slowdown_window injector ~from_:cfg.slow_from ~until:cfg.slow_until
    ~factor:cfg.slow_factor;
  let config =
    {
      Server.default_config with
      Server.write_layer =
        { Write_layer.default_gathering with
          Write_layer.procrastinate = Calib.procrastinate Calib.Fddi
        };
      costs;
      long_op_threshold = Some cfg.threshold;
    }
  in
  let server = Server.make eng ~segment ~addr:"server" ~device ~metrics config in
  (cpu_hook := fun d -> Resource.charge (Server.cpu server) d);
  let monitor = Monitor.create eng ~metrics ~interval:cfg.interval () in
  Monitor.start monitor;
  let remaining = ref (List.length stations) in
  let joiner = ref None in
  let finished () =
    decr remaining;
    if !remaining = 0 then Option.iter (fun k -> k ()) !joiner
  in
  List.iter
    (fun (addr, biods, start, total) ->
      Engine.spawn eng ~name:addr (fun () ->
          if start > 0 then Engine.delay start;
          let sock = Socket.create segment ~addr () in
          let rpc = Rpc_client.create eng ~sock ~server:"server" ~metrics () in
          let client = Client.create eng ~rpc ~biods ~metrics () in
          ignore
            (File_writer.run eng client ~dir:(Server.root_fh server)
               ~name:(addr ^ ".dat") ~total ~seed:cfg.seed ()
              : File_writer.result);
          finished ()))
    stations;
  Engine.spawn eng ~name:"driver" (fun () ->
      if !remaining > 0 then Engine.suspend (fun k -> joiner := Some k);
      Monitor.stop monitor);
  Engine.run eng;
  (* The plane's own evidence, after the dust settles. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Monitor.output monitor);
  let plane = Server.journeys server in
  let jc name =
    Option.value ~default:0 (Metrics.find_counter metrics ~ns:Names.Ns.journey name)
  in
  let dropped =
    Option.value ~default:0 (Metrics.find_counter metrics ~ns:Names.Ns.trace Names.dropped)
  in
  Buffer.add_string buf
    (Printf.sprintf "\njourney: records=%d long_ops=%d dropped=%d\n" (jc Names.records)
       (jc Names.long_ops) dropped);
  let p99 phase =
    match Metrics.find_histogram metrics ~ns:Names.Ns.journey (Names.phase_us phase) with
    | Some h -> Histogram.p99 h
    | None -> 0.0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "phase p99 (us): sock_wait=%.0f dupcache=%.0f prep=%.0f gather_wait=%.0f disk=%.0f \
        reply=%.0f\n"
       (p99 Names.phase_sock_wait) (p99 Names.phase_dupcache) (p99 Names.phase_prep)
       (p99 Names.phase_gather_wait) (p99 Names.phase_disk) (p99 Names.phase_reply));
  Buffer.add_string buf "\nlong-op records:\n";
  Buffer.add_string buf (Journey.render_long_ops plane);
  Buffer.contents buf
