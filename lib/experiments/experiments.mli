(** Every table and figure of the paper, regenerated.

    Each function builds fresh simulated worlds, runs the workload,
    and returns printable output. The experiment index lives in
    DESIGN.md; paper-vs-measured comparisons live in EXPERIMENTS.md. *)

val table1 : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** NFS 10MB file copy: Ethernet (biods 0/3/7/11/15). [quick] uses a
    2.5 MB file for fast smoke runs; shapes, not absolutes, change. *)

val table2 : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** Ethernet + Prestoserve. *)

val table3 : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** FDDI. *)

val table4 : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** FDDI + Prestoserve. *)

val table5 : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** FDDI, 3 striped drives (biods up to 23). *)

val table6 : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** FDDI + Prestoserve, 3 striped drives. *)

val figure1 : unit -> string
(** Packet/disk timelines of a standard vs a gathering server for the
    4-biod sequential writer, >100K into the file. *)

type laddis_point = {
  offered : float;
  achieved : float;
  avg_latency_ms : float;
}

type laddis_curve = {
  label : string;
  points : laddis_point list;
  peak_ops : float;  (** highest achieved throughput on the curve *)
  latency_at_peak : float;
}

val figure2 : ?quick:bool -> unit -> laddis_curve * laddis_curve
(** LADDIS-style throughput/latency curves (without, with gathering),
    FDDI, no NVRAM. *)

val figure3 : ?quick:bool -> unit -> laddis_curve * laddis_curve
(** Same with Prestoserve. *)

val render_laddis : title:string -> laddis_curve * laddis_curve -> string

(** {1 Ablations} (design choices the paper discusses) *)

val ablation_procrastination : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** Sweep the procrastination interval (section 6.6: "I wish I could
    say I know how to calculate the right number"). *)

val ablation_reply_order : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** FIFO vs the abandoned LIFO (section 6.7). *)

val ablation_latency_device : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** Procrastination vs the [SIVA93] first-write-as-latency-device
    variant (section 6.6), with and without NVRAM. *)

val ablation_mbuf_hunter : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** Socket-buffer scanning on/off under Prestoserve (section 6.5). *)

val ablation_dumb_pc : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** The 0-biod worst case across networks (section 6.10). *)

val ablation_disk_scheduler : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** FIFO vs C-LOOK elevator in the driver, under a random-access write
    load on the standard server — the per-spindle request-pattern point
    the paper makes against [SIVA93] (section 6.6). *)

(** {1 Extensions} (the paper's Future Work, built out) *)

val extension_learned_clients : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** Mogul's learned-client database (section 8): the dumb-PC penalty
    disappears while multi-biod clients keep the full gathering win. *)

val extension_v3 : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** NFS version 3 asynchronous writes + COMMIT vs version 2, against
    standard and gathering servers — the mixed environment the paper
    wonders about in section 8. *)

val extension_write_modes : ?quick:bool -> unit -> Nfsg_stats.Report.t
(** Standard vs gathering vs "dangerous mode" (async volatile acks,
    section 4.3): what the shortcut buys, next to what the crash tests
    show it costs. *)

(** {1 Machine-readable bench} *)

val bench_writegather : ?quick:bool -> ?total:int -> unit -> Nfsg_stats.Json.t
(** The paper's core comparison as one JSON document
    ([BENCH_writegather.json]): Standard vs Gathering vs
    Gathering+Prestoserve on the FDDI 7-biod sequential write workload.
    Each row carries client throughput, server CPU, the WRITE latency
    split (mean/p50/p99 µs, from the client-side per-procedure
    histograms), disk transactions (total, KB/s and per 8 KB write),
    metadata flushes saved, and the gather batch-size histogram.
    Deterministic: same [total], same bytes. [total] overrides the
    workload size (default: the [quick]-dependent file-copy size). *)
