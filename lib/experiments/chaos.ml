open Nfsg_sim
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Disk = Nfsg_disk.Disk
module Nvram = Nfsg_disk.Nvram
module Device = Nfsg_disk.Device
module Stripe = Nfsg_disk.Stripe
module Fault_disk = Nfsg_fault.Fault_disk
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Fs = Nfsg_ufs.Fs
module Proto = Nfsg_nfs.Proto
module Rpc = Nfsg_rpc.Rpc
module Rpc_client = Nfsg_rpc.Rpc_client

type config = {
  seed : int;
  cycles : int;
  accel : bool;
  dupcache : bool;
  writers : int;
  blocks_per_writer : int;
  burst_ops : int;
  loss_prob : float;
  storm_loss_prob : float;
  dup_prob : float;
  nfsds : int;
  scheduler : Disk.scheduler;  (** spindle I/O scheduling policy *)
  array_level : Stripe.level option;
      (** serve from a redundant array instead of one spindle, adding
          whole-member fail-stop, degraded service and online rebuild
          to every fault cycle *)
}

let default =
  {
    seed = 42;
    cycles = 5;
    accel = false;
    dupcache = true;
    writers = 3;
    blocks_per_writer = 200;
    burst_ops = 8;
    loss_prob = 0.01;
    storm_loss_prob = 0.08;
    dup_prob = 0.02;
    nfsds = 8;
    scheduler = Disk.Fifo;
    array_level = None;
  }

type result = {
  acked : int;
  lost : int list;
  issued_creates : int;
  completed_creates : int;
  executed_creates : int;
  issued_removes : int;
  completed_removes : int;
  executed_removes : int;
  spurious_nonidem : int;
  crashes : int;
  restarts : int;
  flush_failures : int;
  errors_injected : int;
  io_error_replies : int;
  member_failures : int;  (** array members fail-stopped (0 without an array) *)
  rebuilds_completed : int;
  degraded_reads : int;
  degraded_writes : int;
  trace_dropped : int;
      (** journey/trace ring records overwritten before anyone read
          them — the drop-safety audit: losing observability must be
          visible, not silent *)
  fsck_errors : string list;
  timeline : string list;
  digest : string;
}

let bs = 8192
let block_fill blk = (blk * 131) + 7
let block_data blk = Bytes.init bs (fun j -> Char.chr ((j + block_fill blk) mod 251))

(* The whole scenario is a function of [cfg] alone: the engine, every
   RNG (segment, injector, fault plan, writer think times) and every
   fault instant derive from [cfg.seed], so two runs with equal configs
   produce identical timelines, identical final statistics and equal
   digests — the reproducibility invariant the test suite asserts. *)
let run ?metrics cfg =
  let metrics =
    match metrics with Some m -> m | None -> Nfsg_stats.Metrics.create ()
  in
  let eng = Engine.create () in
  let segment = Segment.create eng ~seed:(cfg.seed lxor 0x5e11) ~metrics Segment.fddi in
  Segment.set_loss_prob segment cfg.loss_prob;
  Segment.set_dup_prob segment cfg.dup_prob;
  (* The device stack under test. [array_level = None] keeps the
     classic single-spindle rig, byte-identical to earlier revisions;
     a level builds a redundant array whose members each carry their
     own injector (whole-spindle fail-stop), with the classic
     top-level injector wrapping the array itself. *)
  let base, member_injectors, array =
    match cfg.array_level with
    | None ->
        let disk =
          Disk.create eng ~name:"rz26" ~metrics ~scheduler:cfg.scheduler Calib.disk_geometry
        in
        (disk, [||], None)
    | Some level ->
        let n = match level with Stripe.Raid1 -> 2 | _ -> 3 in
        let wrapped =
          Array.init n (fun i ->
              let m =
                Disk.create eng
                  ~name:(Printf.sprintf "rz26-m%d" i)
                  ~metrics ~scheduler:cfg.scheduler
                  (Disk.rz26 ~capacity:(16 * 1024 * 1024) ())
              in
              Fault_disk.wrap eng ~seed:(cfg.seed lxor (0xfa10 + i)) m)
        in
        let arr =
          Stripe.create_array eng ~name:"array" ~metrics ~level ~chunk:32768
            (Array.map snd wrapped)
        in
        (Stripe.device arr, Array.map fst wrapped, Some arr)
  in
  let injector, faulty = Fault_disk.wrap eng ~seed:(cfg.seed lxor 0xfa01) base in
  let device =
    if cfg.accel then Nvram.create eng ~params:Calib.nvram_params ~metrics faulty else faulty
  in
  let sconfig = { Server.default_config with Server.nfsds = cfg.nfsds; dupcache = cfg.dupcache } in
  let server = ref (Server.make eng ~segment ~addr:"server" ~device ~metrics sconfig) in

  (* Observations (all plain counters: no wall clock, no global RNG). *)
  let timeline = ref [] in
  let note fmt =
    Printf.ksprintf
      (fun s ->
        timeline := Printf.sprintf "%8.1fms %s" (Time.to_sec_f (Engine.now eng) *. 1e3) s :: !timeline)
      fmt
  in
  let acked : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  let verified : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  let lost = ref [] in
  let io_error_replies = ref 0 in
  let issued_creates = ref 0
  and completed_creates = ref 0
  and issued_removes = ref 0
  and completed_removes = ref 0
  and spurious = ref 0 in
  let executed_creates = ref 0 and executed_removes = ref 0 in
  let flush_failures = ref 0 in
  let crashes = ref 0 and restarts = ref 0 in
  let fsck_errors = ref [] in
  let stop = ref false in
  let writers_done = ref 0 in
  let burst_req = ref 0 and bursts_done = ref 0 in
  let mutator_gone = ref false in
  let result = ref None in

  let root_fh = ref { Proto.fsid = 0; vgen = 0; inum = 0; gen = 0 } in
  let victim_fh = ref { Proto.fsid = 0; vgen = 0; inum = 0; gen = 0 } in

  let tick = Time.of_ms_f 20.0 in
  let rec wait_for pred = if not (pred ()) then begin Engine.delay tick; wait_for pred end in
  let rebuild_pace = Time.of_us_f 500.0 in

  (* Every per-incarnation statistic must be read before the
     incarnation is crashed away. *)
  let harvest () =
    let srv = !server in
    executed_creates := !executed_creates + Server.op_count srv Proto.proc_create;
    executed_removes := !executed_removes + Server.op_count srv Proto.proc_remove;
    flush_failures := !flush_failures + Write_layer.flush_failures (Server.write_layer srv)
  in

  (* {2 The write ledger}

     Each writer owns a disjoint range of 8 KB blocks of one shared
     file and writes each block exactly once, retrying through
     NFSERR_IO replies and RPC timeouts. A block enters the ledger
     only when a success reply is {e seen by the client} — from that
     instant the block must survive every later crash. *)
  let writer w rpc () =
    let rng = Rng.create (cfg.seed + (7919 * (w + 1))) in
    let i = ref 0 in
    while (not !stop) && !i < cfg.blocks_per_writer do
      let blk = (w * cfg.blocks_per_writer) + !i in
      let data = block_data blk in
      let rec attempt tries timeouts =
        if tries < 8 then
          match
            Rpc_client.call rpc ~klass:Rpc_client.Heavy ~proc:Proto.proc_write
              (Proto.encode_args (Proto.Write { fh = !victim_fh; offset = blk * bs; data = Nfsg_rpc.Xdr.view_of_bytes data }))
          with
          | Rpc.Success, body -> (
              match Proto.decode_res ~proc:Proto.proc_write body with
              | Proto.RAttr (Ok _) -> Hashtbl.replace acked blk ()
              | Proto.RAttr (Error Proto.NFSERR_IO) ->
                  incr io_error_replies;
                  Engine.delay (Time.of_ms_f 60.0);
                  attempt (tries + 1) timeouts
              | _ -> ())
          | _ -> ()
          | exception Rpc_client.Timeout _ ->
              if timeouts < 2 then begin
                Engine.delay (Time.of_ms_f 150.0);
                attempt (tries + 1) (timeouts + 1)
              end
      in
      attempt 0 0;
      incr i;
      Engine.delay (Time.of_ms_f (25.0 +. (Rng.float rng *. 25.0)))
    done;
    incr writers_done
  in

  (* {2 Non-idempotent bursts}

     CREATE/REMOVE pairs with run-unique names, issued only in the
     quiet phase of each cycle (a duplicate cache is volatile, so NFS
     itself cannot protect non-idempotent requests {e across} a
     reboot — the rig tests what the protocol promises, not more).
     Within a burst, injected datagram duplication and reply loss force
     retransmissions; with the duplicate cache on, every retry must be
     answered by replay. A re-execution is visible as NFSERR_EXIST on
     a fresh CREATE or NFSERR_NOENT on a once-removed name. *)
  let mutator rpc () =
    while not !stop do
      if !bursts_done < !burst_req then begin
        let k = !bursts_done in
        for j = 1 to cfg.burst_ops do
          let name = Printf.sprintf "m-%d-%d" k j in
          incr issued_creates;
          (match
             Rpc_client.call rpc ~klass:Rpc_client.Middle ~proc:Proto.proc_create
               (Proto.encode_args
                  (Proto.Create { dir = !root_fh; name; sattr = Proto.sattr_none }))
           with
          | Rpc.Success, body -> (
              match Proto.decode_res ~proc:Proto.proc_create body with
              | Proto.RDirop (Ok _) -> (
                  incr completed_creates;
                  incr issued_removes;
                  match
                    Rpc_client.call rpc ~klass:Rpc_client.Middle ~proc:Proto.proc_remove
                      (Proto.encode_args (Proto.Remove { dir = !root_fh; name }))
                  with
                  | Rpc.Success, body -> (
                      match Proto.decode_res ~proc:Proto.proc_remove body with
                      | Proto.RStatus Proto.NFS_OK -> incr completed_removes
                      | Proto.RStatus Proto.NFSERR_NOENT -> incr spurious
                      | _ -> ())
                  | _ -> ()
                  | exception Rpc_client.Timeout _ -> ())
              | Proto.RDirop (Error Proto.NFSERR_EXIST) -> incr spurious
              | _ -> ())
          | _ -> ()
          | exception Rpc_client.Timeout _ -> ())
        done;
        incr bursts_done
      end
      else Engine.delay tick
    done;
    mutator_gone := true
  in

  (* Read back every not-yet-verified ledger block through the live
     filesystem of the current incarnation. Runs right after each
     restart, so each block is checked against at least one crash that
     happened after its acknowledgement; the final sweep re-checks the
     whole ledger. *)
  let verify label ~all =
    if all then Hashtbl.reset verified;
    let fs = Server.fs !server in
    let inode = Fs.lookup fs (Fs.root fs) "victim" in
    let pending =
      Hashtbl.fold (fun blk () l -> if Hashtbl.mem verified blk then l else blk :: l) acked []
      |> List.sort compare
    in
    let bad = ref 0 in
    List.iter
      (fun blk ->
        let back = Fs.read fs inode ~off:(blk * bs) ~len:bs in
        if Bytes.equal back (block_data blk) then Hashtbl.replace verified blk ()
        else begin
          incr bad;
          lost := blk :: !lost
        end)
      pending;
    note "verify(%s): %d block(s) checked, %d lost, ledger=%d" label (List.length pending) !bad
      (Hashtbl.length acked)
  in

  (* {2 The fault plan} *)
  let driver () =
    let plan = Rng.create (cfg.seed lxor 0x9a7) in
    (* Bootstrap: create the shared ledger file, then unleash load. *)
    let boot_sock = Socket.create segment ~addr:"mut" () in
    let boot_rpc = Rpc_client.create eng ~sock:boot_sock ~server:"server" ~metrics () in
    root_fh := Server.root_fh !server;
    (match
       Rpc_client.call boot_rpc ~klass:Rpc_client.Middle ~proc:Proto.proc_create
         (Proto.encode_args
            (Proto.Create { dir = !root_fh; name = "victim"; sattr = Proto.sattr_none }))
     with
    | Rpc.Success, body -> (
        match Proto.decode_res ~proc:Proto.proc_create body with
        | Proto.RDirop (Ok (fh, _)) -> victim_fh := fh
        | _ -> failwith "chaos: victim create failed")
    | _ -> failwith "chaos: victim create failed");
    for w = 0 to cfg.writers - 1 do
      let sock = Socket.create segment ~addr:(Printf.sprintf "w%d" w) () in
      let rpc = Rpc_client.create eng ~sock ~server:"server" ~metrics () in
      Engine.spawn eng ~name:(Printf.sprintf "writer%d" w) (writer w rpc)
    done;
    Engine.spawn eng ~name:"mutator" (mutator boot_rpc);
    note "chaos begins: seed=%d cycles=%d accel=%b dupcache=%b" cfg.seed cfg.cycles cfg.accel
      cfg.dupcache;
    Engine.delay (Time.of_ms_f 400.0);

    let span = Time.of_ms_f 2600.0 in
    for k = 0 to cfg.cycles - 1 do
      let cycle_start = Engine.now eng in
      (* Quiet phase: battery episode, then one non-idempotent burst,
         completed before any crash is armed. *)
      if cfg.accel && k = 2 then begin
        note "nvram battery failure (orderly drain begins)";
        Nvram.fail_battery device;
        wait_for (fun () -> Nvram.dirty_bytes device = 0);
        note "nvram drained, accelerated=%b" (device.Device.accelerated ())
      end;
      if cfg.accel && k = 3 then begin
        Nvram.repair_battery device;
        note "nvram battery replaced, accelerated=%b" (device.Device.accelerated ())
      end;
      incr burst_req;
      wait_for (fun () -> !bursts_done >= !burst_req);
      (* Fault windows: disk errors always; degraded spindle and hung
         controller on alternate cycles; one writer partitioned away. *)
      let now = Engine.now eng in
      let prob = Rng.uniform plan 0.3 0.6 in
      Fault_disk.error_window injector ~from_:(now + Time.of_ms_f 100.0)
        ~until:(now + Time.of_ms_f 600.0) ~prob;
      note "disk error window +100..+600ms prob=%.2f" prob;
      if k mod 2 = 0 then begin
        let factor = Rng.uniform plan 2.0 4.0 in
        Fault_disk.slowdown_window injector ~from_:now ~until:(now + Time.of_ms_f 800.0) ~factor;
        note "disk slowdown window +0..+800ms factor=%.1f" factor
      end
      else begin
        Fault_disk.hang_window injector ~from_:(now + Time.of_ms_f 620.0)
          ~until:(now + Time.of_ms_f 780.0);
        note "disk hang window +620..+780ms"
      end;
      (* Whole-spindle loss: fail-stop one array member for the rest of
         the storm and the crash that follows — service must continue
         degraded, and the journal replay on recovery must cope with
         the hole. *)
      let victim_member = ref (-1) in
      (match array with
      | Some arr when Stripe.level arr <> Stripe.Raid0 ->
          let v = k mod Array.length member_injectors in
          victim_member := v;
          Fault_disk.fail_stop member_injectors.(v);
          Stripe.fail_member arr v;
          note "array member %d fail-stopped" v
      | _ -> ());
      let victim_writer = Printf.sprintf "w%d" (k mod cfg.writers) in
      Segment.partition segment ~a:"server" ~b:victim_writer ~until:(now + Time.of_ms_f 900.0);
      note "partition server<->%s for 900ms" victim_writer;
      Segment.set_loss_prob segment cfg.storm_loss_prob;
      note "loss storm p=%.2f" cfg.storm_loss_prob;
      Engine.delay (Time.of_ms_f 900.0);
      (* Crash. Fault windows have expired: the outage is the fault. *)
      harvest ();
      incr crashes;
      note "server crash #%d" !crashes;
      Server.crash !server;
      let outage = Time.of_ms_f (Rng.uniform plan 250.0 550.0) in
      Engine.delay outage;
      server := Server.restart !server;
      incr restarts;
      note "server restart #%d after %.0fms outage" !restarts (Time.to_sec_f outage *. 1e3);
      Segment.set_loss_prob segment cfg.loss_prob;
      verify (Printf.sprintf "cycle %d" (k + 1)) ~all:false;
      (* Replace the dead spindle and resilver it online, under
         whatever load is still running. Odd cycles crash the server
         mid-rebuild: the resilver must abort cleanly and restart from
         scratch without inventing data. Waiting for completion before
         the next cycle keeps the array single-failure at all times. *)
      (match array with
      | Some arr when !victim_member >= 0 ->
          let v = !victim_member in
          Fault_disk.revive member_injectors.(v);
          if Stripe.member_state arr v = Stripe.Failed then begin
            Stripe.rebuild ~pace:rebuild_pace arr ~member:v;
            note "member %d replaced, rebuild started" v;
            if k mod 2 = 1 then begin
              Engine.delay (Time.of_ms_f 120.0);
              if Stripe.rebuild_active arr then begin
                harvest ();
                incr crashes;
                note "server crash #%d (mid-rebuild)" !crashes;
                Server.crash !server;
                Engine.delay (Time.of_ms_f 300.0);
                server := Server.restart !server;
                incr restarts;
                note "server restart #%d (mid-rebuild)" !restarts;
                verify (Printf.sprintf "cycle %d mid-rebuild" (k + 1)) ~all:false;
                if Stripe.member_state arr v = Stripe.Failed then begin
                  Stripe.rebuild ~pace:rebuild_pace arr ~member:v;
                  note "rebuild restarted after crash"
                end
              end
            end;
            wait_for (fun () -> not (Stripe.rebuild_active arr));
            note "member %d rebuild %s" v
              (match Stripe.member_state arr v with
              | Stripe.Active -> "complete"
              | _ -> "aborted")
          end
      | _ -> ());
      let elapsed = Engine.now eng - cycle_start in
      if elapsed < span then Engine.delay (span - elapsed)
    done;

    (* Wind down: stop load, let in-flight requests settle, then sweep
       the whole ledger and fsck the final incarnation. *)
    stop := true;
    wait_for (fun () -> !writers_done = cfg.writers && !mutator_gone);
    Engine.delay (Time.of_ms_f 500.0);
    harvest ();
    verify "final" ~all:true;
    (match Fs.check (Server.fs !server) with
    | Ok () -> note "fsck clean"
    | Error es ->
        fsck_errors := es;
        note "fsck: %d error(s)" (List.length es));
    let timeline = List.rev !timeline in
    let sorted_acked = Hashtbl.fold (fun b () l -> b :: l) acked [] |> List.sort compare in
    let buf = Buffer.create 1024 in
    List.iter
      (fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      timeline;
    List.iter (fun b -> Buffer.add_string buf (string_of_int b)) sorted_acked;
    Buffer.add_string buf
      (Printf.sprintf "c=%d/%d/%d r=%d/%d/%d sp=%d ff=%d ei=%d io=%d seg=%d/%d/%d/%d" !issued_creates
         !completed_creates !executed_creates !issued_removes !completed_removes !executed_removes
         !spurious !flush_failures
         (Fault_disk.errors_injected injector)
         !io_error_replies (Segment.datagrams_sent segment) (Segment.datagrams_lost segment)
         (Segment.datagrams_duplicated segment)
         (Segment.datagrams_blackholed segment));
    (* Drop-safety audit: observability loss is part of the run's
       identity. The counter is monotone across the crash/restart
       cycles above (a restarted server's fresh rings never rewind
       it), so two equal-config runs must agree on it exactly. *)
    let trace_dropped = Nfsg_stats.Journey.dropped (Server.journeys !server) in
    Buffer.add_string buf (Printf.sprintf " td=%d" trace_dropped);
    let raid_counter name =
      if Option.is_some array then
        Option.value ~default:0 (Metrics.find_counter metrics ~ns:(Names.Ns.raid "array") name)
      else 0
    in
    (* Only array runs carry the raid line, so classic digests are
       byte-identical to earlier revisions. *)
    if Option.is_some array then
      Buffer.add_string buf
        (Printf.sprintf " raid=%d/%d/%d/%d"
           (raid_counter Names.member_failures)
           (raid_counter Names.rebuilds_completed)
           (raid_counter Names.degraded_reads)
           (raid_counter Names.degraded_writes));
    result :=
      Some
        {
          acked = Hashtbl.length acked;
          lost = List.sort compare !lost;
          issued_creates = !issued_creates;
          completed_creates = !completed_creates;
          executed_creates = !executed_creates;
          issued_removes = !issued_removes;
          completed_removes = !completed_removes;
          executed_removes = !executed_removes;
          spurious_nonidem = !spurious;
          crashes = !crashes;
          restarts = !restarts;
          flush_failures = !flush_failures;
          errors_injected = Fault_disk.errors_injected injector;
          io_error_replies = !io_error_replies;
          member_failures = raid_counter Names.member_failures;
          rebuilds_completed = raid_counter Names.rebuilds_completed;
          degraded_reads = raid_counter Names.degraded_reads;
          degraded_writes = raid_counter Names.degraded_writes;
          trace_dropped;
          fsck_errors = !fsck_errors;
          timeline;
          digest = Digest.to_hex (Digest.string (Buffer.contents buf));
        }
  in
  Engine.spawn eng ~name:"chaos" driver;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> failwith "Chaos.run: driver never finished"

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>chaos: %d acked, %d lost, %d crash/restart cycles@,\
     creates %d issued / %d completed / %d executed; removes %d/%d/%d@,\
     spurious non-idempotent re-executions: %d@,\
     flush failures: %d; disk errors injected: %d; NFSERR_IO write replies: %d@,\
     trace records dropped: %d@,\
     digest %s@]"
    r.acked (List.length r.lost) r.crashes r.issued_creates r.completed_creates r.executed_creates
    r.issued_removes r.completed_removes r.executed_removes r.spurious_nonidem r.flush_failures
    r.errors_injected r.io_error_replies r.trace_dropped r.digest;
  if r.member_failures > 0 then
    Fmt.pf ppf
      "@.array: %d member fail-stop(s), %d rebuild(s) completed, %d degraded reads, %d degraded \
       writes"
      r.member_failures r.rebuilds_completed r.degraded_reads r.degraded_writes
