open Nfsg_sim
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Disk = Nfsg_disk.Disk
module Device = Nfsg_disk.Device
module Io = Nfsg_disk.Io
module Stripe = Nfsg_disk.Stripe
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Client = Nfsg_nfs.Client
module Rpc_client = Nfsg_rpc.Rpc_client
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names
module Json = Nfsg_stats.Json
module Report = Nfsg_stats.Report

(* The redundancy comparison: the same multi-writer streaming load over
   a 3-drive array, once per RAID level, with write gathering on and
   off. The interesting cell is RAID-5 x gathering: individual 8 KB
   WRITEs commit as chunk read-modify-writes, while a gathered flush
   hands the array runs long enough to cover whole parity rows — the
   full-stripe commits that skip the read phase entirely. The bench
   then fails one member of each redundant array, serves reads and
   writes degraded, and rebuilds it online under measurement. *)

type config = {
  seed : int;
  members : int;  (** spindles per array *)
  member_capacity : int;
  chunk : int;
  writers : int;
  blocks_per_writer : int;  (** 8 KB blocks streamed per writer *)
  nfsds : int;
  sample_blocks : int;  (** blocks read back healthy/degraded/rebuilt *)
  degraded_write_blocks : int;  (** blocks written while degraded *)
  rebuild_pace : Time.t;
}

let default =
  {
    seed = 1994;
    members = 3;
    member_capacity = 6 * 1024 * 1024;
    chunk = 8192;
    writers = 4;
    blocks_per_writer = 48;
    nfsds = 8;
    sample_blocks = 16;
    degraded_write_blocks = 8;
    rebuild_pace = Time.of_us_f 200.0;
  }

type variant = { level : Stripe.level; gather : bool }

let variants =
  [
    { level = Stripe.Raid0; gather = false };
    { level = Stripe.Raid0; gather = true };
    { level = Stripe.Raid1; gather = false };
    { level = Stripe.Raid1; gather = true };
    { level = Stripe.Raid5; gather = false };
    { level = Stripe.Raid5; gather = true };
  ]

let label v = Stripe.level_name v.level ^ if v.gather then "+gather" else ""

type redundancy = {
  degraded_read_blocks : int;
  degraded_read_mean_us : float;
  degraded_reads : int;  (** reconstructed / failed-over reads (counter) *)
  degraded_writes : int;  (** writes committed with a member missing *)
  rebuild_ms : float;
  rebuild_chunks : int;
  rebuild_bytes : int;
  reverified : bool;  (** sample blocks byte-equal healthy/degraded/rebuilt *)
}

type row = {
  variant : variant;
  elapsed_ms : float;
  written_kb_s : float;
  member_transactions : int;
  full_stripe_writes : int;
  rmw_writes : int;
  full_stripe_fraction : float;
  redundancy : redundancy option;  (** [None] for RAID-0 *)
}

let bs = 8192
let block w b = Bytes.init bs (fun j -> Char.chr ((j + (31 * w) + (131 * b)) mod 251))

(* One world per variant: same seed, same offered traffic; only the
   array level and the server's write layer differ. *)
let run_variant cfg v =
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let segment =
    Segment.create eng ~seed:(cfg.seed lxor 0x3a7) ~metrics (Calib.segment_params Calib.Fddi)
  in
  let members =
    Array.init cfg.members (fun i ->
        Disk.create eng
          ~name:(Printf.sprintf "m%d" i)
          ~metrics
          (Disk.rz26 ~capacity:cfg.member_capacity ()))
  in
  let arr =
    Stripe.create_array eng ~name:"array" ~metrics ~level:v.level ~chunk:cfg.chunk members
  in
  let device = Stripe.device arr in
  let write_layer =
    if v.gather then
      { Write_layer.default_gathering with Write_layer.procrastinate = Calib.procrastinate Calib.Fddi }
    else Write_layer.standard
  in
  let sconfig = { Server.default_config with Server.nfsds = cfg.nfsds; write_layer } in
  let server = Server.make eng ~segment ~addr:"server" ~device ~metrics sconfig in

  let writers_done = ref 0 in
  let tick = Time.of_ms_f 5.0 in
  let rec wait_for pred = if not (pred ()) then begin Engine.delay tick; wait_for pred end in
  let writer w () =
    let sock = Socket.create segment ~addr:(Printf.sprintf "w%d" w) () in
    let rpc = Rpc_client.create eng ~sock ~server:"server" ~metrics () in
    let client = Client.create eng ~rpc ~biods:4 ~metrics () in
    let root = Server.root_fh server in
    let fh, _ = Client.create_file client root (Printf.sprintf "f%d" w) in
    let f = Client.open_file client fh in
    for b = 0 to cfg.blocks_per_writer - 1 do
      Client.write f ~off:(b * bs) (block w b)
    done;
    Client.close f;
    incr writers_done
  in

  let elapsed = ref 0 in
  let redundancy = ref None in
  Engine.spawn eng ~name:"driver" (fun () ->
      let t0 = Engine.now eng in
      for w = 0 to cfg.writers - 1 do
        Engine.spawn eng ~name:(Printf.sprintf "writer%d" w) (writer w)
      done;
      wait_for (fun () -> !writers_done = cfg.writers);
      elapsed := Engine.now eng - t0;

      (* Degraded service and online rebuild, straight at the array:
         read a spread of blocks healthy, fail a member, read them
         again (reconstructed or failed over), stream some writes into
         untouched space, then resilver the member and re-verify. *)
      if v.level <> Stripe.Raid0 then begin
        let submit = device.Device.submit in
        (* Stride coprime to the row width so the samples cycle through
           every member's data chunks, including the failed one. *)
        let sample i = i * 5 * cfg.chunk in
        let healthy =
          Array.init cfg.sample_blocks (fun i ->
              Io.blocking_read ~submit ~off:(sample i) ~len:bs)
        in
        Stripe.fail_member arr 1;
        let d0 = Engine.now eng in
        let degraded =
          Array.init cfg.sample_blocks (fun i ->
              Io.blocking_read ~submit ~off:(sample i) ~len:bs)
        in
        let read_mean_us =
          Time.to_sec_f (Engine.now eng - d0) *. 1e6 /. float_of_int cfg.sample_blocks
        in
        let wbase = device.Device.capacity / 2 in
        for k = 0 to cfg.degraded_write_blocks - 1 do
          Io.blocking_write ~submit ~class_:`Sync_write ~off:(wbase + (k * bs)) (block 99 k)
        done;
        Stripe.rebuild ~pace:cfg.rebuild_pace arr ~member:1;
        let r0 = Engine.now eng in
        wait_for (fun () -> not (Stripe.rebuild_active arr));
        let rebuild_ms = Time.to_ms_f (Engine.now eng - r0) in
        let rebuilt =
          Array.init cfg.sample_blocks (fun i ->
              Io.blocking_read ~submit ~off:(sample i) ~len:bs)
        in
        let reverified =
          Stripe.member_state arr 1 = Stripe.Active
          && Array.for_all2 Bytes.equal healthy degraded
          && Array.for_all2 Bytes.equal healthy rebuilt
        in
        let counter name =
          Option.value ~default:0 (Metrics.find_counter metrics ~ns:(Names.Ns.raid "array") name)
        in
        redundancy :=
          Some
            {
              degraded_read_blocks = cfg.sample_blocks;
              degraded_read_mean_us = read_mean_us;
              degraded_reads = counter Names.degraded_reads;
              degraded_writes = counter Names.degraded_writes;
              rebuild_ms;
              rebuild_chunks = counter Names.rebuild_chunks;
              rebuild_bytes = counter Names.rebuild_bytes;
              reverified;
            }
      end);
  Engine.run eng;
  let counter name =
    Option.value ~default:0 (Metrics.find_counter metrics ~ns:(Names.Ns.raid "array") name)
  in
  let stats =
    Array.fold_left
      (fun acc d -> Device.add_stats acc (d.Device.spindle_stats ()))
      Device.zero_stats members
  in
  let fsw = counter Names.full_stripe_writes and rmw = counter Names.rmw_writes in
  let written = cfg.writers * cfg.blocks_per_writer * bs in
  {
    variant = v;
    elapsed_ms = Time.to_ms_f !elapsed;
    written_kb_s =
      float_of_int written /. 1024.0 /. Time.to_sec_f (Stdlib.max 1 !elapsed);
    member_transactions = stats.Device.transactions;
    full_stripe_writes = fsw;
    rmw_writes = rmw;
    full_stripe_fraction =
      (if fsw + rmw = 0 then 0.0 else float_of_int fsw /. float_of_int (fsw + rmw));
    redundancy = !redundancy;
  }

let run ?(cfg = default) () = List.map (run_variant cfg) variants

let report ?quick:_ () =
  let rows = run () in
  let report =
    Report.create ~title:"Redundant arrays: RAID level x write gathering, 3 spindles"
      ~columns:(List.map (fun r -> label r.variant) rows)
  in
  let row name f = Report.add_row report name (List.map f rows) in
  row "streamed kb/s" (fun r -> r.written_kb_s);
  row "member transactions" (fun r -> float_of_int r.member_transactions);
  row "full-stripe writes" (fun r -> float_of_int r.full_stripe_writes);
  row "rmw writes" (fun r -> float_of_int r.rmw_writes);
  row "full-stripe fraction" (fun r -> r.full_stripe_fraction);
  row "degraded read mean (us)" (fun r ->
      match r.redundancy with Some d -> d.degraded_read_mean_us | None -> 0.0);
  row "rebuild (ms)" (fun r ->
      match r.redundancy with Some d -> d.rebuild_ms | None -> 0.0);
  report

(* {1 BENCH_raid.json}

   The committed artifact CI regenerates and diffs, like the other
   bench JSON files: one fixed workload, byte-deterministic output. *)

let bench_cfg = default

let bench_raid () =
  let rows = run ~cfg:bench_cfg () in
  let json_row r =
    Json.Obj
      [
        ("level", Json.String (Stripe.level_name r.variant.level));
        ("gather", Json.Bool r.variant.gather);
        ("elapsed_ms", Json.Float r.elapsed_ms);
        ("written_kb_s", Json.Float r.written_kb_s);
        ("member_transactions", Json.Int r.member_transactions);
        ("full_stripe_writes", Json.Int r.full_stripe_writes);
        ("rmw_writes", Json.Int r.rmw_writes);
        ("full_stripe_fraction", Json.Float r.full_stripe_fraction);
        ( "redundancy",
          match r.redundancy with
          | None -> Json.Null
          | Some d ->
              Json.Obj
                [
                  ("degraded_read_blocks", Json.Int d.degraded_read_blocks);
                  ("degraded_read_mean_us", Json.Float d.degraded_read_mean_us);
                  ("degraded_reads", Json.Int d.degraded_reads);
                  ("degraded_writes", Json.Int d.degraded_writes);
                  ("rebuild_ms", Json.Float d.rebuild_ms);
                  ("rebuild_chunks", Json.Int d.rebuild_chunks);
                  ("rebuild_bytes", Json.Int d.rebuild_bytes);
                  ("reverified", Json.Bool d.reverified);
                ] );
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "nfsgather-bench/1");
      ("bench", Json.String "raid");
      ( "workload",
        Json.Obj
          [
            ("net", Json.String "fddi");
            ("members", Json.Int bench_cfg.members);
            ("member_capacity", Json.Int bench_cfg.member_capacity);
            ("chunk", Json.Int bench_cfg.chunk);
            ("writers", Json.Int bench_cfg.writers);
            ("blocks_per_writer", Json.Int bench_cfg.blocks_per_writer);
            ("nfsds", Json.Int bench_cfg.nfsds);
            ("seed", Json.Int bench_cfg.seed);
          ] );
      ("rows", Json.List (List.map json_row rows));
    ]
