(** Experiment rig: a fresh simulated world per measurement — segment,
    device stack (raw disk, optional stripe set, optional Prestoserve),
    server, and any number of client hosts. *)

type spec = {
  net : Calib.net;
  accel : bool;  (** Prestoserve NVRAM in front of the device *)
  spindles : int;  (** 1, or n for an n-drive stripe set *)
  volumes : int;
      (** exports served; each volume gets its own device stack
          ([spindles] disks, optional stripe/Presto). 1 = the classic
          single-volume rig via [Server.make]; >1 goes through
          [Server.make_exports] with exports "/export0".."/exportN" *)
  nfsds : int;
  gathering : bool;
  trace : bool;
  cache_blocks : int option;
      (** server buffer-cache bound, to force read misses under LADDIS
          working sets; [None] = unbounded *)
  readahead : Nfsg_ufs.Buffer_cache.readahead option;
      (** sequential prefetch policy armed in every volume's buffer
          cache; [None] = read-ahead off (the historical behaviour) *)
  disk_scheduler : Nfsg_disk.Disk.scheduler;
  write_layer_overrides : Nfsg_core.Write_layer.config -> Nfsg_core.Write_layer.config;
      (** applied after the mode/procrastination defaults; identity for
          most experiments, used by the ablations *)
}

val default_spec : spec
(** FDDI, no accel, 1 spindle, 1 volume, 8 nfsds, gathering, no
    trace. *)

type t = {
  eng : Nfsg_sim.Engine.t;
  segment : Nfsg_net.Segment.t;
  disks : Nfsg_disk.Device.t array;
  device : Nfsg_disk.Device.t;
  server : Nfsg_core.Server.t;
  trace : Nfsg_stats.Trace.t option;
  metrics : Nfsg_stats.Metrics.t;
}

val make : spec -> t
(** Every layer of the world registers its instruments in [metrics]: a
    fresh registry per rig, unless {!set_metrics_sink} installed a
    shared one. *)

val metrics : t -> Nfsg_stats.Metrics.t

val set_metrics_sink : Nfsg_stats.Metrics.t option -> unit
(** Install (or clear) a process-wide registry that every subsequent
    {!make} reports into instead of a private one — how [--metrics-json]
    collects an experiment's instruments across the many worlds it
    builds. Instruments accumulate across worlds by find-or-create. *)

val metrics_sink : unit -> Nfsg_stats.Metrics.t option
(** The currently installed shared sink, if any — lets an experiment
    that needs per-world isolation (e.g. the writegather bench rows)
    save, clear and restore it. *)

val set_scheduler_override : Nfsg_disk.Disk.scheduler option -> unit
(** Install (or clear) a process-wide I/O scheduler that every
    subsequent {!make} uses for its spindles in place of the spec's
    [disk_scheduler] — how the nfsgather [--scheduler] flag reruns any
    experiment under Fifo, Elevator or Deadline. *)

val set_raid_level_override : Nfsg_disk.Stripe.level option -> unit
(** Install (or clear) a process-wide RAID level for every subsequent
    multi-spindle {!make} — how the nfsgather [--raid-level] flag
    reruns any striped experiment over a RAID-1 or RAID-5 array
    instead of the plain RAID-0 stripe set. Specs with one spindle are
    unaffected; the level must fit the spindle count (RAID-1 needs 2
    members, RAID-5 needs 3). *)

val set_monitor_interval : Nfsg_sim.Time.t option -> unit
(** Install (or clear) a process-wide nfsmon interval: every subsequent
    {!run} drives a {!Nfsg_stats.Monitor} over the rig's registry for
    the duration of the driven load — how the nfsgather
    [--monitor-interval] flag watches any experiment live. *)

val set_monitor_emit : (string -> unit) option -> unit
(** Where each monitor interval's rendered chunk goes (the owning
    binary's stdout, typically). The rig itself never prints. *)

val set_long_op_threshold : Nfsg_sim.Time.t option -> unit
(** Install (or clear) a process-wide long-op threshold armed in every
    subsequent {!make}'s server: ops slower end-to-end than this leave
    a journey record in the server's long-op ring. *)

val new_client :
  t -> ?biods:int -> ?protocol:Nfsg_nfs.Client.protocol -> string -> Nfsg_nfs.Client.t
(** Attach a client host with the given address to the segment. *)

val root : t -> Nfsg_nfs.Proto.fh
(** Root filehandle of the first (or only) volume. *)

val roots : t -> Nfsg_nfs.Proto.fh list
(** Per-volume root filehandles, fsid order. *)

val run : t -> (unit -> 'a) -> 'a
(** Run [f] as the driver process and drain the simulation. *)

val spindle_stats : t -> Nfsg_disk.Device.stats
(** Aggregate over the raw spindles. *)

type window = {
  elapsed : Nfsg_sim.Time.t;
  cpu_pct : float;
  disk_kb_s : float;
  disk_trans_s : float;
}

val measure : t -> (unit -> 'a) -> 'a * window
(** Snapshot CPU and spindle counters around [f] (which must be called
    from inside a driver process — compose with {!run}). *)
