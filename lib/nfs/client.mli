(** NFS v2 client model: an 8 KB block cache with write-behind through
    a pool of biod daemons (paper section 4.1).

    A client process writing a file fills 8 KB cache blocks; each time
    a block is complete "it needs to go to the wire": it is handed to
    a free biod, which performs the WRITE RPC asynchronously while the
    application keeps running. If every biod is busy, the application
    process itself blocks doing the RPC — the natural flow control the
    paper describes. [close] implements sync-on-close: it flushes the
    partial tail block and waits for every outstanding write, raising
    any asynchronous error (the ENOSPC-capture semantic). *)

exception Error of Proto.status

exception Verifier_changed
(** An NFSv3 COMMIT (or write) returned a different write verifier than
    earlier writes saw: the server rebooted and uncommitted data may be
    lost; the application must rewrite. *)

type protocol = V2 | V3
(** V2: every WRITE is stable-on-reply (RFC 1094). V3: writes go out
    UNSTABLE and {!close} issues a COMMIT — the paper's Future Work
    environment. *)

type t

val create :
  Nfsg_sim.Engine.t ->
  rpc:Nfsg_rpc.Rpc_client.t ->
  ?biods:int ->
  ?block_size:int ->
  ?protocol:protocol ->
  ?metrics:Nfsg_stats.Metrics.t ->
  unit ->
  t
(** [biods] defaults to 4 (a typical workstation); 0 means a fully
    synchronous, "dumb PC" client. [block_size] defaults to 8192.
    [protocol] defaults to {!V2}. *)

val biod_count : t -> int

val mount : t -> string -> Proto.fh
(** Resolve an export name (e.g. ["/export0"]) to its root filehandle
    via the server's mini MOUNT service. Raises [Error NFSERR_NOENT]
    for an unknown export. *)

val mount_flags : t -> string -> Proto.fh * bool
(** Like {!mount}, also returning the export's advertised read-only
    flag — what a diskless client checks before trying to write its
    root. *)

(** {1 File I/O} *)

type file

val open_file : t -> Proto.fh -> file

val write : file -> off:int -> Bytes.t -> unit
(** Buffered write-behind. Sequential writes coalesce into whole
    blocks; a non-contiguous write flushes the current block first. *)

val flush : file -> unit
(** Push the partial current block to the wire (without waiting for
    outstanding replies). *)

val close : file -> unit
(** Sync-on-close: flush, wait for all outstanding writes, raise
    {!Error} if any write failed asynchronously. A {!V3} client then
    issues COMMIT for the written range and raises {!Verifier_changed}
    if the server's write verifier moved under it. *)

val commit : file -> unit
(** Explicit NFSv3 COMMIT of everything written so far through this
    handle (no-op for a {!V2} client or an unwritten file). *)

val read : t -> Proto.fh -> off:int -> len:int -> Bytes.t
(** Synchronous READ in <= 8 KB wire chunks; short at EOF. *)

(** {1 Name and attribute operations}

    Thin RPC wrappers; all raise {!Error} on a non-OK status. *)

val getattr : t -> Proto.fh -> Proto.fattr
val setattr : t -> Proto.fh -> Proto.sattr -> Proto.fattr
val lookup : t -> Proto.fh -> string -> Proto.fh * Proto.fattr
val create_file : t -> Proto.fh -> string -> Proto.fh * Proto.fattr
val remove : t -> Proto.fh -> string -> unit
val rename : t -> from_dir:Proto.fh -> from_name:string -> to_dir:Proto.fh -> to_name:string -> unit
val mkdir : t -> Proto.fh -> string -> Proto.fh * Proto.fattr
val rmdir : t -> Proto.fh -> string -> unit
val readdir : t -> Proto.fh -> (string * int) list
val symlink : t -> Proto.fh -> string -> target:string -> Proto.fh * Proto.fattr
val readlink : t -> Proto.fh -> string
val statfs : t -> Proto.fh -> Proto.statfs_ok
val null_ping : t -> unit

(** {1 Statistics} *)

val commits_sent : t -> int
val wire_writes : t -> int
(** WRITE RPCs issued (not counting RPC-level retransmissions). *)

val bytes_written : t -> int
val last_write_mtimes : t -> int list
(** mtimes (ns) returned by the most recent [close]'s write replies,
    oldest first — lets tests verify that gathered writes share one
    modify time. *)
