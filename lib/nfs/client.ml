open Nfsg_sim
module Rpc = Nfsg_rpc.Rpc
module Rpc_client = Nfsg_rpc.Rpc_client
module Xdr = Nfsg_rpc.Xdr
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names

exception Error of Proto.status
exception Verifier_changed

type protocol = V2 | V3

type t = {
  eng : Engine.t;
  rpc : Rpc_client.t;
  biods : Semaphore.t;
  nbiods : int;
  block_size : int;
  protocol : protocol;
  metrics : Metrics.t;
  mutable wire_writes : int;
  mutable commits : int;
  mutable bytes_written : int;
  mutable mtimes : int list;  (** newest first *)
}

let biod_count t = t.nbiods
let wire_writes t = t.wire_writes
let commits_sent t = t.commits
let bytes_written t = t.bytes_written
let last_write_mtimes t = List.rev t.mtimes

let create eng ~rpc ?(biods = 4) ?(block_size = 8192) ?(protocol = V2) ?metrics () =
  if biods < 0 then invalid_arg "Client.create: negative biod count";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  {
    eng;
    rpc;
    biods = Semaphore.create ~name:"biods" biods;
    nbiods = biods;
    block_size;
    protocol;
    metrics;
    wire_writes = 0;
    commits = 0;
    bytes_written = 0;
    mtimes = [];
  }

(* {1 RPC plumbing} *)

let do_call t ~klass args =
  let proc = Proto.proc_of_args args in
  (* Per-procedure completion latency, as the application sees it:
     includes every retransmission and RTO wait inside the call. *)
  let h =
    Metrics.histogram t.metrics ~ns:Names.Ns.nfs_client (Names.lat_us (Proto.proc_name proc))
  in
  Metrics.span t.eng h (fun () ->
      let stat, body = Rpc_client.call t.rpc ~klass ~proc (Proto.encode_args args) in
      if stat <> Rpc.Success then raise (Error Proto.NFSERR_IO);
      Proto.decode_res ~proc body)

let attr_result = function
  | Proto.RAttr (Ok a) -> a
  | Proto.RAttr (Error st) -> raise (Error st)
  | _ -> raise (Error Proto.NFSERR_IO)

let dirop_result = function
  | Proto.RDirop (Ok (fh, a)) -> (fh, a)
  | Proto.RDirop (Error st) -> raise (Error st)
  | _ -> raise (Error Proto.NFSERR_IO)

let status_result = function
  | Proto.RStatus Proto.NFS_OK -> ()
  | Proto.RStatus st -> raise (Error st)
  | _ -> raise (Error Proto.NFSERR_IO)

let getattr t fh = attr_result (do_call t ~klass:Rpc_client.Light (Proto.Getattr fh))
let setattr t fh sattr = attr_result (do_call t ~klass:Rpc_client.Light (Proto.Setattr (fh, sattr)))
let lookup t fh name = dirop_result (do_call t ~klass:Rpc_client.Light (Proto.Lookup (fh, name)))

let create_file t dir name =
  dirop_result
    (do_call t ~klass:Rpc_client.Middle (Proto.Create { dir; name; sattr = Proto.sattr_none }))

let remove t dir name = status_result (do_call t ~klass:Rpc_client.Middle (Proto.Remove { dir; name }))

let rename t ~from_dir ~from_name ~to_dir ~to_name =
  status_result
    (do_call t ~klass:Rpc_client.Middle (Proto.Rename { from_dir; from_name; to_dir; to_name }))

let mkdir t dir name =
  dirop_result
    (do_call t ~klass:Rpc_client.Middle (Proto.Mkdir { dir; name; sattr = Proto.sattr_none }))

let rmdir t dir name = status_result (do_call t ~klass:Rpc_client.Middle (Proto.Rmdir { dir; name }))

let readdir t fh =
  match do_call t ~klass:Rpc_client.Light (Proto.Readdir { fh; cookie = 0; count = 8192 }) with
  | Proto.RReaddir (Ok (entries, _eof)) -> entries
  | Proto.RReaddir (Error st) -> raise (Error st)
  | _ -> raise (Error Proto.NFSERR_IO)

let symlink t dir name ~target =
  dirop_result
    (do_call t ~klass:Rpc_client.Middle
       (Proto.Symlink { dir; name; target; sattr = Proto.sattr_none }))

let readlink t fh =
  match do_call t ~klass:Rpc_client.Light (Proto.Readlink fh) with
  | Proto.RReadlink (Ok target) -> target
  | Proto.RReadlink (Error st) -> raise (Error st)
  | _ -> raise (Error Proto.NFSERR_IO)

let statfs t fh =
  match do_call t ~klass:Rpc_client.Light (Proto.Statfs fh) with
  | Proto.RStatfs (Ok s) -> s
  | Proto.RStatfs (Error st) -> raise (Error st)
  | _ -> raise (Error Proto.NFSERR_IO)

let null_ping t =
  match do_call t ~klass:Rpc_client.Light Proto.Null with
  | Proto.RNull -> ()
  | _ -> raise (Error Proto.NFSERR_IO)

(* {1 Mounting} *)

let mount_flags t name =
  let stat, body =
    Rpc_client.call t.rpc ~klass:Rpc_client.Light ~prog:Rpc.mount_program
      ~proc:Proto.proc_mnt (Proto.encode_mnt_args name)
  in
  if stat <> Rpc.Success then raise (Error Proto.NFSERR_IO);
  match Proto.decode_mnt_res body with
  | Ok (fh, read_only) -> (fh, read_only)
  | Error st -> raise (Error st)

let mount t name = fst (mount_flags t name)

(* {1 Write-behind file I/O} *)

type file = {
  client : t;
  fh : Proto.fh;
  mutable buf : Bytes.t;
  mutable buf_base : int;  (** file offset of the cache block, -1 = empty *)
  mutable buf_len : int;  (** valid bytes from the block start *)
  mutable outstanding : int;
  done_cond : Condition.t;
  mutable async_error : Proto.status option;
  mutable verf : int option;  (** v3: verifier seen on this handle's writes *)
  mutable verf_moved : bool;
  mutable dirty_lo : int;  (** v3: uncommitted byte range *)
  mutable dirty_hi : int;
}

let open_file t fh =
  {
    client = t;
    fh;
    buf = Bytes.create t.block_size;
    buf_base = -1;
    buf_len = 0;
    outstanding = 0;
    done_cond = Condition.create ();
    async_error = None;
    verf = None;
    verf_moved = false;
    dirty_lo = max_int;
    dirty_hi = 0;
  }

(* v3 bookkeeping: if the verifier moves between replies, the server
   rebooted while we held unstable data. *)
let note_verf f verf =
  match f.verf with
  | None -> f.verf <- Some verf
  | Some v -> if v <> verf then f.verf_moved <- true

let do_write_rpc f ~off data =
  let t = f.client in
  t.wire_writes <- t.wire_writes + 1;
  t.bytes_written <- t.bytes_written + Bytes.length data;
  match t.protocol with
  | V2 -> (
      match
        do_call t ~klass:Rpc_client.Heavy (Proto.Write { fh = f.fh; offset = off; data = Xdr.view_of_bytes data })
      with
      | res -> (
          match res with
          | Proto.RAttr (Ok a) -> t.mtimes <- Proto.ns_of_timeval a.Proto.mtime :: t.mtimes
          | Proto.RAttr (Error st) -> f.async_error <- Some st
          | _ -> f.async_error <- Some Proto.NFSERR_IO)
      | exception Error st -> f.async_error <- Some st)
  | V3 -> (
      f.dirty_lo <- Stdlib.min f.dirty_lo off;
      f.dirty_hi <- Stdlib.max f.dirty_hi (off + Bytes.length data);
      match
        do_call t ~klass:Rpc_client.Heavy
          (Proto.Write3 { fh = f.fh; offset = off; stable = Proto.Unstable; data = Xdr.view_of_bytes data })
      with
      | res -> (
          match res with
          | Proto.RWrite3 (Ok (a, _how, verf)) ->
              note_verf f verf;
              t.mtimes <- Proto.ns_of_timeval a.Proto.mtime :: t.mtimes
          | Proto.RWrite3 (Error st) -> f.async_error <- Some st
          | _ -> f.async_error <- Some Proto.NFSERR_IO)
      | exception Error st -> f.async_error <- Some st)

let commit f =
  let t = f.client in
  if t.protocol = V3 && f.dirty_lo < f.dirty_hi then begin
    t.commits <- t.commits + 1;
    let offset = f.dirty_lo and count = f.dirty_hi - f.dirty_lo in
    (match do_call t ~klass:Rpc_client.Heavy (Proto.Commit { fh = f.fh; offset; count }) with
    | Proto.RCommit (Ok (_a, verf)) -> note_verf f verf
    | Proto.RCommit (Error st) -> raise (Error st)
    | _ -> raise (Error Proto.NFSERR_IO));
    f.dirty_lo <- max_int;
    f.dirty_hi <- 0;
    if f.verf_moved then begin
      f.verf_moved <- false;
      raise Verifier_changed
    end
  end

(* A full or final cache block "needs to go to the wire": hand it to a
   biod if one is free, otherwise the application does the RPC itself
   and thereby blocks — the client-side flow control of section 4.1. *)
let wire_write f ~off data =
  let t = f.client in
  if Semaphore.try_acquire t.biods then begin
    f.outstanding <- f.outstanding + 1;
    Engine.spawn t.eng ~name:"biod" (fun () ->
        do_write_rpc f ~off data;
        Semaphore.release t.biods;
        f.outstanding <- f.outstanding - 1;
        if f.outstanding = 0 then Condition.broadcast f.done_cond)
  end
  else begin
    (* All biods busy: the application performs the RPC itself. Yield
       first so biod tasks spawned earlier in this instant transmit
       before us — their blocks were generated first, and FIFO reply
       order then unblocks us last, exactly the traffic cycle of the
       paper's case study. *)
    Engine.yield ();
    do_write_rpc f ~off data
  end

let flush f =
  if f.buf_base >= 0 && f.buf_len > 0 then begin
    let data = Bytes.sub f.buf 0 f.buf_len in
    let off = f.buf_base in
    f.buf_base <- -1;
    f.buf_len <- 0;
    wire_write f ~off data
  end
  else begin
    f.buf_base <- -1;
    f.buf_len <- 0
  end

let write f ~off data =
  let bs = f.client.block_size in
  let len = Bytes.length data in
  let pos = ref off in
  while !pos < off + len do
    let block_base = !pos - (!pos mod bs) in
    (* A write outside the current block, or non-contiguous within it,
       pushes the current block out first. *)
    if f.buf_base >= 0 && (block_base <> f.buf_base || !pos <> f.buf_base + f.buf_len) then
      flush f;
    if f.buf_base < 0 then begin
      if !pos mod bs <> 0 then begin
        (* Partial block start: model it as starting the cache block at
           the write position (no read-modify-write traffic). *)
        f.buf_base <- !pos;
        f.buf_len <- 0
      end
      else begin
        f.buf_base <- block_base;
        f.buf_len <- 0
      end
    end;
    let block_end = f.buf_base + bs - (f.buf_base mod bs) in
    let block_end = if block_end = f.buf_base then f.buf_base + bs else block_end in
    let chunk = Stdlib.min (block_end - !pos) (off + len - !pos) in
    Bytes.blit data (!pos - off) f.buf f.buf_len chunk;
    f.buf_len <- f.buf_len + chunk;
    pos := !pos + chunk;
    if f.buf_base + f.buf_len >= block_end then flush f
  done

let close f =
  flush f;
  while f.outstanding > 0 do
    Condition.wait f.done_cond
  done;
  (match f.async_error with
  | Some st ->
      f.async_error <- None;
      raise (Error st)
  | None -> ());
  commit f;
  if f.verf_moved then begin
    f.verf_moved <- false;
    raise Verifier_changed
  end

let read t fh ~off ~len =
  let out = Buffer.create len in
  let pos = ref off in
  let eof = ref false in
  while (not !eof) && !pos < off + len do
    let chunk = Stdlib.min t.block_size (off + len - !pos) in
    match do_call t ~klass:Rpc_client.Middle (Proto.Read { fh; offset = !pos; count = chunk }) with
    | Proto.RRead (Ok (_a, data)) ->
        Buffer.add_bytes out data;
        pos := !pos + Bytes.length data;
        if Bytes.length data < chunk then eof := true
    | Proto.RRead (Error st) -> raise (Error st)
    | _ -> raise (Error Proto.NFSERR_IO)
  done;
  Buffer.to_bytes out
