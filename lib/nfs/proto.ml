open Nfsg_rpc

type fh = { fsid : int; vgen : int; inum : int; gen : int }

let fh_bytes = 32

type ftype = NFNON | NFREG | NFDIR | NFLNK

type timeval = { sec : int; usec : int }

let timeval_of_ns ns = { sec = ns / 1_000_000_000; usec = ns mod 1_000_000_000 / 1_000 }
let ns_of_timeval tv = (tv.sec * 1_000_000_000) + (tv.usec * 1_000)

type fattr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  blocksize : int;
  rdev : int;
  blocks : int;
  fsid : int;
  fileid : int;
  atime : timeval;
  mtime : timeval;
  ctime : timeval;
}

type sattr = {
  s_mode : int;
  s_uid : int;
  s_gid : int;
  s_size : int;
  s_atime : timeval option;
  s_mtime : timeval option;
}

let sattr_none =
  { s_mode = -1; s_uid = -1; s_gid = -1; s_size = -1; s_atime = None; s_mtime = None }

let sattr_truncate size = { sattr_none with s_size = size }

type status =
  | NFS_OK
  | NFSERR_PERM
  | NFSERR_NOENT
  | NFSERR_IO
  | NFSERR_EXIST
  | NFSERR_NOTDIR
  | NFSERR_ISDIR
  | NFSERR_FBIG
  | NFSERR_NOSPC
  | NFSERR_ROFS
  | NFSERR_NOTEMPTY
  | NFSERR_STALE
  | NFSERR_XDEV

let status_to_int = function
  | NFS_OK -> 0
  | NFSERR_PERM -> 1
  | NFSERR_NOENT -> 2
  | NFSERR_IO -> 5
  | NFSERR_EXIST -> 17
  | NFSERR_XDEV -> 18
  | NFSERR_NOTDIR -> 20
  | NFSERR_ISDIR -> 21
  | NFSERR_FBIG -> 27
  | NFSERR_NOSPC -> 28
  | NFSERR_ROFS -> 30
  | NFSERR_NOTEMPTY -> 66
  | NFSERR_STALE -> 70

let status_of_int = function
  | 0 -> NFS_OK
  | 1 -> NFSERR_PERM
  | 2 -> NFSERR_NOENT
  | 5 -> NFSERR_IO
  | 17 -> NFSERR_EXIST
  | 18 -> NFSERR_XDEV
  | 20 -> NFSERR_NOTDIR
  | 21 -> NFSERR_ISDIR
  | 27 -> NFSERR_FBIG
  | 28 -> NFSERR_NOSPC
  | 30 -> NFSERR_ROFS
  | 66 -> NFSERR_NOTEMPTY
  | 70 -> NFSERR_STALE
  | n -> raise (Xdr.Dec.Error (Printf.sprintf "bad NFS status %d" n))

let string_of_status = function
  | NFS_OK -> "NFS_OK"
  | NFSERR_PERM -> "NFSERR_PERM"
  | NFSERR_NOENT -> "NFSERR_NOENT"
  | NFSERR_IO -> "NFSERR_IO"
  | NFSERR_EXIST -> "NFSERR_EXIST"
  | NFSERR_XDEV -> "NFSERR_XDEV"
  | NFSERR_NOTDIR -> "NFSERR_NOTDIR"
  | NFSERR_ISDIR -> "NFSERR_ISDIR"
  | NFSERR_FBIG -> "NFSERR_FBIG"
  | NFSERR_NOSPC -> "NFSERR_NOSPC"
  | NFSERR_ROFS -> "NFSERR_ROFS"
  | NFSERR_NOTEMPTY -> "NFSERR_NOTEMPTY"
  | NFSERR_STALE -> "NFSERR_STALE"

let proc_null = 0
let proc_getattr = 1
let proc_setattr = 2
let proc_lookup = 4
let proc_read = 6
let proc_write = 8
let proc_create = 9
let proc_remove = 10
let proc_rename = 11
let proc_mkdir = 14
let proc_rmdir = 15
let proc_readlink = 5
let proc_symlink = 13
let proc_readdir = 16
let proc_statfs = 17

(* NFSv3 additions: we reuse the v3 procedure numbers that do not
   collide with the v2 table (v2 procedure 7 was the unused
   WRITECACHE; 21 is beyond the v2 table). *)
let proc_write3 = 7
let proc_commit = 21

let proc_name = function
  | 0 -> "NULL"
  | 1 -> "GETATTR"
  | 2 -> "SETATTR"
  | 4 -> "LOOKUP"
  | 6 -> "READ"
  | 8 -> "WRITE"
  | 9 -> "CREATE"
  | 10 -> "REMOVE"
  | 11 -> "RENAME"
  | 14 -> "MKDIR"
  | 15 -> "RMDIR"
  | 5 -> "READLINK"
  | 13 -> "SYMLINK"
  | 16 -> "READDIR"
  | 17 -> "STATFS"
  | 7 -> "WRITE3"
  | 21 -> "COMMIT"
  | n -> Printf.sprintf "PROC%d" n

(* {1 Primitive XDR pieces} *)

(* The 32-byte opaque handle is server-private; our layout spends the
   first four words on (volume id, volume generation, inode, inode
   generation) so dispatch can route and detect staleness at every
   level of the identity. *)
let put_fh enc (fh : fh) =
  let b = Bytes.make fh_bytes '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int fh.fsid);
  Bytes.set_int32_be b 4 (Int32.of_int fh.vgen);
  Bytes.set_int32_be b 8 (Int32.of_int fh.inum);
  Bytes.set_int32_be b 12 (Int32.of_int fh.gen);
  Xdr.Enc.opaque_fixed enc b

let get_fh dec =
  let b = Xdr.Dec.opaque_fixed dec fh_bytes in
  {
    fsid = Int32.to_int (Bytes.get_int32_be b 0);
    vgen = Int32.to_int (Bytes.get_int32_be b 4);
    inum = Int32.to_int (Bytes.get_int32_be b 8);
    gen = Int32.to_int (Bytes.get_int32_be b 12);
  }

let put_timeval enc tv =
  Xdr.Enc.uint32 enc tv.sec;
  Xdr.Enc.uint32 enc tv.usec

let get_timeval dec =
  let sec = Xdr.Dec.uint32 dec in
  let usec = Xdr.Dec.uint32 dec in
  { sec; usec }

let ftype_to_int = function NFNON -> 0 | NFREG -> 1 | NFDIR -> 2 | NFLNK -> 5

let ftype_of_int = function
  | 0 -> NFNON
  | 1 -> NFREG
  | 2 -> NFDIR
  | 5 -> NFLNK
  | n -> raise (Xdr.Dec.Error (Printf.sprintf "bad ftype %d" n))

let put_fattr enc a =
  Xdr.Enc.enum enc (ftype_to_int a.ftype);
  Xdr.Enc.uint32 enc a.mode;
  Xdr.Enc.uint32 enc a.nlink;
  Xdr.Enc.uint32 enc a.uid;
  Xdr.Enc.uint32 enc a.gid;
  Xdr.Enc.uint32 enc a.size;
  Xdr.Enc.uint32 enc a.blocksize;
  Xdr.Enc.uint32 enc a.rdev;
  Xdr.Enc.uint32 enc a.blocks;
  Xdr.Enc.uint32 enc a.fsid;
  Xdr.Enc.uint32 enc a.fileid;
  put_timeval enc a.atime;
  put_timeval enc a.mtime;
  put_timeval enc a.ctime

let get_fattr dec =
  let ftype = ftype_of_int (Xdr.Dec.enum dec) in
  let mode = Xdr.Dec.uint32 dec in
  let nlink = Xdr.Dec.uint32 dec in
  let uid = Xdr.Dec.uint32 dec in
  let gid = Xdr.Dec.uint32 dec in
  let size = Xdr.Dec.uint32 dec in
  let blocksize = Xdr.Dec.uint32 dec in
  let rdev = Xdr.Dec.uint32 dec in
  let blocks = Xdr.Dec.uint32 dec in
  let fsid = Xdr.Dec.uint32 dec in
  let fileid = Xdr.Dec.uint32 dec in
  let atime = get_timeval dec in
  let mtime = get_timeval dec in
  let ctime = get_timeval dec in
  { ftype; mode; nlink; uid; gid; size; blocksize; rdev; blocks; fsid; fileid; atime; mtime; ctime }

(* RFC 1094 encodes "don't set" as 0xffffffff. *)
let put_sattr enc s =
  let u32_or_neg v = if v < 0 then 0xFFFFFFFF else v in
  Xdr.Enc.uint32 enc (u32_or_neg s.s_mode);
  Xdr.Enc.uint32 enc (u32_or_neg s.s_uid);
  Xdr.Enc.uint32 enc (u32_or_neg s.s_gid);
  Xdr.Enc.uint32 enc (u32_or_neg s.s_size);
  (match s.s_atime with
  | Some tv -> put_timeval enc tv
  | None -> put_timeval enc { sec = 0xFFFFFFFF; usec = 0xFFFFFFFF });
  match s.s_mtime with
  | Some tv -> put_timeval enc tv
  | None -> put_timeval enc { sec = 0xFFFFFFFF; usec = 0xFFFFFFFF }

let get_sattr dec =
  let neg_or v = if v = 0xFFFFFFFF then -1 else v in
  let s_mode = neg_or (Xdr.Dec.uint32 dec) in
  let s_uid = neg_or (Xdr.Dec.uint32 dec) in
  let s_gid = neg_or (Xdr.Dec.uint32 dec) in
  let s_size = neg_or (Xdr.Dec.uint32 dec) in
  let tv_opt () =
    let tv = get_timeval dec in
    if tv.sec = 0xFFFFFFFF then None else Some tv
  in
  let s_atime = tv_opt () in
  let s_mtime = tv_opt () in
  { s_mode; s_uid; s_gid; s_size; s_atime; s_mtime }

(* {1 Arguments} *)

type stable_how = Unstable | Data_sync | File_sync

let stable_to_int = function Unstable -> 0 | Data_sync -> 1 | File_sync -> 2

let stable_of_int = function
  | 0 -> Unstable
  | 1 -> Data_sync
  | 2 -> File_sync
  | n -> raise (Xdr.Dec.Error (Printf.sprintf "bad stable_how %d" n))

type args =
  | Null
  | Getattr of fh
  | Setattr of fh * sattr
  | Lookup of fh * string
  | Read of { fh : fh; offset : int; count : int }
  | Write of { fh : fh; offset : int; data : Xdr.view }
  | Create of { dir : fh; name : string; sattr : sattr }
  | Remove of { dir : fh; name : string }
  | Rename of { from_dir : fh; from_name : string; to_dir : fh; to_name : string }
  | Mkdir of { dir : fh; name : string; sattr : sattr }
  | Rmdir of { dir : fh; name : string }
  | Readdir of { fh : fh; cookie : int; count : int }
  | Statfs of fh
  | Readlink of fh
  | Symlink of { dir : fh; name : string; target : string; sattr : sattr }
  | Write3 of { fh : fh; offset : int; stable : stable_how; data : Xdr.view }
  | Commit of { fh : fh; offset : int; count : int }

let proc_of_args = function
  | Null -> proc_null
  | Getattr _ -> proc_getattr
  | Setattr _ -> proc_setattr
  | Lookup _ -> proc_lookup
  | Read _ -> proc_read
  | Write _ -> proc_write
  | Create _ -> proc_create
  | Remove _ -> proc_remove
  | Rename _ -> proc_rename
  | Mkdir _ -> proc_mkdir
  | Rmdir _ -> proc_rmdir
  | Readdir _ -> proc_readdir
  | Statfs _ -> proc_statfs
  | Readlink _ -> proc_readlink
  | Symlink _ -> proc_symlink
  | Write3 _ -> proc_write3
  | Commit _ -> proc_commit

let encode_args args =
  let enc = Xdr.Enc.create () in
  (match args with
  | Null -> ()
  | Getattr fh | Statfs fh | Readlink fh -> put_fh enc fh
  | Symlink { dir; name; target; sattr } ->
      put_fh enc dir;
      Xdr.Enc.string enc name;
      Xdr.Enc.string enc target;
      put_sattr enc sattr
  | Setattr (fh, sattr) ->
      put_fh enc fh;
      put_sattr enc sattr
  | Lookup (fh, name) ->
      put_fh enc fh;
      Xdr.Enc.string enc name
  | Read { fh; offset; count } ->
      put_fh enc fh;
      Xdr.Enc.uint32 enc offset;
      Xdr.Enc.uint32 enc count;
      (* totalcount, unused per RFC *)
      Xdr.Enc.uint32 enc 0
  | Write { fh; offset; data } ->
      put_fh enc fh;
      (* beginoffset, unused *)
      Xdr.Enc.uint32 enc 0;
      Xdr.Enc.uint32 enc offset;
      (* totalcount, unused *)
      Xdr.Enc.uint32 enc 0;
      Xdr.Enc.opaque_view enc data
  | Create { dir; name; sattr } | Mkdir { dir; name; sattr } ->
      put_fh enc dir;
      Xdr.Enc.string enc name;
      put_sattr enc sattr
  | Remove { dir; name } | Rmdir { dir; name } ->
      put_fh enc dir;
      Xdr.Enc.string enc name
  | Rename { from_dir; from_name; to_dir; to_name } ->
      put_fh enc from_dir;
      Xdr.Enc.string enc from_name;
      put_fh enc to_dir;
      Xdr.Enc.string enc to_name
  | Readdir { fh; cookie; count } ->
      put_fh enc fh;
      Xdr.Enc.uint32 enc cookie;
      Xdr.Enc.uint32 enc count
  | Write3 { fh; offset; stable; data } ->
      put_fh enc fh;
      Xdr.Enc.uint64 enc offset;
      Xdr.Enc.uint32 enc (Xdr.view_length data);
      Xdr.Enc.enum enc (stable_to_int stable);
      Xdr.Enc.opaque_view enc data
  | Commit { fh; offset; count } ->
      put_fh enc fh;
      Xdr.Enc.uint64 enc offset;
      Xdr.Enc.uint32 enc count);
  Xdr.Enc.to_bytes enc

let decode_args ~proc body =
  let dec = Xdr.Dec.of_view body in
  if proc = proc_null then Null
  else if proc = proc_getattr then Getattr (get_fh dec)
  else if proc = proc_setattr then begin
    let fh = get_fh dec in
    Setattr (fh, get_sattr dec)
  end
  else if proc = proc_lookup then begin
    let fh = get_fh dec in
    Lookup (fh, Xdr.Dec.string dec)
  end
  else if proc = proc_read then begin
    let fh = get_fh dec in
    let offset = Xdr.Dec.uint32 dec in
    let count = Xdr.Dec.uint32 dec in
    let _total = Xdr.Dec.uint32 dec in
    Read { fh; offset; count }
  end
  else if proc = proc_write then begin
    let fh = get_fh dec in
    let _begin = Xdr.Dec.uint32 dec in
    let offset = Xdr.Dec.uint32 dec in
    let _total = Xdr.Dec.uint32 dec in
    Write { fh; offset; data = Xdr.Dec.opaque_view dec }
  end
  else if proc = proc_create || proc = proc_mkdir then begin
    let dir = get_fh dec in
    let name = Xdr.Dec.string dec in
    let sattr = get_sattr dec in
    if proc = proc_create then Create { dir; name; sattr } else Mkdir { dir; name; sattr }
  end
  else if proc = proc_remove || proc = proc_rmdir then begin
    let dir = get_fh dec in
    let name = Xdr.Dec.string dec in
    if proc = proc_remove then Remove { dir; name } else Rmdir { dir; name }
  end
  else if proc = proc_rename then begin
    let from_dir = get_fh dec in
    let from_name = Xdr.Dec.string dec in
    let to_dir = get_fh dec in
    let to_name = Xdr.Dec.string dec in
    Rename { from_dir; from_name; to_dir; to_name }
  end
  else if proc = proc_readdir then begin
    let fh = get_fh dec in
    let cookie = Xdr.Dec.uint32 dec in
    let count = Xdr.Dec.uint32 dec in
    Readdir { fh; cookie; count }
  end
  else if proc = proc_statfs then Statfs (get_fh dec)
  else if proc = proc_readlink then Readlink (get_fh dec)
  else if proc = proc_symlink then begin
    let dir = get_fh dec in
    let name = Xdr.Dec.string dec in
    let target = Xdr.Dec.string dec in
    Symlink { dir; name; target; sattr = get_sattr dec }
  end
  else if proc = proc_write3 then begin
    let fh = get_fh dec in
    let offset = Xdr.Dec.uint64 dec in
    let _count = Xdr.Dec.uint32 dec in
    let stable = stable_of_int (Xdr.Dec.enum dec) in
    Write3 { fh; offset; stable; data = Xdr.Dec.opaque_view dec }
  end
  else if proc = proc_commit then begin
    let fh = get_fh dec in
    let offset = Xdr.Dec.uint64 dec in
    let count = Xdr.Dec.uint32 dec in
    Commit { fh; offset; count }
  end
  else raise (Xdr.Dec.Error (Printf.sprintf "unknown procedure %d" proc))

(* {1 Results} *)

type statfs_ok = { tsize : int; bsize : int; blocks : int; bfree : int; bavail : int }

type res =
  | RNull
  | RAttr of (fattr, status) result
  | RDirop of (fh * fattr, status) result
  | RRead of (fattr * Bytes.t, status) result
  | RStatus of status
  | RReaddir of ((string * int) list * bool, status) result
  | RStatfs of (statfs_ok, status) result
  | RReadlink of (string, status) result
  | RWrite3 of (fattr * stable_how * int, status) result
  | RCommit of (fattr * int, status) result

let put_status enc st = Xdr.Enc.enum enc (status_to_int st)
let get_status dec = status_of_int (Xdr.Dec.enum dec)

let encode_res res =
  let enc = Xdr.Enc.create () in
  (match res with
  | RNull -> ()
  | RStatus st -> put_status enc st
  | RAttr (Ok a) ->
      put_status enc NFS_OK;
      put_fattr enc a
  | RAttr (Error st) -> put_status enc st
  | RDirop (Ok (fh, a)) ->
      put_status enc NFS_OK;
      put_fh enc fh;
      put_fattr enc a
  | RDirop (Error st) -> put_status enc st
  | RRead (Ok (a, data)) ->
      put_status enc NFS_OK;
      put_fattr enc a;
      Xdr.Enc.opaque enc data
  | RRead (Error st) -> put_status enc st
  | RReaddir (Ok (entries, eof)) ->
      put_status enc NFS_OK;
      List.iteri
        (fun i (name, fileid) ->
          (* value_follows marker, entry, cookie *)
          Xdr.Enc.bool enc true;
          Xdr.Enc.uint32 enc fileid;
          Xdr.Enc.string enc name;
          Xdr.Enc.uint32 enc (i + 1))
        entries;
      Xdr.Enc.bool enc false;
      Xdr.Enc.bool enc eof
  | RReaddir (Error st) -> put_status enc st
  | RStatfs (Ok s) ->
      put_status enc NFS_OK;
      Xdr.Enc.uint32 enc s.tsize;
      Xdr.Enc.uint32 enc s.bsize;
      Xdr.Enc.uint32 enc s.blocks;
      Xdr.Enc.uint32 enc s.bfree;
      Xdr.Enc.uint32 enc s.bavail
  | RStatfs (Error st) -> put_status enc st
  | RReadlink (Ok target) ->
      put_status enc NFS_OK;
      Xdr.Enc.string enc target
  | RReadlink (Error st) -> put_status enc st
  | RWrite3 (Ok (a, stable, verf)) ->
      put_status enc NFS_OK;
      put_fattr enc a;
      Xdr.Enc.enum enc (stable_to_int stable);
      Xdr.Enc.uint64 enc verf
  | RWrite3 (Error st) -> put_status enc st
  | RCommit (Ok (a, verf)) ->
      put_status enc NFS_OK;
      put_fattr enc a;
      Xdr.Enc.uint64 enc verf
  | RCommit (Error st) -> put_status enc st);
  Xdr.Enc.to_bytes enc

let decode_res ~proc body =
  let dec = Xdr.Dec.of_view body in
  if proc = proc_null then RNull
  else if proc = proc_getattr || proc = proc_setattr || proc = proc_write then begin
    match get_status dec with
    | NFS_OK -> RAttr (Ok (get_fattr dec))
    | st -> RAttr (Error st)
  end
  else if proc = proc_lookup || proc = proc_create || proc = proc_mkdir || proc = proc_symlink
  then begin
    match get_status dec with
    | NFS_OK ->
        let fh = get_fh dec in
        RDirop (Ok (fh, get_fattr dec))
    | st -> RDirop (Error st)
  end
  else if proc = proc_read then begin
    match get_status dec with
    | NFS_OK ->
        let a = get_fattr dec in
        RRead (Ok (a, Xdr.Dec.opaque dec))
    | st -> RRead (Error st)
  end
  else if proc = proc_remove || proc = proc_rename || proc = proc_rmdir then
    RStatus (get_status dec)
  else if proc = proc_readdir then begin
    match get_status dec with
    | NFS_OK ->
        let rec entries acc =
          if Xdr.Dec.bool dec then begin
            let fileid = Xdr.Dec.uint32 dec in
            let name = Xdr.Dec.string dec in
            let _cookie = Xdr.Dec.uint32 dec in
            entries ((name, fileid) :: acc)
          end
          else List.rev acc
        in
        let es = entries [] in
        RReaddir (Ok (es, Xdr.Dec.bool dec))
    | st -> RReaddir (Error st)
  end
  else if proc = proc_statfs then begin
    match get_status dec with
    | NFS_OK ->
        let tsize = Xdr.Dec.uint32 dec in
        let bsize = Xdr.Dec.uint32 dec in
        let blocks = Xdr.Dec.uint32 dec in
        let bfree = Xdr.Dec.uint32 dec in
        let bavail = Xdr.Dec.uint32 dec in
        RStatfs (Ok { tsize; bsize; blocks; bfree; bavail })
    | st -> RStatfs (Error st)
  end
  else if proc = proc_readlink then begin
    match get_status dec with
    | NFS_OK -> RReadlink (Ok (Xdr.Dec.string dec))
    | st -> RReadlink (Error st)
  end
  else if proc = proc_write3 then begin
    match get_status dec with
    | NFS_OK ->
        let a = get_fattr dec in
        let stable = stable_of_int (Xdr.Dec.enum dec) in
        let verf = Xdr.Dec.uint64 dec in
        RWrite3 (Ok (a, stable, verf))
    | st -> RWrite3 (Error st)
  end
  else if proc = proc_commit then begin
    match get_status dec with
    | NFS_OK ->
        let a = get_fattr dec in
        RCommit (Ok (a, Xdr.Dec.uint64 dec))
    | st -> RCommit (Error st)
  end
  else raise (Xdr.Dec.Error (Printf.sprintf "unknown procedure %d" proc))

(* {1 Mount protocol (mini)} *)

(* A toy MOUNT (program 100005) with the single MNT procedure: export
   name in, root filehandle out. Real clients walk /etc/exports; ours
   just need a way to ask for a volume by name instead of baking the
   fsid into the bootstrap handle. *)

let proc_mnt = 1

let encode_mnt_args name =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.string enc name;
  Xdr.Enc.to_bytes enc

let decode_mnt_args body = Xdr.Dec.string (Xdr.Dec.of_view body)

(* A successful MNT reply carries the root filehandle plus the
   export's read-only flag — the "exported ro" bit a diskless client
   wants before it tries to write its root. *)
let encode_mnt_res res =
  let enc = Xdr.Enc.create () in
  (match res with
  | Ok (fh, read_only) ->
      put_status enc NFS_OK;
      put_fh enc fh;
      Xdr.Enc.bool enc read_only
  | Error st -> put_status enc st);
  Xdr.Enc.to_bytes enc

let decode_mnt_res body =
  let dec = Xdr.Dec.of_view body in
  match get_status dec with
  | NFS_OK ->
      let fh = get_fh dec in
      let read_only = Xdr.Dec.bool dec in
      Ok (fh, read_only)
  | st -> Error st

(* {1 Scanning} *)

let peek_write datagram =
  match Nfsg_rpc.Rpc.peek_call datagram with
  | Some call
    when call.Nfsg_rpc.Rpc.prog = Nfsg_rpc.Rpc.nfs_program
         && call.Nfsg_rpc.Rpc.proc = proc_write -> (
      match decode_args ~proc:proc_write call.Nfsg_rpc.Rpc.body with
      | Write { fh; offset; data } -> Some (fh, offset, Xdr.view_length data)
      | _ | (exception Xdr.Dec.Error _) -> None)
  | Some _ | None -> None
