(** NFS version 2 protocol (RFC 1094): procedure arguments and results
    with their XDR wire encodings.

    File handles are the protocol's 32-byte opaque cookies; here they
    carry the volume id ([fsid]), volume generation ([vgen]), inode
    number and inode generation, so a server can route a handle to the
    right export and detect stale handles after remove/reuse — or
    after the volume itself was reformatted — exactly like a real
    one. *)

type fh = { fsid : int; vgen : int; inum : int; gen : int }

val fh_bytes : int
(** 32, per RFC 1094. *)

type ftype = NFNON | NFREG | NFDIR | NFLNK

type timeval = { sec : int; usec : int }

val timeval_of_ns : int -> timeval
val ns_of_timeval : timeval -> int

type fattr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  blocksize : int;
  rdev : int;
  blocks : int;
  fsid : int;
  fileid : int;
  atime : timeval;
  mtime : timeval;
  ctime : timeval;
}

type sattr = {
  s_mode : int;  (** -1 = don't set *)
  s_uid : int;
  s_gid : int;
  s_size : int;  (** -1 = don't set; 0 = truncate *)
  s_atime : timeval option;
  s_mtime : timeval option;
}

val sattr_none : sattr
val sattr_truncate : int -> sattr

type status =
  | NFS_OK
  | NFSERR_PERM
  | NFSERR_NOENT
  | NFSERR_IO
  | NFSERR_EXIST
  | NFSERR_NOTDIR
  | NFSERR_ISDIR
  | NFSERR_FBIG
  | NFSERR_NOSPC
  | NFSERR_ROFS
  | NFSERR_NOTEMPTY
  | NFSERR_STALE
  | NFSERR_XDEV
      (** Cross-device link/rename: the two handles name different
          volumes. *)

val status_to_int : status -> int
val status_of_int : int -> status
val string_of_status : status -> string

(** {1 Procedures} *)

val proc_null : int
val proc_getattr : int
val proc_setattr : int
val proc_lookup : int
val proc_read : int
val proc_write : int
val proc_create : int
val proc_remove : int
val proc_rename : int
val proc_mkdir : int
val proc_rmdir : int
val proc_readlink : int
val proc_symlink : int
val proc_readdir : int
val proc_statfs : int

val proc_write3 : int
(** NFS version 3 WRITE (procedure 7 of program version 3): carries a
    stability level and returns a write verifier — the paper's Future
    Work environment ("The NFS Version 3 protocol supports reliable
    asynchronous writes"). *)

val proc_commit : int
(** NFS version 3 COMMIT (procedure 21). *)

val proc_name : int -> string

type stable_how = Unstable | Data_sync | File_sync

type args =
  | Null
  | Getattr of fh
  | Setattr of fh * sattr
  | Lookup of fh * string
  | Read of { fh : fh; offset : int; count : int }
  | Write of { fh : fh; offset : int; data : Nfsg_rpc.Xdr.view }
  | Create of { dir : fh; name : string; sattr : sattr }
  | Remove of { dir : fh; name : string }
  | Rename of { from_dir : fh; from_name : string; to_dir : fh; to_name : string }
  | Mkdir of { dir : fh; name : string; sattr : sattr }
  | Rmdir of { dir : fh; name : string }
  | Readdir of { fh : fh; cookie : int; count : int }
  | Statfs of fh
  | Readlink of fh
  | Symlink of { dir : fh; name : string; target : string; sattr : sattr }
  | Write3 of { fh : fh; offset : int; stable : stable_how; data : Nfsg_rpc.Xdr.view }
  | Commit of { fh : fh; offset : int; count : int }

val proc_of_args : args -> int
val encode_args : args -> Bytes.t
val decode_args : proc:int -> Nfsg_rpc.Xdr.view -> args
(** Raises {!Xdr.Dec.Error} (via [Nfsg_rpc.Xdr]) on garbage or unknown
    procedure. *)

type statfs_ok = { tsize : int; bsize : int; blocks : int; bfree : int; bavail : int }

type res =
  | RNull
  | RAttr of (fattr, status) result  (** GETATTR, SETATTR, WRITE *)
  | RDirop of (fh * fattr, status) result  (** LOOKUP, CREATE, MKDIR *)
  | RRead of (fattr * Bytes.t, status) result
  | RStatus of status  (** REMOVE, RENAME, RMDIR *)
  | RReaddir of ((string * int) list * bool, status) result
      (** entries as (name, fileid), plus EOF flag *)
  | RStatfs of (statfs_ok, status) result
  | RReadlink of (string, status) result
  | RWrite3 of (fattr * stable_how * int, status) result
      (** attributes, how the data was committed, write verifier *)
  | RCommit of (fattr * int, status) result  (** attributes, verifier *)

val encode_res : res -> Bytes.t
val decode_res : proc:int -> Nfsg_rpc.Xdr.view -> res

(** {1 Mount protocol (mini)}

    A toy MOUNT (RPC program {!Nfsg_rpc.Rpc.mount_program}) with the
    single MNT procedure: export name in, root filehandle out. *)

val proc_mnt : int

val encode_mnt_args : string -> Bytes.t
val decode_mnt_args : Nfsg_rpc.Xdr.view -> string
val encode_mnt_res : (fh * bool, status) result -> Bytes.t
(** A successful reply carries the root filehandle and the export's
    read-only flag. *)

val decode_mnt_res : Nfsg_rpc.Xdr.view -> (fh * bool, status) result

(** {1 Scanning helpers (the mbuf hunter)} *)

val peek_write : Bytes.t -> (fh * int * int) option
(** If the raw datagram is an NFS WRITE call, its (fh, offset, length)
    — what the mbuf hunter greps the socket buffer for. *)
