(* I/O scheduler properties: barrier ordering under crash, and the
   Deadline scheduler's starvation bound. *)

open Nfsg_sim
open Nfsg_disk
open Nfsg_ufs
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names

let pattern n seed = Bytes.init n (fun i -> Char.chr ((i + (seed * 7)) mod 251))

(* {1 Barrier ordering across a crash}

   A gathered flush (Fs.commit_range) submits data clusters, a barrier,
   indirect blocks, a barrier, the inode — all in one batch. Whatever
   the scheduler does inside the window, a crash at ANY instant must
   leave the platter in one of two states: old inode (the commit never
   happened, data blocks unreachable, fsck reclaims them) or new inode
   with every data block it points to intact. New metadata over missing
   data is the corruption the barriers exist to prevent. *)

let bsize = 8192
let nblocks = 24

(* Run one crash experiment; returns [true] if the new inode reached
   the platter (and then its data was verified complete). *)
let crash_case scheduler crash_at =
  let eng = Engine.create () in
  let geometry =
    { (Disk.rz26 ~capacity:(32 * 1024 * 1024) ()) with Disk.track_bytes = 256 * 1024 }
  in
  let dev = Disk.create eng ~scheduler geometry in
  Fs.mkfs dev ~bsize ~ninodes:128 ();
  let fs = Fs.mount eng dev in
  Engine.spawn eng ~name:"writer" (fun () ->
      let f = Fs.create fs (Fs.root fs) "victim" Layout.Regular in
      for i = 0 to nblocks - 1 do
        Fs.write fs f ~off:(i * bsize) (pattern bsize i) ~mode:Fs.Delay_data
      done;
      (* Arm the crash relative to the start of the gathered flush, so
         the sweep samples every phase of the submission. *)
      Engine.spawn eng ~name:"power-cut" (fun () ->
          Engine.delay crash_at;
          dev.Device.crash ());
      (* Parks forever if the crash lands mid-flush: completions from a
         powered-off drive never come. *)
      Fs.commit_range fs f ~off:0 ~len:(nblocks * bsize));
  Engine.run eng;
  dev.Device.recover ();
  let committed = ref false in
  let r = ref None in
  Engine.spawn eng ~name:"fsck" (fun () ->
      let fs2 = Fs.mount eng dev in
      (match Fs.check fs2 with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "fsck after crash at %.1fms: %s" (Time.to_ms_f crash_at)
            (String.concat "; " errs));
      let f = Fs.lookup fs2 (Fs.root fs2) "victim" in
      let size = (Fs.getattr f).Fs.size in
      if size = nblocks * bsize then begin
        committed := true;
        for i = 0 to nblocks - 1 do
          let got = Fs.read fs2 f ~off:(i * bsize) ~len:bsize in
          if not (Bytes.equal got (pattern bsize i)) then
            Alcotest.failf
              "crash at %.1fms: inode is stable but block %d of its data is not — metadata \
               overtook data through the barrier"
              (Time.to_ms_f crash_at) i
        done
      end
      else if size <> 0 then
        Alcotest.failf "crash at %.1fms: impossible half-committed size %d" (Time.to_ms_f crash_at)
          size;
      r := Some ());
  Engine.run eng;
  if !r = None then Alcotest.fail "fsck driver blocked";
  !committed

let test_barrier_ordering_under_crash () =
  List.iter
    (fun (name, scheduler) ->
      let outcomes =
        List.init 25 (fun k -> crash_case scheduler (Time.of_ms_f (float_of_int k *. 8.0)))
      in
      (* The sweep must actually straddle the commit point: early cuts
         leave the old inode, late cuts land after the barrier. *)
      Alcotest.(check bool)
        (name ^ ": some crash precedes the commit")
        true
        (List.exists not outcomes);
      Alcotest.(check bool) (name ^ ": some crash follows the commit") true (List.exists Fun.id outcomes))
    [ ("elevator", Disk.Elevator); ("deadline", Disk.Deadline) ]

(* {1 Deadline bounds queue wait}

   A stream of near-cylinder arrivals keeps an Elevator head pinned to
   the hot band, so one far-cylinder read waits for the whole stream.
   Deadline promotes the starved head of the queue instead; its
   queue-wait histogram must stay bounded and the promotion counter
   must show it happened. *)

let hist_max_us h =
  List.fold_left (fun acc (_, hi, n) -> if n > 0 then Stdlib.max acc hi else acc) 0.0
    (Nfsg_stats.Histogram.buckets h)

let run_starvation scheduler =
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let dev =
    Disk.create eng ~name:"starve" ~metrics ~scheduler ~deadline:(Time.of_ms_f 30.0) ~merge:false
      (Disk.rz26 ())
  in
  let far_wait = ref Time.zero in
  Engine.spawn eng ~name:"far" (fun () ->
      Engine.delay (Time.ms 5);
      let t0 = Engine.now eng in
      let r = Io.read_req ~off:(64 * 1024 * 1024) ~len:bsize () in
      dev.Device.submit [ Io.Req r ];
      Io.await r;
      far_wait := Engine.now eng - t0);
  Engine.spawn eng ~name:"band" (fun () ->
      for i = 0 to 199 do
        let r = Io.read_req ~off:(i mod 16 * bsize) ~len:bsize () in
        dev.Device.submit [ Io.Req r ];
        Io.await r
      done);
  (* A second band source keeps the queue non-empty while the first
     one's request is in service, so the elevator never goes idle. *)
  Engine.spawn eng ~name:"band2" (fun () ->
      for i = 0 to 199 do
        let r = Io.read_req ~off:(((i mod 16) + 16) * bsize) ~len:bsize () in
        dev.Device.submit [ Io.Req r ];
        Io.await r
      done);
  Engine.run eng;
  let h =
    match Metrics.find_histogram metrics ~ns:(Names.Ns.disk "starve") Names.queue_wait_us with
    | Some h -> h
    | None -> Alcotest.fail "queue_wait_us histogram not registered"
  in
  let promotions =
    Option.value ~default:0
      (Metrics.find_counter metrics ~ns:(Names.Ns.disk "starve") Names.deadline_promotions)
  in
  (!far_wait, hist_max_us h, promotions)

let test_deadline_bounds_starvation () =
  let far_elev, max_elev, promo_elev = run_starvation Disk.Elevator in
  let far_dead, max_dead, promo_dead = run_starvation Disk.Deadline in
  Alcotest.(check int) "elevator never promotes" 0 promo_elev;
  Alcotest.(check bool) "deadline promotes starved requests" true (promo_dead > 0);
  Alcotest.(check bool)
    (Printf.sprintf "elevator starves the far read (%.0fms)" (Time.to_ms_f far_elev))
    true
    (far_elev > Time.ms 400);
  Alcotest.(check bool)
    (Printf.sprintf "deadline bounds the far read (%.0fms)" (Time.to_ms_f far_dead))
    true
    (far_dead < Time.ms 150);
  (* The histogram is the observable contract: max wait under Deadline
     must sit near the deadline, far below the Elevator's worst case. *)
  Alcotest.(check bool)
    (Printf.sprintf "deadline max queue wait %.0fus < elevator %.0fus" max_dead max_elev)
    true
    (max_dead < max_elev /. 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "deadline max queue wait %.0fus bounded" max_dead)
    true
    (max_dead < 200_000.0)

let suite =
  [
    Alcotest.test_case "barrier ordering survives crashes" `Quick test_barrier_ordering_under_crash;
    Alcotest.test_case "deadline bounds queue wait" `Quick test_deadline_bounds_starvation;
  ]
