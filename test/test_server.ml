(* End-to-end NFS server tests through the full stack (client RPC over
   the simulated network to the server over the simulated disk), in
   Standard write-layer mode. *)

open Testbed
module Write_layer = Nfsg_core.Write_layer
module Server = Nfsg_core.Server
module Fs = Nfsg_ufs.Fs

let standard_config =
  { Server.default_config with Server.write_layer = Write_layer.standard }

let test_create_write_read_roundtrip () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "file.dat" in
      let total = 200_000 in
      let _ = write_file rig fh ~total () in
      let back = Client.read rig.client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "data fidelity over the wire" (expect_pattern ~total ~seed:7) back;
      let a = Client.getattr rig.client fh in
      Alcotest.(check int) "size attribute" total a.Proto.size)

let test_lookup_and_dirops () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let r = root rig in
      let dfh, _ = Client.mkdir rig.client r "sub" in
      let ffh, _ = Client.create_file rig.client dfh "x" in
      let found, a = Client.lookup rig.client dfh "x" in
      Alcotest.(check int) "same file" ffh.Proto.inum found.Proto.inum;
      Alcotest.(check bool) "regular" true (a.Proto.ftype = Proto.NFREG);
      Alcotest.(check (list (pair string int))) "readdir" [ ("x", ffh.Proto.inum) ]
        (Client.readdir rig.client dfh);
      Client.remove rig.client dfh "x";
      (match Client.lookup rig.client dfh "x" with
      | _ -> Alcotest.fail "expected NOENT"
      | exception Client.Error Proto.NFSERR_NOENT -> ());
      Client.rmdir rig.client r "sub";
      match Client.readdir rig.client r with
      | entries -> Alcotest.(check int) "root empty" 0 (List.length entries))

let test_stale_handle_after_remove () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "doomed" in
      Client.remove rig.client (root rig) "doomed";
      match Client.getattr rig.client fh with
      | _ -> Alcotest.fail "expected STALE"
      | exception Client.Error Proto.NFSERR_STALE -> ())

let test_rename_over_wire () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let r = root rig in
      let fh, _ = Client.create_file rig.client r "before" in
      Client.rename rig.client ~from_dir:r ~from_name:"before" ~to_dir:r ~to_name:"after";
      let found, _ = Client.lookup rig.client r "after" in
      Alcotest.(check int) "kept identity" fh.Proto.inum found.Proto.inum)

let test_setattr_truncate () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "t" in
      let _ = write_file rig fh ~total:50_000 () in
      let a = Client.setattr rig.client fh (Proto.sattr_truncate 1000) in
      Alcotest.(check int) "truncated" 1000 a.Proto.size;
      let back = Client.read rig.client fh ~off:0 ~len:5000 in
      Alcotest.(check int) "short read" 1000 (Bytes.length back))

let test_statfs_and_null () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      Client.null_ping rig.client;
      let s = Client.statfs rig.client (root rig) in
      Alcotest.(check int) "bsize" 8192 s.Proto.bsize;
      Alcotest.(check bool) "free blocks sane" true (s.Proto.bfree > 0 && s.Proto.bfree <= s.Proto.blocks))

let test_errors_over_wire () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let r = root rig in
      (match Client.lookup rig.client r "missing" with
      | _ -> Alcotest.fail "expected NOENT"
      | exception Client.Error Proto.NFSERR_NOENT -> ());
      let _ = Client.create_file rig.client r "dup" in
      (match Client.create_file rig.client r "dup" with
      | _ -> Alcotest.fail "expected EXIST"
      | exception Client.Error Proto.NFSERR_EXIST -> ());
      let fh, _ = Client.lookup rig.client r "dup" in
      match Client.lookup rig.client fh "x" with
      | _ -> Alcotest.fail "expected NOTDIR"
      | exception Client.Error Proto.NFSERR_NOTDIR -> ())

let test_rmdir_not_empty_over_wire () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let r = root rig in
      let dfh, _ = Client.mkdir rig.client r "busy" in
      let _ = Client.create_file rig.client dfh "kid" in
      (* A non-empty directory must come back as NFSERR_NOTEMPTY — not
         a generic IO error, and above all not a dead nfsd. *)
      (match Client.rmdir rig.client r "busy" with
      | () -> Alcotest.fail "expected NOTEMPTY"
      | exception Client.Error Proto.NFSERR_NOTEMPTY -> ());
      (* The failed rmdir must not have damaged the directory. *)
      let found, _ = Client.lookup rig.client dfh "kid" in
      Alcotest.(check bool) "child intact" true (found.Proto.inum > 0);
      Client.remove rig.client dfh "kid";
      Client.rmdir rig.client r "busy";
      Alcotest.(check int) "root empty afterwards" 0 (List.length (Client.readdir rig.client r)))

(* The core protocol promise: when the server replies to a WRITE, data
   AND metadata are on stable storage. Check against the device's
   stable view immediately after close() returns. *)
let test_stable_on_reply () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "stable" in
      let total = 64 * 1024 in
      let _ = write_file rig fh ~total () in
      (* No flush/sync calls: what close() guarantees must already be
         stable. Crash the server and remount from stable state only. *)
      Server.crash rig.server;
      rig.device.Device.recover ();
      let fs2 = Fs.mount rig.eng rig.device in
      let f2 = Fs.lookup fs2 (Fs.root fs2) "stable" in
      Alcotest.(check int) "size durable" total (Fs.getattr f2).Fs.size;
      let back = Fs.read fs2 f2 ~off:0 ~len:total in
      Alcotest.(check bytes) "bytes durable" (expect_pattern ~total ~seed:7) back)

let test_3n_disk_transactions_over_wire () =
  let rig = make ~config:standard_config ~biods:4 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "big" in
      let before = (rig.device.Device.spindle_stats ()).Device.transactions in
      let total = 80 * 8192 in
      let _ = write_file rig fh ~total () in
      let total_trans = (rig.device.Device.spindle_stats ()).Device.transactions - before in
      (* Standard mode: past the 12 direct blocks every 8K write costs
         3 transactions (data + inode + indirect). *)
      let expected = (12 * 2) + (68 * 3) + 1 in
      if abs (total_trans - expected) > 4 then
        Alcotest.failf "expected ~%d transactions, saw %d" expected total_trans)

let test_concurrent_clients_isolated () =
  (* Two client hosts writing different files concurrently: both file
     bodies must come back intact. *)
  let rig = make ~config:standard_config () in
  let client2_sock = Socket.create rig.segment ~addr:"client2" () in
  let rpc2 = Rpc_client.create rig.eng ~sock:client2_sock ~server:"server" () in
  let client2 = Client.create rig.eng ~rpc:rpc2 ~biods:4 () in
  let done2 = ref false in
  Nfsg_sim.Engine.spawn rig.eng ~name:"client2-app" (fun () ->
      let fh, _ = Client.create_file client2 (root rig) "from-c2" in
      let f = Client.open_file client2 fh in
      for i = 0 to 19 do
        Client.write f ~off:(i * 8192) (Bytes.make 8192 'B')
      done;
      Client.close f;
      let back = Client.read client2 fh ~off:0 ~len:(20 * 8192) in
      Alcotest.(check bytes) "client2 data" (Bytes.make (20 * 8192) 'B') back;
      done2 := true);
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "from-c1" in
      let total = 30 * 8192 in
      let _ = write_file rig fh ~total () in
      let back = Client.read rig.client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "client1 data" (expect_pattern ~total ~seed:7) back);
  Alcotest.(check bool) "client2 finished" true !done2

let test_symlink_readlink_over_wire () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let r = root rig in
      let _ = Client.create_file rig.client r "real.txt" in
      let lfh, la = Client.symlink rig.client r "link" ~target:"real.txt" in
      Alcotest.(check bool) "NFLNK type" true (la.Proto.ftype = Proto.NFLNK);
      Alcotest.(check string) "readlink" "real.txt" (Client.readlink rig.client lfh);
      (* readlink of a regular file is an error *)
      let ffh, _ = Client.lookup rig.client r "real.txt" in
      (match Client.readlink rig.client ffh with
      | _ -> Alcotest.fail "expected error"
      | exception Client.Error _ -> ());
      (* links are removable and stale afterwards *)
      Client.remove rig.client r "link";
      match Client.readlink rig.client lfh with
      | _ -> Alcotest.fail "expected STALE"
      | exception Client.Error Proto.NFSERR_STALE -> ())

let test_op_counters () =
  let rig = make ~config:standard_config () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "ops" in
      let f = Client.open_file rig.client fh in
      Client.write f ~off:0 (Bytes.make 8192 'o');
      Client.close f;
      ignore (Client.getattr rig.client fh));
  Alcotest.(check int) "one create" 1 (Server.op_count rig.server Proto.proc_create);
  Alcotest.(check int) "one write" 1 (Server.op_count rig.server Proto.proc_write);
  Alcotest.(check bool) "getattr seen" true (Server.op_count rig.server Proto.proc_getattr >= 1)

let suite =
  [
    Alcotest.test_case "create/write/read roundtrip" `Quick test_create_write_read_roundtrip;
    Alcotest.test_case "lookup and directory ops" `Quick test_lookup_and_dirops;
    Alcotest.test_case "stale handle after remove" `Quick test_stale_handle_after_remove;
    Alcotest.test_case "rename over the wire" `Quick test_rename_over_wire;
    Alcotest.test_case "setattr truncate" `Quick test_setattr_truncate;
    Alcotest.test_case "statfs and null ping" `Quick test_statfs_and_null;
    Alcotest.test_case "error statuses over the wire" `Quick test_errors_over_wire;
    Alcotest.test_case "rmdir of non-empty directory" `Quick test_rmdir_not_empty_over_wire;
    Alcotest.test_case "replied writes are stable (crash test)" `Quick test_stable_on_reply;
    Alcotest.test_case "~3N transactions in standard mode" `Quick test_3n_disk_transactions_over_wire;
    Alcotest.test_case "two clients, isolated files" `Quick test_concurrent_clients_isolated;
    Alcotest.test_case "per-op counters" `Quick test_op_counters;
    Alcotest.test_case "symlink / readlink over the wire" `Quick test_symlink_readlink_over_wire;
  ]
