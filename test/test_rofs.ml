(* Read-only exports: every mutating procedure of both dialects earns
   NFSERR_ROFS before touching the write layer, reads and name lookups
   keep working, MOUNT advertises the flag, and the protection is a
   runtime toggle that flips both ways. *)

module Server = Nfsg_core.Server
module Volume = Nfsg_core.Volume
module Client = Nfsg_nfs.Client
module Proto = Nfsg_nfs.Proto
module Socket = Nfsg_net.Socket
module Rpc_client = Nfsg_rpc.Rpc_client
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names

let first_volume rig = List.hd (Server.volumes rig.Testbed.server)

let v3_client rig addr =
  let sock = Socket.create rig.Testbed.segment ~addr () in
  let rpc = Rpc_client.create rig.Testbed.eng ~sock ~server:"server" () in
  Client.create rig.Testbed.eng ~rpc ~biods:4 ~protocol:Client.V3 ()

let expect_rofs name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected NFSERR_ROFS, got success" name
  | exception Client.Error Proto.NFSERR_ROFS -> ()
  | exception Client.Error st ->
      Alcotest.failf "%s: expected NFSERR_ROFS, got %s" name (Proto.string_of_status st)

let rofs_rejections rig =
  Option.value ~default:0
    (Metrics.find_counter (Server.metrics rig.Testbed.server) ~ns:"server" Names.rofs_rejections)

(* Build a small tree read-write, then protect the export. *)
let populated_ro_rig () =
  let rig = Testbed.make () in
  Testbed.run rig (fun () ->
      let root = Testbed.root rig in
      let c = rig.Testbed.client in
      let fh, _ = Client.create_file c root "victim" in
      ignore (Testbed.write_file rig fh ~total:16384 ());
      ignore (Client.mkdir c root "subdir");
      ignore (Client.symlink c root "link" ~target:"victim");
      Volume.set_read_only (first_volume rig) true);
  rig

let test_mount_advertises () =
  let rig = populated_ro_rig () in
  Testbed.run rig (fun () ->
      let _, ro = Client.mount_flags rig.Testbed.client "/export" in
      Alcotest.(check bool) "export advertised read-only" true ro;
      Volume.set_read_only (first_volume rig) false;
      let _, rw = Client.mount_flags rig.Testbed.client "/export" in
      Alcotest.(check bool) "flips back to read-write" false rw)

let test_v2_mutations_bounce () =
  let rig = populated_ro_rig () in
  Testbed.run rig (fun () ->
      let root = Testbed.root rig in
      let c = rig.Testbed.client in
      let victim, _ = Client.lookup c root "victim" in
      let before = rofs_rejections rig in
      expect_rofs "WRITE" (fun () ->
          let f = Client.open_file c victim in
          Client.write f ~off:0 (Bytes.make 8192 'x');
          Client.close f);
      expect_rofs "SETATTR" (fun () ->
          Client.setattr c victim { Proto.sattr_none with Proto.s_size = 0 });
      expect_rofs "CREATE" (fun () -> Client.create_file c root "fresh");
      expect_rofs "REMOVE" (fun () -> Client.remove c root "victim");
      expect_rofs "RENAME" (fun () ->
          Client.rename c ~from_dir:root ~from_name:"victim" ~to_dir:root ~to_name:"renamed");
      expect_rofs "MKDIR" (fun () -> Client.mkdir c root "newdir");
      expect_rofs "RMDIR" (fun () -> Client.rmdir c root "subdir");
      expect_rofs "SYMLINK" (fun () -> Client.symlink c root "newlink" ~target:"victim");
      Alcotest.(check int) "every bounce counted" (before + 8) (rofs_rejections rig))

let test_v3_write_and_commit_bounce () =
  let rig = populated_ro_rig () in
  Testbed.run rig (fun () ->
      let root = Testbed.root rig in
      let c3 = v3_client rig "client-v3" in
      let victim, _ = Client.lookup c3 root "victim" in
      expect_rofs "WRITE3" (fun () ->
          let f = Client.open_file c3 victim in
          Client.write f ~off:0 (Bytes.make 8192 'y');
          Client.close f));
  (* COMMIT alone: write the range while the export is still rw, flip,
     then ask the server to commit it. *)
  let rig = Testbed.make () in
  Testbed.run rig (fun () ->
      let root = Testbed.root rig in
      let c3 = v3_client rig "client-v3" in
      let fh, _ = Client.create_file c3 root "staged" in
      let f = Client.open_file c3 fh in
      Client.write f ~off:0 (Bytes.make 8192 'z');
      Client.close f;
      Volume.set_read_only (first_volume rig) true;
      expect_rofs "COMMIT" (fun () ->
          let f = Client.open_file c3 fh in
          Client.write f ~off:0 (Bytes.make 8192 'z');
          (try Client.close f with Client.Error Proto.NFSERR_ROFS -> ());
          Client.commit f))

let test_reads_still_served () =
  let rig = populated_ro_rig () in
  Testbed.run rig (fun () ->
      let root = Testbed.root rig in
      let c = rig.Testbed.client in
      let victim, attr = Client.lookup c root "victim" in
      Alcotest.(check int) "GETATTR size" 16384 attr.Proto.size;
      let data = Client.read c victim ~off:0 ~len:16384 in
      Alcotest.(check bytes) "READ bytes intact" (Testbed.expect_pattern ~total:16384 ~seed:7)
        data;
      let link, _ = Client.lookup c root "link" in
      Alcotest.(check string) "READLINK works" "victim" (Client.readlink c link);
      Alcotest.(check bool) "READDIR works" true
        (List.mem_assoc "victim" (Client.readdir c root));
      ignore (Client.statfs c root);
      (* The toggle is live: flip back and the same world accepts
         writes again. *)
      Volume.set_read_only (first_volume rig) false;
      let fh, _ = Client.create_file c root "after" in
      let f = Client.open_file c fh in
      Client.write f ~off:0 (Bytes.make 8192 'w');
      Client.close f)

let suite =
  [
    Alcotest.test_case "MOUNT advertises the flag" `Quick test_mount_advertises;
    Alcotest.test_case "v2 mutations bounce with ROFS" `Quick test_v2_mutations_bounce;
    Alcotest.test_case "v3 WRITE3 and COMMIT bounce" `Quick test_v3_write_and_commit_bounce;
    Alcotest.test_case "reads served, toggle flips back" `Quick test_reads_still_served;
  ]
