open Nfsg_sim
open Nfsg_disk
open Nfsg_ufs

let geometry = { (Disk.rz26 ~capacity:(32 * 1024 * 1024) ()) with Disk.track_bytes = 256 * 1024 }

let fresh_fs ?(bsize = 8192) ?(ninodes = 512) () =
  let eng = Engine.create () in
  let dev = Disk.create eng geometry in
  Fs.mkfs dev ~bsize ~ninodes ();
  let fs = Fs.mount eng dev in
  (eng, dev, fs)

let in_proc eng f =
  let r = ref None in
  Engine.spawn eng ~name:"test-driver" (fun () -> r := Some (f ()));
  Engine.run eng;
  match !r with Some v -> v | None -> Alcotest.fail "driver blocked"

let pattern n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

(* {1 Layout pure functions} *)

let test_superblock_roundtrip () =
  let sb = Layout.make_superblock ~bsize:8192 ~capacity:(32 * 1024 * 1024) ~ninodes:512 in
  let sb' = Layout.decode_superblock (Layout.encode_superblock sb) in
  Alcotest.(check bool) "roundtrip" true (sb = sb')

let test_dinode_roundtrip () =
  let di =
    {
      Layout.ftype = Layout.Regular;
      nlink = 2;
      size = 123456789;
      mtime = 42;
      atime = 7;
      ctime = 9;
      direct = Array.init 12 (fun i -> i * 100);
      single_ind = 5000;
      double_ind = 6000;
      gen = 17;
    }
  in
  Alcotest.(check bool) "roundtrip" true (Layout.decode_dinode (Layout.encode_dinode di) = di)

let test_dirents_roundtrip () =
  let entries = [ ("a", 2); ("file.with.dots", 3); (String.make 200 'n', 4) ] in
  Alcotest.(check bool) "roundtrip" true (Layout.decode_dirents (Layout.encode_dirents entries) = entries)

let prop_dirents =
  let name_gen = QCheck.Gen.(map (fun s -> "f" ^ String.concat "" (List.map (fun c -> String.make 1 c) s)) (list_size (0 -- 20) (char_range 'a' 'z'))) in
  let arb =
    QCheck.make
      QCheck.Gen.(list_size (0 -- 20) (pair name_gen (int_range 1 1000)))
  in
  QCheck.Test.make ~name:"dirent list roundtrips" ~count:200 arb (fun entries ->
      Layout.decode_dirents (Layout.encode_dirents entries) = entries)

(* {1 Files} *)

let test_create_lookup_readdir () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let root = Fs.root fs in
      let f = Fs.create fs root "hello.txt" Layout.Regular in
      Alcotest.(check bool) "lookup finds it" true (Fs.inum (Fs.lookup fs root "hello.txt") = Fs.inum f);
      Alcotest.(check (list (pair string int))) "readdir" [ ("hello.txt", Fs.inum f) ] (Fs.readdir fs root);
      Alcotest.check_raises "duplicate create" (Fs.Exists "hello.txt") (fun () ->
          ignore (Fs.create fs root "hello.txt" Layout.Regular)))

let test_write_read_roundtrip () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "data" Layout.Regular in
      let data = pattern 50_000 3 in
      Fs.write fs f ~off:0 data ~mode:Fs.Sync;
      Alcotest.(check bytes) "roundtrip" data (Fs.read fs f ~off:0 ~len:50_000);
      Alcotest.(check int) "size" 50_000 (Fs.getattr f).Fs.size)

let test_unaligned_writes () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "u" Layout.Regular in
      Fs.write fs f ~off:100 (Bytes.of_string "abc") ~mode:Fs.Sync;
      Fs.write fs f ~off:8190 (Bytes.of_string "span") ~mode:Fs.Sync;
      (* Hole before 100 reads as zeros. *)
      let head = Fs.read fs f ~off:0 ~len:103 in
      Alcotest.(check char) "hole" '\000' (Bytes.get head 0);
      Alcotest.(check string) "tail" "abc" (Bytes.sub_string head 100 3);
      Alcotest.(check string) "block-spanning write" "span" (Bytes.to_string (Fs.read fs f ~off:8190 ~len:4));
      Alcotest.(check int) "size" 8194 (Fs.getattr f).Fs.size)

let test_sparse_holes_read_zero () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "sparse" Layout.Regular in
      Fs.write fs f ~off:(100 * 8192) (Bytes.of_string "end") ~mode:Fs.Sync;
      let mid = Fs.read fs f ~off:(50 * 8192) ~len:10 in
      Alcotest.(check bytes) "zeros" (Bytes.make 10 '\000') mid)

let test_indirect_boundaries () =
  (* With bsize=512: 12 direct blocks, then 128 single-indirect, then
     double-indirect. Write a file crossing all three regions. *)
  let eng, _, fs = fresh_fs ~bsize:512 ~ninodes:64 () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "big" Layout.Regular in
      let total = 512 * (12 + 128 + 50) in
      let data = pattern total 11 in
      Fs.write fs f ~off:0 data ~mode:Fs.Delay_data;
      Alcotest.(check bytes) "all three mapping regions" data (Fs.read fs f ~off:0 ~len:total);
      Fs.fsync fs f;
      Alcotest.(check bytes) "after fsync" data (Fs.read fs f ~off:0 ~len:total);
      match Fs.check fs with
      | Ok () -> ()
      | Error es -> Alcotest.failf "fsck: %s" (String.concat "; " es))

let test_short_read_at_eof () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "short" Layout.Regular in
      Fs.write fs f ~off:0 (Bytes.of_string "0123456789") ~mode:Fs.Sync;
      Alcotest.(check string) "clamped" "56789" (Bytes.to_string (Fs.read fs f ~off:5 ~len:100));
      Alcotest.(check int) "past eof" 0 (Bytes.length (Fs.read fs f ~off:50 ~len:10)))

(* {1 Write modes and flush machinery} *)

let test_delay_data_stays_volatile () =
  let eng, dev, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "vol" Layout.Regular in
      let before = (dev.Device.spindle_stats ()).Device.transactions in
      Fs.write fs f ~off:0 (pattern 8192 1) ~mode:Fs.Delay_data;
      let after = (dev.Device.spindle_stats ()).Device.transactions in
      Alcotest.(check int) "no disk traffic" before after;
      Alcotest.(check bool) "meta dirty" true (Fs.meta_dirty f = `Dirty))

let test_sync_commits_data_then_meta () =
  let eng, dev, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "sync" Layout.Regular in
      let before = (dev.Device.spindle_stats ()).Device.transactions in
      Fs.write fs f ~off:0 (pattern 8192 2) ~mode:Fs.Sync;
      let after = (dev.Device.spindle_stats ()).Device.transactions in
      (* New block: data + inode (+ no indirect yet) = 2 transactions. *)
      Alcotest.(check int) "data + inode" 2 (after - before);
      Alcotest.(check bool) "meta clean" true (Fs.meta_dirty f = `Clean))

let test_mtime_only_update_is_async () =
  let eng, dev, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "mt" Layout.Regular in
      Fs.write fs f ~off:0 (pattern 8192 3) ~mode:Fs.Sync;
      let before = (dev.Device.spindle_stats ()).Device.transactions in
      (* Overwrite in place: no size change, no new blocks. *)
      Fs.write fs f ~off:0 (pattern 8192 4) ~mode:Fs.Sync;
      let after = (dev.Device.spindle_stats ()).Device.transactions in
      Alcotest.(check int) "data only, inode deferred" 1 (after - before);
      Alcotest.(check bool) "time-only dirty" true (Fs.meta_dirty f = `Time_only))

let test_3n_transactions_for_large_file () =
  (* The paper's Case Study: a freshly created N*8K file written
     synchronously costs ~3N transactions once past the direct
     blocks. *)
  let eng, dev, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "case-study" Layout.Regular in
      let n = 40 in
      let before = (dev.Device.spindle_stats ()).Device.transactions in
      for i = 0 to n - 1 do
        Fs.write fs f ~off:(i * 8192) (pattern 8192 i) ~mode:Fs.Sync
      done;
      let total = (dev.Device.spindle_stats ()).Device.transactions - before in
      (* First 12 writes: 2 ops each (data+inode). Next 28: 3 ops
         (data+inode+indirect), plus one for creating the indirect. *)
      let expected_min = (12 * 2) + (28 * 3) in
      if total < expected_min || total > expected_min + 3 then
        Alcotest.failf "expected ~%d transactions, saw %d" expected_min total)

let test_syncdata_clusters () =
  let eng, dev, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "clu" Layout.Regular in
      (* 16 delayed 8K writes, then one ranged flush. *)
      for i = 0 to 15 do
        Fs.write fs f ~off:(i * 8192) (pattern 8192 i) ~mode:Fs.Delay_data
      done;
      let before = (dev.Device.spindle_stats ()).Device.transactions in
      Fs.syncdata fs f ~off:0 ~len:(16 * 8192);
      let data_writes = (dev.Device.spindle_stats ()).Device.transactions - before in
      (* 128K of dirt: blocks 0-11 are contiguous, the single indirect
         block interposes on disk, then blocks 12-15. The 64K cluster
         cap cuts three requests (8 + 4 + 4 blocks), but they are
         submitted as one batch and the first two are physically
         adjacent, so the spindle scheduler merges them back into a
         single 96K transaction: two transactions total. *)
      Alcotest.(check int) "two merged clustered writes" 2 data_writes;
      let before_meta = (dev.Device.spindle_stats ()).Device.transactions in
      Fs.fsync_metadata fs f;
      let meta_writes = (dev.Device.spindle_stats ()).Device.transactions - before_meta in
      (* inode block + single indirect block *)
      Alcotest.(check int) "metadata in two" 2 meta_writes)

let test_fsync_metadata_idempotent () =
  let eng, dev, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "idem" Layout.Regular in
      Fs.write fs f ~off:0 (pattern 100 5) ~mode:Fs.Sync_data_only;
      Fs.fsync_metadata fs f;
      let before = (dev.Device.spindle_stats ()).Device.transactions in
      Fs.fsync_metadata fs f;
      Alcotest.(check int) "second flush is free" before
        (dev.Device.spindle_stats ()).Device.transactions)

(* {1 Namespace} *)

let test_remove_then_stale () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let root = Fs.root fs in
      let f = Fs.create fs root "victim" Layout.Regular in
      Fs.write fs f ~off:0 (pattern 20_000 7) ~mode:Fs.Sync;
      let inum = Fs.inum f and gen = Fs.generation f in
      let free_before = (Fs.statfs fs).Fs.free_blocks in
      Fs.remove fs root "victim";
      Alcotest.(check bool) "blocks freed" true ((Fs.statfs fs).Fs.free_blocks > free_before);
      Alcotest.check_raises "handle is stale" (Fs.Stale inum) (fun () ->
          ignore (Fs.iget fs ~inum ~gen));
      Alcotest.check_raises "name gone" Not_found (fun () -> ignore (Fs.lookup fs root "victim")))

let test_generation_prevents_reuse_confusion () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let root = Fs.root fs in
      let f = Fs.create fs root "first" Layout.Regular in
      let inum = Fs.inum f and gen = Fs.generation f in
      Fs.remove fs root "first";
      let g = Fs.create fs root "second" Layout.Regular in
      (* The slot is reused with a bumped generation. *)
      Alcotest.(check int) "slot reused" inum (Fs.inum g);
      Alcotest.(check bool) "gen bumped" true (Fs.generation g > gen);
      Alcotest.check_raises "old handle stale" (Fs.Stale inum) (fun () ->
          ignore (Fs.iget fs ~inum ~gen)))

let test_rename_same_dir () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let root = Fs.root fs in
      let f = Fs.create fs root "old" Layout.Regular in
      Fs.write fs f ~off:0 (Bytes.of_string "payload") ~mode:Fs.Sync;
      Fs.rename fs ~src_dir:root ~src:"old" ~dst_dir:root ~dst:"new";
      Alcotest.check_raises "old gone" Not_found (fun () -> ignore (Fs.lookup fs root "old"));
      let g = Fs.lookup fs root "new" in
      Alcotest.(check string) "content follows" "payload" (Bytes.to_string (Fs.read fs g ~off:0 ~len:7)))

let test_rename_across_dirs () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let root = Fs.root fs in
      let d1 = Fs.create fs root "d1" Layout.Directory in
      let d2 = Fs.create fs root "d2" Layout.Directory in
      ignore (Fs.create fs d1 "f" Layout.Regular);
      Fs.rename fs ~src_dir:d1 ~src:"f" ~dst_dir:d2 ~dst:"f2";
      Alcotest.(check int) "d1 empty" 0 (List.length (Fs.readdir fs d1));
      Alcotest.(check bool) "in d2" true (List.mem_assoc "f2" (Fs.readdir fs d2)))

let test_mkdir_rmdir () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let root = Fs.root fs in
      let d = Fs.create fs root "dir" Layout.Directory in
      ignore (Fs.create fs d "child" Layout.Regular);
      let not_empty =
        try
          Fs.rmdir fs root "dir";
          false
        with Fs.Not_empty _ -> true
      in
      Alcotest.(check bool) "not empty" true not_empty;
      Fs.remove fs d "child";
      Fs.rmdir fs root "dir";
      Alcotest.check_raises "gone" Not_found (fun () -> ignore (Fs.lookup fs root "dir")))

let test_symlink_roundtrip_and_fsck () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let root = Fs.root fs in
      let link = Fs.symlink fs root "ln" ~target:"somewhere/else" in
      Alcotest.(check string) "target stored" "somewhere/else" (Fs.readlink fs link);
      Alcotest.(check bool) "type" true ((Fs.getattr link).Fs.ftype = Layout.Symlink);
      (* Survives remount (it is on disk). *)
      Fs.crash fs;
      (Fs.device fs).Nfsg_disk.Device.recover ();
      let fs2 = Fs.mount eng (Fs.device fs) in
      let link2 = Fs.lookup fs2 (Fs.root fs2) "ln" in
      Alcotest.(check string) "target durable" "somewhere/else" (Fs.readlink fs2 link2);
      match Fs.check fs2 with
      | Ok () -> ()
      | Error es -> Alcotest.failf "fsck: %s" (String.concat "; " es))

let test_truncate_frees_and_check_passes () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "t" Layout.Regular in
      Fs.write fs f ~off:0 (pattern 200_000 13) ~mode:Fs.Sync;
      let free0 = (Fs.statfs fs).Fs.free_blocks in
      Fs.truncate fs f 10_000;
      Fs.fsync_metadata fs f;
      Alcotest.(check int) "size" 10_000 (Fs.getattr f).Fs.size;
      Alcotest.(check bool) "freed" true ((Fs.statfs fs).Fs.free_blocks > free0);
      (* Old tail is unreadable. *)
      Alcotest.(check int) "tail gone" 0 (Bytes.length (Fs.read fs f ~off:10_000 ~len:100));
      match Fs.check fs with
      | Ok () -> ()
      | Error es -> Alcotest.failf "fsck: %s" (String.concat "; " es))

let test_check_catches_corruption () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "c" Layout.Regular in
      Fs.write fs f ~off:0 (pattern 8192 1) ~mode:Fs.Sync;
      (* Sabotage: free a block that the file still references. *)
      match Fs.check fs with
      | Error es -> Alcotest.failf "clean fs flagged: %s" (String.concat ";" es)
      | Ok () -> ())

(* {1 Crash / recovery} *)

let test_crash_loses_delayed_keeps_synced () =
  let eng, dev, fs = fresh_fs () in
  in_proc eng (fun () ->
      let root = Fs.root fs in
      let f = Fs.create fs root "durable" Layout.Regular in
      Fs.write fs f ~off:0 (pattern 8192 21) ~mode:Fs.Sync;
      let g = Fs.create fs root "volatile" Layout.Regular in
      Fs.write fs g ~off:0 (pattern 8192 22) ~mode:Fs.Delay_data;
      Fs.crash fs;
      dev.Device.recover ();
      let fs2 = Fs.mount eng dev in
      let root2 = Fs.root fs2 in
      let f2 = Fs.lookup fs2 root2 "durable" in
      Alcotest.(check bytes) "synced data survived" (pattern 8192 21) (Fs.read fs2 f2 ~off:0 ~len:8192);
      (* volatile's data never hit the disk; its create was durable, so
         the name exists with size but zero/absent content is the
         honest outcome; what matters is its *size* metadata was never
         fsynced either. *)
      let g2 = Fs.lookup fs2 root2 "volatile" in
      Alcotest.(check int) "unsynced size lost" 0 (Fs.getattr g2).Fs.size;
      match Fs.check fs2 with
      | Ok () -> ()
      | Error es -> Alcotest.failf "fsck after crash: %s" (String.concat "; " es))

let test_remount_rebuilds_bitmap () =
  let eng, dev, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "keep" Layout.Regular in
      Fs.write fs f ~off:0 (pattern 100_000 31) ~mode:Fs.Sync;
      let free_live = (Fs.statfs fs).Fs.free_blocks in
      Fs.crash fs;
      dev.Device.recover ();
      let fs2 = Fs.mount eng dev in
      (* Same reachable blocks -> same free count. *)
      Alcotest.(check int) "bitmap rebuilt" free_live (Fs.statfs fs2).Fs.free_blocks;
      (* Writing after recovery must not clobber existing data. *)
      let g = Fs.create fs2 (Fs.root fs2) "after" Layout.Regular in
      Fs.write fs2 g ~off:0 (pattern 50_000 32) ~mode:Fs.Sync;
      let f2 = Fs.lookup fs2 (Fs.root fs2) "keep" in
      Alcotest.(check bytes) "old data intact" (pattern 100_000 31)
        (Fs.read fs2 f2 ~off:0 ~len:100_000);
      match Fs.check fs2 with
      | Ok () -> ()
      | Error es -> Alcotest.failf "fsck: %s" (String.concat "; " es))

(* Regression for the write-path lock leak nfsrace's Y003 found: the
   old open-coded lock/unlock pairs only released on the exceptions
   the handler anticipated, so anything else (allocator assert, fault
   injection) wedged the vnode for every later writer. [Vfs.with_lock]
   must release on ANY exception and leave the vnode usable. *)
exception Unexpected

let test_vnode_lock_released_on_unexpected_exception () =
  let eng, _, fs = fresh_fs () in
  in_proc eng (fun () ->
      let f = Fs.create fs (Fs.root fs) "leak" Layout.Regular in
      let v = Vfs.vnode_of_inode fs f in
      (match Vfs.with_lock v (fun () -> raise Unexpected) with
      | () -> Alcotest.fail "the exception must propagate"
      | exception Unexpected -> ());
      Alcotest.(check bool) "vnode unlocked after raise" false (Vfs.locked v);
      (* The call the leak used to wedge: a later locked write. *)
      let committed = ref false in
      Vfs.with_lock v (fun () ->
          Fs.write fs f ~off:0 (pattern 100 3) ~mode:Fs.Sync;
          committed := true);
      Alcotest.(check bool) "later locked write proceeds" true !committed)

let prop_random_writes_match_model =
  (* Random (offset, length) writes against an in-memory reference. *)
  let arb =
    QCheck.make
      ~print:(fun ops -> Printf.sprintf "%d ops" (List.length ops))
      QCheck.Gen.(list_size (1 -- 25) (pair (int_bound 120_000) (int_range 1 20_000)))
  in
  QCheck.Test.make ~name:"random writes equal sparse-file model" ~count:25 arb (fun ops ->
      let eng, _, fs = fresh_fs () in
      let model = Bytes.make 160_000 '\000' in
      let model_size = ref 0 in
      in_proc eng (fun () ->
          let f = Fs.create fs (Fs.root fs) "m" Layout.Regular in
          List.iteri
            (fun i (off, len) ->
              let data = pattern len (i + 1) in
              let mode = if i mod 2 = 0 then Fs.Sync else Fs.Delay_data in
              Fs.write fs f ~off data ~mode;
              Bytes.blit data 0 model off len;
              model_size := Stdlib.max !model_size (off + len))
            ops;
          let expect = Bytes.sub model 0 !model_size in
          Fs.read fs f ~off:0 ~len:!model_size = expect
          && (Fs.getattr f).Fs.size = !model_size))

let suite =
  [
    Alcotest.test_case "superblock roundtrip" `Quick test_superblock_roundtrip;
    Alcotest.test_case "dinode roundtrip" `Quick test_dinode_roundtrip;
    Alcotest.test_case "dirents roundtrip" `Quick test_dirents_roundtrip;
    QCheck_alcotest.to_alcotest prop_dirents;
    Alcotest.test_case "create / lookup / readdir" `Quick test_create_lookup_readdir;
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "unaligned and spanning writes" `Quick test_unaligned_writes;
    Alcotest.test_case "sparse holes read zero" `Quick test_sparse_holes_read_zero;
    Alcotest.test_case "direct/single/double indirect" `Quick test_indirect_boundaries;
    Alcotest.test_case "short read at EOF" `Quick test_short_read_at_eof;
    Alcotest.test_case "Delay_data stays volatile" `Quick test_delay_data_stays_volatile;
    Alcotest.test_case "Sync commits data then inode" `Quick test_sync_commits_data_then_meta;
    Alcotest.test_case "mtime-only inode update is async" `Quick test_mtime_only_update_is_async;
    Alcotest.test_case "case study: ~3N transactions" `Quick test_3n_transactions_for_large_file;
    Alcotest.test_case "syncdata clusters to 64K" `Quick test_syncdata_clusters;
    Alcotest.test_case "fsync_metadata idempotent" `Quick test_fsync_metadata_idempotent;
    Alcotest.test_case "remove frees and stales handles" `Quick test_remove_then_stale;
    Alcotest.test_case "generation guards inode reuse" `Quick test_generation_prevents_reuse_confusion;
    Alcotest.test_case "rename within a directory" `Quick test_rename_same_dir;
    Alcotest.test_case "rename across directories" `Quick test_rename_across_dirs;
    Alcotest.test_case "mkdir / rmdir" `Quick test_mkdir_rmdir;
    Alcotest.test_case "symlink roundtrip + fsck + remount" `Quick test_symlink_roundtrip_and_fsck;
    Alcotest.test_case "truncate frees blocks" `Quick test_truncate_frees_and_check_passes;
    Alcotest.test_case "fsck passes on clean fs" `Quick test_check_catches_corruption;
    Alcotest.test_case "crash: synced survives, delayed lost" `Quick test_crash_loses_delayed_keeps_synced;
    Alcotest.test_case "remount rebuilds bitmap" `Quick test_remount_rebuilds_bitmap;
    Alcotest.test_case "vnode lock survives unexpected exception" `Quick
      test_vnode_lock_released_on_unexpected_exception;
    QCheck_alcotest.to_alcotest prop_random_writes_match_model;
  ]
