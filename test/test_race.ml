(* nfsrace self-tests: every rule is exercised by a fixture pair under
   race_fixtures/ — positive cases whose diagnostics must match the
   golden .expected file byte for byte, and good/suppressed cases that
   must analyze clean. Fixtures are analyzed under a synthetic lib/
   path, the tree the tool is pointed at in CI. *)

module Race = Nfsg_race.Race
module Diagnostic = Nfsg_lint.Diagnostic

let fixture_dir = "race_fixtures"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let analyze_fixture name =
  let src = read_file (Filename.concat fixture_dir (name ^ ".ml")) in
  Race.analyze_sources [ ("lib/" ^ name ^ ".ml", src) ]
  |> List.map Diagnostic.to_string

let check_golden name () =
  let expected = lines (read_file (Filename.concat fixture_dir (name ^ ".expected"))) in
  Alcotest.(check (list string)) name expected (analyze_fixture name)

let fixture_names =
  Sys.readdir fixture_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.map (fun f -> Filename.chop_suffix f ".ml")
  |> List.sort compare

let golden_tests =
  List.map
    (fun name -> Alcotest.test_case ("fixture " ^ name) `Quick (check_golden name))
    fixture_names

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec find i = i + nn <= nh && (String.sub hay i nn = needle || find (i + 1)) in
  find 0

(* Each rule must appear in at least one golden: a rule whose fixture
   stopped firing is a rule that silently died. *)
let test_all_rules_covered () =
  let fired =
    List.concat_map
      (fun name -> lines (read_file (Filename.concat fixture_dir (name ^ ".expected"))))
      fixture_names
  in
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule ^ " covered by a fixture") true
        (List.exists (fun l -> contains l ("[" ^ rule ^ "]")) fired))
    [ "Y001"; "Y002"; "Y003"; "RACE" ]

(* The pre-PR-7 convoy golden must carry the full lock-to-yield chain:
   the diagnostic is only actionable if it names the park at the end. *)
let test_convoy_chain () =
  let diags = analyze_fixture "y001_pos" in
  Alcotest.(check bool)
    "Y001 chain reaches Engine.suspend through the helper" true
    (List.exists
       (fun l ->
         contains l "[Y001]" && contains l "Y001_pos.await_disk -> Engine.suspend")
       diags)

(* Unparseable input must surface as a diagnostic, not an exception. *)
let test_parse_error () =
  match Race.analyze_sources [ ("lib/broken.ml", "let let let") ] with
  | [ d ] -> Alcotest.(check string) "rule" "PARSE" d.Diagnostic.rule
  | _ -> Alcotest.fail "expected a single PARSE diagnostic"

(* The engine's own implementation is where the yield primitives live;
   it is exempt rather than annotated. *)
let test_engine_exempt () =
  let src = "let park m =\n  Mutex.lock m;\n  Engine.suspend ();\n  Mutex.unlock m\n" in
  Alcotest.(check (list string))
    "engine implementation analyzes clean" []
    (Race.analyze_sources [ ("lib/sim/engine.ml", src) ] |> List.map Diagnostic.to_string)

let suite =
  golden_tests
  @ [
      Alcotest.test_case "all rules covered" `Quick test_all_rules_covered;
      Alcotest.test_case "convoy golden carries the yield chain" `Quick test_convoy_chain;
      Alcotest.test_case "parse failure becomes a diagnostic" `Quick test_parse_error;
      Alcotest.test_case "engine implementation is exempt" `Quick test_engine_exempt;
    ]
