(* The redundancy promises, asserted end to end: the chaos rig over a
   RAID-1 and a RAID-5 array must lose no acknowledged write across
   whole-member fail-stop, degraded crash/restart cycles and a crash
   landing mid-rebuild — and replay the identical run bit for bit. *)

module Chaos = Nfsg_experiments.Chaos
module Raid = Nfsg_experiments.Raid
module Stripe = Nfsg_disk.Stripe

(* Two cycles: cycle 0 rebuilds under load, cycle 1 (odd) crashes the
   server mid-rebuild and restarts the resilver from scratch. *)
let quick_cfg level =
  {
    Chaos.default with
    Chaos.cycles = 2;
    writers = 2;
    blocks_per_writer = 40;
    burst_ops = 4;
    array_level = Some level;
  }

let check_promises name (r : Chaos.result) =
  Alcotest.(check (list int)) (name ^ ": no acked write lost") [] r.Chaos.lost;
  Alcotest.(check (list string)) (name ^ ": fsck clean") [] r.Chaos.fsck_errors;
  Alcotest.(check int) (name ^ ": no spurious re-executions") 0 r.Chaos.spurious_nonidem;
  Alcotest.(check bool)
    (name ^ ": one member fail-stop per cycle") true
    (r.Chaos.member_failures >= 2);
  Alcotest.(check bool)
    (name ^ ": rebuilds ran to completion") true
    (r.Chaos.rebuilds_completed >= 2);
  Alcotest.(check bool) (name ^ ": served degraded writes") true (r.Chaos.degraded_writes > 0);
  let contains line affix =
    let n = String.length line and m = String.length affix in
    let rec at i = i + m <= n && (String.sub line i m = affix || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool)
    (name ^ ": crashed mid-rebuild") true
    (List.exists (fun l -> contains l "mid-rebuild") r.Chaos.timeline)

let test_raid1_chaos () =
  let cfg = quick_cfg Stripe.Raid1 in
  let r = Chaos.run cfg in
  check_promises "raid1" r;
  let r2 = Chaos.run cfg in
  Alcotest.(check string) "raid1: digest reproducible" r.Chaos.digest r2.Chaos.digest

let test_raid5_chaos () =
  let cfg = quick_cfg Stripe.Raid5 in
  let r = Chaos.run cfg in
  check_promises "raid5" r;
  Alcotest.(check bool) "raid5: reconstructed reads" true (r.Chaos.degraded_reads > 0);
  let r2 = Chaos.run cfg in
  Alcotest.(check string) "raid5: digest reproducible" r.Chaos.digest r2.Chaos.digest

(* The bench's reason to exist: gathered flushes turn RAID-5 partial
   read-modify-writes into full-stripe commits. *)
let test_full_stripe_gather () =
  let cfg = { Raid.default with Raid.writers = 2; blocks_per_writer = 32 } in
  let rows = Raid.run ~cfg () in
  let cell gather =
    List.find (fun r -> r.Raid.variant.Raid.level = Stripe.Raid5 && r.Raid.variant.Raid.gather = gather) rows
  in
  let on = cell true and off = cell false in
  Alcotest.(check bool) "gathering earns full-stripe writes" true (on.Raid.full_stripe_writes > 0);
  Alcotest.(check bool) "full-stripe fraction higher with gathering" true
    (on.Raid.full_stripe_fraction > off.Raid.full_stripe_fraction);
  List.iter
    (fun r ->
      match r.Raid.redundancy with
      | None -> ()
      | Some d -> Alcotest.(check bool) "degraded + rebuilt blocks verify" true d.Raid.reverified)
    rows

let suite =
  [
    Alcotest.test_case "chaos over raid1: fail-stop, degraded, rebuild" `Quick test_raid1_chaos;
    Alcotest.test_case "chaos over raid5: fail-stop, degraded, rebuild" `Quick test_raid5_chaos;
    Alcotest.test_case "raid5 full-stripe fraction rises with gathering" `Quick
      test_full_stripe_gather;
  ]
