(* Multi-volume exports, end to end: MOUNT by name, distinct fsids on
   the wire, fsid/vgen-routed dispatch with STALE for dead identities,
   per-volume metrics planes, cross-volume rename, LADDIS spreading,
   and the 3-volume independence/fault-isolation experiment. *)

open Nfsg_sim
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Disk = Nfsg_disk.Disk
module Device = Nfsg_disk.Device
module Server = Nfsg_core.Server
module Volume = Nfsg_core.Volume
module Client = Nfsg_nfs.Client
module Proto = Nfsg_nfs.Proto
module Rpc_client = Nfsg_rpc.Rpc_client
module Metrics = Nfsg_stats.Metrics
module Histogram = Nfsg_stats.Histogram
module Laddis = Nfsg_workload.Laddis
module Multivolume = Nfsg_experiments.Multivolume

type world = {
  eng : Engine.t;
  segment : Segment.t;
  devices : Device.t array;
  server : Server.t;
  metrics : Metrics.t;
  client : Client.t;
}

let specs_over devices =
  Array.to_list (Array.mapi (fun v d -> Volume.spec (Printf.sprintf "/export%d" v) d) devices)

let make_world ?(vols = 2) ?(config = Server.default_config) () =
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let segment = Segment.create eng ~metrics Segment.fddi in
  let devices =
    Array.init vols (fun v ->
        Disk.create eng ~name:(Printf.sprintf "vol%d-rz26" (v + 1)) ~metrics Testbed.disk_geometry)
  in
  let server = Server.make_exports eng ~segment ~addr:"server" ~metrics config (specs_over devices) in
  let sock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock ~server:"server" () in
  let client = Client.create eng ~rpc ~biods:4 () in
  { eng; segment; devices; server; metrics; client }

let run w f =
  let result = ref None in
  Engine.spawn w.eng ~name:"driver" (fun () -> result := Some (f ()));
  Engine.run w.eng;
  match !result with Some v -> v | None -> Alcotest.fail "driver process blocked forever"

(* 16 sequential 8K blocks through the 4-biod write-behind cache: the
   concurrency that lets the server gather. *)
let write_one w root name =
  let fh, _ = Client.create_file w.client root name in
  let f = Client.open_file w.client fh in
  for b = 0 to 15 do
    Client.write f ~off:(b * 8192) (Bytes.make 8192 'x')
  done;
  Client.close f;
  fh

(* {1 MOUNT + fsids on the wire} *)

let test_mount_and_distinct_fsids () =
  let w = make_world ~vols:2 () in
  run w (fun () ->
      let r0 = Client.mount w.client "/export0" in
      let r1 = Client.mount w.client "/export1" in
      Alcotest.(check (list (pair string int)))
        "mount agrees with the export table"
        (List.map (fun (n, (fh : Proto.fh)) -> (n, fh.Proto.fsid)) (Server.exports w.server))
        [ ("/export0", r0.Proto.fsid); ("/export1", r1.Proto.fsid) ];
      (* Satellite: fattr.fsid must come from the volume, not a
         constant — two exports report distinct fsids over the wire,
         matching the filehandles. *)
      let a0 = Client.getattr w.client r0 and a1 = Client.getattr w.client r1 in
      Alcotest.(check int) "vol1 fattr fsid" r0.Proto.fsid a0.Proto.fsid;
      Alcotest.(check int) "vol2 fattr fsid" r1.Proto.fsid a1.Proto.fsid;
      Alcotest.(check bool) "distinct on the wire" true (a0.Proto.fsid <> a1.Proto.fsid);
      match Client.mount w.client "/nonesuch" with
      | _ -> Alcotest.fail "expected NOENT for unknown export"
      | exception Client.Error Proto.NFSERR_NOENT -> ())

(* {1 STALE routing} *)

let test_unknown_fsid_is_stale () =
  let w = make_world ~vols:2 () in
  run w (fun () ->
      let r0 = Client.mount w.client "/export0" in
      (match Client.getattr w.client { r0 with Proto.fsid = 99 } with
      | _ -> Alcotest.fail "expected STALE for unknown fsid"
      | exception Client.Error Proto.NFSERR_STALE -> ());
      match Client.getattr w.client { r0 with Proto.vgen = r0.Proto.vgen + 1 } with
      | _ -> Alcotest.fail "expected STALE for wrong volume generation"
      | exception Client.Error Proto.NFSERR_STALE -> ())

let test_reboot_keeps_handles_reformat_stales_them () =
  let w = make_world ~vols:2 () in
  run w (fun () ->
      let r1 = Client.mount w.client "/export1" in
      let fh = write_one w r1 "precious" in
      (* Power-fail + reboot: volume generations are preserved, so the
         client's handle rides through. *)
      Server.crash w.server;
      let server2 = Server.recover w.server in
      let a = Client.getattr w.client fh in
      Alcotest.(check int) "handle survives reboot" (16 * 8192) a.Proto.size;
      (* Reformat: a fresh export table over the same platters draws
         new volume generations — every pre-format handle is dead. *)
      Server.crash server2;
      let server3 =
        Server.make_exports w.eng ~segment:w.segment ~addr:"server" Server.default_config
          (specs_over w.devices)
      in
      (match Client.getattr w.client fh with
      | _ -> Alcotest.fail "expected STALE after reformat"
      | exception Client.Error Proto.NFSERR_STALE -> ());
      (* ... and the new incarnation hands out live roots. *)
      let r1' = Client.mount w.client "/export1" in
      Alcotest.(check int) "same fsid" fh.Proto.fsid r1'.Proto.fsid;
      Alcotest.(check bool) "new generation" true (r1'.Proto.vgen <> fh.Proto.vgen);
      ignore (Client.getattr w.client r1');
      ignore server3)

(* {1 Cross-volume rename} *)

let test_cross_volume_rename_is_xdev () =
  let w = make_world ~vols:2 () in
  run w (fun () ->
      let r0 = Client.mount w.client "/export0" in
      let r1 = Client.mount w.client "/export1" in
      ignore (Client.create_file w.client r0 "m");
      match
        Client.rename w.client ~from_dir:r0 ~from_name:"m" ~to_dir:r1 ~to_name:"m"
      with
      | _ -> Alcotest.fail "expected XDEV for cross-volume rename"
      | exception Client.Error Proto.NFSERR_XDEV -> ())

(* {1 Per-volume metrics planes} *)

let test_per_volume_metrics_never_mix () =
  let w = make_world ~vols:3 () in
  run w (fun () ->
      let roots = List.map snd (Server.exports w.server) in
      (* Load volumes 1 and 2; volume 3 stays idle. *)
      List.iteri
        (fun i root -> if i < 2 then ignore (write_one w root "f"))
        roots);
  let m = w.metrics in
  let batches k =
    match Metrics.find_histogram m ~ns:(Printf.sprintf "write_layer.vol%d" k) "batch_size" with
    | Some h -> Histogram.count h
    | None -> 0
  in
  let saved k =
    Option.value ~default:0
      (Metrics.find_counter m ~ns:(Printf.sprintf "write_layer.vol%d" k) "metadata_flushes_saved")
  in
  let writes k =
    Option.value ~default:0
      (Metrics.find_counter m ~ns:(Printf.sprintf "server.vol%d" k) "ops_WRITE")
  in
  Alcotest.(check bool) "vol1 gathers" true (batches 1 > 0);
  Alcotest.(check bool) "vol2 gathers" true (batches 2 > 0);
  Alcotest.(check bool) "vol1 saves metadata flushes" true (saved 1 > 0);
  Alcotest.(check bool) "vol2 saves metadata flushes" true (saved 2 > 0);
  Alcotest.(check int) "vol1 counts its WRITEs" 16 (writes 1);
  Alcotest.(check int) "vol2 counts its WRITEs" 16 (writes 2);
  (* The idle volume's plane stays empty: nothing leaked across. *)
  Alcotest.(check int) "idle vol3 has no batches" 0 (batches 3);
  Alcotest.(check int) "idle vol3 saved nothing" 0 (saved 3);
  Alcotest.(check int) "idle vol3 served no WRITEs" 0 (writes 3);
  (* No legacy shared namespace on a multi-volume server. *)
  Alcotest.(check bool) "no shared write_layer namespace" true
    (Metrics.find_histogram m ~ns:"write_layer" "batch_size" = None)

let metrics_bytes () =
  let w = make_world ~vols:2 () in
  run w (fun () ->
      List.iteri
        (fun i root -> ignore (write_one w root (Printf.sprintf "f%d" i)))
        (List.map snd (Server.exports w.server)));
  Metrics.to_string ~pretty:true w.metrics

let test_metrics_json_deterministic () =
  (* Volume generations are process-global and differ between the two
     worlds; they must never reach the registry, so the serialized
     documents are byte-identical. *)
  Alcotest.(check string) "metrics JSON byte-identical across worlds" (metrics_bytes ())
    (metrics_bytes ())

(* {1 LADDIS spreading} *)

let test_export_assignment_distribution () =
  Alcotest.(check (list int)) "round-robin order" [ 0; 1; 2; 0; 1; 2; 0 ]
    (Laddis.export_assignment ~procs:7 ~exports:3);
  let counts = Array.make 3 0 in
  List.iter (fun e -> counts.(e) <- counts.(e) + 1) (Laddis.export_assignment ~procs:11 ~exports:3);
  Array.iter
    (fun c -> Alcotest.(check bool) "within one of fair share" true (abs (c - (11 / 3)) <= 1))
    counts;
  Alcotest.(check (list int)) "single export degenerates" [ 0; 0; 0 ]
    (Laddis.export_assignment ~procs:3 ~exports:1);
  (try
     ignore (Laddis.export_assignment ~procs:2 ~exports:0);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Laddis.export_assignment ~procs:(-1) ~exports:2);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* {1 The 3-volume experiment: independence and fault isolation} *)

let test_multivolume_experiment () =
  let r = Multivolume.run ~cfg:Multivolume.quick_cfg () in
  (* Independence: every volume's gather plane formed its own batches
     and banked its own metadata-flush savings. *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s formed gather batches" v.Multivolume.export)
        true (v.Multivolume.batches > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s saved metadata flushes" v.Multivolume.export)
        true (v.Multivolume.flushes_saved > 0))
    r.Multivolume.clean.Multivolume.vols;
  (* The fault window really fired on volume 1's spindle. *)
  Alcotest.(check bool) "errors were injected" true (r.Multivolume.errors_injected > 0);
  (* Isolation: volumes 2 and 3 reply to WRITEs at their fault-free
     latency while volume 1's disk is failing. *)
  List.iter2
    (fun clean faulted ->
      if clean.Multivolume.fsid > 1 then begin
        let limit = (clean.Multivolume.write_mean_us *. 1.25) +. 2000.0 in
        if faulted.Multivolume.write_mean_us > limit then
          Alcotest.failf "volume %d slowed by volume 1's fault: %.0fus clean, %.0fus faulted"
            clean.Multivolume.fsid clean.Multivolume.write_mean_us
            faulted.Multivolume.write_mean_us
      end)
    r.Multivolume.clean.Multivolume.vols r.Multivolume.faulted.Multivolume.vols

let suite =
  [
    Alcotest.test_case "MOUNT by name; distinct fsids on the wire" `Quick
      test_mount_and_distinct_fsids;
    Alcotest.test_case "unknown fsid or generation earns STALE" `Quick test_unknown_fsid_is_stale;
    Alcotest.test_case "reboot keeps handles; reformat stales them" `Quick
      test_reboot_keeps_handles_reformat_stales_them;
    Alcotest.test_case "cross-volume rename earns XDEV" `Quick test_cross_volume_rename_is_xdev;
    Alcotest.test_case "per-volume metrics planes never mix" `Quick
      test_per_volume_metrics_never_mix;
    Alcotest.test_case "metrics JSON is byte-deterministic" `Quick test_metrics_json_deterministic;
    Alcotest.test_case "LADDIS export assignment is round-robin" `Quick
      test_export_assignment_distribution;
    Alcotest.test_case "3 volumes: independent gathering, isolated faults" `Slow
      test_multivolume_experiment;
  ]
