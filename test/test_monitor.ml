(* The live operability plane: journey phase accounting, long-op
   threshold triggering, per-station attribution across restart, and
   byte-determinism of the nfsmon transcript (interval reports plus
   long-op records) under double-run with the Reset registry fired in
   between. *)

open Nfsg_sim
module Journey = Nfsg_stats.Journey
module Metrics = Nfsg_stats.Metrics
module Names = Nfsg_stats.Names
module Demo = Nfsg_experiments.Monitor_demo

let ms = Time.of_ms_f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Drive one journey through every stamp with a known dwell in each
   phase; the phases must read back exactly and partition the total. *)
let test_phases_partition () =
  Reset.run_all ();
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let plane = Journey.create eng ~metrics () in
  let result = ref None in
  Engine.spawn eng ~name:"op" (fun () ->
      let j = Journey.start plane ~client:"alice" ~xid:7 ~arrival:(Engine.now eng) in
      Journey.set_op j ~proc:"WRITE" ~bytes:8192;
      Engine.delay (ms 1.0);
      Journey.stamp_pickup j ~now:(Engine.now eng);
      Engine.delay (ms 2.0);
      Journey.stamp_admitted j ~now:(Engine.now eng);
      Engine.delay (ms 3.0);
      Journey.stamp_queued j ~now:(Engine.now eng);
      Engine.delay (ms 4.0);
      Journey.stamp_disk_submit j ~now:(Engine.now eng);
      Engine.delay (ms 5.0);
      Journey.stamp_disk_complete j ~now:(Engine.now eng);
      Engine.delay (ms 6.0);
      Journey.finish plane j;
      result := Some (Journey.phases j));
  Engine.run eng;
  match !result with
  | None -> Alcotest.fail "journey never finished"
  | Some ph ->
      let check name expect actual =
        Alcotest.(check int) name expect actual
      in
      check "sock_wait" (ms 1.0) ph.Journey.sock_wait;
      check "dupcache" (ms 2.0) ph.Journey.dupcache;
      check "prep" (ms 3.0) ph.Journey.prep;
      check "gather_wait" (ms 4.0) ph.Journey.gather_wait;
      check "disk" (ms 5.0) ph.Journey.disk;
      check "reply_path" (ms 6.0) ph.Journey.reply_path;
      check "total" (ms 21.0) ph.Journey.total;
      let sum =
        ph.Journey.sock_wait + ph.Journey.dupcache + ph.Journey.prep + ph.Journey.gather_wait
        + ph.Journey.disk + ph.Journey.reply_path
      in
      check "phases sum to total" ph.Journey.total sum

(* Stamps a fast op never reaches (no disk flush for a GETATTR-shaped
   journey) collapse onto their predecessor: every phase non-negative,
   the partition still exact. *)
let test_unset_stamps_collapse () =
  Reset.run_all ();
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let plane = Journey.create eng ~metrics () in
  let result = ref None in
  Engine.spawn eng ~name:"op" (fun () ->
      let j = Journey.start plane ~client:"bob" ~xid:9 ~arrival:(Engine.now eng) in
      Journey.set_op j ~proc:"GETATTR" ~bytes:0;
      Engine.delay (ms 1.5);
      Journey.stamp_pickup j ~now:(Engine.now eng);
      (* No admitted/queued/disk stamps at all. *)
      Engine.delay (ms 2.5);
      Journey.finish plane j;
      result := Some (Journey.phases j));
  Engine.run eng;
  match !result with
  | None -> Alcotest.fail "journey never finished"
  | Some ph ->
      let nonneg name v = Alcotest.(check bool) (name ^ " >= 0") true (v >= 0) in
      nonneg "sock_wait" ph.Journey.sock_wait;
      nonneg "dupcache" ph.Journey.dupcache;
      nonneg "prep" ph.Journey.prep;
      nonneg "gather_wait" ph.Journey.gather_wait;
      nonneg "disk" ph.Journey.disk;
      nonneg "reply_path" ph.Journey.reply_path;
      let sum =
        ph.Journey.sock_wait + ph.Journey.dupcache + ph.Journey.prep + ph.Journey.gather_wait
        + ph.Journey.disk + ph.Journey.reply_path
      in
      Alcotest.(check int) "phases sum to total" ph.Journey.total sum;
      Alcotest.(check int) "total is arrival->reply" (ms 4.0) ph.Journey.total

(* The threshold gate: an op under the threshold leaves no record, one
   over it leaves exactly one rendered record in the ring. *)
let test_long_op_threshold () =
  Reset.run_all ();
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let plane = Journey.create eng ~metrics ~threshold:(ms 10.0) () in
  Engine.spawn eng ~name:"ops" (fun () ->
      let fast = Journey.start plane ~client:"alice" ~xid:1 ~arrival:(Engine.now eng) in
      Journey.set_op fast ~proc:"WRITE" ~bytes:8192;
      Engine.delay (ms 5.0);
      Journey.finish plane fast;
      let slow = Journey.start plane ~client:"alice" ~xid:2 ~arrival:(Engine.now eng) in
      Journey.set_op slow ~proc:"WRITE" ~bytes:8192;
      Engine.delay (ms 25.0);
      Journey.finish plane slow);
  Engine.run eng;
  Alcotest.(check int) "one long op" 1 (Journey.long_op_count plane);
  let rendered = Journey.render_long_ops plane in
  Alcotest.(check bool) "record names the op" true
    (contains rendered "long-op WRITE client=alice xid=2");
  Alcotest.(check bool) "record carries the total" true
    (contains rendered "total=25000us")

(* A real injected slowdown: the monitor demo wraps its spindle in a
   Fault_disk window, and the ops caught inside it must cross the
   threshold and leave records with a dominant disk phase. *)
let test_slowdown_triggers_long_ops () =
  Reset.run_all ();
  let out = Demo.run () in
  Alcotest.(check bool) "interval reports present" true
    (contains out "nfsmon t=");
  Alcotest.(check bool) "long-op records present" true
    (contains out "long-op records:");
  Alcotest.(check bool) "a WRITE crossed the threshold" true
    (contains out "long-op WRITE")

(* Station attribution is find-or-create in the shared registry, so a
   crash/restart (a fresh plane over the same registry, exactly what
   Server.restart builds) accumulates instead of resetting. *)
let test_station_survives_restart () =
  Reset.run_all ();
  let eng = Engine.create () in
  let metrics = Metrics.create () in
  let op plane xid =
    let j = Journey.start plane ~client:"alice" ~xid ~arrival:(Engine.now eng) in
    Journey.set_op j ~proc:"WRITE" ~bytes:8192;
    Journey.finish plane j
  in
  Engine.spawn eng ~name:"ops" (fun () ->
      let before = Journey.create eng ~metrics () in
      op before 1;
      op before 2;
      (* The crash: the old plane is dropped with the server, the
         restarted server registers a fresh one against the same
         registry. *)
      let after = Journey.create eng ~metrics () in
      op after 3);
  Engine.run eng;
  let ns = Names.Ns.station "alice" in
  let ops = Option.value ~default:0 (Metrics.find_counter metrics ~ns Names.station_ops) in
  Alcotest.(check int) "station ops accumulate across restart" 3 ops

(* The transcript — interval tables, journey summary, long-op records —
   byte for byte across a double run with Reset fired in between. *)
let test_demo_double_run () =
  let once () =
    Reset.run_all ();
    Demo.run ()
  in
  let first = once () and second = once () in
  Alcotest.(check string) "nfsmon transcript identical" first second

let suite =
  [
    Alcotest.test_case "phases partition the total" `Quick test_phases_partition;
    Alcotest.test_case "unset stamps collapse" `Quick test_unset_stamps_collapse;
    Alcotest.test_case "long-op threshold gate" `Quick test_long_op_threshold;
    Alcotest.test_case "slowdown window triggers long-ops" `Quick test_slowdown_triggers_long_ops;
    Alcotest.test_case "station counters survive restart" `Quick test_station_survives_restart;
    Alcotest.test_case "nfsmon transcript double-run bytes" `Quick test_demo_double_run;
  ]
