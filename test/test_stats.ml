open Nfsg_stats

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Summary.max s);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Summary.sum s);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Summary.variance s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Summary.mean s);
  Alcotest.(check (float 0.0)) "variance of empty" 0.0 (Summary.variance s)

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () and whole = Summary.create () in
  let xs = [ 1.0; 5.0; 2.0 ] and ys = [ 10.0; 0.5 ] in
  List.iter (Summary.add a) xs;
  List.iter (Summary.add b) ys;
  List.iter (Summary.add whole) (xs @ ys);
  let m = Summary.merge a b in
  Alcotest.(check int) "count" (Summary.count whole) (Summary.count m);
  Alcotest.(check (float 1e-9)) "mean" (Summary.mean whole) (Summary.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Summary.variance whole) (Summary.variance m)

let test_histogram_quantiles () =
  let h = Histogram.create ~least:1.0 ~growth:1.1 ~buckets:256 () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let med = Histogram.median h in
  if med < 450.0 || med > 560.0 then Alcotest.failf "median %f out of tolerance" med;
  let p99 = Histogram.p99 h in
  if p99 < 930.0 || p99 > 1100.0 then Alcotest.failf "p99 %f out of tolerance" p99;
  Alcotest.(check (float 0.5)) "mean" 500.5 (Histogram.mean h)

let test_histogram_clamps () =
  let h = Histogram.create ~least:1.0 ~growth:2.0 ~buckets:4 () in
  Histogram.add h 0.0001;
  Histogram.add h 1e12;
  Alcotest.(check int) "both recorded" 2 (Histogram.count h)

let test_histogram_quantile_midpoint () =
  (* One sample in bucket [2,4): every quantile must report the
     geometric midpoint sqrt(2*4), not the bucket's upper edge. *)
  let h = Histogram.create ~least:1.0 ~growth:2.0 ~buckets:16 () in
  Histogram.add h 3.0;
  let mid = sqrt (2.0 *. 4.0) in
  Alcotest.(check (float 1e-9)) "q=0.5" mid (Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "q=0" mid (Histogram.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "q=1" mid (Histogram.quantile h 1.0);
  Alcotest.(check (float 1e-9)) "empty histogram quantile" 0.0
    (Histogram.quantile (Histogram.create ()) 0.5)

let test_histogram_underflow_bucket () =
  let h = Histogram.create ~least:8.0 ~growth:2.0 ~buckets:8 () in
  Histogram.add h 0.5;
  (* The underflow bucket spans [0, least): arithmetic midpoint. *)
  Alcotest.(check (float 1e-9)) "underflow midpoint" 4.0 (Histogram.quantile h 0.5);
  match Histogram.buckets h with
  | [ (lo, hi, 1) ] ->
      Alcotest.(check (float 1e-9)) "lower edge 0" 0.0 lo;
      Alcotest.(check (float 1e-9)) "upper edge = least" 8.0 hi
  | bs -> Alcotest.failf "expected one underflow bucket, got %d" (List.length bs)

let test_histogram_quantiles_ordered () =
  let h = Histogram.create ~least:1.0 ~growth:1.25 ~buckets:64 () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
  let vs = List.map (Histogram.quantile h) qs in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "quantiles non-decreasing" true (mono vs);
  let q0 = Histogram.quantile h 0.0 in
  Alcotest.(check bool) "q=0 inside first bucket" true (q0 >= 1.0 && q0 <= 1.25)

let test_report_render () =
  let r = Report.create ~title:"Table X" ~columns:[ "0"; "3"; "7" ] in
  Report.add_section r "Without Write Gathering";
  Report.add_row r "client write speed (KB/sec)" [ 165.0; 194.0; 201.0 ];
  Report.add_row r "server cpu util. (%)" [ 9.0; 11.0; 11.4 ];
  let s = Report.to_string r in
  Alcotest.(check bool) "has title" true (contains s "Table X");
  Alcotest.(check bool) "row label" true (contains s "client write speed");
  Alcotest.(check bool) "integer cell" true (contains s "165");
  Alcotest.(check bool) "decimal cell" true (contains s "11.4");
  Alcotest.(check bool) "section" true (contains s "Without Write Gathering")

let test_report_mismatch () =
  let r = Report.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Report.add_row \"x\": 1 cells for 2 columns")
    (fun () -> Report.add_row r "x" [ 1.0 ])

let test_trace_records () =
  let eng = Nfsg_sim.Engine.create () in
  let tr = Trace.create eng in
  Nfsg_sim.Engine.spawn eng (fun () ->
      Trace.emit tr ~actor:"client" "8K Write";
      Nfsg_sim.Engine.delay (Nfsg_sim.Time.ms 2);
      Trace.emit tr ~actor:"server" "Metadata to disk");
  Nfsg_sim.Engine.run eng;
  match Trace.events tr with
  | [ (t0, "client", "8K Write"); (t1, "server", "Metadata to disk") ] ->
      Alcotest.(check int) "2ms apart" (Nfsg_sim.Time.ms 2) (t1 - t0)
  | evs -> Alcotest.failf "unexpected events (%d)" (List.length evs)

let test_trace_disabled () =
  let eng = Nfsg_sim.Engine.create () in
  let tr = Trace.create ~enabled:false eng in
  Trace.emit tr ~actor:"x" "y";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.events tr))

let test_trace_render () =
  let eng = Nfsg_sim.Engine.create () in
  let tr = Trace.create eng in
  Nfsg_sim.Engine.spawn eng (fun () -> Trace.emit tr ~actor:"nfsd0" "reply");
  Nfsg_sim.Engine.run eng;
  Alcotest.(check bool) "rendered" true (contains (Trace.render tr) "nfsd0")

let test_trace_ring_wraps () =
  let eng = Nfsg_sim.Engine.create () in
  let tr = Trace.create ~capacity:4 eng in
  Nfsg_sim.Engine.spawn eng (fun () ->
      for i = 0 to 9 do
        Trace.emit tr ~actor:"a" (Printf.sprintf "e%d" i)
      done);
  Nfsg_sim.Engine.run eng;
  Alcotest.(check int) "capacity" 4 (Trace.capacity tr);
  Alcotest.(check int) "dropped count" 6 (Trace.dropped tr);
  let names = List.map (fun (_, _, e) -> e) (Trace.events tr) in
  Alcotest.(check (list string)) "newest 4, oldest first" [ "e6"; "e7"; "e8"; "e9" ] names;
  Alcotest.(check bool) "render notes the drop" true (contains (Trace.render tr) "6 older events dropped");
  Trace.clear tr;
  Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped tr);
  Alcotest.(check int) "clear empties ring" 0 (List.length (Trace.events tr))

let test_metrics_find_or_create () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m ~ns:"x" "hits" in
  Metrics.incr c1;
  Metrics.incr c1;
  (* Re-registering must return the same underlying instrument — the
     restart-accumulation contract. *)
  let c2 = Metrics.counter m ~ns:"x" "hits" in
  Metrics.add c2 3;
  Alcotest.(check int) "one accumulating counter" 5 (Metrics.value c1);
  Alcotest.(check (option int)) "find_counter" (Some 5) (Metrics.find_counter m ~ns:"x" "hits");
  (* A name collision across kinds is a programming error, not data. *)
  (match Metrics.gauge m ~ns:"x" "hits" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (option int)) "other namespace empty" None (Metrics.find_counter m ~ns:"y" "hits")

let test_metrics_json_deterministic () =
  let build order =
    let m = Metrics.create () in
    List.iter
      (fun name -> Metrics.add (Metrics.counter m ~ns:"zeta" name) (String.length name))
      order;
    Metrics.set (Metrics.gauge m ~ns:"alpha" "depth") 2.5;
    Histogram.add (Metrics.histogram m ~ns:"alpha" "lat_us") 42.0;
    Metrics.to_string m
  in
  let a = build [ "b"; "a"; "c" ] and b = build [ "c"; "b"; "a" ] in
  Alcotest.(check string) "registration order invisible" a b;
  Alcotest.(check bool) "schema stamped" true (contains a "nfsgather-metrics/1");
  (* Sorted namespaces: alpha before zeta in the byte stream. *)
  let rec index_of i n =
    if i + String.length n > String.length a then -1
    else if String.sub a i (String.length n) = n then i
    else index_of (i + 1) n
  in
  Alcotest.(check bool) "namespaces sorted" true (index_of 0 "alpha" < index_of 0 "zeta")

let test_metrics_span () =
  let eng = Nfsg_sim.Engine.create () in
  let m = Metrics.create () in
  let h = Metrics.histogram m ~ns:"t" "span_us" in
  Nfsg_sim.Engine.spawn eng (fun () ->
      Metrics.span eng h (fun () -> Nfsg_sim.Engine.delay (Nfsg_sim.Time.ms 3)));
  Nfsg_sim.Engine.run eng;
  Alcotest.(check int) "one sample" 1 (Histogram.count h);
  Alcotest.(check (float 1.0)) "3ms in microseconds" 3000.0 (Histogram.total h)

let prop_summary_mean_in_range =
  QCheck.Test.make ~name:"summary mean between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      Summary.mean s >= Summary.min s -. 1e-9 && Summary.mean s <= Summary.max s +. 1e-9)

let suite =
  [
    Alcotest.test_case "summary basics" `Quick test_summary_basic;
    Alcotest.test_case "summary of empty stream" `Quick test_summary_empty;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram clamps extremes" `Quick test_histogram_clamps;
    Alcotest.test_case "quantile is the geometric midpoint" `Quick test_histogram_quantile_midpoint;
    Alcotest.test_case "underflow bucket midpoint" `Quick test_histogram_underflow_bucket;
    Alcotest.test_case "quantiles are monotone" `Quick test_histogram_quantiles_ordered;
    Alcotest.test_case "report renders aligned table" `Quick test_report_render;
    Alcotest.test_case "report rejects bad row" `Quick test_report_mismatch;
    Alcotest.test_case "trace records timeline" `Quick test_trace_records;
    Alcotest.test_case "disabled trace records nothing" `Quick test_trace_disabled;
    Alcotest.test_case "trace renders" `Quick test_trace_render;
    Alcotest.test_case "trace ring wraps and counts drops" `Quick test_trace_ring_wraps;
    Alcotest.test_case "metrics find-or-create" `Quick test_metrics_find_or_create;
    Alcotest.test_case "metrics JSON is deterministic" `Quick test_metrics_json_deterministic;
    Alcotest.test_case "span times on the sim clock" `Quick test_metrics_span;
    QCheck_alcotest.to_alcotest prop_summary_mean_in_range;
  ]
