open Nfsg_rpc

let test_int_roundtrips () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.uint32 enc 0;
  Xdr.Enc.uint32 enc 0xFFFFFFFF;
  Xdr.Enc.int32 enc (-5);
  Xdr.Enc.uint64 enc 123456789012345;
  Xdr.Enc.bool enc true;
  Xdr.Enc.bool enc false;
  let dec = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes enc) in
  Alcotest.(check int) "u32 min" 0 (Xdr.Dec.uint32 dec);
  Alcotest.(check int) "u32 max" 0xFFFFFFFF (Xdr.Dec.uint32 dec);
  Alcotest.(check int) "i32 negative" (-5) (Xdr.Dec.int32 dec);
  Alcotest.(check int) "u64" 123456789012345 (Xdr.Dec.uint64 dec);
  Alcotest.(check bool) "true" true (Xdr.Dec.bool dec);
  Alcotest.(check bool) "false" false (Xdr.Dec.bool dec);
  Alcotest.(check int) "fully consumed" 0 (Xdr.Dec.remaining dec)

let test_opaque_padding () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.opaque enc (Bytes.of_string "abcde");
  (* 4 length + 5 data + 3 pad *)
  Alcotest.(check int) "padded length" 12 (Xdr.Enc.length enc);
  let dec = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes enc) in
  Alcotest.(check string) "roundtrip" "abcde" (Bytes.to_string (Xdr.Dec.opaque dec));
  Alcotest.(check int) "pad consumed" 0 (Xdr.Dec.remaining dec)

let test_string_roundtrip () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.string enc "";
  Xdr.Enc.string enc "hello world";
  let dec = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes enc) in
  Alcotest.(check string) "empty" "" (Xdr.Dec.string dec);
  Alcotest.(check string) "text" "hello world" (Xdr.Dec.string dec)

let test_truncation_raises () =
  let dec = Xdr.Dec.of_bytes (Bytes.make 2 'x') in
  (match Xdr.Dec.uint32 dec with
  | _ -> Alcotest.fail "expected Decode_error"
  | exception Xdr.Decode_error { what = "uint32"; need = 4; pos = 0; have = 2 } -> ());
  (* A declared opaque length running past the end of the buffer is the
     same typed error, with the cursor past the length word. *)
  let enc = Xdr.Enc.create () in
  Xdr.Enc.uint32 enc 64;
  Xdr.Enc.raw enc (Bytes.make 10 'x');
  let dec = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes enc) in
  match Xdr.Dec.opaque dec with
  | _ -> Alcotest.fail "expected Decode_error"
  | exception Xdr.Decode_error { what = "opaque"; need = 64; pos = 4; have = 14 } -> ()

let test_uint32_range_checked () =
  let enc = Xdr.Enc.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Xdr.uint32: -1") (fun () ->
      Xdr.Enc.uint32 enc (-1))

let test_bad_bool () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.uint32 enc 7;
  let dec = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes enc) in
  match Xdr.Dec.bool dec with
  | _ -> Alcotest.fail "expected Error"
  | exception Xdr.Dec.Error _ -> ()

(* The zero-copy contract: a decoded view aliases the datagram buffer,
   so reusing that buffer is visible through the view — bytes survive
   only where the caller explicitly copied them out. *)
let test_view_aliases_source () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.opaque enc (Bytes.of_string "payload!");
  let buf = Xdr.Enc.to_bytes enc in
  let dec = Xdr.Dec.of_bytes buf in
  let v = Xdr.Dec.opaque_view dec in
  let copied = Xdr.view_copy v in
  Alcotest.(check string) "view reads payload" "payload!" (Xdr.view_to_string v);
  (* Reuse the backing buffer, as the socket layer reuses datagrams. *)
  Bytes.fill buf 0 (Bytes.length buf) 'Z';
  Alcotest.(check string) "view sees the reuse" "ZZZZZZZZ" (Xdr.view_to_string v);
  Alcotest.(check string) "explicit copy survives it" "payload!" (Bytes.to_string copied)

(* Decoding through a view window must stop at the window's end even
   when the backing buffer keeps going, and report positions relative
   to the window. *)
let test_view_decode_bounded () =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.uint32 enc 7;
  Xdr.Enc.uint32 enc 9;
  let buf = Xdr.Enc.to_bytes enc in
  let dec = Xdr.Dec.of_view (Xdr.view_of_bytes ~pos:0 ~len:4 buf) in
  Alcotest.(check int) "word inside the window" 7 (Xdr.Dec.uint32 dec);
  (match Xdr.Dec.uint32 dec with
  | _ -> Alcotest.fail "expected Decode_error"
  | exception Xdr.Decode_error { what = "uint32"; need = 4; pos = 4; have = 4 } -> ());
  (* A mid-buffer window reports window-relative positions too. *)
  let dec = Xdr.Dec.of_view (Xdr.view_of_bytes ~pos:4 ~len:4 buf) in
  Alcotest.(check int) "second word via offset window" 9 (Xdr.Dec.uint32 dec);
  Alcotest.(check int) "window fully consumed" 0 (Xdr.Dec.remaining dec)

let test_view_bounds_checked () =
  let buf = Bytes.make 8 'x' in
  Alcotest.check_raises "len past end"
    (Invalid_argument "Xdr.view_of_bytes: window [4,+8) outside 8-byte buffer") (fun () ->
      ignore (Xdr.view_of_bytes ~pos:4 ~len:8 buf))

let prop_opaque_roundtrip =
  QCheck.Test.make ~name:"opaque roundtrips arbitrary bytes" ~count:300 QCheck.string (fun s ->
      let enc = Xdr.Enc.create () in
      Xdr.Enc.opaque enc (Bytes.of_string s);
      let dec = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes enc) in
      Bytes.to_string (Xdr.Dec.opaque dec) = s)

let prop_mixed_roundtrip =
  QCheck.Test.make ~name:"mixed field sequences roundtrip" ~count:200
    QCheck.(list (pair (int_bound 1000000) string))
    (fun items ->
      let enc = Xdr.Enc.create () in
      List.iter
        (fun (n, s) ->
          Xdr.Enc.uint32 enc n;
          Xdr.Enc.string enc s)
        items;
      let dec = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes enc) in
      List.for_all (fun (n, s) -> Xdr.Dec.uint32 dec = n && Xdr.Dec.string dec = s) items)

let suite =
  [
    Alcotest.test_case "integers roundtrip" `Quick test_int_roundtrips;
    Alcotest.test_case "opaque pads to 4 bytes" `Quick test_opaque_padding;
    Alcotest.test_case "strings roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "truncated input raises" `Quick test_truncation_raises;
    Alcotest.test_case "uint32 range checked" `Quick test_uint32_range_checked;
    Alcotest.test_case "bad bool rejected" `Quick test_bad_bool;
    Alcotest.test_case "views alias their source buffer" `Quick test_view_aliases_source;
    Alcotest.test_case "view decoding stops at the window" `Quick test_view_decode_bounded;
    Alcotest.test_case "view construction bounds-checked" `Quick test_view_bounds_checked;
    QCheck_alcotest.to_alcotest prop_opaque_roundtrip;
    QCheck_alcotest.to_alcotest prop_mixed_roundtrip;
  ]
