open Nfsg_sim
open Nfsg_rpc
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket

let test_call_roundtrip () =
  let call =
    { Rpc.xid = 42; prog = Rpc.nfs_program; vers = 2; proc = 8;
      body = Xdr.view_of_bytes (Bytes.of_string "args") }
  in
  let decoded = Rpc.decode_call (Rpc.encode_call call) in
  Alcotest.(check bool) "roundtrip" true
    (decoded.Rpc.xid = call.Rpc.xid && decoded.Rpc.prog = call.Rpc.prog
    && decoded.Rpc.vers = call.Rpc.vers && decoded.Rpc.proc = call.Rpc.proc
    && Xdr.view_equal decoded.Rpc.body call.Rpc.body)

let reply_eq a b =
  a.Rpc.rxid = b.Rpc.rxid && a.Rpc.stat = b.Rpc.stat && Xdr.view_equal a.Rpc.rbody b.Rpc.rbody

let test_reply_roundtrip () =
  let reply = { Rpc.rxid = 42; stat = Rpc.Success; rbody = Xdr.view_of_bytes (Bytes.of_string "result") } in
  Alcotest.(check bool) "roundtrip" true (reply_eq (Rpc.decode_reply (Rpc.encode_reply reply)) reply);
  let err = { Rpc.rxid = 1; stat = Rpc.Garbage_args; rbody = Xdr.empty_view } in
  Alcotest.(check bool) "error roundtrip" true (reply_eq (Rpc.decode_reply (Rpc.encode_reply err)) err)

let test_is_call_classifier () =
  let call = Rpc.encode_call { Rpc.xid = 1; prog = 1; vers = 1; proc = 1; body = Xdr.empty_view } in
  let reply = Rpc.encode_reply { Rpc.rxid = 1; stat = Rpc.Success; rbody = Xdr.empty_view } in
  Alcotest.(check bool) "call" true (Rpc.is_call call);
  Alcotest.(check bool) "reply" false (Rpc.is_call reply);
  Alcotest.(check bool) "short garbage" false (Rpc.is_call (Bytes.make 3 'x'))

(* {1 Duplicate cache} *)

let test_dupcache_lifecycle () =
  let eng = Engine.create () in
  let dc = Dupcache.create eng () in
  Alcotest.(check bool) "first is new" true (Dupcache.admit dc ~client:"c" ~xid:1 = Dupcache.New);
  Alcotest.(check bool) "repeat in flight dropped" true
    (Dupcache.admit dc ~client:"c" ~xid:1 = Dupcache.In_progress);
  Alcotest.(check int) "drop counted" 1 (Dupcache.drops dc);
  Dupcache.complete dc ~client:"c" ~xid:1 (Bytes.of_string "reply!");
  (match Dupcache.admit dc ~client:"c" ~xid:1 with
  | Dupcache.Replay b -> Alcotest.(check string) "replayed" "reply!" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected replay");
  Alcotest.(check int) "replay counted" 1 (Dupcache.replays dc);
  (* Same xid from a different client is distinct. *)
  Alcotest.(check bool) "other client is new" true (Dupcache.admit dc ~client:"d" ~xid:1 = Dupcache.New)

let test_dupcache_ttl_expiry () =
  let eng = Engine.create () in
  let dc = Dupcache.create eng ~ttl:(Time.sec 2) () in
  ignore (Dupcache.admit dc ~client:"c" ~xid:9);
  Dupcache.complete dc ~client:"c" ~xid:9 (Bytes.of_string "r");
  Engine.schedule eng ~after:(Time.sec 5) (fun () ->
      Alcotest.(check bool) "expired entry re-executes" true
        (Dupcache.admit dc ~client:"c" ~xid:9 = Dupcache.New));
  Engine.run eng

let test_dupcache_eviction () =
  let eng = Engine.create () in
  let dc = Dupcache.create eng ~capacity:4 () in
  for xid = 1 to 10 do
    ignore (Dupcache.admit dc ~client:"c" ~xid);
    Dupcache.complete dc ~client:"c" ~xid (Bytes.create 0)
  done;
  Alcotest.(check int) "never above capacity" 4 (Dupcache.entries dc);
  Alcotest.(check int) "evictions counted" 6 (Dupcache.evictions dc)

let test_dupcache_evicts_least_recently_touched () =
  let eng = Engine.create () in
  let dc = Dupcache.create eng ~capacity:3 ~ttl:(Time.sec 60) () in
  Engine.spawn eng (fun () ->
      for xid = 1 to 3 do
        ignore (Dupcache.admit dc ~client:"c" ~xid);
        Dupcache.complete dc ~client:"c" ~xid (Bytes.of_string (string_of_int xid));
        Engine.delay (Time.ms 1)
      done;
      (* Touch xid 1 so xid 2 becomes the coldest completed entry. *)
      (match Dupcache.admit dc ~client:"c" ~xid:1 with
      | Dupcache.Replay _ -> ()
      | _ -> Alcotest.fail "warm entry should replay");
      ignore (Dupcache.admit dc ~client:"c" ~xid:4);
      Alcotest.(check int) "still at capacity" 3 (Dupcache.entries dc);
      Alcotest.(check int) "one eviction" 1 (Dupcache.evictions dc);
      (* The victim was xid 2 (least recently touched); 1 and 3 still
         replay (found-path admits never evict). *)
      (match Dupcache.admit dc ~client:"c" ~xid:3 with
      | Dupcache.Replay b -> Alcotest.(check string) "survivor replays" "3" (Bytes.to_string b)
      | _ -> Alcotest.fail "xid 3 should have survived");
      (match Dupcache.admit dc ~client:"c" ~xid:1 with
      | Dupcache.Replay _ -> ()
      | _ -> Alcotest.fail "xid 1 should have survived");
      (* The evicted key re-executes (costing one more eviction to make
         room for its new in-flight entry). *)
      Alcotest.(check bool) "coldest evicted" true (Dupcache.admit dc ~client:"c" ~xid:2 = Dupcache.New);
      Alcotest.(check int) "bounded throughout" 3 (Dupcache.entries dc);
      Alcotest.(check int) "second eviction" 2 (Dupcache.evictions dc));
  Engine.run eng

let test_dupcache_ttl_eager_drop () =
  (* Expired completed entries are dropped before any eviction is
     considered, and counted separately from evictions. *)
  let eng = Engine.create () in
  let m = Nfsg_stats.Metrics.create () in
  let dc = Dupcache.create eng ~capacity:8 ~ttl:(Time.ms 5) ~metrics:m () in
  ignore (Dupcache.admit dc ~client:"c" ~xid:1);
  Dupcache.complete dc ~client:"c" ~xid:1 (Bytes.of_string "r");
  Engine.schedule eng ~after:(Time.ms 20) (fun () ->
      ignore (Dupcache.admit dc ~client:"c" ~xid:2);
      Alcotest.(check int) "stale entry dropped on admit" 1 (Dupcache.entries dc);
      Alcotest.(check (option int)) "expiration counted" (Some 1)
        (Nfsg_stats.Metrics.find_counter m ~ns:"rpc.dupcache" "expirations");
      Alcotest.(check int) "not an eviction" 0 (Dupcache.evictions dc));
  Engine.run eng

let test_dupcache_overflow_all_in_flight () =
  let eng = Engine.create () in
  let dc = Dupcache.create eng ~capacity:2 () in
  Alcotest.(check bool) "first" true (Dupcache.admit dc ~client:"a" ~xid:1 = Dupcache.New);
  Alcotest.(check bool) "second" true (Dupcache.admit dc ~client:"a" ~xid:2 = Dupcache.New);
  (* Every slot pinned by an in-flight request: the third executes
     uncached instead of growing the table or evicting pinned work. *)
  Alcotest.(check bool) "third still executes" true (Dupcache.admit dc ~client:"a" ~xid:3 = Dupcache.New);
  Alcotest.(check int) "table did not grow" 2 (Dupcache.entries dc);
  Alcotest.(check int) "overflow counted" 1 (Dupcache.overflows dc);
  Alcotest.(check int) "nothing evicted" 0 (Dupcache.evictions dc);
  (* Its completion is a no-op (never inserted) — a retransmission of
     the overflowed request re-executes. *)
  Dupcache.complete dc ~client:"a" ~xid:3 (Bytes.of_string "r3");
  Alcotest.(check bool) "overflowed request uncached" true
    (Dupcache.admit dc ~client:"a" ~xid:3 = Dupcache.New);
  Alcotest.(check int) "second overflow" 2 (Dupcache.overflows dc);
  (* Once a slot completes it becomes evictable and admission resumes. *)
  Dupcache.complete dc ~client:"a" ~xid:1 (Bytes.of_string "r1");
  Alcotest.(check bool) "admits again" true (Dupcache.admit dc ~client:"a" ~xid:4 = Dupcache.New);
  Alcotest.(check int) "completed slot evicted" 1 (Dupcache.evictions dc);
  Alcotest.(check int) "still bounded" 2 (Dupcache.entries dc)

(* {1 svc + rpc_client end to end (echo server)} *)

let echo_rig ?(loss = 0.0) ?(with_dupcache = false) () =
  let eng = Engine.create () in
  let segment = Segment.create eng { Segment.fddi with Segment.loss_prob = loss } in
  let ssock = Socket.create segment ~addr:"server" () in
  let svc_calls = ref 0 in
  let dupcache = if with_dupcache then Some (Dupcache.create eng ()) else None in
  let svc =
    Svc.create eng ~sock:ssock ?dupcache ~nfsds:2
      ~dispatch:(fun _tr call ->
        incr svc_calls;
        Svc.Reply (Rpc.Success, Xdr.view_copy call.Rpc.body))
      ()
  in
  let csock = Socket.create segment ~addr:"client" () in
  let params =
    {
      Rpc_client.default_params with
      Rpc_client.initial_rto = Time.ms 50;
      min_rto = Time.ms 50;
      max_attempts = 40;
    }
  in
  let rpc = Rpc_client.create eng ~sock:csock ~server:"server" ~params () in
  (eng, svc, rpc, svc_calls)

let run_driver eng f =
  let r = ref None in
  Engine.spawn eng ~name:"driver" (fun () -> r := Some (f ()));
  Engine.run eng;
  match !r with Some v -> v | None -> Alcotest.fail "driver blocked"

let test_echo_roundtrip () =
  let eng, _svc, rpc, _ = echo_rig () in
  run_driver eng (fun () ->
      let stat, body = Rpc_client.call rpc ~proc:1 (Bytes.of_string "ping") in
      Alcotest.(check bool) "success" true (stat = Rpc.Success);
      Alcotest.(check string) "echoed" "ping" (Xdr.view_to_string body));
  Alcotest.(check int) "one send, no retries" 0 (Rpc_client.retransmissions rpc)

let test_retransmission_on_loss () =
  (* 35% datagram loss: the call must still eventually succeed. *)
  let eng, _svc, rpc, _ = echo_rig ~loss:0.35 () in
  run_driver eng (fun () ->
      for i = 1 to 10 do
        let stat, body = Rpc_client.call rpc ~proc:1 (Bytes.of_string (string_of_int i)) in
        Alcotest.(check bool) "success" true (stat = Rpc.Success);
        Alcotest.(check string) "echoed" (string_of_int i) (Xdr.view_to_string body)
      done);
  Alcotest.(check bool) "retransmissions happened" true (Rpc_client.retransmissions rpc > 0)

let test_dupcache_suppresses_reexecution () =
  (* Heavy loss plus a dup cache: the number of *executions* must equal
     the number of distinct calls even though retransmissions occur. *)
  let eng, _svc, rpc, svc_calls = echo_rig ~loss:0.35 ~with_dupcache:true () in
  run_driver eng (fun () ->
      for i = 1 to 20 do
        ignore (Rpc_client.call rpc ~proc:1 (Bytes.of_string (string_of_int i)))
      done);
  Alcotest.(check bool) "retransmissions happened" true (Rpc_client.retransmissions rpc > 0);
  Alcotest.(check int) "each call executed exactly once" 20 !svc_calls

let test_rtt_adaptation () =
  let eng, _svc, rpc, _ = echo_rig () in
  run_driver eng (fun () ->
      Alcotest.(check bool) "no estimate yet" true (Rpc_client.rtt_estimate rpc Rpc_client.Heavy = None);
      for _ = 1 to 5 do
        ignore (Rpc_client.call rpc ~klass:Rpc_client.Heavy ~proc:1 (Bytes.make 8192 'x'))
      done;
      match Rpc_client.rtt_estimate rpc Rpc_client.Heavy with
      | None -> Alcotest.fail "no RTT estimate after calls"
      | Some srtt -> if srtt <= 0 then Alcotest.fail "non-positive srtt")

let test_delayed_reply_architecture () =
  (* A dispatch that returns Reply_pending and completes the reply from
     a different process 30ms later: the paper's one-nfsd-answers-for-
     another architecture. *)
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let ssock = Socket.create segment ~addr:"server" () in
  let pending = ref [] in
  let svc_box = ref None in
  let svc =
    Svc.create eng ~sock:ssock ~nfsds:1
      ~dispatch:(fun tr call ->
        (* the datagram's bytes must outlive the dispatch: copy out *)
        pending := (tr, Xdr.view_copy call.Rpc.body) :: !pending;
        Svc.Reply_pending)
      ()
  in
  svc_box := Some svc;
  Engine.spawn eng ~name:"metadata-writer" (fun () ->
      Engine.delay (Time.ms 30);
      List.iter (fun (tr, body) -> Svc.send_reply svc tr Rpc.Success body) (List.rev !pending));
  let csock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock:csock ~server:"server" () in
  let got = ref "" in
  let t_done = ref 0 in
  Engine.spawn eng ~name:"caller" (fun () ->
      let _, body = Rpc_client.call rpc ~proc:8 (Bytes.of_string "deferred") in
      got := Xdr.view_to_string body;
      t_done := Engine.now eng);
  Engine.run eng;
  Alcotest.(check string) "reply delivered" "deferred" !got;
  Alcotest.(check bool) "after the 30ms defer" true (!t_done >= Time.ms 30);
  Alcotest.(check int) "handle recycled" 0 (Svc.handles_outstanding svc);
  Alcotest.(check bool) "handle back in cache" true (Svc.handle_cache_size svc >= 1)

let test_double_reply_rejected () =
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let ssock = Socket.create segment ~addr:"server" () in
  let failed = ref false in
  let svc_ref = ref None in
  let svc =
    Svc.create eng ~sock:ssock ~nfsds:1
      ~dispatch:(fun tr _call ->
        let svc = Option.get !svc_ref in
        Svc.send_reply svc tr Rpc.Success (Bytes.create 0);
        (try Svc.send_reply svc tr Rpc.Success (Bytes.create 0)
         with Invalid_argument _ -> failed := true);
        Svc.Reply_pending)
      ()
  in
  svc_ref := Some svc;
  let csock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock:csock ~server:"server" () in
  run_driver eng (fun () -> ignore (Rpc_client.call rpc ~proc:0 (Bytes.create 0)));
  Alcotest.(check bool) "second reply rejected" true !failed

let test_garbage_counted () =
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let ssock = Socket.create segment ~addr:"server" () in
  let svc =
    Svc.create eng ~sock:ssock ~nfsds:1
      ~dispatch:(fun _ _ -> Svc.Reply (Rpc.Success, Bytes.create 0))
      ()
  in
  let junk_sock = Socket.create segment ~addr:"junk" () in
  Socket.send junk_sock ~dst:"server" (Bytes.of_string "not rpc at all");
  Engine.run eng;
  Alcotest.(check int) "garbage dropped" 1 (Svc.garbage_dropped svc)

let test_truncated_write_garbage_args () =
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let ssock = Socket.create segment ~addr:"server" () in
  let svc =
    Svc.create eng ~sock:ssock ~nfsds:1
      ~dispatch:(fun _ call ->
        (* Decode the arguments the way the NFS server does: the typed
           Xdr.Decode_error escapes the dispatch and Svc must map it to
           GARBAGE_ARGS rather than SYSTEM_ERR. *)
        match Nfsg_nfs.Proto.decode_args ~proc:call.Rpc.proc call.Rpc.body with
        | _ -> Svc.Reply (Rpc.Success, Bytes.create 0))
      ()
  in
  let csock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock:csock ~server:"server" () in
  let full =
    Nfsg_nfs.Proto.encode_args
      (Nfsg_nfs.Proto.Write
         {
           fh = { Nfsg_nfs.Proto.fsid = 1; vgen = 1; inum = 2; gen = 1 };
           offset = 0;
           data = Xdr.view_of_bytes (Bytes.make 8192 'w');
         })
  in
  (* Cut the opaque payload short: still well-framed RPC, but the WRITE
     data's declared length now runs past the end of the body. *)
  let truncated = Bytes.sub full 0 (Bytes.length full - 4000) in
  let stat, _ =
    run_driver eng (fun () ->
        Rpc_client.call rpc ~proc:Nfsg_nfs.Proto.proc_write truncated)
  in
  Alcotest.(check bool) "GARBAGE_ARGS reply" true (stat = Rpc.Garbage_args);
  Alcotest.(check int) "counted as garbage" 1 (Svc.garbage_dropped svc);
  Alcotest.(check int) "not a dispatch error" 0 (Svc.dispatch_errors svc)

let suite =
  [
    Alcotest.test_case "call encode/decode" `Quick test_call_roundtrip;
    Alcotest.test_case "reply encode/decode" `Quick test_reply_roundtrip;
    Alcotest.test_case "is_call classifier" `Quick test_is_call_classifier;
    Alcotest.test_case "dupcache lifecycle" `Quick test_dupcache_lifecycle;
    Alcotest.test_case "dupcache TTL expiry" `Quick test_dupcache_ttl_expiry;
    Alcotest.test_case "dupcache LRU eviction" `Quick test_dupcache_eviction;
    Alcotest.test_case "dupcache evicts the coldest entry" `Quick test_dupcache_evicts_least_recently_touched;
    Alcotest.test_case "dupcache drops expired before evicting" `Quick test_dupcache_ttl_eager_drop;
    Alcotest.test_case "dupcache overflow with all slots in flight" `Quick test_dupcache_overflow_all_in_flight;
    Alcotest.test_case "echo roundtrip" `Quick test_echo_roundtrip;
    Alcotest.test_case "retransmission survives loss" `Quick test_retransmission_on_loss;
    Alcotest.test_case "dupcache stops re-execution" `Quick test_dupcache_suppresses_reexecution;
    Alcotest.test_case "RTT estimator adapts" `Quick test_rtt_adaptation;
    Alcotest.test_case "delayed replies via handle cache" `Quick test_delayed_reply_architecture;
    Alcotest.test_case "double reply rejected" `Quick test_double_reply_rejected;
    Alcotest.test_case "garbage datagrams dropped" `Quick test_garbage_counted;
    Alcotest.test_case "truncated WRITE args get GARBAGE_ARGS" `Quick
      test_truncated_write_garbage_args;
  ]
