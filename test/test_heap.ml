open Nfsg_sim

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iteri (fun i k -> Heap.add h ~key:k ~seq:i k) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (k, _, _) -> drain (k :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.add h ~key:42 ~seq:i i
  done;
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (_, _, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "insertion order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (drain [])

let test_interleaved () =
  let h = Heap.create () in
  Heap.add h ~key:10 ~seq:0 "a";
  Heap.add h ~key:5 ~seq:1 "b";
  (match Heap.pop h with
  | Some (5, _, "b") -> ()
  | _ -> Alcotest.fail "expected b at key 5");
  Heap.add h ~key:1 ~seq:2 "c";
  (match Heap.pop h with
  | Some (1, _, "c") -> ()
  | _ -> Alcotest.fail "expected c at key 1");
  match Heap.pop h with
  | Some (10, _, "a") -> ()
  | _ -> Alcotest.fail "expected a at key 10"

let test_grow () =
  let h = Heap.create () in
  let n = 10_000 in
  for i = n downto 1 do
    Heap.add h ~key:i ~seq:(n - i) i
  done;
  Alcotest.(check int) "size" n (Heap.size h);
  let prev = ref 0 in
  let ok = ref true in
  for _ = 1 to n do
    match Heap.pop h with
    | Some (k, _, _) ->
        if k < !prev then ok := false;
        prev := k
    | None -> ok := false
  done;
  Alcotest.(check bool) "monotone drain of 10k" true !ok

let test_clear () =
  let h = Heap.create () in
  Heap.add h ~key:1 ~seq:0 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sort =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.add h ~key:k ~seq:i k) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, _, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let prop_stable =
  QCheck.Test.make ~name:"equal keys preserve insertion order" ~count:200
    QCheck.(list (pair (int_bound 3) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iteri (fun i (k, v) -> Heap.add h ~key:k ~seq:i (i, v)) items;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (k, _, (i, _)) -> drain ((k, i) :: acc)
      in
      let out = drain [] in
      (* Within each key, the sequence indices must be increasing. *)
      let rec check = function
        | (k1, i1) :: ((k2, i2) :: _ as rest) ->
            (k1 <> k2 || i1 < i2) && check rest
        | _ -> true
      in
      check out)

(* Random interleavings of add and pop against a reference: every pop
   must return exactly the (key, seq)-least outstanding entry, so ties
   stay seq-stable even when pops punch holes mid-stream (the shape
   the flat-array sift actually runs under, unlike add-all-then-drain). *)
let prop_interleaved_reference =
  QCheck.Test.make ~name:"interleaved add/pop matches stable reference" ~count:200
    QCheck.(list (option (int_bound 20)))
    (fun ops ->
      let h = Heap.create () in
      let outstanding = ref [] in
      let seq = ref 0 in
      let le (k1, s1) (k2, s2) = k1 < k2 || (k1 = k2 && s1 < s2) in
      let ok = ref true in
      let pop_and_check () =
        match (Heap.pop h, !outstanding) with
        | None, [] -> ()
        | Some (k, s, v), (_ :: _ as entries) ->
            let m = List.fold_left (fun a e -> if le e a then e else a) (List.hd entries) entries in
            if (k, s) <> m || v <> snd m then ok := false;
            outstanding := List.filter (fun e -> e <> m) !outstanding
        | _ -> ok := false
      in
      List.iter
        (function
          | Some k ->
              Heap.add h ~key:k ~seq:!seq !seq;
              outstanding := (k, !seq) :: !outstanding;
              incr seq
          | None -> pop_and_check ())
        ops;
      while not (Heap.is_empty h) do
        pop_and_check ()
      done;
      !ok && !outstanding = [])

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pops in key order" `Quick test_ordering;
    Alcotest.test_case "FIFO among equal keys" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved add/pop" `Quick test_interleaved;
    Alcotest.test_case "grows past initial capacity" `Quick test_grow;
    Alcotest.test_case "clear empties" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    QCheck_alcotest.to_alcotest prop_stable;
    QCheck_alcotest.to_alcotest prop_interleaved_reference;
  ]
