open Nfsg_sim

(* Run [body] inside a fresh engine and drain it. *)
let sim body =
  let eng = Engine.create () in
  body eng;
  Engine.run eng;
  eng

let test_ivar_rendezvous () =
  let got = ref 0 in
  ignore
    (sim (fun eng ->
         let iv = Ivar.create () in
         Engine.spawn eng (fun () -> got := Ivar.read iv);
         Engine.spawn eng (fun () ->
             Engine.delay (Time.ms 1);
             Ivar.fill iv 7)));
  Alcotest.(check int) "value" 7 !got

let test_ivar_already_filled () =
  let got = ref 0 in
  ignore
    (sim (fun eng ->
         let iv = Ivar.create () in
         Ivar.fill iv 9;
         Engine.spawn eng (fun () -> got := Ivar.read iv)));
  Alcotest.(check int) "immediate" 9 !got

let test_ivar_multi_reader () =
  let total = ref 0 in
  ignore
    (sim (fun eng ->
         let iv = Ivar.create () in
         for _ = 1 to 5 do
           Engine.spawn eng (fun () -> total := !total + Ivar.read iv)
         done;
         Engine.spawn eng (fun () -> Ivar.fill iv 3)));
  Alcotest.(check int) "all readers woken" 15 !total

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv ();
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Ivar.fill iv ())

let test_condition_signal_fifo () =
  let order = ref [] in
  ignore
    (sim (fun eng ->
         let c = Condition.create () in
         for i = 1 to 3 do
           Engine.spawn eng (fun () ->
               Condition.wait c;
               order := i :: !order)
         done;
         Engine.spawn eng (fun () ->
             Engine.delay (Time.ms 1);
             Condition.signal c;
             Condition.signal c;
             Condition.signal c)));
  Alcotest.(check (list int)) "FIFO wakeups" [ 1; 2; 3 ] (List.rev !order)

let test_condition_broadcast () =
  let woke = ref 0 in
  ignore
    (sim (fun eng ->
         let c = Condition.create () in
         for _ = 1 to 4 do
           Engine.spawn eng (fun () ->
               Condition.wait c;
               incr woke)
         done;
         Engine.spawn eng (fun () ->
             Engine.delay (Time.ms 1);
             Condition.broadcast c)));
  Alcotest.(check int) "all four" 4 !woke

let test_condition_timeout () =
  let results = ref [] in
  ignore
    (sim (fun eng ->
         let c = Condition.create () in
         Engine.spawn eng (fun () ->
             let r = Condition.wait_timeout eng c (Time.ms 5) in
             results := ("timeout", r, Engine.now eng) :: !results);
         Engine.spawn eng (fun () ->
             let r = Condition.wait_timeout eng c (Time.ms 20) in
             results := ("signalled", r, Engine.now eng) :: !results);
         Engine.spawn eng (fun () ->
             Engine.delay (Time.ms 10);
             Condition.signal c)));
  (* First waiter timed out at 5ms; at 10ms the signal must skip the
     dead waiter and wake the second. *)
  let find tag = List.find (fun (t, _, _) -> t = tag) !results in
  let _, r1, t1 = find "timeout" in
  Alcotest.(check bool) "timed out" false r1;
  Alcotest.(check int) "at 5ms" (Time.ms 5) t1;
  let _, r2, t2 = find "signalled" in
  Alcotest.(check bool) "signalled" true r2;
  Alcotest.(check int) "at 10ms" (Time.ms 10) t2

let test_condition_signal_cancels_timer () =
  ignore
    (sim (fun eng ->
         let c = Condition.create () in
         Engine.spawn eng (fun () ->
             let r = Condition.wait_timeout eng c (Time.ms 50) in
             Alcotest.(check bool) "signal wins" true r);
         Engine.spawn eng (fun () ->
             Engine.delay (Time.ms 1);
             Condition.signal c)))

let test_mutex_exclusion () =
  let inside = ref 0 and max_inside = ref 0 in
  ignore
    (sim (fun eng ->
         let m = Mutex.create () in
         for _ = 1 to 5 do
           Engine.spawn eng (fun () ->
               Mutex.with_lock m (fun () ->
                   incr inside;
                   max_inside := Stdlib.max !max_inside !inside;
                   Engine.delay (Time.ms 1);
                   decr inside))
         done));
  Alcotest.(check int) "never two holders" 1 !max_inside

let test_mutex_fifo () =
  let order = ref [] in
  ignore
    (sim (fun eng ->
         let m = Mutex.create () in
         Engine.spawn eng (fun () ->
             Mutex.with_lock m (fun () -> Engine.delay (Time.ms 5)));
         for i = 1 to 3 do
           Engine.spawn eng (fun () ->
               Engine.delay (Time.us i);
               (* Arrival order 1,2,3 *)
               Mutex.with_lock m (fun () -> order := i :: !order))
         done));
  Alcotest.(check (list int)) "granted in arrival order" [ 1; 2; 3 ] (List.rev !order)

(* Regression for the lock leak nfsrace's Y003 flagged: an exception
   the critical section did not anticipate must not leave the lock
   held, or the next fiber to take it parks forever. *)
exception Unexpected

let test_with_lock_releases_on_exception () =
  let reacquired = ref false in
  ignore
    (sim (fun eng ->
         let m = Mutex.create () in
         Engine.spawn eng (fun () ->
             (match Mutex.with_lock m (fun () -> raise Unexpected) with
             | () -> ()
             | exception Unexpected -> ());
             Alcotest.(check bool) "released after raise" false (Mutex.locked m);
             Mutex.with_lock m (fun () -> reacquired := true))));
  Alcotest.(check bool) "lock usable again" true !reacquired

let test_locked_run_releases_on_exception () =
  let order = ref [] in
  let note tag = order := tag :: !order in
  (match
     Locked.run
       ~acquire:(fun () -> note "acquire")
       ~release:(fun () -> note "release")
       (fun () -> note "body"; raise Unexpected)
   with
  | () -> ()
  | exception Unexpected -> note "escaped");
  Alcotest.(check (list string))
    "release runs exactly once, before the exception escapes"
    [ "acquire"; "body"; "release"; "escaped" ]
    (List.rev !order)

let test_mutex_unlock_by_stranger () =
  let failed = ref false in
  ignore
    (sim (fun eng ->
         let m = Mutex.create ~name:"vnode" () in
         Engine.spawn eng ~name:"owner" (fun () ->
             Mutex.lock m;
             Engine.delay (Time.ms 10);
             Mutex.unlock m);
         Engine.spawn eng ~name:"stranger" (fun () ->
             Engine.delay (Time.ms 1);
             try Mutex.unlock m with Invalid_argument _ -> failed := true)));
  Alcotest.(check bool) "stranger rejected" true !failed

let test_try_lock () =
  ignore
    (sim (fun eng ->
         let m = Mutex.create () in
         Engine.spawn eng (fun () ->
             Alcotest.(check bool) "first try succeeds" true (Mutex.try_lock m);
             Alcotest.(check bool) "second try fails" false (Mutex.try_lock m);
             Mutex.unlock m;
             Alcotest.(check bool) "after unlock succeeds" true (Mutex.try_lock m);
             Mutex.unlock m)))

let test_semaphore_limits () =
  let inside = ref 0 and max_inside = ref 0 in
  ignore
    (sim (fun eng ->
         let s = Semaphore.create 2 in
         for _ = 1 to 6 do
           Engine.spawn eng (fun () ->
               Semaphore.acquire s;
               incr inside;
               max_inside := Stdlib.max !max_inside !inside;
               Engine.delay (Time.ms 1);
               decr inside;
               Semaphore.release s)
         done));
  Alcotest.(check int) "at most 2" 2 !max_inside

let test_squeue_blocking_get () =
  let got = ref [] in
  ignore
    (sim (fun eng ->
         let q = Squeue.create () in
         Engine.spawn eng (fun () ->
             got := Squeue.get q :: !got;
             got := Squeue.get q :: !got);
         Engine.spawn eng (fun () ->
             Engine.delay (Time.ms 1);
             Squeue.put q "x";
             Squeue.put q "y")));
  Alcotest.(check (list string)) "in order" [ "x"; "y" ] (List.rev !got)

let test_squeue_competing_getters_fifo () =
  let order = ref [] in
  ignore
    (sim (fun eng ->
         let q = Squeue.create () in
         for i = 1 to 3 do
           Engine.spawn eng (fun () ->
               Engine.delay (Time.us i);
               let v = Squeue.get q in
               order := (i, v) :: !order)
         done;
         Engine.spawn eng (fun () ->
             Engine.delay (Time.ms 1);
             List.iter (Squeue.put q) [ "a"; "b"; "c" ])));
  Alcotest.(check (list (pair int string)))
    "oldest getter first"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (List.rev !order)

let test_resource_utilization () =
  let eng = Engine.create () in
  let r = Resource.create eng "disk" in
  Engine.spawn eng (fun () ->
      Resource.use r (Time.ms 30);
      Engine.delay (Time.ms 10);
      Resource.use r (Time.ms 20));
  Engine.run eng;
  (* 50ms busy over 60ms elapsed. *)
  Alcotest.(check int) "elapsed 60ms" (Time.ms 60) (Engine.now eng);
  Alcotest.(check int) "busy 50ms" (Time.ms 50) (Resource.busy_time r);
  let u = Resource.utilization r ~busy0:Time.zero ~t0:Time.zero in
  Alcotest.(check (float 0.001)) "5/6 utilised" (5.0 /. 6.0) u;
  Alcotest.(check int) "2 jobs" 2 (Resource.jobs r)

let test_resource_queueing () =
  let eng = Engine.create () in
  let r = Resource.create eng ~capacity:2 "cpu" in
  let done_at = ref [] in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () ->
        Resource.use r (Time.ms 10);
        done_at := Engine.now eng :: !done_at)
  done;
  Engine.run eng;
  (* Two slots: finish at 10,10,20,20. *)
  Alcotest.(check (list int))
    "pairs" [ Time.ms 10; Time.ms 10; Time.ms 20; Time.ms 20 ]
    (List.sort compare !done_at)

let suite =
  [
    Alcotest.test_case "ivar rendezvous" `Quick test_ivar_rendezvous;
    Alcotest.test_case "ivar read after fill" `Quick test_ivar_already_filled;
    Alcotest.test_case "ivar wakes all readers" `Quick test_ivar_multi_reader;
    Alcotest.test_case "ivar rejects double fill" `Quick test_ivar_double_fill;
    Alcotest.test_case "condition signal is FIFO" `Quick test_condition_signal_fifo;
    Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
    Alcotest.test_case "condition timeout vs signal" `Quick test_condition_timeout;
    Alcotest.test_case "signal cancels pending timeout" `Quick test_condition_signal_cancels_timer;
    Alcotest.test_case "mutex mutual exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mutex FIFO hand-off" `Quick test_mutex_fifo;
    Alcotest.test_case "mutex rejects foreign unlock" `Quick test_mutex_unlock_by_stranger;
    Alcotest.test_case "with_lock releases on exception" `Quick test_with_lock_releases_on_exception;
    Alcotest.test_case "Locked.run releases on exception" `Quick test_locked_run_releases_on_exception;
    Alcotest.test_case "try_lock" `Quick test_try_lock;
    Alcotest.test_case "semaphore bounds concurrency" `Quick test_semaphore_limits;
    Alcotest.test_case "squeue blocking get" `Quick test_squeue_blocking_get;
    Alcotest.test_case "squeue getters served FIFO" `Quick test_squeue_competing_getters_fifo;
    Alcotest.test_case "resource busy-time accounting" `Quick test_resource_utilization;
    Alcotest.test_case "resource queues beyond capacity" `Quick test_resource_queueing;
  ]
