open Nfsg_sim
module Lc = Nfsg_experiments.Laddis_curve
module Json = Nfsg_stats.Json

(* {1 Knee detection and capacity rating on synthetic curves} *)

(* A textbook curve: tracks the offered load, then sags. *)
let synthetic =
  [ (60.0, 59.0); (120.0, 118.0); (180.0, 175.0); (240.0, 190.0); (300.0, 188.0) ]

let test_detect_knee () =
  Alcotest.(check (option int)) "knee at the first sagging rung" (Some 3)
    (Lc.detect_knee ~frac:0.9 synthetic);
  Alcotest.(check (option int)) "stricter frac knees earlier" (Some 2)
    (Lc.detect_knee ~frac:0.98 synthetic);
  Alcotest.(check (option int)) "lax frac never knees" None
    (Lc.detect_knee ~frac:0.6 synthetic);
  Alcotest.(check (option int)) "empty ladder has no knee" None (Lc.detect_knee ~frac:0.9 []);
  Alcotest.(check (option int)) "sagging from rung one" (Some 0)
    (Lc.detect_knee ~frac:0.9 [ (100.0, 50.0) ])

let test_capacity_rating () =
  Alcotest.(check (float 1e-9)) "best sustained rung" 175.0
    (Lc.capacity_rating ~frac:0.9 synthetic);
  (* Every rung sagged: rated at what it actually delivered. *)
  Alcotest.(check (float 1e-9)) "all-sagged fallback" 55.0
    (Lc.capacity_rating ~frac:0.9 [ (100.0, 50.0); (200.0, 55.0) ]);
  Alcotest.(check (float 1e-9)) "empty ladder rates zero" 0.0 (Lc.capacity_rating ~frac:0.9 [])

let test_procs_for () =
  Alcotest.(check int) "floor of four stations" 4 (Lc.procs_for ~procs_max:48 10.0);
  Alcotest.(check int) "one station per ~10 ops/s" 24 (Lc.procs_for ~procs_max:48 240.0);
  Alcotest.(check int) "clamped to the pool ceiling" 48 (Lc.procs_for ~procs_max:48 600.0)

let test_grid_override_validates () =
  Alcotest.check_raises "unknown label rejected"
    (Invalid_argument "Laddis_curve: unknown configuration \"warp9\"") (fun () ->
      Lc.set_grid_override (Some [ "warp9" ]))

(* {1 Double-run byte-determinism}

   The real sweep, shrunk: two configurations, two rungs, short
   windows. Same property as the other committed artifacts — two runs
   inside one process with Reset fired in between must render byte for
   byte the same JSON. The grid/ladder overrides are installed after
   each Reset (which clears them), exercising the same path the
   nfsgather flags use. *)

let tiny_sweep =
  {
    Lc.default_sweep with
    Lc.max_points = 2;
    procs_max = 8;
    warmup = Time.ms 100;
    measure = Time.ms 400;
    nfsds = 8;
  }

let run_once () =
  Reset.run_all ();
  Lc.set_grid_override (Some [ "baseline"; "gather" ]);
  let json = Lc.bench_laddis_curve ~sweep:tiny_sweep () in
  Lc.set_grid_override None;
  json

let test_double_run () =
  let first = run_once () and second = run_once () in
  Alcotest.(check bool) "byte-identical across Reset.run_all" true
    (String.equal (Json.to_string ~pretty:true first) (Json.to_string ~pretty:true second));
  (* And the override really restricted the grid. *)
  let labels =
    match Option.bind (Json.member "configs" first) Json.to_list with
    | Some configs -> List.filter_map (fun c -> Option.bind (Json.member "config" c) Json.to_str) configs
    | None -> []
  in
  Alcotest.(check (list string)) "grid restricted" [ "baseline"; "gather" ] labels

let suite =
  [
    Alcotest.test_case "knee detection on synthetic curves" `Quick test_detect_knee;
    Alcotest.test_case "capacity rating" `Quick test_capacity_rating;
    Alcotest.test_case "station pool scales with offered load" `Quick test_procs_for;
    Alcotest.test_case "grid override validates labels" `Quick test_grid_override_validates;
    Alcotest.test_case "tiny sweep is double-run deterministic" `Quick test_double_run;
  ]
