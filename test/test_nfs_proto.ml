open Nfsg_nfs
module Xdr = Nfsg_rpc.Xdr

let fh inum gen = { Proto.fsid = 1; vgen = 1; inum; gen }

let roundtrip_args args =
  let proc = Proto.proc_of_args args in
  Proto.decode_args ~proc (Xdr.view_of_bytes (Proto.encode_args args))

(* WRITE data is a view after decoding, so structural equality on the
   args would compare backing buffers; re-encoding instead compares
   the wire form, which is what a roundtrip means. *)
let args_eq a b = Proto.encode_args a = Proto.encode_args b

let test_args_roundtrip () =
  let cases =
    [
      Proto.Null;
      Proto.Getattr (fh 3 1);
      Proto.Setattr (fh 4 2, Proto.sattr_truncate 0);
      Proto.Lookup (fh 1 1, "etc");
      Proto.Read { fh = fh 9 1; offset = 16384; count = 8192 };
      Proto.Write { fh = fh 9 1; offset = 8192; data = Xdr.view_of_bytes (Bytes.make 100 'w') };
      Proto.Create { dir = fh 1 1; name = "new.txt"; sattr = Proto.sattr_none };
      Proto.Remove { dir = fh 1 1; name = "old" };
      Proto.Rename { from_dir = fh 1 1; from_name = "a"; to_dir = fh 2 1; to_name = "b" };
      Proto.Mkdir { dir = fh 1 1; name = "subdir"; sattr = Proto.sattr_none };
      Proto.Rmdir { dir = fh 1 1; name = "subdir" };
      Proto.Readdir { fh = fh 1 1; cookie = 0; count = 4096 };
      Proto.Statfs (fh 1 1);
    ]
  in
  List.iter (fun args -> Alcotest.(check bool) "roundtrip" true (args_eq (roundtrip_args args) args)) cases

let sample_fattr =
  {
    Proto.ftype = Proto.NFREG;
    mode = 0o644;
    nlink = 1;
    uid = 0;
    gid = 0;
    size = 123456;
    blocksize = 8192;
    rdev = 0;
    blocks = 16;
    fsid = 1;
    fileid = 42;
    atime = { Proto.sec = 10; usec = 500 };
    mtime = { Proto.sec = 11; usec = 600 };
    ctime = { Proto.sec = 12; usec = 700 };
  }

let roundtrip_res ~proc res = Proto.decode_res ~proc (Xdr.view_of_bytes (Proto.encode_res res))

let test_res_roundtrip () =
  let checks =
    [
      (Proto.proc_getattr, Proto.RAttr (Ok sample_fattr));
      (Proto.proc_write, Proto.RAttr (Error Proto.NFSERR_NOSPC));
      (Proto.proc_lookup, Proto.RDirop (Ok (fh 7 3, sample_fattr)));
      (Proto.proc_create, Proto.RDirop (Error Proto.NFSERR_EXIST));
      (Proto.proc_read, Proto.RRead (Ok (sample_fattr, Bytes.of_string "file contents")));
      (Proto.proc_remove, Proto.RStatus Proto.NFS_OK);
      (Proto.proc_rename, Proto.RStatus Proto.NFSERR_STALE);
      (Proto.proc_readdir, Proto.RReaddir (Ok ([ ("a", 2); ("bb", 3) ], true)));
      ( Proto.proc_statfs,
        Proto.RStatfs (Ok { Proto.tsize = 8192; bsize = 8192; blocks = 100; bfree = 50; bavail = 50 })
      );
    ]
  in
  List.iter
    (fun (proc, res) -> Alcotest.(check bool) (Proto.proc_name proc) true (roundtrip_res ~proc res = res))
    checks

let test_status_codes_stable () =
  (* Wire numbers straight from RFC 1094. *)
  Alcotest.(check int) "NFS_OK" 0 (Proto.status_to_int Proto.NFS_OK);
  Alcotest.(check int) "NOENT" 2 (Proto.status_to_int Proto.NFSERR_NOENT);
  Alcotest.(check int) "NOSPC" 28 (Proto.status_to_int Proto.NFSERR_NOSPC);
  Alcotest.(check int) "STALE" 70 (Proto.status_to_int Proto.NFSERR_STALE);
  List.iter
    (fun st -> Alcotest.(check bool) "involutive" true (Proto.status_of_int (Proto.status_to_int st) = st))
    [
      Proto.NFS_OK;
      Proto.NFSERR_PERM;
      Proto.NFSERR_NOENT;
      Proto.NFSERR_IO;
      Proto.NFSERR_EXIST;
      Proto.NFSERR_NOTDIR;
      Proto.NFSERR_ISDIR;
      Proto.NFSERR_FBIG;
      Proto.NFSERR_NOSPC;
      Proto.NFSERR_NOTEMPTY;
      Proto.NFSERR_STALE;
      Proto.NFSERR_XDEV;
    ]

let test_timeval_conversion () =
  let ns = 1_234_567_891_234 in
  let tv = Proto.timeval_of_ns ns in
  Alcotest.(check int) "sec" 1234 tv.Proto.sec;
  Alcotest.(check int) "usec" 567891 tv.Proto.usec;
  (* ns -> timeval truncates below microseconds. *)
  Alcotest.(check int) "roundtrip at us precision" 1_234_567_891_000 (Proto.ns_of_timeval tv)

let test_peek_write () =
  let args = Proto.Write { fh = fh 55 9; offset = 24576; data = Xdr.view_of_bytes (Bytes.make 8192 'd') } in
  let call =
    Nfsg_rpc.Rpc.encode_call
      {
        Nfsg_rpc.Rpc.xid = 77;
        prog = Nfsg_rpc.Rpc.nfs_program;
        vers = 2;
        proc = Proto.proc_write;
        body = Xdr.view_of_bytes (Proto.encode_args args);
      }
  in
  (match Proto.peek_write call with
  | Some (f, off, len) ->
      Alcotest.(check int) "inum" 55 f.Proto.inum;
      Alcotest.(check int) "offset" 24576 off;
      Alcotest.(check int) "len" 8192 len
  | None -> Alcotest.fail "peek_write missed a WRITE");
  (* A READ call must not match. *)
  let read_call =
    Nfsg_rpc.Rpc.encode_call
      {
        Nfsg_rpc.Rpc.xid = 78;
        prog = Nfsg_rpc.Rpc.nfs_program;
        vers = 2;
        proc = Proto.proc_read;
        body = Xdr.view_of_bytes (Proto.encode_args (Proto.Read { fh = fh 55 9; offset = 0; count = 100 }));
      }
  in
  Alcotest.(check bool) "read ignored" true (Proto.peek_write read_call = None);
  Alcotest.(check bool) "garbage ignored" true (Proto.peek_write (Bytes.make 3 'x') = None)

let prop_write_args_roundtrip =
  QCheck.Test.make ~name:"WRITE args roundtrip any payload" ~count:100
    QCheck.(pair (int_bound 1_000_000) string)
    (fun (offset, s) ->
      let args = Proto.Write { fh = fh 3 1; offset; data = Xdr.view_of_bytes (Bytes.of_string s) } in
      args_eq (roundtrip_args args) args
      &&
      match roundtrip_args args with
      | Proto.Write { data; _ } -> Xdr.view_to_string data = s
      | _ -> false)

let suite =
  [
    Alcotest.test_case "all argument types roundtrip" `Quick test_args_roundtrip;
    Alcotest.test_case "all result types roundtrip" `Quick test_res_roundtrip;
    Alcotest.test_case "status codes match RFC 1094" `Quick test_status_codes_stable;
    Alcotest.test_case "timeval conversion" `Quick test_timeval_conversion;
    Alcotest.test_case "peek_write classifies datagrams" `Quick test_peek_write;
    QCheck_alcotest.to_alcotest prop_write_args_roundtrip;
  ]
