(* Crash injection: the stable-storage invariant, tested at arbitrary
   moments mid-run.

   The invariant (DESIGN.md #1): any WRITE the client saw acknowledged
   before the crash must be readable after device recovery + remount.
   Unacknowledged writes may or may not survive — both are legal. *)

open Testbed
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Fs = Nfsg_ufs.Fs
module Engine = Nfsg_sim.Engine
module Time = Nfsg_sim.Time

let run_crash_scenario ~crash_ms ~config ~accel =
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let disk = Disk.create eng disk_geometry in
  let device = if accel then Nvram.create eng disk else disk in
  let server = Server.make eng ~segment ~addr:"server" ~device config in
  let sock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock ~server:"server" () in
  let acked : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let crashed = ref false in
  let fh_ref = ref { Nfsg_nfs.Proto.fsid = 0; vgen = 0; inum = 0; gen = 0 } in
  Engine.spawn eng ~name:"setup" (fun () ->
      let client = Client.create eng ~rpc ~biods:0 () in
      let fh, _ = Client.create_file client (Server.root_fh server) "victim" in
      fh_ref := fh;
      for w = 0 to 7 do
        Engine.spawn eng ~name:(Printf.sprintf "writer%d" w) (fun () ->
            let rec go i =
              if (not !crashed) && i < 64 then begin
                let blk = (w * 64) + i in
                let seed = (blk * 131) + 7 in
                let data = Bytes.init 8192 (fun j -> Char.chr ((j + seed) mod 251)) in
                (match
                   Rpc_client.call rpc ~klass:Rpc_client.Heavy ~proc:Nfsg_nfs.Proto.proc_write
                     (Nfsg_nfs.Proto.encode_args
                        (Nfsg_nfs.Proto.Write { fh = !fh_ref; offset = blk * 8192; data = Nfsg_rpc.Xdr.view_of_bytes data }))
                 with
                | Nfsg_rpc.Rpc.Success, body -> (
                    match Nfsg_nfs.Proto.decode_res ~proc:Nfsg_nfs.Proto.proc_write body with
                    | Nfsg_nfs.Proto.RAttr (Ok _) when not !crashed ->
                        Hashtbl.replace acked blk seed
                    | _ -> ())
                | _ -> ()
                | exception _ -> ());
                go (i + 1)
              end
            in
            go 0)
      done);
  Engine.schedule eng ~after:(Time.of_ms_f crash_ms) (fun () ->
      crashed := true;
      Server.crash server);
  (* Writers stuck waiting for replies when the run ends are fine. *)
  Engine.run ~until:(Time.sec 30) eng;
  (* Recover and check every acknowledged block. *)
  device.Device.recover ();
  let fs = Fs.mount eng device in
  let failures = ref [] in
  Engine.spawn eng ~name:"checker" (fun () ->
      (match Fs.check fs with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "fsck after crash at %.1fms: %s" crash_ms (String.concat "; " es));
      let inode = Fs.lookup fs (Fs.root fs) "victim" in
      Hashtbl.iter
        (fun blk seed ->
          let back = Fs.read fs inode ~off:(blk * 8192) ~len:8192 in
          let expect = Bytes.init 8192 (fun j -> Char.chr ((j + seed) mod 251)) in
          if not (Bytes.equal back expect) then failures := blk :: !failures)
        acked);
  Engine.run ~until:(Time.sec 60) eng;
  (Hashtbl.length acked, !failures)

let check_scenario ?(allow_empty = false) ~crash_ms ~config ~accel name =
  let acked, failures = run_crash_scenario ~crash_ms ~config ~accel in
  if failures <> [] then
    Alcotest.failf "%s: %d of %d acknowledged blocks lost (e.g. block %d)" name
      (List.length failures) acked (List.hd failures);
  (* The named scenarios must have acknowledged something, or they test
     nothing; very early crash instants in the sweep legitimately may
     not (gathering holds the first replies for tens of ms). *)
  if acked = 0 && not allow_empty then
    Alcotest.failf "%s: no writes acknowledged before crash" name

let gathering = Server.default_config

let standard =
  { Server.default_config with Server.write_layer = Write_layer.standard }

let test_gathering_early () = check_scenario ~crash_ms:120.0 ~config:gathering ~accel:false "gathering@120ms"
let test_gathering_mid () = check_scenario ~crash_ms:333.0 ~config:gathering ~accel:false "gathering@333ms"
let test_gathering_late () = check_scenario ~crash_ms:1234.0 ~config:gathering ~accel:false "gathering@1234ms"
let test_standard_mid () = check_scenario ~crash_ms:333.0 ~config:standard ~accel:false "standard@333ms"
let test_presto_gathering () = check_scenario ~crash_ms:200.0 ~config:gathering ~accel:true "presto-gathering@200ms"
let test_presto_standard () = check_scenario ~crash_ms:200.0 ~config:standard ~accel:true "presto-standard@200ms"

(* Sweep many crash instants cheaply: a randomised robustness net. *)
let test_crash_sweep () =
  List.iter
    (fun ms ->
      check_scenario ~allow_empty:true ~crash_ms:ms ~config:gathering ~accel:false
        (Printf.sprintf "sweep@%.0fms" ms))
    [ 47.0; 91.0; 180.0; 277.0; 451.0; 702.0 ]

let suite =
  [
    Alcotest.test_case "gathering, crash early" `Quick test_gathering_early;
    Alcotest.test_case "gathering, crash mid-run" `Quick test_gathering_mid;
    Alcotest.test_case "gathering, crash late" `Quick test_gathering_late;
    Alcotest.test_case "standard, crash mid-run" `Quick test_standard_mid;
    Alcotest.test_case "presto + gathering crash" `Quick test_presto_gathering;
    Alcotest.test_case "presto + standard crash" `Quick test_presto_standard;
    Alcotest.test_case "crash-instant sweep" `Slow test_crash_sweep;
  ]
