(* NFS v3 asynchronous writes + COMMIT — the paper's Future Work
   environment, built out: unstable writes, the write verifier, and
   the mixed v2/v3 client case. *)

open Testbed
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Fs = Nfsg_ufs.Fs
module Engine = Nfsg_sim.Engine
module Time = Nfsg_sim.Time
module Xdr = Nfsg_rpc.Xdr

let v3_client rig ?(biods = 8) addr =
  let sock = Socket.create rig.segment ~addr () in
  let rpc = Rpc_client.create rig.eng ~sock ~server:"server" () in
  Client.create rig.eng ~rpc ~biods ~protocol:Client.V3 ()

let test_proto_roundtrips () =
  let fh = { Proto.fsid = 1; vgen = 1; inum = 9; gen = 2 } in
  let args =
    [
      Proto.Write3 { fh; offset = 8192; stable = Proto.Unstable; data = Xdr.view_of_bytes (Bytes.make 100 'u') };
      Proto.Write3 { fh; offset = 0; stable = Proto.File_sync; data = Xdr.empty_view };
      Proto.Commit { fh; offset = 0; count = 65536 };
    ]
  in
  List.iter
    (fun a ->
      let proc = Proto.proc_of_args a in
      Alcotest.(check bool) "args roundtrip" true
        (Proto.encode_args (Proto.decode_args ~proc (Xdr.view_of_bytes (Proto.encode_args a)))
        = Proto.encode_args a))
    args;
  let sample_attr =
    {
      Proto.ftype = Proto.NFREG;
      mode = 0o644;
      nlink = 1;
      uid = 0;
      gid = 0;
      size = 1;
      blocksize = 8192;
      rdev = 0;
      blocks = 1;
      fsid = 1;
      fileid = 9;
      atime = { Proto.sec = 1; usec = 2 };
      mtime = { Proto.sec = 3; usec = 4 };
      ctime = { Proto.sec = 5; usec = 6 };
    }
  in
  let results =
    [
      (Proto.proc_write3, Proto.RWrite3 (Ok (sample_attr, Proto.Unstable, 42)));
      (Proto.proc_write3, Proto.RWrite3 (Error Proto.NFSERR_STALE));
      (Proto.proc_commit, Proto.RCommit (Ok (sample_attr, 43)));
      (Proto.proc_commit, Proto.RCommit (Error Proto.NFSERR_IO));
    ]
  in
  List.iter
    (fun (proc, r) ->
      Alcotest.(check bool) "res roundtrip" true
        (Proto.decode_res ~proc (Xdr.view_of_bytes (Proto.encode_res r)) = r))
    results

let test_v3_write_read_roundtrip () =
  let rig = make () in
  run rig (fun () ->
      let c = v3_client rig "v3c" in
      let fh, _ = Client.create_file c (root rig) "v3.dat" in
      let f = Client.open_file c fh in
      let total = 64 * 8192 in
      for i = 0 to 63 do
        Client.write f ~off:(i * 8192)
          (Bytes.init 8192 (fun j -> Char.chr (((i * 8192) + j + 7) mod 251)))
      done;
      Client.close f;
      Alcotest.(check int) "one COMMIT at close" 1 (Client.commits_sent c);
      let back = Client.read c fh ~off:0 ~len:total in
      Alcotest.(check bytes) "fidelity" (expect_pattern ~total ~seed:7) back)

let test_v3_unstable_is_volatile_until_commit () =
  (* Unstable writes live in the buffer cache; only COMMIT makes them
     durable. Check the device's stable view either side of commit. *)
  let rig = make () in
  run rig (fun () ->
      let c = v3_client rig "v3c" in
      let fh, _ = Client.create_file c (root rig) "vol" in
      let f = Client.open_file c fh in
      let before = (rig.device.Device.spindle_stats ()).Device.transactions in
      for i = 0 to 15 do
        Client.write f ~off:(i * 8192) (Bytes.make 8192 'v')
      done;
      Client.flush f;
      (* Wait for all the unstable writes to be acknowledged. *)
      Engine.delay (Time.ms 200);
      let mid = (rig.device.Device.spindle_stats ()).Device.transactions in
      Alcotest.(check int) "no disk transactions before COMMIT" before mid;
      Client.commit f;
      let after = (rig.device.Device.spindle_stats ()).Device.transactions in
      (* 128K of clustered data + inode + indirect: a handful, far
         fewer than 16. *)
      Alcotest.(check bool) "COMMIT flushed" true (after > mid);
      Alcotest.(check bool) "clustered" true (after - mid <= 6);
      Client.close f)

let test_v3_commit_durability () =
  let rig = make () in
  run rig (fun () ->
      let c = v3_client rig "v3c" in
      let fh, _ = Client.create_file c (root rig) "durable3" in
      let f = Client.open_file c fh in
      let total = 32 * 8192 in
      for i = 0 to 31 do
        Client.write f ~off:(i * 8192)
          (Bytes.init 8192 (fun j -> Char.chr (((i * 8192) + j + 7) mod 251)))
      done;
      Client.close f;
      (* close() committed: crash now, everything must survive. *)
      Server.crash rig.server;
      rig.device.Device.recover ();
      let fs2 = Fs.mount rig.eng rig.device in
      let f2 = Fs.lookup fs2 (Fs.root fs2) "durable3" in
      Alcotest.(check bytes) "committed data durable" (expect_pattern ~total ~seed:7)
        (Fs.read fs2 f2 ~off:0 ~len:total))

let test_v3_verifier_changes_across_reboot () =
  let rig = make () in
  let verf1 = Server.write_verifier rig.server in
  run rig (fun () ->
      let c = v3_client rig "v3c" in
      let fh, _ = Client.create_file c (root rig) "x" in
      let f = Client.open_file c fh in
      Client.write f ~off:0 (Bytes.make 8192 'a');
      Client.close f;
      Server.crash rig.server);
  let revived = Server.recover rig.server in
  Alcotest.(check bool) "verifier moved" true (Server.write_verifier revived <> verf1)

let test_v3_client_detects_reboot () =
  (* Write unstable, reboot the server under the client, write more and
     commit: the client must raise Verifier_changed rather than
     silently lose the uncommitted data. *)
  let rig = make () in
  let saw_change = ref false in
  run rig (fun () ->
      let c = v3_client rig ~biods:0 "v3c" in
      let fh, _ = Client.create_file c (root rig) "reboot" in
      let f = Client.open_file c fh in
      Client.write f ~off:0 (Bytes.make 8192 'a');
      Client.flush f;
      Engine.delay (Time.ms 100);
      (* Power-cycle the server; the revived instance has a new
         verifier. *)
      Server.crash rig.server;
      rig.device.Device.recover ();
      let _revived = Server.recover rig.server in
      (* Resume writing against the revived server (same fs). *)
      (try
         Client.write f ~off:8192 (Bytes.make 8192 'b');
         Client.flush f;
         Engine.delay (Time.ms 100);
         Client.commit f
       with
      | Client.Verifier_changed -> saw_change := true
      | Client.Error _ -> ()));
  Alcotest.(check bool) "client saw the verifier move" true !saw_change

let test_v3_file_sync_writes_gather_with_v2 () =
  (* A v3 client using V2 semantics (File_sync) and a plain v2 client
     write the same file concurrently: both delivery paths go through
     the gathering layer and batch together. *)
  let rig = make ~biods:8 () in
  let v3_done = ref false in
  let fh_box = ref None in
  Nfsg_sim.Engine.spawn rig.eng ~name:"v3-writer" (fun () ->
      let sock = Socket.create rig.segment ~addr:"v3c" () in
      let rpc = Rpc_client.create rig.eng ~sock ~server:"server" () in
      let rec wait () =
        match !fh_box with
        | Some fh -> fh
        | None ->
            Engine.delay (Time.ms 2);
            wait ()
      in
      let fh = wait () in
      (* Direct stable v3 writes. *)
      for i = 16 to 31 do
        match
          Rpc_client.call rpc ~klass:Rpc_client.Heavy ~proc:Proto.proc_write3
            (Proto.encode_args
               (Proto.Write3
                  { fh; offset = i * 8192; stable = Proto.File_sync;
                    data = Xdr.view_of_bytes (Bytes.make 8192 '3') }))
        with
        | Nfsg_rpc.Rpc.Success, body -> (
            match Proto.decode_res ~proc:Proto.proc_write3 body with
            | Proto.RWrite3 (Ok (_, how, _)) ->
                if how <> Proto.File_sync then Alcotest.fail "expected File_sync commitment"
            | _ -> Alcotest.fail "bad WRITE3 reply")
        | _ -> Alcotest.fail "WRITE3 failed"
      done;
      v3_done := true);
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "mixed" in
      fh_box := Some fh;
      let f = Client.open_file rig.client fh in
      for i = 0 to 15 do
        Client.write f ~off:(i * 8192) (Bytes.make 8192 '2')
      done;
      Client.close f;
      while not !v3_done do
        Engine.delay (Time.ms 5)
      done;
      let r1 = Client.read rig.client fh ~off:0 ~len:(16 * 8192) in
      let r2 = Client.read rig.client fh ~off:(16 * 8192) ~len:(16 * 8192) in
      Alcotest.(check bytes) "v2 region" (Bytes.make (16 * 8192) '2') r1;
      Alcotest.(check bytes) "v3 region" (Bytes.make (16 * 8192) '3') r2)

let test_v3_faster_than_v2_standard () =
  (* The point of v3 async writes: against a STANDARD (non-gathering)
     server, a v3 client beats a v2 client by batching durability into
     one COMMIT. *)
  let elapsed protocol =
    let config =
      { Server.default_config with Server.write_layer = Write_layer.standard }
    in
    let rig = make ~config () in
    run rig (fun () ->
        let sock = Socket.create rig.segment ~addr:"c" () in
        let rpc = Rpc_client.create rig.eng ~sock ~server:"server" () in
        let c = Client.create rig.eng ~rpc ~biods:8 ~protocol () in
        let fh, _ = Client.create_file c (root rig) "race" in
        let f = Client.open_file c fh in
        let t0 = Engine.now rig.eng in
        for i = 0 to 63 do
          Client.write f ~off:(i * 8192) (Bytes.make 8192 'x')
        done;
        Client.close f;
        Engine.now rig.eng - t0)
  in
  let v2 = elapsed Client.V2 and v3 = elapsed Client.V3 in
  if v3 * 2 > v2 then Alcotest.failf "v3 not much faster: v2=%dns v3=%dns" v2 v3

let test_unsafe_async_loses_data () =
  (* The "dangerous mode" contrast: fast, and the crash test FAILS —
     acknowledged data evaporates. This is exactly why the paper
     refuses to relax the stable-storage rule. *)
  let config =
    { Server.default_config with Server.write_layer = Write_layer.unsafe_async }
  in
  let rig = make ~config () in
  let lost = ref false in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "danger" in
      let f = Client.open_file rig.client fh in
      for i = 0 to 31 do
        Client.write f ~off:(i * 8192) (Bytes.make 8192 'd')
      done;
      Client.close f;
      (* All writes acknowledged. Crash before anything is flushed. *)
      Server.crash rig.server;
      rig.device.Device.recover ();
      let fs2 = Fs.mount rig.eng rig.device in
      match Fs.lookup fs2 (Fs.root fs2) "danger" with
      | exception Not_found -> lost := true
      | f2 ->
          let a = Fs.getattr f2 in
          if a.Fs.size < 32 * 8192 then lost := true
          else begin
            let back = Fs.read fs2 f2 ~off:0 ~len:(32 * 8192) in
            if not (Bytes.equal back (Bytes.make (32 * 8192) 'd')) then lost := true
          end);
  Alcotest.(check bool) "acknowledged data was lost (the danger)" true !lost

let suite =
  [
    Alcotest.test_case "WRITE3/COMMIT wire roundtrips" `Quick test_proto_roundtrips;
    Alcotest.test_case "v3 write/read roundtrip" `Quick test_v3_write_read_roundtrip;
    Alcotest.test_case "unstable until COMMIT" `Quick test_v3_unstable_is_volatile_until_commit;
    Alcotest.test_case "COMMIT makes data durable" `Quick test_v3_commit_durability;
    Alcotest.test_case "verifier changes across reboot" `Quick test_v3_verifier_changes_across_reboot;
    Alcotest.test_case "client detects server reboot" `Quick test_v3_client_detects_reboot;
    Alcotest.test_case "v3 File_sync gathers with v2" `Quick test_v3_file_sync_writes_gather_with_v2;
    Alcotest.test_case "v3 beats v2 on a standard server" `Quick test_v3_faster_than_v2_standard;
    Alcotest.test_case "dangerous mode loses data" `Quick test_unsafe_async_loses_data;
  ]
