(* A deliberate park under the vnode lock, carrying its reason: the
   paper's synchronous baseline really does hold the lock across the
   disk write. *)

let handle_sync v =
  Vfs.with_lock v (fun () ->
      (* nfsrace: allow Y001 the synchronous baseline holds the vnode lock across the disk write by design *)
      Engine.suspend ())
