(* The fixed shape: bounded work under the lock, the open-ended park
   only after the scoped release. *)

let pace () = Engine.delay 1.0

let handle_write v =
  Vfs.with_lock v (fun () -> pace ());
  Engine.suspend ()
