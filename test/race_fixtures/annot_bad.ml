(* Broken yields annotations: one carries no reason (an unchecked
   claim), one covers no function definition (it silently stopped
   doing anything). *)

(* nfsrace: yields *)
let wait_a () = ()

(* nfsrace: yields the device parks the caller *)

let unrelated = 42
