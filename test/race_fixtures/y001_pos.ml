(* The pre-PR-7 vnode convoy: the write path parks on the disk round
   trip while still holding the vnode lock, so every other writer to
   the same file convoys behind one spindle rotation. This is the
   exact shape the deadline-scheduler PR fixed, kept here as the
   golden Y001. *)

let await_disk () = Engine.suspend ()

let handle_write v =
  Vfs.lock v;
  await_disk ();
  Vfs.unlock v
