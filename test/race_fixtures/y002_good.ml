(* The same read-modify-write made atomic: the mutex spans the read,
   the (bounded) yield and the write-back, so no other fiber can
   interleave an update. *)

let hits = ref 0
let m = Mutex.create ()

let bump () =
  Mutex.with_lock m (fun () ->
      let seen = !hits in
      Engine.delay 5.0;
      hits := seen + 1)
