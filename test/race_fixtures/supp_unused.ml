(* A suppression that matches nothing has silently stopped doing its
   job — flag it so it gets deleted. *)

(* nfsrace: allow Y001 there used to be a park under this lock *)
let quiet v = Vfs.with_lock v (fun () -> ())
