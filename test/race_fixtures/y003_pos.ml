(* Lock leak: the then-branch returns while still holding the mutex,
   so the next fiber to touch it parks forever. *)

let m = Mutex.create ()
let flag = ref false

let toggle () =
  Mutex.lock m;
  if !flag then flag := false
  else begin
    flag := true;
    Mutex.unlock m
  end
