(* Torn read-modify-write: the counter is read, the fiber yields with
   no lock held, and the stale value is written back — any increment
   that ran during the yield is lost. *)

let hits = ref 0

let bump () =
  let seen = !hits in
  Engine.delay 5.0;
  hits := seen + 1
