(* A suppression with no justification is itself an error: the whole
   point of the marker is the recorded reason. *)

let handle_sync v =
  Vfs.with_lock v (fun () ->
      (* nfsrace: allow Y001 *)
      Engine.suspend ())
