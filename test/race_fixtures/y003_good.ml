(* Both disciplined shapes: every path through [toggle] releases, and
   [guarded] re-raises only after putting the mutex back. *)

let m = Mutex.create ()
let flag = ref false

let toggle () =
  Mutex.lock m;
  if !flag then flag := false else flag := true;
  Mutex.unlock m

let guarded f =
  Mutex.lock m;
  (try f () with exn -> Mutex.unlock m; raise exn);
  Mutex.unlock m
