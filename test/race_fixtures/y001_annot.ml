(* The annotation escape hatch: the analysis cannot see through this
   body, so the author declares the effect (with a reason) and the
   caller inherits Park through it. *)

(* nfsrace: yields parks the calling fiber until the controller raises its completion interrupt *)
let controller_wait () = ()

let drain v = Vfs.with_lock v (fun () -> controller_wait ())
