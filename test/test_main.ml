let () =
  Alcotest.run "nfs_gather"
    [
      ("heap", Test_heap.suite);
      ("rng", Test_rng.suite);
      ("engine", Test_engine.suite);
      ("sync", Test_sync.suite);
      ("stats", Test_stats.suite);
      ("extent-map", Test_extent_map.suite);
      ("disk", Test_disk.suite);
      ("iosched", Test_iosched.suite);
      ("nvram", Test_nvram.suite);
      ("stripe", Test_stripe.suite);
      ("net", Test_net.suite);
      ("ufs", Test_ufs.suite);
      ("xdr", Test_xdr.suite);
      ("rpc", Test_rpc.suite);
      ("nfs-proto", Test_nfs_proto.suite);
      ("server", Test_server.suite);
      ("gather", Test_gather.suite);
      ("nfsv3", Test_v3.suite);
      ("client", Test_client.suite);
      ("workload", Test_workload.suite);
      ("integration", Test_integration.suite);
      ("crash", Test_crash.suite);
      ("experiments", Test_experiments.suite);
      ("fault", Test_fault.suite);
      ("multivolume", Test_multivolume.suite);
      ("laddis-curve", Test_laddis_curve.suite);
      ("readahead", Test_readahead.suite);
      ("rofs", Test_rofs.suite);
      ("bootstorm", Test_bootstorm.suite);
      ("raid", Test_raid.suite);
      ("lint", Test_lint.suite);
      ("race", Test_race.suite);
      ("monitor", Test_monitor.suite);
      ("determinism", Test_determinism.suite);
    ]
