(* Boot-storm bench plumbing: the fleet ladder, the override hooks the
   nfsgather flags use, and double-run byte-determinism of the
   committed artifact through those overrides. *)

module Bs = Nfsg_experiments.Bootstorm
module Json = Nfsg_stats.Json
module Reset = Nfsg_sim.Reset

let test_ladder () =
  Alcotest.(check (list int)) "cap of one" [ 1 ] (Bs.ladder 1);
  Alcotest.(check (list int)) "doubling to the cap" [ 1; 2; 4; 8; 16 ] (Bs.ladder 16);
  Alcotest.(check (list int)) "off-power cap is still walked" [ 1; 2; 4; 6 ] (Bs.ladder 6)

(* The real bench, shrunk to a two-rung ladder on the read-ahead side
   only. Both overrides are installed after each Reset (which clears
   them), exercising the same path the nfsgather flags use. *)
let run_once () =
  Reset.run_all ();
  Bs.set_clients_max_override (Some 2);
  Bs.set_readahead_override (Some true);
  let json = Bs.bench_bootstorm () in
  Bs.set_readahead_override None;
  Bs.set_clients_max_override None;
  json

let test_double_run () =
  let first = run_once () and second = run_once () in
  Alcotest.(check bool) "byte-identical across Reset.run_all" true
    (String.equal (Json.to_string ~pretty:true first) (Json.to_string ~pretty:true second));
  (* And the overrides really took: one config, two rungs. *)
  let configs = Option.bind (Json.member "configs" first) Json.to_list in
  let labels =
    match configs with
    | Some cs -> List.filter_map (fun c -> Option.bind (Json.member "config" c) Json.to_str) cs
    | None -> []
  in
  Alcotest.(check (list string)) "restricted to the read-ahead side" [ "readahead" ] labels;
  let rungs =
    match configs with
    | Some (c :: _) ->
        (match Option.bind (Json.member "points" c) Json.to_list with
        | Some ps -> List.length ps
        | None -> 0)
    | _ -> 0
  in
  Alcotest.(check int) "ladder capped at two rungs" 2 rungs

let suite =
  [
    Alcotest.test_case "fleet ladder shape" `Quick test_ladder;
    Alcotest.test_case "tiny storm is double-run deterministic" `Quick test_double_run;
  ]
