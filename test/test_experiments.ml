(* Experiment harness sanity: tiny runs asserting the paper's headline
   SHAPES, so a regression in any layer that would corrupt the
   reproduction fails fast here. Full-size runs live in bench/. *)

module E = Nfsg_experiments.Experiments
module Filecopy = Nfsg_experiments.Filecopy
module Rig = Nfsg_experiments.Rig
module Calib = Nfsg_experiments.Calib
module Report = Nfsg_stats.Report

let small = 1024 * 1024

let cell ?(net = Calib.Fddi) ?(accel = false) ?(spindles = 1) ~gathering ~biods () =
  let spec = { Rig.default_spec with Rig.net; accel; spindles; gathering } in
  Filecopy.run_cell ~spec ~biods ~total:small ()

let test_gathering_wins_with_biods () =
  let std = cell ~gathering:false ~biods:7 () in
  let gat = cell ~gathering:true ~biods:7 () in
  Alcotest.(check bool) "client speed up at least 2x" true
    (gat.Filecopy.client_kb_s > 2.0 *. std.Filecopy.client_kb_s);
  Alcotest.(check bool) "disk transactions down" true
    (gat.Filecopy.disk_trans_s < 0.7 *. std.Filecopy.disk_trans_s)

let test_gathering_loses_at_zero_biods () =
  let std = cell ~gathering:false ~biods:0 () in
  let gat = cell ~gathering:true ~biods:0 () in
  let penalty = (std.Filecopy.client_kb_s -. gat.Filecopy.client_kb_s) /. std.Filecopy.client_kb_s in
  if penalty < 0.02 || penalty > 0.45 then
    Alcotest.failf "0-biod penalty %.1f%% outside the paper's ballpark" (100.0 *. penalty)

let test_presto_inverts_the_tradeoff () =
  (* With NVRAM (Table 2/4 shape): gathering costs some client speed
     but saves CPU. *)
  let std = cell ~accel:true ~gathering:false ~biods:7 () in
  let gat = cell ~accel:true ~gathering:true ~biods:7 () in
  Alcotest.(check bool) "client speed not higher" true
    (gat.Filecopy.client_kb_s <= std.Filecopy.client_kb_s *. 1.02);
  Alcotest.(check bool) "cpu lower" true (gat.Filecopy.cpu_pct < std.Filecopy.cpu_pct)

let test_stripe_scales_gathering () =
  let one = cell ~gathering:true ~biods:15 () in
  let three = cell ~gathering:true ~spindles:3 ~biods:15 () in
  Alcotest.(check bool) "3 spindles beat 1" true
    (three.Filecopy.client_kb_s > 1.3 *. one.Filecopy.client_kb_s)

let test_ethernet_slower_than_fddi () =
  let eth = cell ~net:Calib.Ethernet ~gathering:true ~biods:15 () in
  let fddi = cell ~net:Calib.Fddi ~gathering:true ~biods:15 () in
  Alcotest.(check bool) "network matters" true
    (fddi.Filecopy.client_kb_s > eth.Filecopy.client_kb_s)

let test_figure1_has_the_story () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let fig = E.figure1 () in
  Alcotest.(check bool) "standard section" true (contains fig "Standard server");
  Alcotest.(check bool) "gathering section" true (contains fig "Gathering server");
  Alcotest.(check bool) "per-write metadata in standard" true (contains fig "Metadata to disk");
  Alcotest.(check bool) "clustered data write" true (contains fig "data to disk (clustered)");
  Alcotest.(check bool) "batched replies" true (contains fig "5 Write Replies")

let test_table_report_shape () =
  let report =
    Filecopy.table ~title:"t" ~net:Calib.Fddi ~accel:false ~spindles:1 ~biods:[ 0; 3 ]
      ~total:small ()
  in
  let s = Report.to_string report in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun row -> Alcotest.(check bool) row true (contains row))
    [
      "Without Write Gathering";
      "With Write Gathering";
      "client write speed (KB/sec)";
      "server cpu util. (%)";
      "server disk (KB/sec)";
      "server disk (trans/sec)";
    ]

let test_procrastination_ablation_zero_interval () =
  (* With a zero procrastination interval and biods, gathering still
     happens via handoff/mbuf-hunting but less of it. *)
  let with_interval =
    Nfsg_experiments.Experiments.ablation_procrastination ~quick:true ()
  in
  ignore with_interval (* rendering checked above; here: it completes *)

(* {1 The machine-readable writegather bench} *)

module Json = Nfsg_stats.Json

let jfield name = function
  | Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON field %S" name)
  | _ -> Alcotest.failf "expected object around %S" name

let jint = function Json.Int i -> i | _ -> Alcotest.fail "expected int"
let jstring = function Json.String s -> s | _ -> Alcotest.fail "expected string"
let jlist = function Json.List l -> l | _ -> Alcotest.fail "expected list"

let bench_total = 256 * 1024

let test_bench_writegather_shape () =
  let j = E.bench_writegather ~total:bench_total () in
  Alcotest.(check string) "schema" "nfsgather-bench/1" (jstring (jfield "schema" j));
  Alcotest.(check int) "workload size" bench_total (jint (jfield "total_bytes" (jfield "workload" j)));
  let rows = jlist (jfield "rows" j) in
  Alcotest.(check (list string)) "three modes in order" [ "standard"; "gathering"; "nvram" ]
    (List.map (fun r -> jstring (jfield "mode" r)) rows);
  let disk_trans r = jint (jfield "transactions" (jfield "disk" r)) in
  let saved r = jint (jfield "metadata_flushes_saved" r) in
  let std = List.nth rows 0 and gat = List.nth rows 1 in
  (* The paper's core claim, machine-checked: gathering collapses the
     per-write metadata writes, so the same workload costs fewer disk
     transactions and a positive number of saved metadata flushes. *)
  Alcotest.(check bool) "gathering does fewer disk transactions" true
    (disk_trans gat < disk_trans std);
  Alcotest.(check bool) "gathering saves metadata flushes" true (saved gat > 0);
  Alcotest.(check int) "standard saves none" 0 (saved std);
  List.iter
    (fun r ->
      (match jfield "latency" r with
      | Json.Obj _ -> ()
      | _ -> Alcotest.fail "latency block missing");
      match jfield "mean" (jfield "batch_size" r) with
      | Json.Float mean -> Alcotest.(check bool) "mean batch >= 1" true (mean >= 1.0)
      | _ -> Alcotest.fail "batch_size.mean missing")
    rows

let test_bench_writegather_deterministic () =
  let s1 = Json.to_string ~pretty:true (E.bench_writegather ~total:bench_total ()) in
  let s2 = Json.to_string ~pretty:true (E.bench_writegather ~total:bench_total ()) in
  Alcotest.(check string) "byte-identical across runs" s1 s2;
  (* A shared --metrics-json sink must not leak into the rows. *)
  let m = Nfsg_stats.Metrics.create () in
  Rig.set_metrics_sink (Some m);
  let s3 =
    Fun.protect ~finally:(fun () -> Rig.set_metrics_sink None) (fun () ->
        Json.to_string ~pretty:true (E.bench_writegather ~total:bench_total ()))
  in
  Alcotest.(check string) "sink does not perturb the bench" s1 s3

let suite =
  [
    Alcotest.test_case "gathering wins with biods" `Quick test_gathering_wins_with_biods;
    Alcotest.test_case "gathering loses at 0 biods" `Quick test_gathering_loses_at_zero_biods;
    Alcotest.test_case "Presto inverts the trade-off" `Quick test_presto_inverts_the_tradeoff;
    Alcotest.test_case "striping scales gathering" `Quick test_stripe_scales_gathering;
    Alcotest.test_case "Ethernet slower than FDDI" `Quick test_ethernet_slower_than_fddi;
    Alcotest.test_case "figure 1 tells the story" `Quick test_figure1_has_the_story;
    Alcotest.test_case "table report has paper rows" `Quick test_table_report_shape;
    Alcotest.test_case "procrastination ablation runs" `Slow test_procrastination_ablation_zero_interval;
    Alcotest.test_case "writegather bench JSON shape" `Quick test_bench_writegather_shape;
    Alcotest.test_case "writegather bench JSON determinism" `Quick test_bench_writegather_deterministic;
  ]
