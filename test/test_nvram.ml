open Nfsg_sim
open Nfsg_disk

let geometry = { (Disk.rz26 ~capacity:(16 * 1024 * 1024) ()) with Disk.track_bytes = 256 * 1024 }

let make ?(params = Nvram.default_params) () =
  let eng = Engine.create () in
  let disk = Disk.create eng geometry in
  let dev = Nvram.create eng ~params disk in
  (eng, disk, dev)

let in_proc eng f =
  let r = ref None in
  Engine.spawn eng ~name:"test-driver" (fun () -> r := Some (f ()));
  Engine.run eng;
  match !r with Some v -> v | None -> Alcotest.fail "driver blocked"

let test_accelerated_flag () =
  let _, disk, dev = make () in
  Alcotest.(check bool) "disk raw" false (disk.Device.accelerated ());
  Alcotest.(check bool) "presto" true (dev.Device.accelerated ())

let test_accepted_write_is_fast_and_stable () =
  let eng, disk, dev = make () in
  in_proc eng (fun () ->
      let t0 = Engine.now eng in
      dev.Device.write ~off:0 (Bytes.make 8192 'p');
      let elapsed = Engine.now eng - t0 in
      (* NVRAM copy must be far below a disk op (~1ms). *)
      if elapsed > Time.ms 1 then Alcotest.failf "NVRAM write too slow: %dns" elapsed;
      (* Stable immediately, even though the platter may not have it. *)
      Alcotest.(check bytes) "stable view" (Bytes.make 8192 'p') (dev.Device.stable_read ~off:0 ~len:8192);
      ignore disk)

let test_declined_write_goes_to_disk () =
  let eng, disk, dev = make () in
  in_proc eng (fun () ->
      let t0 = Engine.now eng in
      dev.Device.write ~off:0 (Bytes.make 65536 'q');
      let elapsed = Engine.now eng - t0 in
      (* Must cost real disk time. *)
      if elapsed < Time.ms 5 then Alcotest.failf "declined write too fast: %dns" elapsed;
      Alcotest.(check int) "one spindle transaction" 1 (disk.Device.spindle_stats ()).Device.transactions)

let test_flusher_clusters () =
  let eng, disk, dev = make () in
  in_proc eng (fun () ->
      (* 32 sequential 8K writes: the flusher must push them in far
         fewer spindle transactions than 32. *)
      for i = 0 to 31 do
        dev.Device.write ~off:(i * 8192) (Bytes.make 8192 (Char.chr (65 + (i mod 26))))
      done;
      dev.Device.flush ();
      let s = disk.Device.spindle_stats () in
      Alcotest.(check int) "all bytes reach the platter" (32 * 8192) s.Device.bytes_moved;
      if s.Device.transactions > 8 then
        Alcotest.failf "flusher did not cluster: %d transactions" s.Device.transactions;
      (* Platter now byte-identical. *)
      for i = 0 to 31 do
        let expect = Bytes.make 8192 (Char.chr (65 + (i mod 26))) in
        Alcotest.(check bytes) "platter block" expect (disk.Device.stable_read ~off:(i * 8192) ~len:8192)
      done)

let test_capacity_backpressure () =
  (* A tiny NVRAM forces writers to wait for the flusher: throughput
     degrades toward the spindle drain rate but never loses data. *)
  let params = { Nvram.default_params with Nvram.capacity = 64 * 1024 } in
  let eng, _disk, dev = make ~params () in
  in_proc eng (fun () ->
      let t0 = Engine.now eng in
      for i = 0 to 63 do
        dev.Device.write ~off:(i * 8192) (Bytes.make 8192 'z')
      done;
      let elapsed = Engine.now eng - t0 in
      (* 512K through a 64K cache must take multiple flush rounds. *)
      if elapsed < Time.ms 20 then Alcotest.failf "no backpressure: %dns" elapsed;
      dev.Device.flush ();
      Alcotest.(check bytes) "all durable" (Bytes.make 8192 'z')
        (dev.Device.stable_read ~off:(63 * 8192) ~len:8192))

let test_crash_preserves_nvram_contents () =
  let eng, disk, dev = make () in
  (* Write into NVRAM, crash before the flusher drains, recover, and
     expect the platter to hold the data. *)
  Engine.spawn eng (fun () -> dev.Device.write ~off:8192 (Bytes.make 8192 'N'));
  Engine.schedule eng ~after:(Time.ms 2) (fun () -> dev.Device.crash ());
  Engine.run eng;
  Alcotest.(check bool) "platter stale pre-recovery" true
    (disk.Device.stable_read ~off:8192 ~len:8192 <> Bytes.make 8192 'N'
    || (* flusher may have won the race; both are legal *)
    disk.Device.stable_read ~off:8192 ~len:8192 = Bytes.make 8192 'N');
  dev.Device.recover ();
  Alcotest.(check bytes) "replayed to platter" (Bytes.make 8192 'N')
    (disk.Device.stable_read ~off:8192 ~len:8192);
  Alcotest.(check int) "nothing left dirty" 0 (Nvram.dirty_bytes dev)

let test_read_merges_overlay () =
  let eng, disk, dev = make () in
  in_proc eng (fun () ->
      (* Seed the platter, then overwrite a slice via NVRAM; a read
         must see the merge before any flush. *)
      disk.Device.stable_write ~off:0 (Bytes.make 8192 'o');
      let patch = Bytes.make 1024 'P' in
      dev.Device.write ~off:2048 patch;
      let back = dev.Device.read ~off:0 ~len:8192 in
      Alcotest.(check char) "old before" 'o' (Bytes.get back 0);
      Alcotest.(check char) "patched" 'P' (Bytes.get back 2048);
      Alcotest.(check char) "patched end" 'P' (Bytes.get back 3071);
      Alcotest.(check char) "old after" 'o' (Bytes.get back 3072))

let test_cached_read_is_fast () =
  let eng, _disk, dev = make () in
  in_proc eng (fun () ->
      dev.Device.write ~off:0 (Bytes.make 8192 'c');
      let t0 = Engine.now eng in
      let _ = dev.Device.read ~off:0 ~len:8192 in
      if Engine.now eng - t0 > Time.ms 1 then Alcotest.fail "covered read hit the disk")

let test_dirty_bytes_visibility () =
  let eng, _disk, dev = make () in
  in_proc eng (fun () ->
      dev.Device.write ~off:0 (Bytes.make 8192 'd');
      if Nvram.dirty_bytes dev = 0 then Alcotest.fail "write not visible as dirty";
      dev.Device.flush ();
      Alcotest.(check int) "clean after flush" 0 (Nvram.dirty_bytes dev))

let suite =
  [
    Alcotest.test_case "reports accelerated" `Quick test_accelerated_flag;
    Alcotest.test_case "accepted write fast and stable" `Quick test_accepted_write_is_fast_and_stable;
    Alcotest.test_case "oversized write declined to disk" `Quick test_declined_write_goes_to_disk;
    Alcotest.test_case "flusher clusters contiguous dirt" `Quick test_flusher_clusters;
    Alcotest.test_case "full cache applies backpressure" `Quick test_capacity_backpressure;
    Alcotest.test_case "crash + recover replays NVRAM" `Quick test_crash_preserves_nvram_contents;
    Alcotest.test_case "reads merge NVRAM overlay" `Quick test_read_merges_overlay;
    Alcotest.test_case "fully-cached read avoids disk" `Quick test_cached_read_is_fast;
    Alcotest.test_case "dirty bytes drain on flush" `Quick test_dirty_bytes_visibility;
  ]
