open Nfsg_sim
open Nfsg_disk

let geometry = { (Disk.rz26 ~capacity:(8 * 1024 * 1024) ()) with Disk.track_bytes = 256 * 1024 }

let make n chunk =
  let eng = Engine.create () in
  let members = Array.init n (fun i -> Disk.create eng ~name:(Printf.sprintf "rz26-%d" i) geometry) in
  let dev = Stripe.create eng ~chunk members in
  (eng, members, dev)

let in_proc eng f =
  let r = ref None in
  Engine.spawn eng ~name:"test-driver" (fun () -> r := Some (f ()));
  Engine.run eng;
  match !r with Some v -> v | None -> Alcotest.fail "driver blocked"

let test_capacity () =
  let _, _, dev = make 3 8192 in
  Alcotest.(check int) "3x member capacity" (3 * 8 * 1024 * 1024) dev.Device.capacity

let test_roundtrip_spanning_chunks () =
  let eng, _, dev = make 3 8192 in
  in_proc eng (fun () ->
      let data = Bytes.init 65536 (fun i -> Char.chr ((i * 7) mod 256)) in
      dev.Device.write ~off:12_000 data;
      Alcotest.(check bytes) "roundtrip" data (dev.Device.read ~off:12_000 ~len:65536))

let test_distribution_across_members () =
  let eng, members, dev = make 3 8192 in
  in_proc eng (fun () ->
      (* 6 consecutive chunks land 2 on each member. *)
      dev.Device.write ~off:0 (Bytes.make (6 * 8192) 'd');
      Array.iter
        (fun m ->
          let s = m.Device.spindle_stats () in
          Alcotest.(check int) "2 chunks of bytes" (2 * 8192) s.Device.bytes_moved)
        members)

let test_parallel_speedup () =
  let time_with n =
    let eng, _, dev = make n 8192 in
    in_proc eng (fun () ->
        let t0 = Engine.now eng in
        dev.Device.write ~off:0 (Bytes.make (12 * 8192) 'p');
        Engine.now eng - t0)
  in
  let one = time_with 1 and three = time_with 3 in
  if three >= one then
    Alcotest.failf "no speedup from striping: 1 disk=%dns, 3 disks=%dns" one three

let test_stats_aggregate () =
  let eng, members, dev = make 2 8192 in
  in_proc eng (fun () ->
      dev.Device.write ~off:0 (Bytes.make (4 * 8192) 's');
      let agg = dev.Device.spindle_stats () in
      let manual =
        Array.fold_left (fun acc m -> Device.add_stats acc (m.Device.spindle_stats ())) Device.zero_stats members
      in
      Alcotest.(check int) "transactions" manual.Device.transactions agg.Device.transactions;
      (* Each member receives its two chunks as one batch of adjacent
         local writes, which the spindle scheduler coalesces into a
         single transaction — 2 members, 2 merged transactions. *)
      Alcotest.(check int) "2 merged member writes" 2 agg.Device.transactions;
      Alcotest.(check int) "bytes" (4 * 8192) agg.Device.bytes_moved)

let test_stable_paths () =
  let _, _, dev = make 3 4096 in
  let data = Bytes.init 20_000 (fun i -> Char.chr (i mod 251)) in
  dev.Device.stable_write ~off:5_000 data;
  Alcotest.(check bytes) "stable roundtrip" data (dev.Device.stable_read ~off:5_000 ~len:20_000)

let test_rejects_empty () =
  let eng = Engine.create () in
  Alcotest.check_raises "no members" (Invalid_argument "Stripe.create: no members") (fun () ->
      ignore (Stripe.create eng ~chunk:8192 [||]))

(* {1 Geometry validation} *)

let test_rejects_bad_geometry () =
  let eng = Engine.create () in
  let disk i cap = Disk.create eng ~name:(Printf.sprintf "gv-%d" i) (Disk.rz26 ~capacity:cap ()) in
  Alcotest.check_raises "unaligned chunk"
    (Invalid_argument "Stripe.create: chunk 1000 is not a multiple of the 512-byte sector")
    (fun () -> ignore (Stripe.create eng ~chunk:1000 [| disk 0 (1 lsl 20) |]));
  Alcotest.check_raises "non-positive chunk"
    (Invalid_argument "Stripe.create: chunk must be positive") (fun () ->
      ignore (Stripe.create eng ~chunk:0 [| disk 1 (1 lsl 20) |]));
  Alcotest.check_raises "mismatched capacities"
    (Invalid_argument
       "Stripe.create: member capacities differ (gv-2: 1048576 vs gv-3: 2097152)") (fun () ->
      ignore (Stripe.create eng ~chunk:8192 [| disk 2 (1 lsl 20); disk 3 (2 lsl 20) |]));
  Alcotest.check_raises "raid1 needs 2"
    (Invalid_argument "Stripe.create: raid1 needs at least 2 members") (fun () ->
      ignore (Stripe.create eng ~level:Stripe.Raid1 ~chunk:8192 [| disk 4 (1 lsl 20) |]));
  Alcotest.check_raises "raid5 needs 3"
    (Invalid_argument "Stripe.create: raid5 needs at least 3 members") (fun () ->
      ignore
        (Stripe.create eng ~level:Stripe.Raid5 ~chunk:8192 [| disk 5 (1 lsl 20); disk 6 (1 lsl 20) |]))

(* {1 Redundant levels} *)

let make_lvl ?(n = 3) ?(cap = 2 * 1024 * 1024) level chunk =
  let eng = Engine.create () in
  let g = { (Disk.rz26 ~capacity:cap ()) with Disk.track_bytes = 256 * 1024 } in
  let members = Array.init n (fun i -> Disk.create eng ~name:(Printf.sprintf "rz26-%d" i) g) in
  let metrics = Nfsg_stats.Metrics.create () in
  let arr = Stripe.create_array eng ~metrics ~level ~chunk members in
  (eng, members, arr, metrics)

let cval metrics name =
  Nfsg_stats.Metrics.(value (counter metrics ~ns:(Nfsg_stats.Names.Ns.raid "stripe") name))

let pattern len seed = Bytes.init len (fun i -> Char.chr ((i * 131 + seed) mod 256))

let xor_zero a b =
  let acc = Bytes.copy a in
  for i = 0 to Bytes.length b - 1 do
    Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code (Bytes.get b i)))
  done;
  acc

(* Every RAID-5 row must XOR to zero across members (all-zero platters
   do initially; parity maintenance must preserve it). *)
let check_parity members chunk ~rows =
  for row = 0 to rows - 1 do
    let acc = ref (Bytes.make chunk '\000') in
    Array.iter
      (fun m -> acc := xor_zero !acc (m.Device.stable_read ~off:(row * chunk) ~len:chunk))
      members;
    if not (Bytes.equal !acc (Bytes.make chunk '\000')) then
      Alcotest.failf "parity invariant broken in row %d" row
  done

let test_raid1_roundtrip_and_mirror () =
  let eng, members, arr, _ = make_lvl Stripe.Raid1 8192 ~n:2 in
  let dev = Stripe.device arr in
  Alcotest.(check int) "raid1 capacity is one member" (2 * 1024 * 1024) dev.Device.capacity;
  in_proc eng (fun () ->
      let data = pattern 40_000 3 in
      dev.Device.write ~off:12_345 data;
      Alcotest.(check bytes) "roundtrip" data (dev.Device.read ~off:12_345 ~len:40_000));
  Array.iter
    (fun m ->
      Alcotest.(check bytes) "mirrored" (pattern 40_000 3) (m.Device.stable_read ~off:12_345 ~len:40_000))
    members

let test_raid1_read_balancing () =
  let eng, members, arr, _ = make_lvl Stripe.Raid1 8192 ~n:2 in
  let dev = Stripe.device arr in
  in_proc eng (fun () ->
      dev.Device.write ~off:0 (pattern 8192 5);
      for _ = 1 to 6 do
        ignore (dev.Device.read ~off:0 ~len:8192)
      done);
  Array.iter
    (fun m ->
      let s = m.Device.spindle_stats () in
      (* 6 reads dealt round-robin over 2 mirrors: 3 transactions each
         (plus the 1 mirrored write everywhere) *)
      if s.Device.transactions < 3 then
        Alcotest.failf "%s served only %d transactions for 6 reads" m.Device.name
          s.Device.transactions)
    members

let test_raid1_degraded_and_rebuild () =
  let eng, members, arr, metrics = make_lvl Stripe.Raid1 8192 ~n:2 in
  let dev = Stripe.device arr in
  let d1 = pattern 30_000 7 and d2 = pattern 30_000 11 in
  in_proc eng (fun () ->
      dev.Device.write ~off:0 d1;
      Stripe.fail_member arr 0;
      Alcotest.(check bool) "degraded" true (Stripe.degraded arr);
      (* reads fall over to the survivor, writes continue *)
      Alcotest.(check bytes) "degraded read" d1 (dev.Device.read ~off:0 ~len:30_000);
      dev.Device.write ~off:65_536 d2;
      Alcotest.(check bytes) "degraded read 2" d2 (dev.Device.read ~off:65_536 ~len:30_000);
      (* replacement arrives: resilver under a live read stream *)
      Stripe.rebuild arr ~member:0 ~pace:(Time.of_us_f 50.0);
      let tick = Time.of_ms_f 1.0 in
      while Stripe.rebuild_active arr do
        ignore (dev.Device.read ~off:65_536 ~len:4096);
        Engine.delay tick
      done;
      Alcotest.(check bool) "member active again" true (Stripe.member_state arr 0 = Stripe.Active));
  Alcotest.(check bytes) "resilvered old data" d1 (members.(0).Device.stable_read ~off:0 ~len:30_000);
  Alcotest.(check bytes) "resilvered degraded write" d2
    (members.(0).Device.stable_read ~off:65_536 ~len:30_000);
  Alcotest.(check bool) "rebuild completed counted" true
    (cval metrics Nfsg_stats.Names.rebuilds_completed = 1);
  Alcotest.(check bool) "degraded reads counted" true
    (cval metrics Nfsg_stats.Names.degraded_reads > 0)

let test_raid5_roundtrip_and_parity () =
  let eng, members, arr, _ = make_lvl Stripe.Raid5 8192 ~n:3 in
  let dev = Stripe.device arr in
  Alcotest.(check int) "raid5 capacity is n-1 members" (2 * 2 * 1024 * 1024) dev.Device.capacity;
  in_proc eng (fun () ->
      let data = pattern 100_000 13 in
      dev.Device.write ~off:5_000 data;
      Alcotest.(check bytes) "roundtrip" data (dev.Device.read ~off:5_000 ~len:100_000));
  check_parity members 8192 ~rows:32

let test_raid5_full_stripe_vs_rmw () =
  let eng, _, arr, metrics = make_lvl Stripe.Raid5 8192 ~n:3 in
  let dev = Stripe.device arr in
  in_proc eng (fun () ->
      (* one whole row, row-aligned: no read phase *)
      dev.Device.write ~off:0 (pattern (2 * 8192) 17);
      Alcotest.(check int) "full stripe" 1 (cval metrics Nfsg_stats.Names.full_stripe_writes);
      Alcotest.(check int) "no rmw yet" 0 (cval metrics Nfsg_stats.Names.rmw_writes);
      (* a half-chunk: read-modify-write *)
      dev.Device.write ~off:(4 * 8192) (pattern 4096 19);
      Alcotest.(check int) "rmw" 1 (cval metrics Nfsg_stats.Names.rmw_writes))

let test_raid5_degraded_and_rebuild () =
  let eng, members, arr, metrics = make_lvl Stripe.Raid5 8192 ~n:3 in
  let dev = Stripe.device arr in
  let d1 = pattern 60_000 23 and d2 = pattern 60_000 29 in
  in_proc eng (fun () ->
      dev.Device.write ~off:0 d1;
      Stripe.fail_member arr 1;
      (* reads reconstruct through parity *)
      Alcotest.(check bytes) "degraded read" d1 (dev.Device.read ~off:0 ~len:60_000);
      Alcotest.(check bool) "reconstructions counted" true
        (cval metrics Nfsg_stats.Names.degraded_reads > 0);
      (* writes log-and-continue: new data lands in parity *)
      dev.Device.write ~off:200_000 d2;
      Alcotest.(check bytes) "degraded write readback" d2 (dev.Device.read ~off:200_000 ~len:60_000);
      Stripe.rebuild arr ~member:1 ~pace:(Time.of_us_f 50.0);
      let tick = Time.of_ms_f 1.0 in
      while Stripe.rebuild_active arr do
        Engine.delay tick
      done;
      Alcotest.(check bool) "member active again" true (Stripe.member_state arr 1 = Stripe.Active);
      (* after the resilver the whole array serves directly again *)
      Alcotest.(check bytes) "post-rebuild read" d1 (dev.Device.read ~off:0 ~len:60_000);
      Alcotest.(check bytes) "post-rebuild read 2" d2 (dev.Device.read ~off:200_000 ~len:60_000));
  check_parity members 8192 ~rows:(2 * 1024 * 1024 / 8192)

let test_raid5_stable_paths_degraded () =
  let eng, members, arr, _ = make_lvl Stripe.Raid5 8192 ~n:3 in
  let dev = Stripe.device arr in
  ignore eng;
  let data = pattern 50_000 31 in
  dev.Device.stable_write ~off:7_000 data;
  Alcotest.(check bytes) "stable roundtrip" data (dev.Device.stable_read ~off:7_000 ~len:50_000);
  check_parity members 8192 ~rows:16;
  (* stable reads must reconstruct degraded, stable writes must keep
     parity: the filesystem's superblock/inode paths run on these *)
  Stripe.fail_member arr 0;
  Alcotest.(check bytes) "degraded stable read" data (dev.Device.stable_read ~off:7_000 ~len:50_000);
  let d2 = pattern 20_000 37 in
  dev.Device.stable_write ~off:300_000 d2;
  Alcotest.(check bytes) "degraded stable write readback" d2
    (dev.Device.stable_read ~off:300_000 ~len:20_000)

let suite =
  [
    Alcotest.test_case "capacity is sum of members" `Quick test_capacity;
    Alcotest.test_case "roundtrip across chunk boundaries" `Quick test_roundtrip_spanning_chunks;
    Alcotest.test_case "chunks deal round-robin" `Quick test_distribution_across_members;
    Alcotest.test_case "striping overlaps member service" `Quick test_parallel_speedup;
    Alcotest.test_case "stats aggregate members" `Quick test_stats_aggregate;
    Alcotest.test_case "stable read/write through layout" `Quick test_stable_paths;
    Alcotest.test_case "rejects empty member set" `Quick test_rejects_empty;
    Alcotest.test_case "rejects bad geometry" `Quick test_rejects_bad_geometry;
    Alcotest.test_case "raid1 roundtrip mirrors both members" `Quick test_raid1_roundtrip_and_mirror;
    Alcotest.test_case "raid1 reads balance across mirrors" `Quick test_raid1_read_balancing;
    Alcotest.test_case "raid1 degraded service and rebuild" `Quick test_raid1_degraded_and_rebuild;
    Alcotest.test_case "raid5 roundtrip keeps parity invariant" `Quick test_raid5_roundtrip_and_parity;
    Alcotest.test_case "raid5 counts full-stripe vs rmw" `Quick test_raid5_full_stripe_vs_rmw;
    Alcotest.test_case "raid5 degraded service and rebuild" `Quick test_raid5_degraded_and_rebuild;
    Alcotest.test_case "raid5 stable paths work degraded" `Quick test_raid5_stable_paths_degraded;
  ]
