open Nfsg_sim
open Nfsg_disk

let geometry = { (Disk.rz26 ~capacity:(8 * 1024 * 1024) ()) with Disk.track_bytes = 256 * 1024 }

let make n chunk =
  let eng = Engine.create () in
  let members = Array.init n (fun i -> Disk.create eng ~name:(Printf.sprintf "rz26-%d" i) geometry) in
  let dev = Stripe.create eng ~chunk members in
  (eng, members, dev)

let in_proc eng f =
  let r = ref None in
  Engine.spawn eng ~name:"test-driver" (fun () -> r := Some (f ()));
  Engine.run eng;
  match !r with Some v -> v | None -> Alcotest.fail "driver blocked"

let test_capacity () =
  let _, _, dev = make 3 8192 in
  Alcotest.(check int) "3x member capacity" (3 * 8 * 1024 * 1024) dev.Device.capacity

let test_roundtrip_spanning_chunks () =
  let eng, _, dev = make 3 8192 in
  in_proc eng (fun () ->
      let data = Bytes.init 65536 (fun i -> Char.chr ((i * 7) mod 256)) in
      dev.Device.write ~off:12_000 data;
      Alcotest.(check bytes) "roundtrip" data (dev.Device.read ~off:12_000 ~len:65536))

let test_distribution_across_members () =
  let eng, members, dev = make 3 8192 in
  in_proc eng (fun () ->
      (* 6 consecutive chunks land 2 on each member. *)
      dev.Device.write ~off:0 (Bytes.make (6 * 8192) 'd');
      Array.iter
        (fun m ->
          let s = m.Device.spindle_stats () in
          Alcotest.(check int) "2 chunks of bytes" (2 * 8192) s.Device.bytes_moved)
        members)

let test_parallel_speedup () =
  let time_with n =
    let eng, _, dev = make n 8192 in
    in_proc eng (fun () ->
        let t0 = Engine.now eng in
        dev.Device.write ~off:0 (Bytes.make (12 * 8192) 'p');
        Engine.now eng - t0)
  in
  let one = time_with 1 and three = time_with 3 in
  if three >= one then
    Alcotest.failf "no speedup from striping: 1 disk=%dns, 3 disks=%dns" one three

let test_stats_aggregate () =
  let eng, members, dev = make 2 8192 in
  in_proc eng (fun () ->
      dev.Device.write ~off:0 (Bytes.make (4 * 8192) 's');
      let agg = dev.Device.spindle_stats () in
      let manual =
        Array.fold_left (fun acc m -> Device.add_stats acc (m.Device.spindle_stats ())) Device.zero_stats members
      in
      Alcotest.(check int) "transactions" manual.Device.transactions agg.Device.transactions;
      (* Each member receives its two chunks as one batch of adjacent
         local writes, which the spindle scheduler coalesces into a
         single transaction — 2 members, 2 merged transactions. *)
      Alcotest.(check int) "2 merged member writes" 2 agg.Device.transactions;
      Alcotest.(check int) "bytes" (4 * 8192) agg.Device.bytes_moved)

let test_stable_paths () =
  let _, _, dev = make 3 4096 in
  let data = Bytes.init 20_000 (fun i -> Char.chr (i mod 251)) in
  dev.Device.stable_write ~off:5_000 data;
  Alcotest.(check bytes) "stable roundtrip" data (dev.Device.stable_read ~off:5_000 ~len:20_000)

let test_rejects_empty () =
  let eng = Engine.create () in
  Alcotest.check_raises "no members" (Invalid_argument "Stripe.create: no members") (fun () ->
      ignore (Stripe.create eng ~chunk:8192 [||]))

let suite =
  [
    Alcotest.test_case "capacity is sum of members" `Quick test_capacity;
    Alcotest.test_case "roundtrip across chunk boundaries" `Quick test_roundtrip_spanning_chunks;
    Alcotest.test_case "chunks deal round-robin" `Quick test_distribution_across_members;
    Alcotest.test_case "striping overlaps member service" `Quick test_parallel_speedup;
    Alcotest.test_case "stats aggregate members" `Quick test_stats_aggregate;
    Alcotest.test_case "stable read/write through layout" `Quick test_stable_paths;
    Alcotest.test_case "rejects empty member set" `Quick test_rejects_empty;
  ]
