(* nfslint: allow D001 fixture: exercises the suppression path end to end *)
let now () = Unix.gettimeofday ()
