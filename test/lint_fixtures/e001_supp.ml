let quietly f =
  (* nfslint: allow E001 fixture: demonstrates a justified catch-all *)
  try f () with _ -> ()
