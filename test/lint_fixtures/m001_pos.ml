(* M001 positive: metric name literal bypassing the Names registry. *)
module Metrics = Nfsg_stats.Metrics

let make m = Metrics.counter m ~ns:"net" "datagrams_sent"
