(* nfslint: allow O001 fixture: demonstrates a justified direct print *)
let shout msg = print_string msg
