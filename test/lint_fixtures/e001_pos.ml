(* E001 positive: catch-all handler swallows the exception. *)
let quietly f = try f () with _ -> ()
