(* I001 positive: blocking device call above the storage layers. *)
let slurp (dev : Nfsg_disk.Device.t) = dev.Nfsg_disk.Device.read ~off:0 ~len:512
