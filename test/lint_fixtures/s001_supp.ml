(* nfslint: allow S001 fixture: demonstrates justified persistent state *)
let cache : (int, string) Hashtbl.t = Hashtbl.create 16
