module Metrics = Nfsg_stats.Metrics

let make m =
  (* nfslint: allow M001 fixture: demonstrates a justified ad-hoc name *)
  Metrics.counter m ~ns:"net" "datagrams_sent"
