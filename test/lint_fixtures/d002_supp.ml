let count tbl =
  (* nfslint: allow D002 integer addition is commutative; order cannot show *)
  Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
