(* S001 positive: top-level mutable state with no reset hook. *)
let cache : (int, string) Hashtbl.t = Hashtbl.create 16
