(* O001 positive: direct stdout output from library code. *)
let shout msg = print_string msg
