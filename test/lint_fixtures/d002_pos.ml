(* D002 positive: fold result escapes with no sorted sink in the binding. *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
