(* I001 suppressed: crash-recovery tooling reads synchronously on purpose. *)
let slurp (dev : Nfsg_disk.Device.t) =
  (* nfslint: allow I001 fixture: recovery replay is single-request by design *)
  dev.Nfsg_disk.Device.read ~off:0 ~len:512
