(* D001 positive: wall-clock and unseeded randomness in lib/. *)
let now () = Unix.gettimeofday ()
let pick () = Random.int 6
