(* Buffer-cache read-ahead engine: sequential-run detection, prefetch
   accounting, and the eviction rules the capacity budget obeys. *)

open Nfsg_sim
module Disk = Nfsg_disk.Disk
module Bc = Nfsg_ufs.Buffer_cache

let bsize = 8192

let with_cache ?max_blocks ?readahead f =
  let eng = Engine.create () in
  let disk = Disk.create eng (Disk.rz26 ~capacity:(8 * 1024 * 1024) ()) in
  let cache = Bc.create disk ~bsize ?max_blocks () in
  (match readahead with Some config -> Bc.enable_readahead cache eng ~config () | None -> ());
  let result = ref None in
  Engine.spawn eng ~name:"driver" (fun () -> result := Some (f eng cache));
  Engine.run eng;
  match !result with Some v -> v | None -> Alcotest.fail "driver process blocked forever"

(* File block [f] lives at device block [100 + f]: a dense sequential
   mapping with no holes, so [map] never returns 0. *)
let map f = 100 + f

let test_sequential_detection () =
  with_cache ~readahead:{ Bc.window = 4; min_run = 2; max_streams = 2 } (fun _eng cache ->
      Alcotest.(check bool) "armed" true (Bc.readahead_active cache);
      (* One block read: below min_run, nothing prefetched. *)
      Bc.note_read cache ~stream:7 ~fbn:0 ~nblocks:1 ~map ~limit:50;
      Alcotest.(check int) "one read arms nothing" 0 (Bc.readahead_blocks cache);
      (* The next sequential block completes the run: a window of 4
         file blocks (2..5) goes to the device in one batch. *)
      Bc.note_read cache ~stream:7 ~fbn:1 ~nblocks:1 ~map ~limit:50;
      Alcotest.(check int) "window prefetched" 4 (Bc.readahead_blocks cache);
      Alcotest.(check int) "as one batch" 1 (Bc.readahead_batches cache);
      Engine.delay (Time.ms 200);
      Alcotest.(check bool) "prefetched block resident" true (Bc.is_prefetched cache (map 2));
      let misses0 = Bc.misses cache in
      ignore (Bc.get cache (map 2));
      Alcotest.(check int) "demand read of a prefetched block is a hit" misses0
        (Bc.misses cache);
      Alcotest.(check int) "and the guess is credited" 1 (Bc.readahead_hits cache);
      Alcotest.(check bool) "credited only once" false (Bc.is_prefetched cache (map 2));
      (* A random-access stream never completes a run: no new batch. *)
      Bc.note_read cache ~stream:9 ~fbn:10 ~nblocks:1 ~map ~limit:50;
      Bc.note_read cache ~stream:9 ~fbn:30 ~nblocks:1 ~map ~limit:50;
      Bc.note_read cache ~stream:9 ~fbn:20 ~nblocks:1 ~map ~limit:50;
      Alcotest.(check int) "random access prefetches nothing" 4 (Bc.readahead_blocks cache))

let test_overlap_tolerance () =
  with_cache ~readahead:{ Bc.window = 4; min_run = 2; max_streams = 2 } (fun _eng cache ->
      Bc.note_read cache ~stream:1 ~fbn:0 ~nblocks:1 ~map ~limit:50;
      Bc.note_read cache ~stream:1 ~fbn:1 ~nblocks:1 ~map ~limit:50;
      Alcotest.(check int) "run armed" 4 (Bc.readahead_blocks cache);
      (* A retransmitted read of the same block (dupcache miss) must
         neither break the run nor double-prefetch. *)
      Bc.note_read cache ~stream:1 ~fbn:1 ~nblocks:1 ~map ~limit:50;
      Alcotest.(check int) "re-read is absorbed" 4 (Bc.readahead_blocks cache);
      (* The stream continues: the window slides without re-requesting
         blocks already prefetched or in flight. *)
      Bc.note_read cache ~stream:1 ~fbn:2 ~nblocks:1 ~map ~limit:50;
      Alcotest.(check int) "window slides by one" 5 (Bc.readahead_blocks cache);
      Engine.delay (Time.ms 200);
      Alcotest.(check bool) "slid block arrived" true (Bc.is_prefetched cache (map 6)))

let test_eviction_spares_dirty () =
  with_cache ~max_blocks:8 (fun _eng cache ->
      for b = 0 to 7 do
        ignore (Bc.get_fresh cache b)
      done;
      for b = 0 to 5 do
        Bc.mark_dirty cache b Bc.Data
      done;
      (* Three more blocks through a full cache: every victim must come
         from the clean minority, never the dirty blocks. *)
      for b = 8 to 10 do
        ignore (Bc.get cache b)
      done;
      for b = 0 to 5 do
        Alcotest.(check bool) (Printf.sprintf "dirty block %d still resident" b) true
          (Bc.peek cache b <> None);
        Alcotest.(check bool) (Printf.sprintf "dirty block %d still dirty" b) true
          (Bc.is_dirty cache b)
      done;
      Alcotest.(check int) "clean victims only" 3 (Bc.evictions cache);
      Alcotest.(check int) "capacity respected" 8 (Bc.resident cache))

let test_wasted_accounting () =
  with_cache ~readahead:{ Bc.window = 4; min_run = 1; max_streams = 2 } (fun _eng cache ->
      Bc.note_read cache ~stream:3 ~fbn:0 ~nblocks:1 ~map ~limit:50;
      Alcotest.(check int) "window prefetched" 4 (Bc.readahead_blocks cache);
      Engine.delay (Time.ms 200);
      (* One guess consumed, two dropped unread: only the drops count
         as waste, and consuming the survivor afterwards still pays. *)
      ignore (Bc.get cache (map 1));
      Bc.drop cache (map 2);
      Bc.drop cache (map 3);
      Alcotest.(check int) "dropped guesses are waste" 2 (Bc.readahead_wasted cache);
      ignore (Bc.get cache (map 4));
      Alcotest.(check int) "consumed guesses are hits" 2 (Bc.readahead_hits cache);
      Alcotest.(check int) "waste stays at the drops" 2 (Bc.readahead_wasted cache))

let test_disabled_is_inert () =
  with_cache (fun _eng cache ->
      Alcotest.(check bool) "off by default" false (Bc.readahead_active cache);
      Bc.note_read cache ~stream:1 ~fbn:0 ~nblocks:1 ~map ~limit:50;
      Bc.note_read cache ~stream:1 ~fbn:1 ~nblocks:1 ~map ~limit:50;
      Alcotest.(check int) "note_read is a no-op" 0 (Bc.readahead_blocks cache);
      ignore (Bc.get cache (map 0));
      Alcotest.(check int) "demand reads still miss through" 1 (Bc.misses cache))

let suite =
  [
    Alcotest.test_case "sequential run detection" `Quick test_sequential_detection;
    Alcotest.test_case "overlapping re-reads tolerated" `Quick test_overlap_tolerance;
    Alcotest.test_case "eviction never touches dirty blocks" `Quick test_eviction_spares_dirty;
    Alcotest.test_case "wasted-prefetch accounting" `Quick test_wasted_accounting;
    Alcotest.test_case "disabled engine is inert" `Quick test_disabled_is_inert;
  ]
