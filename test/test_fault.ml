(* Fault injection: disk errors, network faults, crash/restart cycles,
   and the chaos rig's three invariants (no acked write lost, no
   non-idempotent re-execution, bit-for-bit reproducibility). *)

open Testbed
module Engine = Nfsg_sim.Engine
module Time = Nfsg_sim.Time
module Fault_disk = Nfsg_fault.Fault_disk
module Fs = Nfsg_ufs.Fs
module Rpc = Nfsg_rpc.Rpc
module Chaos = Nfsg_experiments.Chaos

let ms = Time.of_ms_f

(* {1 Device-level faults} *)

let test_fault_disk_unit () =
  let eng = Engine.create () in
  let disk = Disk.create eng disk_geometry in
  let inj, dev = Fault_disk.wrap eng disk in
  let data = Bytes.make 8192 'x' in
  Engine.spawn eng ~name:"driver" (fun () ->
      (* Transparent until armed. *)
      dev.Device.write ~off:0 data;
      Alcotest.(check bytes) "reads back" data (dev.Device.read ~off:0 ~len:8192);
      (* fail_next: exactly the next n transactions fail, then clear. *)
      Fault_disk.fail_next ~n:2 inj;
      (try
         dev.Device.write ~off:8192 data;
         Alcotest.fail "armed write must raise"
       with Device.Io_error _ -> ());
      (try
         ignore (dev.Device.read ~off:0 ~len:512);
         Alcotest.fail "armed read must raise"
       with Device.Io_error _ -> ());
      dev.Device.write ~off:8192 data;
      Alcotest.(check int) "two injected errors" 2 (Fault_disk.errors_injected inj);
      (* error_window: certain failure inside, clean outside. *)
      let now = Engine.now eng in
      Fault_disk.error_window inj ~from_:now ~until:(now + ms 10.0) ~prob:1.0;
      (try
         dev.Device.write ~off:0 data;
         Alcotest.fail "window write must raise"
       with Device.Io_error _ -> ());
      Engine.delay (ms 20.0);
      dev.Device.write ~off:0 data;
      (* slowdown_window stretches service time by the factor. *)
      let t0 = Engine.now eng in
      dev.Device.write ~off:16384 data;
      let base = Engine.now eng - t0 in
      let now = Engine.now eng in
      Fault_disk.slowdown_window inj ~from_:now ~until:(now + Time.of_sec_f 5.0) ~factor:3.0;
      let t0 = Engine.now eng in
      dev.Device.write ~off:16384 data;
      let slow = Engine.now eng - t0 in
      if slow < 2 * base then
        Alcotest.failf "slowdown factor 3 took %dns vs base %dns" slow base;
      Alcotest.(check int) "slowdown counted" 1 (Fault_disk.slowdowns inj);
      Fault_disk.clear inj;
      (* hang_window: the transaction is held until the window closes. *)
      let now = Engine.now eng in
      Fault_disk.hang_window inj ~from_:now ~until:(now + ms 50.0);
      let t0 = Engine.now eng in
      dev.Device.write ~off:0 data;
      if Engine.now eng - t0 < ms 50.0 then Alcotest.fail "hang did not hold the request";
      Alcotest.(check int) "hang counted" 1 (Fault_disk.hangs inj);
      (* stable paths are never guarded. *)
      Fault_disk.fail_next ~n:5 inj;
      ignore (dev.Device.stable_read ~off:0 ~len:512);
      dev.Device.stable_write ~off:0 (Bytes.make 512 'y');
      Fault_disk.clear inj);
  Engine.run eng

(* fail_stop/revive: whole-spindle loss, distinct from the transient
   arms — every request errors and even stable ops raise, until the
   replacement is plugged in. *)
let test_fail_stop_revive () =
  let eng = Engine.create () in
  let disk = Disk.create eng disk_geometry in
  let inj, dev = Fault_disk.wrap eng disk in
  let data = Bytes.make 8192 'z' in
  Engine.spawn eng ~name:"driver" (fun () ->
      dev.Device.write ~off:0 data;
      Fault_disk.fail_stop inj;
      Alcotest.(check bool) "reports failed" true (Fault_disk.is_failed inj);
      (try
         dev.Device.write ~off:8192 data;
         Alcotest.fail "fail-stopped write must raise"
       with Device.Io_error _ -> ());
      (try
         ignore (dev.Device.read ~off:0 ~len:512);
         Alcotest.fail "fail-stopped read must raise"
       with Device.Io_error _ -> ());
      (* unlike the transient arms, fail-stop guards the stable paths *)
      (try
         ignore (dev.Device.stable_read ~off:0 ~len:512);
         Alcotest.fail "fail-stopped stable read must raise"
       with Device.Io_error _ -> ());
      (try
         dev.Device.stable_write ~off:0 (Bytes.make 512 'q');
         Alcotest.fail "fail-stopped stable write must raise"
       with Device.Io_error _ -> ());
      (* re-stopping while stopped is not a second transition *)
      Fault_disk.fail_stop inj;
      Alcotest.(check int) "one transition" 1 (Fault_disk.fail_stops inj);
      Fault_disk.revive inj;
      Alcotest.(check bool) "revived" false (Fault_disk.is_failed inj);
      (* the platter kept its pre-failure contents *)
      Alcotest.(check bytes) "contents survive" data (dev.Device.read ~off:0 ~len:8192));
  Engine.run eng

let test_nvram_battery () =
  let eng = Engine.create () in
  let disk = Disk.create eng disk_geometry in
  let dev = Nvram.create eng disk in
  let data = Bytes.make 8192 'p' in
  Engine.spawn eng ~name:"driver" (fun () ->
      Alcotest.(check bool) "starts accelerated" true (dev.Device.accelerated ());
      dev.Device.write ~off:0 data;
      (* Battery fault: orderly degrade — accelerated flips off, dirty
         contents drain, new writes pass through synchronously. *)
      Nvram.fail_battery dev;
      Alcotest.(check bool) "degraded" false (dev.Device.accelerated ());
      let rec wait_drain () =
        if Nvram.dirty_bytes dev > 0 then begin
          Engine.delay (ms 20.0);
          wait_drain ()
        end
      in
      wait_drain ();
      dev.Device.write ~off:8192 data;
      Alcotest.(check int) "pass-through leaves nothing dirty" 0 (Nvram.dirty_bytes dev);
      (* Crash with a dead battery: drained + pass-through data is on
         the platter, so everything survives without a replay. *)
      dev.Device.crash ();
      dev.Device.recover ();
      Alcotest.(check bytes) "block 0 survived" data (dev.Device.stable_read ~off:0 ~len:8192);
      Alcotest.(check bytes) "block 1 survived" data (dev.Device.stable_read ~off:8192 ~len:8192);
      Nvram.repair_battery dev;
      Alcotest.(check bool) "repaired" true (dev.Device.accelerated ());
      dev.Device.write ~off:16384 data;
      Alcotest.(check bool) "accepting dirty data again" true (Nvram.dirty_bytes dev > 0));
  Engine.run eng

let test_nvram_flusher_rides_through () =
  let eng = Engine.create () in
  let disk = Disk.create eng disk_geometry in
  let inj, faulty = Fault_disk.wrap eng disk in
  let dev = Nvram.create eng faulty in
  Engine.spawn eng ~name:"driver" (fun () ->
      (* Make the backing store fail for a while, then stuff the NVRAM:
         the background flusher must absorb the errors, retry, and
         eventually drain — never abort the simulation or lose data. *)
      let now = Engine.now eng in
      Fault_disk.error_window inj ~from_:now ~until:(now + Time.of_sec_f 1.0) ~prob:1.0;
      let blocks = 8 in
      for i = 0 to blocks - 1 do
        dev.Device.write ~off:(i * 8192) (Bytes.make 8192 (Char.chr (Char.code 'a' + i)))
      done;
      let rec wait_drain () =
        if Nvram.dirty_bytes dev > 0 then begin
          Engine.delay (ms 50.0);
          wait_drain ()
        end
      in
      wait_drain ();
      Alcotest.(check bool) "flusher retried through errors" true (Nvram.flush_retries dev > 0);
      for i = 0 to blocks - 1 do
        let expect = Bytes.make 8192 (Char.chr (Char.code 'a' + i)) in
        Alcotest.(check bytes)
          (Printf.sprintf "block %d drained intact" i)
          expect
          (disk.Device.stable_read ~off:(i * 8192) ~len:8192)
      done);
  Engine.run eng

(* {1 End-to-end error propagation} *)

(* A rig whose disk sits behind a fault injector. *)
let make_fault_rig ?(config = Server.default_config) () =
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let disk = Disk.create eng disk_geometry in
  let inj, faulty = Fault_disk.wrap eng disk in
  let server = Server.make eng ~segment ~addr:"server" ~device:faulty config in
  (eng, segment, inj, server)

let raw_rpc eng segment addr =
  let sock = Socket.create segment ~addr () in
  Rpc_client.create eng ~sock ~server:"server" ()

let call_res rpc ~proc args =
  match Rpc_client.call rpc ~proc (Proto.encode_args args) with
  | Rpc.Success, body -> Proto.decode_res ~proc body
  | _, _ -> Alcotest.failf "rpc accept_stat not success for proc %d" proc

let create_file rpc root name =
  match call_res rpc ~proc:Proto.proc_create (Proto.Create { dir = root; name; sattr = Proto.sattr_none }) with
  | Proto.RDirop (Ok (fh, _)) -> fh
  | _ -> Alcotest.failf "create %s failed" name

let test_write_io_error_propagates () =
  (* Standard mode: VOP_WRITE(IO_SYNC) hits the disk synchronously, so
     an injected error must surface as NFSERR_IO on this one reply —
     and the server must keep serving afterwards. *)
  let config =
    { Server.default_config with Server.write_layer = Write_layer.standard; nfsds = 2 }
  in
  let eng, segment, inj, server = make_fault_rig ~config () in
  Engine.spawn eng ~name:"driver" (fun () ->
      let rpc = raw_rpc eng segment "client" in
      let fh = create_file rpc (Server.root_fh server) "f" in
      let data = Bytes.make 8192 'd' in
      Fault_disk.fail_next inj;
      (match call_res rpc ~proc:Proto.proc_write (Proto.Write { fh; offset = 0; data = Nfsg_rpc.Xdr.view_of_bytes data }) with
      | Proto.RAttr (Error Proto.NFSERR_IO) -> ()
      | _ -> Alcotest.fail "expected NFSERR_IO on the faulted write");
      (* Same write retried: succeeds, data durable. *)
      (match call_res rpc ~proc:Proto.proc_write (Proto.Write { fh; offset = 0; data = Nfsg_rpc.Xdr.view_of_bytes data }) with
      | Proto.RAttr (Ok _) -> ()
      | _ -> Alcotest.fail "retry after transient error must succeed");
      match call_res rpc ~proc:Proto.proc_read (Proto.Read { fh; offset = 0; count = 8192 }) with
      | Proto.RRead (Ok (_, back)) -> Alcotest.(check bytes) "data readable" data back
      | _ -> Alcotest.fail "read after retry failed");
  Engine.run eng;
  Alcotest.(check int) "one error injected" 1 (Fault_disk.errors_injected inj)

let test_gathered_batch_fails_together () =
  (* Two clients' writes gather into one batch; the batch's metadata
     flush hits a disk error; BOTH deferred replies must come back
     NFSERR_IO, the nfsds must survive, and the retries must land. *)
  let eng, segment, inj, server = make_fault_rig () in
  let got = Array.make 2 `None in
  let acked = Array.make 2 false in
  Engine.spawn eng ~name:"driver" (fun () ->
      let rpc0 = raw_rpc eng segment "c0" in
      let rpc1 = raw_rpc eng segment "c1" in
      let fh = create_file rpc0 (Server.root_fh server) "f" in
      Engine.delay (ms 50.0);
      Fault_disk.fail_next inj;
      let writer i rpc () =
        let data = Bytes.make 8192 (Char.chr (Char.code 'A' + i)) in
        (match call_res rpc ~proc:Proto.proc_write (Proto.Write { fh; offset = i * 8192; data = Nfsg_rpc.Xdr.view_of_bytes data }) with
        | Proto.RAttr (Error Proto.NFSERR_IO) -> got.(i) <- `Io_error
        | Proto.RAttr (Ok _) -> got.(i) <- `Ok
        | _ -> got.(i) <- `Other);
        (* Retry until it sticks — the fault was transient. *)
        match call_res rpc ~proc:Proto.proc_write (Proto.Write { fh; offset = i * 8192; data = Nfsg_rpc.Xdr.view_of_bytes data }) with
        | Proto.RAttr (Ok _) -> acked.(i) <- true
        | _ -> ()
      in
      Engine.spawn eng ~name:"w0" (writer 0 rpc0);
      Engine.spawn eng ~name:"w1" (writer 1 rpc1));
  Engine.run eng;
  Alcotest.(check int) "one failed flush" 1 (Write_layer.flush_failures (Server.write_layer server));
  Array.iteri
    (fun i g ->
      if g <> `Io_error then Alcotest.failf "client %d: expected NFSERR_IO for the whole batch" i)
    got;
  Array.iteri (fun i a -> if not a then Alcotest.failf "client %d: retry not acked" i) acked;
  Alcotest.(check int) "exactly one injected error" 1 (Fault_disk.errors_injected inj)

(* {1 Network faults} *)

let test_dupcache_replay_under_loss () =
  (* Satellite: heavy loss + duplication over non-idempotent traffic.
     With the duplicate cache, every client-visible outcome is clean;
     the control run without it shows re-execution — the failure the
     cache exists to prevent. *)
  let run ~dupcache =
    let config = { Server.default_config with Server.dupcache } in
    let eng = Engine.create () in
    let segment = Segment.create eng ~seed:0xbad Segment.fddi in
    let disk = Disk.create eng disk_geometry in
    let server = Server.make eng ~segment ~addr:"server" ~device:disk config in
    let spurious = ref 0 and completed = ref 0 in
    let issued = 30 in
    let retrans = ref 0 in
    Engine.spawn eng ~name:"driver" (fun () ->
        let rpc = raw_rpc eng segment "client" in
        let root = Server.root_fh server in
        (* Loss is kept moderate on purpose: a retransmission chain
           that outlives the duplicate cache's 6 s retention would
           legitimately re-execute (finite retention is part of the
           design); what this test pins down is replay within it. *)
        Segment.set_loss_prob segment 0.12;
        Segment.set_dup_prob segment 0.15;
        for i = 1 to issued do
          let name = Printf.sprintf "n-%d" i in
          (match
             call_res rpc ~proc:Proto.proc_create
               (Proto.Create { dir = root; name; sattr = Proto.sattr_none })
           with
          | Proto.RDirop (Ok _) -> (
              incr completed;
              match call_res rpc ~proc:Proto.proc_remove (Proto.Remove { dir = root; name }) with
              | Proto.RStatus Proto.NFS_OK -> ()
              | Proto.RStatus Proto.NFSERR_NOENT -> incr spurious
              | _ -> ())
          | Proto.RDirop (Error Proto.NFSERR_EXIST) -> incr spurious
          | _ -> ())
        done;
        retrans := Rpc_client.retransmissions rpc);
    Engine.run eng;
    (!spurious, !completed, Server.op_count server Proto.proc_create, !retrans)
  in
  let spurious, completed, executed, retrans = run ~dupcache:true in
  Alcotest.(check bool) "retransmissions happened" true (retrans > 0);
  Alcotest.(check int) "all creates completed" 30 completed;
  Alcotest.(check int) "dupcache: zero spurious outcomes" 0 spurious;
  Alcotest.(check int) "dupcache: each create executed once" 30 executed;
  let spurious', _, executed', _ = run ~dupcache:false in
  Alcotest.(check bool) "control: duplicate executions on the server" true (executed' > 30);
  Alcotest.(check bool) "control: client-visible re-execution" true (spurious' > 0)

let test_partition_ride_through () =
  let rig = Testbed.make () in
  Testbed.run rig (fun () ->
      let root = Testbed.root rig in
      let fh, _ = Client.create_file rig.client root "f" in
      (* Open a 1-second partition, then immediately write through it:
         the RPC layer retransmits until the window lifts. *)
      let until = Engine.now rig.eng + Time.of_sec_f 1.0 in
      Segment.partition rig.segment ~a:"server" ~b:"client" ~until;
      Alcotest.(check bool) "partitioned" true
        (Segment.partitioned rig.segment ~a:"client" ~b:"server");
      let t0 = Engine.now rig.eng in
      ignore (Testbed.write_file rig fh ~total:(4 * 8192) ());
      let elapsed = Engine.now rig.eng - t0 in
      Alcotest.(check bool) "write stalled across the partition" true (elapsed >= ms 500.0);
      Alcotest.(check bool) "datagrams blackholed" true
        (Segment.datagrams_blackholed rig.segment > 0);
      Alcotest.(check bool) "partition expired" false
        (Segment.partitioned rig.segment ~a:"server" ~b:"client");
      (* Per-station rcvbuf-drop counters are part of segment stats. *)
      Alcotest.(check (list string)) "stations reported" [ "client"; "server" ]
        (List.map fst (Segment.station_drops rig.segment));
      let back = Client.read rig.client fh ~off:0 ~len:(4 * 8192) in
      Alcotest.(check bytes) "data intact after ride-through"
        (Testbed.expect_pattern ~total:(4 * 8192) ~seed:7) back)

(* {1 Chaos acceptance} *)

let check_clean label (r : Chaos.result) =
  if r.Chaos.lost <> [] then
    Alcotest.failf "%s: %d acked write(s) lost: %s" label (List.length r.Chaos.lost)
      (String.concat "," (List.map string_of_int r.Chaos.lost));
  Alcotest.(check int) (label ^ ": no spurious non-idempotent outcome") 0 r.Chaos.spurious_nonidem;
  if r.Chaos.fsck_errors <> [] then
    Alcotest.failf "%s: fsck: %s" label (String.concat "; " r.Chaos.fsck_errors);
  (* +1: the bootstrap create of the ledger file. *)
  Alcotest.(check int)
    (label ^ ": every create executed exactly once")
    (r.Chaos.issued_creates + 1) r.Chaos.executed_creates;
  Alcotest.(check int)
    (label ^ ": every remove executed exactly once")
    r.Chaos.issued_removes r.Chaos.executed_removes

let test_crash_restart_ride_through () =
  (* One cycle, one writer: the minimal in-run crash/restart. *)
  let cfg =
    { Chaos.default with Chaos.cycles = 1; writers = 1; blocks_per_writer = 60; burst_ops = 4 }
  in
  let r = Chaos.run cfg in
  check_clean "1-cycle" r;
  Alcotest.(check int) "one crash" 1 r.Chaos.crashes;
  Alcotest.(check int) "one restart" 1 r.Chaos.restarts;
  Alcotest.(check bool) "writes acked across the outage" true (r.Chaos.acked > 5)

let test_chaos_acceptance () =
  let r = Chaos.run Chaos.default in
  check_clean "chaos" r;
  Alcotest.(check int) "five crashes" 5 r.Chaos.crashes;
  Alcotest.(check int) "five restarts" 5 r.Chaos.restarts;
  Alcotest.(check bool) "substantial ledger" true (r.Chaos.acked > 100);
  Alcotest.(check bool) "disk errors actually injected" true (r.Chaos.errors_injected > 0);
  Alcotest.(check bool) "some gathered flush failed" true (r.Chaos.flush_failures > 0);
  Alcotest.(check bool) "clients retried through NFSERR_IO" true (r.Chaos.io_error_replies > 0);
  (* Bit-for-bit reproducibility: same seed, same everything. *)
  let r2 = Chaos.run Chaos.default in
  Alcotest.(check (list string)) "same fault timeline" r.Chaos.timeline r2.Chaos.timeline;
  Alcotest.(check string) "same digest" r.Chaos.digest r2.Chaos.digest;
  (* A different seed must give a different schedule. *)
  let r3 = Chaos.run { Chaos.default with Chaos.seed = 43 } in
  Alcotest.(check bool) "different seed diverges" true (r3.Chaos.digest <> r.Chaos.digest)

(* The crash promises are scheduler-independent: however the spindle
   reorders its queue, no acked write may be lost and no non-idempotent
   op re-executed. Run the quick chaos scenario under all three. *)
let test_chaos_all_schedulers () =
  List.iter
    (fun (name, scheduler) ->
      let cfg =
        {
          Chaos.default with
          Chaos.cycles = 1;
          writers = 1;
          blocks_per_writer = 60;
          burst_ops = 4;
          scheduler;
        }
      in
      let r = Chaos.run cfg in
      check_clean name r;
      Alcotest.(check int) (name ^ ": one crash") 1 r.Chaos.crashes;
      Alcotest.(check int) (name ^ ": one restart") 1 r.Chaos.restarts)
    [
      ("fifo", Nfsg_disk.Disk.Fifo);
      ("elevator", Nfsg_disk.Disk.Elevator);
      ("deadline", Nfsg_disk.Disk.Deadline);
    ]

let test_chaos_accelerated () =
  let r = Chaos.run { Chaos.default with Chaos.accel = true } in
  check_clean "chaos+presto" r;
  Alcotest.(check int) "five crashes" 5 r.Chaos.crashes;
  let contains line sub =
    let n = String.length sub and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
    go 0
  in
  let mentions sub = List.exists (fun l -> contains l sub) r.Chaos.timeline in
  Alcotest.(check bool) "battery failure in timeline" true (mentions "battery failure");
  Alcotest.(check bool) "battery repair in timeline" true (mentions "battery replaced")

let suite =
  [
    Alcotest.test_case "fault-disk primitives." `Quick test_fault_disk_unit;
    Alcotest.test_case "fail-stop and revive." `Quick test_fail_stop_revive;
    Alcotest.test_case "nvram battery failure." `Quick test_nvram_battery;
    Alcotest.test_case "nvram flusher rides through disk errors." `Quick
      test_nvram_flusher_rides_through;
    Alcotest.test_case "write error reaches the client." `Quick test_write_io_error_propagates;
    Alcotest.test_case "gathered batch fails together." `Quick test_gathered_batch_fails_together;
    Alcotest.test_case "dupcache replay under loss." `Quick test_dupcache_replay_under_loss;
    Alcotest.test_case "partition ride-through." `Quick test_partition_ride_through;
    Alcotest.test_case "crash/restart ride-through." `Quick test_crash_restart_ride_through;
    Alcotest.test_case "chaos acceptance." `Quick test_chaos_acceptance;
    Alcotest.test_case "chaos under all three schedulers." `Quick test_chaos_all_schedulers;
    Alcotest.test_case "chaos with Presto + battery failure." `Quick test_chaos_accelerated;
  ]
