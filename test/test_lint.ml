(* nfslint self-tests: every rule is exercised by a fixture pair under
   lint_fixtures/ — one positive case whose diagnostics must match the
   golden .expected file byte for byte, and one suppressed case that
   must lint clean. Fixtures are linted under a synthetic lib/ path so
   the lib-scoped rules fire. *)

module Lint = Nfsg_lint.Lint
module Diagnostic = Nfsg_lint.Diagnostic

let fixture_dir = "lint_fixtures"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

(* Lint a fixture as if it lived at lib/<name>.ml, the scope the rules
   are written for. *)
let lint_fixture name =
  let src = read_file (Filename.concat fixture_dir (name ^ ".ml")) in
  Lint.lint_source ~rel:("lib/" ^ name ^ ".ml") src
  |> List.map Diagnostic.to_string

let check_golden name () =
  let expected = lines (read_file (Filename.concat fixture_dir (name ^ ".expected"))) in
  Alcotest.(check (list string)) name expected (lint_fixture name)

let fixture_names =
  Sys.readdir fixture_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.map (fun f -> Filename.chop_suffix f ".ml")
  |> List.sort compare

let golden_tests =
  List.map
    (fun name -> Alcotest.test_case ("fixture " ^ name) `Quick (check_golden name))
    fixture_names

(* Each of the seven rules must appear in at least one golden: a rule
   whose fixture stopped firing is a rule that silently died. *)
let test_all_rules_covered () =
  let fired =
    List.concat_map
      (fun name -> lines (read_file (Filename.concat fixture_dir (name ^ ".expected"))))
      fixture_names
  in
  List.iter
    (fun rule ->
      let tag = "[" ^ rule ^ "]" in
      let hit l =
        let rec find i =
          i + String.length tag <= String.length l
          && (String.sub l i (String.length tag) = tag || find (i + 1))
        in
        find 0
      in
      Alcotest.(check bool) (rule ^ " covered by a fixture") true (List.exists hit fired))
    [ "D001"; "D002"; "E001"; "I001"; "M001"; "O001"; "S001" ]

(* A suppression with no justification is itself an error... *)
let test_reasonless_suppression () =
  let src = "(* nfslint: allow E001 *)\nlet quietly f = try f () with _ -> ()\n" in
  let diags = Lint.lint_source ~rel:"lib/fixture.ml" src in
  match diags with
  | [ d ] ->
      Alcotest.(check string) "rule" "LINT" d.Diagnostic.rule;
      Alcotest.(check bool) "is error" true (Diagnostic.is_error d)
  | ds ->
      Alcotest.failf "expected exactly the LINT diagnostic, got %d: %s" (List.length ds)
        (String.concat " | " (List.map Diagnostic.to_string ds))

(* ...and a suppression that matches nothing is flagged as unused. *)
let test_unused_suppression () =
  let src = "(* nfslint: allow D001 nothing here uses the clock *)\nlet x = 1\n" in
  let diags = Lint.lint_source ~rel:"lib/fixture.ml" src in
  match diags with
  | [ d ] ->
      Alcotest.(check string) "rule" "LINT" d.Diagnostic.rule;
      Alcotest.(check bool) "is warning" false (Diagnostic.is_error d)
  | ds ->
      Alcotest.failf "expected exactly the unused-suppression warning, got %d" (List.length ds)

(* Unparseable input must surface as a diagnostic, not an exception. *)
let test_parse_error () =
  let diags = Lint.lint_source ~rel:"lib/broken.ml" "let let let" in
  match diags with
  | [ d ] -> Alcotest.(check string) "rule" "PARSE" d.Diagnostic.rule
  | _ -> Alcotest.fail "expected a single PARSE diagnostic"

(* The rules outside lib/ scope must stay quiet there: bench/ and
   test/ legitimately print and read the wall clock. *)
let test_lib_scoping () =
  let src = "let shout () = print_string \"hi\"\nlet t () = Unix.gettimeofday ()\n" in
  Alcotest.(check (list string))
    "non-lib file lints clean" []
    (List.map Diagnostic.to_string (Lint.lint_source ~rel:"bench/main.ml" src))

let suite =
  golden_tests
  @ [
      Alcotest.test_case "all rules covered" `Quick test_all_rules_covered;
      Alcotest.test_case "reasonless suppression is an error" `Quick test_reasonless_suppression;
      Alcotest.test_case "unused suppression is a warning" `Quick test_unused_suppression;
      Alcotest.test_case "parse failure becomes a diagnostic" `Quick test_parse_error;
      Alcotest.test_case "rules scope to lib/" `Quick test_lib_scoping;
    ]
