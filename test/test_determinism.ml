(* Double-run determinism: the writegather bench, run twice inside one
   process with the Reset registry fired in between, must render byte
   for byte the same JSON. This is the property the @lint rules exist
   to protect — any wall-clock read, unseeded RNG, hash-order leak or
   stale process-global between runs shows up here as a byte diff. *)

open Nfsg_sim
module Json = Nfsg_stats.Json

(* Small enough to stay sub-second, large enough that gathering,
   clustering and the metadata-flush ledger all engage. *)
let bench_total = 512 * 1024

let run_once () =
  Reset.run_all ();
  Json.to_string ~pretty:true
    (Nfsg_experiments.Experiments.bench_writegather ~total:bench_total ())

let check_same_bytes first second =
  if not (String.equal first second) then begin
    (* Point at the first differing line rather than dumping both blobs. *)
    let la = String.split_on_char '\n' first and lb = String.split_on_char '\n' second in
    let rec first_diff i = function
      | a :: ta, b :: tb -> if String.equal a b then first_diff (i + 1) (ta, tb) else (i, a, b)
      | a :: _, [] -> (i, a, "<end of second run>")
      | [], b :: _ -> (i, "<end of first run>", b)
      | [], [] -> (i, "", "")
    in
    let line, a, b = first_diff 1 (la, lb) in
    Alcotest.failf "double-run JSON diverges at line %d:\n  run 1: %s\n  run 2: %s" line a b
  end

let test_double_run () = check_same_bytes (run_once ()) (run_once ())

(* Same property for the committed scheduler-comparison artifact: three
   whole worlds per run (one per policy), byte for byte. *)
let run_iosched_once () =
  Reset.run_all ();
  Json.to_string ~pretty:true (Nfsg_experiments.Iosched.bench_iosched ())

let test_double_run_iosched () =
  check_same_bytes (run_iosched_once ()) (run_iosched_once ())

(* And for the committed redundancy artifact: six worlds per run (level
   x gathering), each with a member failure and an online rebuild. *)
let run_raid_once () =
  Reset.run_all ();
  Json.to_string ~pretty:true (Nfsg_experiments.Raid.bench_raid ())

let test_double_run_raid () = check_same_bytes (run_raid_once ()) (run_raid_once ())

(* The registry itself: hooks the lint S001 dispositions rely on must
   actually be registered. *)
let test_reset_hooks_present () =
  let names = Reset.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "engine.current_name"; "rig.metrics_sink"; "server.boot_counter" ]

let test_reset_duplicate_rejected () =
  Reset.register ~name:"test.determinism.dup" (fun () -> ());
  Alcotest.check_raises "duplicate hook name"
    (Invalid_argument "Reset.register: duplicate hook test.determinism.dup") (fun () ->
      Reset.register ~name:"test.determinism.dup" (fun () -> ()))

let test_reset_runs_hooks () =
  let hit = ref false in
  Reset.register ~name:"test.determinism.probe" (fun () -> hit := true);
  Reset.run_all ();
  Alcotest.(check bool) "hook ran" true !hit

let suite =
  [
    Alcotest.test_case "writegather bench twice, same bytes" `Quick test_double_run;
    Alcotest.test_case "iosched bench twice, same bytes" `Quick test_double_run_iosched;
    Alcotest.test_case "raid bench twice, same bytes" `Quick test_double_run_raid;
    Alcotest.test_case "expected reset hooks registered" `Quick test_reset_hooks_present;
    Alcotest.test_case "duplicate reset hook rejected" `Quick test_reset_duplicate_rejected;
    Alcotest.test_case "run_all fires hooks" `Quick test_reset_runs_hooks;
  ]
