(* LADDIS-style load sweep (the paper's Figures 2 and 3): drive an
   SFS 1.0-like operation mix at increasing offered loads and watch
   throughput saturate and latency climb — with and without write
   gathering.

   Run with:  dune exec examples/laddis_sweep.exe -- [presto] *)

open Nfsg_experiments

let () =
  let presto = Array.length Sys.argv > 1 && Sys.argv.(1) = "presto" in
  let title =
    if presto then "LADDIS-style sweep with Prestoserve NVRAM"
    else "LADDIS-style sweep (plain disks)"
  in
  Printf.printf "%s\n(this runs several simulated worlds; give it a minute)\n\n" title;
  let curves = if presto then Experiments.figure3 ~quick:true () else Experiments.figure2 ~quick:true () in
  print_string (Experiments.render_laddis ~title curves);
  print_newline ();
  print_endline "The paper's result: write gathering buys server capacity on the";
  print_endline "mixed workload because writes are 15% of the ops but most of the";
  print_endline "disk transactions; with NVRAM the gain shrinks to 'modest but";
  print_endline "still positive'."
