(* Crash-recovery demo: the stable-storage promise, observed.

   A client writes a file through the gathering server; the moment
   close() returns, every write has been acknowledged — so the data
   must survive a server power failure, even though the server was
   batching metadata updates. We crash the server mid-run, recover the
   device, remount, fsck, and verify byte-for-byte.

   Run with:  dune exec examples/crash_recovery.exe *)

open Nfsg_sim
module Disk = Nfsg_disk.Disk
module Nvram = Nfsg_disk.Nvram
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Server = Nfsg_core.Server
module Client = Nfsg_nfs.Client
module Rpc_client = Nfsg_rpc.Rpc_client
module Fs = Nfsg_ufs.Fs

let scenario ~accel =
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let disk = Disk.create eng (Disk.rz26 ()) in
  let device = if accel then Nvram.create eng disk else disk in
  let server = Server.make eng ~segment ~addr:"server" ~device Server.default_config in
  let sock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock ~server:"server" () in
  let client = Client.create eng ~rpc ~biods:8 () in
  let total = 512 * 1024 in
  let payload = Bytes.init total (fun i -> Char.chr ((i * 7) mod 251)) in
  Engine.spawn eng ~name:"app" (fun () ->
      let root = Server.root_fh server in
      let fh, _ = Client.create_file client root "precious.dat" in
      let f = Client.open_file client fh in
      Client.write f ~off:0 payload;
      Client.close f;
      (* close() returned: all 64 writes acknowledged. Pull the plug. *)
      Printf.printf "  t=%.1fms  close() returned; crashing the server now\n"
        (Time.to_ms_f (Engine.now eng));
      Server.crash server);
  Engine.run eng;
  (* Power is back: recover the device (NVRAM replays to the platter),
     remount (fsck rebuilds the bitmap), and inspect what survived. *)
  device.Nfsg_disk.Device.recover ();
  let fs = Fs.mount eng device in
  Engine.spawn eng ~name:"inspector" (fun () ->
      (match Fs.check fs with
      | Ok () -> print_endline "  fsck: filesystem consistent after crash"
      | Error es ->
          Printf.printf "  fsck found %d problems:\n" (List.length es);
          List.iter (fun e -> Printf.printf "    %s\n" e) es);
      let f = Fs.lookup fs (Fs.root fs) "precious.dat" in
      let back = Fs.read fs f ~off:0 ~len:total in
      if Bytes.equal back payload then
        Printf.printf "  all %d acknowledged bytes survived the crash\n" total
      else print_endline "  DATA LOST — the stable-storage promise was broken!");
  Engine.run eng

let () =
  print_endline "Crash recovery on a plain disk (gathered writes, delayed data):";
  scenario ~accel:false;
  print_newline ();
  print_endline "Crash recovery with Prestoserve NVRAM (battery-backed replay):";
  scenario ~accel:true
