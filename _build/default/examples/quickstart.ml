(* Quickstart: build a simulated world by hand — disk, network, NFS
   server with write gathering, one client — write a file through the
   protocol stack, read it back, and print what the server did.

   Run with:  dune exec examples/quickstart.exe *)

open Nfsg_sim
module Disk = Nfsg_disk.Disk
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Client = Nfsg_nfs.Client
module Rpc_client = Nfsg_rpc.Rpc_client

let () =
  (* One simulated world. Everything below shares its virtual clock. *)
  let eng = Engine.create () in

  (* A private FDDI segment and an RZ26-class disk. *)
  let segment = Segment.create eng Segment.fddi in
  let disk = Disk.create eng (Disk.rz26 ()) in

  (* The NFS server: 8 nfsds, write gathering on (the default). *)
  let server = Server.make eng ~segment ~addr:"server" ~device:disk Server.default_config in

  (* A client host with 7 biods — the paper's sweet spot. *)
  let sock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock ~server:"server" () in
  let client = Client.create eng ~rpc ~biods:7 () in

  (* The workload runs as a simulation process. *)
  Engine.spawn eng ~name:"app" (fun () ->
      let root = Server.root_fh server in
      let fh, _attr = Client.create_file client root "hello.dat" in

      (* Write 1 MB through the write-behind cache. *)
      let f = Client.open_file client fh in
      let payload = Bytes.init (1024 * 1024) (fun i -> Char.chr (i mod 251)) in
      let t0 = Engine.now eng in
      Client.write f ~off:0 payload;
      Client.close f;
      let elapsed = Engine.now eng - t0 in

      (* Read it back over the wire and verify. *)
      let back = Client.read client fh ~off:0 ~len:(Bytes.length payload) in
      assert (Bytes.equal back payload);

      let wl = Server.write_layer server in
      let disk_stats = disk.Nfsg_disk.Device.spindle_stats () in
      Printf.printf "wrote + verified 1 MB over simulated NFS in %.1f ms of virtual time\n"
        (Time.to_ms_f elapsed);
      Printf.printf "  client write speed       : %.0f KB/s\n"
        (1024.0 /. Time.to_sec_f elapsed);
      Printf.printf "  WRITE RPCs               : %d\n" (Write_layer.writes_handled wl);
      Printf.printf "  metadata updates         : %d (%.1f writes gathered per update)\n"
        (Write_layer.batches wl) (Write_layer.mean_batch_size wl);
      Printf.printf "  disk transactions        : %d (a standard server would need ~%d)\n"
        disk_stats.Nfsg_disk.Device.transactions
        (3 * Write_layer.writes_handled wl));

  Engine.run eng
