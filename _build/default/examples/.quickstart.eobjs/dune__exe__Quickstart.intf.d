examples/quickstart.mli:
