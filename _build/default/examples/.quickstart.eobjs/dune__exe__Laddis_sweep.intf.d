examples/laddis_sweep.mli:
