examples/crash_recovery.ml: Bytes Char Engine List Nfsg_core Nfsg_disk Nfsg_net Nfsg_nfs Nfsg_rpc Nfsg_sim Nfsg_ufs Printf Time
