examples/file_copy.ml: Array Calib Filecopy List Nfsg_experiments Nfsg_stats Printf String Sys
