examples/file_copy.mli:
