examples/laddis_sweep.ml: Array Experiments Nfsg_experiments Printf Sys
