open Nfsg_disk

let bytes_of s = Bytes.of_string s

let read_back m ~off ~len =
  let buf = Bytes.make len '.' in
  Extent_map.apply m ~off buf;
  Bytes.to_string buf

let test_insert_and_apply () =
  let m = Extent_map.create () in
  Extent_map.insert m ~off:10 (bytes_of "hello");
  Alcotest.(check int) "total" 5 (Extent_map.total_bytes m);
  Alcotest.(check string) "overlay" "..hello..." (read_back m ~off:8 ~len:10)

let test_adjacent_coalesce () =
  let m = Extent_map.create () in
  Extent_map.insert m ~off:0 (bytes_of "aaaa");
  Extent_map.insert m ~off:4 (bytes_of "bbbb");
  Extent_map.insert m ~off:8 (bytes_of "cccc");
  Alcotest.(check int) "one extent" 1 (Extent_map.extent_count m);
  Alcotest.(check string) "contents" "aaaabbbbcccc" (read_back m ~off:0 ~len:12)

let test_overwrite_wins () =
  let m = Extent_map.create () in
  Extent_map.insert m ~off:0 (bytes_of "xxxxxxxx");
  Extent_map.insert m ~off:2 (bytes_of "NEW");
  Alcotest.(check string) "new over old" "xxNEWxxx" (read_back m ~off:0 ~len:8);
  Alcotest.(check int) "still one extent" 1 (Extent_map.extent_count m)

let test_gap_keeps_separate () =
  let m = Extent_map.create () in
  Extent_map.insert m ~off:0 (bytes_of "aa");
  Extent_map.insert m ~off:10 (bytes_of "bb");
  Alcotest.(check int) "two extents" 2 (Extent_map.extent_count m);
  Alcotest.(check int) "4 bytes" 4 (Extent_map.total_bytes m)

let test_bridge_merges () =
  let m = Extent_map.create () in
  Extent_map.insert m ~off:0 (bytes_of "aa");
  Extent_map.insert m ~off:4 (bytes_of "bb");
  Extent_map.insert m ~off:2 (bytes_of "XX");
  Alcotest.(check int) "bridged" 1 (Extent_map.extent_count m);
  Alcotest.(check string) "contents" "aaXXbb" (read_back m ~off:0 ~len:6)

let test_covers () =
  let m = Extent_map.create () in
  Extent_map.insert m ~off:100 (bytes_of (String.make 50 'z'));
  Alcotest.(check bool) "inner" true (Extent_map.covers m ~off:110 ~len:20);
  Alcotest.(check bool) "exact" true (Extent_map.covers m ~off:100 ~len:50);
  Alcotest.(check bool) "past end" false (Extent_map.covers m ~off:120 ~len:40);
  Alcotest.(check bool) "before" false (Extent_map.covers m ~off:90 ~len:20);
  Alcotest.(check bool) "empty range" true (Extent_map.covers m ~off:0 ~len:0)

let test_take_first () =
  let m = Extent_map.create () in
  Extent_map.insert m ~off:20 (bytes_of "bbbb");
  Extent_map.insert m ~off:5 (bytes_of "aaaa");
  (match Extent_map.take_first m ~max:100 with
  | Some (5, d) -> Alcotest.(check string) "lowest first" "aaaa" (Bytes.to_string d)
  | _ -> Alcotest.fail "expected extent at 5");
  match Extent_map.take_first m ~max:2 with
  | Some (20, d) ->
      Alcotest.(check string) "clipped to max" "bb" (Bytes.to_string d);
      Alcotest.(check int) "remainder stays" 2 (Extent_map.total_bytes m);
      (match Extent_map.take_first m ~max:100 with
      | Some (22, d2) -> Alcotest.(check string) "tail" "bb" (Bytes.to_string d2)
      | _ -> Alcotest.fail "expected tail at 22")
  | _ -> Alcotest.fail "expected clipped extent at 20"

let test_remove_range_trims () =
  let m = Extent_map.create () in
  Extent_map.insert m ~off:0 (bytes_of "abcdefgh");
  Extent_map.remove_range m ~off:2 ~len:4;
  Alcotest.(check int) "two pieces" 2 (Extent_map.extent_count m);
  Alcotest.(check string) "prefix+suffix" "ab....gh" (read_back m ~off:0 ~len:8)

let test_sequential_8k_stream_coalesces () =
  (* The NVRAM flusher depends on this: 16 x 8K sequential writes must
     form one 128K extent. *)
  let m = Extent_map.create () in
  for i = 0 to 15 do
    Extent_map.insert m ~off:(i * 8192) (Bytes.make 8192 (Char.chr (65 + i)))
  done;
  Alcotest.(check int) "single extent" 1 (Extent_map.extent_count m);
  Alcotest.(check int) "128K" (128 * 1024) (Extent_map.total_bytes m)

(* Model-based property test: an extent map must behave like a sparse
   byte array. *)
let prop_model =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun off len -> `Insert (off, len)) (int_bound 200) (int_range 1 40);
          map2 (fun off len -> `Remove (off, len)) (int_bound 200) (int_range 1 40);
          return `Take;
        ])
  in
  let ops_arb = QCheck.make ~print:(fun l -> string_of_int (List.length l)) QCheck.Gen.(list_size (1 -- 60) op_gen) in
  QCheck.Test.make ~name:"extent map matches sparse-array model" ~count:300 ops_arb (fun ops ->
      let m = Extent_map.create () in
      let model = Array.make 512 None in
      let tag = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Insert (off, len) ->
              incr tag;
              let c = Char.chr (33 + (!tag mod 90)) in
              Extent_map.insert m ~off (Bytes.make len c);
              for i = off to off + len - 1 do
                model.(i) <- Some c
              done
          | `Remove (off, len) ->
              Extent_map.remove_range m ~off ~len;
              for i = off to Stdlib.min 511 (off + len - 1) do
                model.(i) <- None
              done
          | `Take -> (
              match Extent_map.take_first m ~max:16 with
              | None -> ()
              | Some (off, d) ->
                  for i = off to off + Bytes.length d - 1 do
                    (* must match the model's bytes, then vacate *)
                    if model.(i) <> Some (Bytes.get d (i - off)) then
                      QCheck.Test.fail_reportf "take_first mismatch at %d" i;
                    model.(i) <- None
                  done))
        ops;
      (* Final read-back comparison. *)
      let buf = Bytes.make 512 '\000' in
      Extent_map.apply m ~off:0 buf;
      let ok = ref true in
      for i = 0 to 511 do
        let expect = match model.(i) with Some c -> c | None -> '\000' in
        if Bytes.get buf i <> expect then ok := false
      done;
      let model_bytes = Array.fold_left (fun n c -> if c = None then n else n + 1) 0 model in
      !ok && model_bytes = Extent_map.total_bytes m)

let suite =
  [
    Alcotest.test_case "insert and apply" `Quick test_insert_and_apply;
    Alcotest.test_case "adjacent extents coalesce" `Quick test_adjacent_coalesce;
    Alcotest.test_case "overwrite keeps newest bytes" `Quick test_overwrite_wins;
    Alcotest.test_case "gaps keep extents separate" `Quick test_gap_keeps_separate;
    Alcotest.test_case "bridging write merges neighbours" `Quick test_bridge_merges;
    Alcotest.test_case "covers" `Quick test_covers;
    Alcotest.test_case "take_first clips at max" `Quick test_take_first;
    Alcotest.test_case "remove_range trims overlaps" `Quick test_remove_range_trims;
    Alcotest.test_case "sequential 8K stream coalesces" `Quick test_sequential_8k_stream_coalesces;
    QCheck_alcotest.to_alcotest prop_model;
  ]
