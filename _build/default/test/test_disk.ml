open Nfsg_sim
open Nfsg_disk

let small_geometry =
  { (Disk.rz26 ~capacity:(16 * 1024 * 1024) ()) with Disk.track_bytes = 256 * 1024 }

let with_disk f =
  let eng = Engine.create () in
  let dev = Disk.create eng small_geometry in
  let result = ref None in
  Engine.spawn eng ~name:"test-driver" (fun () -> result := Some (f eng dev));
  Engine.run eng;
  match !result with Some r -> r | None -> Alcotest.fail "test process did not finish"

let test_write_read_roundtrip () =
  with_disk (fun _eng dev ->
      let data = Bytes.init 8192 (fun i -> Char.chr (i mod 256)) in
      dev.Device.write ~off:32768 data;
      let back = dev.Device.read ~off:32768 ~len:8192 in
      Alcotest.(check bytes) "roundtrip" data back)

let test_write_takes_time () =
  with_disk (fun eng dev ->
      let t0 = Engine.now eng in
      dev.Device.write ~off:0 (Bytes.make 8192 'x');
      let elapsed = Engine.now eng - t0 in
      if elapsed <= 0 then Alcotest.fail "write took no time";
      (* 8K at 2.6MB/s is ~3.1ms of transfer alone; with overhead and
         rotation it must be within one rotation + full seek. *)
      if elapsed < Time.of_ms_f 3.0 then Alcotest.failf "implausibly fast: %dns" elapsed;
      if elapsed > Time.of_ms_f 40.0 then Alcotest.failf "implausibly slow: %dns" elapsed)

let test_larger_writes_amortise () =
  (* One 64K transaction must beat eight 8K transactions. *)
  let time_of n size =
    with_disk (fun eng dev ->
        let t0 = Engine.now eng in
        for i = 0 to n - 1 do
          dev.Device.write ~off:(i * size) (Bytes.make size 'x')
        done;
        Engine.now eng - t0)
  in
  let eight_small = time_of 8 8192 in
  let one_big = time_of 1 65536 in
  if one_big * 2 > eight_small then
    Alcotest.failf "clustering not worth it: 64K=%dns vs 8x8K=%dns" one_big eight_small

let test_sequential_beats_random () =
  let sequential =
    with_disk (fun eng dev ->
        let t0 = Engine.now eng in
        for i = 0 to 19 do
          dev.Device.write ~off:(i * 8192) (Bytes.make 8192 'x')
        done;
        Engine.now eng - t0)
  in
  let random =
    with_disk (fun eng dev ->
        let rng = Rng.create 99 in
        let t0 = Engine.now eng in
        for _ = 0 to 19 do
          let blk = Rng.int rng 2000 in
          dev.Device.write ~off:(blk * 8192) (Bytes.make 8192 'x')
        done;
        Engine.now eng - t0)
  in
  if sequential >= random then
    Alcotest.failf "seeks are free? seq=%dns rand=%dns" sequential random

let test_stats_accounting () =
  with_disk (fun _eng dev ->
      dev.Device.write ~off:0 (Bytes.make 8192 'a');
      dev.Device.write ~off:8192 (Bytes.make 8192 'b');
      let _ = dev.Device.read ~off:0 ~len:8192 in
      let s = dev.Device.spindle_stats () in
      Alcotest.(check int) "3 transactions" 3 s.Device.transactions;
      Alcotest.(check int) "bytes" (3 * 8192) s.Device.bytes_moved;
      if s.Device.busy_time <= 0 then Alcotest.fail "no busy time recorded")

let test_fifo_queueing () =
  (* Two writes issued together complete in issue order, and the
     second finishes after the first. *)
  let eng = Engine.create () in
  let dev = Disk.create eng small_geometry in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      dev.Device.write ~off:0 (Bytes.make 8192 'a');
      order := ("a", Engine.now eng) :: !order);
  Engine.spawn eng (fun () ->
      dev.Device.write ~off:1_000_000 (Bytes.make 8192 'b');
      order := ("b", Engine.now eng) :: !order);
  Engine.run eng;
  match List.rev !order with
  | [ ("a", ta); ("b", tb) ] -> if tb <= ta then Alcotest.fail "b finished before a"
  | _ -> Alcotest.fail "unexpected completion order"

let test_crash_drops_inflight () =
  let eng = Engine.create () in
  let dev = Disk.create eng small_geometry in
  let completed = ref false in
  Engine.spawn eng (fun () ->
      dev.Device.write ~off:0 (Bytes.make 8192 'x');
      completed := true);
  (* Crash long before any plausible service time has elapsed. *)
  Engine.schedule eng ~after:(Time.us 100) (fun () -> dev.Device.crash ());
  Engine.run eng;
  Alcotest.(check bool) "write never completed" false !completed;
  let stable = dev.Device.stable_read ~off:0 ~len:8192 in
  Alcotest.(check bytes) "platter untouched" (Bytes.make 8192 '\000') stable

let test_stable_write_instant () =
  let eng = Engine.create () in
  let dev = Disk.create eng small_geometry in
  dev.Device.stable_write ~off:4096 (Bytes.of_string "seed");
  Alcotest.(check bytes) "visible" (Bytes.of_string "seed") (dev.Device.stable_read ~off:4096 ~len:4);
  Alcotest.(check int) "no simulated time" 0 (Engine.now eng);
  Alcotest.(check int) "no transactions" 0 (dev.Device.spindle_stats ()).Device.transactions

let test_out_of_range_rejected () =
  with_disk (fun _eng dev ->
      match dev.Device.write ~off:(dev.Device.capacity - 100) (Bytes.make 8192 'x') with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_elevator_beats_fifo_on_random_load () =
  let total_time scheduler =
    let eng = Engine.create () in
    let dev = Disk.create eng ~scheduler small_geometry in
    let rng = Rng.create 2024 in
    let offs = List.init 40 (fun _ -> Rng.int rng 1800 * 8192) in
    let done_count = ref 0 in
    (* Issue everything at t=0 so the queue is deep enough to sort. *)
    List.iter
      (fun off ->
        Engine.spawn eng (fun () ->
            dev.Device.write ~off (Bytes.make 8192 'e');
            incr done_count))
      offs;
    Engine.run eng;
    Alcotest.(check int) "all served" 40 !done_count;
    Engine.now eng
  in
  let fifo = total_time Disk.Fifo and elev = total_time Disk.Elevator in
  if elev >= fifo then Alcotest.failf "elevator no better: fifo=%dns elevator=%dns" fifo elev

let test_elevator_preserves_data () =
  let eng = Engine.create () in
  let dev = Disk.create eng ~scheduler:Disk.Elevator small_geometry in
  let rng = Rng.create 7 in
  let blocks = List.init 30 (fun i -> (Rng.int rng 1000, i)) in
  let remaining = ref (List.length blocks) in
  List.iter
    (fun (blk, i) ->
      Engine.spawn eng (fun () ->
          dev.Device.write ~off:(blk * 8192) (Bytes.make 8192 (Char.chr (65 + (i mod 26))));
          decr remaining))
    blocks;
  Engine.run eng;
  Alcotest.(check int) "all writes served" 0 !remaining;
  (* Reordering must never invent or lose bytes: every written block
     holds exactly one writer's fill byte. *)
  List.iter
    (fun (blk, _) ->
      let b = dev.Device.stable_read ~off:(blk * 8192) ~len:8192 in
      let c = Bytes.get b 0 in
      if c < 'A' || c > 'Z' then Alcotest.failf "block %d has garbage %C" blk c;
      if b <> Bytes.make 8192 c then Alcotest.failf "block %d mixed contents" blk)
    blocks

let test_seek_time_monotone () =
  let g = small_geometry in
  let t1 = Disk.seek_time g ~cylinders:100 ~distance:1 in
  let t50 = Disk.seek_time g ~cylinders:100 ~distance:50 in
  let t99 = Disk.seek_time g ~cylinders:100 ~distance:99 in
  Alcotest.(check int) "zero distance is free" 0 (Disk.seek_time g ~cylinders:100 ~distance:0);
  if not (t1 < t50 && t50 < t99) then Alcotest.fail "seek time not monotone";
  if t1 < g.Disk.seek_single then Alcotest.fail "short seek below track-to-track time"

let suite =
  [
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "writes take plausible time" `Quick test_write_takes_time;
    Alcotest.test_case "large transfers amortise overhead" `Quick test_larger_writes_amortise;
    Alcotest.test_case "sequential beats random" `Quick test_sequential_beats_random;
    Alcotest.test_case "spindle stats account transactions" `Quick test_stats_accounting;
    Alcotest.test_case "FIFO service order" `Quick test_fifo_queueing;
    Alcotest.test_case "crash drops in-flight write" `Quick test_crash_drops_inflight;
    Alcotest.test_case "stable_write is instantaneous" `Quick test_stable_write_instant;
    Alcotest.test_case "bounds checked" `Quick test_out_of_range_rejected;
    Alcotest.test_case "seek time monotone in distance" `Quick test_seek_time_monotone;
    Alcotest.test_case "elevator beats FIFO on random load" `Quick test_elevator_beats_fifo_on_random_load;
    Alcotest.test_case "elevator preserves data" `Quick test_elevator_preserves_data;
  ]
