test/test_stripe.ml: Alcotest Array Bytes Char Device Disk Engine Nfsg_disk Nfsg_sim Printf Stripe
