test/test_engine.ml: Alcotest Buffer Engine List Nfsg_sim Time
