test/test_experiments.ml: Alcotest List Nfsg_experiments Nfsg_stats String
