test/test_nvram.ml: Alcotest Bytes Char Device Disk Engine Nfsg_disk Nfsg_sim Nvram Time
