test/test_nfs_proto.ml: Alcotest Bytes List Nfsg_nfs Nfsg_rpc Proto QCheck QCheck_alcotest
