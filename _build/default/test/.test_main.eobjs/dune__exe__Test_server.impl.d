test/test_server.ml: Alcotest Bytes Client Device List Nfsg_core Nfsg_sim Nfsg_ufs Proto Rpc_client Socket Testbed
