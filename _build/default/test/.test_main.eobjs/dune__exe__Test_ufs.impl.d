test/test_ufs.ml: Alcotest Array Bytes Char Device Disk Engine Fs Layout List Nfsg_disk Nfsg_sim Nfsg_ufs Printf QCheck QCheck_alcotest Stdlib String
