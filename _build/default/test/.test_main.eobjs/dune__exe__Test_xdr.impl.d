test/test_xdr.ml: Alcotest Bytes List Nfsg_rpc QCheck QCheck_alcotest Xdr
