test/test_extent_map.ml: Alcotest Array Bytes Char Extent_map List Nfsg_disk QCheck QCheck_alcotest Stdlib String
