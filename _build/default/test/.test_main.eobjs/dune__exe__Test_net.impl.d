test/test_net.ml: Alcotest Bytes Engine List Nfsg_net Nfsg_sim Segment Socket Time
