test/testbed.ml: Alcotest Array Bytes Char Engine Nfsg_core Nfsg_disk Nfsg_net Nfsg_nfs Nfsg_rpc Nfsg_sim Printf Stdlib
