test/test_client.ml: Alcotest Bytes Client Disk Nfsg_core Nfsg_sim Proto Rpc_client Segment Socket Testbed
