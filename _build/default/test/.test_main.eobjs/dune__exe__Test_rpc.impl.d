test/test_rpc.ml: Alcotest Bytes Dupcache Engine List Nfsg_net Nfsg_rpc Nfsg_sim Option Rpc Rpc_client Svc Time
