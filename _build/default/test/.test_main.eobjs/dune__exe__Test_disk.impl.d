test/test_disk.ml: Alcotest Bytes Char Device Disk Engine List Nfsg_disk Nfsg_sim Rng Time
