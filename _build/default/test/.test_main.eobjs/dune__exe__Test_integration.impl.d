test/test_integration.ml: Alcotest Bytes Char Client Device List Nfsg_core Nfsg_disk Nfsg_sim Nfsg_ufs Printf Proto Rpc_client Segment Socket String Testbed
