test/test_v3.ml: Alcotest Bytes Char Client Device List Nfsg_core Nfsg_rpc Nfsg_sim Nfsg_ufs Proto Rpc_client Socket Testbed
