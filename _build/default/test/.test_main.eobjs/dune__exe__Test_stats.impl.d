test/test_stats.ml: Alcotest Gen Histogram List Nfsg_sim Nfsg_stats QCheck QCheck_alcotest Report String Summary Trace
