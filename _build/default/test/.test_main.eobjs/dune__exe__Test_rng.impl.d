test/test_rng.ml: Alcotest Float Hashtbl List Nfsg_sim Option Rng
