test/test_heap.ml: Alcotest Heap List Nfsg_sim QCheck QCheck_alcotest
