test/test_sync.ml: Alcotest Condition Engine Ivar List Mutex Nfsg_sim Resource Semaphore Squeue Stdlib Time
