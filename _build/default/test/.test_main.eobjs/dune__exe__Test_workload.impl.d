test/test_workload.ml: Alcotest Client Float Nfsg_core Nfsg_sim Nfsg_workload Printf Proto Rpc_client Socket Testbed
