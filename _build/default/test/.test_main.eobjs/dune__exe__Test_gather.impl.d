test/test_gather.ml: Alcotest Bytes Char Client Device List Nfsg_core Nfsg_sim Nfsg_ufs Printf QCheck QCheck_alcotest Segment String Testbed Write_layer
