test/test_crash.ml: Alcotest Bytes Char Client Device Disk Hashtbl List Nfsg_core Nfsg_nfs Nfsg_rpc Nfsg_sim Nfsg_ufs Nvram Printf Rpc_client Segment Socket String Testbed
