(* Write gathering (the paper's section 6) — end-to-end semantics. *)

open Testbed
module Server = Nfsg_core.Server
module Fs = Nfsg_ufs.Fs
module Time = Nfsg_sim.Time

let gathering_config = Server.default_config (* gathering is the default *)

let standard_config =
  { Server.default_config with Server.write_layer = Write_layer.standard }

let test_byte_fidelity_with_gathering () =
  let rig = make ~config:gathering_config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "g.dat" in
      let total = 500_000 in
      let _ = write_file rig fh ~total () in
      let back = Client.read rig.client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "gathered writes preserve bytes" (expect_pattern ~total ~seed:7) back)

let test_metadata_amortised () =
  (* The headline effect: with biods, the per-write inode+indirect
     transactions collapse. Compare spindle transactions. *)
  let transactions config =
    let rig = make ~config ~biods:8 () in
    run rig (fun () ->
        let fh, _ = Client.create_file rig.client (root rig) "f" in
        let _ = write_file rig fh ~total:(100 * 8192) () in
        (rig.device.Device.spindle_stats ()).Device.transactions)
  in
  let std = transactions standard_config in
  let gat = transactions gathering_config in
  (* Standard is ~3N = ~300; gathering should be far below half. *)
  if gat * 2 > std then Alcotest.failf "gathering did not amortise: std=%d gathered=%d" std gat

let test_all_writes_replied_exactly_once () =
  let rig = make ~config:gathering_config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "r" in
      let _ = write_file rig fh ~total:(64 * 8192) () in
      ());
  let wl = Server.write_layer rig.server in
  Alcotest.(check int) "64 writes handled" 64 (Write_layer.writes_handled wl);
  Alcotest.(check int) "64 replies sent" 64 (Write_layer.gathered_replies wl);
  Alcotest.(check int) "no handles leaked" 64 (Client.wire_writes rig.client)

let test_gathered_replies_share_mtime () =
  let rig = make ~config:gathering_config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "mt" in
      let _ = write_file rig fh ~total:(32 * 8192) () in
      ());
  let wl = Server.write_layer rig.server in
  let batches = Write_layer.batches wl in
  let mtimes = Client.last_write_mtimes rig.client in
  let distinct = List.sort_uniq compare mtimes in
  Alcotest.(check int) "32 write replies" 32 (List.length mtimes);
  (* Every reply in a batch carries the same mtime, so distinct mtimes
     cannot exceed the number of metadata updates. *)
  Alcotest.(check bool) "distinct mtimes <= batches" true (List.length distinct <= batches);
  Alcotest.(check bool) "gathering actually batched" true (batches < 32)

let test_fifo_reply_order () =
  let rig = make ~config:gathering_config ~biods:8 () in
  (* Observe reply order via xids: FIFO means offsets complete in
     issue order. We use the client mtime list plus per-reply arrival
     order implied by rpc xid completion; simpler: reply order within a
     batch equals request order, which we check by reading the file's
     final state and the batch statistics. *)
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "fifo" in
      let _ = write_file rig fh ~total:(16 * 8192) () in
      let back = Client.read rig.client fh ~off:0 ~len:(16 * 8192) in
      Alcotest.(check bytes) "consistent" (expect_pattern ~total:(16 * 8192) ~seed:7) back)

let test_zero_biods_procrastination_penalty () =
  (* Dumb PC (section 6.10): gathering must cost throughput at 0
     biods, and the loss should be bounded (~15% in the paper; we
     accept 5-40%). *)
  let elapsed config =
    let rig = make ~net:Segment.ethernet ~config ~biods:0 () in
    run rig (fun () ->
        let fh, _ = Client.create_file rig.client (root rig) "pc" in
        write_file rig fh ~total:(64 * 8192) ())
  in
  let std = elapsed standard_config in
  let gat = elapsed gathering_config in
  if gat <= std then Alcotest.failf "no procrastination penalty: std=%dns gat=%dns" std gat;
  let loss = float_of_int (gat - std) /. float_of_int gat in
  if loss < 0.03 || loss > 0.45 then Alcotest.failf "penalty %.1f%% out of band" (100.0 *. loss)

let test_procrastination_counted () =
  let rig = make ~config:gathering_config ~biods:0 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "p" in
      let _ = write_file rig fh ~total:(8 * 8192) () in
      ());
  let wl = Server.write_layer rig.server in
  Alcotest.(check bool) "procrastinated" true (Write_layer.procrastinations wl > 0);
  Alcotest.(check bool) "wasted procrastinations counted" true
    (Write_layer.procrastinate_failures wl > 0)

let test_batching_grows_with_biods () =
  let mean_batch biods =
    let rig = make ~config:gathering_config ~biods () in
    run rig (fun () ->
        let fh, _ = Client.create_file rig.client (root rig) "b" in
        let _ = write_file rig fh ~total:(128 * 8192) () in
        ());
    Write_layer.mean_batch_size (Server.write_layer rig.server)
  in
  let b0 = mean_batch 0 and b3 = mean_batch 3 and b15 = mean_batch 15 in
  if not (b0 < b3 && b3 < b15) then
    Alcotest.failf "batch size not increasing: %.2f %.2f %.2f" b0 b3 b15;
  if b0 > 1.01 then Alcotest.failf "0 biods cannot gather, got %.2f" b0

let test_random_offsets_still_gather () =
  (* Section 6.11: random-access writes amortise metadata equally. *)
  let rig = make ~config:gathering_config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "rand" in
      let rng = Nfsg_sim.Rng.create 4242 in
      let f = Client.open_file rig.client fh in
      for _ = 1 to 64 do
        let blk = Nfsg_sim.Rng.int rng 64 in
        Client.write f ~off:(blk * 8192) (Bytes.make 8192 'r')
      done;
      Client.close f);
  let wl = Server.write_layer rig.server in
  Alcotest.(check bool) "metadata updates amortised" true (Write_layer.batches wl < 32)

let test_mbuf_hunter_fires_under_presto () =
  (* With NVRAM the nfsd never blocks in VOP_WRITE, so gathering leans
     on the socket-buffer scan (section 6.5). Use 1 nfsd so requests
     pile up in the socket buffer. *)
  let config =
    { gathering_config with Server.nfsds = 1 }
  in
  let rig = make ~accel:true ~config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "presto" in
      let _ = write_file rig fh ~total:(128 * 8192) () in
      ());
  let wl = Server.write_layer rig.server in
  Alcotest.(check bool) "mbuf hunter hits" true (Write_layer.mbuf_hits wl > 0);
  Alcotest.(check bool) "still gathers with one nfsd" true (Write_layer.mean_batch_size wl > 1.5)

let test_single_nfsd_can_still_gather () =
  (* Paper: "optimal write gathering ... with as few as one nfsd". *)
  let config = { gathering_config with Server.nfsds = 1 } in
  let rig = make ~config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "one-nfsd" in
      let _ = write_file rig fh ~total:(64 * 8192) () in
      let back = Client.read rig.client fh ~off:0 ~len:(64 * 8192) in
      Alcotest.(check bytes) "fidelity" (expect_pattern ~total:(64 * 8192) ~seed:7) back);
  Alcotest.(check bool) "gathered" true
    (Write_layer.mean_batch_size (Server.write_layer rig.server) > 1.5)

let test_two_files_gather_independently () =
  let rig = make ~config:gathering_config ~biods:8 () in
  let second_done = ref false in
  Nfsg_sim.Engine.spawn rig.eng ~name:"app2" (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "file2" in
      let f = Client.open_file rig.client fh in
      for i = 0 to 31 do
        Client.write f ~off:(i * 8192) (Bytes.make 8192 '2')
      done;
      Client.close f;
      let back = Client.read rig.client fh ~off:0 ~len:(32 * 8192) in
      Alcotest.(check bytes) "file2 intact" (Bytes.make (32 * 8192) '2') back;
      second_done := true);
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "file1" in
      let total = 32 * 8192 in
      let _ = write_file rig fh ~total () in
      let back = Client.read rig.client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "file1 intact" (expect_pattern ~total ~seed:7) back);
  Alcotest.(check bool) "second writer finished" true !second_done

let test_gathered_stability_crash () =
  (* The crash-recovery invariant under gathering: everything the
     client saw acknowledged before the crash is readable after
     recovery. *)
  let rig = make ~config:gathering_config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "crashme" in
      let total = 48 * 8192 in
      let _ = write_file rig fh ~total () in
      (* close() returned => all 48 writes were acknowledged. *)
      Server.crash rig.server;
      rig.device.Device.recover ();
      let fs2 = Fs.mount rig.eng rig.device in
      let f2 = Fs.lookup fs2 (Fs.root fs2) "crashme" in
      Alcotest.(check int) "size durable" total (Fs.getattr f2).Fs.size;
      Alcotest.(check bytes) "all acknowledged bytes durable" (expect_pattern ~total ~seed:7)
        (Fs.read fs2 f2 ~off:0 ~len:total);
      match Fs.check fs2 with
      | Ok () -> ()
      | Error es -> Alcotest.failf "fsck: %s" (String.concat "; " es))

let test_lifo_ablation_runs () =
  let config =
    {
      gathering_config with
      Server.write_layer = { Write_layer.default_gathering with Write_layer.reply_order = `Lifo };
    }
  in
  let rig = make ~config ~biods:4 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "lifo" in
      let total = 32 * 8192 in
      let _ = write_file rig fh ~total () in
      let back = Client.read rig.client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "LIFO is slower but correct" (expect_pattern ~total ~seed:7) back)

let test_learned_clients_lift_pc_penalty () =
  (* A 0-biod client against a learning gathering server: after the
     first writes, the server stops procrastinating on that client. *)
  let config =
    {
      gathering_config with
      Server.write_layer =
        { Write_layer.default_gathering with Write_layer.learn_clients = true };
    }
  in
  let rig = make ~config ~biods:0 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "pc" in
      let _ = write_file rig fh ~total:(48 * 8192) () in
      ());
  let wl = Server.write_layer rig.server in
  Alcotest.(check int) "client classified solo" 1 (Write_layer.learned_solo_clients wl);
  (* Once learned, the remaining writes skip procrastination: far fewer
     sleeps than writes. *)
  Alcotest.(check bool) "procrastinations curtailed" true (Write_layer.procrastinations wl < 24)

let test_learned_clients_keep_gathering_for_biods () =
  let config =
    {
      gathering_config with
      Server.write_layer =
        { Write_layer.default_gathering with Write_layer.learn_clients = true };
    }
  in
  let rig = make ~config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "fast" in
      let _ = write_file rig fh ~total:(96 * 8192) () in
      ());
  let wl = Server.write_layer rig.server in
  Alcotest.(check int) "never classified solo" 0 (Write_layer.learned_solo_clients wl);
  Alcotest.(check bool) "still batching" true (Write_layer.mean_batch_size wl > 4.0)

let test_siva_variant_runs () =
  let config =
    {
      gathering_config with
      Server.write_layer =
        { Write_layer.default_gathering with Write_layer.latency_device = `First_write };
    }
  in
  let rig = make ~config ~biods:8 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "siva" in
      let total = 64 * 8192 in
      let _ = write_file rig fh ~total () in
      let back = Client.read rig.client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "SIVA93 variant correct" (expect_pattern ~total ~seed:7) back)

(* Property: under arbitrary small configurations and write patterns,
   every write is acknowledged exactly once and the bytes survive. *)
let prop_random_traffic =
  let gen =
    QCheck.Gen.(
      quad (int_range 0 12) (* biods *) (int_range 1 8) (* nfsds *)
        (int_range 1 40) (* 8K writes *)
        (int_range 1 3) (* concurrent files *))
  in
  let arb =
    QCheck.make
      ~print:(fun (b, n, w, f) -> Printf.sprintf "biods=%d nfsds=%d writes=%d files=%d" b n w f)
      gen
  in
  QCheck.Test.make ~name:"random traffic: exactly-once replies + fidelity" ~count:20 arb
    (fun (biods, nfsds, writes, nfiles) ->
      let config = { gathering_config with Server.nfsds } in
      let rig = make ~config ~biods () in
      let ok = ref true in
      run rig (fun () ->
          let files =
            List.init nfiles (fun i ->
                fst (Client.create_file rig.client (root rig) (Printf.sprintf "f%d" i)))
          in
          List.iteri
            (fun fi fh ->
              let h = Client.open_file rig.client fh in
              for i = 0 to writes - 1 do
                Client.write h ~off:(i * 8192)
                  (Bytes.make 8192 (Char.chr (65 + ((fi + i) mod 26))))
              done;
              Client.close h)
            files;
          List.iteri
            (fun fi fh ->
              let back = Client.read rig.client fh ~off:0 ~len:(writes * 8192) in
              for i = 0 to writes - 1 do
                if Bytes.get back (i * 8192) <> Char.chr (65 + ((fi + i) mod 26)) then ok := false
              done)
            files);
      let wl = Server.write_layer rig.server in
      !ok
      && Write_layer.writes_handled wl = writes * nfiles
      && Write_layer.gathered_replies wl = writes * nfiles
      && Client.wire_writes rig.client = writes * nfiles)

let suite =
  [
    Alcotest.test_case "byte fidelity" `Quick test_byte_fidelity_with_gathering;
    Alcotest.test_case "metadata transactions amortised" `Quick test_metadata_amortised;
    Alcotest.test_case "every write replied exactly once" `Quick test_all_writes_replied_exactly_once;
    Alcotest.test_case "gathered replies share mtime" `Quick test_gathered_replies_share_mtime;
    Alcotest.test_case "FIFO reply order consistent" `Quick test_fifo_reply_order;
    Alcotest.test_case "0-biod procrastination penalty" `Quick test_zero_biods_procrastination_penalty;
    Alcotest.test_case "procrastinations counted" `Quick test_procrastination_counted;
    Alcotest.test_case "batch size grows with biods" `Quick test_batching_grows_with_biods;
    Alcotest.test_case "random access gathers too" `Quick test_random_offsets_still_gather;
    Alcotest.test_case "mbuf hunter under Presto" `Quick test_mbuf_hunter_fires_under_presto;
    Alcotest.test_case "one nfsd suffices" `Quick test_single_nfsd_can_still_gather;
    Alcotest.test_case "two files gather independently" `Quick test_two_files_gather_independently;
    Alcotest.test_case "acknowledged writes survive crash" `Quick test_gathered_stability_crash;
    Alcotest.test_case "LIFO ablation correct" `Quick test_lifo_ablation_runs;
    Alcotest.test_case "SIVA93 variant correct" `Quick test_siva_variant_runs;
    Alcotest.test_case "learned clients lift the PC penalty" `Quick test_learned_clients_lift_pc_penalty;
    Alcotest.test_case "learned clients keep gathering" `Quick test_learned_clients_keep_gathering_for_biods;
    QCheck_alcotest.to_alcotest prop_random_traffic;
  ]
