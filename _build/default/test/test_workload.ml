open Testbed
module FW = Nfsg_workload.File_writer
module Laddis = Nfsg_workload.Laddis
module Server = Nfsg_core.Server
module Time = Nfsg_sim.Time
module Engine = Nfsg_sim.Engine

let test_file_writer_result () =
  let rig = make ~biods:4 () in
  let r =
    run rig (fun () ->
        let client = rig.client in
        FW.run rig.eng client ~dir:(root rig) ~name:"fw" ~total:(100 * 1024) ())
  in
  Alcotest.(check int) "bytes" (100 * 1024) r.FW.bytes;
  Alcotest.(check bool) "positive elapsed" true (r.FW.elapsed > 0);
  Alcotest.(check int) "wire writes" 13 r.FW.wire_writes;
  let expected = 100.0 /. Time.to_sec_f r.FW.elapsed in
  Alcotest.(check (float 0.5)) "kb/s consistent" expected r.FW.kb_per_sec

let test_file_writer_verify () =
  let rig = make ~biods:4 () in
  run rig (fun () ->
      let r = FW.run rig.eng rig.client ~dir:(root rig) ~name:"v" ~total:50_000 ~seed:3 () in
      ignore r;
      let fh, _ = Client.lookup rig.client (root rig) "v" in
      Alcotest.(check bool) "verifies against pattern" true
        (FW.verify rig.client ~fh ~total:50_000 ~seed:3);
      Alcotest.(check bool) "wrong seed fails" false (FW.verify rig.client ~fh ~total:50_000 ~seed:4))

let test_random_writer () =
  let rig = make ~biods:8 () in
  let r =
    run rig (fun () ->
        FW.run_random rig.eng rig.client ~dir:(root rig) ~name:"r" ~writes:32 ~file_blocks:16 ())
  in
  Alcotest.(check int) "bytes counted" (32 * 8192) r.FW.bytes;
  (* Random offsets within 16 blocks: the file can't exceed 128K. *)
  run rig (fun () ->
      let fh, _ = Client.lookup rig.client (root rig) "r" in
      let a = Client.getattr rig.client fh in
      Alcotest.(check bool) "bounded size" true (a.Proto.size <= 16 * 8192))

let laddis_cfg =
  {
    Laddis.default_config with
    Laddis.procs = 3;
    files_per_proc = 3;
    file_size = 32 * 1024;
    warmup = Time.of_ms_f 500.0;
    measure = Time.sec 3;
  }

let run_laddis rig ~offered cfg =
  run rig (fun () ->
      let make_client i =
        let sock = Socket.create rig.segment ~addr:(Printf.sprintf "lc%d" i) () in
        let rpc = Rpc_client.create rig.eng ~sock ~server:"server" () in
        Client.create rig.eng ~rpc ~biods:cfg.Laddis.biods_per_proc ()
      in
      Laddis.run rig.eng ~make_client ~root:(root rig) ~offered cfg)

let test_laddis_tracks_offered_load () =
  let rig = make ~biods:4 () in
  let p = run_laddis rig ~offered:50.0 laddis_cfg in
  (* Far below saturation: achieved within 25% of offered. *)
  if Float.abs (p.Laddis.achieved -. 50.0) > 12.5 then
    Alcotest.failf "achieved %.1f too far from offered 50" p.Laddis.achieved;
  Alcotest.(check bool) "latency positive" true (p.Laddis.avg_latency_ms > 0.0);
  Alcotest.(check bool) "ops counted" true (p.Laddis.ops_completed > 50)

let test_laddis_saturates () =
  let rig = make ~biods:4 () in
  let p = run_laddis rig ~offered:5000.0 laddis_cfg in
  (* A single-spindle server cannot do 5000 SFS-mix ops/s. *)
  Alcotest.(check bool) "saturated below offered" true (p.Laddis.achieved < 2500.0);
  Alcotest.(check bool) "did real work" true (p.Laddis.achieved > 50.0)

let test_laddis_deterministic () =
  let once () =
    let rig = make ~biods:4 () in
    let p = run_laddis rig ~offered:80.0 laddis_cfg in
    (p.Laddis.ops_completed, p.Laddis.avg_latency_ms)
  in
  let a = once () and b = once () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_laddis_server_saw_the_mix () =
  let rig = make ~biods:4 () in
  ignore (run_laddis rig ~offered:100.0 laddis_cfg);
  let count p = Server.op_count rig.server p in
  (* Write RPC counts are inflated by bursts (avg 4 per op drawn), so
     compare lookups against a genuinely rare op instead. *)
  Alcotest.(check bool) "lookups dominate readdirs" true
    (count Proto.proc_lookup > count Proto.proc_readdir);
  Alcotest.(check bool) "writes present" true (count Proto.proc_write > 0);
  Alcotest.(check bool) "reads present" true (count Proto.proc_read > 0);
  Alcotest.(check bool) "getattrs present" true (count Proto.proc_getattr > 0)

let suite =
  [
    Alcotest.test_case "file writer accounting" `Quick test_file_writer_result;
    Alcotest.test_case "file writer verification" `Quick test_file_writer_verify;
    Alcotest.test_case "random writer bounded" `Quick test_random_writer;
    Alcotest.test_case "laddis tracks offered load" `Quick test_laddis_tracks_offered_load;
    Alcotest.test_case "laddis saturates honestly" `Quick test_laddis_saturates;
    Alcotest.test_case "laddis runs are deterministic" `Quick test_laddis_deterministic;
    Alcotest.test_case "laddis exercises the op mix" `Quick test_laddis_server_saw_the_mix;
  ]
