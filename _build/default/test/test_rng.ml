open Nfsg_sim

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v
  done

let test_float_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "out of range: %f" v
  done

let test_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r 5.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 5.0) > 0.25 then Alcotest.failf "mean %f too far from 5.0" mean

let test_bool_probability () =
  let r = Rng.create 13 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if Float.abs (p -. 0.3) > 0.02 then Alcotest.failf "p %f too far from 0.3" p

let test_weighted () =
  let r = Rng.create 17 in
  let n = 30_000 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to n do
    let v = Rng.weighted r [ (0.5, "a"); (0.3, "b"); (0.2, "c") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let frac k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. float_of_int n in
  if Float.abs (frac "a" -. 0.5) > 0.02 then Alcotest.failf "a: %f" (frac "a");
  if Float.abs (frac "b" -. 0.3) > 0.02 then Alcotest.failf "b: %f" (frac "b");
  if Float.abs (frac "c" -. 0.2) > 0.02 then Alcotest.failf "c: %f" (frac "c")

let test_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_weighted_rejects_bad () =
  let r = Rng.create 5 in
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Rng.weighted: weights must sum to a positive value") (fun () ->
      ignore (Rng.weighted r [ (0.0, "a") ]))

let suite =
  [
    Alcotest.test_case "equal seeds, equal streams" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "int stays in bounds" `Quick test_int_bounds;
    Alcotest.test_case "float stays in [0,1)" `Quick test_float_range;
    Alcotest.test_case "exponential has requested mean" `Quick test_exponential_mean;
    Alcotest.test_case "bool respects probability" `Quick test_bool_probability;
    Alcotest.test_case "weighted choice proportions" `Quick test_weighted;
    Alcotest.test_case "split gives independent stream" `Quick test_split_independent;
    Alcotest.test_case "weighted rejects zero weights" `Quick test_weighted_rejects_bad;
  ]
