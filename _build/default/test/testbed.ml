(* Shared end-to-end rig: one network segment, one server over a
   configurable device stack, one (or more) clients. *)

open Nfsg_sim
module Segment = Nfsg_net.Segment
module Socket = Nfsg_net.Socket
module Disk = Nfsg_disk.Disk
module Nvram = Nfsg_disk.Nvram
module Stripe = Nfsg_disk.Stripe
module Device = Nfsg_disk.Device
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Client = Nfsg_nfs.Client
module Proto = Nfsg_nfs.Proto
module Rpc_client = Nfsg_rpc.Rpc_client

type rig = {
  eng : Engine.t;
  segment : Segment.t;
  disks : Device.t array;  (** raw spindles *)
  device : Device.t;  (** what the server mounts *)
  server : Server.t;
  rpc : Rpc_client.t;
  client : Client.t;
}

let disk_geometry = { (Disk.rz26 ~capacity:(64 * 1024 * 1024) ()) with Disk.track_bytes = 400 * 1024 }

let make ?(net = Segment.fddi) ?(accel = false) ?(spindles = 1) ?(biods = 4)
    ?(config = Server.default_config) ?trace () =
  let eng = Engine.create () in
  let segment = Segment.create eng net in
  let disks =
    Array.init spindles (fun i -> Disk.create eng ~name:(Printf.sprintf "rz26-%d" i) disk_geometry)
  in
  let base =
    if spindles = 1 then disks.(0) else Stripe.create eng ~chunk:8192 disks
  in
  let device = if accel then Nvram.create eng base else base in
  let server = Server.make eng ~segment ~addr:"server" ~device ?trace config in
  let csock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock:csock ~server:"server" () in
  let client = Client.create eng ~rpc ~biods () in
  { eng; segment; disks; device; server; rpc; client }

(* Run [f] as a driver process and drain the simulation. *)
let run rig f =
  let result = ref None in
  Engine.spawn rig.eng ~name:"driver" (fun () -> result := Some (f ()));
  Engine.run rig.eng;
  match !result with Some v -> v | None -> Alcotest.fail "driver process blocked forever"

let root rig = Server.root_fh rig.server

(* Write [total] bytes sequentially through the client cache in
   [app_chunk]-byte application writes, then close. Returns elapsed. *)
let write_file rig file ~total ?(app_chunk = 8192) ?(seed = 7) () =
  let f = Client.open_file rig.client file in
  let t0 = Engine.now rig.eng in
  let pos = ref 0 in
  while !pos < total do
    let n = Stdlib.min app_chunk (total - !pos) in
    let data = Bytes.init n (fun i -> Char.chr ((!pos + i + seed) mod 251)) in
    Client.write f ~off:!pos data;
    pos := !pos + n
  done;
  Client.close f;
  Engine.now rig.eng - t0

let expect_pattern ~total ~seed = Bytes.init total (fun i -> Char.chr ((i + seed) mod 251))
